// Figure 9: speedup of the satellite filter (Tseq/Tpar). Expected:
// continuous speedup for all versions as cores grow (the paper's
// best case is the auto-generated code at 64 cores).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/satellite.h"
#include "bench_common.h"
#include "runtime/thread_pool.h"

namespace {

using purec::apps::SatelliteConfig;
using purec::apps::SatelliteVariant;
using purec::apps::run_satellite;

SatelliteConfig config() {
  SatelliteConfig c;
  c.width = purec::bench::scaled_size(1354, c.width, 96);
  c.height = purec::bench::scaled_size(2030, c.height, 96);
  c.bands = purec::bench::scaled_size(8, c.bands, 4);
  return c;
}

double run_variant(SatelliteVariant variant, int threads) {
  purec::rt::ThreadPool pool(static_cast<std::size_t>(threads));
  return run_satellite(variant, config(), pool).compute_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  purec::rt::ThreadPool seq_pool(1);
  const double seq_seconds =
      run_satellite(SatelliteVariant::Sequential, config(), seq_pool)
          .compute_seconds;
  std::printf("fig9: Tseq = %.3f s\n", seq_seconds);

  const auto add = [&](const char* name, SatelliteVariant variant) {
    purec::bench::register_speedup_series(
        "fig9_satellite_speedup", name, seq_seconds,
        [variant](int t) { return run_variant(variant, t); });
  };
  add("auto_static", SatelliteVariant::AutoStatic);
  add("auto_dynamic", SatelliteVariant::AutoDynamic);
  add("hand_dynamic", SatelliteVariant::HandDynamic);

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Figure 11: speedup of the LAMA ELL SpMV (Tseq/Tpar). Expected:
// increasing up to 32 cores; ICC-proxy better below 16 cores, worse
// above; hand vs. auto nearly indistinguishable at high core counts.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/ellpack.h"
#include "bench_common.h"
#include "runtime/thread_pool.h"

namespace {

using purec::apps::Compiler;
using purec::apps::EllConfig;
using purec::apps::EllVariant;
using purec::apps::run_ell;

EllConfig config(Compiler compiler) {
  EllConfig c;
  c.rows = purec::bench::scaled_size(217918 /* Boeing/pwtk */, c.rows, 8000);
  c.avg_row_nnz = purec::bench::scaled_size(53, c.avg_row_nnz, 16);
  c.repetitions = purec::bench::scaled_size(100, c.repetitions, 5);
  c.compiler = compiler;
  return c;
}

double run_variant(EllVariant variant, Compiler compiler, int threads) {
  purec::rt::ThreadPool pool(static_cast<std::size_t>(threads));
  return run_ell(variant, config(compiler), pool).compute_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  purec::rt::ThreadPool seq_pool(1);
  const double seq_seconds =
      run_ell(EllVariant::Sequential, config(Compiler::Gcc), seq_pool)
          .compute_seconds;
  std::printf("fig11: Tseq (GCC) = %.3f s\n", seq_seconds);

  const auto add = [&](const char* name, EllVariant variant,
                       Compiler compiler) {
    purec::bench::register_speedup_series(
        "fig11_lama_speedup", name, seq_seconds,
        [variant, compiler](int t) {
          return run_variant(variant, compiler, t);
        });
  };
  add("pure_auto_gcc", EllVariant::PureAuto, Compiler::Gcc);
  add("pure_auto_icc", EllVariant::PureAuto, Compiler::Icc);
  add("hand_gcc", EllVariant::HandStatic, Compiler::Gcc);
  add("hand_icc", EllVariant::HandStatic, Compiler::Icc);

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

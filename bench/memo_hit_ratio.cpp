// Memoization hit-ratio sweep (the `--memoize` subsystem's perf
// contract), emitting machine-readable BENCH_memoize.json.
//
// Workload 1 — fig8_twin: the satellite retrieval shape (one expensive
// pure transfer function per pixel) with the per-pixel input quantized to
// `distinct` levels, swept over distinct ∈ {32, 4096, 262144} × threads
// {1,2,4,8}. distinct controls the hit ratio: 32 is the repeated-call
// regime the ROADMAP's "heavy traffic" north star describes, 262144
// overflows the default PUREC_MEMO_CAP and exercises clock eviction under
// the thread pool's schedules.
//
// Workload 2 — matmul_twin: the paper's mult(a,b) leaf memoized over
// quantized operands. The callee is a single multiply, far below the
// table's lookup cost — committed as the honest negative result: the JSON
// shows where memoization pays and where it cannot.
//
// Every memoized run's checksum is cross-validated against the
// unmemoized run of the same configuration; any divergence exits nonzero
// (a hit must return the exact bits the miss stored).
//
// JSON schema: see EXPERIMENTS.md ("Memoization sweep"). Output path:
// $PUREC_BENCH_JSON or ./BENCH_memoize.json.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runtime/memo_cache.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;
using purec::rt::MemoCache;
using purec::rt::MemoConfig;
using purec::rt::MemoKey;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The expensive pure leaf of the fig8 twin: a Newton ladder with a
/// transcendental per step (~2 us on this container) — the shape of a
/// real per-pixel retrieval, keyed on one quantized input.
float transfer(int v) {
  double x = 1.0 + static_cast<double>(v) * 0.0625;
  double y = x;
  for (int k = 0; k < 64; ++k) {
    y = 0.5 * (y + x / y) + 1e-12 * std::sin(y);
  }
  return static_cast<float>(y);
}

constexpr std::uint64_t kTransferId = 0x7472616e73666572ULL;  // "transfer"
constexpr std::uint64_t kMultId = 0x6d756c7400000000ULL;      // "mult"

std::uint64_t f32_bits(float v) {
  std::uint32_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

float bits_f32(std::uint64_t w) {
  const auto b = static_cast<std::uint32_t>(w);
  float v = 0.0f;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

struct RunRow {
  int distinct = 0;  // fig8_twin only
  int size = 0;      // pixels (fig8) / matrix order (matmul)
  int threads = 0;
  double plain_seconds = 0.0;
  double memo_seconds = 0.0;
  double hit_ratio = 0.0;
  std::uint64_t evictions = 0;
  bool checksum_match = false;
};

int quantized(int p, int distinct) { return (p * 37 + 11) % distinct; }

/// fig8_twin: out[p] = transfer(quantize(p)). Returns the checksum.
double run_fig8(purec::rt::ThreadPool& pool, std::vector<float>& out,
                int distinct, MemoCache* cache) {
  const auto n = static_cast<std::int64_t>(out.size());
  purec::rt::parallel_for(pool, 0, n, [&](std::int64_t p) {
    const int v = quantized(static_cast<int>(p), distinct);
    if (cache == nullptr) {
      out[static_cast<std::size_t>(p)] = transfer(v);
      return;
    }
    MemoKey key(kTransferId);
    key.add(static_cast<std::uint64_t>(v));
    const std::uint64_t k = key.hash();
    std::uint64_t word = 0;
    if (cache->lookup(k, &word)) {
      out[static_cast<std::size_t>(p)] = bits_f32(word);
      return;
    }
    const float r = transfer(v);
    cache->store(k, f32_bits(r));
    out[static_cast<std::size_t>(p)] = r;
  });
  double checksum = 0.0;
  for (std::size_t p = 0; p < out.size(); ++p) {
    checksum += static_cast<double>(out[p]) * static_cast<double>(p % 11);
  }
  return checksum;
}

/// matmul_twin: C = A x Bt with the mult leaf optionally memoized over
/// quantized operands. Returns the checksum.
double run_matmul(purec::rt::ThreadPool& pool, int n,
                  const std::vector<float>& a, const std::vector<float>& bt,
                  std::vector<float>& c, MemoCache* cache) {
  const auto mult = [&](float x, float y) -> float {
    if (cache == nullptr) return x * y;
    MemoKey key(kMultId);
    key.add(f32_bits(x));
    key.add(f32_bits(y));
    const std::uint64_t k = key.hash();
    std::uint64_t word = 0;
    if (cache->lookup(k, &word)) return bits_f32(word);
    const float r = x * y;
    cache->store(k, f32_bits(r));
    return r;
  };
  purec::rt::parallel_for(pool, 0, n, [&](std::int64_t i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < n; ++k) {
        acc += mult(a[static_cast<std::size_t>(i * n + k)],
                    bt[static_cast<std::size_t>(j * n + k)]);
      }
      c[static_cast<std::size_t>(i * n + j)] = acc;
    }
  });
  double checksum = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    checksum += static_cast<double>(c[i]) * static_cast<double>(i % 7);
  }
  return checksum;
}

std::vector<int> bench_threads() {
  std::vector<int> ladder;
  for (const std::int64_t t : purec::bench::thread_ladder()) {
    if (t <= 8) ladder.push_back(static_cast<int>(t));
  }
  return ladder;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void print_row(const char* workload, const RunRow& row) {
  std::printf(
      "%-12s size=%-7d distinct=%-7d threads=%d  plain %8.1f ms  "
      "memo %8.1f ms  speedup %6.2fx  hits %5.1f%%%s\n",
      workload, row.size, row.distinct, row.threads,
      row.plain_seconds * 1e3, row.memo_seconds * 1e3,
      row.plain_seconds / row.memo_seconds, row.hit_ratio * 100.0,
      row.checksum_match ? "" : "  CHECKSUM MISMATCH");
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  const bool smoke = purec::bench::smoke_scale();
  const int pixels = purec::bench::scaled_size(1 << 21, 1 << 18, 1 << 12);
  const int matmul_n = purec::bench::scaled_size(256, 128, 32);
  const MemoConfig cache_config = MemoConfig::from_env();

  std::vector<RunRow> fig8_rows;
  std::vector<RunRow> matmul_rows;
  bool checksums_ok = true;

  std::printf("memo hit-ratio sweep: %d pixels, matmul n=%d, cache %zu "
              "slots x %zu shards\n",
              pixels, matmul_n, cache_config.capacity,
              cache_config.shards);

  for (const int distinct :
       {32, 4096, smoke ? (1 << 14) : (1 << 18)}) {
    for (const int threads : bench_threads()) {
      purec::rt::ThreadPool pool(static_cast<std::size_t>(threads));
      std::vector<float> out(static_cast<std::size_t>(pixels), 0.0f);

      Clock::time_point start = Clock::now();
      const double plain_checksum = run_fig8(pool, out, distinct, nullptr);
      const double plain_seconds = seconds_since(start);

      MemoCache cache(cache_config);
      start = Clock::now();
      const double memo_checksum = run_fig8(pool, out, distinct, &cache);
      const double memo_seconds = seconds_since(start);

      const purec::rt::MemoStats stats = cache.stats();
      RunRow row;
      row.distinct = distinct;
      row.size = pixels;
      row.threads = threads;
      row.plain_seconds = plain_seconds;
      row.memo_seconds = memo_seconds;
      row.hit_ratio = stats.hits + stats.misses == 0
                          ? 0.0
                          : static_cast<double>(stats.hits) /
                                static_cast<double>(stats.hits +
                                                    stats.misses);
      row.evictions = stats.evictions;
      row.checksum_match = plain_checksum == memo_checksum;
      checksums_ok = checksums_ok && row.checksum_match;
      fig8_rows.push_back(row);
      print_row("fig8_twin", row);
    }
  }

  {
    const auto size = static_cast<std::size_t>(matmul_n) *
                      static_cast<std::size_t>(matmul_n);
    std::vector<float> a(size);
    std::vector<float> bt(size);
    std::vector<float> c(size, 0.0f);
    for (std::size_t i = 0; i < size; ++i) {
      a[i] = static_cast<float>((i * 7 + 3) % 11) * 0.25f;
      bt[i] = static_cast<float>((i * 5 + 2) % 13) * 0.5f;
    }
    for (const int threads : bench_threads()) {
      purec::rt::ThreadPool pool(static_cast<std::size_t>(threads));
      Clock::time_point start = Clock::now();
      const double plain_checksum =
          run_matmul(pool, matmul_n, a, bt, c, nullptr);
      const double plain_seconds = seconds_since(start);

      MemoCache cache(cache_config);
      start = Clock::now();
      const double memo_checksum =
          run_matmul(pool, matmul_n, a, bt, c, &cache);
      const double memo_seconds = seconds_since(start);

      const purec::rt::MemoStats stats = cache.stats();
      RunRow row;
      row.distinct = 0;
      row.size = matmul_n;
      row.threads = threads;
      row.plain_seconds = plain_seconds;
      row.memo_seconds = memo_seconds;
      row.hit_ratio = stats.hits + stats.misses == 0
                          ? 0.0
                          : static_cast<double>(stats.hits) /
                                static_cast<double>(stats.hits +
                                                    stats.misses);
      row.evictions = stats.evictions;
      row.checksum_match = plain_checksum == memo_checksum;
      checksums_ok = checksums_ok && row.checksum_match;
      matmul_rows.push_back(row);
      print_row("matmul_twin", row);
    }
  }

  const char* json_path_env = std::getenv("PUREC_BENCH_JSON");
  const std::string json_path =
      json_path_env != nullptr ? json_path_env : "BENCH_memoize.json";
  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "memo_hit_ratio: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"memo_hit_ratio\",\n");
  purec::bench::write_json_host_fields(out);
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out,
               "  \"cache\": {\"shards\": %zu, \"capacity\": %zu},\n",
               cache_config.shards, cache_config.capacity);
  const auto emit_rows = [&](const char* name,
                             const std::vector<RunRow>& rows,
                             bool fig8, bool last) {
    std::fprintf(out, "  \"%s\": [\n", name);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const RunRow& r = rows[i];
      std::fprintf(out, "    {");
      if (fig8) {
        std::fprintf(out, "\"pixels\": %d, \"distinct\": %d, ", r.size,
                     r.distinct);
      } else {
        std::fprintf(out, "\"n\": %d, ", r.size);
      }
      std::fprintf(out,
                   "\"threads\": %d, \"plain_seconds\": %s, "
                   "\"memo_seconds\": %s, \"speedup\": %s, "
                   "\"hit_ratio\": %s, \"evictions\": %llu, "
                   "\"checksum_match\": %s}%s\n",
                   r.threads, json_number(r.plain_seconds).c_str(),
                   json_number(r.memo_seconds).c_str(),
                   json_number(r.plain_seconds / r.memo_seconds).c_str(),
                   json_number(r.hit_ratio).c_str(),
                   static_cast<unsigned long long>(r.evictions),
                   r.checksum_match ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]%s\n", last ? "" : ",");
  };
  emit_rows("fig8_twin", fig8_rows, true, false);
  emit_rows("matmul_twin", matmul_rows, false, true);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", json_path.c_str());

  return checksums_ok ? 0 : 1;
}

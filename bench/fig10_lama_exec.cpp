// Figure 10: execution time of the LAMA ELL sparse matrix-vector multiply.
//
// Expected shape (paper §4.3.4): the hand-parallelized (inlined, static)
// version is slightly ahead of the pure chain's output (the tail of the
// matrix makes the static row partition uneven and the chain does not
// know the nnz distribution); the gap shrinks as cores increase, and the
// absolute differences are tiny.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/ellpack.h"
#include "bench_common.h"
#include "runtime/thread_pool.h"

namespace {

using purec::apps::Compiler;
using purec::apps::EllConfig;
using purec::apps::EllVariant;
using purec::apps::run_ell;

EllConfig config(Compiler compiler) {
  EllConfig c;
  c.rows = purec::bench::scaled_size(217918 /* Boeing/pwtk */, c.rows, 8000);
  c.avg_row_nnz = purec::bench::scaled_size(53, c.avg_row_nnz, 16);
  c.repetitions = purec::bench::scaled_size(100, c.repetitions, 5);
  c.compiler = compiler;
  return c;
}

double run_variant(EllVariant variant, Compiler compiler, int threads) {
  purec::rt::ThreadPool pool(static_cast<std::size_t>(threads));
  return run_ell(variant, config(compiler), pool).compute_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  {
    purec::rt::ThreadPool pool(1);
    std::printf("fig10: sequential baseline = %.3f s\n",
                run_ell(EllVariant::Sequential, config(Compiler::Gcc), pool)
                    .compute_seconds);
  }

  purec::bench::register_series("fig10_lama_exec", "pure_auto_gcc",
                                [](int t) {
    return run_variant(EllVariant::PureAuto, Compiler::Gcc, t);
  });
  purec::bench::register_series("fig10_lama_exec", "pure_auto_icc",
                                [](int t) {
    return run_variant(EllVariant::PureAuto, Compiler::Icc, t);
  });
  purec::bench::register_series("fig10_lama_exec", "hand_gcc", [](int t) {
    return run_variant(EllVariant::HandStatic, Compiler::Gcc, t);
  });
  purec::bench::register_series("fig10_lama_exec", "hand_icc", [](int t) {
    return run_variant(EllVariant::HandStatic, Compiler::Icc, t);
  });

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Figure 5: speedup of the matrix-matrix multiplication —
// Speedup = Tseq(GCC) / Tpar, exactly the paper's definition (the GCC
// sequential run is the baseline for ALL series, including ICC ones).
//
// Expected shape: MKL proxy far ahead (paper: 37.44x already at 2 cores,
// 72.16x at 64); pluto_sica > pure/pluto; pure_icc strong at low counts
// then converging.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/matmul.h"
#include "bench_common.h"
#include "runtime/thread_pool.h"

namespace {

using purec::apps::Compiler;
using purec::apps::MatmulConfig;
using purec::apps::MatmulVariant;
using purec::apps::run_matmul;

MatmulConfig config(Compiler compiler) {
  MatmulConfig c;
  c.n = purec::bench::scaled_size(4096, 896, 256);
  c.compiler = compiler;
  return c;
}

double run_variant(MatmulVariant variant, Compiler compiler, int threads) {
  purec::rt::ThreadPool pool(static_cast<std::size_t>(threads));
  return run_matmul(variant, config(compiler), pool).total_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  purec::rt::ThreadPool seq_pool(1);
  const double seq_seconds =
      run_matmul(MatmulVariant::Sequential, config(Compiler::Gcc), seq_pool)
          .total_seconds();
  std::printf("fig5: Tseq (GCC) = %.3f s — speedups below are Tseq/Tpar\n",
              seq_seconds);

  const auto add = [&](const char* name, MatmulVariant variant,
                       Compiler compiler) {
    purec::bench::register_speedup_series(
        "fig5_matmul_speedup", name, seq_seconds,
        [variant, compiler](int t) {
          return run_variant(variant, compiler, t);
        });
  };
  add("pure_gcc", MatmulVariant::Pure, Compiler::Gcc);
  add("pure_icc", MatmulVariant::Pure, Compiler::Icc);
  add("pluto_gcc", MatmulVariant::Pluto, Compiler::Gcc);
  add("pluto_sica_gcc", MatmulVariant::PlutoSica, Compiler::Gcc);
  add("mkl_proxy", MatmulVariant::MklProxy, Compiler::Icc);

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

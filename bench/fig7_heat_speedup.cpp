// Figure 7: speedup of the heat-distribution application
// (Tseq(GCC)/Tpar). Expected: PluTo best up to ~16 threads, all series'
// speedups decay beyond 8 cores (the stencil's memory accesses defeat
// vectorization, §4.3.2).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/heat.h"
#include "bench_common.h"
#include "runtime/thread_pool.h"

namespace {

using purec::apps::Compiler;
using purec::apps::HeatConfig;
using purec::apps::HeatVariant;
using purec::apps::run_heat;

HeatConfig config(Compiler compiler) {
  HeatConfig c;
  if (purec::bench::full_scale()) {
    c.n = 4096;
    c.steps = 200;
  }
  c.compiler = compiler;
  return c;
}

double run_variant(HeatVariant variant, Compiler compiler, int threads) {
  purec::rt::ThreadPool pool(static_cast<std::size_t>(threads));
  return run_heat(variant, config(compiler), pool).compute_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  purec::rt::ThreadPool seq_pool(1);
  const double seq_seconds =
      run_heat(HeatVariant::Sequential, config(Compiler::Gcc), seq_pool)
          .compute_seconds;
  std::printf("fig7: Tseq (GCC) = %.3f s\n", seq_seconds);

  const auto add = [&](const char* name, HeatVariant variant,
                       Compiler compiler) {
    purec::bench::register_speedup_series(
        "fig7_heat_speedup", name, seq_seconds,
        [variant, compiler](int t) {
          return run_variant(variant, compiler, t);
        });
  };
  add("pure_gcc", HeatVariant::Pure, Compiler::Gcc);
  add("pure_icc", HeatVariant::Pure, Compiler::Icc);
  add("pluto_gcc", HeatVariant::Pluto, Compiler::Gcc);
  add("pluto_icc", HeatVariant::Pluto, Compiler::Icc);

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Ablation: PluTo tile-size choice (DESIGN.md §5.3). Sweeps the tile edge
// for the tiled matmul at a fixed thread count — the cache-blocking
// design choice PluTo-SICA's "extensive cache usage" claim rests on.
// Also measures the compiler chain itself (source-to-source cost).
#include <benchmark/benchmark.h>

#include "apps/matmul.h"
#include "bench_common.h"
#include "runtime/thread_pool.h"
#include "transform/pure_chain.h"

namespace {

using purec::apps::MatmulConfig;
using purec::apps::MatmulVariant;
using purec::apps::run_matmul;

void BM_tile_size(benchmark::State& state) {
  MatmulConfig config;
  config.n = purec::bench::scaled_size(2048, 896, 256);
  config.tile = static_cast<int>(state.range(0));
  purec::rt::ThreadPool pool(8);
  for (auto _ : state) {
    const auto r = run_matmul(MatmulVariant::Pluto, config, pool);
    state.SetIterationTime(r.compute_seconds);
    benchmark::DoNotOptimize(r.checksum);
  }
}
BENCHMARK(BM_tile_size)
    ->ArgName("tile")
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// The chain's own cost: full source-to-source run on the matmul listing.
void BM_chain_end_to_end(benchmark::State& state) {
  const char* src =
      "float **A, **Bt, **C;\n"
      "pure float mult(float a, float b) { return a * b; }\n"
      "pure float dot(pure float* a, pure float* b, int size) {\n"
      "  float res = 0.0f;\n"
      "  for (int i = 0; i < size; ++i) res += mult(a[i], b[i]);\n"
      "  return res;\n"
      "}\n"
      "void k(int n) {\n"
      "  for (int i = 0; i < n; ++i)\n"
      "    for (int j = 0; j < n; ++j)\n"
      "      C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], n);\n"
      "}\n";
  for (auto _ : state) {
    purec::ChainArtifacts a = purec::run_pure_chain(src);
    benchmark::DoNotOptimize(a.final_source.data());
  }
}
BENCHMARK(BM_chain_end_to_end)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Figure 3: execution time of the matrix-matrix multiplication, GCC chain.
// Series: seq (dashed line in the paper), pure, pure_noinit (black bars),
// pluto, pluto_sica, mkl_proxy.
//
// Expected shape (paper §4.3.1): pure < pluto (the accidentally
// parallelized malloc/init loop), pure_noinit ~= pluto, pluto_sica and
// mkl_proxy fastest, MKL far ahead of all automatic versions.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/matmul.h"
#include "bench_common.h"
#include "runtime/thread_pool.h"

namespace {

using purec::apps::Compiler;
using purec::apps::MatmulConfig;
using purec::apps::MatmulVariant;
using purec::apps::run_matmul;

MatmulConfig config() {
  MatmulConfig c;
  c.n = purec::bench::scaled_size(4096, 896, 256);
  c.compiler = Compiler::Gcc;
  return c;
}

double run_variant(MatmulVariant variant, int threads) {
  purec::rt::ThreadPool pool(static_cast<std::size_t>(threads));
  // The paper measures whole-application time, which is why the
  // init-loop parallelization shows up in Fig. 3 at all.
  return run_matmul(variant, config(), pool).total_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  // The dashed sequential-baseline line of Fig. 3.
  {
    purec::rt::ThreadPool pool(1);
    const double seq =
        run_matmul(MatmulVariant::Sequential, config(), pool)
            .total_seconds();
    std::printf("fig3: sequential GCC baseline = %.3f s (paper: 22.17 s at "
                "n=4096)\n",
                seq);
  }

  purec::bench::register_series("fig3_matmul_gcc", "pure", [](int t) {
    return run_variant(MatmulVariant::Pure, t);
  });
  purec::bench::register_series("fig3_matmul_gcc", "pure_noinit", [](int t) {
    return run_variant(MatmulVariant::PureNoInit, t);
  });
  purec::bench::register_series("fig3_matmul_gcc", "pluto", [](int t) {
    return run_variant(MatmulVariant::Pluto, t);
  });
  purec::bench::register_series("fig3_matmul_gcc", "pluto_sica", [](int t) {
    return run_variant(MatmulVariant::PlutoSica, t);
  });
  purec::bench::register_series("fig3_matmul_gcc", "mkl_proxy", [](int t) {
    return run_variant(MatmulVariant::MklProxy, t);
  });

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

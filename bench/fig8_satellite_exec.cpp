// Figure 8: execution time of the satellite image filter (AOD retrieval).
//
// Only the pure chain can parallelize this code (the filter function is
// far beyond polyhedral analysis; §4.3.3) — hence no PluTo series.
// Expected shape: good scaling everywhere; static scheduling suffers from
// the late-scene imbalance; schedule(dynamic,1) (the paper's manual
// adaptation) repairs it; the hand-tuned dynamic version leads.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/satellite.h"
#include "bench_common.h"
#include "runtime/thread_pool.h"

namespace {

using purec::apps::Compiler;
using purec::apps::SatelliteConfig;
using purec::apps::SatelliteVariant;
using purec::apps::run_satellite;

SatelliteConfig config() {
  SatelliteConfig c;
  // full: MODIS granule (cross-track × along-track); smoke: just enough
  // pixels to exercise the imbalance machinery.
  c.width = purec::bench::scaled_size(1354, c.width, 96);
  c.height = purec::bench::scaled_size(2030, c.height, 96);
  c.bands = purec::bench::scaled_size(8, c.bands, 4);
  return c;
}

double run_variant(SatelliteVariant variant, int threads) {
  purec::rt::ThreadPool pool(static_cast<std::size_t>(threads));
  return run_satellite(variant, config(), pool).compute_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  {
    purec::rt::ThreadPool pool(1);
    std::printf("fig8: sequential baseline = %.3f s\n",
                run_satellite(SatelliteVariant::Sequential, config(), pool)
                    .compute_seconds);
  }

  purec::bench::register_series("fig8_satellite_exec", "auto_static",
                                [](int t) {
    return run_variant(SatelliteVariant::AutoStatic, t);
  });
  purec::bench::register_series("fig8_satellite_exec", "auto_dynamic",
                                [](int t) {
    return run_variant(SatelliteVariant::AutoDynamic, t);
  });
  purec::bench::register_series("fig8_satellite_exec", "hand_dynamic",
                                [](int t) {
    return run_variant(SatelliteVariant::HandDynamic, t);
  });

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

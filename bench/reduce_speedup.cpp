// Scalar-reduction speedup harness (the reduction-recognition perf
// contract), emitting machine-readable BENCH_reduce.json.
//
// Two kernels the chain now parallelizes via reduction clauses instead of
// mis-serializing:
//   dot  — float dot product folded with `+` (the dot_reduce fixture's
//          runtime twin: parallel_reduce over a pure combiner)
//   min  — float minimum folded with fminf-style min
// Each runs serially and through parallel_reduce at 1/2/4/8 threads
// (clamped by PUREC_MAX_THREADS) under the static, guided and stealing
// schedules. Inputs are integer-valued floats with totals far below 2^24,
// so + is exact in any association order and every parallel checksum must
// equal the serial one bit for bit — a mismatch is a reduction-combine
// bug and the harness exits nonzero.
//
// JSON schema: see EXPERIMENTS.md ("Reduction speedup"). Output path:
// $PUREC_BENCH_JSON or ./BENCH_reduce.json.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Row {
  std::string kernel;
  std::string schedule;
  int threads;  // 0 = the serial reference
  double seconds;
  double checksum;
};

std::string json_number(double v) {
  // JSON numbers may not be NaN/Inf; emit null instead of invalid JSON if
  // a timer or checksum goes bad.
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::vector<int> reduce_threads() {
  std::int64_t max_threads = 8;
  if (const char* env = std::getenv("PUREC_MAX_THREADS")) {
    const std::int64_t clamp = std::atoll(env);
    if (clamp > 0 && clamp < max_threads) max_threads = clamp;
  }
  std::vector<int> ladder;
  for (std::int64_t t = 1; t <= max_threads; t *= 2)
    ladder.push_back(static_cast<int>(t));
  return ladder;
}

/// Best-of-PUREC_REPS wall time for one run of `work()`, which returns
/// the checksum (also verified to be identical across repetitions).
template <class Work>
Row time_best(const std::string& kernel, const std::string& schedule,
              int threads, Work&& work) {
  const int reps = purec::bench::repetitions();
  double best = 0.0;
  double checksum = 0.0;
  for (int r = 0; r < reps; ++r) {
    const Clock::time_point start = Clock::now();
    const double value = work();
    const double elapsed = seconds_since(start);
    if (r == 0 || elapsed < best) best = elapsed;
    checksum = value;
  }
  return {kernel, schedule, threads, best, checksum};
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  const bool smoke = purec::bench::smoke_scale();
  const std::int64_t n = purec::bench::scaled_size(1 << 26, 1 << 24, 1 << 16);

  // Integer-valued inputs: products stay <= 120, and n * 120 < 2^33 fits a
  // double-precision accumulator exactly, so the float partials combined
  // into double totals are order-independent.
  std::vector<float> a(static_cast<std::size_t>(n));
  std::vector<float> b(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i)] = static_cast<float>((i * 7 + 3) % 11);
    b[static_cast<std::size_t>(i)] = static_cast<float>((i * 5 + 2) % 13);
  }

  const auto dot_body = [&](std::int64_t i) {
    return static_cast<double>(a[static_cast<std::size_t>(i)]) *
           static_cast<double>(b[static_cast<std::size_t>(i)]);
  };
  const auto min_body = [&](std::int64_t i) {
    return static_cast<double>(a[static_cast<std::size_t>(i)]) -
           static_cast<double>(b[static_cast<std::size_t>(i)]);
  };
  const auto plus = [](double x, double y) { return x + y; };
  const auto min = [](double x, double y) { return x < y ? x : y; };

  std::vector<Row> rows;

  // Serial references: plain accumulation loops, no pool.
  rows.push_back(time_best("dot", "serial", 0, [&] {
    double sum = 0.0;
    for (std::int64_t i = 0; i < n; ++i) sum += dot_body(i);
    return sum;
  }));
  rows.push_back(time_best("min", "serial", 0, [&] {
    double lo = min_body(0);
    for (std::int64_t i = 1; i < n; ++i) lo = min(lo, min_body(i));
    return lo;
  }));
  const double dot_serial = rows[0].checksum;
  const double min_serial = rows[1].checksum;
  const double dot_serial_s = rows[0].seconds;
  const double min_serial_s = rows[1].seconds;

  struct Sched {
    const char* name;
    purec::rt::ForOptions options;
  };
  const Sched schedules[] = {
      {"static", {purec::rt::Schedule::Static, 1}},
      {"guided4", {purec::rt::Schedule::Guided, 4}},
      {"stealing", {purec::rt::Schedule::Dynamic, 1024, /*stealing=*/true}},
  };

  std::printf("reduce speedup: n=%lld, best of %d rep(s)\n",
              static_cast<long long>(n), purec::bench::repetitions());
  std::printf("%-8s%-10s%8s%12s%10s\n", "kernel", "schedule", "threads",
              "ms", "speedup");
  std::printf("%-8s%-10s%8s%12.1f%10s\n", "dot", "serial", "-",
              dot_serial_s * 1e3, "1.00x");
  std::printf("%-8s%-10s%8s%12.1f%10s\n", "min", "serial", "-",
              min_serial_s * 1e3, "1.00x");

  for (const int threads : reduce_threads()) {
    purec::rt::ThreadPool pool(static_cast<std::size_t>(threads));
    for (const Sched& sched : schedules) {
      const Row dot_row = time_best("dot", sched.name, threads, [&] {
        return purec::rt::parallel_reduce(pool, 0, n, 0.0, plus, dot_body,
                                          sched.options);
      });
      const Row min_row = time_best("min", sched.name, threads, [&] {
        return purec::rt::parallel_reduce(pool, 0, n, min_body(0), min,
                                          min_body, sched.options);
      });
      std::printf("%-8s%-10s%8d%12.1f%9.2fx\n", "dot", sched.name, threads,
                  dot_row.seconds * 1e3, dot_serial_s / dot_row.seconds);
      std::printf("%-8s%-10s%8d%12.1f%9.2fx\n", "min", sched.name, threads,
                  min_row.seconds * 1e3, min_serial_s / min_row.seconds);
      rows.push_back(dot_row);
      rows.push_back(min_row);
    }
  }

  // Exact cross-validation: every parallel fold must reproduce the serial
  // checksum bit for bit (the data makes + order-independent; min always
  // is). A drift is a combine bug, not noise.
  bool checksums_ok = true;
  for (const Row& row : rows) {
    const double expected = row.kernel == "dot" ? dot_serial : min_serial;
    if (row.checksum != expected) {
      std::fprintf(stderr,
                   "reduce_speedup: checksum mismatch for %s/%s@%d "
                   "(%.6f vs %.6f)\n",
                   row.kernel.c_str(), row.schedule.c_str(), row.threads,
                   row.checksum, expected);
      checksums_ok = false;
    }
  }

  const char* json_path_env = std::getenv("PUREC_BENCH_JSON");
  const std::string json_path =
      json_path_env != nullptr ? json_path_env : "BENCH_reduce.json";
  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "reduce_speedup: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"reduce_speedup\",\n");
  purec::bench::write_json_host_fields(out);
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"n\": %lld,\n", static_cast<long long>(n));
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"kernel\": \"%s\", \"schedule\": \"%s\", "
                 "\"threads\": %d, \"seconds\": %s, \"checksum\": %s}%s\n",
                 row.kernel.c_str(), row.schedule.c_str(), row.threads,
                 json_number(row.seconds).c_str(),
                 json_number(row.checksum).c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", json_path.c_str());

  return checksums_ok ? 0 : 1;
}

// Region-scheduling A/B harness (the fission / fusion / privatization
// perf contract), emitting machine-readable BENCH_region_schedule.json.
//
// Three kernels, each timed in the shape the chain used to emit (the
// "before" variant) and the shape the region scheduler now emits:
//   fusion  — two adjacent maps over one input: two parallel passes
//             ("unfused") vs one fused pass ("fused")
//   fission — a prefix scan plus an independent map in one loop: the
//             whole nest serial ("serialized", the pre-distribution
//             outcome) vs serial scan + parallel map ("fissioned")
//   private — a temp-carrying imperfect nest: serial outer loop
//             ("serialized") vs parallel outer loop with a per-iteration
//             private temporary ("privatized")
// Inputs are integer-valued floats and no variant reassociates a
// floating-point fold, so every variant at every thread count must
// reproduce the serial checksum bit for bit — a mismatch is a scheduling
// bug and the harness exits nonzero.
//
// JSON schema: see EXPERIMENTS.md ("Region scheduling"). Output path:
// $PUREC_BENCH_JSON or ./BENCH_region_schedule.json.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Row {
  std::string kernel;
  std::string variant;
  int threads;  // 0 = the serial reference / before-shape
  double seconds;
  double checksum;
};

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::vector<int> bench_threads() {
  std::int64_t max_threads = 8;
  if (const char* env = std::getenv("PUREC_MAX_THREADS")) {
    const std::int64_t clamp = std::atoll(env);
    if (clamp > 0 && clamp < max_threads) max_threads = clamp;
  }
  std::vector<int> ladder;
  for (std::int64_t t = 1; t <= max_threads; t *= 2)
    ladder.push_back(static_cast<int>(t));
  return ladder;
}

/// Best-of-PUREC_REPS wall time for `work()` (the kernel only); the
/// checksum fold runs after the clock stops so the measured region is
/// exactly what the chain's scheduling decision changes.
template <class Work, class Sum>
Row time_best(const std::string& kernel, const std::string& variant,
              int threads, Work&& work, Sum&& sum) {
  const int reps = purec::bench::repetitions();
  double best = 0.0;
  double checksum = 0.0;
  for (int r = 0; r < reps; ++r) {
    const Clock::time_point start = Clock::now();
    work();
    const double elapsed = seconds_since(start);
    if (r == 0 || elapsed < best) best = elapsed;
    checksum = sum();
  }
  return {kernel, variant, threads, best, checksum};
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  const bool smoke = purec::bench::smoke_scale();
  const std::int64_t n =
      purec::bench::scaled_size(1 << 25, 1 << 23, 1 << 15);
  const std::int64_t m = 64;  // inner extent of the private-temp nest
  const std::int64_t rows_n = n / m;

  std::vector<float> x(static_cast<std::size_t>(n));
  std::vector<float> a(static_cast<std::size_t>(n));
  std::vector<float> b(static_cast<std::size_t>(n));
  std::vector<float> acc(static_cast<std::size_t>(n));
  std::vector<float> out(static_cast<std::size_t>(n));
  std::vector<float> w(static_cast<std::size_t>(m));
  std::vector<float> grid(static_cast<std::size_t>(rows_n * m));
  for (std::int64_t i = 0; i < n; ++i)
    x[static_cast<std::size_t>(i)] = static_cast<float>((i * 7 + 3) % 23);
  for (std::int64_t j = 0; j < m; ++j)
    w[static_cast<std::size_t>(j)] = static_cast<float>((j * 5 + 2) % 13);

  // Checksums fold into doubles with a position weight so a variant that
  // scrambles *where* values land (not just what they are) also trips.
  const auto sum_fusion = [&] {
    double c = 0.0;
    for (std::int64_t i = 0; i < n; ++i)
      c += static_cast<double>(a[static_cast<std::size_t>(i)]) * (i % 5) +
           static_cast<double>(b[static_cast<std::size_t>(i)]);
    return c;
  };
  const auto sum_fission = [&] {
    double c = 0.0;
    for (std::int64_t i = 0; i < n; ++i)
      c += static_cast<double>(acc[static_cast<std::size_t>(i)]) * (i % 3) +
           static_cast<double>(out[static_cast<std::size_t>(i)]);
    return c;
  };
  const auto sum_private = [&] {
    double c = 0.0;
    for (std::int64_t i = 0; i < rows_n * m; ++i)
      c += static_cast<double>(grid[static_cast<std::size_t>(i)]) *
           (i % 7 + 1);
    return c;
  };

  // The scan seed must be identical across variants.
  const auto reset_scan = [&] {
    acc[0] = x[0];
  };

  std::vector<Row> rows;

  // -- Serial references (also the "before" shapes at threads=0) -----------
  rows.push_back(time_best(
      "fusion", "serial", 0,
      [&] {
        for (std::int64_t i = 0; i < n; ++i) {
          const std::size_t s = static_cast<std::size_t>(i);
          a[s] = 2.0f * x[s];
          b[s] = x[s] + 3.0f;
        }
      },
      sum_fusion));
  rows.push_back(time_best(
      "fission", "serialized", 0,
      [&] {
        reset_scan();
        for (std::int64_t i = 0; i < n; ++i) {
          const std::size_t s = static_cast<std::size_t>(i);
          if (i > 0) acc[s] = acc[s - 1] + x[s];
          out[s] = 2.0f * x[s];
        }
      },
      sum_fission));
  rows.push_back(time_best(
      "private", "serialized", 0,
      [&] {
        for (std::int64_t i = 0; i < rows_n; ++i) {
          const float t = 0.5f * x[static_cast<std::size_t>(i)];
          for (std::int64_t j = 0; j < m; ++j)
            grid[static_cast<std::size_t>(i * m + j)] =
                t * w[static_cast<std::size_t>(j)];
        }
      },
      sum_private));
  const double fusion_ref = rows[0].checksum;
  const double fission_ref = rows[1].checksum;
  const double private_ref = rows[2].checksum;
  const double fusion_ref_s = rows[0].seconds;
  const double fission_ref_s = rows[1].seconds;
  const double private_ref_s = rows[2].seconds;

  std::printf("region schedule: n=%lld, best of %d rep(s)\n",
              static_cast<long long>(n), purec::bench::repetitions());
  std::printf("%-10s%-12s%8s%12s%10s\n", "kernel", "variant", "threads",
              "ms", "speedup");
  for (const Row& row : rows)
    std::printf("%-10s%-12s%8s%12.1f%10s\n", row.kernel.c_str(),
                row.variant.c_str(), "-", row.seconds * 1e3, "1.00x");

  for (const int threads : bench_threads()) {
    purec::rt::ThreadPool pool(static_cast<std::size_t>(threads));

    // fusion: two parallel passes (what separate nests cost) vs the one
    // fused pass the chain now emits.
    const Row unfused = time_best(
        "fusion", "unfused", threads,
        [&] {
          purec::rt::parallel_for(pool, 0, n, [&](std::int64_t i) {
            const std::size_t s = static_cast<std::size_t>(i);
            a[s] = 2.0f * x[s];
          });
          purec::rt::parallel_for(pool, 0, n, [&](std::int64_t i) {
            const std::size_t s = static_cast<std::size_t>(i);
            b[s] = x[s] + 3.0f;
          });
        },
        sum_fusion);
    const Row fused = time_best(
        "fusion", "fused", threads,
        [&] {
          purec::rt::parallel_for(pool, 0, n, [&](std::int64_t i) {
            const std::size_t s = static_cast<std::size_t>(i);
            a[s] = 2.0f * x[s];
            b[s] = x[s] + 3.0f;
          });
        },
        sum_fusion);

    // fission: distribution leaves the scan serial but frees the map.
    const Row fissioned = time_best(
        "fission", "fissioned", threads,
        [&] {
          reset_scan();
          for (std::int64_t i = 1; i < n; ++i) {
            const std::size_t s = static_cast<std::size_t>(i);
            acc[s] = acc[s - 1] + x[s];
          }
          purec::rt::parallel_for(pool, 0, n, [&](std::int64_t i) {
            const std::size_t s = static_cast<std::size_t>(i);
            out[s] = 2.0f * x[s];
          });
        },
        sum_fission);

    // private: the outer loop parallelizes once the temp is private.
    const Row privatized = time_best(
        "private", "privatized", threads,
        [&] {
          purec::rt::parallel_for(pool, 0, rows_n, [&](std::int64_t i) {
            const float t = 0.5f * x[static_cast<std::size_t>(i)];
            for (std::int64_t j = 0; j < m; ++j)
              grid[static_cast<std::size_t>(i * m + j)] =
                  t * w[static_cast<std::size_t>(j)];
          });
        },
        sum_private);

    for (const Row* row : {&unfused, &fused, &fissioned, &privatized}) {
      const double ref_s = row->kernel == "fusion"    ? fusion_ref_s
                           : row->kernel == "fission" ? fission_ref_s
                                                      : private_ref_s;
      std::printf("%-10s%-12s%8d%12.1f%9.2fx\n", row->kernel.c_str(),
                  row->variant.c_str(), row->threads, row->seconds * 1e3,
                  ref_s / row->seconds);
      rows.push_back(*row);
    }
  }

  // Exact cross-validation: each kernel's outputs are order-independent
  // (every element written exactly once, no reassociated folds), so any
  // checksum drift is a scheduling bug, not noise.
  bool checksums_ok = true;
  for (const Row& row : rows) {
    const double expected = row.kernel == "fusion"    ? fusion_ref
                            : row.kernel == "fission" ? fission_ref
                                                      : private_ref;
    if (row.checksum != expected) {
      std::fprintf(stderr,
                   "region_schedule: checksum mismatch for %s/%s@%d "
                   "(%.6f vs %.6f)\n",
                   row.kernel.c_str(), row.variant.c_str(), row.threads,
                   row.checksum, expected);
      checksums_ok = false;
    }
  }

  const char* json_path_env = std::getenv("PUREC_BENCH_JSON");
  const std::string json_path =
      json_path_env != nullptr ? json_path_env : "BENCH_region_schedule.json";
  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "region_schedule: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"benchmark\": \"region_schedule\",\n");
  purec::bench::write_json_host_fields(json);
  std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(json, "  \"n\": %lld,\n", static_cast<long long>(n));
  std::fprintf(json, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(json,
                 "    {\"kernel\": \"%s\", \"variant\": \"%s\", "
                 "\"threads\": %d, \"seconds\": %s, \"checksum\": %s}%s\n",
                 row.kernel.c_str(), row.variant.c_str(), row.threads,
                 json_number(row.seconds).c_str(),
                 json_number(row.checksum).c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());

  return checksums_ok ? 0 : 1;
}

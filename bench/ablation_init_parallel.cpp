// Ablation for the §4.3.1 anecdote: isolates the matmul *initialization*
// (the malloc/fill loop) and measures it sequential vs. parallelized —
// the hidden difference that made `pure` beat plain PluTo in Fig. 3.
// Series report the init phase only.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/matmul.h"
#include "bench_common.h"
#include "runtime/thread_pool.h"

namespace {

using purec::apps::MatmulConfig;
using purec::apps::MatmulVariant;
using purec::apps::run_matmul;

MatmulConfig config() {
  MatmulConfig c;
  c.n = purec::bench::scaled_size(4096, 1536, 256);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  purec::bench::register_series(
      "ablation_init", "init_parallel(pure)", [](int t) {
        purec::rt::ThreadPool pool(static_cast<std::size_t>(t));
        // Pure = chain output with the accidentally-parallel init loop.
        return run_matmul(MatmulVariant::Pure, config(), pool).init_seconds;
      });
  purec::bench::register_series(
      "ablation_init", "init_sequential(pluto)", [](int t) {
        purec::rt::ThreadPool pool(static_cast<std::size_t>(t));
        return run_matmul(MatmulVariant::PureNoInit, config(), pool)
            .init_seconds;
      });

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Shared bench-harness infrastructure: the paper's core ladder (1..64),
// full-scale toggle, and helpers to register per-variant series with
// google-benchmark using manual (kernel-only) timing.
//
// Environment knobs:
//   PUREC_FULL=1         paper-scale problem sizes (4096^2 matrices, ...)
//   PUREC_SMOKE=1        CI-sized problems: correctness-of-harness runs
//                        only, numbers are meaningless (set by bench-smoke)
//   PUREC_REPS=<n>       repetitions per configuration (paper: 20)
//   PUREC_MAX_THREADS=<n> clamp the thread ladder (default: full 1..64)
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace purec::bench {

[[nodiscard]] inline bool full_scale() {
  const char* env = std::getenv("PUREC_FULL");
  return env != nullptr && env[0] == '1';
}

/// bench-smoke clamp: shrink problem sizes so a one-repetition pass over
/// every harness finishes in seconds (the fig8/fig9 satellite scenes
/// otherwise dominate at ~23 s each). PUREC_FULL wins when both are set.
[[nodiscard]] inline bool smoke_scale() {
  if (full_scale()) return false;
  const char* env = std::getenv("PUREC_SMOKE");
  return env != nullptr && env[0] == '1';
}

/// Problem-size ladder helper: full-scale / default / smoke.
[[nodiscard]] inline int scaled_size(int full, int normal, int smoke) {
  if (full_scale()) return full;
  return smoke_scale() ? smoke : normal;
}

[[nodiscard]] inline int repetitions() {
  const char* env = std::getenv("PUREC_REPS");
  if (env == nullptr) return 1;
  const int reps = std::atoi(env);
  return reps > 0 ? reps : 1;
}

[[nodiscard]] inline unsigned bench_hardware_concurrency() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

/// Host-honesty fields every BENCH_*.json writer stamps right after its
/// "benchmark" field: the node's hardware concurrency and a
/// `container_1core` flag. When the flag is true (CI containers pinned to
/// one core) every multi-worker row oversubscribes a single core — the
/// numbers measure contention behavior, not scaling, and readers of the
/// committed artifacts can tell which is which without knowing where the
/// file was produced.
inline void write_json_host_fields(std::FILE* out) {
  const unsigned hc = bench_hardware_concurrency();
  std::fprintf(out,
               "  \"hardware_concurrency\": %u,\n"
               "  \"container_1core\": %s,\n",
               hc, hc <= 1 ? "true" : "false");
}

/// The paper's ladder: 2^0 .. 2^6 cores. Values above the hardware
/// concurrency oversubscribe (flagged in EXPERIMENTS.md), exactly like
/// running the paper's 64-core sweep on a smaller node.
[[nodiscard]] inline std::vector<std::int64_t> thread_ladder() {
  std::int64_t max_threads = 64;
  if (const char* env = std::getenv("PUREC_MAX_THREADS")) {
    const std::int64_t clamp = std::atoll(env);
    if (clamp > 0) max_threads = clamp;
  }
  std::vector<std::int64_t> ladder;
  for (std::int64_t t = 1; t <= max_threads; t *= 2) ladder.push_back(t);
  return ladder;
}

/// Registers one benchmark series `<figure>/<name>/threads:T` for every T
/// in the ladder. `run` returns the measured seconds for one repetition
/// at the given thread count (manual timing: setup excluded by the
/// runner, included only if the app counts it).
inline void register_series(
    const std::string& figure, const std::string& name,
    const std::function<double(int threads)>& run) {
  for (const std::int64_t threads : thread_ladder()) {
    benchmark::RegisterBenchmark(
        (figure + "/" + name).c_str(),
        [run](benchmark::State& state) {
          const int t = static_cast<int>(state.range(0));
          for (auto _ : state) {
            state.SetIterationTime(run(t));
          }
        })
        ->Arg(threads)
        ->ArgName("threads")
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(repetitions());
  }
}

/// Speedup variant: reports Tseq / Tpar as the benchmark's "speedup"
/// counter (the quantity on the y-axis of Figs. 5/7/9/11).
inline void register_speedup_series(
    const std::string& figure, const std::string& name,
    double sequential_seconds,
    const std::function<double(int threads)>& run) {
  for (const std::int64_t threads : thread_ladder()) {
    benchmark::RegisterBenchmark(
        (figure + "/" + name).c_str(),
        [run, sequential_seconds](benchmark::State& state) {
          const int t = static_cast<int>(state.range(0));
          double seconds = 0.0;
          for (auto _ : state) {
            seconds = run(t);
            state.SetIterationTime(seconds);
          }
          state.counters["speedup"] = sequential_seconds / seconds;
        })
        ->Arg(threads)
        ->ArgName("threads")
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(repetitions());
  }
}

}  // namespace purec::bench

// Figure 4: execution time of the matrix-matrix multiplication with the
// ICC proxy (vectorized extracted functions).
//
// Expected shape (paper §4.3.1): `pure` gains a lot at low core counts
// because ICC vectorizes the extracted dot(); pluto/pluto_sica see little
// change ("this automatic vectorization is not carried out when the
// function is inlined"); pure converges towards the GCC-chain numbers for
// >16 cores (memory bound).
#include <benchmark/benchmark.h>

#include "apps/matmul.h"
#include "bench_common.h"
#include "runtime/thread_pool.h"

namespace {

using purec::apps::Compiler;
using purec::apps::MatmulConfig;
using purec::apps::MatmulVariant;
using purec::apps::run_matmul;

MatmulConfig config(Compiler compiler) {
  MatmulConfig c;
  c.n = purec::bench::scaled_size(4096, 896, 256);
  c.compiler = compiler;
  return c;
}

double run_variant(MatmulVariant variant, Compiler compiler, int threads) {
  purec::rt::ThreadPool pool(static_cast<std::size_t>(threads));
  return run_matmul(variant, config(compiler), pool).total_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  purec::bench::register_series("fig4_matmul_icc", "pure_icc", [](int t) {
    return run_variant(MatmulVariant::Pure, Compiler::Icc, t);
  });
  purec::bench::register_series("fig4_matmul_icc", "pluto_icc", [](int t) {
    // The inlined PluTo loop does not benefit from ICC (§4.3.1).
    return run_variant(MatmulVariant::Pluto, Compiler::Icc, t);
  });
  purec::bench::register_series("fig4_matmul_icc", "pluto_sica_icc",
                                [](int t) {
    return run_variant(MatmulVariant::PlutoSica, Compiler::Icc, t);
  });
  purec::bench::register_series("fig4_matmul_icc", "mkl", [](int t) {
    return run_variant(MatmulVariant::MklProxy, Compiler::Icc, t);
  });
  // GCC-chain pure for direct comparison (the convergence above 16 cores).
  purec::bench::register_series("fig4_matmul_icc", "pure_gcc_ref",
                                [](int t) {
    return run_variant(MatmulVariant::Pure, Compiler::Gcc, t);
  });

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

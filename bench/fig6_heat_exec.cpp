// Figure 6: execution time of the heat-distribution application.
//
// Expected shape (paper §4.3.2): the inlined PluTo version beats the pure
// chain (per-point function-call overhead: 87.8G vs 47.5G instructions);
// both flatten past ~8 cores (memory-bound stencil); GCC/ICC differences
// small.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/heat.h"
#include "bench_common.h"
#include "runtime/thread_pool.h"

namespace {

using purec::apps::Compiler;
using purec::apps::HeatConfig;
using purec::apps::HeatVariant;
using purec::apps::run_heat;

HeatConfig config(Compiler compiler) {
  HeatConfig c;
  if (purec::bench::full_scale()) {
    c.n = 4096;
    c.steps = 200;
  }
  c.compiler = compiler;
  return c;
}

double run_variant(HeatVariant variant, Compiler compiler, int threads) {
  purec::rt::ThreadPool pool(static_cast<std::size_t>(threads));
  return run_heat(variant, config(compiler), pool).compute_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  {
    purec::rt::ThreadPool pool(1);
    const double gcc_seq =
        run_heat(HeatVariant::Sequential, config(Compiler::Gcc), pool)
            .compute_seconds;
    const double icc_seq =
        run_heat(HeatVariant::Sequential, config(Compiler::Icc), pool)
            .compute_seconds;
    std::printf("fig6: sequential GCC %.3f s / ICC-proxy %.3f s "
                "(paper: 34.14 s / 31.32 s at n=4096, 200 steps)\n",
                gcc_seq, icc_seq);
  }

  purec::bench::register_series("fig6_heat_exec", "pure_gcc", [](int t) {
    return run_variant(HeatVariant::Pure, Compiler::Gcc, t);
  });
  purec::bench::register_series("fig6_heat_exec", "pure_icc", [](int t) {
    return run_variant(HeatVariant::Pure, Compiler::Icc, t);
  });
  purec::bench::register_series("fig6_heat_exec", "pluto_sica_gcc",
                                [](int t) {
    return run_variant(HeatVariant::Pluto, Compiler::Gcc, t);
  });
  purec::bench::register_series("fig6_heat_exec", "pluto_sica_icc",
                                [](int t) {
    return run_variant(HeatVariant::Pluto, Compiler::Icc, t);
  });

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Schedule sweep + pool-overhead microbenchmark (the runtime substrate's
// perf contract), emitting machine-readable BENCH_schedule_sweep.json.
//
// Part 1 — pool_overhead: region-launch latency (an empty parallel
// region, fork + join) of the seed's two-condvar/std::function pool —
// kept below verbatim as LegacyCondvarPool for an in-binary A/B — against
// the current spin-then-park FunctionRef pool, at 1/2/4/8 threads.
//
// Part 2 — satellite_sweep: the fig8 AOD workload (late-scene imbalance,
// §4.3.3) under static / dynamic / dynamic+stealing / guided × chunk
// {1,4,16,64} pixels. Checksums must agree across every configuration —
// pixels are independent, so any divergence is a scheduling bug and the
// harness exits nonzero.
//
// JSON schema: see EXPERIMENTS.md ("Schedule sweep"). Output path:
// $PUREC_BENCH_JSON or ./BENCH_schedule_sweep.json.
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/satellite.h"
#include "bench_common.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// The seed runtime's pool, reproduced verbatim (two condition variables,
// one mutex, std::function dispatch) so the overhead comparison measures
// the substrate change and nothing else.
// ---------------------------------------------------------------------------

class LegacyCondvarPool {
 public:
  explicit LegacyCondvarPool(std::size_t worker_count) {
    if (worker_count == 0) worker_count = 1;
    workers_.reserve(worker_count - 1);
    for (std::size_t i = 1; i < worker_count; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ~LegacyCondvarPool() {
    {
      std::lock_guard lock(mutex_);
      shutdown_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void run_on_all(const std::function<void(std::size_t)>& task) {
    if (workers_.empty()) {
      task(0);
      return;
    }
    {
      std::lock_guard lock(mutex_);
      task_ = &task;
      remaining_ = workers_.size();
      ++generation_;
    }
    start_cv_.notify_all();
    task(0);
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    task_ = nullptr;
  }

 private:
  void worker_loop(std::size_t index) {
    std::size_t seen_generation = 0;
    for (;;) {
      const std::function<void(std::size_t)>* task = nullptr;
      {
        std::unique_lock lock(mutex_);
        start_cv_.wait(lock, [&] {
          return shutdown_ || generation_ != seen_generation;
        });
        if (shutdown_) return;
        seen_generation = generation_;
        task = task_;
      }
      (*task)(index);
      {
        std::lock_guard lock(mutex_);
        if (--remaining_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t generation_ = 0;
  std::size_t remaining_ = 0;
  bool shutdown_ = false;
};

/// ns per empty fork/join region. Pool construction and teardown are
/// excluded; a short warmup gets every worker through its first park.
template <class Pool>
double measure_region_ns(Pool& pool, int regions) {
  for (int r = 0; r < 200; ++r) pool.run_on_all([](std::size_t) {});
  const Clock::time_point start = Clock::now();
  for (int r = 0; r < regions; ++r) pool.run_on_all([](std::size_t) {});
  return seconds_since(start) * 1e9 / regions;
}

struct OverheadRow {
  const char* pool;
  int threads;
  int os_threads;
  double ns_per_region;
};

struct SweepRow {
  std::string schedule;
  std::int64_t chunk;
  int threads;
  double seconds;
  double checksum;
};

purec::apps::SatelliteConfig sweep_config() {
  purec::apps::SatelliteConfig c;
  c.width = purec::bench::scaled_size(1354, c.width, 96);
  c.height = purec::bench::scaled_size(2030, c.height, 96);
  c.bands = purec::bench::scaled_size(8, c.bands, 4);
  return c;
}

int sweep_threads() {
  std::int64_t threads = 8;
  if (const char* env = std::getenv("PUREC_MAX_THREADS")) {
    const std::int64_t clamp = std::atoll(env);
    if (clamp > 0 && clamp < threads) threads = clamp;
  }
  return static_cast<int>(threads);
}

std::string json_escape_free_number(double v) {
  // JSON numbers may not be NaN/Inf; the harness never produces them, but
  // emit null instead of invalid JSON if a timer or checksum goes bad.
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  const bool smoke = purec::bench::smoke_scale();
  const int regions = smoke ? 2000 : 20000;

  // --- Part 1: pool overhead -------------------------------------------
  // Three pools per rung: the seed's condvar/std::function pool (always
  // one OS thread per worker), the current substrate under its default
  // policy (OS threads capped at the hardware concurrency, surplus
  // indices folded in — see thread_pool.h), and the current substrate
  // with PUREC_OVERSUBSCRIBE=1 forcing one OS thread per worker, which
  // isolates the barrier change from the virtualization change.
  std::vector<OverheadRow> overhead;
  std::printf("pool-overhead microbenchmark (%d empty regions/config)\n",
              regions);
  std::printf("%-10s%16s%16s%18s%10s\n", "threads", "seed condvar",
              "spin+park", "spin+park oversub", "ratio");
  for (const int threads : {1, 2, 4, 8}) {
    double legacy_ns = 0.0;
    {
      LegacyCondvarPool pool(static_cast<std::size_t>(threads));
      legacy_ns = measure_region_ns(pool, regions);
    }
    double current_ns = 0.0;
    int current_os_threads = 0;
    {
      purec::rt::ThreadPool pool(static_cast<std::size_t>(threads));
      current_os_threads = static_cast<int>(pool.os_thread_count());
      current_ns = measure_region_ns(pool, regions);
    }
    double oversub_ns = 0.0;
    {
      setenv("PUREC_OVERSUBSCRIBE", "1", 1);
      purec::rt::ThreadPool pool(static_cast<std::size_t>(threads));
      unsetenv("PUREC_OVERSUBSCRIBE");
      oversub_ns = measure_region_ns(pool, regions);
    }
    overhead.push_back({"seed_condvar", threads, threads, legacy_ns});
    overhead.push_back(
        {"spin_park", threads, current_os_threads, current_ns});
    overhead.push_back({"spin_park_oversub", threads, threads, oversub_ns});
    std::printf("%-10d%13.0f ns%13.0f ns%15.0f ns%9.2fx\n", threads,
                legacy_ns, current_ns, oversub_ns, legacy_ns / current_ns);
  }

  // --- Part 2: fig8 satellite schedule sweep ---------------------------
  const purec::apps::SatelliteConfig config = sweep_config();
  const int threads = sweep_threads();
  purec::rt::ThreadPool pool(static_cast<std::size_t>(threads));

  std::vector<SweepRow> sweep;
  const auto run_one = [&](const std::string& name,
                           const purec::rt::ForOptions& options,
                           std::int64_t reported_chunk) {
    const purec::apps::RunResult result =
        purec::apps::run_satellite_schedule(config, pool, options);
    sweep.push_back({name, reported_chunk, threads, result.compute_seconds,
                     result.checksum});
    std::printf("%-16s chunk=%-4lld %9.1f ms\n", name.c_str(),
                static_cast<long long>(reported_chunk),
                result.compute_seconds * 1e3);
  };

  std::printf("\nfig8 satellite sweep: %dx%dx%d pixels, %d threads\n",
              config.width, config.height, config.bands, threads);
  run_one("static", {purec::rt::Schedule::Static, 0}, 0);
  for (const std::int64_t chunk : {1, 4, 16, 64}) {
    run_one("dynamic", {purec::rt::Schedule::Dynamic, chunk}, chunk);
    run_one("dynamic_steal",
            {purec::rt::Schedule::Dynamic, chunk, /*stealing=*/true},
            chunk);
    run_one("guided", {purec::rt::Schedule::Guided, chunk}, chunk);
  }

  // Pixels are independent: every schedule must compute the identical
  // scene. A drift here is a scheduling bug, not noise.
  bool checksums_ok = true;
  for (const SweepRow& row : sweep) {
    if (row.checksum != sweep.front().checksum) {
      std::fprintf(stderr,
                   "schedule_sweep: checksum mismatch for %s,%lld "
                   "(%.6f vs %.6f)\n",
                   row.schedule.c_str(),
                   static_cast<long long>(row.chunk), row.checksum,
                   sweep.front().checksum);
      checksums_ok = false;
    }
  }

  // --- JSON artifact ---------------------------------------------------
  const char* json_path_env = std::getenv("PUREC_BENCH_JSON");
  const std::string json_path =
      json_path_env != nullptr ? json_path_env : "BENCH_schedule_sweep.json";
  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "schedule_sweep: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"schedule_sweep\",\n");
  purec::bench::write_json_host_fields(out);
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out,
               "  \"workload\": {\"name\": \"fig8_satellite\", \"width\": "
               "%d, \"height\": %d, \"bands\": %d},\n",
               config.width, config.height, config.bands);
  std::fprintf(out, "  \"pool_overhead\": [\n");
  for (std::size_t i = 0; i < overhead.size(); ++i) {
    const OverheadRow& row = overhead[i];
    std::fprintf(out,
                 "    {\"pool\": \"%s\", \"threads\": %d, "
                 "\"os_threads\": %d, \"ns_per_region\": %s}%s\n",
                 row.pool, row.threads, row.os_threads,
                 json_escape_free_number(row.ns_per_region).c_str(),
                 i + 1 < overhead.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"satellite_sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& row = sweep[i];
    std::fprintf(out,
                 "    {\"schedule\": \"%s\", \"chunk\": %lld, \"threads\": "
                 "%d, \"seconds\": %s, \"checksum\": %s}%s\n",
                 row.schedule.c_str(), static_cast<long long>(row.chunk),
                 row.threads, json_escape_free_number(row.seconds).c_str(),
                 json_escape_free_number(row.checksum).c_str(),
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", json_path.c_str());

  return checksums_ok ? 0 : 1;
}

// Served-traffic memoization benchmark (standalone main, like the other
// perf-contract harnesses), emitting machine-readable
// BENCH_memoize_served.json.
//
// Models a service: W worker threads each drain a request stream drawn
// from a finite key universe and answer every request by evaluating a
// pure handler — exactly the traffic shape PUREC_MEMO_PATH exists for.
// Three cache configurations per worker count:
//
//   private           each worker owns a cold in-process MemoCache (the
//                     per-process-cache status quo: no sharing, every
//                     worker repays the full key universe in misses)
//   shared_cold       every worker attaches its own MemoCache to ONE
//                     fresh PUREC_MEMO_PATH file — multi-attach within a
//                     process maps the same pages the fleet case maps
//                     across processes, so first-toucher misses are paid
//                     once for the whole fleet
//   shared_prewarmed  same file, but a warmup pass populated it first
//                     (the restart/redeploy case: the table outlives the
//                     workers)
//
// each crossed with full-key verification off/on, so the artifact shows
// what the 2^-25-aliasing opt-out costs on the hit path. Per config:
// hit ratio, p50/p99 request latency (log-bucketed HdrHistogram cells,
// merged across workers), throughput, and a checksum match against the
// unmemoized serial run (the correctness half of the contract).
//
// Knobs: PUREC_SMOKE/PUREC_FULL scale the stream; PUREC_MAX_THREADS
// clamps the worker ladder; output lands in $PUREC_BENCH_JSON or
// ./BENCH_memoize_served.json; the shared files live under $TMPDIR.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "runtime/memo_cache.h"
#include "runtime/stats.h"

namespace {

using purec::rt::MemoCache;
using purec::rt::MemoConfig;
using purec::rt::MemoKey;
using purec::rt::MemoStats;

constexpr std::uint64_t kHandlerFnId = 0x5345525645ULL;  // "SERVE"

int g_handler_iters = 512;

/// The pure handler every request evaluates on a miss: a deterministic
/// few-hundred-ns computation of its key (an LCG-driven sqrt sum), heavy
/// enough that a table hit is the cheap path.
[[nodiscard]] double handler(std::uint64_t key) {
  std::uint64_t state = key * 0x9e3779b97f4a7c15ULL + 1;
  double acc = 0.0;
  for (int i = 0; i < g_handler_iters; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    acc += std::sqrt(static_cast<double>((state >> 11) & 0xffff) + 1.0);
  }
  return acc;
}

/// Request r of worker w asks for this key (fixed per (w, r), independent
/// of cache mode, so every configuration serves the identical stream).
[[nodiscard]] std::uint64_t request_key(int worker, int request,
                                        int distinct) {
  const std::uint64_t r =
      (static_cast<std::uint64_t>(worker) << 32) ^
      static_cast<std::uint64_t>(request);
  return (r * 2654435761ULL) % static_cast<std::uint64_t>(distinct);
}

[[nodiscard]] std::uint64_t bits_of(double v) {
  std::uint64_t word = 0;
  std::memcpy(&word, &v, sizeof(word));
  return word;
}

[[nodiscard]] double double_of(std::uint64_t word) {
  double v = 0.0;
  std::memcpy(&v, &word, sizeof(v));
  return v;
}

struct WorkerResult {
  double checksum = 0.0;
  std::uint64_t cells[purec::rt::stats::kHistCells] = {};
  std::uint64_t recorded = 0;
};

/// One worker's request loop: probe (when a cache is given), recompute on
/// a miss, record per-request latency into the worker-local histogram.
void serve(int worker, int requests, int distinct, MemoCache* cache,
           WorkerResult* result) {
  using Clock = std::chrono::steady_clock;
  for (int r = 0; r < requests; ++r) {
    const std::uint64_t key = request_key(worker, r, distinct);
    const Clock::time_point start = Clock::now();
    double value;
    if (cache != nullptr) {
      MemoKey mk(kHandlerFnId);
      mk.add(key);
      const std::uint64_t fp = mk.hash();
      std::uint64_t word = 0;
      if (cache->lookup(fp, mk.words(), mk.word_count(), &word)) {
        value = double_of(word);
      } else {
        value = handler(key);
        cache->store(fp, mk.words(), mk.word_count(), bits_of(value));
      }
    } else {
      value = handler(key);
    }
    const std::uint64_t ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
    result->cells[purec::rt::stats::hist_index(ns)] += 1;
    result->recorded += 1;
    result->checksum += value;
  }
}

struct ConfigRow {
  int workers = 0;
  std::string mode;
  bool verify = false;
  bool shared_attached = false;
  double seconds = 0.0;
  double hit_ratio = 0.0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  bool checksum_match = false;
};

[[nodiscard]] std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  // %g can emit bare "1e+06"-style text, which is valid JSON; infinities
  // are caught above.
  return buf;
}

}  // namespace

int main() {
  const bool smoke = purec::bench::smoke_scale();
  const int requests =
      purec::bench::scaled_size(/*full=*/200000, /*normal=*/40000,
                                /*smoke=*/2000);
  const int distinct =
      purec::bench::scaled_size(/*full=*/4096, /*normal=*/1024,
                                /*smoke=*/128);
  g_handler_iters =
      purec::bench::scaled_size(/*full=*/1024, /*normal=*/512, /*smoke=*/64);

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string cache_dir = tmpdir != nullptr ? tmpdir : "/tmp";

  std::vector<int> worker_ladder;
  for (const std::int64_t t : purec::bench::thread_ladder()) {
    if (t <= 8) worker_ladder.push_back(static_cast<int>(t));
  }

  // Unmemoized serial baseline per worker count: the checksum every cached
  // configuration must reproduce bit-for-bit (pure handler, exact bit
  // pattern through the table).
  std::vector<double> baseline(static_cast<std::size_t>(9), 0.0);
  for (const int workers : worker_ladder) {
    double sum = 0.0;
    for (int w = 0; w < workers; ++w) {
      WorkerResult r;
      serve(w, requests, distinct, nullptr, &r);
      sum += r.checksum;
    }
    baseline[static_cast<std::size_t>(workers)] = sum;
  }

  const char* modes[] = {"private", "shared_cold", "shared_prewarmed"};
  std::vector<ConfigRow> rows;
  bool ok = true;

  for (const int workers : worker_ladder) {
    for (const bool verify : {false, true}) {
      for (const char* mode : modes) {
        const bool shared = std::strcmp(mode, "private") != 0;
        const bool prewarm = std::strcmp(mode, "shared_prewarmed") == 0;
        const std::string path =
            cache_dir + "/memoize_served_w" + std::to_string(workers) +
            (verify ? "_v" : "") + "_" + mode + ".cache";
        if (shared) std::remove(path.c_str());

        MemoConfig config;
        config.verify = verify;
        if (shared) config.path = path;

        if (prewarm) {
          // The restart case: a prior fleet fully populated the file.
          MemoCache warm(config);
          for (int k = 0; k < distinct; ++k) {
            MemoKey mk(kHandlerFnId);
            mk.add(static_cast<std::uint64_t>(k));
            warm.store(mk.hash(), mk.words(), mk.word_count(),
                       bits_of(handler(static_cast<std::uint64_t>(k))));
          }
        }

        // One cache per worker: private mode isolates them; shared mode
        // multi-attaches the same file (the in-process stand-in for one
        // cache instance per process).
        std::vector<std::unique_ptr<MemoCache>> caches;
        bool shared_attached = shared;
        for (int w = 0; w < workers; ++w) {
          caches.push_back(std::make_unique<MemoCache>(config));
          shared_attached = shared_attached && caches.back()->shared();
        }

        std::vector<WorkerResult> results(
            static_cast<std::size_t>(workers));
        const auto start = std::chrono::steady_clock::now();
        std::vector<std::thread> threads;
        for (int w = 0; w < workers; ++w) {
          threads.emplace_back(serve, w, requests, distinct,
                               caches[static_cast<std::size_t>(w)].get(),
                               &results[static_cast<std::size_t>(w)]);
        }
        for (std::thread& t : threads) t.join();
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();

        ConfigRow row;
        row.workers = workers;
        row.mode = mode;
        row.verify = verify;
        row.shared_attached = shared_attached;
        row.seconds = seconds;
        purec::rt::stats::HistSnapshot merged;
        double sum = 0.0;
        for (const WorkerResult& r : results) {
          sum += r.checksum;
          for (int c = 0; c < purec::rt::stats::kHistCells; ++c) {
            merged.cells[c] += r.cells[static_cast<std::size_t>(c)];
          }
          merged.count += r.recorded;
        }
        for (const std::unique_ptr<MemoCache>& cache : caches) {
          const MemoStats stats = cache->stats();
          row.hits += stats.hits;
          row.misses += stats.misses;
        }
        row.hit_ratio =
            row.hits + row.misses == 0
                ? 0.0
                : static_cast<double>(row.hits) /
                      static_cast<double>(row.hits + row.misses);
        row.p50_ns = purec::rt::stats::hist_percentile(merged, 50);
        row.p99_ns = purec::rt::stats::hist_percentile(merged, 99);
        row.checksum_match =
            sum == baseline[static_cast<std::size_t>(workers)];
        ok = ok && row.checksum_match;
        rows.push_back(row);
        if (shared) std::remove(path.c_str());

        std::printf(
            "memoize_served: workers=%d mode=%s verify=%d hit_ratio=%.4f "
            "p50_ns=%llu p99_ns=%llu rps=%.0f checksum=%s\n",
            workers, mode, verify ? 1 : 0, row.hit_ratio,
            static_cast<unsigned long long>(row.p50_ns),
            static_cast<unsigned long long>(row.p99_ns),
            static_cast<double>(workers) * requests / seconds,
            row.checksum_match ? "ok" : "MISMATCH");
      }
    }
  }

  // The headline claim the committed artifact must witness: a prewarmed
  // shared table beats cold private tables on hit ratio at every worker
  // count (each private worker repays all `distinct` first-touch misses;
  // the prewarmed file starts fully resident).
  for (const ConfigRow& a : rows) {
    if (a.mode != "shared_prewarmed") continue;
    for (const ConfigRow& b : rows) {
      if (b.mode != "private" || b.workers != a.workers ||
          b.verify != a.verify) {
        continue;
      }
      if (a.hit_ratio <= b.hit_ratio) {
        std::fprintf(stderr,
                     "memoize_served: shared_prewarmed hit ratio %.4f not "
                     "above private %.4f at workers=%d verify=%d\n",
                     a.hit_ratio, b.hit_ratio, a.workers, a.verify ? 1 : 0);
        ok = false;
      }
    }
  }

  const char* json_path_env = std::getenv("PUREC_BENCH_JSON");
  const std::string json_path =
      json_path_env != nullptr ? json_path_env : "BENCH_memoize_served.json";
  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "memoize_served: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"memoize_served\",\n");
  purec::bench::write_json_host_fields(out);
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out,
               "  \"workload\": {\"requests_per_worker\": %d, "
               "\"distinct_keys\": %d, \"handler_iters\": %d},\n",
               requests, distinct, g_handler_iters);
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ConfigRow& r = rows[i];
    std::fprintf(
        out,
        "    {\"workers\": %d, \"mode\": \"%s\", \"verify\": %s, "
        "\"shared_attached\": %s, \"seconds\": %s, "
        "\"requests_per_sec\": %s, \"hit_ratio\": %s, \"hits\": %llu, "
        "\"misses\": %llu, \"p50_ns\": %llu, \"p99_ns\": %llu, "
        "\"checksum_match\": %s}%s\n",
        r.workers, r.mode.c_str(), r.verify ? "true" : "false",
        r.shared_attached ? "true" : "false", json_number(r.seconds).c_str(),
        json_number(static_cast<double>(r.workers) * requests / r.seconds)
            .c_str(),
        json_number(r.hit_ratio).c_str(),
        static_cast<unsigned long long>(r.hits),
        static_cast<unsigned long long>(r.misses),
        static_cast<unsigned long long>(r.p50_ns),
        static_cast<unsigned long long>(r.p99_ns),
        r.checksum_match ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", json_path.c_str());

  return ok ? 0 : 1;
}

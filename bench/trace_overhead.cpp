// The tracing tax, measured in three lanes (ROADMAP: observability must
// be opt-in and free when off):
//
//   compiled_out         this file built WITHOUT -DPUREC_RT_TRACE (the
//                        production configuration; hooks are if-constexpr
//                        dead code)
//   compiled_in_disabled built with -DPUREC_RT_TRACE=1 but no trace path
//                        set: the per-chunk cost is one branch on a
//                        cached activation flag
//   enabled              actively recording chunk/region events into the
//                        per-worker rings (no file I/O — dumps happen at
//                        exit, outside the timed region)
//
// The same source produces two binaries (bench/CMakeLists.txt):
// `trace_overhead` measures the first lane, `trace_overhead_traced` the
// other two. Both write the SAME BENCH_trace_overhead.json via
// merge-on-write — each run re-reads the file and replaces only its own
// lanes — so running both binaries back to back yields the committed
// three-lane document.
//
// The workload is deliberately trace-hostile: many tiny dynamic chunks,
// so the per-chunk hook cost is as large a fraction of the region as it
// ever gets. Real kernels see a smaller relative tax.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "runtime/trace.h"
#include "support/json.h"

namespace {

using Clock = std::chrono::steady_clock;
using purec::rt::ForOptions;
using purec::rt::Schedule;
using purec::rt::ThreadPool;
namespace trace = purec::rt::trace;

struct Row {
  std::string variant;
  int threads = 0;
  double ns_per_region = 0.0;
};

/// Rank for stable row order in the merged JSON (compiled_out first).
int variant_rank(const std::string& variant) {
  if (variant == "compiled_out") return 0;
  if (variant == "compiled_in_disabled") return 1;
  if (variant == "enabled") return 2;
  return 3;
}

/// One timed pass: `regions` launches of a 1024-iteration dynamic
/// chunk=16 loop (64 claims per region). Returns ns per region. When
/// tracing is live the rings are drained every 32 regions so the whole
/// run measures the record path, never the saturated drop path.
double measure(ThreadPool& pool, int regions, bool drain) {
  ForOptions options;
  options.schedule = Schedule::Dynamic;
  options.chunk = 16;
  options.region_id = 1;
  volatile std::int64_t sink = 0;
  const auto start = Clock::now();
  for (int r = 0; r < regions; ++r) {
    if (drain && (r & 31) == 0) trace::reset();
    purec::rt::parallel_for(
        pool, 0, 1024,
        [&](std::int64_t i) { sink = sink + (i & 7); }, options);
  }
  const double ns =
      std::chrono::duration<double, std::nano>(Clock::now() - start)
          .count();
  return ns / regions;
}

double best_of(ThreadPool& pool, int reps, int regions, bool drain) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const double ns = measure(pool, regions, drain);
    if (best == 0.0 || ns < best) best = ns;
  }
  return best;
}

std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.5f", v);
  return buf;
}

/// Merge-on-write: keep rows from an existing trace_overhead document
/// whose variant this binary does not re-measure.
std::vector<Row> retained_rows(const std::string& path,
                               const std::vector<Row>& fresh) {
  std::vector<Row> kept;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return kept;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  const auto doc = purec::json::parse(text);
  if (!doc.has_value() || doc->find("benchmark") == nullptr ||
      doc->find("benchmark")->as_string() != "trace_overhead") {
    return kept;
  }
  const purec::json::Value* results = doc->find("results");
  const auto* rows = results != nullptr ? results->as_array() : nullptr;
  if (rows == nullptr) return kept;
  for (const purec::json::Value& row : *rows) {
    Row r;
    if (const auto* v = row.find("variant")) r.variant = v->as_string();
    if (const auto* v = row.find("threads")) {
      r.threads = static_cast<int>(v->as_int());
    }
    if (const auto* v = row.find("ns_per_region")) {
      r.ns_per_region = v->as_double();
    }
    bool replaced = false;
    for (const Row& f_row : fresh) {
      if (f_row.variant == r.variant && f_row.threads == r.threads) {
        replaced = true;
        break;
      }
    }
    if (!replaced && variant_rank(r.variant) < 3) kept.push_back(r);
  }
  return kept;
}

}  // namespace

int main() {
  const bool smoke = purec::bench::smoke_scale();
  const int regions = smoke ? 64 : 4096;
  const int reps = purec::bench::repetitions() > 1
                       ? purec::bench::repetitions()
                       : (smoke ? 1 : 5);

  std::vector<Row> rows;
  for (const std::int64_t threads : purec::bench::thread_ladder()) {
    if (threads > 8) break;  // the committed ladder is 1/2/4/8
    ThreadPool pool(static_cast<std::size_t>(threads));
    // Warm the pool (thread spawn + first-touch) outside the timing.
    measure(pool, 8, false);
    if constexpr (!trace::kEnabled) {
      rows.push_back({"compiled_out", static_cast<int>(threads),
                      best_of(pool, reps, regions, false)});
      std::printf("trace_overhead: compiled_out threads=%lld "
                  "ns_per_region=%.1f\n",
                  static_cast<long long>(threads), rows.back().ns_per_region);
    } else {
      trace::set_path_for_testing(nullptr);
      rows.push_back({"compiled_in_disabled", static_cast<int>(threads),
                      best_of(pool, reps, regions, false)});
      std::printf("trace_overhead: compiled_in_disabled threads=%lld "
                  "ns_per_region=%.1f\n",
                  static_cast<long long>(threads), rows.back().ns_per_region);
      // Activate with a scratch destination; events stay in the rings
      // (no dump inside the timed loop) and are discarded afterwards.
      trace::set_path_for_testing("purec_trace_overhead_scratch.json");
      rows.push_back({"enabled", static_cast<int>(threads),
                      best_of(pool, reps, regions, true)});
      trace::set_path_for_testing(nullptr);
      trace::reset();
      std::printf("trace_overhead: enabled threads=%lld "
                  "ns_per_region=%.1f\n",
                  static_cast<long long>(threads), rows.back().ns_per_region);
    }
  }

  const char* json_path_env = std::getenv("PUREC_BENCH_JSON");
  const std::string json_path =
      json_path_env != nullptr ? json_path_env : "BENCH_trace_overhead.json";
  std::vector<Row> all = retained_rows(json_path, rows);
  all.insert(all.end(), rows.begin(), rows.end());
  std::sort(all.begin(), all.end(), [](const Row& a, const Row& b) {
    if (variant_rank(a.variant) != variant_rank(b.variant)) {
      return variant_rank(a.variant) < variant_rank(b.variant);
    }
    return a.threads < b.threads;
  });

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "trace_overhead: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"trace_overhead\",\n");
  purec::bench::write_json_host_fields(out);
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out,
               "  \"workload\": {\"iterations\": 1024, \"chunk\": 16, "
               "\"schedule\": \"dynamic\", \"regions\": %d},\n",
               regions);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < all.size(); ++i) {
    std::fprintf(out,
                 "    {\"variant\": \"%s\", \"threads\": %d, "
                 "\"ns_per_region\": %s}%s\n",
                 all[i].variant.c_str(), all[i].threads,
                 json_number(all[i].ns_per_region).c_str(),
                 i + 1 < all.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

// Figure 2: invalid vs. valid tiling of a skewed iteration space.
//
// This binary reproduces the figure's *content* analytically: it runs the
// dependence analyzer on the 1-D time stencil, prints the dependence
// structure, shows that the untransformed axes do NOT form a permutable
// band (the "red", invalid tiling), and that the (1,0)/(1,1) skew does
// (the "green", valid tiling). It also benchmarks the analysis itself
// (dependence test + schedule search) with google-benchmark.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "parser/parser.h"
#include "polyhedral/schedule.h"
#include "support/diagnostics.h"

namespace {

constexpr const char* kStencil =
    "void k(float* a, int steps, int n) {\n"
    "  for (int t = 0; t < steps; t++)\n"
    "    for (int i = 1; i < n - 1; i++)\n"
    "      a[i] = 0.33f * (a[i - 1] + a[i] + a[i + 1]);\n"
    "}\n";

struct Analysis {
  purec::TranslationUnit tu;
  purec::poly::Scop scop;
  std::vector<purec::poly::Dependence> deps;
};

Analysis analyze() {
  Analysis out;
  purec::SourceBuffer buf = purec::SourceBuffer::from_string(kStencil);
  purec::DiagnosticEngine diags;
  out.tu = purec::parse(buf, diags);
  const purec::FunctionDecl* fn = out.tu.find_function("k");
  const purec::ForStmt* loop = nullptr;
  for (const purec::StmtPtr& s : fn->body->stmts) {
    if (const auto* f = purec::stmt_cast<purec::ForStmt>(s.get())) loop = f;
  }
  purec::poly::ExtractionResult r = purec::poly::extract_scop(*loop);
  out.scop = std::move(*r.scop);
  out.deps = purec::poly::analyze_dependences(out.scop);
  return out;
}

void print_report() {
  Analysis a = analyze();
  std::printf("fig2: 1-D time stencil  a[i] = f(a[i-1], a[i], a[i+1])\n");
  std::printf("fig2: %zu dependences\n", a.deps.size());
  for (const auto& dep : a.deps) {
    if (dep.loop_carried(2)) {
      std::printf("fig2:   %s\n", dep.to_string(a.scop).c_str());
    }
  }

  using purec::poly::IntVec;
  const auto check_band = [&](const IntVec& h1, const IntVec& h2,
                              const char* label) {
    bool permutable = true;
    for (const auto& dep : a.deps) {
      if (!dep.loop_carried(2)) continue;
      if (!purec::poly::weakly_satisfies(h1, dep, 2) ||
          !purec::poly::weakly_satisfies(h2, dep, 2)) {
        permutable = false;
      }
    }
    std::printf("fig2: band {(%lld,%lld), (%lld,%lld)} %-22s -> %s\n",
                static_cast<long long>(h1[0]), static_cast<long long>(h1[1]),
                static_cast<long long>(h2[0]), static_cast<long long>(h2[1]),
                label,
                permutable ? "PERMUTABLE (tiling valid)"
                           : "NOT permutable (tiling INVALID)");
  };
  // The figure's left (red, invalid) tiling: original axes.
  check_band({1, 0}, {0, 1}, "original axes");
  // The figure's right (green, valid) tiling: after shearing.
  check_band({1, 0}, {1, 1}, "after (1,1) shear");

  const purec::poly::Transform t =
      purec::poly::compute_schedule(a.scop, a.deps);
  std::printf("fig2: schedule search chose rows (%lld,%lld), (%lld,%lld); "
              "band size %zu\n",
              static_cast<long long>(t.matrix.at(0, 0)),
              static_cast<long long>(t.matrix.at(0, 1)),
              static_cast<long long>(t.matrix.at(1, 0)),
              static_cast<long long>(t.matrix.at(1, 1)), t.band_size);
}

void BM_dependence_analysis(benchmark::State& state) {
  for (auto _ : state) {
    Analysis a = analyze();
    benchmark::DoNotOptimize(a.deps.data());
  }
}
BENCHMARK(BM_dependence_analysis)->Unit(benchmark::kMicrosecond);

void BM_schedule_search(benchmark::State& state) {
  Analysis a = analyze();
  for (auto _ : state) {
    purec::poly::Transform t = purec::poly::compute_schedule(a.scop, a.deps);
    benchmark::DoNotOptimize(t.band_size);
  }
}
BENCHMARK(BM_schedule_search)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

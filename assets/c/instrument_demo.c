/* Runnable observability demo: a pure per-pixel kernel over a flat image,
 * deterministic inputs, printed checksum. Feed through
 *   ./build/examples/purecc --instrument assets/c/instrument_demo.c
 * and run the result with PUREC_TRACE=trace.json (Chrome trace) or
 * PUREC_STATS_FILE=stats.log (human counter summary) — see
 * EXPERIMENTS.md "Tracing a run". CI compiles exactly this file to
 * schema-validate the generated report and trace artifacts. */
#include <stdio.h>
#include <stdlib.h>

float gain;

pure float shade(int v) {
  float x = (float)v * 0.0625f + 1.0f;
  float y = x;
  for (int k = 0; k < 8; k++)
    y = 0.5f * (y + x / y);
  return y * gain;
}

void render(int* vals, float* out, int n) {
  for (int p = 0; p < n; p++)
    out[p] = shade(vals[p]);
}

int main() {
  int n = 4096;
  int* vals = (int*)malloc(n * sizeof(int));
  float* out = (float*)malloc(n * sizeof(float));
  gain = 0.75f;
  for (int i = 0; i < n; i++) vals[i] = (i * 37 + 11) % 32;
  for (int i = 0; i < n; i++) out[i] = 0.0f;
  render(vals, out, n);
  double checksum = 0.0;
  for (int i = 0; i < n; i++) checksum += (double)out[i] * (i % 9);
  printf("checksum %.6f\n", checksum);
  return 0;
}

/* Paper Listing 5: the argument array is also the loop's write target.
 * The chain rejects this (hard error) — §3.4. */
pure int func(pure int* a, int idx) {
  return a[idx - 1] + a[idx];
}

int main() {
  int array[100];
  for (int i = 1; i < 100; i++) {
    array[i] = func(array, i);
  }
  return 0;
}

/* Paper Listing 6: alias evasion of the Listing-5 rule. The checker
 * compares names only, so this deliberately passes — the documented
 * limitation of §3.4. */
pure int func(pure int* a, int idx) {
  return a[idx - 1] + a[idx];
}

int main() {
  int array[100];
  int* alias = array;
  for (int i = 1; i < 100; i++) {
    alias[i] = func(array, i);
  }
  return 0;
}

/* Paper Listing 7: matrix-matrix multiplication with a pure dot product.
 * Feed through: ./build/examples/quickstart assets/c/listing7_matmul.c */
#include <stdio.h>
#include <stdlib.h>

float **A, **Bt, **C;

pure float mult(float a, float b) {
  return a * b;
}

pure float dot(pure float* a, pure float* b, int size) {
  float res = 0.0f;
  for (int i = 0; i < size; ++i)
    res += mult(a[i], b[i]);
  return res;
}

int main(int argc, char** argv) {
  for (int i = 0; i < 4096; ++i)
    for (int j = 0; j < 4096; ++j)
      C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], 4096);
  return 0;
}

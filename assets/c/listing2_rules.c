/* Paper Listing 2: valid and invalid operations in pure functions.
 * The purity linter flags exactly the two invalid lines:
 *   ./build/examples/purity_lint assets/c/listing2_rules.c */
int* globalPtr;

void func1();
pure int* func2(pure int* p1, int p2);

pure int* func2(pure int* p1, int p2) {
  int a = p2;
  int b = a + 42;
  int* c = (int*)malloc(3 * sizeof(int));
  pure int* ptr = p1;
  int* extPtr1 = globalPtr;          /* invalid */
  pure int* extPtr2;
  extPtr2 = (pure int*)globalPtr;
  func1();                           /* invalid */
  pure int* extPtr3;
  extPtr3 = (pure int*)func2(p1, p2);
  return c;
}

// Domain example 2: the satellite AOD retrieval (§4.3.3). Shows why the
// generated static schedule struggles with the scene's late-phase
// imbalance and how schedule(dynamic,1) — the paper's one-line manual
// adaptation — fixes it.
#include <cstdio>

#include "apps/satellite.h"
#include "runtime/thread_pool.h"
#include "transform/pure_chain.h"

int main() {
  using namespace purec::apps;

  // The chain turns the pixel loop into an OpenMP loop even though the
  // filter function is far beyond polyhedral analysis — because the call
  // is pure and gets substituted away.
  const char* source =
      "pure float retrieve_aod(pure float* bands, int nbands, int pixel);\n"
      "void filter(float* bands, float* out, int nbands, int npix) {\n"
      "  for (int p = 0; p < npix; p++)\n"
      "    out[p] = retrieve_aod((pure float*)bands, nbands, p);\n"
      "}\n";
  purec::ChainOptions options;
  options.schedule = {purec::OmpScheduleKind::Dynamic, 1};
  purec::ChainArtifacts artifacts = purec::run_pure_chain(source, options);
  std::printf("generated filter loop:\n%s\n", artifacts.transformed.c_str());

  SatelliteConfig config;
  config.width = 384;
  config.height = 384;
  config.bands = 6;

  purec::rt::ThreadPool seq_pool(1);
  const RunResult seq =
      run_satellite(SatelliteVariant::Sequential, config, seq_pool);
  std::printf("sequential: %8.1f ms (checksum %.3f)\n\n",
              seq.compute_seconds * 1e3, seq.checksum);

  std::printf("%-10s%16s%16s%16s\n", "threads", "static", "dynamic(1row)",
              "hand(4rows)");
  for (int threads : {2, 4, 8, 16}) {
    purec::rt::ThreadPool pool(static_cast<std::size_t>(threads));
    const RunResult st =
        run_satellite(SatelliteVariant::AutoStatic, config, pool);
    const RunResult dy =
        run_satellite(SatelliteVariant::AutoDynamic, config, pool);
    const RunResult hd =
        run_satellite(SatelliteVariant::HandDynamic, config, pool);
    std::printf("%-10d%13.1f ms%13.1f ms%13.1f ms\n", threads,
                st.compute_seconds * 1e3, dy.compute_seconds * 1e3,
                hd.compute_seconds * 1e3);
  }
  std::printf(
      "\nThe static rows split the hazy (expensive) bottom of the scene\n"
      "unevenly; dynamic scheduling keeps all threads busy (paper "
      "§4.3.3).\n");
  return 0;
}

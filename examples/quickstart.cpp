// Quickstart: the paper's Fig. 1 as a live walkthrough. Feeds the
// matrix-multiplication listing (Listing 7) through the full chain and
// prints every stage's source text — ending with the compilable,
// OpenMP-parallelized C of Listing 8.
//
//   $ ./quickstart            # walk the built-in matmul example
//   $ ./quickstart file.c     # run the chain on your own file
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "transform/pure_chain.h"

namespace {

constexpr const char* kListing7 = R"(#include <stdio.h>
#include <stdlib.h>

float **A, **Bt, **C;

pure float mult(float a, float b) {
  return a * b;
}

pure float dot(pure float* a, pure float* b, int size) {
  float res = 0.0f;
  for (int i = 0; i < size; ++i)
    res += mult(a[i], b[i]);
  return res;
}

int main(int argc, char** argv) {
  for (int i = 0; i < 4096; ++i)
    for (int j = 0; j < 4096; ++j)
      C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], 4096);
  return 0;
}
)";

void banner(const char* title) {
  std::printf("\n======== %s ========\n", title);
}

}  // namespace

int main(int argc, char** argv) {
  std::string source = kListing7;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = std::move(ss).str();
  }

  banner("input (pure C)");
  std::fputs(source.c_str(), stdout);

  purec::ChainOptions options;
  options.mode = purec::TransformMode::PlutoSica;
  purec::ChainArtifacts artifacts = purec::run_pure_chain(source, options);

  if (!artifacts.ok) {
    banner("chain stopped: diagnostics");
    std::fputs(artifacts.diagnostics.format().c_str(), stdout);
    return 1;
  }

  banner("after PC-PrePro (system includes stripped)");
  std::fputs(artifacts.stripped.c_str(), stdout);

  banner("after PC-CC (purity verified, scops marked)");
  std::fputs(artifacts.marked.c_str(), stdout);

  banner("after call substitution (tmpConst placeholders)");
  std::fputs(artifacts.substituted.c_str(), stdout);

  banner("after polycc (tiled + OpenMP, calls reinserted)");
  std::fputs(artifacts.transformed.c_str(), stdout);

  banner("final output (pure lowered, includes restored) — gcc-ready");
  std::fputs(artifacts.final_source.c_str(), stdout);

  banner("scop report");
  for (const purec::ScopReport& r : artifacts.scops) {
    std::printf(
        "  %s:%u depth=%zu calls=%zu deps=%zu extracted=%d transformed=%d "
        "parallel=%d tiled=%d%s%s\n",
        r.function.c_str(), r.line, r.depth, r.substituted_calls,
        r.dependences, r.extracted, r.transformed, r.parallelized, r.tiled,
        r.failure_reason.empty() ? "" : " reason=",
        r.failure_reason.c_str());
  }
  return 0;
}

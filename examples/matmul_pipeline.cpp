// Domain example 1: the paper's headline experiment in miniature.
// Transforms the matmul listing with the chain AND runs all performance
// variants of the kernel at several thread counts, printing a Fig. 3-style
// table.
#include <cstdio>

#include "apps/matmul.h"
#include "runtime/thread_pool.h"
#include "transform/pure_chain.h"

int main() {
  using namespace purec::apps;

  // 1. Show what the compiler chain does with the pure source.
  const char* source =
      "float **A, **Bt, **C;\n"
      "pure float mult(float a, float b) { return a * b; }\n"
      "pure float dot(pure float* a, pure float* b, int size) {\n"
      "  float res = 0.0f;\n"
      "  for (int i = 0; i < size; ++i) res += mult(a[i], b[i]);\n"
      "  return res;\n"
      "}\n"
      "void kernel(int n) {\n"
      "  for (int i = 0; i < n; ++i)\n"
      "    for (int j = 0; j < n; ++j)\n"
      "      C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], n);\n"
      "}\n";
  purec::ChainArtifacts artifacts = purec::run_pure_chain(source);
  if (!artifacts.ok) {
    std::fputs(artifacts.diagnostics.format().c_str(), stderr);
    return 1;
  }
  std::printf("generated parallel kernel:\n%s\n",
              artifacts.transformed.c_str());

  // 2. Measure the equivalent variants (shape of Fig. 3).
  MatmulConfig config;
  config.n = 512;
  std::printf("%-12s", "threads");
  for (MatmulVariant v :
       {MatmulVariant::Pure, MatmulVariant::Pluto, MatmulVariant::PlutoSica,
        MatmulVariant::MklProxy}) {
    std::printf("%14s", to_string(v));
  }
  std::printf("\n");
  for (int threads : {1, 2, 4, 8}) {
    purec::rt::ThreadPool pool(static_cast<std::size_t>(threads));
    std::printf("%-12d", threads);
    for (MatmulVariant v :
         {MatmulVariant::Pure, MatmulVariant::Pluto,
          MatmulVariant::PlutoSica, MatmulVariant::MklProxy}) {
      const RunResult r = run_matmul(v, config, pool);
      std::printf("%11.1f ms", r.total_seconds() * 1e3);
    }
    std::printf("\n");
  }
  return 0;
}

// Domain example 3: the LAMA ELL SpMV (§4.3.4). The row dot product does
// indirect addressing — hopeless for a polyhedral tool — but marking it
// pure lets the chain parallelize the row loop. Compares the chain's
// output with the hand-parallelized LAMA loop.
#include <cstdio>

#include "apps/ellpack.h"
#include "runtime/thread_pool.h"
#include "transform/pure_chain.h"

int main() {
  using namespace purec::apps;

  const char* source =
      "pure float ell_row_dot(pure float* values, pure int* cols,\n"
      "                       pure float* x, int row, int rows, int width);\n"
      "void ell_spmv(float* values, int* cols, float* x, float* y,\n"
      "              int rows, int width) {\n"
      "  for (int i = 0; i < rows; i++)\n"
      "    y[i] = ell_row_dot((pure float*)values, (pure int*)cols,\n"
      "                       (pure float*)x, i, rows, width);\n"
      "}\n";
  purec::ChainArtifacts artifacts = purec::run_pure_chain(source);
  if (!artifacts.ok) {
    std::fputs(artifacts.diagnostics.format().c_str(), stderr);
    return 1;
  }
  std::printf("generated SpMV loop:\n%s\n", artifacts.transformed.c_str());

  EllConfig config;
  config.rows = 60000;
  config.repetitions = 20;

  purec::rt::ThreadPool seq_pool(1);
  const RunResult seq = run_ell(EllVariant::Sequential, config, seq_pool);
  std::printf("sequential: %8.1f ms (checksum %.3f)\n\n",
              seq.compute_seconds * 1e3, seq.checksum);

  std::printf("%-10s%16s%16s\n", "threads", "pure(auto)", "hand(LAMA)");
  for (int threads : {2, 4, 8, 16}) {
    purec::rt::ThreadPool pool(static_cast<std::size_t>(threads));
    const RunResult a = run_ell(EllVariant::PureAuto, config, pool);
    const RunResult h = run_ell(EllVariant::HandStatic, config, pool);
    std::printf("%-10d%13.1f ms%13.1f ms\n", threads,
                a.compute_seconds * 1e3, h.compute_seconds * 1e3);
  }
  std::printf(
      "\nBoth partition rows statically; the hand version knows the nnz\n"
      "tail and inlines the dot — a small, core-count-shrinking edge\n"
      "(paper §4.3.4: at most 8e-4 s difference).\n");
  return 0;
}

// Bonus tool: a standalone purity linter. Checks the pure annotations in
// a C file and reports every violation with source context — the PC-CC
// pass as a developer-facing tool.
//
//   $ ./purity_lint file.c
//   $ echo 'pure int f(int* p) { return p[0]; }' | ./purity_lint -
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "parser/parser.h"
#include "purity/purity_checker.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <file.c | ->\n", argv[0]);
    return 2;
  }
  std::string source;
  if (std::string(argv[1]) == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = std::move(ss).str();
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = std::move(ss).str();
  }

  purec::SourceBuffer buffer = purec::SourceBuffer::from_string(
      source, std::string(argv[1]) == "-" ? "<stdin>" : argv[1]);
  purec::DiagnosticEngine diags;
  purec::TranslationUnit tu = purec::parse(buffer, diags);
  const purec::PurityResult result = purec::check_purity(tu, diags);

  if (!diags.diagnostics().empty()) {
    std::fputs(diags.format(&buffer).c_str(), stdout);
  }

  std::printf("\n%zu function(s) in the pure hashset",
              result.pure_functions.size());
  std::printf(", %zu loop nest(s) eligible for #pragma scop:\n",
              result.scop_loops.size());
  for (const purec::ScopCandidate& c : result.scop_loops) {
    std::printf("  %s:%u (%s)\n", c.function->name.c_str(), c.loop->loc.line,
                c.contains_calls ? "with pure calls" : "plain affine nest");
  }
  return diags.has_errors() ? 1 : 0;
}

// purecc — the command-line face of the chain (the paper's whole Fig. 1
// as one tool). Reads pure C, writes gcc-ready parallel C.
//
//   purecc [options] input.c
//     -o <file>            output file (default: stdout)
//     --mode pluto|sica    transformer mode (default: pluto)
//     --tile <n>           tile size (default 32; 0 disables tiling)
//     --schedule <spec>    OpenMP schedule for emitted parallel pragmas:
//                          static | dynamic[,N] | guided[,N] (N >= 1),
//                          e.g. --schedule dynamic,1 or --schedule guided,8
//     --no-parallel        verify + lower only, no OpenMP pragmas
//     --inline-pure        §3.3 extension: inline expression-bodied pure fns
//     --infer-pure         infer purity of unannotated functions via
//                          call-graph effect analysis (keyword-free C
//                          parallelizes like its annotated twin)
//     --memoize            cache pure-call results: memoizable pure
//                          functions (by-value scalar params, scalar
//                          global snapshot) get thunks backed by a
//                          sharded concurrent table in the output C
//                          (PUREC_MEMO_SHARDS / PUREC_MEMO_CAP /
//                          PUREC_MEMO_STATS at run time); trivially
//                          small single-expression callees are skipped
//                          by the cost gate
//     --memoize=all        disable the cost gate (thunk every
//                          memoizable function, for measurement)
//     --memoize=verify     memoize with full-key verification compiled in
//                          by default: slots store the raw argument/global
//                          words and compare them on a hit, so the 2^-25
//                          fingerprint-aliasing bound becomes opt-out
//                          (PUREC_MEMO_VERIFY=0/1 overrides at run time)
//     --memoize-profile=F  feed a PUREC_MEMO_STATS dump back into the
//                          classifier: the shape-based cost gate is
//                          replaced by the profile-informed model, keeping
//                          only thunks whose observed reuse x callee cost
//                          clears the table-trip bar (implies --memoize)
//     --fp-reductions      allow +/-/* reductions on float/double
//                          accumulators (OpenMP partials reassociate the
//                          combination, so results may differ in the last
//                          bits from the serial loop; min/max and integer
//                          reductions need no flag)
//     --gcc-attributes     annotate lowered pure functions with
//                          __attribute__((pure))
//     --stage <name>       print an intermediate stage instead of the final
//                          output: stripped|preprocessed|marked|substituted|
//                          transformed
//     --report             print the per-scop report to stderr
//     --report=json[:FILE] emit the full decision trail as structured JSON
//                          (purity verdicts, scop outcomes with failure
//                          line/column, reductions + demotions, chosen
//                          schedule, memoizability, inliner/instrument
//                          decisions) to stderr or FILE; the plain
//                          --report text is a renderer over the same
//                          structure (transform/chain_report.h)
//     --instrument         emit self-contained observability counters into
//                          the output C: per-region invocations/wall-time,
//                          a log-bucketed wall-time histogram (p50/p90/p99
//                          in the summary), and cache-line-padded
//                          per-worker chunk tallies, dumped at exit as a
//                          human summary (PUREC_STATS_FILE or stderr) or as
//                          Chrome trace-event JSON under PUREC_TRACE=FILE
//
//   purecc trace [--report report.json] trace.json
//     Analyze a recorded trace: per-region wall time, worker imbalance,
//     steal ratios, barrier/memo behavior; with --report, each region is
//     joined (by region_id) to the compiler's schedule decisions.
//
//   purecc trace --diff baseline.json candidate.json [--threshold F]
//     Region-by-region wall-time comparison; exits 1 when any region
//     regressed by more than F (fractional, default 0.2 = 20%) — the CI
//     perf gate.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "tools/trace_analysis.h"
#include "transform/chain_report.h"
#include "transform/pure_chain.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-o out.c] [--mode pluto|sica] [--tile N]\n"
               "          [--schedule static|dynamic[,N]|guided[,N]] "
               "[--no-parallel]\n"
               "          [--inline-pure] [--infer-pure] "
               "[--memoize[=all|=verify]]\n"
               "          [--memoize-profile=FILE] [--fp-reductions]\n"
               "          [--gcc-attributes] [--instrument]\n"
               "          [--stage NAME] [--report[=json[:FILE]]] input.c\n"
               "       %s trace [--report report.json] trace.json\n"
               "       %s trace --diff baseline.json candidate.json "
               "[--threshold F]\n",
               argv0, argv0, argv0);
  return 2;
}

int trace_main(int argc, char** argv) {
  std::string report_path;
  std::vector<std::string> trace_paths;
  double threshold = 0.2;
  bool diff = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--report") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      report_path = v;
    } else if (arg == "--diff") {
      diff = true;
    } else if (arg == "--threshold") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      char* end = nullptr;
      threshold = std::strtod(v, &end);
      if (end == nullptr || *end != '\0' || threshold < 0.0) {
        std::fprintf(stderr, "purecc: invalid --threshold '%s'\n", v);
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      trace_paths.push_back(arg);
    }
  }
  if (diff ? trace_paths.size() != 2 : trace_paths.size() != 1) {
    return usage(argv[0]);
  }

  std::optional<purec::json::Value> report;
  if (!report_path.empty()) {
    std::string error;
    report = purec::tools::load_json_file(report_path, &error);
    if (!report.has_value()) {
      std::fprintf(stderr, "purecc: %s\n", error.c_str());
      return 2;
    }
  }

  std::vector<purec::tools::TraceSummary> summaries;
  for (const std::string& path : trace_paths) {
    std::string error;
    const std::optional<purec::json::Value> trace =
        purec::tools::load_json_file(path, &error);
    if (!trace.has_value()) {
      std::fprintf(stderr, "purecc: %s\n", error.c_str());
      return 2;
    }
    const std::optional<purec::tools::TraceSummary> summary =
        purec::tools::analyze_trace(
            *trace, report.has_value() ? &*report : nullptr, &error);
    if (!summary.has_value()) {
      std::fprintf(stderr, "purecc: %s: %s\n", path.c_str(),
                   error.c_str());
      return 2;
    }
    summaries.push_back(*summary);
  }

  if (diff) {
    const purec::tools::TraceDiff result =
        purec::tools::diff_traces(summaries[0], summaries[1], threshold);
    std::fputs(result.text.c_str(), stdout);
    return result.regression ? 1 : 0;
  }
  std::fputs(purec::tools::render_trace_summary(summaries[0]).c_str(),
             stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "trace") == 0) {
    return trace_main(argc, argv);
  }
  std::string input_path;
  std::string output_path;
  std::string stage;
  bool report = false;
  bool report_json = false;
  std::string report_path;  // empty = stderr
  purec::ChainOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "-o") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      output_path = v;
    } else if (arg == "--mode") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      if (std::strcmp(v, "sica") == 0) {
        options.mode = purec::TransformMode::PlutoSica;
      } else if (std::strcmp(v, "pluto") == 0) {
        options.mode = purec::TransformMode::Pluto;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--tile") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.tile_size = std::atoll(v);
      if (options.tile_size <= 1) options.tile = false;
    } else if (arg == "--schedule") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      std::string error;
      const std::optional<purec::ScheduleSpec> spec =
          purec::ScheduleSpec::parse(v, &error);
      if (!spec) {
        std::fprintf(stderr, "purecc: invalid --schedule '%s': %s\n", v,
                     error.c_str());
        return 2;
      }
      options.schedule = *spec;
    } else if (arg == "--no-parallel") {
      options.parallelize = false;
    } else if (arg == "--inline-pure") {
      options.inline_pure_expressions = true;
    } else if (arg == "--infer-pure") {
      options.infer_purity = true;
    } else if (arg == "--memoize") {
      options.memoize = true;
    } else if (arg == "--memoize=all") {
      options.memoize = true;
      options.memoize_all = true;
    } else if (arg == "--memoize=verify") {
      options.memoize = true;
      options.memoize_verify = true;
    } else if (arg.rfind("--memoize-profile=", 0) == 0) {
      const std::string path = arg.substr(std::strlen("--memoize-profile="));
      if (path.empty()) return usage(argv[0]);
      std::ifstream pf(path);
      if (!pf) {
        std::fprintf(stderr, "purecc: cannot open %s\n", path.c_str());
        return 2;
      }
      std::ostringstream ss;
      ss << pf.rdbuf();
      options.memoize_profile =
          purec::parse_memo_profile(std::move(ss).str());
      options.has_memoize_profile = true;
      options.memoize = true;
    } else if (arg == "--fp-reductions") {
      options.fp_reductions = true;
    } else if (arg == "--gcc-attributes") {
      options.emit_gcc_attributes = true;
    } else if (arg == "--instrument") {
      options.instrument = true;
    } else if (arg == "--stage") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      stage = v;
    } else if (arg == "--report") {
      report = true;
    } else if (arg.rfind("--report=json", 0) == 0) {
      const std::string rest = arg.substr(std::strlen("--report=json"));
      if (!rest.empty() && rest[0] != ':') return usage(argv[0]);
      report = true;
      report_json = true;
      if (!rest.empty()) report_path = rest.substr(1);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return usage(argv[0]);
    } else {
      if (!input_path.empty()) return usage(argv[0]);
      input_path = arg;
    }
  }
  if (input_path.empty()) return usage(argv[0]);

  std::string source;
  if (input_path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = std::move(ss).str();
  } else {
    std::ifstream in(input_path);
    if (!in) {
      std::fprintf(stderr, "purecc: cannot open %s\n", input_path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = std::move(ss).str();
  }

  purec::ChainArtifacts artifacts = purec::run_pure_chain(source, options);
  if (!artifacts.ok) {
    std::fputs(artifacts.diagnostics.format().c_str(), stderr);
    return 1;
  }

  const std::string* out = &artifacts.final_source;
  if (stage == "stripped") out = &artifacts.stripped;
  else if (stage == "preprocessed") out = &artifacts.preprocessed;
  else if (stage == "marked") out = &artifacts.marked;
  else if (stage == "substituted") out = &artifacts.substituted;
  else if (stage == "transformed") out = &artifacts.transformed;
  else if (!stage.empty()) return usage(argv[0]);

  if (output_path.empty()) {
    std::fputs(out->c_str(), stdout);
  } else {
    std::ofstream of(output_path);
    if (!of) {
      std::fprintf(stderr, "purecc: cannot write %s\n", output_path.c_str());
      return 2;
    }
    of << *out;
  }

  if (report) {
    // One structure, two renderers: --report renders the classic text,
    // --report=json serializes the full decision trail.
    const purec::json::Value chain_report =
        purec::build_chain_report(artifacts, options);
    if (report_json) {
      const std::string serialized = chain_report.dump(2) + "\n";
      if (report_path.empty()) {
        std::fputs(serialized.c_str(), stderr);
      } else {
        std::ofstream rf(report_path);
        if (!rf) {
          std::fprintf(stderr, "purecc: cannot write %s\n",
                       report_path.c_str());
          return 2;
        }
        rf << serialized;
      }
    } else {
      std::fputs(purec::render_report_text(chain_report).c_str(), stderr);
    }
  }
  return 0;
}

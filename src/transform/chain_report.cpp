#include "transform/chain_report.h"

#include <cstdio>

namespace purec {

namespace {

[[nodiscard]] const char* mode_name(TransformMode mode) {
  return mode == TransformMode::PlutoSica ? "sica" : "pluto";
}

[[nodiscard]] json::Value location_value(std::uint32_t line,
                                         std::uint32_t column) {
  json::Value loc = json::Value::object();
  loc.set("line", static_cast<std::int64_t>(line));
  loc.set("column", static_cast<std::int64_t>(column));
  return loc;
}

[[nodiscard]] json::Value schedule_value(const ScheduleSpec& spec) {
  if (spec.empty()) return json::Value(nullptr);
  json::Value v = json::Value::object();
  v.set("kind", to_string(spec.kind));
  v.set("chunk", spec.chunk);
  return v;
}

[[nodiscard]] json::Value string_array(const std::vector<std::string>& xs) {
  json::Value arr = json::Value::array();
  for (const std::string& x : xs) arr.push(x);
  return arr;
}

/// The purity verdict label: annotation wins; an unannotated function the
/// fixpoint proves pure is "inferred" when --infer-pure applied it and
/// "inferable" when the default chain left it opaque (the paper's rule).
[[nodiscard]] const char* purity_status(const FunctionPurity& fn,
                                        bool inference_applied) {
  if (fn.annotated) return "declared";
  if (!fn.pure) return "rejected";
  return inference_applied ? "inferred" : "inferable";
}

}  // namespace

json::Value build_chain_report(const ChainArtifacts& artifacts,
                               const ChainOptions& options) {
  json::Value report = json::Value::object();
  report.set("tool", "purecc");
  // v3: scops[] entries carry region_id, the stable join key the runtime
  // stamps on trace events (purecc trace joins the two by it).
  // v4: memoization.functions[] entries carry the cost-model trail —
  // cost_nodes plus the --memoize-profile decision (hits/misses/score) —
  // and options echoes memoize_verify / memoize_profile.
  report.set("report_version", 4);
  report.set("ok", artifacts.ok);

  json::Value opts = json::Value::object();
  opts.set("mode", mode_name(options.mode));
  opts.set("parallelize", options.parallelize);
  opts.set("tile", options.tile);
  opts.set("tile_size", options.tile_size);
  opts.set("schedule", schedule_value(options.schedule));
  opts.set("inline_pure", options.inline_pure_expressions);
  opts.set("infer_purity", options.infer_purity);
  opts.set("memoize", options.memoize);
  opts.set("memoize_all", options.memoize_all);
  opts.set("memoize_verify", options.memoize_verify);
  opts.set("memoize_profile", options.has_memoize_profile);
  opts.set("fp_reductions", options.fp_reductions);
  opts.set("gcc_attributes", options.emit_gcc_attributes);
  opts.set("instrument", options.instrument);
  report.set("options", std::move(opts));

  json::Value purity = json::Value::array();
  for (const auto& [name, fn] : artifacts.purity_trail.functions) {
    json::Value entry = json::Value::object();
    entry.set("function", name);
    entry.set("location", location_value(fn.loc.line, fn.loc.column));
    entry.set("status", purity_status(fn, options.infer_purity));
    entry.set("pure", fn.pure);
    entry.set("annotated", fn.annotated);
    entry.set("inferred", fn.inferred);
    entry.set("reason",
              fn.reason.empty() ? json::Value(nullptr)
                                : json::Value(fn.reason));
    json::Value reads = json::Value::array();
    for (const std::string& g : fn.global_reads) reads.push(g);
    entry.set("global_reads", std::move(reads));
    purity.push(std::move(entry));
  }
  report.set("purity", std::move(purity));

  json::Value scops = json::Value::array();
  for (const ScopReport& r : artifacts.scops) {
    json::Value entry = json::Value::object();
    entry.set("function", r.function);
    entry.set("location", location_value(r.line, r.column));
    entry.set("contains_calls", r.contains_calls);
    entry.set("substituted_calls",
              static_cast<std::int64_t>(r.substituted_calls));
    entry.set("inferred_calls",
              static_cast<std::int64_t>(r.inferred_calls));
    entry.set("extracted", r.extracted);
    entry.set("region", r.region);
    entry.set("depth", static_cast<std::int64_t>(r.depth));
    entry.set("dependences", static_cast<std::int64_t>(r.dependences));
    entry.set("transformed", r.transformed);
    entry.set("parallelized", r.parallelized);
    entry.set("parallel_loops",
              static_cast<std::int64_t>(r.parallel_loops));
    entry.set("schedule_clause",
              r.schedule_clause.empty() ? json::Value(nullptr)
                                        : json::Value(r.schedule_clause));
    entry.set("tiled", r.tiled);
    entry.set("skewed", r.skewed);
    entry.set("fissioned", r.fissioned);
    entry.set("fission_groups",
              static_cast<std::int64_t>(r.fission_groups));
    entry.set("fission_parallel_groups",
              static_cast<std::int64_t>(r.fission_parallel_groups));
    entry.set("privatized", string_array(r.privatized));
    entry.set("fused_loops", static_cast<std::int64_t>(r.fused_loops));
    entry.set("region_id", r.region_id < 0 ? json::Value(nullptr)
                                           : json::Value(r.region_id));
    entry.set("reductions", string_array(r.reductions));
    entry.set("reduction_notes", string_array(r.reduction_notes));
    if (r.failure_reason.empty()) {
      entry.set("failure", json::Value(nullptr));
    } else {
      json::Value failure = json::Value::object();
      failure.set("reason", r.failure_reason);
      failure.set("location", location_value(r.failure_loc.line,
                                             r.failure_loc.column));
      entry.set("failure", std::move(failure));
    }
    scops.push(std::move(entry));
  }
  report.set("scops", std::move(scops));

  json::Value fusion = json::Value::array();
  for (const FusionDecision& d : artifacts.fusion_decisions) {
    json::Value entry = json::Value::object();
    entry.set("function", d.function);
    entry.set("first", location_value(d.first_line, d.first_column));
    entry.set("second", location_value(d.second_line, d.second_column));
    entry.set("fused", d.fused);
    entry.set("reason", d.reason.empty() ? json::Value(nullptr)
                                         : json::Value(d.reason));
    fusion.push(std::move(entry));
  }
  report.set("fusion_decisions", std::move(fusion));

  json::Value memo = json::Value::object();
  memo.set("enabled", options.memoize);
  memo.set("memoized_call_sites",
           static_cast<std::int64_t>(artifacts.memoized_calls));
  json::Value memo_fns = json::Value::array();
  for (const auto& [name, info] : artifacts.memoization.functions) {
    json::Value entry = json::Value::object();
    entry.set("function", name);
    entry.set("location", location_value(info.loc.line, info.loc.column));
    entry.set("memoizable", info.memoizable);
    entry.set("reason",
              info.reason.empty() ? json::Value(nullptr)
                                  : json::Value(info.reason));
    entry.set("params", static_cast<std::int64_t>(info.param_types.size()));
    json::Value snapshot = json::Value::array();
    for (const auto& [global, type] : info.global_snapshot) {
      (void)type;
      snapshot.push(global);
    }
    entry.set("global_snapshot", std::move(snapshot));
    // v4 cost-model trail: the static cost proxy always, the measured
    // reuse + score only when a --memoize-profile run observed traffic.
    entry.set("cost_nodes", static_cast<std::int64_t>(info.cost_nodes));
    if (info.profiled) {
      json::Value prof = json::Value::object();
      prof.set("hits", static_cast<std::int64_t>(info.profile_hits));
      prof.set("misses", static_cast<std::int64_t>(info.profile_misses));
      prof.set("score", info.profile_score);
      entry.set("profile", std::move(prof));
    } else {
      entry.set("profile", json::Value(nullptr));
    }
    memo_fns.push(std::move(entry));
  }
  memo.set("functions", std::move(memo_fns));
  report.set("memoization", std::move(memo));

  json::Value inliner = json::Value::object();
  inliner.set("enabled", options.inline_pure_expressions);
  inliner.set("inlined_calls",
              static_cast<std::int64_t>(artifacts.inlined_calls));
  report.set("inliner", std::move(inliner));

  report.set("canonicalized_whiles",
             static_cast<std::int64_t>(artifacts.canonicalized_whiles));

  json::Value instr = json::Value::object();
  instr.set("enabled", options.instrument);
  instr.set("regions", string_array(artifacts.instrumented_regions));
  report.set("instrument", std::move(instr));

  return report;
}

std::string render_report_text(const json::Value& report) {
  std::string out;
  const json::Value* opts = report.find("options");
  const bool infer_purity =
      opts != nullptr && opts->find("infer_purity") != nullptr &&
      opts->find("infer_purity")->as_bool();
  const bool memoize = opts != nullptr &&
                       opts->find("memoize") != nullptr &&
                       opts->find("memoize")->as_bool();

  if (infer_purity) {
    // InferenceResult::summary(), rebuilt from the purity array.
    std::string inferred;
    std::string rejected;
    if (const auto* purity = report.find("purity")) {
      if (const auto* entries = purity->as_array()) {
        for (const json::Value& entry : *entries) {
          const std::string& name =
              entry.find("function") != nullptr
                  ? entry.find("function")->as_string()
                  : std::string();
          const bool is_inferred = entry.find("inferred") != nullptr &&
                                   entry.find("inferred")->as_bool();
          const bool is_pure = entry.find("pure") != nullptr &&
                               entry.find("pure")->as_bool();
          if (is_inferred) {
            if (!inferred.empty()) inferred += ", ";
            inferred += name;
          } else if (!is_pure) {
            if (!rejected.empty()) rejected += ", ";
            rejected += name + " (" +
                        (entry.find("reason") != nullptr
                             ? entry.find("reason")->as_string()
                             : std::string()) +
                        ")";
          }
        }
      }
    }
    out += "purecc: inferred pure: " + (inferred.empty() ? "-" : inferred);
    if (!rejected.empty()) out += "; rejected: " + rejected;
    out += "\n";
  }

  if (memoize) {
    // MemoizableResult::summary(), rebuilt from memoization.functions.
    std::string yes;
    std::string no;
    if (const auto* memo = report.find("memoization")) {
      if (const auto* fns = memo->find("functions")) {
        if (const auto* entries = fns->as_array()) {
          for (const json::Value& entry : *entries) {
            const std::string& name =
                entry.find("function") != nullptr
                    ? entry.find("function")->as_string()
                    : std::string();
            const bool ok = entry.find("memoizable") != nullptr &&
                            entry.find("memoizable")->as_bool();
            if (ok) {
              if (!yes.empty()) yes += ", ";
              yes += name;
            } else {
              if (!no.empty()) no += ", ";
              no += name + " (" +
                    (entry.find("reason") != nullptr
                         ? entry.find("reason")->as_string()
                         : std::string()) +
                    ")";
            }
          }
        }
      }
      out += "purecc: memoizable: " + (yes.empty() ? "-" : yes);
      if (!no.empty()) out += "; rejected: " + no;
      out += "\n";
      const auto* sites = memo->find("memoized_call_sites");
      out += "purecc: memoized " +
             std::to_string(sites != nullptr ? sites->as_int() : 0) +
             " call site(s)\n";
    }
  }

  if (const auto* scops = report.find("scops")) {
    if (const auto* entries = scops->as_array()) {
      for (const json::Value& entry : *entries) {
        const auto get_int = [&entry](const char* key) -> std::int64_t {
          const json::Value* v = entry.find(key);
          return v != nullptr ? v->as_int() : 0;
        };
        const auto get_bool = [&entry](const char* key) {
          const json::Value* v = entry.find(key);
          return v != nullptr && v->as_bool();
        };
        std::string inferred;
        if (infer_purity) {
          inferred =
              " inferred=" + std::to_string(get_int("inferred_calls"));
        }
        std::string reductions;
        if (const auto* reds = entry.find("reductions")) {
          if (const auto* items = reds->as_array()) {
            for (const json::Value& red : *items) {
              reductions += reductions.empty() ? " reduction=" : ",";
              reductions += red.as_string();
            }
          }
        }
        std::string scheduling;
        if (get_bool("fissioned")) {
          scheduling += " fission=" +
                        std::to_string(get_int("fission_groups")) + "g/" +
                        std::to_string(get_int("fission_parallel_groups")) +
                        "p";
        }
        if (get_int("fused_loops") > 0) {
          scheduling += " fused=" + std::to_string(get_int("fused_loops"));
        }
        if (const auto* priv = entry.find("privatized")) {
          if (const auto* items = priv->as_array()) {
            std::string names;
            for (const json::Value& name : *items) {
              names += names.empty() ? "" : ",";
              names += name.as_string();
            }
            if (!names.empty()) scheduling += " private=" + names;
          }
        }
        std::string reason;
        if (const auto* failure = entry.find("failure")) {
          if (!failure->is_null() && failure->find("reason") != nullptr) {
            reason = " reason=" + failure->find("reason")->as_string();
          }
        }
        const json::Value* loc = entry.find("location");
        const std::int64_t line =
            loc != nullptr && loc->find("line") != nullptr
                ? loc->find("line")->as_int()
                : 0;
        char head[160];
        std::snprintf(head, sizeof(head),
                      ":%lld depth=%lld calls=%lld%s deps=%lld "
                      "transformed=%d parallel=%d tiled=%d region=%d",
                      static_cast<long long>(line),
                      static_cast<long long>(get_int("depth")),
                      static_cast<long long>(get_int("substituted_calls")),
                      inferred.c_str(),
                      static_cast<long long>(get_int("dependences")),
                      get_bool("transformed") ? 1 : 0,
                      get_bool("parallelized") ? 1 : 0,
                      get_bool("tiled") ? 1 : 0, get_bool("region") ? 1 : 0);
        out += "purecc: " +
               (entry.find("function") != nullptr
                    ? entry.find("function")->as_string()
                    : std::string()) +
               head + scheduling + reductions + reason + "\n";
        if (const auto* notes = entry.find("reduction_notes")) {
          if (const auto* items = notes->as_array()) {
            for (const json::Value& note : *items) {
              out += "purecc:   note: " + note.as_string() + "\n";
            }
          }
        }
      }
    }
  }

  if (const auto* fusion = report.find("fusion_decisions")) {
    if (const auto* entries = fusion->as_array()) {
      for (const json::Value& entry : *entries) {
        const auto line_of = [&entry](const char* key) -> std::int64_t {
          const json::Value* loc = entry.find(key);
          return loc != nullptr && loc->find("line") != nullptr
                     ? loc->find("line")->as_int()
                     : 0;
        };
        out += "purecc: fusion " +
               (entry.find("function") != nullptr
                    ? entry.find("function")->as_string()
                    : std::string()) +
               ":" + std::to_string(line_of("first")) + "+" +
               std::to_string(line_of("second"));
        const bool fused = entry.find("fused") != nullptr &&
                           entry.find("fused")->as_bool();
        if (fused) {
          out += ": fused\n";
        } else {
          out += ": rejected (" +
                 (entry.find("reason") != nullptr &&
                          !entry.find("reason")->is_null()
                      ? entry.find("reason")->as_string()
                      : std::string()) +
                 ")\n";
        }
      }
    }
  }

  if (const auto* inliner = report.find("inliner")) {
    const auto* calls = inliner->find("inlined_calls");
    if (calls != nullptr && calls->as_int() > 0) {
      out += "purecc: inlined " + std::to_string(calls->as_int()) +
             " pure call(s)\n";
    }
  }
  return out;
}

}  // namespace purec

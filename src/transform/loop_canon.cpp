#include "transform/loop_canon.h"

#include <string>

#include "ast/walk.h"

namespace purec {

namespace {

/// Matches the shared induction-step grammar on a statement; returns the
/// induction variable name, or empty.
[[nodiscard]] std::string match_increment(const Stmt* s) {
  const auto* es = stmt_cast<ExprStmt>(s);
  if (es == nullptr || !es->expr) return {};
  const auto step = match_induction_step(*es->expr);
  return step ? step->iterator : std::string{};
}

/// Any break/continue binding to the surrounding while (nested loops
/// rebind their own break/continue and are not descended into).
[[nodiscard]] bool has_loop_escape(const Stmt& s) {
  switch (s.kind()) {
    case StmtKind::Break:
    case StmtKind::Continue:
      return true;
    case StmtKind::Compound:
      for (const StmtPtr& child : static_cast<const CompoundStmt&>(s).stmts) {
        if (has_loop_escape(*child)) return true;
      }
      return false;
    case StmtKind::If: {
      const auto& branch = static_cast<const IfStmt&>(s);
      if (has_loop_escape(*branch.then_stmt)) return true;
      return branch.else_stmt != nullptr &&
             has_loop_escape(*branch.else_stmt);
    }
    default:
      // For/While/DoWhile rebind; everything else cannot escape.
      return false;
  }
}

/// True if the statement subtree writes `name` (assignment, ++/--) or
/// takes its address (which could hide a write).
[[nodiscard]] bool touches_variable(const Stmt& s, const std::string& name) {
  bool touched = false;
  for_each_expr(s, [&](const Expr& e) {
    if (touched) return;
    if (const auto* a = expr_cast<AssignExpr>(&e)) {
      const auto* ident = expr_cast<IdentExpr>(a->lhs.get());
      if (ident != nullptr && ident->name == name) touched = true;
      return;
    }
    if (const auto* u = expr_cast<UnaryExpr>(&e)) {
      if (u->op == UnaryOp::PreInc || u->op == UnaryOp::PostInc ||
          u->op == UnaryOp::PreDec || u->op == UnaryOp::PostDec ||
          u->op == UnaryOp::AddrOf) {
        const auto* ident = expr_cast<IdentExpr>(u->operand.get());
        if (ident != nullptr && ident->name == name) touched = true;
      }
      return;
    }
  });
  return touched;
}

[[nodiscard]] bool expr_has_side_effects(const Expr& root) {
  bool found = false;
  for_each_expr(root, [&](const Expr& e) {
    if (e.kind() == ExprKind::Assign || e.kind() == ExprKind::Call) {
      found = true;
      return;
    }
    if (const auto* u = expr_cast<UnaryExpr>(&e)) {
      if (u->op == UnaryOp::PreInc || u->op == UnaryOp::PostInc ||
          u->op == UnaryOp::PreDec || u->op == UnaryOp::PostDec) {
        found = true;
      }
    }
  });
  return found;
}

/// Attempts the rewrite of `block.stmts[k]` (a while) using the
/// preceding statement as the induction init. Returns true on success.
[[nodiscard]] bool canonicalize_at(CompoundStmt& block, std::size_t k) {
  auto* loop = stmt_cast<WhileStmt>(block.stmts[k].get());
  if (loop == nullptr || k == 0) return false;
  auto* body = stmt_cast<CompoundStmt>(loop->body.get());
  if (body == nullptr) return false;

  // The body's last real statement must advance one induction variable.
  std::size_t inc_index = body->stmts.size();
  for (std::size_t i = body->stmts.size(); i-- > 0;) {
    const StmtKind kind = body->stmts[i]->kind();
    if (kind == StmtKind::Null || kind == StmtKind::Pragma) continue;
    inc_index = i;
    break;
  }
  if (inc_index == body->stmts.size()) return false;
  const std::string name = match_increment(body->stmts[inc_index].get());
  if (name.empty()) return false;

  // The condition must read the variable and be effect-free.
  if (loop->cond == nullptr || !references_identifier(*loop->cond, name) ||
      expr_has_side_effects(*loop->cond)) {
    return false;
  }

  // No other write to the variable (or address capture) inside the body,
  // and no break/continue binding to this while — a `continue` would
  // skip the trailing increment here but run it in the for form.
  for (std::size_t i = 0; i < body->stmts.size(); ++i) {
    if (i == inc_index) continue;
    if (touches_variable(*body->stmts[i], name)) return false;
    if (has_loop_escape(*body->stmts[i])) return false;
  }

  // The preceding sibling must initialize the variable.
  Stmt* before = block.stmts[k - 1].get();
  StmtPtr init_stmt;
  bool absorb_before = false;
  if (auto* decl = stmt_cast<DeclStmt>(before)) {
    if (decl->decls.size() != 1 || decl->decls[0].name != name ||
        !decl->decls[0].init || decl->decls[0].is_static ||
        decl->decls[0].type == nullptr ||
        decl->decls[0].type->is_pointer()) {
      return false;
    }
    bool referenced_later = false;
    for (std::size_t i = k + 1; i < block.stmts.size() && !referenced_later;
         ++i) {
      referenced_later = references_identifier(*block.stmts[i], name);
    }
    if (!referenced_later) {
      // Nothing after the loop reads the variable: fold the whole
      // declaration into the for header. This keeps nested
      // canonicalized whiles extractable (a retained `int j;` inside
      // an outer loop body would be rejected as a declaration in the
      // nest) and block-scopes the iterator, which OpenMP privatizes
      // for free.
      auto init_decl = std::make_unique<DeclStmt>();
      init_decl->loc = loop->loc;
      init_decl->decls.push_back(std::move(decl->decls[0]));
      init_stmt = std::move(init_decl);
      absorb_before = true;
    } else {
      // The declaration stays in the outer scope (code after the loop
      // reads the final value); only its initializer moves.
      auto init = std::make_unique<ExprStmt>(std::make_unique<AssignExpr>(
          AssignOp::Assign, std::make_unique<IdentExpr>(name),
          std::move(decl->decls[0].init)));
      init->loc = loop->loc;
      init_stmt = std::move(init);
    }
  } else if (auto* es = stmt_cast<ExprStmt>(before)) {
    auto* assign = expr_cast<AssignExpr>(es->expr.get());
    const auto* ident =
        assign ? expr_cast<IdentExpr>(assign->lhs.get()) : nullptr;
    if (assign == nullptr || assign->op != AssignOp::Assign ||
        ident == nullptr || ident->name != name) {
      return false;
    }
    auto init = std::make_unique<ExprStmt>(std::make_unique<AssignExpr>(
        AssignOp::Assign, std::make_unique<IdentExpr>(name),
        std::move(assign->rhs)));
    init->loc = loop->loc;
    init_stmt = std::move(init);
    absorb_before = true;
  } else {
    return false;
  }

  auto rewritten = std::make_unique<ForStmt>();
  rewritten->loc = loop->loc;
  rewritten->init = std::move(init_stmt);
  rewritten->cond = std::move(loop->cond);
  rewritten->inc =
      std::move(stmt_cast<ExprStmt>(body->stmts[inc_index].get())->expr);
  body->stmts.erase(body->stmts.begin() + inc_index);
  rewritten->body = std::move(loop->body);
  block.stmts[k] = std::move(rewritten);
  if (absorb_before) {
    block.stmts.erase(block.stmts.begin() + (k - 1));
  }
  return true;
}

std::size_t canonicalize_in(Stmt& s);

[[nodiscard]] std::size_t canonicalize_block(CompoundStmt& block) {
  std::size_t count = 0;
  for (std::size_t k = 0; k < block.stmts.size(); ++k) {
    if (canonicalize_at(block, k)) {
      ++count;
      // The init statement before `k` may have been absorbed.
      if (k > 0 && k <= block.stmts.size() &&
          block.stmts[k - 1]->kind() == StmtKind::For) {
        --k;
      }
    }
  }
  for (const StmtPtr& child : block.stmts) count += canonicalize_in(*child);
  return count;
}

std::size_t canonicalize_in(Stmt& s) {
  switch (s.kind()) {
    case StmtKind::Compound:
      return canonicalize_block(static_cast<CompoundStmt&>(s));
    case StmtKind::If: {
      auto& branch = static_cast<IfStmt&>(s);
      std::size_t count = canonicalize_in(*branch.then_stmt);
      if (branch.else_stmt) count += canonicalize_in(*branch.else_stmt);
      return count;
    }
    case StmtKind::For: {
      auto& loop = static_cast<ForStmt&>(s);
      return loop.body ? canonicalize_in(*loop.body) : 0;
    }
    case StmtKind::While:
      return canonicalize_in(*static_cast<WhileStmt&>(s).body);
    case StmtKind::DoWhile:
      return canonicalize_in(*static_cast<DoWhileStmt&>(s).body);
    default:
      return 0;
  }
}

}  // namespace

std::size_t canonicalize_while_loops(TranslationUnit& tu) {
  std::size_t count = 0;
  for (FunctionDecl* fn : tu.functions()) {
    if (fn->body) count += canonicalize_in(*fn->body);
  }
  return count;
}

}  // namespace purec

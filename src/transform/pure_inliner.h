// Extension (paper §3.3, future work): the chain normally hides pure
// calls behind tmpConst placeholders, which costs the transformer all
// knowledge of the arrays the function touches. For the simplest class of
// pure functions — a single `return <expression>;` — we can do better:
// inline the body at the call site. The polyhedral step then sees the real
// accesses, which (a) lets PluTo-SICA reason about the whole nest and
// (b) turns some Listing-5 hard errors (argument array also written) into
// precisely analyzed, correctly sequentialized loops.
//
// Enabled via ChainOptions::inline_pure_expressions (off by default: the
// default chain reproduces the paper byte-for-byte).
#pragma once

#include <cstddef>
#include <set>
#include <string>

#include "ast/decl.h"

namespace purec {

/// Inlines calls to expression-bodied pure functions (body == exactly one
/// `return expr;`) everywhere in `tu`. Nested inlinable calls resolve via
/// a fixpoint with a recursion cap. Returns the number of call sites
/// inlined.
std::size_t inline_pure_expression_functions(
    TranslationUnit& tu, const std::set<std::string>& pure_functions);

}  // namespace purec

// Pure-call substitution (§3.3): before the polyhedral transformer runs,
// calls to pure functions inside a marked loop are replaced by unique
// placeholder identifiers (`tmpConst_<fn>_<n>`) so the loop looks like a
// plain affine nest; after transformation the calls are reinserted with
// the loop's (possibly renamed) iterators.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "ast/stmt.h"

namespace purec {

struct SubstitutedCall {
  std::string placeholder;  // tmpConst_<fn>_<n>
  std::string callee;       // the pure function being hidden
  ExprPtr original;         // the call expression (owned)
};

/// Replaces every call to a function in `pure_functions` inside `loop`'s
/// body/condition/increment with a fresh placeholder identifier.
/// `counter` provides unique suffixes across multiple loops of one file.
[[nodiscard]] std::vector<SubstitutedCall> substitute_pure_calls(
    ForStmt& loop, const std::set<std::string>& pure_functions,
    std::size_t& counter);

/// Puts substituted calls back, replacing each placeholder identifier with
/// (a clone of) its original call. Works on any statement tree — both for
/// undoing a failed transformation on the original loop and for finishing
/// a generated loop nest. Returns the number of placeholders replaced.
std::size_t reinsert_pure_calls(Stmt& root,
                                const std::vector<SubstitutedCall>& calls);

}  // namespace purec

// While-loop canonicalization: rewrites
//
//     int i = L;            |   i = L;
//     while (i < U) {       |   while (i < U) {
//       ...body...          |     ...body...
//       i += K;             |     i += K;
//     }                     |   }
//
// into the equivalent `for` representation the polyhedral extractor
// understands (`int i; for (i = L; i < U; i += K) { ...body... }`),
// so affine while loops SCoP-mark, substitute, and parallelize exactly
// like their `for` twins.
//
// The rewrite is applied only when it is provably semantics-preserving:
// the preceding statement initializes the induction variable, the body's
// last statement advances it by a positive integer constant, the variable
// is written nowhere else in the body (and never address-taken there),
// the condition reads it, and no `break`/`continue` binds to the while
// itself (a `continue` would skip the trailing increment in the while
// form but run it in the for form). Everything else is left untouched —
// unsupported shapes degrade to "not a SCoP", never to wrong code.
#pragma once

#include <cstddef>

#include "ast/decl.h"

namespace purec {

/// Canonicalizes every matching while loop in every function body.
/// Returns the number of loops rewritten.
std::size_t canonicalize_while_loops(TranslationUnit& tu);

}  // namespace purec

// The structured optimization report: one JSON document carrying the
// chain's entire decision trail — per-function purity verdicts (declared /
// inferred / inferable / rejected, with reasons and source locations),
// per-scop extraction outcomes (shape, dependences, reductions and their
// demotions, chosen schedule, failure reasons with line/column),
// memoizability verdicts, canonicalized whiles, inliner and instrument
// decisions.
//
// `purecc --report` and `--report=json[:FILE]` are two renderers over the
// same structure: build_chain_report() assembles the document once, then
// either dump() serializes it or render_report_text() reproduces the
// historical stderr format line for line. Tests pin both, so a decision
// added to the chain that is missing here fails goldens instead of
// silently vanishing from the report.
#pragma once

#include <string>

#include "support/json.h"
#include "transform/pure_chain.h"

namespace purec {

/// Assembles the full decision trail of a finished chain run.
[[nodiscard]] json::Value build_chain_report(const ChainArtifacts& artifacts,
                                             const ChainOptions& options);

/// Renders the classic `--report` stderr text from the JSON structure
/// (every line prefixed "purecc: " exactly as the CLI always printed it).
[[nodiscard]] std::string render_report_text(const json::Value& report);

}  // namespace purec

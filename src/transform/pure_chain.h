// The complete compiler chain of the paper's Fig. 1:
//
//   C file -> PC-PrePro (strip system includes) -> GCC-E (mini cpp)
//          -> PC-CC (parse, purity verification, scop marking)
//          -> polycc (call substitution, polyhedral transform, OpenMP
//             pragma insertion, call reinsertion)
//          -> PC-PosPro (restore includes, lower `pure` to plain C)
//          -> (system GCC compiles the result)
//
// Every stage's output text is captured in ChainArtifacts so examples and
// tests can show the source evolving exactly like the paper's figure.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "memo/memoizable.h"
#include "polyhedral/codegen.h"
#include "purity/inference.h"
#include "purity/purity_checker.h"
#include "support/diagnostics.h"
#include "support/source_location.h"

namespace purec {

enum class TransformMode {
  /// Plain PluTo: tiling + OpenMP parallelization.
  Pluto,
  /// PluTo-SICA: additionally emits SIMD pragmas on the innermost parallel
  /// loop (the vectorization/cache mode of §2.2).
  PlutoSica,
};

struct ChainOptions {
  TransformMode mode = TransformMode::Pluto;
  bool parallelize = true;
  bool tile = true;
  std::int64_t tile_size = 32;
  /// OpenMP schedule for emitted parallel pragmas (§4.3.3's fix is
  /// {Dynamic, 1}). Parsed/validated — see support/omp_schedule.h.
  ScheduleSpec schedule;
  /// Extension (§3.3 future work): inline expression-bodied pure functions
  /// into the loops before the polyhedral step, so the transformer sees
  /// the real array accesses instead of tmpConst placeholders. Off by
  /// default — the default chain reproduces the paper exactly.
  bool inline_pure_expressions = false;
  /// Extension: annotate verified allocation-free pure functions with
  /// GCC's `__attribute__((pure))` in the lowered output, turning the
  /// paper's *checked* guarantee into the backend compiler's *unchecked*
  /// optimization hint (§2.1). Off by default.
  bool emit_gcc_attributes = false;
  /// Extension (`purecc --infer-pure`): interprocedural purity inference.
  /// Unannotated functions whose call-graph effect analysis proves them
  /// side-effect free seed the checker's hashset, so plain keyword-free C
  /// gets SCoP-marked, substituted, and parallelized like its annotated
  /// twin. Annotated functions still go through the §3.2 verifier
  /// (annotation + verifier win). Off by default — the default chain
  /// reproduces the paper exactly.
  bool infer_purity = false;
  /// Extension (`purecc --memoize`): cache pure-call results. Pure
  /// functions whose inputs form a bounded key (by-value scalar params,
  /// scalar global-read snapshot — see memo/memoizable.h) get a generated
  /// thunk; every call site, inside and outside SCoPs, is rewritten to go
  /// through it, and the output C carries a self-contained sharded
  /// concurrent table (memo/memo_codegen.h). Off by default.
  bool memoize = false;
  /// `--memoize=all`: disable the memoization cost gate. By default the
  /// classifier skips trivially small single-expression callees (a
  /// `mult`-sized leaf pays more for the table trip than the recompute —
  /// the honest 0.1× negative in BENCH_memoize.json); this flag restores
  /// thunk-everything behavior for measurement.
  bool memoize_all = false;
  /// `--memoize=verify`: the emitted table compiles with full-key
  /// verification on by default — slots store the raw argument/global
  /// words and compare them on a hit, making the 2^-25 fingerprint-
  /// aliasing bound opt-out (PUREC_MEMO_VERIFY=0/1 still overrides at run
  /// time). Implies memoize.
  bool memoize_verify = false;
  /// `--memoize-profile=FILE` (the CLI parses the PUREC_MEMO_STATS dump
  /// into this map): when `has_memoize_profile`, the classifier swaps the
  /// shape-based cost gate for the profile-informed model — only thunks
  /// with demonstrated reuse x callee cost survive (memo/memoizable.h).
  MemoProfile memoize_profile;
  bool has_memoize_profile = false;
  /// `purecc --fp-reductions`: allow +/-/* reductions on float/double
  /// accumulators. Off by default because OpenMP's per-thread partials
  /// reassociate the combination, which changes FP rounding relative to
  /// the serial loop. Integer accumulators and min/max (bit-exact in any
  /// order, modulo NaN) are always allowed.
  bool fp_reductions = false;
  /// `purecc --instrument`: emit self-contained observability counters
  /// into the output C — per-region invocation/wall-time tallies plus
  /// cache-line-padded per-worker chunk counters on every parallel loop
  /// (relaxed __atomic adds, one per claimed outer iteration). An atexit
  /// sink prints a human summary to the shared stats stream, or writes
  /// Chrome trace-event JSON under PUREC_TRACE=FILE (emit/instrument.h).
  /// Off by default — without it the emitted C is byte-identical to the
  /// uninstrumented chain.
  bool instrument = false;
  PurityOptions purity;
  /// Virtual files for `#include "..."` resolution.
  std::map<std::string, std::string> virtual_includes;
  /// Predefined object-like macros (like -D NAME=VALUE).
  std::map<std::string, std::string> defines;
};

/// Per-scop outcome for reporting/tests.
struct ScopReport {
  std::string function;
  std::uint32_t line = 0;            // of the outermost loop
  std::uint32_t column = 0;
  bool contains_calls = false;
  std::size_t substituted_calls = 0;
  bool extracted = false;
  std::string failure_reason;        // when !extracted or codegen failed
  /// Where the rejection bites (the offending statement/loop when the
  /// extractor can point at one, else the nest itself) — line/column for
  /// clickable report entries.
  SourceLocation failure_loc;
  std::size_t depth = 0;
  std::size_t dependences = 0;
  bool transformed = false;
  bool parallelized = false;
  bool tiled = false;
  bool skewed = false;               // non-identity transform
  /// Of the substituted calls, how many target functions whose purity was
  /// *inferred* rather than declared (inference provenance).
  std::size_t inferred_calls = 0;
  /// Region-shaped scop (guards / imperfect nest / iterator-dependent
  /// strided origin): analyzed with per-statement domains and lowered by
  /// pragma annotation instead of the classic reschedule path.
  bool region = false;
  /// Loops that received a parallel pragma (classic path: 0 or 1).
  std::size_t parallel_loops = 0;
  /// The schedule clause the parallel pragmas carry ("" = implementation
  /// default): the user's --schedule spec, or the imbalanced-domain
  /// guided fallback codegen chooses (support/omp_schedule.h).
  std::string schedule_clause;
  /// Recognized (surviving) reductions as "op:accumulator" — e.g.
  /// "+:sum", "min:lo"; user combiners as "callee:acc". These are the
  /// statements whose accumulator self-dependence was exempted (plus
  /// recognized-but-unexemptible Call combiners, for visibility).
  std::vector<std::string> reductions;
  /// Reduction/scan findings that did NOT lead to parallelization:
  /// FP-gated demotions (rerun with --fp-reductions), accumulators read
  /// elsewhere in the nest, user combiners, prefix scans.
  std::vector<std::string> reduction_notes;
  /// Loop fission: the nest was distributed by dependence SCC into
  /// `fission_groups` loops (of which `fission_parallel_groups` carry a
  /// parallel pragma) instead of serializing whole.
  bool fissioned = false;
  std::size_t fission_groups = 0;
  std::size_t fission_parallel_groups = 0;
  /// Function-scope scalars whose cross-iteration conflicts were lifted
  /// into `private(...)` clauses (written before read in every iteration,
  /// dead after the nest).
  std::vector<std::string> privatized;
  /// Sibling loops fused into this nest before transformation (0 = the
  /// nest was not a fusion target).
  std::size_t fused_loops = 0;
  /// Stable instrumentation region id (-1 when the scop was not
  /// instrumented): the join key between this report entry and the
  /// runtime's trace events (`args.region_id`). Assigned in emission
  /// order, matching the emitted purec_instr_rN index.
  std::int64_t region_id = -1;
};

/// One adjacent-sibling-loop fusion decision (taken or rejected), for the
/// report: rejections carry the located reason.
struct FusionDecision {
  std::string function;
  std::uint32_t first_line = 0;
  std::uint32_t first_column = 0;
  std::uint32_t second_line = 0;
  std::uint32_t second_column = 0;
  bool fused = false;
  std::string reason;  // empty when fused
};

struct ChainArtifacts {
  bool ok = false;
  std::string stripped;      // after PC-PrePro
  std::string preprocessed;  // after mini GCC-E
  std::string marked;        // after PC-CC (#pragma scop markers, pure kept)
  std::string substituted;   // pure calls replaced by tmpConst_* (pure kept)
  std::string transformed;   // after polycc (pure kept)
  std::string final_source;  // compilable C: lowered, includes restored
  std::vector<ScopReport> scops;
  /// Call sites inlined by the inline_pure_expressions extension.
  std::size_t inlined_calls = 0;
  /// Affine `while` loops canonicalized into `for` before SCoP detection.
  std::size_t canonicalized_whiles = 0;
  /// Purity-inference provenance (populated only under infer_purity):
  /// which functions were inferred pure, which were rejected and why.
  InferenceResult inference;
  /// Purity verdicts for *every* defined function, populated
  /// unconditionally for the report (declared / inferable / rejected with
  /// reason + location). Unlike `inference`, this never feeds the
  /// transformation — under the default chain inferable-but-unannotated
  /// functions still stay opaque, exactly as the paper specifies.
  InferenceResult purity_trail;
  /// Names ("function:line") of the regions --instrument wired with
  /// counters, in emission order (index = region id in the output C).
  std::vector<std::string> instrumented_regions;
  /// Memoizability provenance (populated only under memoize): which pure
  /// functions got thunks, which were rejected and why.
  MemoizableResult memoization;
  /// Call sites rewritten to go through a memo thunk (under memoize).
  std::size_t memoized_calls = 0;
  /// Adjacent sibling-loop fusion decisions, in candidate order (taken
  /// and rejected alike; populated only when parallelization is on).
  std::vector<FusionDecision> fusion_decisions;
  DiagnosticEngine diagnostics;
};

/// Runs the whole chain on C source text.
[[nodiscard]] ChainArtifacts run_pure_chain(const std::string& source,
                                            const ChainOptions& options = {});

}  // namespace purec

#include "transform/call_substitution.h"

#include "ast/walk.h"

namespace purec {

std::vector<SubstitutedCall> substitute_pure_calls(
    ForStmt& loop, const std::set<std::string>& pure_functions,
    std::size_t& counter) {
  // A pure call that IS the reduction combiner — the whole RHS of
  // `s = f(..., s, ...)` — must survive substitution: replacing it with a
  // tmpConst_* placeholder would erase the accumulator read and leave an
  // unrecognizable plain overwrite. The extractor matches the surviving
  // call as a Min/Max/Call reduction; its *other* arguments still
  // substitute normally (the slot walk descends into protected calls).
  std::set<const Expr*> protected_calls;
  for_each_expr(loop, [&](const Expr& e) {
    const auto* assign = expr_cast<AssignExpr>(&e);
    if (assign == nullptr || assign->op != AssignOp::Assign) return;
    const auto* lhs = expr_cast<IdentExpr>(assign->lhs.get());
    const auto* call = expr_cast<CallExpr>(assign->rhs.get());
    if (lhs == nullptr || call == nullptr) return;
    for (const ExprPtr& arg : call->args) {
      const auto* ident = expr_cast<IdentExpr>(arg.get());
      if (ident != nullptr && ident->name == lhs->name) {
        protected_calls.insert(call);
        return;
      }
    }
  });

  std::vector<SubstitutedCall> out;
  for_each_expr_slot(loop, [&](ExprPtr& slot) -> bool {
    auto* call = expr_cast<CallExpr>(slot.get());
    if (call == nullptr) return false;
    if (protected_calls.count(call) != 0) return false;
    const std::string name = call->callee_name();
    if (name.empty() || pure_functions.count(name) == 0) return false;
    SubstitutedCall record;
    record.placeholder = "tmpConst_" + name + "_" + std::to_string(counter++);
    record.callee = name;
    record.original = std::move(slot);
    auto ident = std::make_unique<IdentExpr>(record.placeholder);
    ident->loc = record.original->loc;
    slot = std::move(ident);
    out.push_back(std::move(record));
    return true;  // the call (including its arguments) is gone from the tree
  });
  return out;
}

std::size_t reinsert_pure_calls(Stmt& root,
                                const std::vector<SubstitutedCall>& calls) {
  std::size_t replaced = 0;
  for_each_expr_slot(root, [&](ExprPtr& slot) -> bool {
    const auto* ident = expr_cast<IdentExpr>(slot.get());
    if (ident == nullptr) return false;
    for (const SubstitutedCall& c : calls) {
      if (ident->name == c.placeholder) {
        slot = c.original->clone();
        ++replaced;
        return true;
      }
    }
    return false;
  });
  return replaced;
}

}  // namespace purec

#include "transform/call_substitution.h"

#include "ast/walk.h"

namespace purec {

std::vector<SubstitutedCall> substitute_pure_calls(
    ForStmt& loop, const std::set<std::string>& pure_functions,
    std::size_t& counter) {
  std::vector<SubstitutedCall> out;
  for_each_expr_slot(loop, [&](ExprPtr& slot) -> bool {
    auto* call = expr_cast<CallExpr>(slot.get());
    if (call == nullptr) return false;
    const std::string name = call->callee_name();
    if (name.empty() || pure_functions.count(name) == 0) return false;
    SubstitutedCall record;
    record.placeholder = "tmpConst_" + name + "_" + std::to_string(counter++);
    record.callee = name;
    record.original = std::move(slot);
    auto ident = std::make_unique<IdentExpr>(record.placeholder);
    ident->loc = record.original->loc;
    slot = std::move(ident);
    out.push_back(std::move(record));
    return true;  // the call (including its arguments) is gone from the tree
  });
  return out;
}

std::size_t reinsert_pure_calls(Stmt& root,
                                const std::vector<SubstitutedCall>& calls) {
  std::size_t replaced = 0;
  for_each_expr_slot(root, [&](ExprPtr& slot) -> bool {
    const auto* ident = expr_cast<IdentExpr>(slot.get());
    if (ident == nullptr) return false;
    for (const SubstitutedCall& c : calls) {
      if (ident->name == c.placeholder) {
        slot = c.original->clone();
        ++replaced;
        return true;
      }
    }
    return false;
  });
  return replaced;
}

}  // namespace purec

#include "transform/pure_inliner.h"

#include <map>

#include "ast/walk.h"

namespace purec {

namespace {

constexpr int kMaxInlineRounds = 8;

/// The inlinable shape: a definition whose body is exactly
/// `{ return <expr>; }` and whose parameters are all named.
[[nodiscard]] const Expr* expression_body(const FunctionDecl& fn) {
  if (!fn.body || fn.body->stmts.size() != 1) return nullptr;
  const auto* ret = stmt_cast<ReturnStmt>(fn.body->stmts[0].get());
  if (ret == nullptr || !ret->value) return nullptr;
  for (const ParamDecl& p : fn.params) {
    if (p.name.empty()) return nullptr;
  }
  return ret->value.get();
}

/// Builds the inlined expression: clone of `body` with each parameter
/// identifier replaced by (a clone of) the matching argument.
[[nodiscard]] ExprPtr instantiate(const Expr& body,
                                  const FunctionDecl& fn,
                                  const std::vector<ExprPtr>& args) {
  ExprPtr cloned = body.clone();
  for_each_expr_slot(cloned, [&](ExprPtr& slot) -> bool {
    const auto* ident = expr_cast<IdentExpr>(slot.get());
    if (ident == nullptr) return false;
    for (std::size_t i = 0; i < fn.params.size() && i < args.size(); ++i) {
      if (fn.params[i].name == ident->name) {
        slot = args[i]->clone();
        return true;  // arguments are caller expressions: do not rescan
      }
    }
    return false;
  });
  return cloned;
}

}  // namespace

std::size_t inline_pure_expression_functions(
    TranslationUnit& tu, const std::set<std::string>& pure_functions) {
  // Collect inlinable definitions.
  std::map<std::string, const FunctionDecl*> inlinable;
  for (const FunctionDecl* fn : tu.functions()) {
    // Membership in the hashset is the authority, so inferred-pure
    // functions (--infer-pure) inline exactly like annotated ones.
    if (!fn->is_definition()) continue;
    if (pure_functions.count(fn->name) == 0) continue;
    if (expression_body(*fn) != nullptr) inlinable[fn->name] = fn;
  }
  if (inlinable.empty()) return 0;

  std::size_t total = 0;
  for (FunctionDecl* fn : tu.functions()) {
    if (!fn->body) continue;
    // Fixpoint: inlined bodies may contain further inlinable calls
    // (e.g. a pure helper calling another pure helper).
    for (int round = 0; round < kMaxInlineRounds; ++round) {
      std::size_t inlined_this_round = 0;
      for_each_expr_slot(*fn->body, [&](ExprPtr& slot) -> bool {
        auto* call = expr_cast<CallExpr>(slot.get());
        if (call == nullptr) return false;
        const auto it = inlinable.find(call->callee_name());
        if (it == inlinable.end()) return false;
        const FunctionDecl& target = *it->second;
        // Self-recursive expression functions cannot be inlined away.
        if (&target == fn) return false;
        if (call->args.size() != target.params.size()) return false;
        const Expr* body = expression_body(target);
        slot = instantiate(*body, target, call->args);
        ++inlined_this_round;
        return true;
      });
      total += inlined_this_round;
      if (inlined_this_round == 0) break;
    }
  }
  return total;
}

}  // namespace purec

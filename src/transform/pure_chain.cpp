#include "transform/pure_chain.h"

#include <algorithm>
#include <functional>

#include "ast/walk.h"
#include "emit/c_printer.h"
#include "emit/instrument.h"
#include "lexer/lexer.h"
#include "memo/memo_codegen.h"
#include "parser/parser.h"
#include "polyhedral/dependence.h"
#include "polyhedral/model.h"
#include "polyhedral/schedule.h"
#include "preproc/include_stripper.h"
#include "preproc/mini_cpp.h"
#include "sema/symbols.h"
#include "support/rational.h"
#include "transform/call_substitution.h"
#include "transform/loop_canon.h"
#include "transform/pure_inliner.h"

namespace purec {

namespace {

/// Finds the owning slot of `target` anywhere under `root` (compound
/// children, if branches, loop bodies). Returns nullptr if absent.
StmtPtr* find_stmt_slot(CompoundStmt& root, const Stmt* target) {
  StmtPtr* found = nullptr;
  std::function<void(StmtPtr&)> visit = [&](StmtPtr& slot) {
    if (found != nullptr || !slot) return;
    if (slot.get() == target) {
      found = &slot;
      return;
    }
    switch (slot->kind()) {
      case StmtKind::Compound:
        for (StmtPtr& child : static_cast<CompoundStmt&>(*slot).stmts) {
          visit(child);
        }
        return;
      case StmtKind::If: {
        auto& n = static_cast<IfStmt&>(*slot);
        visit(n.then_stmt);
        if (n.else_stmt) visit(n.else_stmt);
        return;
      }
      case StmtKind::For: {
        auto& n = static_cast<ForStmt&>(*slot);
        if (n.body) visit(n.body);
        return;
      }
      case StmtKind::While:
        visit(static_cast<WhileStmt&>(*slot).body);
        return;
      case StmtKind::DoWhile:
        visit(static_cast<DoWhileStmt&>(*slot).body);
        return;
      default:
        return;
    }
  };
  for (StmtPtr& child : root.stmts) visit(child);
  return found;
}

/// Finds the compound statement that directly owns `target`.
CompoundStmt* find_owning_compound(Stmt& s, const Stmt* target) {
  if (auto* block = stmt_cast<CompoundStmt>(&s)) {
    for (StmtPtr& child : block->stmts) {
      if (child.get() == target) return block;
    }
    for (StmtPtr& child : block->stmts) {
      if (CompoundStmt* hit = find_owning_compound(*child, target)) {
        return hit;
      }
    }
    return nullptr;
  }
  switch (s.kind()) {
    case StmtKind::If: {
      auto& n = static_cast<IfStmt&>(s);
      if (CompoundStmt* hit = find_owning_compound(*n.then_stmt, target)) {
        return hit;
      }
      return n.else_stmt ? find_owning_compound(*n.else_stmt, target)
                         : nullptr;
    }
    case StmtKind::For: {
      auto& n = static_cast<ForStmt&>(s);
      return n.body ? find_owning_compound(*n.body, target) : nullptr;
    }
    case StmtKind::While:
      return find_owning_compound(*static_cast<WhileStmt&>(s).body, target);
    case StmtKind::DoWhile:
      return find_owning_compound(*static_cast<DoWhileStmt&>(s).body, target);
    default:
      return nullptr;
  }
}

/// What a statement executed *after* the nest does to the iterator:
/// reads its (lost) value, unconditionally overwrites it before any
/// read, or never mentions it.
enum class IterFate { NoRef, Killed, Read };

/// Plain `name = rhs` with `name` absent from rhs: the old value dies.
[[nodiscard]] bool is_kill_assignment(const Stmt* s,
                                      const std::string& name) {
  const auto* es = stmt_cast<ExprStmt>(s);
  const auto* assign = es ? expr_cast<AssignExpr>(es->expr.get()) : nullptr;
  const auto* ident =
      assign ? expr_cast<IdentExpr>(assign->lhs.get()) : nullptr;
  if (assign == nullptr || assign->op != AssignOp::Assign ||
      ident == nullptr || ident->name != name) {
    return false;
  }
  return !references_identifier(*assign->rhs, name);
}

[[nodiscard]] IterFate iterator_fate(const Stmt& s,
                                     const std::string& name) {
  switch (s.kind()) {
    case StmtKind::Expr:
      if (is_kill_assignment(&s, name)) return IterFate::Killed;
      return references_identifier(s, name) ? IterFate::Read : IterFate::NoRef;
    case StmtKind::Compound: {
      for (const StmtPtr& child :
           static_cast<const CompoundStmt&>(s).stmts) {
        // A nested declaration of the same name shadows the remainder
        // of this block only — skip it, but keep scanning outside.
        if (const auto* decl = stmt_cast<DeclStmt>(child.get())) {
          bool shadows = false;
          for (const VarDecl& d : decl->decls) {
            if (d.init && references_identifier(*d.init, name)) {
              return IterFate::Read;
            }
            if (d.name == name) shadows = true;
          }
          if (shadows) return IterFate::NoRef;
          continue;
        }
        const IterFate fate = iterator_fate(*child, name);
        if (fate != IterFate::NoRef) return fate;
      }
      return IterFate::NoRef;
    }
    case StmtKind::If: {
      const auto& branch = static_cast<const IfStmt&>(s);
      if (references_identifier(*branch.cond, name)) return IterFate::Read;
      const IterFate then_fate = iterator_fate(*branch.then_stmt, name);
      if (then_fate == IterFate::Read) return IterFate::Read;
      const IterFate else_fate =
          branch.else_stmt ? iterator_fate(*branch.else_stmt, name)
                           : IterFate::NoRef;
      if (else_fate == IterFate::Read) return IterFate::Read;
      // Only a kill on BOTH paths guarantees the old value is dead.
      if (then_fate == IterFate::Killed && else_fate == IterFate::Killed) {
        return IterFate::Killed;
      }
      return IterFate::NoRef;
    }
    case StmtKind::For: {
      const auto& loop = static_cast<const ForStmt&>(s);
      // A later loop re-initializing the variable kills the old value;
      // a decl-init loop of the same name shadows its own subtree.
      if (is_kill_assignment(loop.init.get(), name)) {
        return IterFate::Killed;
      }
      if (const auto* decl = stmt_cast<DeclStmt>(loop.init.get())) {
        if (decl->decls.size() == 1 && decl->decls[0].name == name &&
            (!decl->decls[0].init ||
             !references_identifier(*loop.init, name))) {
          return IterFate::NoRef;
        }
      }
      return references_identifier(s, name) ? IterFate::Read : IterFate::NoRef;
    }
    default:
      return references_identifier(s, name) ? IterFate::Read : IterFate::NoRef;
  }
}

/// Fate of `name` in the statements that execute after `nest` inside
/// subtree `s`. `found` reports whether the nest was seen; `in_loop`
/// reports the nest sits under an enclosing loop (its value is then
/// consumed by statements *before* it textually, so any outside
/// reference is conservatively a read).
[[nodiscard]] IterFate fate_after_nest(const Stmt& s, const Stmt* nest,
                                       const std::string& name,
                                       bool& found, bool& in_loop) {
  if (&s == nest) {
    found = true;
    return IterFate::NoRef;
  }
  switch (s.kind()) {
    case StmtKind::Compound: {
      const auto& block = static_cast<const CompoundStmt&>(s);
      for (std::size_t i = 0; i < block.stmts.size(); ++i) {
        const IterFate fate =
            fate_after_nest(*block.stmts[i], nest, name, found, in_loop);
        if (!found) continue;
        if (fate != IterFate::NoRef) return fate;
        for (std::size_t k = i + 1; k < block.stmts.size(); ++k) {
          const IterFate sibling = iterator_fate(*block.stmts[k], name);
          if (sibling != IterFate::NoRef) return sibling;
        }
        return IterFate::NoRef;
      }
      return IterFate::NoRef;
    }
    case StmtKind::If: {
      const auto& branch = static_cast<const IfStmt&>(s);
      IterFate fate =
          fate_after_nest(*branch.then_stmt, nest, name, found, in_loop);
      if (found) return fate;
      if (branch.else_stmt) {
        fate = fate_after_nest(*branch.else_stmt, nest, name, found,
                               in_loop);
        if (found) return fate;
      }
      return IterFate::NoRef;
    }
    case StmtKind::For: {
      const auto& loop = static_cast<const ForStmt&>(s);
      if (loop.body) {
        const IterFate fate =
            fate_after_nest(*loop.body, nest, name, found, in_loop);
        if (found) {
          in_loop = true;
          return fate;
        }
      }
      return IterFate::NoRef;
    }
    case StmtKind::While:
    case StmtKind::DoWhile: {
      const Stmt* body = s.kind() == StmtKind::While
                             ? static_cast<const WhileStmt&>(s).body.get()
                             : static_cast<const DoWhileStmt&>(s).body.get();
      if (body != nullptr) {
        const IterFate fate =
            fate_after_nest(*body, nest, name, found, in_loop);
        if (found) {
          in_loop = true;
          return fate;
        }
      }
      return IterFate::NoRef;
    }
    default:
      return IterFate::NoRef;
  }
}

/// Name of the first scop-loop iterator that (a) lives in an enclosing
/// scope (`i = 0` for-init — the shape while-canonicalization produces)
/// and (b) is referenced outside the nest. Both lowering paths lose the
/// iterator's post-loop value — the classic path regenerates the nest
/// over fresh `t*` variables and never assigns the original, and an
/// OpenMP-annotated loop privatizes it, leaving the original
/// indeterminate after the region — so such nests must stay serial.
/// Returns empty when no iterator escapes.
std::string escaping_iterator_use(const poly::Scop& scop,
                                  const FunctionDecl& fn,
                                  const ForStmt& root,
                                  const SymbolTable& symbols) {
  std::vector<std::string> candidates;
  for (std::size_t j = 0; j < scop.loop_asts.size(); ++j) {
    const ForStmt* loop = scop.loop_asts[j];
    if (loop != nullptr && loop->init != nullptr &&
        stmt_cast<ExprStmt>(loop->init.get()) != nullptr) {
      candidates.push_back(scop.iterators[j]);
    }
  }
  if (candidates.empty() || !fn.body) return {};
  const auto count_in = [](const Stmt& s, const std::string& name) {
    std::size_t count = 0;
    for_each_expr(s, [&](const Expr& e) {
      const auto* ident = expr_cast<IdentExpr>(&e);
      if (ident != nullptr && ident->name == name) ++count;
    });
    return count;
  };
  for (const std::string& name : candidates) {
    // A file-scope induction variable escapes by definition: any other
    // function can observe its post-loop value, and no in-function
    // analysis can see that.
    if (symbols.find_global(name) != nullptr) return name;
    // No references outside the nest at all: trivially safe.
    if (count_in(*fn.body, name) <=
        count_in(static_cast<const Stmt&>(root), name)) {
      continue;
    }
    // References exist elsewhere — decide by what actually happens to
    // the variable after the nest: an unconditional re-initialization
    // (e.g. a sibling `for (i = 0; ...)`) kills the value before any
    // read, references only *before* a straight-line nest are reads of
    // pre-nest values, but a read — or any outside reference when the
    // nest re-executes under an enclosing loop — escapes.
    bool found = false;
    bool in_loop = false;
    const IterFate fate = fate_after_nest(
        *fn.body, static_cast<const Stmt*>(&root), name, found, in_loop);
    if (!found || in_loop || fate == IterFate::Read) return name;
  }
  return {};
}

/// Type of scalar `name` as seen from `fn`: block-scope declarations win,
/// then parameters, then file-scope globals. Null when unknown (the FP
/// reduction gate then demotes conservatively).
[[nodiscard]] const Type* scalar_type_in(const FunctionDecl& fn,
                                         const SymbolTable& symbols,
                                         const std::string& name) {
  const Type* found = nullptr;
  if (fn.body) {
    for_each_stmt(*fn.body, [&](const Stmt& s) {
      const auto* decl = stmt_cast<DeclStmt>(&s);
      if (decl == nullptr) return;
      for (const VarDecl& d : decl->decls) {
        if (d.name == name && d.type) found = d.type.get();
      }
    });
  }
  if (found != nullptr) return found;
  for (const ParamDecl& param : fn.params) {
    if (param.name == name && param.type) return param.type.get();
  }
  if (const GlobalVarDecl* global = symbols.find_global(name)) {
    return global->var.type.get();
  }
  return nullptr;
}

/// Inserts `#pragma scop` / `#pragma endscop` around each candidate loop.
void mark_scops(TranslationUnit& tu,
                const std::vector<ScopCandidate>& candidates) {
  for (const ScopCandidate& candidate : candidates) {
    FunctionDecl* fn = tu.find_function(candidate.function->name);
    if (fn == nullptr || !fn->body) continue;
    CompoundStmt* block = find_owning_compound(*fn->body, candidate.loop);
    if (block == nullptr) continue;
    for (std::size_t i = 0; i < block->stmts.size(); ++i) {
      if (block->stmts[i].get() != candidate.loop) continue;
      block->stmts.insert(block->stmts.begin() + i + 1,
                          std::make_unique<PragmaStmt>("#pragma endscop"));
      block->stmts.insert(block->stmts.begin() + i,
                          std::make_unique<PragmaStmt>("#pragma scop"));
      break;
    }
  }
}

/// Removes the scop marker pragmas again (the polyhedral step consumes
/// candidates directly; the markers are the PC-CC artifact).
void scrub_scop_markers(Stmt& s) {
  if (auto* block = stmt_cast<CompoundStmt>(&s)) {
    for (auto it = block->stmts.begin(); it != block->stmts.end();) {
      const auto* pragma = stmt_cast<PragmaStmt>(it->get());
      if (pragma != nullptr && (pragma->text == "#pragma scop" ||
                                pragma->text == "#pragma endscop")) {
        it = block->stmts.erase(it);
      } else {
        scrub_scop_markers(**it);
        ++it;
      }
    }
    return;
  }
  switch (s.kind()) {
    case StmtKind::If: {
      auto& n = static_cast<IfStmt&>(s);
      scrub_scop_markers(*n.then_stmt);
      if (n.else_stmt) scrub_scop_markers(*n.else_stmt);
      return;
    }
    case StmtKind::For: {
      auto& n = static_cast<ForStmt&>(s);
      if (n.body) scrub_scop_markers(*n.body);
      return;
    }
    case StmtKind::While:
      scrub_scop_markers(*static_cast<WhileStmt&>(s).body);
      return;
    case StmtKind::DoWhile:
      scrub_scop_markers(*static_cast<DoWhileStmt&>(s).body);
      return;
    default:
      return;
  }
}

void unmark_scops(TranslationUnit& tu) {
  for (FunctionDecl* fn : tu.functions()) {
    if (fn->body) scrub_scop_markers(*fn->body);
  }
}

// ---- Adjacent sibling-loop fusion ----------------------------------------

/// Renames every identifier `from` to `to` in an expression/statement
/// subtree (used to merge the second loop's body onto the first loop's
/// iterator; callers have already rejected shadowing and capture).
void rename_identifier(Expr& e, const std::string& from,
                       const std::string& to) {
  for_each_expr(e, [&](Expr& sub) {
    auto* ident = expr_cast<IdentExpr>(&sub);
    if (ident != nullptr && ident->name == from) ident->name = to;
  });
}

void rename_identifier(Stmt& s, const std::string& from,
                       const std::string& to) {
  for_each_expr(s, [&](Expr& sub) {
    auto* ident = expr_cast<IdentExpr>(&sub);
    if (ident != nullptr && ident->name == from) ident->name = to;
  });
}

/// Structural equality of two loop-header expressions modulo renaming
/// `rename_from` (in `b`) to `rename_to`. Conservative: only the shapes a
/// canonical loop header uses (literals, identifiers, unary/binary/assign
/// operators); anything else compares unequal.
[[nodiscard]] bool headers_match(const Expr* a, const Expr* b,
                                 const std::string& rename_from,
                                 const std::string& rename_to) {
  if (a == nullptr || b == nullptr) return a == b;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case ExprKind::IntLiteral:
      return static_cast<const IntLiteralExpr&>(*a).value ==
             static_cast<const IntLiteralExpr&>(*b).value;
    case ExprKind::Ident: {
      const std::string& nb = static_cast<const IdentExpr&>(*b).name;
      return static_cast<const IdentExpr&>(*a).name ==
             (nb == rename_from ? rename_to : nb);
    }
    case ExprKind::Unary: {
      const auto& ua = static_cast<const UnaryExpr&>(*a);
      const auto& ub = static_cast<const UnaryExpr&>(*b);
      return ua.op == ub.op && headers_match(ua.operand.get(),
                                             ub.operand.get(), rename_from,
                                             rename_to);
    }
    case ExprKind::Binary: {
      const auto& ba = static_cast<const BinaryExpr&>(*a);
      const auto& bb = static_cast<const BinaryExpr&>(*b);
      return ba.op == bb.op &&
             headers_match(ba.lhs.get(), bb.lhs.get(), rename_from,
                           rename_to) &&
             headers_match(ba.rhs.get(), bb.rhs.get(), rename_from,
                           rename_to);
    }
    case ExprKind::Assign: {
      const auto& aa = static_cast<const AssignExpr&>(*a);
      const auto& ab = static_cast<const AssignExpr&>(*b);
      return aa.op == ab.op &&
             headers_match(aa.lhs.get(), ab.lhs.get(), rename_from,
                           rename_to) &&
             headers_match(aa.rhs.get(), ab.rhs.get(), rename_from,
                           rename_to);
    }
    default:
      return false;
  }
}

/// True when `s` declares `name` anywhere (shadowing hazard for the
/// rename-based fusion merge).
[[nodiscard]] bool declares_identifier(const Stmt& s,
                                       const std::string& name) {
  bool found = false;
  for_each_stmt(s, [&](const Stmt& sub) {
    const auto* decl = stmt_cast<DeclStmt>(&sub);
    if (decl == nullptr) return;
    for (const VarDecl& d : decl->decls) {
      if (d.name == name) found = true;
    }
  });
  return found;
}

/// Appends (a clone of) `extra` to `loop`'s body, flattening compounds.
void append_to_body(ForStmt& loop, StmtPtr extra) {
  auto* block = stmt_cast<CompoundStmt>(loop.body.get());
  if (block == nullptr) {
    auto wrapper = std::make_unique<CompoundStmt>();
    if (loop.body) wrapper->stmts.push_back(std::move(loop.body));
    loop.body = std::move(wrapper);
    block = stmt_cast<CompoundStmt>(loop.body.get());
  }
  if (auto* extra_block = stmt_cast<CompoundStmt>(extra.get())) {
    for (StmtPtr& child : extra_block->stmts) {
      block->stmts.push_back(std::move(child));
    }
  } else {
    block->stmts.push_back(std::move(extra));
  }
}

}  // namespace

ChainArtifacts run_pure_chain(const std::string& source,
                              const ChainOptions& options) {
  ChainArtifacts artifacts;
  DiagnosticEngine& diags = artifacts.diagnostics;

  // ---- PC-PrePro ----------------------------------------------------------
  StrippedSource stripped = strip_system_includes(source);
  artifacts.stripped = stripped.text;

  // ---- GCC-E (mini) -------------------------------------------------------
  MiniPreprocessor cpp(diags);
  for (const auto& [name, content] : options.virtual_includes) {
    cpp.add_include_file(name, content);
  }
  for (const auto& [name, value] : options.defines) {
    cpp.define(name, value);
  }
  artifacts.preprocessed = cpp.preprocess(stripped.text);
  if (diags.has_errors()) return artifacts;

  // ---- PC-CC: parse + purity verification + scop detection ----------------
  SourceBuffer buffer =
      SourceBuffer::from_string(artifacts.preprocessed, "<chain>");
  TranslationUnit tu = parse(buffer, diags);
  if (diags.has_errors()) return artifacts;

  // Affine `while` loops canonicalize into `for` before anything looks at
  // loop structure, so they SCoP-mark and parallelize like their `for`
  // twins (region extraction's `while`-as-for leg).
  artifacts.canonicalized_whiles = canonicalize_while_loops(tu);

  // Extension pre-pass (§3.3 future work): inline expression-bodied pure
  // functions before verification + scop detection. A scratch purity run
  // supplies the hashset; the authoritative run happens below on the
  // (possibly) rewritten AST.
  if (options.inline_pure_expressions) {
    DiagnosticEngine scratch;
    const SymbolTable scratch_symbols = SymbolTable::build(tu, scratch);
    PurityOptions scratch_options = options.purity;
    scratch_options.listing5_violation_is_error = false;
    if (options.infer_purity) {
      // Inferred-pure functions are inlining candidates too.
      const InferenceResult pre_inline =
          infer_purity(tu, scratch_symbols, options.purity);
      scratch_options.assume_pure = pre_inline.inferred_pure;
    }
    PurityChecker scratch_checker(tu, scratch_symbols, scratch,
                                  scratch_options);
    const PurityResult scratch_purity = scratch_checker.check();
    artifacts.inlined_calls =
        inline_pure_expression_functions(tu, scratch_purity.pure_functions);
  }

  const SymbolTable symbols = SymbolTable::build(tu, diags);
  PurityOptions purity_options = options.purity;
  // The full per-function purity trail is computed unconditionally for the
  // report (declared / inferable / rejected with reason + location); it
  // only *drives* the transformation under --infer-pure, where it also
  // seeds the checker's hashset.
  artifacts.purity_trail = infer_purity(tu, symbols, options.purity);
  if (options.infer_purity) {
    // Interprocedural inference over the (possibly inlined) AST seeds the
    // checker: unannotated-but-provably-pure functions join the hashset,
    // and their transitive global reads feed the Listing-5 rule.
    artifacts.inference = artifacts.purity_trail;
    purity_options.assume_pure = artifacts.inference.inferred_pure;
    purity_options.assumed_global_reads =
        artifacts.inference.inferred_global_reads();
  }
  PurityChecker checker(tu, symbols, diags, purity_options);
  const PurityResult purity = checker.check();
  if (diags.has_errors()) return artifacts;

  // Memoizability classification runs on the pre-transformation AST: it
  // re-derives effect summaries through `symbols`, whose resolutions are
  // keyed on the original nodes. The call-site rewrite happens after the
  // polyhedral step so reinserted calls inside generated nests are
  // rewritten too.
  if (options.memoize) {
    artifacts.memoization = classify_memoizable(
        tu, symbols, purity.pure_functions, purity_options,
        /*cost_gate=*/!options.memoize_all,
        options.has_memoize_profile ? &options.memoize_profile : nullptr);
  }

  mark_scops(tu, purity.scop_loops);
  artifacts.marked = print_c(tu, PrintOptions{PureHandling::Keep, 2});
  unmark_scops(tu);

  // ---- polycc: substitution + polyhedral transformation -------------------
  std::size_t placeholder_counter = 0;
  std::vector<ScopCandidate> scop_candidates = purity.scop_loops;
  std::vector<std::vector<SubstitutedCall>> all_substitutions;
  for (const ScopCandidate& candidate : scop_candidates) {
    auto* loop = const_cast<ForStmt*>(candidate.loop);
    all_substitutions.push_back(substitute_pure_calls(
        *loop, purity.pure_functions, placeholder_counter));
  }
  artifacts.substituted = print_c(tu, PrintOptions{PureHandling::Keep, 2});

  // Loop fusion: adjacent sibling scop nests with structurally identical
  // headers merge into one loop when the fused outer loop is still
  // parallel — one parallel region (and one pass over shared inputs)
  // instead of two. Decisions, taken or rejected, go to the report.
  std::vector<std::size_t> fused_counts(scop_candidates.size(), 0);
  if (options.parallelize) {
    for (std::size_t i = 0; i + 1 < scop_candidates.size();) {
      const ScopCandidate& first = scop_candidates[i];
      const ScopCandidate& second = scop_candidates[i + 1];
      auto* loop1 = const_cast<ForStmt*>(first.loop);
      auto* loop2 = const_cast<ForStmt*>(second.loop);
      FusionDecision decision;
      decision.function = first.function->name;
      decision.first_line = loop1->loc.line;
      decision.first_column = loop1->loc.column;
      decision.second_line = loop2->loc.line;
      decision.second_column = loop2->loc.column;

      // Adjacency: both nests directly consecutive in one compound of the
      // same function (anything between them — even a declaration — keeps
      // them apart). Non-adjacent pairs are not candidates at all.
      FunctionDecl* fn = first.function == second.function
                             ? tu.find_function(first.function->name)
                             : nullptr;
      CompoundStmt* block =
          fn != nullptr && fn->body
              ? find_owning_compound(*fn->body, loop1)
              : nullptr;
      bool adjacent = false;
      std::size_t slot2 = 0;
      if (block != nullptr) {
        for (std::size_t k = 0; k + 1 < block->stmts.size(); ++k) {
          if (block->stmts[k].get() == loop1 &&
              block->stmts[k + 1].get() == loop2) {
            adjacent = true;
            slot2 = k + 1;
            break;
          }
        }
      }
      if (!adjacent) {
        ++i;
        continue;
      }

      const auto reject = [&](std::string reason) {
        decision.fused = false;
        decision.reason = std::move(reason);
        artifacts.fusion_decisions.push_back(std::move(decision));
        ++i;
      };

      // Header compatibility: both iterators block-scoped (decl-init,
      // single declarator), identical bounds/step modulo renaming the
      // second iterator onto the first.
      const auto* decl1 = stmt_cast<DeclStmt>(loop1->init.get());
      const auto* decl2 = stmt_cast<DeclStmt>(loop2->init.get());
      if (decl1 == nullptr || decl2 == nullptr ||
          decl1->decls.size() != 1 || decl2->decls.size() != 1) {
        reject("iterator is not a block-scoped declaration");
        continue;
      }
      const std::string n1 = decl1->decls[0].name;
      const std::string n2 = decl2->decls[0].name;
      if (!headers_match(decl1->decls[0].init.get(),
                         decl2->decls[0].init.get(), n2, n1) ||
          !headers_match(loop1->cond.get(), loop2->cond.get(), n2, n1) ||
          !headers_match(loop1->inc.get(), loop2->inc.get(), n2, n1)) {
        reject("loop headers differ (bounds or step)");
        continue;
      }
      if (n1 != n2 && loop2->body != nullptr &&
          references_identifier(*loop2->body, n1)) {
        reject("iterator rename would capture '" + n1 + "'");
        continue;
      }
      if (loop2->body != nullptr &&
          (declares_identifier(*loop2->body, n1) ||
           declares_identifier(*loop2->body, n2))) {
        reject("second body redeclares the iterator");
        continue;
      }

      // Trial merge on clones: the fused nest must extract as one scop
      // and its outer loop must stay parallel.
      std::size_t boundary = 0;
      {
        poly::ExtractionResult r1 = poly::extract_scop(*loop1);
        if (!r1.ok()) {
          reject("first nest no longer extracts: " + r1.failure_reason);
          continue;
        }
        for (const poly::ScopStatement& stmt : r1.scop->statements) {
          boundary = std::max(boundary, stmt.position + 1);
        }
      }
      auto trial = StmtPtr(loop1->clone());
      auto* trial_loop = stmt_cast<ForStmt>(trial.get());
      StmtPtr body2 = loop2->body ? loop2->body->clone() : nullptr;
      if (body2) rename_identifier(*body2, n2, n1);
      append_to_body(*trial_loop, std::move(body2));
      poly::ExtractionResult fused = poly::extract_scop(*trial_loop);
      if (!fused.ok()) {
        reject("fused nest is not a SCoP: " + fused.failure_reason);
        continue;
      }
      const std::vector<poly::Dependence> deps =
          poly::analyze_dependences(*fused.scop);
      if (!poly::loop_is_parallel(deps, 0)) {
        bool crossing = false;
        const poly::Dependence* blocker =
            poly::fusion_blocker(*fused.scop, deps, boundary, &crossing);
        if (blocker != nullptr && crossing) {
          reject("fusion-preventing dependence on '" + blocker->array +
                 "'");
        } else if (blocker != nullptr) {
          reject("a loop is already serial (dependence on '" +
                 blocker->array + "')");
        } else {
          reject("fused outer loop is not parallel");
        }
        continue;
      }

      // Commit: merge the real second body (renamed) into the first loop,
      // drop the second loop, and fold its substituted calls (their saved
      // originals reference the old iterator) into the first candidate.
      if (loop2->body) rename_identifier(*loop2->body, n2, n1);
      append_to_body(*loop1, std::move(loop2->body));
      block->stmts.erase(block->stmts.begin() +
                         static_cast<std::ptrdiff_t>(slot2));
      for (SubstitutedCall& call : all_substitutions[i + 1]) {
        if (call.original) rename_identifier(*call.original, n2, n1);
        all_substitutions[i].push_back(std::move(call));
      }
      all_substitutions.erase(all_substitutions.begin() +
                              static_cast<std::ptrdiff_t>(i + 1));
      fused_counts[i] += 1 + fused_counts[i + 1];
      fused_counts.erase(fused_counts.begin() +
                         static_cast<std::ptrdiff_t>(i + 1));
      scop_candidates.erase(scop_candidates.begin() +
                            static_cast<std::ptrdiff_t>(i + 1));
      decision.fused = true;
      artifacts.fusion_decisions.push_back(std::move(decision));
      // Stay at i: a third adjacent sibling may fuse into the same loop.
    }
  }

  for (std::size_t idx = 0; idx < scop_candidates.size(); ++idx) {
    const ScopCandidate& candidate = scop_candidates[idx];
    std::vector<SubstitutedCall>& calls = all_substitutions[idx];
    auto* loop = const_cast<ForStmt*>(candidate.loop);

    ScopReport report;
    report.function = candidate.function->name;
    report.line = candidate.loop->loc.line;
    report.column = candidate.loop->loc.column;
    report.contains_calls = candidate.contains_calls;
    report.substituted_calls = calls.size();
    report.fused_loops = fused_counts[idx];
    for (const SubstitutedCall& call : calls) {
      if (artifacts.inference.inferred_pure.count(call.callee) != 0) {
        ++report.inferred_calls;
      }
    }

    const auto undo = [&] {
      reinsert_pure_calls(*loop, calls);
      artifacts.scops.push_back(report);
    };

    poly::IteratorSubstitution iter_subst;
    StmtPtr generated;
    std::vector<std::string> scop_iterators;
    bool region = false;
    try {
      poly::ExtractionResult extraction = poly::extract_scop(*loop);
      if (!extraction.ok()) {
        report.failure_reason = extraction.failure_reason;
        report.failure_loc = extraction.failure_loc;
        undo();
        continue;
      }
      poly::Scop& scop = *extraction.scop;
      report.extracted = true;
      report.depth = scop.depth();
      region = scop.region_shaped;
      report.region = region;

      const FunctionDecl* owner =
          tu.find_function(candidate.function->name);

      // FP-reassociation gate: +/-/* on a non-integer accumulator only
      // stays a reduction under --fp-reductions (OpenMP's per-thread
      // partials reassociate the combination, changing rounding relative
      // to the serial loop). min/max are bit-exact in any order and
      // integer accumulators are associative for real, so both pass.
      if (!options.fp_reductions) {
        for (poly::ScopStatement& stmt : scop.statements) {
          if (stmt.reduction_op != poly::ReductionOp::Add &&
              stmt.reduction_op != poly::ReductionOp::Sub &&
              stmt.reduction_op != poly::ReductionOp::Mul) {
            continue;
          }
          const Type* type =
              owner != nullptr
                  ? scalar_type_in(*owner, symbols,
                                   stmt.reduction_accumulator)
                  : nullptr;
          if (type != nullptr && type->is_integer()) continue;
          scop.reduction_notes.push_back(
              "reduction on '" + stmt.reduction_accumulator +
              "' demoted: accumulator is not integer "
              "(floating-point reduction reassociates; "
              "enable with --fp-reductions)");
          stmt.reduction_op = poly::ReductionOp::None;
          stmt.reduction_accumulator.clear();
        }
      }
      for (const poly::ScopStatement& stmt : scop.statements) {
        if (stmt.reduction_op == poly::ReductionOp::None) continue;
        const std::string op =
            stmt.reduction_op == poly::ReductionOp::Call
                ? stmt.reduction_callee
                : poly::reduction_token(stmt.reduction_op);
        report.reductions.push_back(op + ":" +
                                    stmt.reduction_accumulator);
      }
      report.reduction_notes = scop.reduction_notes;

      if (owner != nullptr) {
        const std::string escapee =
            escaping_iterator_use(scop, *owner, *loop, symbols);
        if (!escapee.empty()) {
          report.failure_reason =
              "iterator '" + escapee +
              "' lives outside the nest and is read after it "
              "(the transform would lose its final value)";
          report.failure_loc = loop->loc;
          undo();
          continue;
        }
      }

      std::vector<poly::Dependence> deps =
          poly::analyze_dependences(scop);
      report.dependences = deps.size();

      // Scalar privatization candidates: the polyhedral layer's
      // structural written-before-read rule, filtered by what only the
      // chain can see — the scalar must be function-local (not a global)
      // and dead after the nest (privatizing a live-out scalar would
      // lose its final value, exactly like an escaping iterator).
      std::vector<std::string> privatizable;
      if (owner != nullptr && options.parallelize) {
        std::vector<std::string> candidates;
        for (std::size_t j = 0; j < scop.depth(); ++j) {
          for (std::string& name : poly::privatizable_scalars(scop, j)) {
            if (std::find(candidates.begin(), candidates.end(), name) ==
                candidates.end()) {
              candidates.push_back(std::move(name));
            }
          }
        }
        for (const std::string& name : candidates) {
          if (symbols.find_global(name) != nullptr) continue;
          // Declared inside the nest: already per-iteration storage, and
          // not nameable from the pragma's scope.
          if (declares_identifier(*loop, name)) continue;
          bool found = false;
          bool in_loop = false;
          const IterFate fate =
              owner->body ? fate_after_nest(*owner->body,
                                            static_cast<const Stmt*>(loop),
                                            name, found, in_loop)
                          : IterFate::Read;
          if (!found || in_loop || fate == IterFate::Read) continue;
          privatizable.push_back(name);
        }
      }

      poly::CodegenOptions cg;
      cg.parallelize = options.parallelize;
      cg.tile = options.tile;
      cg.tile_size = options.tile_size;
      cg.simd = (options.mode == TransformMode::PlutoSica);
      cg.schedule = options.schedule;

      if (region) {
        // Region path (guards / imperfect nests / iterator-dependent
        // strided origins): no reordering — reschedule the nest at the
        // statement level (parallel pragmas, fission by dependence SCC,
        // scalar privatization). Iterators keep their source names, so
        // the reinserted calls need no substitution.
        poly::RegionSchedule rs;
        generated = poly::schedule_region(scop, deps, cg, privatizable,
                                          &rs);
        if (generated) {
          report.parallelized = !rs.parallel_loops.empty();
          report.parallel_loops = rs.parallel_loops.size();
          report.fissioned = rs.fissioned;
          report.fission_groups = rs.groups;
          report.fission_parallel_groups = rs.parallel_groups;
          report.privatized = rs.privatized;
          if (report.parallelized) {
            report.schedule_clause = rs.schedule_clause;
          }
        }
      } else {
        // Privatized scalars' dependences are exempt from schedule
        // legality (each thread gets its own copy); generate_code emits
        // the matching private(...) clause.
        const std::vector<std::string> priv0 = [&] {
          std::vector<std::string> out;
          for (const std::string& name :
               poly::privatizable_scalars(scop, 0)) {
            if (std::find(privatizable.begin(), privatizable.end(),
                          name) != privatizable.end()) {
              out.push_back(name);
            }
          }
          return out;
        }();
        poly::mark_private_dependences(deps, priv0);
        cg.privatized = priv0;

        const poly::Transform transform =
            poly::compute_schedule(scop, deps);
        report.skewed = !transform.is_identity();
        scop_iterators = scop.iterators;

        generated = poly::generate_code(scop, transform, cg, &iter_subst);
        if (generated) {
          report.parallelized =
              options.parallelize && transform.any_parallel();
          if (report.parallelized) {
            report.parallel_loops = 1;
            report.privatized = priv0;
          }
          report.tiled = options.tile && transform.band_size >= 2 &&
                         options.tile_size > 1;
        }
        if (report.parallelized) {
          // Mirror codegen's schedule policy for the report: the user's
          // spec wins; with none, imbalanced (triangular) domains get
          // the guided fallback (see poly::domain_is_imbalanced).
          ScheduleSpec effective = options.schedule;
          if (effective.empty() && poly::domain_is_imbalanced(scop)) {
            effective.kind = OmpScheduleKind::Guided;
            effective.chunk = 4;
          }
          report.schedule_clause = effective.clause();
        } else if (options.parallelize) {
          // The hyperplane path left the nest serial: fall back to
          // statement-level fission — a partially parallel nest splits
          // into a serial loop plus a parallel loop instead of
          // serializing whole. Iterators keep their names (no
          // substitution).
          poly::RegionSchedule rs;
          StmtPtr fissioned = poly::schedule_region(scop, deps, cg,
                                                    privatizable, &rs);
          if (fissioned && rs.fissioned && !rs.parallel_loops.empty()) {
            generated = std::move(fissioned);
            scop_iterators.clear();
            iter_subst = poly::IteratorSubstitution{};
            report.parallelized = true;
            report.parallel_loops = rs.parallel_loops.size();
            report.fissioned = true;
            report.fission_groups = rs.groups;
            report.fission_parallel_groups = rs.parallel_groups;
            report.privatized = rs.privatized;
            report.schedule_clause = rs.schedule_clause;
            report.skewed = false;
            report.tiled = false;
          }
        }
      }
    } catch (const ArithmeticOverflow&) {
      // Exact analysis would overflow int64 (gigantic bounds or
      // coefficients). The safe answer is "don't transform".
      report.failure_reason = "analysis overflow (bounds too large)";
      report.failure_loc = loop->loc;
      undo();
      continue;
    }
    if (!generated) {
      report.failure_loc = loop->loc;
      if (!region) {
        report.failure_reason = "codegen could not derive loop bounds";
      } else if (options.parallelize) {
        report.failure_reason =
            "no dependence-free loop in region (stays serial)";
        for (const std::string& note : report.reduction_notes) {
          report.failure_reason += "; " + note;
        }
      } else {
        report.failure_reason =
            "region nest left untouched (no parallelization requested)";
      }
      undo();
      continue;
    }

    // Reinsert the substituted calls inside the generated nest, then map
    // their arguments onto the new iterators (Listing 8: dot(...A[t1]...)).
    for (SubstitutedCall& call : calls) {
      apply_iterator_substitution(call.original, scop_iterators, iter_subst);
    }
    reinsert_pure_calls(*generated, calls);

    // Swap the generated nest into the function body.
    FunctionDecl* fn = tu.find_function(candidate.function->name);
    StmtPtr* slot = fn != nullptr && fn->body
                        ? find_stmt_slot(*fn->body, candidate.loop)
                        : nullptr;
    if (slot == nullptr) {
      report.failure_reason = "could not locate loop in function body";
      report.failure_loc = loop->loc;
      report.parallelized = false;
      report.tiled = false;
      undo();
      continue;
    }
    *slot = std::move(generated);
    report.transformed = true;
    if (options.instrument) {
      // Wrap the transformed nest in a timing envelope and plant the
      // per-worker chunk tally in every parallel loop body. The region's
      // counter struct + registrar are emitted into the prelude below.
      // The index doubles as the region's stable id: it is stamped into
      // the report entry AND emitted into the region struct, so trace
      // events join back to compiler decisions by args.region_id.
      report.region_id =
          static_cast<std::int64_t>(artifacts.instrumented_regions.size());
      instrument_region(*slot,
                        artifacts.instrumented_regions.size());
      artifacts.instrumented_regions.push_back(
          report.function + ":" + std::to_string(report.line));
    }
    artifacts.scops.push_back(report);
  }

  artifacts.transformed = print_c(tu, PrintOptions{PureHandling::Keep, 2});

  // Extension: mark allocation-free verified pure functions for GCC's
  // __attribute__((pure)) in the lowered output. (malloc/calloc/free
  // users are excluded — the attribute's contract forbids observable
  // state changes.)
  if (options.emit_gcc_attributes) {
    for (FunctionDecl* fn : tu.functions()) {
      if (!fn->is_pure || purity.pure_functions.count(fn->name) == 0) {
        continue;
      }
      bool allocates = false;
      if (fn->body) {
        for_each_call(*fn->body, [&](const CallExpr& call) {
          const std::string callee = call.callee_name();
          if (callee == "malloc" || callee == "calloc" || callee == "free") {
            allocates = true;
          }
        });
      }
      fn->annotate_gcc_pure = !allocates;
    }
  }

  // Memoization rewrite: route every call to a memoizable pure function
  // (inside generated nests and plain code alike) through its thunk. The
  // thunks themselves are emitted as text around the lowered program.
  std::set<std::string> memo_used;
  if (options.memoize && !artifacts.memoization.memoizable.empty()) {
    for (FunctionDecl* fn : tu.functions()) {
      if (!fn->body) continue;
      for_each_expr_slot(*fn->body, [&](ExprPtr& slot) -> bool {
        auto* call = expr_cast<CallExpr>(slot.get());
        if (call == nullptr) return false;
        const std::string name = call->callee_name();
        if (artifacts.memoization.memoizable.count(name) == 0) {
          return false;
        }
        expr_cast<IdentExpr>(call->callee.get())->name =
            memo_thunk_name(name);
        memo_used.insert(name);
        ++artifacts.memoized_calls;
        return false;  // descend: arguments may hold memoizable calls too
      });
    }
  }

  // ---- PC-PosPro: lower pure, restore system includes ---------------------
  const std::string lowered =
      print_c(tu, PrintOptions{PureHandling::Lower, 2});
  std::vector<std::string> extra;
  const auto add_include = [&extra](const char* include) {
    if (std::find(extra.begin(), extra.end(), include) == extra.end()) {
      extra.push_back(include);
    }
  };
  bool uses_omp = false;
  for (const ScopReport& r : artifacts.scops) {
    if (r.parallelized) uses_omp = true;
  }
  if (uses_omp) extra.push_back("#include <omp.h>");

  const bool instrumented = !artifacts.instrumented_regions.empty();
  std::string prelude = poly::codegen_prelude();
  std::string epilogue;
  if (!memo_used.empty() || instrumented) {
    // Both exit-time dumps (memo counters, instrument summaries) resolve
    // their destination through one purec_stats_out(), emitted first so
    // either runtime can reference it.
    prelude += stats_sink_snippet();
  }
  if (!memo_used.empty()) {
    // Table + prototypes before the program (call sites reference the
    // thunks), definitions after it (they reference the wrapped functions
    // and the snapshot globals). stdio feeds the PUREC_MEMO_STATS atexit
    // dump.
    add_include("#include <stdlib.h>");
    add_include("#include <stdio.h>");
    if (options.memoize_verify) {
      // Flips the compiled-in default inside the prelude; the
      // PUREC_MEMO_VERIFY env knob still overrides either way.
      prelude += "#define PUREC_MEMO_VERIFY_DEFAULT 1\n";
    }
    prelude += memo_runtime_prelude();
    for (const std::string& name : memo_used) {
      prelude +=
          memo_thunk_prototype(artifacts.memoization.functions.at(name));
    }
    for (const std::string& name : memo_used) {
      epilogue += "\n" + memo_thunk_definition(
                             artifacts.memoization.functions.at(name));
    }
  }
  if (instrumented) {
    // Counter runtime + one region struct per instrumented nest; the
    // wrapped nests in `lowered` reference these by name.
    add_include("#include <stdlib.h>");
    add_include("#include <stdio.h>");
    add_include("#include <time.h>");
    prelude += instrument_runtime_snippet();
    for (std::size_t i = 0; i < artifacts.instrumented_regions.size();
         ++i) {
      prelude += instrument_region_definition(
          i, artifacts.instrumented_regions[i]);
    }
  }
  artifacts.final_source = restore_system_includes(
      prelude + lowered + epilogue, stripped.system_includes, extra);
  artifacts.ok = !diags.has_errors();
  return artifacts;
}

}  // namespace purec

#include "transform/pure_chain.h"

#include <functional>

#include "ast/walk.h"
#include "emit/c_printer.h"
#include "lexer/lexer.h"
#include "memo/memo_codegen.h"
#include "parser/parser.h"
#include "polyhedral/dependence.h"
#include "polyhedral/model.h"
#include "polyhedral/schedule.h"
#include "preproc/include_stripper.h"
#include "preproc/mini_cpp.h"
#include "sema/symbols.h"
#include "support/rational.h"
#include "transform/call_substitution.h"
#include "transform/pure_inliner.h"

namespace purec {

namespace {

/// Finds the owning slot of `target` anywhere under `root` (compound
/// children, if branches, loop bodies). Returns nullptr if absent.
StmtPtr* find_stmt_slot(CompoundStmt& root, const Stmt* target) {
  StmtPtr* found = nullptr;
  std::function<void(StmtPtr&)> visit = [&](StmtPtr& slot) {
    if (found != nullptr || !slot) return;
    if (slot.get() == target) {
      found = &slot;
      return;
    }
    switch (slot->kind()) {
      case StmtKind::Compound:
        for (StmtPtr& child : static_cast<CompoundStmt&>(*slot).stmts) {
          visit(child);
        }
        return;
      case StmtKind::If: {
        auto& n = static_cast<IfStmt&>(*slot);
        visit(n.then_stmt);
        if (n.else_stmt) visit(n.else_stmt);
        return;
      }
      case StmtKind::For: {
        auto& n = static_cast<ForStmt&>(*slot);
        if (n.body) visit(n.body);
        return;
      }
      case StmtKind::While:
        visit(static_cast<WhileStmt&>(*slot).body);
        return;
      case StmtKind::DoWhile:
        visit(static_cast<DoWhileStmt&>(*slot).body);
        return;
      default:
        return;
    }
  };
  for (StmtPtr& child : root.stmts) visit(child);
  return found;
}

/// Finds the compound statement that directly owns `target`.
CompoundStmt* find_owning_compound(Stmt& s, const Stmt* target) {
  if (auto* block = stmt_cast<CompoundStmt>(&s)) {
    for (StmtPtr& child : block->stmts) {
      if (child.get() == target) return block;
    }
    for (StmtPtr& child : block->stmts) {
      if (CompoundStmt* hit = find_owning_compound(*child, target)) {
        return hit;
      }
    }
    return nullptr;
  }
  switch (s.kind()) {
    case StmtKind::If: {
      auto& n = static_cast<IfStmt&>(s);
      if (CompoundStmt* hit = find_owning_compound(*n.then_stmt, target)) {
        return hit;
      }
      return n.else_stmt ? find_owning_compound(*n.else_stmt, target)
                         : nullptr;
    }
    case StmtKind::For: {
      auto& n = static_cast<ForStmt&>(s);
      return n.body ? find_owning_compound(*n.body, target) : nullptr;
    }
    case StmtKind::While:
      return find_owning_compound(*static_cast<WhileStmt&>(s).body, target);
    case StmtKind::DoWhile:
      return find_owning_compound(*static_cast<DoWhileStmt&>(s).body, target);
    default:
      return nullptr;
  }
}

/// Inserts `#pragma scop` / `#pragma endscop` around each candidate loop.
void mark_scops(TranslationUnit& tu,
                const std::vector<ScopCandidate>& candidates) {
  for (const ScopCandidate& candidate : candidates) {
    FunctionDecl* fn = tu.find_function(candidate.function->name);
    if (fn == nullptr || !fn->body) continue;
    CompoundStmt* block = find_owning_compound(*fn->body, candidate.loop);
    if (block == nullptr) continue;
    for (std::size_t i = 0; i < block->stmts.size(); ++i) {
      if (block->stmts[i].get() != candidate.loop) continue;
      block->stmts.insert(block->stmts.begin() + i + 1,
                          std::make_unique<PragmaStmt>("#pragma endscop"));
      block->stmts.insert(block->stmts.begin() + i,
                          std::make_unique<PragmaStmt>("#pragma scop"));
      break;
    }
  }
}

/// Removes the scop marker pragmas again (the polyhedral step consumes
/// candidates directly; the markers are the PC-CC artifact).
void scrub_scop_markers(Stmt& s) {
  if (auto* block = stmt_cast<CompoundStmt>(&s)) {
    for (auto it = block->stmts.begin(); it != block->stmts.end();) {
      const auto* pragma = stmt_cast<PragmaStmt>(it->get());
      if (pragma != nullptr && (pragma->text == "#pragma scop" ||
                                pragma->text == "#pragma endscop")) {
        it = block->stmts.erase(it);
      } else {
        scrub_scop_markers(**it);
        ++it;
      }
    }
    return;
  }
  switch (s.kind()) {
    case StmtKind::If: {
      auto& n = static_cast<IfStmt&>(s);
      scrub_scop_markers(*n.then_stmt);
      if (n.else_stmt) scrub_scop_markers(*n.else_stmt);
      return;
    }
    case StmtKind::For: {
      auto& n = static_cast<ForStmt&>(s);
      if (n.body) scrub_scop_markers(*n.body);
      return;
    }
    case StmtKind::While:
      scrub_scop_markers(*static_cast<WhileStmt&>(s).body);
      return;
    case StmtKind::DoWhile:
      scrub_scop_markers(*static_cast<DoWhileStmt&>(s).body);
      return;
    default:
      return;
  }
}

void unmark_scops(TranslationUnit& tu) {
  for (FunctionDecl* fn : tu.functions()) {
    if (fn->body) scrub_scop_markers(*fn->body);
  }
}

}  // namespace

ChainArtifacts run_pure_chain(const std::string& source,
                              const ChainOptions& options) {
  ChainArtifacts artifacts;
  DiagnosticEngine& diags = artifacts.diagnostics;

  // ---- PC-PrePro ----------------------------------------------------------
  StrippedSource stripped = strip_system_includes(source);
  artifacts.stripped = stripped.text;

  // ---- GCC-E (mini) -------------------------------------------------------
  MiniPreprocessor cpp(diags);
  for (const auto& [name, content] : options.virtual_includes) {
    cpp.add_include_file(name, content);
  }
  for (const auto& [name, value] : options.defines) {
    cpp.define(name, value);
  }
  artifacts.preprocessed = cpp.preprocess(stripped.text);
  if (diags.has_errors()) return artifacts;

  // ---- PC-CC: parse + purity verification + scop detection ----------------
  SourceBuffer buffer =
      SourceBuffer::from_string(artifacts.preprocessed, "<chain>");
  TranslationUnit tu = parse(buffer, diags);
  if (diags.has_errors()) return artifacts;

  // Extension pre-pass (§3.3 future work): inline expression-bodied pure
  // functions before verification + scop detection. A scratch purity run
  // supplies the hashset; the authoritative run happens below on the
  // (possibly) rewritten AST.
  if (options.inline_pure_expressions) {
    DiagnosticEngine scratch;
    const SymbolTable scratch_symbols = SymbolTable::build(tu, scratch);
    PurityOptions scratch_options = options.purity;
    scratch_options.listing5_violation_is_error = false;
    if (options.infer_purity) {
      // Inferred-pure functions are inlining candidates too.
      const InferenceResult pre_inline =
          infer_purity(tu, scratch_symbols, options.purity);
      scratch_options.assume_pure = pre_inline.inferred_pure;
    }
    PurityChecker scratch_checker(tu, scratch_symbols, scratch,
                                  scratch_options);
    const PurityResult scratch_purity = scratch_checker.check();
    artifacts.inlined_calls =
        inline_pure_expression_functions(tu, scratch_purity.pure_functions);
  }

  const SymbolTable symbols = SymbolTable::build(tu, diags);
  PurityOptions purity_options = options.purity;
  if (options.infer_purity) {
    // Interprocedural inference over the (possibly inlined) AST seeds the
    // checker: unannotated-but-provably-pure functions join the hashset,
    // and their transitive global reads feed the Listing-5 rule.
    artifacts.inference = infer_purity(tu, symbols, options.purity);
    purity_options.assume_pure = artifacts.inference.inferred_pure;
    purity_options.assumed_global_reads =
        artifacts.inference.inferred_global_reads();
  }
  PurityChecker checker(tu, symbols, diags, purity_options);
  const PurityResult purity = checker.check();
  if (diags.has_errors()) return artifacts;

  // Memoizability classification runs on the pre-transformation AST: it
  // re-derives effect summaries through `symbols`, whose resolutions are
  // keyed on the original nodes. The call-site rewrite happens after the
  // polyhedral step so reinserted calls inside generated nests are
  // rewritten too.
  if (options.memoize) {
    artifacts.memoization = classify_memoizable(
        tu, symbols, purity.pure_functions, purity_options);
  }

  mark_scops(tu, purity.scop_loops);
  artifacts.marked = print_c(tu, PrintOptions{PureHandling::Keep, 2});
  unmark_scops(tu);

  // ---- polycc: substitution + polyhedral transformation -------------------
  std::size_t placeholder_counter = 0;
  std::vector<std::vector<SubstitutedCall>> all_substitutions;
  for (const ScopCandidate& candidate : purity.scop_loops) {
    auto* loop = const_cast<ForStmt*>(candidate.loop);
    all_substitutions.push_back(substitute_pure_calls(
        *loop, purity.pure_functions, placeholder_counter));
  }
  artifacts.substituted = print_c(tu, PrintOptions{PureHandling::Keep, 2});

  for (std::size_t idx = 0; idx < purity.scop_loops.size(); ++idx) {
    const ScopCandidate& candidate = purity.scop_loops[idx];
    std::vector<SubstitutedCall>& calls = all_substitutions[idx];
    auto* loop = const_cast<ForStmt*>(candidate.loop);

    ScopReport report;
    report.function = candidate.function->name;
    report.line = candidate.loop->loc.line;
    report.contains_calls = candidate.contains_calls;
    report.substituted_calls = calls.size();
    for (const SubstitutedCall& call : calls) {
      if (artifacts.inference.inferred_pure.count(call.callee) != 0) {
        ++report.inferred_calls;
      }
    }

    const auto undo = [&] {
      reinsert_pure_calls(*loop, calls);
      artifacts.scops.push_back(report);
    };

    poly::IteratorSubstitution iter_subst;
    StmtPtr generated;
    std::vector<std::string> scop_iterators;
    try {
      poly::ExtractionResult extraction = poly::extract_scop(*loop);
      if (!extraction.ok()) {
        report.failure_reason = extraction.failure_reason;
        undo();
        continue;
      }
      const poly::Scop& scop = *extraction.scop;
      scop_iterators = scop.iterators;
      report.extracted = true;
      report.depth = scop.depth();

      const std::vector<poly::Dependence> deps =
          poly::analyze_dependences(scop);
      report.dependences = deps.size();

      const poly::Transform transform = poly::compute_schedule(scop, deps);
      report.skewed = !transform.is_identity();

      poly::CodegenOptions cg;
      cg.parallelize = options.parallelize;
      cg.tile = options.tile;
      cg.tile_size = options.tile_size;
      cg.simd = (options.mode == TransformMode::PlutoSica);
      cg.schedule = options.schedule;

      generated = poly::generate_code(scop, transform, cg, &iter_subst);
      if (generated) {
        report.parallelized =
            options.parallelize && transform.any_parallel();
        report.tiled = options.tile && transform.band_size >= 2 &&
                       options.tile_size > 1;
      }
    } catch (const ArithmeticOverflow&) {
      // Exact analysis would overflow int64 (gigantic bounds or
      // coefficients). The safe answer is "don't transform".
      report.failure_reason = "analysis overflow (bounds too large)";
      undo();
      continue;
    }
    if (!generated) {
      report.failure_reason = "codegen could not derive loop bounds";
      undo();
      continue;
    }

    // Reinsert the substituted calls inside the generated nest, then map
    // their arguments onto the new iterators (Listing 8: dot(...A[t1]...)).
    for (SubstitutedCall& call : calls) {
      apply_iterator_substitution(call.original, scop_iterators, iter_subst);
    }
    reinsert_pure_calls(*generated, calls);

    // Swap the generated nest into the function body.
    FunctionDecl* fn = tu.find_function(candidate.function->name);
    StmtPtr* slot = fn != nullptr && fn->body
                        ? find_stmt_slot(*fn->body, candidate.loop)
                        : nullptr;
    if (slot == nullptr) {
      report.failure_reason = "could not locate loop in function body";
      report.parallelized = false;
      report.tiled = false;
      undo();
      continue;
    }
    *slot = std::move(generated);
    report.transformed = true;
    artifacts.scops.push_back(report);
  }

  artifacts.transformed = print_c(tu, PrintOptions{PureHandling::Keep, 2});

  // Extension: mark allocation-free verified pure functions for GCC's
  // __attribute__((pure)) in the lowered output. (malloc/calloc/free
  // users are excluded — the attribute's contract forbids observable
  // state changes.)
  if (options.emit_gcc_attributes) {
    for (FunctionDecl* fn : tu.functions()) {
      if (!fn->is_pure || purity.pure_functions.count(fn->name) == 0) {
        continue;
      }
      bool allocates = false;
      if (fn->body) {
        for_each_call(*fn->body, [&](const CallExpr& call) {
          const std::string callee = call.callee_name();
          if (callee == "malloc" || callee == "calloc" || callee == "free") {
            allocates = true;
          }
        });
      }
      fn->annotate_gcc_pure = !allocates;
    }
  }

  // Memoization rewrite: route every call to a memoizable pure function
  // (inside generated nests and plain code alike) through its thunk. The
  // thunks themselves are emitted as text around the lowered program.
  std::set<std::string> memo_used;
  if (options.memoize && !artifacts.memoization.memoizable.empty()) {
    for (FunctionDecl* fn : tu.functions()) {
      if (!fn->body) continue;
      for_each_expr_slot(*fn->body, [&](ExprPtr& slot) -> bool {
        auto* call = expr_cast<CallExpr>(slot.get());
        if (call == nullptr) return false;
        const std::string name = call->callee_name();
        if (artifacts.memoization.memoizable.count(name) == 0) {
          return false;
        }
        expr_cast<IdentExpr>(call->callee.get())->name =
            memo_thunk_name(name);
        memo_used.insert(name);
        ++artifacts.memoized_calls;
        return false;  // descend: arguments may hold memoizable calls too
      });
    }
  }

  // ---- PC-PosPro: lower pure, restore system includes ---------------------
  const std::string lowered =
      print_c(tu, PrintOptions{PureHandling::Lower, 2});
  std::vector<std::string> extra;
  bool uses_omp = false;
  for (const ScopReport& r : artifacts.scops) {
    if (r.parallelized) uses_omp = true;
  }
  if (uses_omp) extra.push_back("#include <omp.h>");

  std::string prelude = poly::codegen_prelude();
  std::string epilogue;
  if (!memo_used.empty()) {
    // Table + prototypes before the program (call sites reference the
    // thunks), definitions after it (they reference the wrapped functions
    // and the snapshot globals).
    extra.push_back("#include <stdlib.h>");
    prelude += memo_runtime_prelude();
    for (const std::string& name : memo_used) {
      prelude +=
          memo_thunk_prototype(artifacts.memoization.functions.at(name));
    }
    for (const std::string& name : memo_used) {
      epilogue += "\n" + memo_thunk_definition(
                             artifacts.memoization.functions.at(name));
    }
  }
  artifacts.final_source = restore_system_includes(
      prelude + lowered + epilogue, stripped.system_includes, extra);
  artifacts.ok = !diags.has_errors();
  return artifacts;
}

}  // namespace purec

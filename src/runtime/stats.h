// purec::rt::stats — the C++ runtime's twin of the emitted-C --instrument
// counters: region launches and wall time, per-worker chunk claims, steal
// counts, barrier spin/park outcomes, memo cache traffic.
//
// Compile-time default OFF. Every hook below compiles to nothing unless
// the translation units are built with -DPUREC_RT_STATS=1 (the
// runtime_stats test target does exactly that), so the production runtime
// pays zero — not "a predicted branch", zero instructions — on its hot
// paths. When enabled, the counters follow the per-CPU pattern the
// emitted-C side uses: one cache-line-padded cell per counter (per worker
// for the chunk tallies), bumped with relaxed atomic adds.
//
// The storage and dump live in stats.cpp and are always compiled, so
// mixed builds (instrumented test objects linking the plain runtime
// archive) link cleanly either way.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>

#ifndef PUREC_RT_STATS
#define PUREC_RT_STATS 0
#endif

namespace purec::rt::stats {

inline constexpr bool kEnabled = PUREC_RT_STATS != 0;
inline constexpr std::size_t kMaxWorkers = 64;

struct alignas(64) Cell {
  std::atomic<std::uint64_t> value{0};
};

/// The global counter block. Members mirror the emitted-C instrument
/// runtime plus the pool/memo internals the C side cannot see.
struct Counters {
  Cell regions;        ///< for_each_chunk launches
  Cell region_ns;      ///< wall time inside launches (ns)
  Cell barrier_spins;  ///< wait_for_change resolved inside the spin window
  Cell barrier_parks;  ///< wait_for_change entered the kernel
  Cell steals;         ///< chunks claimed from another worker's range
  Cell memo_hits;
  Cell memo_misses;
  Cell memo_stores;
  Cell memo_evictions;
  Cell chunks[kMaxWorkers];  ///< chunk claims per worker index
};

[[nodiscard]] Counters& counters() noexcept;

inline void add(Cell& cell, std::uint64_t n = 1) noexcept {
  if constexpr (kEnabled) {
    cell.value.fetch_add(n, std::memory_order_relaxed);
  } else {
    (void)cell;
    (void)n;
  }
}

inline void note_chunk(std::size_t worker) noexcept {
  if constexpr (kEnabled) {
    add(counters().chunks[worker & (kMaxWorkers - 1)]);
  } else {
    (void)worker;
  }
}

/// Monotonic nanoseconds; 0 when stats are compiled out (callers guard
/// with kEnabled so the clock read itself vanishes too).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Writes the human summary (purec-rt[...] lines) to `out`; `out` ==
/// nullptr resolves the shared stats stream: PUREC_STATS_FILE in
/// append mode, else stderr — the same contract as the emitted C's
/// purec_stats_out().
void dump(std::FILE* out = nullptr);

/// Zeroes every counter (test isolation).
void reset() noexcept;

}  // namespace purec::rt::stats

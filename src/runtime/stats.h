// purec::rt::stats — the C++ runtime's twin of the emitted-C --instrument
// counters: region launches and wall time, per-worker chunk claims, steal
// counts, barrier spin/park outcomes, memo cache traffic, plus
// log-bucketed latency histograms (region wall time, memo probe latency)
// whose p50/p90/p99 land in the human dump.
//
// Compile-time default OFF. Every hook below compiles to nothing unless
// the translation units are built with -DPUREC_RT_STATS=1 (the
// runtime_stats test target does exactly that), so the production runtime
// pays zero — not "a predicted branch", zero instructions — on its hot
// paths. When enabled, the counters follow the per-CPU pattern the
// emitted-C side uses: one cache-line-padded cell per counter (per worker
// for the chunk tallies), bumped with relaxed atomic adds.
//
// The storage and dump live in stats.cpp and are always compiled, so
// mixed builds (instrumented test objects linking the plain runtime
// archive) link cleanly either way.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>

#ifndef PUREC_RT_STATS
#define PUREC_RT_STATS 0
#endif

namespace purec::rt::stats {

inline constexpr bool kEnabled = PUREC_RT_STATS != 0;
inline constexpr std::size_t kMaxWorkers = 64;

struct alignas(64) Cell {
  std::atomic<std::uint64_t> value{0};
};

// ---------------------------------------------------------------------------
// Log-bucketed latency histogram (HdrHistogram-style): values below
// 2^kHistSubBits are recorded exactly; above that, each power-of-two range
// splits into 2^kHistSubBits linear sub-buckets, so relative error is
// bounded at 1/2^kHistSubBits across the whole 64-bit domain. The cell
// arrays are fixed-size and per-worker (relaxed adds on a worker's own
// row — the per-CPU counter pattern), merged only at dump time.
// ---------------------------------------------------------------------------

inline constexpr int kHistSubBits = 3;
inline constexpr int kHistSub = 1 << kHistSubBits;
inline constexpr int kHistCells = (64 - kHistSubBits + 1) * kHistSub;

/// Cell index for a recorded value. Small values map to themselves; the
/// rest map to (exponent, sub-bucket) pairs in increasing value order.
[[nodiscard]] constexpr std::size_t hist_index(std::uint64_t v) noexcept {
  if (v < static_cast<std::uint64_t>(kHistSub)) {
    return static_cast<std::size_t>(v);
  }
  const int msb = 63 - __builtin_clzll(v);
  const int shift = msb - kHistSubBits;
  return static_cast<std::size_t>(
      ((shift + 1) << kHistSubBits) |
      static_cast<int>((v >> shift) & (kHistSub - 1)));
}

/// Smallest value that lands in cell `index`.
[[nodiscard]] constexpr std::uint64_t
hist_cell_lower(std::size_t index) noexcept {
  if (index < static_cast<std::size_t>(kHistSub)) return index;
  const int shift = static_cast<int>(index >> kHistSubBits) - 1;
  const std::uint64_t base = kHistSub + (index & (kHistSub - 1));
  return base << shift;
}

/// Largest value that lands in cell `index` (percentiles report this
/// bound, so exact-width cells report the exact recorded value).
[[nodiscard]] constexpr std::uint64_t
hist_cell_upper(std::size_t index) noexcept {
  if (index < static_cast<std::size_t>(kHistSub)) return index;
  const int shift = static_cast<int>(index >> kHistSubBits) - 1;
  return hist_cell_lower(index) + ((std::uint64_t{1} << shift) - 1);
}

/// One worker's histogram row. A row is only ever bumped by the worker
/// that owns it (relaxed), and rows start on their own cache line.
struct alignas(64) HistRow {
  std::atomic<std::uint64_t> cells[kHistCells];
};

/// A merged (cross-worker) view of one histogram, for percentile math.
struct HistSnapshot {
  std::uint64_t cells[kHistCells] = {};
  std::uint64_t count = 0;
};

/// Value at the given integer percentile (1..100): the upper bound of the
/// first cell whose cumulative count reaches ceil(percent/100 * count).
/// 0 when the histogram is empty.
[[nodiscard]] std::uint64_t hist_percentile(const HistSnapshot& snapshot,
                                            unsigned percent) noexcept;

/// The global counter block. Members mirror the emitted-C instrument
/// runtime plus the pool/memo internals the C side cannot see.
struct Counters {
  Cell regions;        ///< for_each_chunk launches
  Cell region_ns;      ///< wall time inside launches (ns)
  Cell barrier_spins;  ///< wait_for_change resolved inside the spin window
  Cell barrier_parks;  ///< wait_for_change entered the kernel
  Cell steals;         ///< chunks claimed from another worker's range
  Cell memo_hits;
  Cell memo_misses;
  Cell memo_stores;
  Cell memo_evictions;
  Cell chunks[kMaxWorkers];        ///< chunk claims per worker index
  HistRow region_hist[kMaxWorkers];  ///< region wall time (ns)
  HistRow memo_hist[kMaxWorkers];    ///< memo probe latency (ns)
};

[[nodiscard]] Counters& counters() noexcept;

/// The calling thread's worker index (set by the runtime while it runs
/// chunks; 0 on threads the pool never touched). Lets subsystems without
/// a worker parameter (memo probes, barrier waits) attribute their
/// per-worker cells. Plain TLS — call sites gate on kEnabled (or the
/// trace twin's gate) so production builds never touch it.
[[nodiscard]] std::size_t current_worker() noexcept;
void set_current_worker(std::size_t worker) noexcept;

inline void add(Cell& cell, std::uint64_t n = 1) noexcept {
  if constexpr (kEnabled) {
    cell.value.fetch_add(n, std::memory_order_relaxed);
  } else {
    (void)cell;
    (void)n;
  }
}

inline void note_chunk(std::size_t worker) noexcept {
  if constexpr (kEnabled) {
    add(counters().chunks[worker & (kMaxWorkers - 1)]);
  } else {
    (void)worker;
  }
}

inline void record_hist(HistRow* rows, std::size_t worker,
                        std::uint64_t value) noexcept {
  if constexpr (kEnabled) {
    rows[worker & (kMaxWorkers - 1)].cells[hist_index(value)].fetch_add(
        1, std::memory_order_relaxed);
  } else {
    (void)rows;
    (void)worker;
    (void)value;
  }
}

/// Region wall time, recorded into the calling worker's row.
inline void record_region_ns(std::uint64_t ns) noexcept {
  if constexpr (kEnabled) {
    record_hist(counters().region_hist, current_worker(), ns);
  } else {
    (void)ns;
  }
}

/// Memo probe (lookup) latency, recorded into the calling worker's row.
inline void record_memo_probe_ns(std::uint64_t ns) noexcept {
  if constexpr (kEnabled) {
    record_hist(counters().memo_hist, current_worker(), ns);
  } else {
    (void)ns;
  }
}

/// Merges the per-worker rows of one histogram (dump-time only).
[[nodiscard]] HistSnapshot snapshot_hist(const HistRow* rows) noexcept;
[[nodiscard]] inline HistSnapshot snapshot_region_hist() noexcept {
  return snapshot_hist(counters().region_hist);
}
[[nodiscard]] inline HistSnapshot snapshot_memo_hist() noexcept {
  return snapshot_hist(counters().memo_hist);
}

/// Monotonic nanoseconds; 0 when stats are compiled out (callers guard
/// with kEnabled so the clock read itself vanishes too).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Writes the human summary (purec-rt[...] lines) to `out`; `out` ==
/// nullptr resolves the shared stats stream: PUREC_STATS_FILE in
/// append mode, else stderr — the same contract as the emitted C's
/// purec_stats_out().
void dump(std::FILE* out = nullptr);

/// Zeroes every counter (test isolation).
void reset() noexcept;

}  // namespace purec::rt::stats

// A persistent worker pool — the execution substrate standing in for the
// OpenMP runtime in the paper's measurements. Threads are created once and
// parked between parallel regions so that per-region overhead stays
// comparable to a warm OpenMP pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace purec::rt {

class ThreadPool {
 public:
  /// Creates `worker_count` workers (>= 1). Workers above the hardware
  /// concurrency are allowed (the paper's 64-core sweeps oversubscribe
  /// this machine; see EXPERIMENTS.md).
  explicit ThreadPool(std::size_t worker_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size() + 1;  // workers + the calling thread
  }

  /// Runs `task(worker_index)` on every worker AND the calling thread
  /// (index 0), returning when all are done. Exceptions thrown by tasks
  /// terminate (tasks are expected to be noexcept compute kernels).
  void run_on_all(const std::function<void(std::size_t)>& task);

 private:
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t generation_ = 0;
  std::size_t remaining_ = 0;
  bool shutdown_ = false;
};

}  // namespace purec::rt

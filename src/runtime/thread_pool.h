// A persistent worker pool — the execution substrate standing in for the
// OpenMP runtime in the paper's measurements. Threads are created once and
// parked between parallel regions so that per-region overhead stays
// comparable to a warm OpenMP pool.
//
// Region launch is a generation-counter (sense-reversing) barrier with a
// spin-then-park wait on both edges: workers spin a bounded number of
// iterations on the generation word before sleeping in the kernel (futex
// on Linux, condvar elsewhere), and the caller does the same on the
// completion word. Hot back-to-back regions never enter the kernel; idle
// pools consume no CPU. Dispatch is a two-word FunctionRef, so launching
// a region never allocates, and every cross-thread counter sits on its
// own cache line.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/function_ref.h"

namespace purec::rt {

/// Destructive interference guard for the pool/loop counters. (The C++17
/// `std::hardware_destructive_interference_size` is deliberately avoided:
/// gcc warns that its value is ABI-unstable across -mtune settings.)
inline constexpr std::size_t kCacheLineBytes = 64;

class ThreadPool {
 public:
  /// Creates a pool presenting `worker_count` (>= 1) workers. Worker
  /// counts above the hardware concurrency are allowed (the paper's
  /// 64-core sweeps oversubscribe this machine; see EXPERIMENTS.md) but
  /// are virtualized by default: OS threads are capped at the hardware
  /// concurrency and surplus worker *indices* are folded round-robin onto
  /// them, so an oversubscribed region launch costs function calls, not
  /// futile context switches. Set PUREC_OVERSUBSCRIBE=1 to force one OS
  /// thread per worker (true oversubscription, for scheduling-overhead
  /// studies); such pools shorten the spin window so parked siblings
  /// yield the core quickly.
  explicit ThreadPool(std::size_t worker_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The number of worker indices run_on_all dispatches (NOT necessarily
  /// the number of OS threads — see the constructor).
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return virtual_workers_;
  }

  /// OS threads actually carrying the indices (the calling thread
  /// included). Equal to worker_count() unless the pool is virtualizing
  /// an oversubscribed request.
  [[nodiscard]] std::size_t os_thread_count() const noexcept {
    return workers_.size() + 1;
  }

  /// Runs `task(worker_index)` once for every index in
  /// [0, worker_count()), distributed over the pool's OS threads; the
  /// calling thread participates (it always runs index 0) and the call
  /// returns when all indices are done. Indices sharing an OS thread run
  /// sequentially, so tasks must not synchronize *between* worker indices
  /// (pure data-parallel chunks — the only thing the runtime emits —
  /// never do). Exceptions thrown by tasks terminate (tasks are expected
  /// to be noexcept compute kernels). The referenced callable must stay
  /// alive for the duration of the call — trivially true for the usual
  /// `pool.run_on_all([&](...){...})` shape.
  void run_on_all(FunctionRef<void(std::size_t)> task);

 private:
  /// A 32-bit futex word on its own cache line. 32 bits because Linux
  /// futexes operate on exactly 4 bytes; generation wraparound at 2^32 is
  /// harmless (equality against the last-seen value is all that matters).
  /// `parked` counts threads sleeping in the kernel on `word`, letting
  /// wakers skip the futex syscall entirely when every waiter is still in
  /// its spin window (the hot back-to-back-regions case).
  struct alignas(kCacheLineBytes) Signal {
    std::atomic<std::uint32_t> word{0};
    std::atomic<std::uint32_t> parked{0};
  };

  struct alignas(kCacheLineBytes) Counter {
    std::atomic<std::size_t> value{0};
  };

  void worker_loop(std::size_t index, std::size_t stride);

  /// Blocks until `signal.word != last_seen`: bounded spin, then park.
  /// The thin wrapper adds trace timing when tracing is compiled in; the
  /// impl returns whether the wait entered the kernel.
  void wait_for_change(Signal& signal, std::uint32_t last_seen);
  bool wait_for_change_impl(Signal& signal, std::uint32_t last_seen);
  /// Wakes every thread parked in wait_for_change on `signal`.
  void wake_all(Signal& signal);

  std::vector<std::thread> workers_;
  std::size_t virtual_workers_ = 1;  // indices presented to callers
  std::size_t spin_limit_ = 0;       // set once in the constructor

  Signal start_;      // bumped to publish a region to workers
  Signal done_;       // bumped by the last worker to finish
  Counter remaining_; // workers still running the current region

  // Written only between regions (before the start_ bump that publishes
  // them), so workers read them race-free.
  FunctionRef<void(std::size_t)> task_;
  bool shutdown_ = false;

  // Parking fallback for non-futex platforms; also used by wake_all to
  // order wakes against sleepers. Never touched on the spin fast path.
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
};

}  // namespace purec::rt

#include "runtime/thread_pool.h"

#include <cstdlib>

#include "runtime/stats.h"
#include "runtime/trace.h"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <climits>
#endif

namespace purec::rt {

namespace {

/// One spin-loop breath: keep the core's pipeline polite while polling.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

#if defined(__linux__)
inline void futex_wait(std::atomic<std::uint32_t>& word,
                       std::uint32_t expected) noexcept {
  // The kernel re-checks `word == expected` atomically with enqueueing,
  // so a bump that lands between our user-space check and this call makes
  // it return immediately — missed wakeups are structurally impossible.
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
          FUTEX_WAIT_PRIVATE, expected, nullptr, nullptr, 0);
}

inline void futex_wake_all(std::atomic<std::uint32_t>& word) noexcept {
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
          FUTEX_WAKE_PRIVATE, INT_MAX, nullptr, nullptr, 0);
}
#endif

}  // namespace

namespace {

bool env_flag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] == '1';
}

}  // namespace

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) worker_count = 1;
  virtual_workers_ = worker_count;

  // Oversubscription policy: by default never create more OS threads
  // than the hardware can run — surplus worker indices fold onto the
  // existing threads round-robin (worker_loop), which keeps the ladder's
  // high rungs running at full speed instead of paying a context switch
  // per parked sibling per region. PUREC_OVERSUBSCRIBE=1 restores one OS
  // thread per index for scheduling-overhead studies.
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::size_t os_threads = worker_count;
  if (os_threads > hw && !env_flag("PUREC_OVERSUBSCRIBE")) os_threads = hw;

  // Spin window before parking. With a hardware thread per pool thread,
  // a few thousand pause iterations (~1 µs) cover the gap between
  // back-to-back regions without ever entering the kernel. Forced
  // oversubscription parks almost immediately: spinning there steals
  // cycles from the very sibling that would signal us. PUREC_SPIN=<n>
  // overrides for experiments (see EXPERIMENTS.md).
  spin_limit_ = (os_threads > hw) ? 1 : 4096;
  if (const char* env = std::getenv("PUREC_SPIN")) {
    const long v = std::atol(env);
    if (v >= 0) spin_limit_ = static_cast<std::size_t>(v);
  }

  workers_.reserve(os_threads - 1);
  for (std::size_t i = 1; i < os_threads; ++i) {
    // os_threads is captured by value: workers_ is still growing while
    // the first threads start, so they must not read workers_.size().
    workers_.emplace_back([this, i, os_threads] { worker_loop(i, os_threads); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;
  shutdown_ = true;  // published by the start_ bump below
  start_.word.fetch_add(1, std::memory_order_seq_cst);
  wake_all(start_);
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_on_all(FunctionRef<void(std::size_t)> task) {
  const std::size_t stride = os_thread_count();
  if (workers_.empty()) {
    for (std::size_t v = 0; v < virtual_workers_; ++v) task(v);
    return;
  }
  // Publish the region: plain writes first, then the seq_cst generation
  // bump that makes them visible to any worker observing the new value.
  task_ = task;
  remaining_.value.store(workers_.size(), std::memory_order_relaxed);
  const std::uint32_t done_seen = done_.word.load(std::memory_order_relaxed);
  start_.word.fetch_add(1, std::memory_order_seq_cst);
  wake_all(start_);

  // The calling thread is OS thread 0: index 0 plus every stride-th
  // virtual index folded onto it.
  for (std::size_t v = 0; v < virtual_workers_; v += stride) task(v);
  wait_for_change(done_, done_seen);
}

void ThreadPool::worker_loop(std::size_t index, std::size_t stride) {
  if constexpr (stats::kEnabled || trace::kEnabled) {
    // Barrier waits and other out-of-chunk work on this OS thread are
    // attributed to its primary worker index (the chunk shim refines the
    // attribution per chunk while regions run).
    stats::set_current_worker(index);
  }
  std::uint32_t seen = 0;
  for (;;) {
    wait_for_change(start_, seen);
    // No further bump can happen until this worker checks in on done_,
    // so this read latches exactly the generation that woke us.
    seen = start_.word.load(std::memory_order_acquire);
    if (shutdown_) return;
    for (std::size_t v = index; v < virtual_workers_; v += stride) {
      task_(v);
    }
    if (remaining_.value.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      done_.word.fetch_add(1, std::memory_order_seq_cst);
      wake_all(done_);
    }
  }
}

void ThreadPool::wait_for_change(Signal& signal, std::uint32_t last_seen) {
  if constexpr (trace::kEnabled) {
    if (trace::active()) {
      const std::uint64_t begin_ns = stats::now_ns();
      const bool parked = wait_for_change_impl(signal, last_seen);
      trace::record(stats::current_worker(),
                    parked ? trace::EventKind::BarrierPark
                           : trace::EventKind::BarrierSpin,
                    begin_ns, stats::now_ns());
      return;
    }
  }
  (void)wait_for_change_impl(signal, last_seen);
}

bool ThreadPool::wait_for_change_impl(Signal& signal,
                                      std::uint32_t last_seen) {
  for (std::size_t spin = 0; spin < spin_limit_; ++spin) {
    if (signal.word.load(std::memory_order_acquire) != last_seen) {
      stats::add(stats::counters().barrier_spins);
      return false;
    }
    cpu_relax();
  }
  stats::add(stats::counters().barrier_parks);
#if defined(__linux__)
  for (;;) {
    // Advertise intent to sleep, then re-check: the waker reads `parked`
    // after its bump, so in the seq_cst order either we see the bump here
    // or the waker sees our registration and issues the wake.
    signal.parked.fetch_add(1, std::memory_order_seq_cst);
    if (signal.word.load(std::memory_order_seq_cst) != last_seen) {
      signal.parked.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    futex_wait(signal.word, last_seen);
    signal.parked.fetch_sub(1, std::memory_order_relaxed);
    if (signal.word.load(std::memory_order_acquire) != last_seen) {
      return true;
    }
  }
#else
  std::unique_lock lock(park_mutex_);
  signal.parked.fetch_add(1, std::memory_order_seq_cst);
  park_cv_.wait(lock, [&] {
    // seq_cst to mirror the futex path's post-registration re-check: the
    // waker's skip-the-notify fast path reads `parked` seq_cst, so this
    // load must be in the same total order or a bump could be missed.
    return signal.word.load(std::memory_order_seq_cst) != last_seen;
  });
  signal.parked.fetch_sub(1, std::memory_order_relaxed);
  return true;
#endif
}

void ThreadPool::wake_all(Signal& signal) {
  if (signal.parked.load(std::memory_order_seq_cst) == 0) return;
#if defined(__linux__)
  futex_wake_all(signal.word);
#else
  // Taking the mutex orders this wake after any sleeper that registered
  // but has not yet started waiting on the condition variable.
  { std::lock_guard lock(park_mutex_); }
  park_cv_.notify_all();
#endif
}

}  // namespace purec::rt

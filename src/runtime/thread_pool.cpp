#include "runtime/thread_pool.h"

namespace purec::rt {

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) worker_count = 1;
  workers_.reserve(worker_count - 1);
  for (std::size_t i = 1; i < worker_count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_on_all(const std::function<void(std::size_t)>& task) {
  if (workers_.empty()) {
    task(0);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    task_ = &task;
    remaining_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  task(0);
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  task_ = nullptr;
}

void ThreadPool::worker_loop(std::size_t index) {
  std::size_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* task = nullptr;
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      task = task_;
    }
    (*task)(index);
    {
      std::lock_guard lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace purec::rt

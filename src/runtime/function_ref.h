// A non-owning, non-allocating callable reference (the dispatch currency
// of the runtime). `std::function` heap-allocates for captures beyond the
// SBO and calls through two indirections; a FunctionRef is two words — the
// callee object and a trampoline — so handing a region body to the pool
// never allocates and the per-region cost is one indirect call.
//
// Lifetime contract: a FunctionRef does NOT extend the life of the
// callable it references. It is only safe to use while the referenced
// callable is alive — which is exactly the shape of a fork/join parallel
// region, where the body outlives every worker's use of it.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace purec::rt {

template <class Signature>
class FunctionRef;

template <class R, class... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Null by default so pools can store one before a region is published;
  /// invoking a null FunctionRef is undefined.
  constexpr FunctionRef() noexcept = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::function — call sites pass lambdas directly.
  FunctionRef(F&& callable) noexcept
      : object_(const_cast<void*>(
            static_cast<const void*>(std::addressof(callable)))),
        invoke_([](void* object, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(object))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(object_, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

 private:
  void* object_ = nullptr;
  R (*invoke_)(void*, Args...) = nullptr;
};

}  // namespace purec::rt

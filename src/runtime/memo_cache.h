// Concurrent memoization table for pure-call results — the runtime half of
// the `--memoize` subsystem (the emitted C carries a self-contained twin of
// this design; see memo/memo_codegen.cpp).
//
// Design, sized for the work-stealing schedules of the thread pool:
//   * sharded: the key's high bits pick one of N independent sub-tables,
//     so concurrent hits on different shards never touch the same lines;
//   * cache-line padded: each shard header (and its counters) sits on its
//     own line — a hot shard cannot false-share with its neighbors;
//   * open addressing: a key may only live in a short linear probe window
//     starting at its home slot, so lookups are a handful of loads;
//   * per-slot seqlock: writers claim a slot by CAS-ing its sequence word
//     odd, publish tag+value, then release it even. Readers retry on a
//     torn read. A false *miss* is always safe (the caller recomputes);
//     a hit is only reported when tag and value were read consistently;
//   * bounded size with clock eviction: when a probe window is full, a
//     second-chance sweep (clear reference bits until one is already
//     clear) picks the victim, so repeated keys stay resident under
//     pressure without any global LRU bookkeeping.
//
// Values are 64-bit words; scalar results travel as their bit patterns, so
// a hit returns the exact bits the miss path stored. By default the
// fingerprint IS the key (the original tuple is never stored), so
// correctness rests on the 64-bit mix not colliding: ~2^-25 probability of
// any collision at the default 2^16-slot working set. PUREC_MEMO_VERIFY=1
// makes that bound opt-out: each slot additionally publishes the raw key
// words (argument tuple + global snapshot) under the same seqlock and a
// hit only counts when they compare equal — a fingerprint alias degrades
// to a miss, never a wrong value.
//
// Process-shared persistence: PUREC_MEMO_PATH=FILE maps the slot array
// from an mmap'd file (ftruncate + MAP_SHARED) so a fleet of workers
// warms one cache that survives restarts. The file starts with a 64-byte
// header (magic, version, ABI fingerprint of the slot/verify layout,
// geometry, verify flag, init state) validated under flock on attach; any
// mismatch — wrong magic, different geometry knobs, a verify-mode
// process meeting a plain file, a half-initialized file from a killed
// creator — falls back to the private in-process table. Cross-process
// safety is the same per-slot seqlock: a torn or stale read is a safe
// miss. Stats counters stay per-process (each attacher counts its own
// traffic; sum across processes for fleet totals).
//
// Env knobs (read by MemoConfig::from_env, shared with the emitted C):
//   PUREC_MEMO_SHARDS=<n>  shard count (rounded down to a power of two)
//   PUREC_MEMO_CAP=<n>     total slot budget across all shards
//   PUREC_MEMO_PATH=<file> process-shared persistent backing file
//   PUREC_MEMO_VERIFY=1    full-key verification on hits
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "runtime/thread_pool.h"

namespace purec::rt {

struct MemoConfig {
  std::size_t shards = 8;
  std::size_t capacity = std::size_t{1} << 16;  // total slots, all shards
  std::string path;     // non-empty: mmap the table from this file
  bool verify = false;  // full-key compare on hit

  /// Applies PUREC_MEMO_SHARDS / PUREC_MEMO_CAP / PUREC_MEMO_PATH /
  /// PUREC_MEMO_VERIFY on top of the defaults. Unparsable or zero values
  /// fall back to the default silently (a bad knob must never turn
  /// correct caching into a crash).
  [[nodiscard]] static MemoConfig from_env();
};

struct MemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;
};

/// Incremental key hasher: one 64-bit fingerprint over (function id,
/// argument words, global-snapshot words). The fingerprint *is* the key —
/// by default the table never stores the original tuple — so the mixer
/// must spread every input bit (splitmix64 finalizer). Fingerprint 0 is
/// reserved as the empty-slot tag and remapped to 1. The raw words are
/// recorded alongside (up to kMaxWords) so verify-mode callers can hand
/// the full tuple to MemoCache::lookup/store.
class MemoKey {
 public:
  static constexpr std::size_t kMaxWords = 16;

  explicit MemoKey(std::uint64_t function_id) noexcept : h_(function_id) {}

  void add(std::uint64_t word) noexcept {
    if (nwords_ < kMaxWords) words_[nwords_] = word;
    ++nwords_;  // past kMaxWords the count alone says "too wide to verify"
    h_ = mix(h_ ^ word);
  }
  void add_f64(double v) noexcept;
  void add_f32(float v) noexcept;

  [[nodiscard]] std::uint64_t hash() const noexcept {
    const std::uint64_t h = mix(h_);
    return h == 0 ? 1 : h;
  }

  [[nodiscard]] const std::uint64_t* words() const noexcept {
    return words_;
  }
  [[nodiscard]] std::size_t word_count() const noexcept { return nwords_; }

  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

 private:
  std::uint64_t h_;
  std::uint64_t words_[kMaxWords] = {};
  std::size_t nwords_ = 0;
};

class MemoCache {
 public:
  /// Widest key tuple (in 64-bit words) a verify-mode slot can store.
  /// Covers the classifier's bound: params + kMemoMaxGlobalSnapshot.
  static constexpr std::size_t kVerifyWords = 12;

  explicit MemoCache(MemoConfig config = MemoConfig::from_env());
  ~MemoCache();

  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  /// True and *value filled on a hit. Marks the slot referenced for the
  /// clock sweep. Never blocks; a concurrent writer at the same slot
  /// degrades this to a miss, not a wrong value. `words`/`nwords` carry
  /// the raw key tuple for verify mode (ignored otherwise); under verify
  /// a tuple wider than kVerifyWords bypasses the cache (permanent miss).
  [[nodiscard]] bool lookup(std::uint64_t key, const std::uint64_t* words,
                            std::size_t nwords,
                            std::uint64_t* value) noexcept;
  [[nodiscard]] bool lookup(std::uint64_t key,
                            std::uint64_t* value) noexcept {
    return lookup(key, nullptr, 0, value);
  }

  /// Publishes key -> value. Idempotent for an already-present key (pure
  /// results are deterministic, so the value is necessarily identical) —
  /// except under verify, where a resident fingerprint alias with a
  /// different tuple is overwritten. Evicts within the probe window when
  /// it is full.
  void store(std::uint64_t key, const std::uint64_t* words,
             std::size_t nwords, std::uint64_t value) noexcept;
  void store(std::uint64_t key, std::uint64_t value) noexcept {
    store(key, nullptr, 0, value);
  }

  /// Aggregated over all shards; racy reads (monitoring only). Always
  /// process-local, even when the slots live in a shared mapping.
  [[nodiscard]] MemoStats stats() const noexcept;

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_n_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return shards_n_ * (slot_mask_ + 1);
  }
  /// True when the slots live in a PUREC_MEMO_PATH mapping (false after
  /// any attach failure — the private fallback).
  [[nodiscard]] bool shared() const noexcept { return shared_; }
  [[nodiscard]] bool verifying() const noexcept { return verify_; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // even = stable, odd = mid-write
    std::atomic<std::uint64_t> tag{0};  // 0 = empty
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint64_t> ref{0};  // clock second-chance bit
  };
  static_assert(sizeof(Slot) == 32, "shared-file ABI: 4x u64 per slot");

  // Verify-mode sidecar, parallel to the slot array (so verify-off files
  // keep the bare 32-byte-slot layout): per slot, [word count, words...],
  // published under the owning slot's seqlock.
  static constexpr std::size_t kVerifyStride = 1 + kVerifyWords;

  struct alignas(kCacheLineBytes) Shard {
    Slot* slots = nullptr;
    std::atomic<std::uint64_t>* vwords = nullptr;  // verify mode only
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> stores{0};
    std::atomic<std::uint64_t> evictions{0};
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t key) noexcept {
    return shards_[(key >> 40) & shard_mask_];
  }

  /// The uninstrumented probe; lookup() wraps it with the latency
  /// histogram and trace hooks (which compile to nothing by default).
  [[nodiscard]] bool lookup_impl(std::uint64_t key,
                                 const std::uint64_t* words,
                                 std::size_t nwords,
                                 std::uint64_t* value) noexcept;

  /// mmap `path` under flock, creating + initializing the header when the
  /// file is fresh, validating it otherwise. On success points *slots_out
  /// / *vwords_out into the mapping and returns true; any failure returns
  /// false with nothing mapped (the caller allocates privately).
  [[nodiscard]] bool attach_shared(const std::string& path,
                                   std::size_t shards,
                                   std::size_t per_shard, Slot** slots_out,
                                   std::atomic<std::uint64_t>** vwords_out);

  std::size_t shards_n_ = 1;
  std::uint64_t shard_mask_ = 0;
  std::uint64_t slot_mask_ = 0;   // per-shard slot count - 1
  std::size_t probe_window_ = 1;  // min(kProbeWindow, slots per shard)
  bool verify_ = false;
  bool shared_ = false;
  std::unique_ptr<Shard[]> shards_;
  std::unique_ptr<Slot[]> slot_storage_;  // private mode
  std::unique_ptr<std::atomic<std::uint64_t>[]> verify_storage_;
  void* map_base_ = nullptr;  // shared mode
  std::size_t map_len_ = 0;
  int map_fd_ = -1;

  static constexpr std::size_t kProbeWindow = 8;
};

}  // namespace purec::rt

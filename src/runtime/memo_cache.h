// Concurrent memoization table for pure-call results — the runtime half of
// the `--memoize` subsystem (the emitted C carries a self-contained twin of
// this design; see memo/memo_codegen.cpp).
//
// Design, sized for the work-stealing schedules of the thread pool:
//   * sharded: the key's high bits pick one of N independent sub-tables,
//     so concurrent hits on different shards never touch the same lines;
//   * cache-line padded: each shard header (and its counters) sits on its
//     own line — a hot shard cannot false-share with its neighbors;
//   * open addressing: a key may only live in a short linear probe window
//     starting at its home slot, so lookups are a handful of loads;
//   * per-slot seqlock: writers claim a slot by CAS-ing its sequence word
//     odd, publish tag+value, then release it even. Readers retry on a
//     torn read. A false *miss* is always safe (the caller recomputes);
//     a hit is only reported when tag and value were read consistently;
//   * bounded size with clock eviction: when a probe window is full, a
//     second-chance sweep (clear reference bits until one is already
//     clear) picks the victim, so repeated keys stay resident under
//     pressure without any global LRU bookkeeping.
//
// Values are 64-bit words; scalar results travel as their bit patterns, so
// a hit returns the exact bits the miss path stored. The fingerprint IS
// the key (the original tuple is never stored), so correctness rests on
// the 64-bit mix not colliding: ~2^-25 probability of any collision at
// the default 2^16-slot working set, but a real bound, not zero — see
// ROADMAP for the planned full-key verification mode.
//
// Env knobs (read by MemoConfig::from_env, shared with the emitted C):
//   PUREC_MEMO_SHARDS=<n>  shard count (rounded down to a power of two)
//   PUREC_MEMO_CAP=<n>     total slot budget across all shards
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "runtime/thread_pool.h"

namespace purec::rt {

struct MemoConfig {
  std::size_t shards = 8;
  std::size_t capacity = std::size_t{1} << 16;  // total slots, all shards

  /// Applies PUREC_MEMO_SHARDS / PUREC_MEMO_CAP on top of the defaults.
  /// Unparsable or zero values fall back to the default silently (a bad
  /// knob must never turn correct caching into a crash).
  [[nodiscard]] static MemoConfig from_env();
};

struct MemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;
};

/// Incremental key hasher: one 64-bit fingerprint over (function id,
/// argument words, global-snapshot words). The fingerprint *is* the key —
/// the table never stores the original tuple — so the mixer must spread
/// every input bit (splitmix64 finalizer). Fingerprint 0 is reserved as
/// the empty-slot tag and remapped to 1.
class MemoKey {
 public:
  explicit MemoKey(std::uint64_t function_id) noexcept : h_(function_id) {}

  void add(std::uint64_t word) noexcept { h_ = mix(h_ ^ word); }
  void add_f64(double v) noexcept;
  void add_f32(float v) noexcept;

  [[nodiscard]] std::uint64_t hash() const noexcept {
    const std::uint64_t h = mix(h_);
    return h == 0 ? 1 : h;
  }

  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

 private:
  std::uint64_t h_;
};

class MemoCache {
 public:
  explicit MemoCache(MemoConfig config = MemoConfig::from_env());
  ~MemoCache();

  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  /// True and *value filled on a hit. Marks the slot referenced for the
  /// clock sweep. Never blocks; a concurrent writer at the same slot
  /// degrades this to a miss, not a wrong value.
  [[nodiscard]] bool lookup(std::uint64_t key, std::uint64_t* value) noexcept;

  /// Publishes key -> value. Idempotent for an already-present key (pure
  /// results are deterministic, so the value is necessarily identical).
  /// Evicts within the probe window when it is full.
  void store(std::uint64_t key, std::uint64_t value) noexcept;

  /// Aggregated over all shards; racy reads (monitoring only).
  [[nodiscard]] MemoStats stats() const noexcept;

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_n_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return shards_n_ * (slot_mask_ + 1);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // even = stable, odd = mid-write
    std::atomic<std::uint64_t> tag{0};  // 0 = empty
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint64_t> ref{0};  // clock second-chance bit
  };

  struct alignas(kCacheLineBytes) Shard {
    Slot* slots = nullptr;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> stores{0};
    std::atomic<std::uint64_t> evictions{0};
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t key) noexcept {
    return shards_[(key >> 40) & shard_mask_];
  }

  /// The uninstrumented probe; lookup() wraps it with the latency
  /// histogram and trace hooks (which compile to nothing by default).
  [[nodiscard]] bool lookup_impl(std::uint64_t key,
                                 std::uint64_t* value) noexcept;

  std::size_t shards_n_ = 1;
  std::uint64_t shard_mask_ = 0;
  std::uint64_t slot_mask_ = 0;   // per-shard slot count - 1
  std::size_t probe_window_ = 1;  // min(kProbeWindow, slots per shard)
  std::unique_ptr<Shard[]> shards_;
  std::unique_ptr<Slot[]> slot_storage_;

  static constexpr std::size_t kProbeWindow = 8;
};

}  // namespace purec::rt

#include "runtime/trace.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>

namespace purec::rt::trace {

namespace {

/// One worker's event ring. `cursor` counts every record attempt; slots
/// past kRingCapacity are dropped (the dump reports the difference).
/// Only the owning worker writes the ring, so relaxed ordering suffices —
/// the dump runs after the pool has quiesced (atexit / explicit call).
struct alignas(64) Ring {
  std::atomic<std::uint64_t> cursor{0};
  Event events[kRingCapacity];
};

struct State {
  bool on = false;
  std::string path;
  std::unique_ptr<Ring[]> rings;
  std::string region_names[kMaxRegionNames];
  std::mutex names_mutex;
  bool atexit_registered = false;
};

State& state() {
  static State instance;
  return instance;
}

void resolve(State& s, const char* path) {
  s.on = path != nullptr && path[0] != '\0';
  s.path = s.on ? path : "";
  if (s.on && !s.rings) {
    s.rings = std::make_unique<Ring[]>(kMaxWorkers);
  }
  if (s.on && !s.atexit_registered) {
    s.atexit_registered = true;
    std::atexit([] { dump(); });
  }
}

struct Resolved {
  Resolved() { resolve(state(), std::getenv("PUREC_RT_TRACE")); }
};

[[nodiscard]] bool is_active() noexcept {
  static Resolved once;
  return state().on;
}

/// Minimal JSON string escaping for region names (quote, backslash,
/// control bytes) — the full writer lives in support/json, but the
/// runtime must not depend on the compiler libraries.
[[nodiscard]] std::string escape_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char ch : name) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      out += ' ';
    } else {
      out += ch;
    }
  }
  return out;
}

[[nodiscard]] std::string region_label(const State& s, std::uint32_t id) {
  if (id < kMaxRegionNames && !s.region_names[id].empty()) {
    return escape_name(s.region_names[id]);
  }
  return "region " + std::to_string(id);
}

/// Opens `path` for a cooperative array append: a fresh/empty file starts
/// a new array (*first = true); an existing file ending in `]` is
/// positioned ON that bracket so the caller's leading "," overwrites it
/// and the array keeps growing. An existing file with any other tail is
/// treated as foreign and appended to as a fresh array (best effort —
/// never corrupt what we do not understand).
[[nodiscard]] std::FILE* open_cooperative(const char* path, bool* first) {
  *first = true;
  std::FILE* out = std::fopen(path, "r+");
  if (out == nullptr) return std::fopen(path, "w");
  std::fseek(out, 0, SEEK_END);
  const long size = std::ftell(out);
  if (size <= 0) return out;
  char tail[8] = {};
  const long n = size < 8 ? size : 8;
  std::fseek(out, size - n, SEEK_SET);
  if (std::fread(tail, 1, static_cast<std::size_t>(n), out) !=
      static_cast<std::size_t>(n)) {
    std::fseek(out, 0, SEEK_END);
    return out;
  }
  for (long k = n - 1; k >= 0; --k) {
    const char ch = tail[k];
    if (ch == ']') {
      std::fseek(out, size - n + k, SEEK_SET);
      *first = false;
      return out;
    }
    if (ch != ' ' && ch != '\n' && ch != '\r' && ch != '\t') break;
  }
  std::fseek(out, 0, SEEK_END);
  return out;
}

struct EventShape {
  const char* name;
  const char* cat;
  bool instant;
};

[[nodiscard]] EventShape shape_of(EventKind kind) {
  switch (kind) {
    case EventKind::Region:
      return {nullptr, "region", false};
    case EventKind::Chunk:
      return {"chunk", "chunk", false};
    case EventKind::Steal:
      return {"steal", "steal", true};
    case EventKind::BarrierSpin:
      return {"barrier_spin", "barrier", false};
    case EventKind::BarrierPark:
      return {"barrier_park", "barrier", false};
    case EventKind::MemoHit:
      return {"memo_hit", "memo", false};
    case EventKind::MemoMiss:
      return {"memo_miss", "memo", false};
  }
  return {"event", "event", false};
}

/// Writes one worker's retained events plus its overflow marker.
/// `sep` alternates between the post-bracket "\n" and ",\n".
void write_worker(std::FILE* out, State& s, std::size_t worker,
                  const char** sep) {
  Ring& ring = s.rings[worker];
  const std::uint64_t attempted =
      ring.cursor.load(std::memory_order_relaxed);
  const std::uint64_t kept =
      attempted < kRingCapacity ? attempted : kRingCapacity;
  for (std::uint64_t k = 0; k < kept; ++k) {
    const Event& e = ring.events[k];
    const EventShape shape = shape_of(e.kind);
    const std::string name = shape.name != nullptr
                                 ? std::string(shape.name)
                                 : region_label(s, e.region_id);
    std::fprintf(out, "%s{\"name\":\"%s\",\"cat\":\"%s\",", *sep,
                 name.c_str(), shape.cat);
    *sep = ",\n";
    if (shape.instant) {
      std::fprintf(out, "\"ph\":\"i\",\"s\":\"t\",");
    } else {
      std::fprintf(out, "\"ph\":\"X\",");
    }
    std::fprintf(out, "\"pid\":%d,\"tid\":%zu,\"ts\":%.3f,", kTracePid,
                 worker, static_cast<double>(e.begin_ns) / 1000.0);
    if (!shape.instant) {
      std::fprintf(out, "\"dur\":%.3f,",
                   static_cast<double>(e.end_ns - e.begin_ns) / 1000.0);
    }
    std::fprintf(out, "\"args\":{\"region_id\":%u", e.region_id);
    switch (e.kind) {
      case EventKind::Chunk:
        std::fprintf(out, ",\"begin\":%lld,\"end\":%lld",
                     static_cast<long long>(e.arg0),
                     static_cast<long long>(e.arg1));
        break;
      case EventKind::Steal:
        std::fprintf(out, ",\"victim\":%lld",
                     static_cast<long long>(e.arg0));
        break;
      default:
        break;
    }
    std::fprintf(out, "}}");
  }
  if (attempted > kRingCapacity) {
    std::fprintf(out,
                 "%s{\"name\":\"purec: trace ring overflow\",\"ph\":\"i\","
                 "\"s\":\"t\",\"pid\":%d,\"tid\":%zu,\"ts\":%.3f,"
                 "\"args\":{\"dropped\":%llu}}",
                 *sep, kTracePid, worker,
                 static_cast<double>(stats::now_ns()) / 1000.0,
                 static_cast<unsigned long long>(attempted -
                                                 kRingCapacity));
    *sep = ",\n";
  }
}

void write_all(std::FILE* out, State& s, bool first) {
  const char* sep = first ? "\n" : ",\n";
  if (!first) {
    // We are sitting on the previous dump's closing bracket; turn it
    // into a separator so the array keeps growing.
    std::fputc(',', out);
    sep = "\n";
  } else {
    std::fputc('[', out);
  }
  // Metadata: name the runtime twin's process and every worker lane that
  // recorded events, so chrome://tracing shows labels instead of tids.
  std::fprintf(out,
               "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
               "\"args\":{\"name\":\"purec-rt\"}}",
               sep, kTracePid);
  sep = ",\n";
  for (std::size_t w = 0; w < kMaxWorkers; ++w) {
    if (s.rings[w].cursor.load(std::memory_order_relaxed) == 0) continue;
    std::fprintf(out,
                 "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                 "\"tid\":%zu,\"args\":{\"name\":\"worker %zu\"}}",
                 sep, kTracePid, w, w);
  }
  for (std::size_t w = 0; w < kMaxWorkers; ++w) {
    write_worker(out, s, w, &sep);
  }
  std::fputs("\n]\n", out);
}

}  // namespace

bool active() noexcept { return is_active(); }

void record(std::size_t worker, EventKind kind, std::uint64_t begin_ns,
            std::uint64_t end_ns, std::uint32_t region_id,
            std::int64_t arg0, std::int64_t arg1) noexcept {
  State& s = state();
  if (!s.on || !s.rings) return;
  Ring& ring = s.rings[worker & (kMaxWorkers - 1)];
  const std::uint64_t slot =
      ring.cursor.fetch_add(1, std::memory_order_relaxed);
  if (slot >= kRingCapacity) return;  // dropped, counted by the cursor
  Event& e = ring.events[slot];
  e.begin_ns = begin_ns;
  e.end_ns = end_ns;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.region_id = region_id;
  e.kind = kind;
}

void set_region_name(std::uint32_t id, const char* name) noexcept {
  if (id >= kMaxRegionNames || name == nullptr) return;
  State& s = state();
  std::lock_guard lock(s.names_mutex);
  s.region_names[id] = name;
}

void dump() {
  State& s = state();
  if (!s.on || !s.rings) return;
  bool any = false;
  for (std::size_t w = 0; w < kMaxWorkers; ++w) {
    if (s.rings[w].cursor.load(std::memory_order_relaxed) != 0) {
      any = true;
      break;
    }
  }
  if (!any) return;
  bool first = true;
  std::FILE* out = open_cooperative(s.path.c_str(), &first);
  if (out == nullptr) return;
  write_all(out, s, first);
  std::fclose(out);
  reset();
}

void write_events(std::FILE* out) {
  State& s = state();
  if (!s.rings) s.rings = std::make_unique<Ring[]>(kMaxWorkers);
  write_all(out, s, /*first=*/true);
}

void reset() noexcept {
  State& s = state();
  if (!s.rings) return;
  for (std::size_t w = 0; w < kMaxWorkers; ++w) {
    s.rings[w].cursor.store(0, std::memory_order_relaxed);
  }
}

void set_path_for_testing(const char* path) {
  (void)is_active();  // ensure the env resolution happened first
  resolve(state(), path);
}

}  // namespace purec::rt::trace

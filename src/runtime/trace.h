// purec::rt::trace — per-chunk event streaming from the C++ runtime, the
// twin of the emitted-C --instrument Chrome trace writer.
//
// Compile-time default OFF, exactly like purec::rt::stats: every hook
// below is an if-constexpr over kEnabled, so the production runtime pays
// zero instructions unless a translation unit is built with
// -DPUREC_RT_TRACE=1 (the runtime_trace test target and the traced half
// of bench/trace_overhead do exactly that). When compiled in, recording
// additionally requires the PUREC_RT_TRACE environment variable to name a
// file — the same spelling doubles as macro (compile gate) and env knob
// (runtime destination), mirroring how PUREC_RT_STATS gates the counters
// and PUREC_STATS_FILE routes their dump.
//
// Event storage is a fixed-capacity ring per worker, each on its own
// cache line, written only by the worker that owns it (the per-CPU
// pattern) — recording is a relaxed cursor bump plus a POD store, no lock
// and no shared line anywhere. When a ring fills, further events are
// counted, not stored, and the dump emits the dropped count.
//
// The dump writes the same Chrome trace-event schema as the emitted-C
// instrument runtime — a JSON array of event objects, cooperatively
// appended (see dump()) so that a mixed binary (runtime twin + emitted
// --instrument C) pointing PUREC_RT_TRACE and PUREC_TRACE at one path
// produces a single Chrome-loadable timeline: emitted-C regions on pid 1,
// runtime workers on pid 2, metadata ("M") events naming both.
//
// The storage and dump live in trace.cpp and are always compiled, so
// mixed builds (traced test objects linking the plain runtime archive)
// link cleanly either way; rings are heap-allocated on first activation,
// so binaries that never trace never pay the footprint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>

#include "runtime/stats.h"

#ifndef PUREC_RT_TRACE
#define PUREC_RT_TRACE 0
#endif

namespace purec::rt::trace {

inline constexpr bool kEnabled = PUREC_RT_TRACE != 0;
inline constexpr std::size_t kMaxWorkers = stats::kMaxWorkers;
/// Events retained per worker; claims past this are dropped and counted.
inline constexpr std::size_t kRingCapacity = 4096;
/// Region names registerable via set_region_name.
inline constexpr std::size_t kMaxRegionNames = 256;
/// The runtime twin's pid in the merged timeline (the emitted-C
/// instrument runtime is pid 1).
inline constexpr int kTracePid = 2;

enum class EventKind : std::uint8_t {
  Region,       ///< one for_each_chunk launch (X, cat "region")
  Chunk,        ///< one claimed chunk (X, cat "chunk", args begin/end)
  Steal,        ///< a chunk claimed from a victim's range (instant)
  BarrierSpin,  ///< wait_for_change resolved in the spin window (X)
  BarrierPark,  ///< wait_for_change entered the kernel (X)
  MemoHit,      ///< memo probe that hit (X, cat "memo")
  MemoMiss,     ///< memo probe that missed (X, cat "memo")
};

struct Event {
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::int64_t arg0 = 0;  ///< chunk begin / victim worker
  std::int64_t arg1 = 0;  ///< chunk end
  std::uint32_t region_id = 0;
  EventKind kind = EventKind::Region;
};

/// True when tracing is compiled in AND the PUREC_RT_TRACE environment
/// variable names a destination file. Cached after the first call; the
/// atexit dump is registered on the first true answer. Call sites must
/// still gate on kEnabled so the check itself compiles out.
[[nodiscard]] bool active() noexcept;

/// Appends an event to `worker`'s ring (drop-and-count when full). Only
/// meaningful while active(); safe (a no-op) otherwise.
void record(std::size_t worker, EventKind kind, std::uint64_t begin_ns,
            std::uint64_t end_ns, std::uint32_t region_id = 0,
            std::int64_t arg0 = 0, std::int64_t arg1 = 0) noexcept;

/// Labels region `id` in the dumped timeline (benches register the same
/// stable ids the compile-time report carries). Unregistered ids render
/// as "region <id>".
void set_region_name(std::uint32_t id, const char* name) noexcept;

/// Writes every recorded event to the PUREC_RT_TRACE path and clears the
/// rings. The write is a *cooperative append*: an existing trace array at
/// the path (for example the emitted-C instrument dump's) is reopened,
/// its closing bracket replaced by a comma, and the new events spliced in
/// before a fresh closing bracket — so any number of sequential dumps to
/// one path still form one valid, Chrome-loadable JSON array. A no-op
/// when inactive or when no events were recorded.
void dump();

/// dump() into an already-open stream (tests): always writes a complete
/// `[...]` array, including metadata events; does not clear the rings.
void write_events(std::FILE* out);

/// Clears rings, dropped counts, and cursors (test isolation).
void reset() noexcept;

/// Test/bench hook: re-resolves activation with `path` standing in for
/// the PUREC_RT_TRACE environment variable (nullptr = deactivate).
void set_path_for_testing(const char* path);

}  // namespace purec::rt::trace

#include "runtime/memo_cache.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "runtime/stats.h"
#include "runtime/trace.h"

namespace purec::rt {

namespace {

/// Ceiling on either knob: 2^24 slots (~512 MB of table) is already far
/// beyond useful, and the clamp keeps absurd values ("-1" wraps to
/// ULLONG_MAX through strtoull) from hanging floor_pow2 or driving the
/// allocation into OOM territory.
constexpr std::size_t kMaxKnob = std::size_t{1} << 24;

[[nodiscard]] std::size_t floor_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p <= v / 2) p *= 2;
  return p;
}

[[nodiscard]] std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == nullptr || *end != '\0' || parsed == 0) return fallback;
  if (parsed > kMaxKnob) return kMaxKnob;
  return static_cast<std::size_t>(parsed);
}

}  // namespace

MemoConfig MemoConfig::from_env() {
  MemoConfig config;
  config.shards = env_size("PUREC_MEMO_SHARDS", config.shards);
  config.capacity = env_size("PUREC_MEMO_CAP", config.capacity);
  return config;
}

void MemoKey::add_f64(double v) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  add(bits);
}

void MemoKey::add_f32(float v) noexcept {
  std::uint32_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  add(bits);
}

MemoCache::MemoCache(MemoConfig config) {
  // Normalize: power-of-two shard and slot counts, at least one slot per
  // shard. A capacity below the shard count collapses shards instead of
  // rounding the capacity up (the knob is a *budget*).
  std::size_t shards =
      floor_pow2(std::min(config.shards == 0 ? 1 : config.shards, kMaxKnob));
  std::size_t capacity =
      std::min(config.capacity == 0 ? 1 : config.capacity, kMaxKnob);
  if (capacity < shards) shards = floor_pow2(capacity);
  const std::size_t per_shard = floor_pow2(capacity / shards);

  shards_n_ = shards;
  shard_mask_ = shards - 1;
  slot_mask_ = per_shard - 1;
  probe_window_ = kProbeWindow < per_shard ? kProbeWindow : per_shard;

  shards_ = std::make_unique<Shard[]>(shards);
  slot_storage_ = std::make_unique<Slot[]>(shards * per_shard);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_[s].slots = slot_storage_.get() + s * per_shard;
  }
}

MemoCache::~MemoCache() = default;

bool MemoCache::lookup(std::uint64_t key, std::uint64_t* value) noexcept {
  if constexpr (stats::kEnabled || trace::kEnabled) {
    const std::uint64_t begin_ns = stats::now_ns();
    const bool hit = lookup_impl(key, value);
    const std::uint64_t end_ns = stats::now_ns();
    stats::record_memo_probe_ns(end_ns - begin_ns);
    if constexpr (trace::kEnabled) {
      if (trace::active()) {
        trace::record(stats::current_worker(),
                      hit ? trace::EventKind::MemoHit
                          : trace::EventKind::MemoMiss,
                      begin_ns, end_ns);
      }
    }
    return hit;
  }
  return lookup_impl(key, value);
}

bool MemoCache::lookup_impl(std::uint64_t key,
                            std::uint64_t* value) noexcept {
  Shard& shard = shard_for(key);
  for (std::size_t i = 0; i < probe_window_; ++i) {
    Slot& slot = shard.slots[(key + i) & slot_mask_];
    const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if ((s1 & 1) != 0) continue;  // mid-write: treat as a (safe) mismatch
    const std::uint64_t tag = slot.tag.load(std::memory_order_relaxed);
    const std::uint64_t val = slot.value.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // torn
    if (tag == key) {
      *value = val;
      slot.ref.store(1, std::memory_order_relaxed);
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      stats::add(stats::counters().memo_hits);
      return true;
    }
    if (tag == 0) break;  // probe window never re-opens holes past here
  }
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  stats::add(stats::counters().memo_misses);
  return false;
}

void MemoCache::store(std::uint64_t key, std::uint64_t value) noexcept {
  Shard& shard = shard_for(key);

  const auto publish = [&](Slot& slot, bool evicting) {
    std::uint64_t s1 = slot.seq.load(std::memory_order_relaxed);
    if ((s1 & 1) != 0) return false;  // another writer owns it
    if (!slot.seq.compare_exchange_strong(s1, s1 + 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
      return false;
    }
    slot.tag.store(key, std::memory_order_relaxed);
    slot.value.store(value, std::memory_order_relaxed);
    slot.ref.store(0, std::memory_order_relaxed);
    slot.seq.store(s1 + 2, std::memory_order_release);
    shard.stores.fetch_add(1, std::memory_order_relaxed);
    stats::add(stats::counters().memo_stores);
    if (evicting) {
      shard.evictions.fetch_add(1, std::memory_order_relaxed);
      stats::add(stats::counters().memo_evictions);
    }
    return true;
  };

  // Pass 1: the key may already be resident (another thread computed the
  // same miss), or an empty slot may be free in the window.
  for (std::size_t i = 0; i < probe_window_; ++i) {
    Slot& slot = shard.slots[(key + i) & slot_mask_];
    const std::uint64_t tag = slot.tag.load(std::memory_order_relaxed);
    if (tag == key) return;  // deterministic value, already published
    if (tag == 0 && publish(slot, /*evicting=*/false)) return;
  }

  // Pass 2: full window — clock-style second chance. Clear reference
  // bits as we sweep; the first slot already unreferenced is the victim.
  // Everything referenced (one full sweep) -> the home slot loses.
  for (std::size_t i = 0; i < probe_window_; ++i) {
    Slot& slot = shard.slots[(key + i) & slot_mask_];
    if (slot.ref.exchange(0, std::memory_order_relaxed) == 0) {
      if (publish(slot, /*evicting=*/true)) return;
    }
  }
  Slot& home = shard.slots[key & slot_mask_];
  publish(home, /*evicting=*/true);  // may fail under contention: benign
}

MemoStats MemoCache::stats() const noexcept {
  MemoStats total;
  for (std::size_t s = 0; s < shards_n_; ++s) {
    total.hits += shards_[s].hits.load(std::memory_order_relaxed);
    total.misses += shards_[s].misses.load(std::memory_order_relaxed);
    total.stores += shards_[s].stores.load(std::memory_order_relaxed);
    total.evictions +=
        shards_[s].evictions.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace purec::rt

#include "runtime/memo_cache.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "runtime/stats.h"
#include "runtime/trace.h"

#if defined(__unix__) || defined(__APPLE__)
#define PUREC_MEMO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace purec::rt {

namespace {

/// Ceiling on either knob: 2^24 slots (~512 MB of table) is already far
/// beyond useful, and the clamp keeps absurd values ("-1" wraps to
/// ULLONG_MAX through strtoull) from hanging floor_pow2 or driving the
/// allocation into OOM territory.
constexpr std::size_t kMaxKnob = std::size_t{1} << 24;

// Shared-file header: eight 64-bit words, written by the creating process
// under flock and validated by every attacher. The layout constants below
// are spelled as literals because the emitted-C twin must compute the
// identical ABI fingerprint from the identical numbers.
constexpr std::size_t kHeaderBytes = 64;
constexpr std::uint64_t kMagic = 0x304d454d43525550ULL;  // "PURCMEM0"
constexpr std::uint64_t kFileVersion = 1;
constexpr std::uint64_t kStateReady = 2;
enum : std::size_t {
  kHdrMagic = 0,
  kHdrVersion = 1,
  kHdrAbi = 2,
  kHdrShards = 3,
  kHdrPerShard = 4,
  kHdrVerify = 5,
  kHdrState = 6,
};

[[nodiscard]] std::uint64_t abi_fingerprint(bool verify) {
  // 32-byte slots, 13-word verify stride; verify mode changes what the
  // bytes after the slot array mean, so it is part of the ABI.
  return MemoKey::mix(0x5043ULL ^ (32ULL << 8) ^ (13ULL << 16) ^
                      (verify ? (1ULL << 24) : 0ULL));
}

[[nodiscard]] std::size_t floor_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p <= v / 2) p *= 2;
  return p;
}

[[nodiscard]] std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == nullptr || *end != '\0' || parsed == 0) return fallback;
  if (parsed > kMaxKnob) return kMaxKnob;
  return static_cast<std::size_t>(parsed);
}

}  // namespace

MemoConfig MemoConfig::from_env() {
  MemoConfig config;
  config.shards = env_size("PUREC_MEMO_SHARDS", config.shards);
  config.capacity = env_size("PUREC_MEMO_CAP", config.capacity);
  if (const char* p = std::getenv("PUREC_MEMO_PATH");
      p != nullptr && *p != '\0') {
    config.path = p;
  }
  if (const char* v = std::getenv("PUREC_MEMO_VERIFY"); v != nullptr) {
    config.verify = v[0] == '1';
  }
  return config;
}

void MemoKey::add_f64(double v) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  add(bits);
}

void MemoKey::add_f32(float v) noexcept {
  std::uint32_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  add(bits);
}

MemoCache::MemoCache(MemoConfig config) {
  // Normalize: power-of-two shard and slot counts, at least one slot per
  // shard. A capacity below the shard count collapses shards instead of
  // rounding the capacity up (the knob is a *budget*).
  std::size_t shards =
      floor_pow2(std::min(config.shards == 0 ? 1 : config.shards, kMaxKnob));
  std::size_t capacity =
      std::min(config.capacity == 0 ? 1 : config.capacity, kMaxKnob);
  if (capacity < shards) shards = floor_pow2(capacity);
  const std::size_t per_shard = floor_pow2(capacity / shards);

  shards_n_ = shards;
  shard_mask_ = shards - 1;
  slot_mask_ = per_shard - 1;
  probe_window_ = kProbeWindow < per_shard ? kProbeWindow : per_shard;
  verify_ = config.verify;

  Slot* slots = nullptr;
  std::atomic<std::uint64_t>* vwords = nullptr;
  if (!config.path.empty()) {
    shared_ = attach_shared(config.path, shards, per_shard, &slots, &vwords);
  }
  if (!shared_) {
    slot_storage_ = std::make_unique<Slot[]>(shards * per_shard);
    slots = slot_storage_.get();
    if (verify_) {
      verify_storage_ = std::make_unique<std::atomic<std::uint64_t>[]>(
          shards * per_shard * kVerifyStride);
      vwords = verify_storage_.get();
    }
  }

  shards_ = std::make_unique<Shard[]>(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_[s].slots = slots + s * per_shard;
    if (verify_) {
      shards_[s].vwords = vwords + s * per_shard * kVerifyStride;
    }
  }
}

MemoCache::~MemoCache() {
#if PUREC_MEMO_HAVE_MMAP
  if (map_base_ != nullptr) ::munmap(map_base_, map_len_);
  if (map_fd_ >= 0) ::close(map_fd_);
#endif
}

bool MemoCache::attach_shared(const std::string& path, std::size_t shards,
                              std::size_t per_shard, Slot** slots_out,
                              std::atomic<std::uint64_t>** vwords_out) {
#if PUREC_MEMO_HAVE_MMAP
  const std::size_t nslots = shards * per_shard;
  const std::size_t slots_bytes = nslots * sizeof(Slot);
  const std::size_t verify_bytes =
      verify_ ? nslots * kVerifyStride * sizeof(std::uint64_t) : 0;
  const std::size_t total = kHeaderBytes + slots_bytes + verify_bytes;

  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  // flock serializes create-vs-attach: the creator sizes and initializes
  // the file before any attacher reads the header; a creator killed
  // mid-init drops the lock with state != ready and attachers reject the
  // husk. The lock is held only here — table traffic never takes it.
  if (::flock(fd, LOCK_EX) != 0) {
    ::close(fd);
    return false;
  }
  const auto fail = [&]() {
    ::flock(fd, LOCK_UN);
    ::close(fd);
    return false;
  };

  struct stat st{};
  if (::fstat(fd, &st) != 0) return fail();
  const bool fresh = st.st_size == 0;
  if (fresh) {
    if (::ftruncate(fd, static_cast<off_t>(total)) != 0) return fail();
  } else if (st.st_size < 0 ||
             static_cast<std::uint64_t>(st.st_size) != total) {
    return fail();  // geometry/verify knobs disagree with the file
  }

  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED,
                      fd, 0);
  if (base == MAP_FAILED) return fail();
  auto* header = reinterpret_cast<std::atomic<std::uint64_t>*>(base);
  if (fresh) {
    // ftruncate zero-fills, so every slot is already empty; publish the
    // geometry and flip the ready state last.
    header[kHdrMagic].store(kMagic, std::memory_order_relaxed);
    header[kHdrVersion].store(kFileVersion, std::memory_order_relaxed);
    header[kHdrAbi].store(abi_fingerprint(verify_),
                          std::memory_order_relaxed);
    header[kHdrShards].store(shards, std::memory_order_relaxed);
    header[kHdrPerShard].store(per_shard, std::memory_order_relaxed);
    header[kHdrVerify].store(verify_ ? 1 : 0, std::memory_order_relaxed);
    header[kHdrState].store(kStateReady, std::memory_order_release);
  } else if (header[kHdrState].load(std::memory_order_acquire) !=
                 kStateReady ||
             header[kHdrMagic].load(std::memory_order_relaxed) != kMagic ||
             header[kHdrVersion].load(std::memory_order_relaxed) !=
                 kFileVersion ||
             header[kHdrAbi].load(std::memory_order_relaxed) !=
                 abi_fingerprint(verify_) ||
             header[kHdrShards].load(std::memory_order_relaxed) != shards ||
             header[kHdrPerShard].load(std::memory_order_relaxed) !=
                 per_shard ||
             header[kHdrVerify].load(std::memory_order_relaxed) !=
                 (verify_ ? 1ULL : 0ULL)) {
    ::munmap(base, total);
    return fail();
  }
  ::flock(fd, LOCK_UN);

  map_base_ = base;
  map_len_ = total;
  map_fd_ = fd;
  auto* bytes = static_cast<unsigned char*>(base);
  *slots_out = reinterpret_cast<Slot*>(bytes + kHeaderBytes);
  *vwords_out = verify_ ? reinterpret_cast<std::atomic<std::uint64_t>*>(
                              bytes + kHeaderBytes + slots_bytes)
                        : nullptr;
  return true;
#else
  (void)path;
  (void)shards;
  (void)per_shard;
  (void)slots_out;
  (void)vwords_out;
  return false;
#endif
}

bool MemoCache::lookup(std::uint64_t key, const std::uint64_t* words,
                       std::size_t nwords, std::uint64_t* value) noexcept {
  if constexpr (stats::kEnabled || trace::kEnabled) {
    const std::uint64_t begin_ns = stats::now_ns();
    const bool hit = lookup_impl(key, words, nwords, value);
    const std::uint64_t end_ns = stats::now_ns();
    stats::record_memo_probe_ns(end_ns - begin_ns);
    if constexpr (trace::kEnabled) {
      if (trace::active()) {
        trace::record(stats::current_worker(),
                      hit ? trace::EventKind::MemoHit
                          : trace::EventKind::MemoMiss,
                      begin_ns, end_ns);
      }
    }
    return hit;
  }
  return lookup_impl(key, words, nwords, value);
}

bool MemoCache::lookup_impl(std::uint64_t key, const std::uint64_t* words,
                            std::size_t nwords,
                            std::uint64_t* value) noexcept {
  Shard& shard = shard_for(key);
  if (verify_ && nwords > kVerifyWords) {
    // Tuple too wide for a slot's verify record: the cache cannot prove a
    // hit, so this call permanently misses (counted as such).
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    stats::add(stats::counters().memo_misses);
    return false;
  }
  for (std::size_t i = 0; i < probe_window_; ++i) {
    const std::size_t idx = (key + i) & slot_mask_;
    Slot& slot = shard.slots[idx];
    const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if ((s1 & 1) != 0) continue;  // mid-write: treat as a (safe) mismatch
    const std::uint64_t tag = slot.tag.load(std::memory_order_relaxed);
    const std::uint64_t val = slot.value.load(std::memory_order_relaxed);
    bool verified = true;
    if (verify_ && tag == key) {
      const std::atomic<std::uint64_t>* record =
          shard.vwords + idx * kVerifyStride;
      verified = record[0].load(std::memory_order_relaxed) == nwords;
      for (std::size_t w = 0; verified && w < nwords; ++w) {
        verified = record[1 + w].load(std::memory_order_relaxed) == words[w];
      }
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // torn
    if (tag == key) {
      if (!verified) break;  // fingerprint alias: recompute, never serve it
      *value = val;
      slot.ref.store(1, std::memory_order_relaxed);
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      stats::add(stats::counters().memo_hits);
      return true;
    }
    if (tag == 0) break;  // probe window never re-opens holes past here
  }
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  stats::add(stats::counters().memo_misses);
  return false;
}

void MemoCache::store(std::uint64_t key, const std::uint64_t* words,
                      std::size_t nwords, std::uint64_t value) noexcept {
  Shard& shard = shard_for(key);
  if (verify_ && nwords > kVerifyWords) return;  // unverifiable: never cache

  const auto publish = [&](std::size_t idx, bool evicting) {
    Slot& slot = shard.slots[idx];
    std::uint64_t s1 = slot.seq.load(std::memory_order_relaxed);
    if ((s1 & 1) != 0) return false;  // another writer owns it
    if (!slot.seq.compare_exchange_strong(s1, s1 + 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
      return false;
    }
    slot.tag.store(key, std::memory_order_relaxed);
    slot.value.store(value, std::memory_order_relaxed);
    slot.ref.store(0, std::memory_order_relaxed);
    if (verify_) {
      std::atomic<std::uint64_t>* record = shard.vwords + idx * kVerifyStride;
      record[0].store(nwords, std::memory_order_relaxed);
      for (std::size_t w = 0; w < nwords; ++w) {
        record[1 + w].store(words[w], std::memory_order_relaxed);
      }
    }
    slot.seq.store(s1 + 2, std::memory_order_release);
    shard.stores.fetch_add(1, std::memory_order_relaxed);
    stats::add(stats::counters().memo_stores);
    if (evicting) {
      shard.evictions.fetch_add(1, std::memory_order_relaxed);
      stats::add(stats::counters().memo_evictions);
    }
    return true;
  };

  // Pass 1: the key may already be resident (another thread computed the
  // same miss), or an empty slot may be free in the window.
  for (std::size_t i = 0; i < probe_window_; ++i) {
    const std::size_t idx = (key + i) & slot_mask_;
    Slot& slot = shard.slots[idx];
    const std::uint64_t tag = slot.tag.load(std::memory_order_relaxed);
    if (tag == key) {
      if (!verify_) return;  // deterministic value, already published
      // Under verify a resident fingerprint alias must be replaced, or
      // this key would miss forever. The unlocked compare is a heuristic:
      // a racy mismatch only costs one redundant republish.
      const std::atomic<std::uint64_t>* record =
          shard.vwords + idx * kVerifyStride;
      bool same = record[0].load(std::memory_order_relaxed) == nwords;
      for (std::size_t w = 0; same && w < nwords; ++w) {
        same = record[1 + w].load(std::memory_order_relaxed) == words[w];
      }
      if (same || publish(idx, /*evicting=*/true)) return;
      continue;
    }
    if (tag == 0 && publish(idx, /*evicting=*/false)) return;
  }

  // Pass 2: full window — clock-style second chance. Clear reference
  // bits as we sweep; the first slot already unreferenced is the victim.
  // Everything referenced (one full sweep) -> the home slot loses.
  for (std::size_t i = 0; i < probe_window_; ++i) {
    const std::size_t idx = (key + i) & slot_mask_;
    Slot& slot = shard.slots[idx];
    if (slot.ref.exchange(0, std::memory_order_relaxed) == 0) {
      if (publish(idx, /*evicting=*/true)) return;
    }
  }
  publish(key & slot_mask_,
          /*evicting=*/true);  // may fail under contention: benign
}

MemoStats MemoCache::stats() const noexcept {
  MemoStats total;
  for (std::size_t s = 0; s < shards_n_; ++s) {
    total.hits += shards_[s].hits.load(std::memory_order_relaxed);
    total.misses += shards_[s].misses.load(std::memory_order_relaxed);
    total.stores += shards_[s].stores.load(std::memory_order_relaxed);
    total.evictions +=
        shards_[s].evictions.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace purec::rt

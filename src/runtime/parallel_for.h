// parallel_for with OpenMP-style schedules. This is the runtime the bench
// harness uses to execute the loop structures the chain generates, with
// the exact schedule semantics the paper compares:
//   static         — contiguous equal chunks (omp `schedule(static)`)
//   dynamic(chunk) — chunks claimed from a shared counter
//                    (omp `schedule(dynamic,chunk)`, the §4.3.3 fix)
//   guided(chunk)  — exponentially decreasing chunks, never below `chunk`
//                    (omp `schedule(guided,chunk)`)
// Dynamic additionally has a work-stealing flavor (`ForOptions::stealing`)
// where each worker claims chunks from its own contiguous sub-range and
// raids its neighbors' ranges once its own runs dry — dynamic's imbalance
// tolerance without every claim contending one counter.
//
// The schedule loops are templates, so a lambda body inlines into the
// per-chunk claim loop and per-chunk dispatch costs nothing; the
// `std::function` signatures of the original runtime are kept as thin
// wrappers (defined in parallel_for.cpp) for code that wants a stable ABI.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/stats.h"
#include "runtime/thread_pool.h"
#include "runtime/trace.h"

namespace purec::rt {

enum class Schedule { Static, Dynamic, Guided };

struct ForOptions {
  Schedule schedule = Schedule::Static;
  std::int64_t chunk = 1;  // dynamic/guided (minimum) chunk size
  /// Dynamic only: claim from per-worker sub-ranges and steal on
  /// exhaustion instead of hammering one shared counter.
  bool stealing = false;
  /// Stable region id stamped on trace events (join key against the
  /// compile-time report's scops[].region_id). Ignored unless tracing is
  /// compiled in and active.
  std::uint32_t region_id = 0;
};

namespace detail {

/// A claimable [next, end) slice on its own cache line. Claims go through
/// compare-exchange (not fetch_add) so `next` never runs past `end`, which
/// keeps thief re-scans bounded.
struct alignas(kCacheLineBytes) ClaimableRange {
  std::atomic<std::int64_t> next{0};
  std::int64_t end = 0;

  /// Claims up to `chunk` iterations; returns false when the range is
  /// exhausted. On success [*out_begin, *out_end) is exclusively ours.
  bool claim(std::int64_t chunk, std::int64_t* out_begin,
             std::int64_t* out_end) noexcept {
    std::int64_t begin = next.load(std::memory_order_relaxed);
    while (begin < end) {
      const std::int64_t stop = std::min<std::int64_t>(begin + chunk, end);
      if (next.compare_exchange_weak(begin, stop,
                                     std::memory_order_relaxed)) {
        *out_begin = begin;
        *out_end = stop;
        return true;
      }
    }
    return false;
  }
};

/// The one scheduling core every entry point layers on: runs
/// `chunk_fn(worker, chunk_begin, chunk_end)` over a partition of
/// [begin, end) according to `options`. Templated so the chunk body
/// inlines into the claim loops.
template <class ChunkFn>
void for_each_chunk(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                    const ForOptions& options, ChunkFn&& raw_chunk_fn) {
  if (begin >= end) return;
  const auto threads = static_cast<std::int64_t>(pool.worker_count());
  const std::int64_t total = end - begin;
  const std::int64_t chunk = std::max<std::int64_t>(options.chunk, 1);

  // Observability shim around the user's chunk body; with stats and
  // tracing compiled out (the default) this is the identity and the
  // launch/claim paths are instruction-for-instruction what they always
  // were.
  const auto chunk_fn = [&](std::size_t worker, std::int64_t b,
                            std::int64_t e) {
    stats::note_chunk(worker);
    if constexpr (stats::kEnabled || trace::kEnabled) {
      // Attribute per-worker histogram rows / rings for subsystems that
      // run inside the chunk body without a worker parameter (memo).
      stats::set_current_worker(worker);
    }
    if constexpr (trace::kEnabled) {
      if (trace::active()) {
        const std::uint64_t t0 = stats::now_ns();
        raw_chunk_fn(worker, b, e);
        trace::record(worker, trace::EventKind::Chunk, t0,
                      stats::now_ns(), options.region_id, b, e);
        return;
      }
    }
    raw_chunk_fn(worker, b, e);
  };
  struct RegionTimer {
    std::uint64_t begin_ns = 0;
    std::uint32_t region_id = 0;
    explicit RegionTimer(std::uint32_t id) : region_id(id) {
      if constexpr (stats::kEnabled || trace::kEnabled) {
        begin_ns = stats::now_ns();
      }
      if constexpr (stats::kEnabled) {
        stats::add(stats::counters().regions);
      }
    }
    ~RegionTimer() {
      if constexpr (stats::kEnabled || trace::kEnabled) {
        const std::uint64_t end_ns = stats::now_ns();
        if constexpr (stats::kEnabled) {
          stats::add(stats::counters().region_ns, end_ns - begin_ns);
          stats::record_region_ns(end_ns - begin_ns);
        }
        if constexpr (trace::kEnabled) {
          if (trace::active()) {
            // The launch runs on the calling thread, which always carries
            // worker index 0.
            trace::record(0, trace::EventKind::Region, begin_ns, end_ns,
                          region_id);
          }
        }
      }
    }
  } region_timer{options.region_id};
  (void)region_timer;

  switch (options.schedule) {
    case Schedule::Static: {
      // Contiguous near-equal chunks, one per thread.
      const std::int64_t base = total / threads;
      const std::int64_t extra = total % threads;
      pool.run_on_all([&](std::size_t worker) {
        const auto w = static_cast<std::int64_t>(worker);
        const std::int64_t my_begin =
            begin + w * base + std::min<std::int64_t>(w, extra);
        const std::int64_t my_size = base + (w < extra ? 1 : 0);
        if (my_size > 0) chunk_fn(worker, my_begin, my_begin + my_size);
      });
      return;
    }

    case Schedule::Dynamic: {
      if (options.stealing && threads > 1) {
        // Work stealing: the static partition, but each worker's share is
        // a claimable queue of `chunk`-sized pieces. Owners drain their
        // own range contention-free; finished workers raid the slowest
        // ranges, so imbalance is absorbed without a global counter.
        const std::int64_t base = total / threads;
        const std::int64_t extra = total % threads;
        std::vector<ClaimableRange> ranges(
            static_cast<std::size_t>(threads));
        for (std::int64_t w = 0; w < threads; ++w) {
          const std::int64_t my_begin =
              begin + w * base + std::min<std::int64_t>(w, extra);
          auto& r = ranges[static_cast<std::size_t>(w)];
          r.next.store(my_begin, std::memory_order_relaxed);
          r.end = my_begin + base + (w < extra ? 1 : 0);
        }
        pool.run_on_all([&](std::size_t worker) {
          std::int64_t b = 0;
          std::int64_t e = 0;
          while (ranges[worker].claim(chunk, &b, &e)) {
            chunk_fn(worker, b, e);
          }
          // Own range dry: sweep the victims ring until nothing is left
          // anywhere.
          const auto n = static_cast<std::size_t>(threads);
          for (std::size_t hop = 1; hop < n; ++hop) {
            const std::size_t victim_index = (worker + hop) % n;
            auto& victim = ranges[victim_index];
            while (victim.claim(chunk, &b, &e)) {
              stats::add(stats::counters().steals);
              if constexpr (trace::kEnabled) {
                if (trace::active()) {
                  const std::uint64_t now = stats::now_ns();
                  trace::record(worker, trace::EventKind::Steal, now, now,
                                options.region_id,
                                static_cast<std::int64_t>(victim_index));
                }
              }
              chunk_fn(worker, b, e);
            }
          }
        });
        return;
      }
      // Shared-counter dynamic, the paper's schedule(dynamic,chunk).
      ClaimableRange range;
      range.next.store(begin, std::memory_order_relaxed);
      range.end = end;
      pool.run_on_all([&](std::size_t worker) {
        std::int64_t b = 0;
        std::int64_t e = 0;
        while (range.claim(chunk, &b, &e)) chunk_fn(worker, b, e);
      });
      return;
    }

    case Schedule::Guided: {
      // Exponentially decreasing chunks: each claim takes its fair share
      // (remaining / threads) of what is left, floored at `chunk`. Early
      // claims are big (few counter touches), the tail is fine-grained
      // (imbalance smoothing) — omp schedule(guided,chunk).
      struct alignas(kCacheLineBytes) Shared {
        std::atomic<std::int64_t> next{0};
      } shared;
      shared.next.store(begin, std::memory_order_relaxed);
      pool.run_on_all([&](std::size_t worker) {
        std::int64_t claim_begin =
            shared.next.load(std::memory_order_relaxed);
        for (;;) {
          if (claim_begin >= end) return;
          const std::int64_t remaining = end - claim_begin;
          const std::int64_t size =
              std::max<std::int64_t>(remaining / threads, chunk);
          const std::int64_t claim_end =
              std::min<std::int64_t>(claim_begin + size, end);
          if (shared.next.compare_exchange_weak(
                  claim_begin, claim_end, std::memory_order_relaxed)) {
            chunk_fn(worker, claim_begin, claim_end);
            claim_begin = shared.next.load(std::memory_order_relaxed);
          }
          // CAS failure reloaded claim_begin; retry with fresh remaining.
        }
      });
      return;
    }
  }
}

}  // namespace detail

/// Block variant: `body(chunk_begin, chunk_end)` — lets kernels keep their
/// inner loops intact. Templated: the body inlines into the claim loop.
template <class Body>
void parallel_for_blocked(ThreadPool& pool, std::int64_t begin,
                          std::int64_t end, Body&& body,
                          const ForOptions& options = {}) {
  detail::for_each_chunk(
      pool, begin, end, options,
      [&](std::size_t, std::int64_t b, std::int64_t e) { body(b, e); });
}

/// Runs `body(i)` for i in [begin, end) across the pool.
template <class Body>
void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  Body&& body, const ForOptions& options = {}) {
  detail::for_each_chunk(pool, begin, end, options,
                         [&](std::size_t, std::int64_t b, std::int64_t e) {
                           for (std::int64_t i = b; i < e; ++i) body(i);
                         });
}

/// General reduction over [begin, end): each worker folds `body(i)` into
/// a private accumulator seeded with `identity` via `combine` (one cache
/// line per partial), and partials are combined in worker order after the
/// join — the runtime twin of OpenMP `reduction(op:...)`. `combine` must
/// be associative; commutativity is not required because partials merge
/// in a fixed order. Layered on the same core as parallel_for_blocked, so
/// every schedule — including guided and stealing — is available.
///
///   sum:  parallel_reduce(pool, b, e, 0.0, std::plus<>{}, body)
///   prod: parallel_reduce(pool, b, e, 1.0, std::multiplies<>{}, body)
///   min:  parallel_reduce(pool, b, e, +inf, [](T a, T b){ return a < b ? a : b; }, body)
///   max:  parallel_reduce(pool, b, e, -inf, [](T a, T b){ return a > b ? a : b; }, body)
template <class T, class Combine, class Body>
[[nodiscard]] T parallel_reduce(ThreadPool& pool, std::int64_t begin,
                                std::int64_t end, T identity,
                                Combine&& combine, Body&& body,
                                const ForOptions& options = {}) {
  if (begin >= end) return identity;
  struct alignas(kCacheLineBytes) Partial {
    T value;
  };
  std::vector<Partial> partials(pool.worker_count(), Partial{identity});
  detail::for_each_chunk(
      pool, begin, end, options,
      [&](std::size_t worker, std::int64_t b, std::int64_t e) {
        T acc = identity;
        for (std::int64_t i = b; i < e; ++i) acc = combine(acc, body(i));
        // Workers may run many chunks; fold each chunk's local result in.
        partials[worker].value = combine(partials[worker].value, acc);
      });
  T result = identity;
  for (const Partial& p : partials) result = combine(result, p.value);
  return result;
}

/// Sum-reduction over [begin, end) (OpenMP `reduction(+:...)`): the
/// historical double-only entry point, now a parallel_reduce wrapper.
template <class Body>
[[nodiscard]] double parallel_reduce_sum(ThreadPool& pool,
                                         std::int64_t begin,
                                         std::int64_t end, Body&& body,
                                         const ForOptions& options = {}) {
  return parallel_reduce(
      pool, begin, end, 0.0,
      [](double a, double b) { return a + b; },
      static_cast<Body&&>(body), options);
}

// ---------------------------------------------------------------------------
// Type-erased wrappers (the original runtime signatures). Thin: they just
// instantiate the templates above with a std::function body. Prefer the
// templates in hot code — these keep one indirect call per iteration or
// chunk, the templates keep none.
// ---------------------------------------------------------------------------

void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  const ForOptions& options = {});

void parallel_for_blocked(
    ThreadPool& pool, std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body,
    const ForOptions& options = {});

[[nodiscard]] double parallel_reduce_sum(
    ThreadPool& pool, std::int64_t begin, std::int64_t end,
    const std::function<double(std::int64_t)>& body,
    const ForOptions& options = {});

}  // namespace purec::rt

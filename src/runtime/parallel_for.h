// parallel_for with OpenMP-style schedules. This is the runtime the bench
// harness uses to execute the loop structures the chain generates, with
// the exact schedule semantics the paper compares:
//   static         — contiguous equal chunks (omp `schedule(static)`)
//   dynamic(chunk) — work-stealing from a shared counter
//                    (omp `schedule(dynamic,chunk)`, the §4.3.3 fix)
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "runtime/thread_pool.h"

namespace purec::rt {

enum class Schedule { Static, Dynamic };

struct ForOptions {
  Schedule schedule = Schedule::Static;
  std::int64_t chunk = 1;  // dynamic chunk size
};

/// Runs `body(i)` for i in [begin, end) across the pool.
void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  const ForOptions& options = {});

/// Block variant: `body(chunk_begin, chunk_end)` — lets kernels keep their
/// inner loops intact (no per-iteration std::function call).
void parallel_for_blocked(
    ThreadPool& pool, std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body,
    const ForOptions& options = {});

/// Sum-reduction over [begin, end): each thread accumulates privately,
/// partial sums are combined at the barrier (OpenMP `reduction(+:...)`).
[[nodiscard]] double parallel_reduce_sum(
    ThreadPool& pool, std::int64_t begin, std::int64_t end,
    const std::function<double(std::int64_t)>& body,
    const ForOptions& options = {});

}  // namespace purec::rt

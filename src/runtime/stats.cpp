#include "runtime/stats.h"

#include <chrono>
#include <cstdlib>

namespace purec::rt::stats {

Counters& counters() noexcept {
  static Counters instance;
  return instance;
}

namespace {
thread_local std::size_t tls_worker = 0;
}  // namespace

std::size_t current_worker() noexcept { return tls_worker; }

void set_current_worker(std::size_t worker) noexcept {
  tls_worker = worker & (kMaxWorkers - 1);
}

HistSnapshot snapshot_hist(const HistRow* rows) noexcept {
  HistSnapshot snapshot;
  for (std::size_t w = 0; w < kMaxWorkers; ++w) {
    for (int c = 0; c < kHistCells; ++c) {
      const std::uint64_t n =
          rows[w].cells[c].load(std::memory_order_relaxed);
      snapshot.cells[c] += n;
      snapshot.count += n;
    }
  }
  return snapshot;
}

std::uint64_t hist_percentile(const HistSnapshot& snapshot,
                              unsigned percent) noexcept {
  if (snapshot.count == 0) return 0;
  // ceil(percent/100 * count), clamped to [1, count]: the rank of the
  // observation the percentile names.
  std::uint64_t target = (snapshot.count * percent + 99) / 100;
  if (target == 0) target = 1;
  if (target > snapshot.count) target = snapshot.count;
  std::uint64_t cumulative = 0;
  for (int c = 0; c < kHistCells; ++c) {
    cumulative += snapshot.cells[c];
    if (cumulative >= target) {
      return hist_cell_upper(static_cast<std::size_t>(c));
    }
  }
  return hist_cell_upper(kHistCells - 1);
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

[[nodiscard]] std::FILE* stats_stream() {
  static std::FILE* stream = [] {
    const char* path = std::getenv("PUREC_STATS_FILE");
    if (path != nullptr && path[0] != '\0') {
      if (std::FILE* f = std::fopen(path, "a")) return f;
    }
    return stderr;
  }();
  return stream;
}

}  // namespace

void dump(std::FILE* out) {
  if (out == nullptr) out = stats_stream();
  Counters& c = counters();
  const auto get = [](const Cell& cell) {
    return static_cast<unsigned long long>(
        cell.value.load(std::memory_order_relaxed));
  };
  std::fprintf(out,
               "purec-rt[pool] regions=%llu region_ns=%llu "
               "barrier_spins=%llu barrier_parks=%llu steals=%llu\n",
               get(c.regions), get(c.region_ns), get(c.barrier_spins),
               get(c.barrier_parks), get(c.steals));
  std::fprintf(out, "purec-rt[memo] hits=%llu misses=%llu stores=%llu "
                    "evictions=%llu\n",
               get(c.memo_hits), get(c.memo_misses), get(c.memo_stores),
               get(c.memo_evictions));
  bool any = false;
  for (std::size_t w = 0; w < kMaxWorkers; ++w) {
    if (c.chunks[w].value.load(std::memory_order_relaxed) != 0) any = true;
  }
  if (any) {
    std::fprintf(out, "purec-rt[chunks]");
    for (std::size_t w = 0; w < kMaxWorkers; ++w) {
      const unsigned long long n = get(c.chunks[w]);
      if (n != 0) {
        std::fprintf(out, " w%zu=%llu", w, n);
      }
    }
    std::fprintf(out, "\n");
  }
  const auto dump_hist = [out](const char* label,
                               const HistSnapshot& snapshot) {
    if (snapshot.count == 0) return;
    std::fprintf(out,
                 "purec-rt[%s] count=%llu p50_ns=%llu p90_ns=%llu "
                 "p99_ns=%llu max_ns=%llu\n",
                 label,
                 static_cast<unsigned long long>(snapshot.count),
                 static_cast<unsigned long long>(
                     hist_percentile(snapshot, 50)),
                 static_cast<unsigned long long>(
                     hist_percentile(snapshot, 90)),
                 static_cast<unsigned long long>(
                     hist_percentile(snapshot, 99)),
                 static_cast<unsigned long long>(
                     hist_percentile(snapshot, 100)));
  };
  dump_hist("region_hist", snapshot_region_hist());
  dump_hist("memo_probe", snapshot_memo_hist());
}

void reset() noexcept {
  Counters& c = counters();
  const auto zero = [](Cell& cell) {
    cell.value.store(0, std::memory_order_relaxed);
  };
  zero(c.regions);
  zero(c.region_ns);
  zero(c.barrier_spins);
  zero(c.barrier_parks);
  zero(c.steals);
  zero(c.memo_hits);
  zero(c.memo_misses);
  zero(c.memo_stores);
  zero(c.memo_evictions);
  for (std::size_t w = 0; w < kMaxWorkers; ++w) zero(c.chunks[w]);
  for (std::size_t w = 0; w < kMaxWorkers; ++w) {
    for (int cell = 0; cell < kHistCells; ++cell) {
      c.region_hist[w].cells[cell].store(0, std::memory_order_relaxed);
      c.memo_hist[w].cells[cell].store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace purec::rt::stats

#include "runtime/stats.h"

#include <chrono>
#include <cstdlib>

namespace purec::rt::stats {

Counters& counters() noexcept {
  static Counters instance;
  return instance;
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

[[nodiscard]] std::FILE* stats_stream() {
  static std::FILE* stream = [] {
    const char* path = std::getenv("PUREC_STATS_FILE");
    if (path != nullptr && path[0] != '\0') {
      if (std::FILE* f = std::fopen(path, "a")) return f;
    }
    return stderr;
  }();
  return stream;
}

}  // namespace

void dump(std::FILE* out) {
  if (out == nullptr) out = stats_stream();
  Counters& c = counters();
  const auto get = [](const Cell& cell) {
    return static_cast<unsigned long long>(
        cell.value.load(std::memory_order_relaxed));
  };
  std::fprintf(out,
               "purec-rt[pool] regions=%llu region_ns=%llu "
               "barrier_spins=%llu barrier_parks=%llu steals=%llu\n",
               get(c.regions), get(c.region_ns), get(c.barrier_spins),
               get(c.barrier_parks), get(c.steals));
  std::fprintf(out, "purec-rt[memo] hits=%llu misses=%llu stores=%llu "
                    "evictions=%llu\n",
               get(c.memo_hits), get(c.memo_misses), get(c.memo_stores),
               get(c.memo_evictions));
  bool any = false;
  for (std::size_t w = 0; w < kMaxWorkers; ++w) {
    if (c.chunks[w].value.load(std::memory_order_relaxed) != 0) any = true;
  }
  if (any) {
    std::fprintf(out, "purec-rt[chunks]");
    for (std::size_t w = 0; w < kMaxWorkers; ++w) {
      const unsigned long long n = get(c.chunks[w]);
      if (n != 0) {
        std::fprintf(out, " w%zu=%llu", w, n);
      }
    }
    std::fprintf(out, "\n");
  }
}

void reset() noexcept {
  Counters& c = counters();
  const auto zero = [](Cell& cell) {
    cell.value.store(0, std::memory_order_relaxed);
  };
  zero(c.regions);
  zero(c.region_ns);
  zero(c.barrier_spins);
  zero(c.barrier_parks);
  zero(c.steals);
  zero(c.memo_hits);
  zero(c.memo_misses);
  zero(c.memo_stores);
  zero(c.memo_evictions);
  for (std::size_t w = 0; w < kMaxWorkers; ++w) zero(c.chunks[w]);
}

}  // namespace purec::rt::stats

// Type-erased wrappers over the templated schedule core in
// parallel_for.h. Each instantiates the shared core with a std::function
// body — one indirect call per chunk (blocked) or iteration (indexed),
// exactly the cost profile of the original non-template runtime.
#include "runtime/parallel_for.h"

namespace purec::rt {

void parallel_for_blocked(
    ThreadPool& pool, std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body,
    const ForOptions& options) {
  detail::for_each_chunk(
      pool, begin, end, options,
      [&](std::size_t, std::int64_t b, std::int64_t e) { body(b, e); });
}

void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  const ForOptions& options) {
  detail::for_each_chunk(pool, begin, end, options,
                         [&](std::size_t, std::int64_t b, std::int64_t e) {
                           for (std::int64_t i = b; i < e; ++i) body(i);
                         });
}

double parallel_reduce_sum(ThreadPool& pool, std::int64_t begin,
                           std::int64_t end,
                           const std::function<double(std::int64_t)>& body,
                           const ForOptions& options) {
  return parallel_reduce_sum<const std::function<double(std::int64_t)>&>(
      pool, begin, end, body, options);
}

}  // namespace purec::rt

#include "runtime/parallel_for.h"

#include <algorithm>
#include <vector>

namespace purec::rt {

void parallel_for_blocked(
    ThreadPool& pool, std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body,
    const ForOptions& options) {
  if (begin >= end) return;
  const auto threads = static_cast<std::int64_t>(pool.worker_count());
  const std::int64_t total = end - begin;

  if (options.schedule == Schedule::Static) {
    // Contiguous near-equal chunks, one per thread.
    const std::int64_t base = total / threads;
    const std::int64_t extra = total % threads;
    pool.run_on_all([&](std::size_t worker) {
      const auto w = static_cast<std::int64_t>(worker);
      const std::int64_t my_begin =
          begin + w * base + std::min<std::int64_t>(w, extra);
      const std::int64_t my_size = base + (w < extra ? 1 : 0);
      if (my_size > 0) body(my_begin, my_begin + my_size);
    });
    return;
  }

  // Dynamic: shared chunk counter.
  const std::int64_t chunk = std::max<std::int64_t>(options.chunk, 1);
  std::atomic<std::int64_t> next{begin};
  pool.run_on_all([&](std::size_t) {
    for (;;) {
      const std::int64_t chunk_begin =
          next.fetch_add(chunk, std::memory_order_relaxed);
      if (chunk_begin >= end) return;
      body(chunk_begin, std::min<std::int64_t>(chunk_begin + chunk, end));
    }
  });
}

void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  const ForOptions& options) {
  parallel_for_blocked(
      pool, begin, end,
      [&](std::int64_t chunk_begin, std::int64_t chunk_end) {
        for (std::int64_t i = chunk_begin; i < chunk_end; ++i) body(i);
      },
      options);
}

double parallel_reduce_sum(ThreadPool& pool, std::int64_t begin,
                           std::int64_t end,
                           const std::function<double(std::int64_t)>& body,
                           const ForOptions& options) {
  // One cache line per partial to avoid false sharing.
  struct alignas(64) Partial {
    double value = 0.0;
  };
  std::vector<Partial> partials(pool.worker_count());
  if (options.schedule == Schedule::Static) {
    const auto threads = static_cast<std::int64_t>(pool.worker_count());
    const std::int64_t total = std::max<std::int64_t>(end - begin, 0);
    const std::int64_t base = total / threads;
    const std::int64_t extra = total % threads;
    pool.run_on_all([&](std::size_t worker) {
      const auto w = static_cast<std::int64_t>(worker);
      const std::int64_t my_begin =
          begin + w * base + std::min<std::int64_t>(w, extra);
      const std::int64_t my_end = my_begin + base + (w < extra ? 1 : 0);
      double acc = 0.0;
      for (std::int64_t i = my_begin; i < my_end; ++i) acc += body(i);
      partials[worker].value = acc;
    });
  } else {
    const std::int64_t chunk = std::max<std::int64_t>(options.chunk, 1);
    std::atomic<std::int64_t> next{begin};
    pool.run_on_all([&](std::size_t worker) {
      double acc = 0.0;
      for (;;) {
        const std::int64_t chunk_begin =
            next.fetch_add(chunk, std::memory_order_relaxed);
        if (chunk_begin >= end) break;
        const std::int64_t chunk_end =
            std::min<std::int64_t>(chunk_begin + chunk, end);
        for (std::int64_t i = chunk_begin; i < chunk_end; ++i) {
          acc += body(i);
        }
      }
      partials[worker].value = acc;
    });
  }
  double sum = 0.0;
  for (const Partial& p : partials) sum += p.value;
  return sum;
}

}  // namespace purec::rt

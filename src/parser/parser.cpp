#include "parser/parser.h"

#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "lexer/lexer.h"

namespace purec {

namespace {

/// Internal unwinding token for parse-error recovery; callers catch it at
/// statement/declaration boundaries. User-visible reporting goes through the
/// DiagnosticEngine before this is thrown.
struct ParseError {};

/// C binary operator precedence (higher binds tighter). Assignment and
/// conditional are handled separately.
[[nodiscard]] int precedence_of(TokenKind kind) {
  switch (kind) {
    case TokenKind::Star:
    case TokenKind::Slash:
    case TokenKind::Percent:
      return 10;
    case TokenKind::Plus:
    case TokenKind::Minus:
      return 9;
    case TokenKind::LessLess:
    case TokenKind::GreaterGreater:
      return 8;
    case TokenKind::Less:
    case TokenKind::Greater:
    case TokenKind::LessEqual:
    case TokenKind::GreaterEqual:
      return 7;
    case TokenKind::EqualEqual:
    case TokenKind::ExclaimEqual:
      return 6;
    case TokenKind::Amp:
      return 5;
    case TokenKind::Caret:
      return 4;
    case TokenKind::Pipe:
      return 3;
    case TokenKind::AmpAmp:
      return 2;
    case TokenKind::PipePipe:
      return 1;
    default:
      return -1;
  }
}

[[nodiscard]] BinaryOp binary_op_for(TokenKind kind) {
  switch (kind) {
    case TokenKind::Star: return BinaryOp::Mul;
    case TokenKind::Slash: return BinaryOp::Div;
    case TokenKind::Percent: return BinaryOp::Rem;
    case TokenKind::Plus: return BinaryOp::Add;
    case TokenKind::Minus: return BinaryOp::Sub;
    case TokenKind::LessLess: return BinaryOp::Shl;
    case TokenKind::GreaterGreater: return BinaryOp::Shr;
    case TokenKind::Less: return BinaryOp::Less;
    case TokenKind::Greater: return BinaryOp::Greater;
    case TokenKind::LessEqual: return BinaryOp::LessEqual;
    case TokenKind::GreaterEqual: return BinaryOp::GreaterEqual;
    case TokenKind::EqualEqual: return BinaryOp::Equal;
    case TokenKind::ExclaimEqual: return BinaryOp::NotEqual;
    case TokenKind::Amp: return BinaryOp::BitAnd;
    case TokenKind::Caret: return BinaryOp::BitXor;
    case TokenKind::Pipe: return BinaryOp::BitOr;
    case TokenKind::AmpAmp: return BinaryOp::LogicalAnd;
    case TokenKind::PipePipe: return BinaryOp::LogicalOr;
    default: throw std::logic_error("not a binary operator token");
  }
}

[[nodiscard]] bool is_assign_token(TokenKind kind) {
  switch (kind) {
    case TokenKind::Equal:
    case TokenKind::PlusEqual:
    case TokenKind::MinusEqual:
    case TokenKind::StarEqual:
    case TokenKind::SlashEqual:
    case TokenKind::PercentEqual:
    case TokenKind::AmpEqual:
    case TokenKind::PipeEqual:
    case TokenKind::CaretEqual:
    case TokenKind::LessLessEqual:
    case TokenKind::GreaterGreaterEqual:
      return true;
    default:
      return false;
  }
}

[[nodiscard]] AssignOp assign_op_for(TokenKind kind) {
  switch (kind) {
    case TokenKind::Equal: return AssignOp::Assign;
    case TokenKind::PlusEqual: return AssignOp::AddAssign;
    case TokenKind::MinusEqual: return AssignOp::SubAssign;
    case TokenKind::StarEqual: return AssignOp::MulAssign;
    case TokenKind::SlashEqual: return AssignOp::DivAssign;
    case TokenKind::PercentEqual: return AssignOp::RemAssign;
    case TokenKind::AmpEqual: return AssignOp::AndAssign;
    case TokenKind::PipeEqual: return AssignOp::OrAssign;
    case TokenKind::CaretEqual: return AssignOp::XorAssign;
    case TokenKind::LessLessEqual: return AssignOp::ShlAssign;
    case TokenKind::GreaterGreaterEqual: return AssignOp::ShrAssign;
    default: throw std::logic_error("not an assignment operator token");
  }
}

}  // namespace

Parser::Parser(std::vector<Token> tokens, DiagnosticEngine& diags)
    : tokens_(std::move(tokens)), diags_(diags) {
  if (tokens_.empty() || !tokens_.back().is(TokenKind::EndOfFile)) {
    Token eof;
    eof.kind = TokenKind::EndOfFile;
    tokens_.push_back(eof);
  }
}

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::accept(TokenKind kind) {
  if (at(kind)) {
    advance();
    return true;
  }
  return false;
}

const Token& Parser::expect(TokenKind kind, std::string_view what) {
  if (at(kind)) return advance();
  error_here("expected " + std::string(to_string(kind)) + " " +
             std::string(what) + ", found '" + peek().str() + "'");
  throw ParseError{};
}

void Parser::error_here(std::string message) {
  diags_.error(peek().location(), "parser", std::move(message));
}

void Parser::synchronize_to_statement_boundary() {
  int depth = 0;
  while (!at_end()) {
    const TokenKind k = peek().kind;
    if (depth == 0 && (k == TokenKind::Semicolon || k == TokenKind::RBrace)) {
      if (k == TokenKind::Semicolon) advance();
      return;
    }
    if (k == TokenKind::LBrace) ++depth;
    if (k == TokenKind::RBrace) {
      if (depth == 0) return;
      --depth;
    }
    advance();
  }
}

// ---------------------------------------------------------------------------
// Types and declarators
// ---------------------------------------------------------------------------

bool Parser::at_declaration_start() const {
  const Token& t = peek();
  switch (t.kind) {
    case TokenKind::KwTypedef:
    case TokenKind::KwStatic:
    case TokenKind::KwExtern:
    case TokenKind::KwConst:
    case TokenKind::KwPure:
    case TokenKind::KwInline:
    case TokenKind::KwRegister:
    case TokenKind::KwVolatile:
    case TokenKind::KwUnsigned:
    case TokenKind::KwSigned:
    case TokenKind::KwVoid:
    case TokenKind::KwChar:
    case TokenKind::KwShort:
    case TokenKind::KwInt:
    case TokenKind::KwLong:
    case TokenKind::KwFloat:
    case TokenKind::KwDouble:
    case TokenKind::KwStruct:
    case TokenKind::KwUnion:
    case TokenKind::KwEnum:
      return true;
    case TokenKind::Identifier:
      // A typedef name followed by something that looks like a declarator.
      return typedef_names_.count(t.text) != 0 &&
             (peek(1).is(TokenKind::Identifier) ||
              peek(1).is(TokenKind::Star));
    default:
      return false;
  }
}

bool Parser::looks_like_type(std::size_t ahead) const {
  const Token& t = peek(ahead);
  if (t.is(TokenKind::KwConst) || t.is(TokenKind::KwPure) ||
      t.is(TokenKind::KwVolatile) || t.is(TokenKind::KwStruct) ||
      t.is(TokenKind::KwUnion) || is_type_specifier_keyword(t.kind)) {
    return true;
  }
  return t.is(TokenKind::Identifier) && typedef_names_.count(t.text) != 0;
}

Parser::DeclSpecifiers Parser::parse_decl_specifiers() {
  DeclSpecifiers specs;
  specs.loc = peek().location();

  bool saw_unsigned = false;
  bool saw_signed = false;
  int long_count = 0;
  bool saw_short = false;
  std::optional<BuiltinKind> base;
  std::string struct_tag;
  std::string typedef_name;
  bool is_struct = false;

  for (;;) {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::KwTypedef: specs.is_typedef = true; advance(); continue;
      case TokenKind::KwStatic: specs.is_static = true; advance(); continue;
      case TokenKind::KwExtern: specs.is_extern = true; advance(); continue;
      case TokenKind::KwConst: specs.is_const = true; advance(); continue;
      case TokenKind::KwPure: specs.is_pure = true; advance(); continue;
      case TokenKind::KwInline:
      case TokenKind::KwRegister:
      case TokenKind::KwVolatile:
      case TokenKind::KwRestrict:
        advance();  // accepted and ignored (no semantic effect in this chain)
        continue;
      case TokenKind::KwUnsigned: saw_unsigned = true; advance(); continue;
      case TokenKind::KwSigned: saw_signed = true; advance(); continue;
      case TokenKind::KwShort: saw_short = true; advance(); continue;
      case TokenKind::KwLong: ++long_count; advance(); continue;
      case TokenKind::KwVoid: base = BuiltinKind::Void; advance(); continue;
      case TokenKind::KwChar: base = BuiltinKind::Char; advance(); continue;
      case TokenKind::KwInt: base = BuiltinKind::Int; advance(); continue;
      case TokenKind::KwFloat: base = BuiltinKind::Float; advance(); continue;
      case TokenKind::KwDouble:
        base = BuiltinKind::Double;
        advance();
        continue;
      case TokenKind::KwStruct:
      case TokenKind::KwUnion: {
        advance();
        is_struct = true;
        if (at(TokenKind::Identifier)) struct_tag = advance().str();
        continue;
      }
      case TokenKind::KwEnum: {
        advance();
        if (at(TokenKind::Identifier)) advance();
        base = BuiltinKind::Int;  // enums behave as int in this dialect
        continue;
      }
      case TokenKind::Identifier:
        if (!base && !is_struct && typedef_name.empty() &&
            typedef_names_.count(t.text) != 0) {
          typedef_name = advance().str();
          continue;
        }
        break;
      default:
        break;
    }
    break;
  }

  if (is_struct) {
    specs.base_type = Type::make_struct(struct_tag);
  } else if (!typedef_name.empty()) {
    specs.base_type = Type::make_named(typedef_name);
  } else {
    BuiltinKind k = base.value_or(BuiltinKind::Int);
    if (saw_short) {
      k = saw_unsigned ? BuiltinKind::UShort : BuiltinKind::Short;
    } else if (long_count >= 2) {
      k = saw_unsigned ? BuiltinKind::ULongLong : BuiltinKind::LongLong;
    } else if (long_count == 1) {
      if (base == BuiltinKind::Double) {
        k = BuiltinKind::LongDouble;
      } else {
        k = saw_unsigned ? BuiltinKind::ULong : BuiltinKind::Long;
      }
    } else if (base == BuiltinKind::Char) {
      if (saw_unsigned) k = BuiltinKind::UChar;
      if (saw_signed) k = BuiltinKind::SChar;
    } else if (saw_unsigned) {
      k = BuiltinKind::UInt;
    }
    if (!base && !saw_short && long_count == 0 && !saw_unsigned &&
        !saw_signed) {
      // No type specifier at all: caller decides whether that is an error.
      specs.base_type = nullptr;
      return specs;
    }
    specs.base_type = Type::make_builtin(k);
  }
  if (specs.is_const) specs.base_type = specs.base_type->with_const(true);
  return specs;
}

TypePtr Parser::parse_pointer_suffix(TypePtr base, bool decl_pure) {
  TypePtr type = std::move(base);
  while (at(TokenKind::Star)) {
    advance();
    bool ptr_const = false;
    bool ptr_pure = false;
    while (at(TokenKind::KwConst) || at(TokenKind::KwPure) ||
           at(TokenKind::KwRestrict) || at(TokenKind::KwVolatile)) {
      if (at(TokenKind::KwConst)) ptr_const = true;
      if (at(TokenKind::KwPure)) ptr_pure = true;
      advance();
    }
    type = Type::make_pointer(std::move(type), ptr_const, ptr_pure);
  }
  // The paper's prefix `pure` on a pointer declaration marks the pointer
  // itself: `pure int* p` == pointer that is single-assignment and
  // write-protected all the way down.
  if (decl_pure && type->is_pointer()) {
    type = type->with_pure(true);
  }
  return type;
}

Parser::Declarator Parser::parse_declarator(TypePtr base, bool decl_pure) {
  Declarator d;
  d.type = parse_pointer_suffix(std::move(base), decl_pure);
  d.loc = peek().location();

  if (at(TokenKind::Identifier)) {
    d.name = advance().str();
  }

  // Array suffixes.
  std::vector<std::optional<std::int64_t>> array_dims;
  while (at(TokenKind::LBracket)) {
    advance();
    if (at(TokenKind::RBracket)) {
      array_dims.push_back(std::nullopt);
    } else {
      const Token& size_tok = expect(TokenKind::IntegerLiteral, "array size");
      array_dims.push_back(std::strtoll(size_tok.str().c_str(), nullptr, 0));
    }
    expect(TokenKind::RBracket, "to close array declarator");
  }
  for (auto it = array_dims.rbegin(); it != array_dims.rend(); ++it) {
    d.type = Type::make_array(d.type, *it);
  }

  // Function suffix.
  if (at(TokenKind::LParen)) {
    advance();
    d.is_function = true;
    d.params = parse_parameter_list(d.is_variadic);
    expect(TokenKind::RParen, "to close parameter list");
  }
  return d;
}

std::vector<ParamDecl> Parser::parse_parameter_list(bool& variadic) {
  std::vector<ParamDecl> params;
  variadic = false;
  if (at(TokenKind::RParen)) return params;
  if (at(TokenKind::KwVoid) && peek(1).is(TokenKind::RParen)) {
    advance();
    return params;
  }
  for (;;) {
    if (at(TokenKind::Ellipsis)) {
      advance();
      variadic = true;
      break;
    }
    DeclSpecifiers specs = parse_decl_specifiers();
    if (!specs.base_type) {
      error_here("expected parameter type");
      throw ParseError{};
    }
    Declarator d = parse_declarator(specs.base_type, specs.is_pure);
    ParamDecl p;
    p.name = d.name;
    p.type = d.type;
    p.loc = d.loc;
    params.push_back(std::move(p));
    if (!accept(TokenKind::Comma)) break;
  }
  return params;
}

TypePtr Parser::parse_type_name() {
  DeclSpecifiers specs = parse_decl_specifiers();
  if (!specs.base_type) {
    error_here("expected type name");
    throw ParseError{};
  }
  TypePtr type = parse_pointer_suffix(specs.base_type, specs.is_pure);
  // Abstract array declarator, e.g. sizeof(int[4]).
  while (at(TokenKind::LBracket)) {
    advance();
    std::optional<std::int64_t> size;
    if (at(TokenKind::IntegerLiteral)) {
      size = std::strtoll(advance().str().c_str(), nullptr, 0);
    }
    expect(TokenKind::RBracket, "to close array type");
    type = Type::make_array(type, size);
  }
  // `pure` on a non-pointer cast target still records the qualifier.
  if (specs.is_pure && !type->is_pure) type = type->with_pure(true);
  return type;
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

TranslationUnit Parser::parse_translation_unit() {
  TranslationUnit tu;
  while (!at_end()) {
    try {
      parse_top_level(tu);
    } catch (const ParseError&) {
      synchronize_to_statement_boundary();
    }
  }
  return tu;
}

std::unique_ptr<StructDecl> Parser::parse_struct_definition(
    DeclSpecifiers& specs) {
  auto decl = std::make_unique<StructDecl>();
  decl->tag = specs.base_type->name;
  decl->is_definition = true;
  decl->loc = specs.loc;
  expect(TokenKind::LBrace, "to open struct body");
  while (!at(TokenKind::RBrace) && !at_end()) {
    DeclSpecifiers field_specs = parse_decl_specifiers();
    if (!field_specs.base_type) {
      error_here("expected field type in struct");
      throw ParseError{};
    }
    for (;;) {
      Declarator d = parse_declarator(field_specs.base_type,
                                      field_specs.is_pure);
      decl->fields.push_back(StructField{d.name, d.type});
      if (!accept(TokenKind::Comma)) break;
    }
    expect(TokenKind::Semicolon, "after struct field");
  }
  expect(TokenKind::RBrace, "to close struct body");
  return decl;
}

void Parser::parse_top_level(TranslationUnit& tu) {
  if (at(TokenKind::HashLine)) {
    tu.items.push_back(TopLevelItem{std::string(advance().text)});
    return;
  }
  if (accept(TokenKind::Semicolon)) return;  // stray semicolon

  DeclSpecifiers specs = parse_decl_specifiers();
  if (!specs.base_type) {
    error_here("expected declaration, found '" + peek().str() + "'");
    throw ParseError{};
  }

  // Struct definition (possibly with trailing declarators or typedef name).
  if (specs.base_type->kind == TypeKind::Struct && at(TokenKind::LBrace)) {
    auto struct_decl = parse_struct_definition(specs);
    if (specs.is_typedef) {
      // `typedef struct tag {...} Alias;`
      const Token& alias = expect(TokenKind::Identifier, "typedef name");
      auto td = std::make_unique<TypedefDecl>();
      td->name = alias.str();
      td->underlying = Type::make_struct(struct_decl->tag);
      td->loc = specs.loc;
      typedef_names_.insert(td->name);
      tu.items.push_back(TopLevelItem{std::move(struct_decl)});
      tu.items.push_back(TopLevelItem{std::move(td)});
      expect(TokenKind::Semicolon, "after typedef");
      return;
    }
    tu.items.push_back(TopLevelItem{std::move(struct_decl)});
    expect(TokenKind::Semicolon, "after struct definition");
    return;
  }

  // Typedef of a non-struct type.
  if (specs.is_typedef) {
    Declarator d = parse_declarator(specs.base_type, specs.is_pure);
    auto td = std::make_unique<TypedefDecl>();
    td->name = d.name;
    td->underlying = d.type;
    td->loc = specs.loc;
    typedef_names_.insert(td->name);
    tu.items.push_back(TopLevelItem{std::move(td)});
    expect(TokenKind::Semicolon, "after typedef");
    return;
  }

  // Function or global variable(s).
  bool first = true;
  for (;;) {
    Declarator d = parse_declarator(specs.base_type, specs.is_pure);
    if (d.is_function) {
      auto fn = std::make_unique<FunctionDecl>();
      fn->name = d.name;
      // For functions, the leading `pure` marks the function (Listing 1);
      // strip it back off the return type.
      fn->is_pure = specs.is_pure;
      fn->return_type =
          d.type->is_pure ? d.type->with_pure(false) : d.type;
      fn->returns_pure_pointer = specs.is_pure && d.type->is_pointer();
      fn->is_static = specs.is_static;
      fn->is_variadic = d.is_variadic;
      fn->params = std::move(d.params);
      fn->loc = d.loc;
      if (at(TokenKind::LBrace)) {
        if (!first) {
          error_here("function definition cannot follow other declarators");
          throw ParseError{};
        }
        fn->body = parse_compound();
        tu.items.push_back(TopLevelItem{std::move(fn)});
        return;
      }
      tu.items.push_back(TopLevelItem{std::move(fn)});
    } else {
      auto global = std::make_unique<GlobalVarDecl>();
      global->var.name = d.name;
      global->var.type = d.type;
      global->var.loc = d.loc;
      global->is_static = specs.is_static;
      global->is_extern = specs.is_extern;
      if (accept(TokenKind::Equal)) {
        global->var.init = parse_assignment();
      }
      tu.items.push_back(TopLevelItem{std::move(global)});
    }
    first = false;
    if (!accept(TokenKind::Comma)) break;
  }
  expect(TokenKind::Semicolon, "after declaration");
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

std::unique_ptr<CompoundStmt> Parser::parse_compound() {
  auto block = std::make_unique<CompoundStmt>();
  block->loc = peek().location();
  expect(TokenKind::LBrace, "to open block");
  while (!at(TokenKind::RBrace) && !at_end()) {
    try {
      block->stmts.push_back(parse_statement());
    } catch (const ParseError&) {
      synchronize_to_statement_boundary();
    }
  }
  expect(TokenKind::RBrace, "to close block");
  return block;
}

StmtPtr Parser::parse_statement() {
  const SourceLocation loc = peek().location();
  switch (peek().kind) {
    case TokenKind::LBrace:
      return parse_compound();
    case TokenKind::KwIf:
      return parse_if();
    case TokenKind::KwFor:
      return parse_for();
    case TokenKind::KwWhile:
      return parse_while();
    case TokenKind::KwDo:
      return parse_do_while();
    case TokenKind::KwReturn: {
      advance();
      ExprPtr value;
      if (!at(TokenKind::Semicolon)) value = parse_expression();
      expect(TokenKind::Semicolon, "after return");
      auto s = std::make_unique<ReturnStmt>(std::move(value));
      s->loc = loc;
      return s;
    }
    case TokenKind::KwBreak: {
      advance();
      expect(TokenKind::Semicolon, "after break");
      auto s = std::make_unique<BreakStmt>();
      s->loc = loc;
      return s;
    }
    case TokenKind::KwContinue: {
      advance();
      expect(TokenKind::Semicolon, "after continue");
      auto s = std::make_unique<ContinueStmt>();
      s->loc = loc;
      return s;
    }
    case TokenKind::Semicolon: {
      advance();
      auto s = std::make_unique<NullStmt>();
      s->loc = loc;
      return s;
    }
    case TokenKind::HashLine: {
      auto s = std::make_unique<PragmaStmt>(std::string(advance().text));
      s->loc = loc;
      return s;
    }
    default:
      break;
  }

  if (at_declaration_start()) return parse_declaration_statement();

  ExprPtr e = parse_expression();
  expect(TokenKind::Semicolon, "after expression");
  auto s = std::make_unique<ExprStmt>(std::move(e));
  s->loc = loc;
  return s;
}

StmtPtr Parser::parse_declaration_statement() {
  auto stmt = std::make_unique<DeclStmt>();
  stmt->loc = peek().location();
  DeclSpecifiers specs = parse_decl_specifiers();
  if (!specs.base_type) {
    error_here("expected type in declaration");
    throw ParseError{};
  }
  for (;;) {
    Declarator d = parse_declarator(specs.base_type, specs.is_pure);
    if (d.is_function) {
      // Local function prototypes are legal C; represent the declared name
      // as a variable of pointer-to-function-ish type is overkill here, so
      // we simply skip them (they do not appear in the paper's codes).
      diags_.warning(d.loc, "parser",
                     "local function prototype ignored: " + d.name);
    } else {
      VarDecl v;
      v.name = d.name;
      v.type = d.type;
      v.loc = d.loc;
      v.is_static = specs.is_static;
      if (accept(TokenKind::Equal)) v.init = parse_assignment();
      stmt->decls.push_back(std::move(v));
    }
    if (!accept(TokenKind::Comma)) break;
  }
  expect(TokenKind::Semicolon, "after declaration");
  return stmt;
}

StmtPtr Parser::parse_if() {
  const SourceLocation loc = peek().location();
  expect(TokenKind::KwIf, "");
  expect(TokenKind::LParen, "after if");
  ExprPtr cond = parse_expression();
  expect(TokenKind::RParen, "after if condition");
  StmtPtr then_stmt = parse_statement();
  StmtPtr else_stmt;
  if (accept(TokenKind::KwElse)) else_stmt = parse_statement();
  auto s = std::make_unique<IfStmt>(std::move(cond), std::move(then_stmt),
                                    std::move(else_stmt));
  s->loc = loc;
  return s;
}

StmtPtr Parser::parse_for() {
  const SourceLocation loc = peek().location();
  expect(TokenKind::KwFor, "");
  expect(TokenKind::LParen, "after for");
  auto s = std::make_unique<ForStmt>();
  s->loc = loc;

  if (at(TokenKind::Semicolon)) {
    advance();
    auto n = std::make_unique<NullStmt>();
    n->loc = loc;
    s->init = std::move(n);
  } else if (at_declaration_start()) {
    s->init = parse_declaration_statement();  // consumes ';'
  } else {
    ExprPtr e = parse_expression();
    expect(TokenKind::Semicolon, "after for-init");
    s->init = std::make_unique<ExprStmt>(std::move(e));
  }

  if (!at(TokenKind::Semicolon)) s->cond = parse_expression();
  expect(TokenKind::Semicolon, "after for-condition");
  if (!at(TokenKind::RParen)) s->inc = parse_expression();
  expect(TokenKind::RParen, "after for-increment");
  s->body = parse_statement();
  return s;
}

StmtPtr Parser::parse_while() {
  const SourceLocation loc = peek().location();
  expect(TokenKind::KwWhile, "");
  expect(TokenKind::LParen, "after while");
  ExprPtr cond = parse_expression();
  expect(TokenKind::RParen, "after while condition");
  StmtPtr body = parse_statement();
  auto s = std::make_unique<WhileStmt>(std::move(cond), std::move(body));
  s->loc = loc;
  return s;
}

StmtPtr Parser::parse_do_while() {
  const SourceLocation loc = peek().location();
  expect(TokenKind::KwDo, "");
  StmtPtr body = parse_statement();
  expect(TokenKind::KwWhile, "after do body");
  expect(TokenKind::LParen, "after while");
  ExprPtr cond = parse_expression();
  expect(TokenKind::RParen, "after do-while condition");
  expect(TokenKind::Semicolon, "after do-while");
  auto s = std::make_unique<DoWhileStmt>(std::move(body), std::move(cond));
  s->loc = loc;
  return s;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ExprPtr Parser::parse_standalone_expression() {
  ExprPtr e = parse_expression();
  if (!at_end()) {
    error_here("trailing tokens after expression");
  }
  return e;
}

ExprPtr Parser::parse_expression() {
  ExprPtr e = parse_assignment();
  while (at(TokenKind::Comma)) {
    const SourceLocation loc = peek().location();
    advance();
    ExprPtr rhs = parse_assignment();
    auto c = std::make_unique<BinaryExpr>(BinaryOp::Comma, std::move(e),
                                          std::move(rhs));
    c->loc = loc;
    e = std::move(c);
  }
  return e;
}

ExprPtr Parser::parse_assignment() {
  ExprPtr lhs = parse_conditional();
  if (is_assign_token(peek().kind)) {
    const SourceLocation loc = peek().location();
    const AssignOp op = assign_op_for(advance().kind);
    ExprPtr rhs = parse_assignment();  // right-associative
    auto a = std::make_unique<AssignExpr>(op, std::move(lhs), std::move(rhs));
    a->loc = loc;
    return a;
  }
  return lhs;
}

ExprPtr Parser::parse_conditional() {
  ExprPtr cond = parse_binary(1);
  if (at(TokenKind::Question)) {
    const SourceLocation loc = peek().location();
    advance();
    ExprPtr then_expr = parse_expression();
    expect(TokenKind::Colon, "in conditional expression");
    ExprPtr else_expr = parse_conditional();
    auto c = std::make_unique<ConditionalExpr>(
        std::move(cond), std::move(then_expr), std::move(else_expr));
    c->loc = loc;
    return c;
  }
  return cond;
}

ExprPtr Parser::parse_binary(int min_precedence) {
  ExprPtr lhs = parse_cast_expression();
  for (;;) {
    const int prec = precedence_of(peek().kind);
    if (prec < min_precedence) return lhs;
    const SourceLocation loc = peek().location();
    const BinaryOp op = binary_op_for(advance().kind);
    ExprPtr rhs = parse_binary(prec + 1);  // left-associative
    auto b =
        std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
    b->loc = loc;
    lhs = std::move(b);
  }
}

ExprPtr Parser::parse_cast_expression() {
  if (at(TokenKind::LParen) && looks_like_type(1)) {
    const SourceLocation loc = peek().location();
    advance();  // '('
    TypePtr type = parse_type_name();
    expect(TokenKind::RParen, "to close cast");
    ExprPtr operand = parse_cast_expression();
    auto c = std::make_unique<CastExpr>(std::move(type), std::move(operand));
    c->loc = loc;
    return c;
  }
  return parse_unary();
}

ExprPtr Parser::parse_unary() {
  const SourceLocation loc = peek().location();
  switch (peek().kind) {
    case TokenKind::PlusPlus: {
      advance();
      auto e = std::make_unique<UnaryExpr>(UnaryOp::PreInc, parse_unary());
      e->loc = loc;
      return e;
    }
    case TokenKind::MinusMinus: {
      advance();
      auto e = std::make_unique<UnaryExpr>(UnaryOp::PreDec, parse_unary());
      e->loc = loc;
      return e;
    }
    case TokenKind::Plus: {
      advance();
      auto e = std::make_unique<UnaryExpr>(UnaryOp::Plus,
                                           parse_cast_expression());
      e->loc = loc;
      return e;
    }
    case TokenKind::Minus: {
      advance();
      auto e = std::make_unique<UnaryExpr>(UnaryOp::Minus,
                                           parse_cast_expression());
      e->loc = loc;
      return e;
    }
    case TokenKind::Exclaim: {
      advance();
      auto e =
          std::make_unique<UnaryExpr>(UnaryOp::Not, parse_cast_expression());
      e->loc = loc;
      return e;
    }
    case TokenKind::Tilde: {
      advance();
      auto e = std::make_unique<UnaryExpr>(UnaryOp::BitNot,
                                           parse_cast_expression());
      e->loc = loc;
      return e;
    }
    case TokenKind::Star: {
      advance();
      auto e =
          std::make_unique<UnaryExpr>(UnaryOp::Deref,
                                      parse_cast_expression());
      e->loc = loc;
      return e;
    }
    case TokenKind::Amp: {
      advance();
      auto e = std::make_unique<UnaryExpr>(UnaryOp::AddrOf,
                                           parse_cast_expression());
      e->loc = loc;
      return e;
    }
    case TokenKind::KwSizeof: {
      advance();
      if (at(TokenKind::LParen) && looks_like_type(1)) {
        advance();
        TypePtr type = parse_type_name();
        expect(TokenKind::RParen, "to close sizeof");
        auto e = std::make_unique<SizeofExpr>(std::move(type), nullptr);
        e->loc = loc;
        return e;
      }
      auto e = std::make_unique<SizeofExpr>(nullptr, parse_unary());
      e->loc = loc;
      return e;
    }
    default:
      return parse_postfix();
  }
}

ExprPtr Parser::parse_postfix() {
  ExprPtr e = parse_primary();
  for (;;) {
    const SourceLocation loc = peek().location();
    if (at(TokenKind::LBracket)) {
      advance();
      ExprPtr index = parse_expression();
      expect(TokenKind::RBracket, "to close subscript");
      auto n = std::make_unique<IndexExpr>(std::move(e), std::move(index));
      n->loc = loc;
      e = std::move(n);
      continue;
    }
    if (at(TokenKind::LParen)) {
      advance();
      std::vector<ExprPtr> args;
      if (!at(TokenKind::RParen)) {
        for (;;) {
          args.push_back(parse_assignment());
          if (!accept(TokenKind::Comma)) break;
        }
      }
      expect(TokenKind::RParen, "to close call");
      auto n = std::make_unique<CallExpr>(std::move(e), std::move(args));
      n->loc = loc;
      e = std::move(n);
      continue;
    }
    if (at(TokenKind::Dot) || at(TokenKind::Arrow)) {
      const bool arrow = advance().is(TokenKind::Arrow);
      const Token& member = expect(TokenKind::Identifier, "member name");
      auto n =
          std::make_unique<MemberExpr>(std::move(e), member.str(), arrow);
      n->loc = loc;
      e = std::move(n);
      continue;
    }
    if (at(TokenKind::PlusPlus)) {
      advance();
      auto n = std::make_unique<UnaryExpr>(UnaryOp::PostInc, std::move(e));
      n->loc = loc;
      e = std::move(n);
      continue;
    }
    if (at(TokenKind::MinusMinus)) {
      advance();
      auto n = std::make_unique<UnaryExpr>(UnaryOp::PostDec, std::move(e));
      n->loc = loc;
      e = std::move(n);
      continue;
    }
    return e;
  }
}

ExprPtr Parser::parse_primary() {
  const Token& t = peek();
  const SourceLocation loc = t.location();
  switch (t.kind) {
    case TokenKind::IntegerLiteral: {
      advance();
      auto e = std::make_unique<IntLiteralExpr>(
          std::strtoll(t.str().c_str(), nullptr, 0), t.str());
      e->loc = loc;
      return e;
    }
    case TokenKind::FloatLiteral: {
      advance();
      auto e = std::make_unique<FloatLiteralExpr>(
          std::strtod(t.str().c_str(), nullptr), t.str());
      e->loc = loc;
      return e;
    }
    case TokenKind::CharLiteral: {
      advance();
      auto e = std::make_unique<CharLiteralExpr>(t.str());
      e->loc = loc;
      return e;
    }
    case TokenKind::StringLiteral: {
      advance();
      std::string spelling = t.str();
      // Adjacent string literal concatenation.
      while (at(TokenKind::StringLiteral)) spelling += " " + advance().str();
      auto e = std::make_unique<StringLiteralExpr>(std::move(spelling));
      e->loc = loc;
      return e;
    }
    case TokenKind::Identifier: {
      advance();
      auto e = std::make_unique<IdentExpr>(t.str());
      e->loc = loc;
      return e;
    }
    case TokenKind::LParen: {
      advance();
      ExprPtr e = parse_expression();
      expect(TokenKind::RParen, "to close parenthesized expression");
      return e;
    }
    default:
      error_here("expected expression, found '" + t.str() + "'");
      throw ParseError{};
  }
}

TranslationUnit parse(const SourceBuffer& buffer, DiagnosticEngine& diags) {
  Parser parser(lex(buffer, diags), diags);
  TranslationUnit tu = parser.parse_translation_unit();
  tu.source_name = buffer.name();
  return tu;
}

}  // namespace purec

// Recursive-descent parser for the purec C dialect: the C11 subset used by
// the paper's listings and evaluation applications, plus the `pure`
// extension on functions and pointer declarations.
//
// Placement rules for `pure` (paper §3.1, Listing 1):
//   pure int* func(pure int* p1, int p2);
//   ^~~~ marks the *function* pure        ^~~~ marks the *pointer* pure
// and in casts: `(pure int*)globalPtr`.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ast/decl.h"
#include "lexer/token.h"
#include "support/diagnostics.h"
#include "support/source_buffer.h"

namespace purec {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticEngine& diags);

  /// Parses a whole translation unit. Errors are reported to the
  /// DiagnosticEngine; the parser recovers at statement/declaration
  /// boundaries so one error does not hide the rest of the file.
  [[nodiscard]] TranslationUnit parse_translation_unit();

  /// Parses a single expression (used by tests and by the chain when
  /// re-materializing substituted calls).
  [[nodiscard]] ExprPtr parse_standalone_expression();

 private:
  // -- token plumbing -------------------------------------------------------
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const;
  [[nodiscard]] bool at(TokenKind kind) const { return peek().is(kind); }
  [[nodiscard]] bool at_end() const { return at(TokenKind::EndOfFile); }
  const Token& advance();
  bool accept(TokenKind kind);
  const Token& expect(TokenKind kind, std::string_view what);
  void error_here(std::string message);
  void synchronize_to_statement_boundary();

  // -- type machinery -------------------------------------------------------
  struct DeclSpecifiers {
    TypePtr base_type;
    bool is_typedef = false;
    bool is_static = false;
    bool is_extern = false;
    bool is_const = false;
    bool is_pure = false;  // leading `pure` — meaning depends on declarator
    SourceLocation loc;
  };
  /// True if the current token could begin a declaration.
  [[nodiscard]] bool at_declaration_start() const;
  /// True if the token sequence starting at `ahead` looks like a type name
  /// (for cast disambiguation).
  [[nodiscard]] bool looks_like_type(std::size_t ahead) const;
  [[nodiscard]] DeclSpecifiers parse_decl_specifiers();
  /// Parses `*`s and qualifiers, wrapping `base`.
  [[nodiscard]] TypePtr parse_pointer_suffix(TypePtr base, bool decl_pure);

  struct Declarator {
    std::string name;
    TypePtr type;              // fully-wrapped type
    bool is_function = false;
    std::vector<ParamDecl> params;
    bool is_variadic = false;
    SourceLocation loc;
  };
  [[nodiscard]] Declarator parse_declarator(TypePtr base, bool decl_pure);
  [[nodiscard]] TypePtr parse_type_name();  // for casts / sizeof

  // -- declarations ---------------------------------------------------------
  void parse_top_level(TranslationUnit& tu);
  [[nodiscard]] std::unique_ptr<StructDecl> parse_struct_definition(
      DeclSpecifiers& specs);
  [[nodiscard]] std::vector<ParamDecl> parse_parameter_list(bool& variadic);

  // -- statements -----------------------------------------------------------
  [[nodiscard]] StmtPtr parse_statement();
  [[nodiscard]] std::unique_ptr<CompoundStmt> parse_compound();
  [[nodiscard]] StmtPtr parse_declaration_statement();
  [[nodiscard]] StmtPtr parse_for();
  [[nodiscard]] StmtPtr parse_if();
  [[nodiscard]] StmtPtr parse_while();
  [[nodiscard]] StmtPtr parse_do_while();

  // -- expressions (precedence climbing) ------------------------------------
  [[nodiscard]] ExprPtr parse_expression();  // includes comma
  [[nodiscard]] ExprPtr parse_assignment();
  [[nodiscard]] ExprPtr parse_conditional();
  [[nodiscard]] ExprPtr parse_binary(int min_precedence);
  [[nodiscard]] ExprPtr parse_cast_expression();
  [[nodiscard]] ExprPtr parse_unary();
  [[nodiscard]] ExprPtr parse_postfix();
  [[nodiscard]] ExprPtr parse_primary();

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  DiagnosticEngine& diags_;
  std::set<std::string, std::less<>> typedef_names_;
};

/// End-to-end convenience: lex + parse.
[[nodiscard]] TranslationUnit parse(const SourceBuffer& buffer,
                                    DiagnosticEngine& diags);

}  // namespace purec

#include "lexer/lexer.h"

#include <cctype>

namespace purec {

namespace {

[[nodiscard]] bool is_ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

[[nodiscard]] bool is_ident_continue(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

[[nodiscard]] bool is_digit(char c) noexcept {
  return c >= '0' && c <= '9';
}

[[nodiscard]] bool is_hex_digit(char c) noexcept {
  return is_digit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}

}  // namespace

Lexer::Lexer(const SourceBuffer& buffer, DiagnosticEngine& diags)
    : buffer_(buffer), diags_(diags), text_(buffer.text()) {}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> tokens;
  for (;;) {
    Token t = next();
    const bool done = t.is(TokenKind::EndOfFile);
    tokens.push_back(t);
    if (done) break;
  }
  return tokens;
}

char Lexer::peek(std::size_t ahead) const noexcept {
  const std::size_t i = pos_ + ahead;
  return i < text_.size() ? text_[i] : '\0';
}

char Lexer::advance() noexcept {
  return pos_ < text_.size() ? text_[pos_++] : '\0';
}

void Lexer::skip_whitespace_and_comments() {
  for (;;) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
        c == '\f') {
      ++pos_;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (!at_end() && peek() != '\n') ++pos_;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const std::uint32_t begin = pos_;
      pos_ += 2;
      bool closed = false;
      while (!at_end()) {
        if (peek() == '*' && peek(1) == '/') {
          pos_ += 2;
          closed = true;
          break;
        }
        ++pos_;
      }
      if (!closed) {
        diags_.error(buffer_.location_for_offset(begin), "lexer",
                     "unterminated block comment");
      }
      continue;
    }
    break;
  }
}

Token Lexer::make_token(TokenKind kind, std::uint32_t begin) const {
  Token t;
  t.kind = kind;
  t.text = text_.substr(begin, pos_ - begin);
  t.range = SourceRange{buffer_.location_for_offset(begin),
                        buffer_.location_for_offset(pos_)};
  return t;
}

Token Lexer::next() {
  skip_whitespace_and_comments();
  const std::uint32_t begin = pos_;
  if (at_end()) return make_token(TokenKind::EndOfFile, begin);

  const char c = peek();
  if (is_ident_start(c)) return lex_identifier_or_keyword(begin);
  if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
    return lex_number(begin);
  }
  if (c == '\'') return lex_char_literal(begin);
  if (c == '"') return lex_string_literal(begin);
  if (c == '#') return lex_hash_line(begin);
  return lex_punctuation(begin);
}

Token Lexer::lex_identifier_or_keyword(std::uint32_t begin) {
  while (!at_end() && is_ident_continue(peek())) ++pos_;
  Token t = make_token(TokenKind::Identifier, begin);
  t.kind = keyword_kind(t.text);
  return t;
}

Token Lexer::lex_number(std::uint32_t begin) {
  bool is_float = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    pos_ += 2;
    while (!at_end() && is_hex_digit(peek())) ++pos_;
  } else {
    while (!at_end() && is_digit(peek())) ++pos_;
    if (peek() == '.') {
      is_float = true;
      ++pos_;
      while (!at_end() && is_digit(peek())) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      char after = peek(1);
      std::size_t skip = 1;
      if (after == '+' || after == '-') {
        after = peek(2);
        skip = 2;
      }
      if (is_digit(after)) {
        is_float = true;
        pos_ += skip;
        while (!at_end() && is_digit(peek())) ++pos_;
      }
    }
  }
  // Suffixes: f/F/l/L for floats, u/U/l/L (incl. ll) for integers.
  if (is_float) {
    if (peek() == 'f' || peek() == 'F' || peek() == 'l' || peek() == 'L') {
      ++pos_;
    }
  } else {
    while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L') {
      ++pos_;
    }
    if (peek() == 'f' || peek() == 'F') {  // "1f" is not valid C, flag it
      diags_.error(buffer_.location_for_offset(pos_), "lexer",
                   "invalid 'f' suffix on integer literal");
      ++pos_;
    }
  }
  return make_token(is_float ? TokenKind::FloatLiteral
                             : TokenKind::IntegerLiteral,
                    begin);
}

Token Lexer::lex_char_literal(std::uint32_t begin) {
  ++pos_;  // opening quote
  bool closed = false;
  while (!at_end()) {
    const char c = advance();
    if (c == '\\' && !at_end()) {
      ++pos_;  // skip escaped char
      continue;
    }
    if (c == '\'') {
      closed = true;
      break;
    }
    if (c == '\n') break;
  }
  if (!closed) {
    diags_.error(buffer_.location_for_offset(begin), "lexer",
                 "unterminated character literal");
    return make_token(TokenKind::Invalid, begin);
  }
  return make_token(TokenKind::CharLiteral, begin);
}

Token Lexer::lex_string_literal(std::uint32_t begin) {
  ++pos_;  // opening quote
  bool closed = false;
  while (!at_end()) {
    const char c = advance();
    if (c == '\\' && !at_end()) {
      ++pos_;
      continue;
    }
    if (c == '"') {
      closed = true;
      break;
    }
    if (c == '\n') break;
  }
  if (!closed) {
    diags_.error(buffer_.location_for_offset(begin), "lexer",
                 "unterminated string literal");
    return make_token(TokenKind::Invalid, begin);
  }
  return make_token(TokenKind::StringLiteral, begin);
}

Token Lexer::lex_hash_line(std::uint32_t begin) {
  // Consume to end of line, honoring backslash-newline continuations.
  while (!at_end()) {
    if (peek() == '\\' && peek(1) == '\n') {
      pos_ += 2;
      continue;
    }
    if (peek() == '\n') break;
    ++pos_;
  }
  return make_token(TokenKind::HashLine, begin);
}

Token Lexer::lex_punctuation(std::uint32_t begin) {
  const char c = advance();
  const auto two = [&](char second, TokenKind paired, TokenKind single) {
    if (peek() == second) {
      ++pos_;
      return paired;
    }
    return single;
  };

  switch (c) {
    case '(': return make_token(TokenKind::LParen, begin);
    case ')': return make_token(TokenKind::RParen, begin);
    case '{': return make_token(TokenKind::LBrace, begin);
    case '}': return make_token(TokenKind::RBrace, begin);
    case '[': return make_token(TokenKind::LBracket, begin);
    case ']': return make_token(TokenKind::RBracket, begin);
    case ';': return make_token(TokenKind::Semicolon, begin);
    case ',': return make_token(TokenKind::Comma, begin);
    case '~': return make_token(TokenKind::Tilde, begin);
    case '?': return make_token(TokenKind::Question, begin);
    case ':': return make_token(TokenKind::Colon, begin);
    case '.':
      if (peek() == '.' && peek(1) == '.') {
        pos_ += 2;
        return make_token(TokenKind::Ellipsis, begin);
      }
      return make_token(TokenKind::Dot, begin);
    case '+':
      if (peek() == '+') {
        ++pos_;
        return make_token(TokenKind::PlusPlus, begin);
      }
      return make_token(two('=', TokenKind::PlusEqual, TokenKind::Plus),
                        begin);
    case '-':
      if (peek() == '-') {
        ++pos_;
        return make_token(TokenKind::MinusMinus, begin);
      }
      if (peek() == '>') {
        ++pos_;
        return make_token(TokenKind::Arrow, begin);
      }
      return make_token(two('=', TokenKind::MinusEqual, TokenKind::Minus),
                        begin);
    case '*':
      return make_token(two('=', TokenKind::StarEqual, TokenKind::Star),
                        begin);
    case '/':
      return make_token(two('=', TokenKind::SlashEqual, TokenKind::Slash),
                        begin);
    case '%':
      return make_token(
          two('=', TokenKind::PercentEqual, TokenKind::Percent), begin);
    case '&':
      if (peek() == '&') {
        ++pos_;
        return make_token(TokenKind::AmpAmp, begin);
      }
      return make_token(two('=', TokenKind::AmpEqual, TokenKind::Amp), begin);
    case '|':
      if (peek() == '|') {
        ++pos_;
        return make_token(TokenKind::PipePipe, begin);
      }
      return make_token(two('=', TokenKind::PipeEqual, TokenKind::Pipe),
                        begin);
    case '^':
      return make_token(two('=', TokenKind::CaretEqual, TokenKind::Caret),
                        begin);
    case '!':
      return make_token(
          two('=', TokenKind::ExclaimEqual, TokenKind::Exclaim), begin);
    case '=':
      return make_token(two('=', TokenKind::EqualEqual, TokenKind::Equal),
                        begin);
    case '<':
      if (peek() == '<') {
        ++pos_;
        return make_token(
            two('=', TokenKind::LessLessEqual, TokenKind::LessLess), begin);
      }
      return make_token(two('=', TokenKind::LessEqual, TokenKind::Less),
                        begin);
    case '>':
      if (peek() == '>') {
        ++pos_;
        return make_token(two('=', TokenKind::GreaterGreaterEqual,
                              TokenKind::GreaterGreater),
                          begin);
      }
      return make_token(two('=', TokenKind::GreaterEqual, TokenKind::Greater),
                        begin);
    default:
      diags_.error(buffer_.location_for_offset(begin), "lexer",
                   std::string("invalid character '") + c + "'");
      return make_token(TokenKind::Invalid, begin);
  }
}

std::vector<Token> lex(const SourceBuffer& buffer, DiagnosticEngine& diags) {
  return Lexer(buffer, diags).lex_all();
}

}  // namespace purec

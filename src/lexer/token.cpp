#include "lexer/token.h"

#include <unordered_map>

namespace purec {

std::string_view to_string(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::EndOfFile: return "<eof>";
    case TokenKind::Invalid: return "<invalid>";
    case TokenKind::Identifier: return "identifier";
    case TokenKind::IntegerLiteral: return "integer literal";
    case TokenKind::FloatLiteral: return "float literal";
    case TokenKind::CharLiteral: return "char literal";
    case TokenKind::StringLiteral: return "string literal";
    case TokenKind::KwAuto: return "auto";
    case TokenKind::KwBreak: return "break";
    case TokenKind::KwCase: return "case";
    case TokenKind::KwChar: return "char";
    case TokenKind::KwConst: return "const";
    case TokenKind::KwContinue: return "continue";
    case TokenKind::KwDefault: return "default";
    case TokenKind::KwDo: return "do";
    case TokenKind::KwDouble: return "double";
    case TokenKind::KwElse: return "else";
    case TokenKind::KwEnum: return "enum";
    case TokenKind::KwExtern: return "extern";
    case TokenKind::KwFloat: return "float";
    case TokenKind::KwFor: return "for";
    case TokenKind::KwGoto: return "goto";
    case TokenKind::KwIf: return "if";
    case TokenKind::KwInline: return "inline";
    case TokenKind::KwInt: return "int";
    case TokenKind::KwLong: return "long";
    case TokenKind::KwRegister: return "register";
    case TokenKind::KwRestrict: return "restrict";
    case TokenKind::KwReturn: return "return";
    case TokenKind::KwShort: return "short";
    case TokenKind::KwSigned: return "signed";
    case TokenKind::KwSizeof: return "sizeof";
    case TokenKind::KwStatic: return "static";
    case TokenKind::KwStruct: return "struct";
    case TokenKind::KwSwitch: return "switch";
    case TokenKind::KwTypedef: return "typedef";
    case TokenKind::KwUnion: return "union";
    case TokenKind::KwUnsigned: return "unsigned";
    case TokenKind::KwVoid: return "void";
    case TokenKind::KwVolatile: return "volatile";
    case TokenKind::KwWhile: return "while";
    case TokenKind::KwPure: return "pure";
    case TokenKind::LParen: return "(";
    case TokenKind::RParen: return ")";
    case TokenKind::LBrace: return "{";
    case TokenKind::RBrace: return "}";
    case TokenKind::LBracket: return "[";
    case TokenKind::RBracket: return "]";
    case TokenKind::Semicolon: return ";";
    case TokenKind::Comma: return ",";
    case TokenKind::Dot: return ".";
    case TokenKind::Arrow: return "->";
    case TokenKind::Ellipsis: return "...";
    case TokenKind::Plus: return "+";
    case TokenKind::Minus: return "-";
    case TokenKind::Star: return "*";
    case TokenKind::Slash: return "/";
    case TokenKind::Percent: return "%";
    case TokenKind::PlusPlus: return "++";
    case TokenKind::MinusMinus: return "--";
    case TokenKind::Amp: return "&";
    case TokenKind::Pipe: return "|";
    case TokenKind::Caret: return "^";
    case TokenKind::Tilde: return "~";
    case TokenKind::Exclaim: return "!";
    case TokenKind::AmpAmp: return "&&";
    case TokenKind::PipePipe: return "||";
    case TokenKind::Less: return "<";
    case TokenKind::Greater: return ">";
    case TokenKind::LessEqual: return "<=";
    case TokenKind::GreaterEqual: return ">=";
    case TokenKind::EqualEqual: return "==";
    case TokenKind::ExclaimEqual: return "!=";
    case TokenKind::LessLess: return "<<";
    case TokenKind::GreaterGreater: return ">>";
    case TokenKind::Question: return "?";
    case TokenKind::Colon: return ":";
    case TokenKind::Equal: return "=";
    case TokenKind::PlusEqual: return "+=";
    case TokenKind::MinusEqual: return "-=";
    case TokenKind::StarEqual: return "*=";
    case TokenKind::SlashEqual: return "/=";
    case TokenKind::PercentEqual: return "%=";
    case TokenKind::AmpEqual: return "&=";
    case TokenKind::PipeEqual: return "|=";
    case TokenKind::CaretEqual: return "^=";
    case TokenKind::LessLessEqual: return "<<=";
    case TokenKind::GreaterGreaterEqual: return ">>=";
    case TokenKind::HashLine: return "<preprocessor line>";
  }
  return "<unknown>";
}

bool is_type_specifier_keyword(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::KwChar:
    case TokenKind::KwDouble:
    case TokenKind::KwFloat:
    case TokenKind::KwInt:
    case TokenKind::KwLong:
    case TokenKind::KwShort:
    case TokenKind::KwSigned:
    case TokenKind::KwUnsigned:
    case TokenKind::KwVoid:
    case TokenKind::KwStruct:
    case TokenKind::KwUnion:
    case TokenKind::KwEnum:
      return true;
    default:
      return false;
  }
}

TokenKind keyword_kind(std::string_view text) noexcept {
  static const std::unordered_map<std::string_view, TokenKind> kKeywords = {
      {"auto", TokenKind::KwAuto},       {"break", TokenKind::KwBreak},
      {"case", TokenKind::KwCase},       {"char", TokenKind::KwChar},
      {"const", TokenKind::KwConst},     {"continue", TokenKind::KwContinue},
      {"default", TokenKind::KwDefault}, {"do", TokenKind::KwDo},
      {"double", TokenKind::KwDouble},   {"else", TokenKind::KwElse},
      {"enum", TokenKind::KwEnum},       {"extern", TokenKind::KwExtern},
      {"float", TokenKind::KwFloat},     {"for", TokenKind::KwFor},
      {"goto", TokenKind::KwGoto},       {"if", TokenKind::KwIf},
      {"inline", TokenKind::KwInline},   {"int", TokenKind::KwInt},
      {"long", TokenKind::KwLong},       {"register", TokenKind::KwRegister},
      {"restrict", TokenKind::KwRestrict},
      {"return", TokenKind::KwReturn},   {"short", TokenKind::KwShort},
      {"signed", TokenKind::KwSigned},   {"sizeof", TokenKind::KwSizeof},
      {"static", TokenKind::KwStatic},   {"struct", TokenKind::KwStruct},
      {"switch", TokenKind::KwSwitch},   {"typedef", TokenKind::KwTypedef},
      {"union", TokenKind::KwUnion},     {"unsigned", TokenKind::KwUnsigned},
      {"void", TokenKind::KwVoid},       {"volatile", TokenKind::KwVolatile},
      {"while", TokenKind::KwWhile},     {"pure", TokenKind::KwPure},
  };
  const auto it = kKeywords.find(text);
  return it == kKeywords.end() ? TokenKind::Identifier : it->second;
}

}  // namespace purec

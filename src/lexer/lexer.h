// Hand-written lexer for the purec C dialect. Stands in for the AntLR
// C11 lexer in the paper's chain.
#pragma once

#include <vector>

#include "lexer/token.h"
#include "support/diagnostics.h"
#include "support/source_buffer.h"

namespace purec {

/// Tokenizes a SourceBuffer. Comments and whitespace are skipped;
/// preprocessor lines (`#...` to end of line, honoring line continuations)
/// become single HashLine tokens so later passes can carry pragmas through
/// unchanged. Invalid characters produce diagnostics plus Invalid tokens,
/// and lexing continues, so one bad byte doesn't hide later errors.
class Lexer {
 public:
  Lexer(const SourceBuffer& buffer, DiagnosticEngine& diags);

  /// Lexes the entire buffer. The returned vector always ends with an
  /// EndOfFile token.
  [[nodiscard]] std::vector<Token> lex_all();

 private:
  [[nodiscard]] Token next();
  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept;
  char advance() noexcept;
  void skip_whitespace_and_comments();

  [[nodiscard]] Token make_token(TokenKind kind, std::uint32_t begin) const;
  [[nodiscard]] Token lex_identifier_or_keyword(std::uint32_t begin);
  [[nodiscard]] Token lex_number(std::uint32_t begin);
  [[nodiscard]] Token lex_char_literal(std::uint32_t begin);
  [[nodiscard]] Token lex_string_literal(std::uint32_t begin);
  [[nodiscard]] Token lex_hash_line(std::uint32_t begin);
  [[nodiscard]] Token lex_punctuation(std::uint32_t begin);

  const SourceBuffer& buffer_;
  DiagnosticEngine& diags_;
  std::string_view text_;
  std::uint32_t pos_ = 0;
};

/// Convenience wrapper used everywhere in tests.
[[nodiscard]] std::vector<Token> lex(const SourceBuffer& buffer,
                                     DiagnosticEngine& diags);

}  // namespace purec

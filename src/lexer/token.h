// Token definitions for the purec C dialect (C11 subset + `pure`).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/source_location.h"

namespace purec {

enum class TokenKind : std::uint8_t {
  // Bookkeeping
  EndOfFile,
  Invalid,

  // Literals & names
  Identifier,
  IntegerLiteral,
  FloatLiteral,
  CharLiteral,
  StringLiteral,

  // Keywords (C subset)
  KwAuto, KwBreak, KwCase, KwChar, KwConst, KwContinue, KwDefault, KwDo,
  KwDouble, KwElse, KwEnum, KwExtern, KwFloat, KwFor, KwGoto, KwIf,
  KwInline, KwInt, KwLong, KwRegister, KwRestrict, KwReturn, KwShort,
  KwSigned, KwSizeof, KwStatic, KwStruct, KwSwitch, KwTypedef, KwUnion,
  KwUnsigned, KwVoid, KwVolatile, KwWhile,
  // The paper's extension.
  KwPure,

  // Punctuation / operators
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semicolon, Comma, Dot, Arrow, Ellipsis,
  Plus, Minus, Star, Slash, Percent,
  PlusPlus, MinusMinus,
  Amp, Pipe, Caret, Tilde, Exclaim,
  AmpAmp, PipePipe,
  Less, Greater, LessEqual, GreaterEqual, EqualEqual, ExclaimEqual,
  LessLess, GreaterGreater,
  Question, Colon,
  Equal, PlusEqual, MinusEqual, StarEqual, SlashEqual, PercentEqual,
  AmpEqual, PipeEqual, CaretEqual, LessLessEqual, GreaterGreaterEqual,

  // Preserved preprocessor line (the chain keeps pragmas/defines it does
  // not interpret as opaque lines attached to the token stream).
  HashLine,
};

[[nodiscard]] std::string_view to_string(TokenKind kind) noexcept;

/// True for keywords that start a declaration-specifier sequence.
[[nodiscard]] bool is_type_specifier_keyword(TokenKind kind) noexcept;

struct Token {
  TokenKind kind = TokenKind::Invalid;
  /// Points into the originating SourceBuffer (or into the lexer's string
  /// table for tokens synthesized by the chain).
  std::string_view text;
  SourceRange range;

  [[nodiscard]] bool is(TokenKind k) const noexcept { return kind == k; }
  [[nodiscard]] bool is_keyword() const noexcept {
    return kind >= TokenKind::KwAuto && kind <= TokenKind::KwPure;
  }
  [[nodiscard]] SourceLocation location() const noexcept {
    return range.begin;
  }
  [[nodiscard]] std::string str() const { return std::string(text); }
};

/// Keyword lookup: returns TokenKind::Identifier if `text` is not a keyword.
[[nodiscard]] TokenKind keyword_kind(std::string_view text) noexcept;

}  // namespace purec

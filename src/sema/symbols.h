// Name resolution for one translation unit: classifies every identifier
// occurrence as local / parameter / global / function, with its declared
// type. The purity checker and the polyhedral extractor both consume this.
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/decl.h"
#include "support/diagnostics.h"

namespace purec {

enum class SymbolKind : std::uint8_t {
  Local,
  Param,
  Global,
  Function,
  Unknown,  // undeclared: extern function or external variable
};

struct Symbol {
  std::string name;
  SymbolKind kind = SymbolKind::Unknown;
  TypePtr type;                // null for Unknown / Function
  SourceLocation decl_loc;
  const FunctionDecl* function = nullptr;  // for kind == Function
};

/// The written-through "shape" of an lvalue: Bare (the variable itself) or
/// Through (subscript / deref / member — i.e. writes to referenced storage).
enum class LvalueShape : std::uint8_t { Bare, Through, Other };

[[nodiscard]] LvalueShape lvalue_shape(const Expr& e);

/// Per-function resolution map keyed by IdentExpr node. Nodes not present
/// resolve to Unknown.
class FunctionScopeInfo {
 public:
  [[nodiscard]] const Symbol* resolve(const IdentExpr& ident) const {
    const auto it = resolutions_.find(&ident);
    return it == resolutions_.end() ? nullptr : &it->second;
  }

  /// Root symbol of an lvalue expression: the variable ultimately written
  /// when assigning through the expression (e.g. `a[i].x` -> `a`,
  /// `*p` -> `p`). Returns nullptr for unresolvable shapes.
  [[nodiscard]] const Symbol* lvalue_root(const Expr& e) const;

  std::unordered_map<const IdentExpr*, Symbol> resolutions_;
};

/// Whole-TU symbol info.
class SymbolTable {
 public:
  /// Builds symbol info for every function definition in `tu`.
  /// Re-declaration errors are reported to `diags`.
  static SymbolTable build(const TranslationUnit& tu,
                           DiagnosticEngine& diags);

  [[nodiscard]] const FunctionScopeInfo* scope_for(
      const FunctionDecl& fn) const {
    const auto it = function_scopes_.find(&fn);
    return it == function_scopes_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const FunctionDecl* find_function(
      const std::string& n) const {
    const auto it = functions_.find(n);
    return it == functions_.end() ? nullptr : it->second;
  }

  [[nodiscard]] const GlobalVarDecl* find_global(const std::string& n) const {
    const auto it = globals_.find(n);
    return it == globals_.end() ? nullptr : it->second;
  }

  [[nodiscard]] const std::map<std::string, const FunctionDecl*>& functions()
      const {
    return functions_;
  }

 private:
  std::map<std::string, const FunctionDecl*> functions_;
  std::map<std::string, const GlobalVarDecl*> globals_;
  std::unordered_map<const FunctionDecl*, FunctionScopeInfo> function_scopes_;
};

}  // namespace purec

#include "sema/symbols.h"

#include <memory>

#include "ast/walk.h"

namespace purec {

namespace {

/// Lexical-scope walker: maintains a scope stack while visiting a function
/// body and records a resolution for every IdentExpr.
class Resolver {
 public:
  Resolver(const std::map<std::string, const FunctionDecl*>& functions,
           const std::map<std::string, const GlobalVarDecl*>& globals,
           FunctionScopeInfo& out)
      : functions_(functions), globals_(globals), out_(out) {}

  void run(const FunctionDecl& fn) {
    push_scope();
    for (const ParamDecl& p : fn.params) {
      if (p.name.empty()) continue;
      declare(Symbol{p.name, SymbolKind::Param, p.type, p.loc, nullptr});
    }
    if (fn.body) visit_stmt(*fn.body);
    pop_scope();
  }

 private:
  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }

  void declare(Symbol sym) { scopes_.back()[sym.name] = std::move(sym); }

  [[nodiscard]] const Symbol* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto hit = it->find(name);
      if (hit != it->end()) return &hit->second;
    }
    return nullptr;
  }

  void resolve_ident(const IdentExpr& ident) {
    if (const Symbol* sym = lookup(ident.name)) {
      out_.resolutions_[&ident] = *sym;
      return;
    }
    if (const auto it = functions_.find(ident.name); it != functions_.end()) {
      out_.resolutions_[&ident] = Symbol{
          ident.name, SymbolKind::Function, nullptr, it->second->loc,
          it->second};
      return;
    }
    if (const auto it = globals_.find(ident.name); it != globals_.end()) {
      out_.resolutions_[&ident] =
          Symbol{ident.name, SymbolKind::Global, it->second->var.type,
                 it->second->var.loc, nullptr};
      return;
    }
    out_.resolutions_[&ident] =
        Symbol{ident.name, SymbolKind::Unknown, nullptr, ident.loc, nullptr};
  }

  void visit_expr(const Expr& e) {
    for_each_expr(e, [this](const Expr& sub) {
      if (const auto* ident = expr_cast<IdentExpr>(&sub)) {
        resolve_ident(*ident);
      }
    });
  }

  void visit_stmt(const Stmt& s) {
    switch (s.kind()) {
      case StmtKind::Compound: {
        push_scope();
        const auto& block = static_cast<const CompoundStmt&>(s);
        for (const StmtPtr& child : block.stmts) visit_stmt(*child);
        pop_scope();
        return;
      }
      case StmtKind::Decl: {
        for (const VarDecl& d : static_cast<const DeclStmt&>(s).decls) {
          if (d.init) visit_expr(*d.init);  // init sees outer binding
          declare(Symbol{d.name, SymbolKind::Local, d.type, d.loc, nullptr});
        }
        return;
      }
      case StmtKind::Expr:
        visit_expr(*static_cast<const ExprStmt&>(s).expr);
        return;
      case StmtKind::If: {
        const auto& n = static_cast<const IfStmt&>(s);
        visit_expr(*n.cond);
        visit_stmt(*n.then_stmt);
        if (n.else_stmt) visit_stmt(*n.else_stmt);
        return;
      }
      case StmtKind::For: {
        const auto& n = static_cast<const ForStmt&>(s);
        push_scope();  // C99: for-init declarations scope over the loop
        if (n.init) visit_stmt(*n.init);
        if (n.cond) visit_expr(*n.cond);
        if (n.inc) visit_expr(*n.inc);
        if (n.body) visit_stmt(*n.body);
        pop_scope();
        return;
      }
      case StmtKind::While: {
        const auto& n = static_cast<const WhileStmt&>(s);
        visit_expr(*n.cond);
        visit_stmt(*n.body);
        return;
      }
      case StmtKind::DoWhile: {
        const auto& n = static_cast<const DoWhileStmt&>(s);
        visit_stmt(*n.body);
        visit_expr(*n.cond);
        return;
      }
      case StmtKind::Return: {
        const auto& n = static_cast<const ReturnStmt&>(s);
        if (n.value) visit_expr(*n.value);
        return;
      }
      case StmtKind::Break:
      case StmtKind::Continue:
      case StmtKind::Null:
      case StmtKind::Pragma:
        return;
    }
  }

  const std::map<std::string, const FunctionDecl*>& functions_;
  const std::map<std::string, const GlobalVarDecl*>& globals_;
  FunctionScopeInfo& out_;
  std::vector<std::map<std::string, Symbol>> scopes_;
};

}  // namespace

LvalueShape lvalue_shape(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::Ident:
      return LvalueShape::Bare;
    case ExprKind::Index:
    case ExprKind::Member:
      return LvalueShape::Through;
    case ExprKind::Unary:
      return static_cast<const UnaryExpr&>(e).op == UnaryOp::Deref
                 ? LvalueShape::Through
                 : LvalueShape::Other;
    case ExprKind::Cast:
      return lvalue_shape(*static_cast<const CastExpr&>(e).operand);
    default:
      return LvalueShape::Other;
  }
}

const Symbol* FunctionScopeInfo::lvalue_root(const Expr& e) const {
  const Expr* cursor = &e;
  for (;;) {
    switch (cursor->kind()) {
      case ExprKind::Ident:
        return resolve(static_cast<const IdentExpr&>(*cursor));
      case ExprKind::Index:
        cursor = static_cast<const IndexExpr&>(*cursor).base.get();
        continue;
      case ExprKind::Member:
        cursor = static_cast<const MemberExpr&>(*cursor).base.get();
        continue;
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(*cursor);
        if (u.op == UnaryOp::Deref) {
          cursor = u.operand.get();
          continue;
        }
        return nullptr;
      }
      case ExprKind::Cast:
        cursor = static_cast<const CastExpr&>(*cursor).operand.get();
        continue;
      default:
        return nullptr;
    }
  }
}

SymbolTable SymbolTable::build(const TranslationUnit& tu,
                               DiagnosticEngine& diags) {
  SymbolTable table;
  for (const FunctionDecl* fn : tu.functions()) {
    const auto it = table.functions_.find(fn->name);
    if (it != table.functions_.end()) {
      const FunctionDecl* prev = it->second;
      if (prev->is_definition() && fn->is_definition()) {
        diags.error(fn->loc, "sema", "redefinition of function " + fn->name);
        continue;
      }
      if (prev->is_pure != fn->is_pure) {
        diags.error(fn->loc, "sema",
                    "conflicting purity for function " + fn->name +
                        " (declaration and definition must both be pure)");
      }
      if (!prev->is_definition() && fn->is_definition()) {
        it->second = fn;  // prefer the definition
      }
      continue;
    }
    table.functions_[fn->name] = fn;
  }
  for (const GlobalVarDecl* g : tu.globals()) {
    table.globals_[g->var.name] = g;
  }
  for (const FunctionDecl* fn : tu.functions()) {
    if (!fn->is_definition()) continue;
    FunctionScopeInfo info;
    Resolver resolver(table.functions_, table.globals_, info);
    resolver.run(*fn);
    table.function_scopes_[fn] = std::move(info);
  }
  return table;
}

}  // namespace purec

// AST -> C source pretty-printer. Two modes:
//   Keep  — prints the `pure` keyword as-is (the chain's intermediate files).
//   Lower — the paper's final rewrite (§3.2): pointer-level `pure` becomes
//           `const` on the pointee, function-level `pure` is dropped, so the
//           result compiles with a stock GCC.
#pragma once

#include <string>

#include "ast/decl.h"

namespace purec {

enum class PureHandling { Keep, Lower };

struct PrintOptions {
  PureHandling pure_handling = PureHandling::Keep;
  int indent_width = 2;
};

/// Renders a full translation unit (including carried-through pragma and
/// preprocessor lines, in their original order).
[[nodiscard]] std::string print_c(const TranslationUnit& tu,
                                  const PrintOptions& options = {});

/// Renders a single statement / expression (tests, debugging).
[[nodiscard]] std::string print_c(const Stmt& stmt,
                                  const PrintOptions& options = {});
[[nodiscard]] std::string print_c(const Expr& expr,
                                  const PrintOptions& options = {});

/// Renders "type name" as a C declaration fragment, e.g.
/// ("float**", "A") -> "float** A", (array) -> "int A[100]".
[[nodiscard]] std::string format_declaration(const TypePtr& type,
                                             const std::string& name,
                                             PureHandling pure_handling);

}  // namespace purec

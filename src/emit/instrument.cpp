#include "emit/instrument.h"

#include <functional>
#include <utility>
#include <vector>

#include "ast/expr.h"
#include "ast/type.h"

namespace purec {

namespace {

constexpr const char* kParallelForPrefix = "#pragma omp parallel for";

[[nodiscard]] ExprPtr make_ident(std::string name) {
  return std::make_unique<IdentExpr>(std::move(name));
}

[[nodiscard]] ExprPtr make_call(std::string callee,
                                std::vector<ExprPtr> args) {
  return std::make_unique<CallExpr>(make_ident(std::move(callee)),
                                    std::move(args));
}

/// `purec_instr_chunk(&purec_instr_rN);`
[[nodiscard]] StmtPtr make_chunk_tally(const std::string& region) {
  std::vector<ExprPtr> args;
  args.push_back(
      std::make_unique<UnaryExpr>(UnaryOp::AddrOf, make_ident(region)));
  return std::make_unique<ExprStmt>(
      make_call("purec_instr_chunk", std::move(args)));
}

/// Plants the chunk tally at the top of the body of every loop that sits
/// directly under a `#pragma omp parallel for` sibling: each outer
/// iteration a worker claims bumps its padded cell exactly once, so the
/// per-worker totals read back the scheduler's actual work split.
void add_chunk_tallies(Stmt& s, const std::string& region) {
  std::function<void(Stmt&)> visit = [&](Stmt& node) {
    if (auto* block = stmt_cast<CompoundStmt>(&node)) {
      bool after_parallel_pragma = false;
      for (StmtPtr& child : block->stmts) {
        auto* pragma = stmt_cast<PragmaStmt>(child.get());
        if (pragma != nullptr) {
          after_parallel_pragma =
              pragma->text.rfind(kParallelForPrefix, 0) == 0;
          continue;
        }
        auto* loop = stmt_cast<ForStmt>(child.get());
        if (after_parallel_pragma && loop != nullptr && loop->body) {
          auto* body = stmt_cast<CompoundStmt>(loop->body.get());
          if (body == nullptr) {
            auto wrapped = std::make_unique<CompoundStmt>();
            wrapped->stmts.push_back(std::move(loop->body));
            loop->body = std::move(wrapped);
            body = static_cast<CompoundStmt*>(loop->body.get());
          }
          body->stmts.insert(body->stmts.begin(),
                             make_chunk_tally(region));
        }
        after_parallel_pragma = false;
        visit(*child);
      }
      return;
    }
    switch (node.kind()) {
      case StmtKind::If: {
        auto& branch = static_cast<IfStmt&>(node);
        visit(*branch.then_stmt);
        if (branch.else_stmt) visit(*branch.else_stmt);
        return;
      }
      case StmtKind::For: {
        auto& loop = static_cast<ForStmt&>(node);
        if (loop.body) visit(*loop.body);
        return;
      }
      case StmtKind::While:
        visit(*static_cast<WhileStmt&>(node).body);
        return;
      case StmtKind::DoWhile:
        visit(*static_cast<DoWhileStmt&>(node).body);
        return;
      default:
        return;
    }
  };
  visit(s);
}

}  // namespace

const std::string& stats_sink_snippet() {
  static const std::string text = R"(
/* Shared stats stream: every exit-time dump (memo counters, --instrument
 * region summaries) resolves its destination here, so the lines land on
 * one stream and never interleave with program stdout. PUREC_STATS_FILE
 * names an append-mode file; unset or unopenable falls back to stderr. */
static FILE* purec_stats_out(void) {
  static FILE* purec_stats_stream;
  const char* purec_stats_path;
  if (purec_stats_stream != 0) return purec_stats_stream;
  purec_stats_path = getenv("PUREC_STATS_FILE");
  if (purec_stats_path != 0 && purec_stats_path[0] != 0) {
    purec_stats_stream = fopen(purec_stats_path, "a");
  }
  if (purec_stats_stream == 0) purec_stats_stream = stderr;
  return purec_stats_stream;
}
)";
  return text;
}

const std::string& instrument_runtime_snippet() {
  static const std::string text = R"(
/* --instrument runtime: per-region invocation/wall-time counters plus
 * per-worker chunk tallies. Workers bump their own cache-line-padded cell
 * with a relaxed __atomic add (the per-CPU counter pattern), so the hot
 * path is one padded add per claimed outer iteration — no lock, no shared
 * line. The atexit dump writes a human summary to purec_stats_out(); with
 * PUREC_TRACE=FILE set it instead writes Chrome trace-event JSON (one "X"
 * duration event per region execution, one "C" counter event per region
 * with the per-worker totals) for chrome://tracing or Perfetto. */
typedef unsigned long long purec_instr_u64;
#define PUREC_INSTR_MAX_WORKERS 64
#define PUREC_INSTR_MAX_REGIONS 64
#define PUREC_INSTR_TRACE_CAP 65536
typedef struct {
  purec_instr_u64 count;
  char purec_pad[56];
} purec_instr_cell;
typedef struct {
  const char* name; /* "function:line" of the transformed nest */
  purec_instr_u64 invocations;
  purec_instr_u64 total_ns;
  purec_instr_cell chunks[PUREC_INSTR_MAX_WORKERS];
} purec_instr_region_t;
typedef struct {
  const purec_instr_region_t* region;
  purec_instr_u64 begin_ns;
  purec_instr_u64 end_ns;
} purec_instr_event;

static purec_instr_region_t* purec_instr_regions[PUREC_INSTR_MAX_REGIONS];
static unsigned purec_instr_region_count;
static purec_instr_event* purec_instr_events;
static unsigned long purec_instr_event_next;

#ifdef _OPENMP
int omp_get_thread_num(void);
#endif

static purec_instr_u64 purec_instr_now(void) {
  struct timespec purec_instr_ts;
  clock_gettime(CLOCK_MONOTONIC, &purec_instr_ts);
  return (purec_instr_u64)purec_instr_ts.tv_sec * 1000000000ULL +
         (purec_instr_u64)purec_instr_ts.tv_nsec;
}

static void purec_instr_chunk(purec_instr_region_t* purec_r) {
  unsigned purec_w = 0;
#ifdef _OPENMP
  purec_w = (unsigned)omp_get_thread_num() &
            (PUREC_INSTR_MAX_WORKERS - 1);
#endif
  __atomic_fetch_add(&purec_r->chunks[purec_w].count, 1ULL,
                     __ATOMIC_RELAXED);
}

static void purec_instr_region_done(purec_instr_region_t* purec_r,
                                    purec_instr_u64 purec_begin_ns) {
  purec_instr_u64 purec_end_ns = purec_instr_now();
  __atomic_fetch_add(&purec_r->invocations, 1ULL, __ATOMIC_RELAXED);
  __atomic_fetch_add(&purec_r->total_ns, purec_end_ns - purec_begin_ns,
                     __ATOMIC_RELAXED);
  if (purec_instr_events != 0) {
    unsigned long purec_slot = __atomic_fetch_add(
        &purec_instr_event_next, 1UL, __ATOMIC_RELAXED);
    if (purec_slot < PUREC_INSTR_TRACE_CAP) {
      purec_instr_events[purec_slot].region = purec_r;
      purec_instr_events[purec_slot].begin_ns = purec_begin_ns;
      purec_instr_events[purec_slot].end_ns = purec_end_ns;
    }
  }
}

static void purec_instr_register(purec_instr_region_t* purec_r) {
  if (purec_instr_region_count < PUREC_INSTR_MAX_REGIONS) {
    purec_instr_regions[purec_instr_region_count++] = purec_r;
  }
}

static void purec_instr_dump(void) {
  const char* purec_trace_path = getenv("PUREC_TRACE");
  unsigned purec_i, purec_w;
  if (purec_trace_path != 0 && purec_trace_path[0] != 0 &&
      purec_instr_events != 0) {
    FILE* purec_out = fopen(purec_trace_path, "w");
    if (purec_out != 0) {
      unsigned long purec_n = __atomic_load_n(&purec_instr_event_next,
                                              __ATOMIC_RELAXED);
      unsigned long purec_dropped = 0;
      unsigned long purec_k;
      int purec_first = 1;
      if (purec_n > PUREC_INSTR_TRACE_CAP) {
        purec_dropped = purec_n - PUREC_INSTR_TRACE_CAP;
        purec_n = PUREC_INSTR_TRACE_CAP;
      }
      fprintf(purec_out, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
      for (purec_k = 0; purec_k < purec_n; purec_k++) {
        const purec_instr_event* purec_e = &purec_instr_events[purec_k];
        fprintf(purec_out,
                "%s\n{\"name\":\"%s\",\"cat\":\"region\",\"ph\":\"X\","
                "\"pid\":1,\"tid\":1,\"ts\":%.3f,\"dur\":%.3f}",
                purec_first ? "" : ",", purec_e->region->name,
                (double)purec_e->begin_ns / 1000.0,
                (double)(purec_e->end_ns - purec_e->begin_ns) / 1000.0);
        purec_first = 0;
      }
      for (purec_i = 0; purec_i < purec_instr_region_count; purec_i++) {
        const purec_instr_region_t* purec_r =
            purec_instr_regions[purec_i];
        int purec_any = 0;
        for (purec_w = 0; purec_w < PUREC_INSTR_MAX_WORKERS; purec_w++) {
          if (purec_r->chunks[purec_w].count != 0) purec_any = 1;
        }
        if (!purec_any) continue;
        fprintf(purec_out,
                "%s\n{\"name\":\"%s chunks\",\"ph\":\"C\",\"pid\":1,"
                "\"ts\":%.3f,\"args\":{",
                purec_first ? "" : ",",
                purec_r->name, (double)purec_instr_now() / 1000.0);
        purec_first = 0;
        {
          int purec_first_arg = 1;
          for (purec_w = 0; purec_w < PUREC_INSTR_MAX_WORKERS;
               purec_w++) {
            if (purec_r->chunks[purec_w].count == 0) continue;
            fprintf(purec_out, "%s\"w%u\":%llu",
                    purec_first_arg ? "" : ",", purec_w,
                    purec_r->chunks[purec_w].count);
            purec_first_arg = 0;
          }
        }
        fprintf(purec_out, "}}");
      }
      if (purec_dropped != 0) {
        fprintf(purec_out,
                "%s\n{\"name\":\"purec: %lu trace events dropped "
                "(PUREC_INSTR_TRACE_CAP)\",\"ph\":\"i\",\"pid\":1,"
                "\"tid\":1,\"ts\":%.3f,\"s\":\"g\"}",
                purec_first ? "" : ",", purec_dropped,
                (double)purec_instr_now() / 1000.0);
      }
      fprintf(purec_out, "\n]}\n");
      fclose(purec_out);
      return;
    }
  }
  for (purec_i = 0; purec_i < purec_instr_region_count; purec_i++) {
    const purec_instr_region_t* purec_r = purec_instr_regions[purec_i];
    if (purec_r->invocations == 0) continue;
    fprintf(purec_stats_out(),
            "purec-instr[%s] invocations=%llu total_ns=%llu",
            purec_r->name, purec_r->invocations, purec_r->total_ns);
    for (purec_w = 0; purec_w < PUREC_INSTR_MAX_WORKERS; purec_w++) {
      if (purec_r->chunks[purec_w].count == 0) continue;
      fprintf(purec_stats_out(), " w%u=%llu", purec_w,
              purec_r->chunks[purec_w].count);
    }
    fprintf(purec_stats_out(), "\n");
  }
}

__attribute__((constructor)) static void purec_instr_init(void) {
  const char* purec_trace_path = getenv("PUREC_TRACE");
  if (purec_trace_path != 0 && purec_trace_path[0] != 0) {
    purec_instr_events = (purec_instr_event*)calloc(
        PUREC_INSTR_TRACE_CAP, sizeof(purec_instr_event));
  }
  atexit(purec_instr_dump);
}
)";
  return text;
}

std::string instrument_region_definition(std::size_t index,
                                         const std::string& name) {
  const std::string var = "purec_instr_r" + std::to_string(index);
  std::string out;
  out += "static purec_instr_region_t " + var + " = {\"" + name + "\"};\n";
  out += "__attribute__((constructor)) static void " + var +
         "_register(void) {\n  purec_instr_register(&" + var + ");\n}\n";
  return out;
}

void instrument_region(StmtPtr& nest, std::size_t index) {
  if (!nest) return;
  const std::string region = "purec_instr_r" + std::to_string(index);
  add_chunk_tallies(*nest, region);

  auto block = std::make_unique<CompoundStmt>();
  VarDecl t0;
  t0.name = "purec_instr_t0";
  t0.type = Type::make_builtin(BuiltinKind::ULongLong);
  t0.init = make_call("purec_instr_now", {});
  auto decl = std::make_unique<DeclStmt>();
  decl->decls.push_back(std::move(t0));
  block->stmts.push_back(std::move(decl));
  block->stmts.push_back(std::move(nest));
  std::vector<ExprPtr> args;
  args.push_back(
      std::make_unique<UnaryExpr>(UnaryOp::AddrOf, make_ident(region)));
  args.push_back(make_ident("purec_instr_t0"));
  block->stmts.push_back(std::make_unique<ExprStmt>(
      make_call("purec_instr_region_done", std::move(args))));
  nest = std::move(block);
}

}  // namespace purec

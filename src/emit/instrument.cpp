#include "emit/instrument.h"

#include <functional>
#include <utility>
#include <vector>

#include "ast/expr.h"
#include "ast/type.h"

namespace purec {

namespace {

constexpr const char* kParallelForPrefix = "#pragma omp parallel for";

[[nodiscard]] ExprPtr make_ident(std::string name) {
  return std::make_unique<IdentExpr>(std::move(name));
}

[[nodiscard]] ExprPtr make_call(std::string callee,
                                std::vector<ExprPtr> args) {
  return std::make_unique<CallExpr>(make_ident(std::move(callee)),
                                    std::move(args));
}

/// `purec_instr_chunk(&purec_instr_rN);`
[[nodiscard]] StmtPtr make_chunk_tally(const std::string& region) {
  std::vector<ExprPtr> args;
  args.push_back(
      std::make_unique<UnaryExpr>(UnaryOp::AddrOf, make_ident(region)));
  return std::make_unique<ExprStmt>(
      make_call("purec_instr_chunk", std::move(args)));
}

/// Plants the chunk tally at the top of the body of every loop that sits
/// directly under a `#pragma omp parallel for` sibling: each outer
/// iteration a worker claims bumps its padded cell exactly once, so the
/// per-worker totals read back the scheduler's actual work split.
void add_chunk_tallies(Stmt& s, const std::string& region) {
  std::function<void(Stmt&)> visit = [&](Stmt& node) {
    if (auto* block = stmt_cast<CompoundStmt>(&node)) {
      bool after_parallel_pragma = false;
      for (StmtPtr& child : block->stmts) {
        auto* pragma = stmt_cast<PragmaStmt>(child.get());
        if (pragma != nullptr) {
          after_parallel_pragma =
              pragma->text.rfind(kParallelForPrefix, 0) == 0;
          continue;
        }
        auto* loop = stmt_cast<ForStmt>(child.get());
        if (after_parallel_pragma && loop != nullptr && loop->body) {
          auto* body = stmt_cast<CompoundStmt>(loop->body.get());
          if (body == nullptr) {
            auto wrapped = std::make_unique<CompoundStmt>();
            wrapped->stmts.push_back(std::move(loop->body));
            loop->body = std::move(wrapped);
            body = static_cast<CompoundStmt*>(loop->body.get());
          }
          body->stmts.insert(body->stmts.begin(),
                             make_chunk_tally(region));
        }
        after_parallel_pragma = false;
        visit(*child);
      }
      return;
    }
    switch (node.kind()) {
      case StmtKind::If: {
        auto& branch = static_cast<IfStmt&>(node);
        visit(*branch.then_stmt);
        if (branch.else_stmt) visit(*branch.else_stmt);
        return;
      }
      case StmtKind::For: {
        auto& loop = static_cast<ForStmt&>(node);
        if (loop.body) visit(*loop.body);
        return;
      }
      case StmtKind::While:
        visit(*static_cast<WhileStmt&>(node).body);
        return;
      case StmtKind::DoWhile:
        visit(*static_cast<DoWhileStmt&>(node).body);
        return;
      default:
        return;
    }
  };
  visit(s);
}

}  // namespace

const std::string& stats_sink_snippet() {
  static const std::string text = R"(
/* Shared stats stream: every exit-time dump (memo counters, --instrument
 * region summaries) resolves its destination here, so the lines land on
 * one stream and never interleave with program stdout. PUREC_STATS_FILE
 * names an append-mode file; unset or unopenable falls back to stderr. */
static FILE* purec_stats_out(void) {
  static FILE* purec_stats_stream;
  const char* purec_stats_path;
  if (purec_stats_stream != 0) return purec_stats_stream;
  purec_stats_path = getenv("PUREC_STATS_FILE");
  if (purec_stats_path != 0 && purec_stats_path[0] != 0) {
    purec_stats_stream = fopen(purec_stats_path, "a");
  }
  if (purec_stats_stream == 0) purec_stats_stream = stderr;
  return purec_stats_stream;
}
)";
  return text;
}

const std::string& instrument_runtime_snippet() {
  static const std::string text = R"(
/* --instrument runtime: per-region invocation/wall-time counters,
 * per-worker chunk tallies, and a log-bucketed wall-time histogram per
 * region (HdrHistogram-style: exact below 2^3 ns, then 8 linear
 * sub-buckets per power of two — the same cell math as the C++ runtime's
 * purec::rt::stats histograms, so percentiles agree across a mixed
 * binary). Workers bump their own cache-line-padded cell with a relaxed
 * __atomic add (the per-CPU counter pattern), so the hot path is one
 * padded add per claimed outer iteration — no lock, no shared line. The
 * atexit dump writes a human summary (with p50/p90/p99) to
 * purec_stats_out(); with PUREC_TRACE=FILE set it instead writes Chrome
 * trace-event JSON (one "X" duration event per region execution carrying
 * the region's stable id in args, one "C" counter event per region with
 * the per-worker totals, "M" metadata naming process and thread) for
 * chrome://tracing or Perfetto. The trace file is a bare JSON array,
 * cooperatively appended: an existing array at the path (for example one
 * the C++ runtime's PUREC_RT_TRACE dump already wrote) has its closing
 * bracket replaced by a comma and the new events spliced in, so any
 * number of sequential dumps to one path remain one valid timeline. */
typedef unsigned long long purec_instr_u64;
#define PUREC_INSTR_MAX_WORKERS 64
#define PUREC_INSTR_MAX_REGIONS 64
#define PUREC_INSTR_TRACE_CAP 65536
#define PUREC_INSTR_HIST_SUB_BITS 3
#define PUREC_INSTR_HIST_SUB 8
#define PUREC_INSTR_HIST_CELLS 496
typedef struct {
  purec_instr_u64 count;
  char purec_pad[56];
} purec_instr_cell;
typedef struct {
  const char* name; /* "function:line" of the transformed nest */
  unsigned id;      /* stable region id; joins report scops[].region_id */
  purec_instr_u64 invocations;
  purec_instr_u64 total_ns;
  purec_instr_u64 hist[PUREC_INSTR_HIST_CELLS]; /* wall time (ns) */
  purec_instr_cell chunks[PUREC_INSTR_MAX_WORKERS];
} purec_instr_region_t;
typedef struct {
  const purec_instr_region_t* region;
  purec_instr_u64 begin_ns;
  purec_instr_u64 end_ns;
} purec_instr_event;

static purec_instr_region_t* purec_instr_regions[PUREC_INSTR_MAX_REGIONS];
static unsigned purec_instr_region_count;
static purec_instr_event* purec_instr_events;
static unsigned long purec_instr_event_next;

#ifdef _OPENMP
int omp_get_thread_num(void);
#endif

static purec_instr_u64 purec_instr_now(void) {
  struct timespec purec_instr_ts;
  clock_gettime(CLOCK_MONOTONIC, &purec_instr_ts);
  return (purec_instr_u64)purec_instr_ts.tv_sec * 1000000000ULL +
         (purec_instr_u64)purec_instr_ts.tv_nsec;
}

static void purec_instr_chunk(purec_instr_region_t* purec_r) {
  unsigned purec_w = 0;
#ifdef _OPENMP
  purec_w = (unsigned)omp_get_thread_num() &
            (PUREC_INSTR_MAX_WORKERS - 1);
#endif
  __atomic_fetch_add(&purec_r->chunks[purec_w].count, 1ULL,
                     __ATOMIC_RELAXED);
}

/* Histogram cell math — keep bit-for-bit identical to hist_index /
 * hist_cell_upper / hist_percentile in src/runtime/stats.h, so a joined
 * trace analysis can compare percentiles across the two runtimes. */
static unsigned purec_instr_hist_index(purec_instr_u64 purec_v) {
  int purec_msb, purec_shift;
  if (purec_v < PUREC_INSTR_HIST_SUB) return (unsigned)purec_v;
  purec_msb = 63 - __builtin_clzll(purec_v);
  purec_shift = purec_msb - PUREC_INSTR_HIST_SUB_BITS;
  return (unsigned)(((purec_shift + 1) << PUREC_INSTR_HIST_SUB_BITS) |
                    (int)((purec_v >> purec_shift) &
                          (PUREC_INSTR_HIST_SUB - 1)));
}

static purec_instr_u64 purec_instr_hist_upper(unsigned purec_i) {
  int purec_shift;
  purec_instr_u64 purec_lower;
  if (purec_i < PUREC_INSTR_HIST_SUB) return purec_i;
  purec_shift = (int)(purec_i >> PUREC_INSTR_HIST_SUB_BITS) - 1;
  purec_lower = (purec_instr_u64)(PUREC_INSTR_HIST_SUB +
                                  (purec_i & (PUREC_INSTR_HIST_SUB - 1)))
                << purec_shift;
  return purec_lower + ((1ULL << purec_shift) - 1ULL);
}

static purec_instr_u64 purec_instr_hist_pct(
    const purec_instr_u64* purec_hist, purec_instr_u64 purec_count,
    unsigned purec_percent) {
  purec_instr_u64 purec_target, purec_cum;
  unsigned purec_c;
  if (purec_count == 0) return 0;
  purec_target = (purec_count * purec_percent + 99) / 100;
  if (purec_target == 0) purec_target = 1;
  if (purec_target > purec_count) purec_target = purec_count;
  purec_cum = 0;
  for (purec_c = 0; purec_c < PUREC_INSTR_HIST_CELLS; purec_c++) {
    purec_cum += purec_hist[purec_c];
    if (purec_cum >= purec_target) {
      return purec_instr_hist_upper(purec_c);
    }
  }
  return purec_instr_hist_upper(PUREC_INSTR_HIST_CELLS - 1);
}

static void purec_instr_region_done(purec_instr_region_t* purec_r,
                                    purec_instr_u64 purec_begin_ns) {
  purec_instr_u64 purec_end_ns = purec_instr_now();
  __atomic_fetch_add(&purec_r->invocations, 1ULL, __ATOMIC_RELAXED);
  __atomic_fetch_add(&purec_r->total_ns, purec_end_ns - purec_begin_ns,
                     __ATOMIC_RELAXED);
  __atomic_fetch_add(
      &purec_r->hist[purec_instr_hist_index(purec_end_ns -
                                            purec_begin_ns)],
      1ULL, __ATOMIC_RELAXED);
  if (purec_instr_events != 0) {
    unsigned long purec_slot = __atomic_fetch_add(
        &purec_instr_event_next, 1UL, __ATOMIC_RELAXED);
    if (purec_slot < PUREC_INSTR_TRACE_CAP) {
      purec_instr_events[purec_slot].region = purec_r;
      purec_instr_events[purec_slot].begin_ns = purec_begin_ns;
      purec_instr_events[purec_slot].end_ns = purec_end_ns;
    }
  }
}

static void purec_instr_register(purec_instr_region_t* purec_r) {
  if (purec_instr_region_count < PUREC_INSTR_MAX_REGIONS) {
    purec_instr_regions[purec_instr_region_count++] = purec_r;
  }
}

/* Opens the trace path for a cooperative array append: a fresh or empty
 * file starts a new array (*purec_first = 1); an existing file ending in
 * ']' is positioned ON that bracket so the dump's leading ',' overwrites
 * it and the array keeps growing. Any other tail is appended to as a
 * fresh array — never corrupt what we do not understand. */
static FILE* purec_instr_trace_open(const char* purec_path,
                                    int* purec_first) {
  FILE* purec_out;
  long purec_size, purec_n, purec_k;
  char purec_tail[8];
  *purec_first = 1;
  purec_out = fopen(purec_path, "r+");
  if (purec_out == 0) return fopen(purec_path, "w");
  fseek(purec_out, 0, SEEK_END);
  purec_size = ftell(purec_out);
  if (purec_size <= 0) return purec_out;
  purec_n = purec_size < 8 ? purec_size : 8;
  fseek(purec_out, purec_size - purec_n, SEEK_SET);
  if (fread(purec_tail, 1, (size_t)purec_n, purec_out) !=
      (size_t)purec_n) {
    fseek(purec_out, 0, SEEK_END);
    return purec_out;
  }
  for (purec_k = purec_n - 1; purec_k >= 0; purec_k--) {
    char purec_c = purec_tail[purec_k];
    if (purec_c == ']') {
      fseek(purec_out, purec_size - purec_n + purec_k, SEEK_SET);
      *purec_first = 0;
      return purec_out;
    }
    if (purec_c != ' ' && purec_c != '\n' && purec_c != '\r' &&
        purec_c != '\t') {
      break;
    }
  }
  fseek(purec_out, 0, SEEK_END);
  return purec_out;
}

static void purec_instr_dump(void) {
  const char* purec_trace_path = getenv("PUREC_TRACE");
  unsigned purec_i, purec_w;
  if (purec_trace_path != 0 && purec_trace_path[0] != 0 &&
      purec_instr_events != 0) {
    int purec_first = 1;
    FILE* purec_out =
        purec_instr_trace_open(purec_trace_path, &purec_first);
    if (purec_out != 0) {
      unsigned long purec_n = __atomic_load_n(&purec_instr_event_next,
                                              __ATOMIC_RELAXED);
      unsigned long purec_dropped = 0;
      unsigned long purec_k;
      if (purec_n > PUREC_INSTR_TRACE_CAP) {
        purec_dropped = purec_n - PUREC_INSTR_TRACE_CAP;
        purec_n = PUREC_INSTR_TRACE_CAP;
      }
      fputc(purec_first ? '[' : ',', purec_out);
      fprintf(purec_out,
              "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
              "\"args\":{\"name\":\"purec-instr\"}}");
      fprintf(purec_out,
              ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
              "\"tid\":1,\"args\":{\"name\":\"main\"}}");
      for (purec_k = 0; purec_k < purec_n; purec_k++) {
        const purec_instr_event* purec_e = &purec_instr_events[purec_k];
        fprintf(purec_out,
                ",\n{\"name\":\"%s\",\"cat\":\"region\",\"ph\":\"X\","
                "\"pid\":1,\"tid\":1,\"ts\":%.3f,\"dur\":%.3f,"
                "\"args\":{\"region_id\":%u}}",
                purec_e->region->name,
                (double)purec_e->begin_ns / 1000.0,
                (double)(purec_e->end_ns - purec_e->begin_ns) / 1000.0,
                purec_e->region->id);
      }
      for (purec_i = 0; purec_i < purec_instr_region_count; purec_i++) {
        const purec_instr_region_t* purec_r =
            purec_instr_regions[purec_i];
        int purec_any = 0;
        for (purec_w = 0; purec_w < PUREC_INSTR_MAX_WORKERS; purec_w++) {
          if (purec_r->chunks[purec_w].count != 0) purec_any = 1;
        }
        if (!purec_any) continue;
        fprintf(purec_out,
                ",\n{\"name\":\"%s chunks\",\"ph\":\"C\",\"pid\":1,"
                "\"ts\":%.3f,\"args\":{",
                purec_r->name, (double)purec_instr_now() / 1000.0);
        {
          int purec_first_arg = 1;
          for (purec_w = 0; purec_w < PUREC_INSTR_MAX_WORKERS;
               purec_w++) {
            if (purec_r->chunks[purec_w].count == 0) continue;
            fprintf(purec_out, "%s\"w%u\":%llu",
                    purec_first_arg ? "" : ",", purec_w,
                    purec_r->chunks[purec_w].count);
            purec_first_arg = 0;
          }
        }
        fprintf(purec_out, "}}");
      }
      if (purec_dropped != 0) {
        fprintf(purec_out,
                ",\n{\"name\":\"purec: trace ring overflow\","
                "\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":%.3f,"
                "\"s\":\"g\",\"args\":{\"dropped\":%lu}}",
                (double)purec_instr_now() / 1000.0, purec_dropped);
      }
      fprintf(purec_out, "\n]\n");
      fclose(purec_out);
      return;
    }
  }
  for (purec_i = 0; purec_i < purec_instr_region_count; purec_i++) {
    const purec_instr_region_t* purec_r = purec_instr_regions[purec_i];
    if (purec_r->invocations == 0) continue;
    fprintf(purec_stats_out(),
            "purec-instr[%s] invocations=%llu total_ns=%llu "
            "p50_ns=%llu p90_ns=%llu p99_ns=%llu",
            purec_r->name, purec_r->invocations, purec_r->total_ns,
            purec_instr_hist_pct(purec_r->hist, purec_r->invocations, 50),
            purec_instr_hist_pct(purec_r->hist, purec_r->invocations, 90),
            purec_instr_hist_pct(purec_r->hist, purec_r->invocations,
                                 99));
    for (purec_w = 0; purec_w < PUREC_INSTR_MAX_WORKERS; purec_w++) {
      if (purec_r->chunks[purec_w].count == 0) continue;
      fprintf(purec_stats_out(), " w%u=%llu", purec_w,
              purec_r->chunks[purec_w].count);
    }
    fprintf(purec_stats_out(), "\n");
  }
}

__attribute__((constructor)) static void purec_instr_init(void) {
  const char* purec_trace_path = getenv("PUREC_TRACE");
  if (purec_trace_path != 0 && purec_trace_path[0] != 0) {
    purec_instr_events = (purec_instr_event*)calloc(
        PUREC_INSTR_TRACE_CAP, sizeof(purec_instr_event));
  }
  atexit(purec_instr_dump);
}
)";
  return text;
}

std::string instrument_region_definition(std::size_t index,
                                         const std::string& name) {
  const std::string var = "purec_instr_r" + std::to_string(index);
  std::string out;
  out += "static purec_instr_region_t " + var + " = {\"" + name + "\", " +
         std::to_string(index) + "u};\n";
  out += "__attribute__((constructor)) static void " + var +
         "_register(void) {\n  purec_instr_register(&" + var + ");\n}\n";
  return out;
}

void instrument_region(StmtPtr& nest, std::size_t index) {
  if (!nest) return;
  const std::string region = "purec_instr_r" + std::to_string(index);
  add_chunk_tallies(*nest, region);

  auto block = std::make_unique<CompoundStmt>();
  VarDecl t0;
  t0.name = "purec_instr_t0";
  t0.type = Type::make_builtin(BuiltinKind::ULongLong);
  t0.init = make_call("purec_instr_now", {});
  auto decl = std::make_unique<DeclStmt>();
  decl->decls.push_back(std::move(t0));
  block->stmts.push_back(std::move(decl));
  block->stmts.push_back(std::move(nest));
  std::vector<ExprPtr> args;
  args.push_back(
      std::make_unique<UnaryExpr>(UnaryOp::AddrOf, make_ident(region)));
  args.push_back(make_ident("purec_instr_t0"));
  block->stmts.push_back(std::make_unique<ExprStmt>(
      make_call("purec_instr_region_done", std::move(args))));
  nest = std::move(block);
}

}  // namespace purec

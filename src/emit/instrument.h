// --instrument: self-contained runtime observability for the emitted C.
//
// The chain wraps every transformed scop in a timing envelope and plants a
// per-worker tally in each parallel loop body; the snippets below supply
// the counters and the exit-time sink. Everything is plain C with GCC
// __atomic builtins — the output stays dependency-free, exactly like the
// memo runtime prelude.
//
// Counter design follows the per-CPU pattern (McKenney): one cache-line-
// padded cell per worker, bumped with a relaxed __atomic add. The hot-path
// cost is bounded — one padded add per claimed outer iteration, one
// clock_gettime pair per region execution — and there is no lock anywhere.
//
// The atexit sink writes a human summary to the shared stats stream
// (purec_stats_out(): PUREC_STATS_FILE or stderr). Under PUREC_TRACE=FILE
// it instead writes Chrome trace-event JSON — one "X" duration event per
// region execution plus one "C" counter event per region carrying the
// per-worker chunk tallies — loadable in chrome://tracing or Perfetto.
#pragma once

#include <cstddef>
#include <string>

#include "ast/stmt.h"

namespace purec {

/// The shared stats-stream resolver (purec_stats_out): PUREC_STATS_FILE
/// names an append-mode destination, unset/unopenable falls back to
/// stderr. Emitted once whenever any runtime subsystem (memo stats,
/// --instrument) dumps at exit, so their lines share one stream and never
/// interleave with program stdout.
[[nodiscard]] const std::string& stats_sink_snippet();

/// The counter structs, clock helpers, trace buffer and atexit dump.
/// Requires stats_sink_snippet() earlier in the same file.
[[nodiscard]] const std::string& instrument_runtime_snippet();

/// Definition + constructor-time registration of region `index` named
/// `name` ("function:line" of the transformed nest).
[[nodiscard]] std::string instrument_region_definition(std::size_t index,
                                                       const std::string& name);

/// Rewrites a transformed nest in place: prepends a per-worker chunk tally
/// to the body of every `#pragma omp parallel for` loop, then wraps the
/// whole nest in `{ t0 = now(); nest; region_done(&rN, t0); }`.
void instrument_region(StmtPtr& nest, std::size_t index);

}  // namespace purec

#include "emit/c_printer.h"

#include <sstream>

#include "ast/expr.h"
#include "ast/stmt.h"

namespace purec {

namespace {

/// Expression precedence for parenthesization, mirroring the parser.
/// Larger binds tighter.
int precedence(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::IntLiteral:
    case ExprKind::FloatLiteral:
    case ExprKind::CharLiteral:
    case ExprKind::StringLiteral:
    case ExprKind::Ident:
      return 100;
    case ExprKind::Call:
    case ExprKind::Index:
    case ExprKind::Member:
      return 90;
    case ExprKind::Unary:
    case ExprKind::Cast:
    case ExprKind::Sizeof:
      return 80;
    case ExprKind::Binary: {
      switch (static_cast<const BinaryExpr&>(e).op) {
        case BinaryOp::Mul:
        case BinaryOp::Div:
        case BinaryOp::Rem:
          return 70;
        case BinaryOp::Add:
        case BinaryOp::Sub:
          return 65;
        case BinaryOp::Shl:
        case BinaryOp::Shr:
          return 60;
        case BinaryOp::Less:
        case BinaryOp::Greater:
        case BinaryOp::LessEqual:
        case BinaryOp::GreaterEqual:
          return 55;
        case BinaryOp::Equal:
        case BinaryOp::NotEqual:
          return 50;
        case BinaryOp::BitAnd:
          return 45;
        case BinaryOp::BitXor:
          return 40;
        case BinaryOp::BitOr:
          return 35;
        case BinaryOp::LogicalAnd:
          return 30;
        case BinaryOp::LogicalOr:
          return 25;
        case BinaryOp::Comma:
          return 5;
      }
      return 25;
    }
    case ExprKind::Conditional:
      return 20;
    case ExprKind::Assign:
      return 10;
  }
  return 0;
}

class Printer {
 public:
  explicit Printer(const PrintOptions& options) : options_(options) {}

  [[nodiscard]] std::string take() { return std::move(out_).str(); }

  // -- types ----------------------------------------------------------------

  /// Builds the declaration string for `type` with declarator `inner`.
  /// Works inside-out like C declarators do.
  std::string declaration(const TypePtr& type, std::string inner) const {
    switch (type->kind) {
      case TypeKind::Builtin:
      case TypeKind::Struct:
      case TypeKind::Named: {
        std::string spec;
        if (type->is_const) spec += "const ";
        if (type->kind == TypeKind::Struct) spec += "struct ";
        spec += (type->kind == TypeKind::Builtin)
                    ? std::string(purec::to_string(type->builtin))
                    : type->name;
        // Attach leading stars to the specifier ("float** A", "float* a")
        // — the style of the paper's listings.
        std::size_t stars = 0;
        while (stars < inner.size() && inner[stars] == '*') ++stars;
        spec += inner.substr(0, stars);
        inner = inner.substr(stars);
        if (inner.empty()) return spec;
        return spec + " " + inner;
      }
      case TypeKind::Pointer: {
        std::string stars = "*";
        if (type->is_const) stars += "const ";
        return declaration(type->pointee, stars + inner);
      }
      case TypeKind::Array: {
        std::string size =
            type->array_size ? std::to_string(*type->array_size) : "";
        if (!inner.empty() && inner.front() == '*') {
          inner = "(" + inner + ")";
        }
        return declaration(type->element, inner + "[" + size + "]");
      }
    }
    return inner;
  }

  /// Full declaration including the paper's `pure` prefix handling.
  std::string pure_aware_declaration(const TypePtr& type,
                                     const std::string& name) const {
    TypePtr t = type;
    std::string prefix;
    if (t->is_pointer() && t->any_level_pure()) {
      if (options_.pure_handling == PureHandling::Keep) {
        prefix = "pure ";
        t = strip_pure(t);
      } else {
        // Lower: pure pointer -> pointer-to-const (paper §3.2 / Listing 8).
        t = lower_pure_to_const(t);
      }
    }
    return prefix + declaration(t, name);
  }

  static TypePtr strip_pure(const TypePtr& type) {
    auto t = std::make_shared<Type>(*type);
    t->is_pure = false;
    if (t->pointee) t->pointee = strip_pure(t->pointee);
    if (t->element) t->element = strip_pure(t->element);
    return t;
  }

  static TypePtr lower_pure_to_const(const TypePtr& type) {
    auto t = std::make_shared<Type>(*type);
    const bool was_pure = t->is_pure;
    t->is_pure = false;
    if (t->pointee) {
      t->pointee = lower_pure_to_const(t->pointee);
      if (was_pure) t->pointee = t->pointee->with_const(true);
    }
    if (t->element) t->element = lower_pure_to_const(t->element);
    return t;
  }

  // -- expressions ---------------------------------------------------------

  void expr(const Expr& e, int parent_precedence = 0) {
    const int prec = precedence(e);
    const bool parens = prec < parent_precedence;
    if (parens) out_ << "(";
    expr_impl(e);
    if (parens) out_ << ")";
  }

  void expr_impl(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::IntLiteral: {
        const auto& n = static_cast<const IntLiteralExpr&>(e);
        out_ << (n.spelling.empty() ? std::to_string(n.value) : n.spelling);
        return;
      }
      case ExprKind::FloatLiteral: {
        const auto& n = static_cast<const FloatLiteralExpr&>(e);
        if (!n.spelling.empty()) {
          out_ << n.spelling;
        } else {
          std::ostringstream tmp;
          tmp << n.value;
          std::string s = tmp.str();
          if (s.find('.') == std::string::npos &&
              s.find('e') == std::string::npos) {
            s += ".0";
          }
          out_ << s;
        }
        return;
      }
      case ExprKind::CharLiteral:
        out_ << static_cast<const CharLiteralExpr&>(e).spelling;
        return;
      case ExprKind::StringLiteral:
        out_ << static_cast<const StringLiteralExpr&>(e).spelling;
        return;
      case ExprKind::Ident:
        out_ << static_cast<const IdentExpr&>(e).name;
        return;
      case ExprKind::Unary: {
        const auto& n = static_cast<const UnaryExpr&>(e);
        if (n.op == UnaryOp::PostInc || n.op == UnaryOp::PostDec) {
          expr(*n.operand, 90);
          out_ << to_string(n.op);
        } else {
          out_ << to_string(n.op);
          // `- -x` must not merge into `--x`.
          if (n.op == UnaryOp::Minus &&
              n.operand->kind() == ExprKind::Unary &&
              static_cast<const UnaryExpr&>(*n.operand).op ==
                  UnaryOp::Minus) {
            out_ << " ";
          }
          expr(*n.operand, 80);
        }
        return;
      }
      case ExprKind::Binary: {
        const auto& n = static_cast<const BinaryExpr&>(e);
        const int prec = precedence(e);
        if (n.op == BinaryOp::Comma) {
          expr(*n.lhs, prec);
          out_ << ", ";
          expr(*n.rhs, prec + 1);
          return;
        }
        expr(*n.lhs, prec);
        out_ << " " << to_string(n.op) << " ";
        expr(*n.rhs, prec + 1);  // left-associative
        return;
      }
      case ExprKind::Assign: {
        const auto& n = static_cast<const AssignExpr&>(e);
        expr(*n.lhs, 20);
        out_ << " " << to_string(n.op) << " ";
        expr(*n.rhs, 10);  // right-associative
        return;
      }
      case ExprKind::Conditional: {
        const auto& n = static_cast<const ConditionalExpr&>(e);
        expr(*n.cond, 25);
        out_ << " ? ";
        expr(*n.then_expr, 0);
        out_ << " : ";
        expr(*n.else_expr, 20);
        return;
      }
      case ExprKind::Call: {
        const auto& n = static_cast<const CallExpr&>(e);
        expr(*n.callee, 90);
        out_ << "(";
        for (std::size_t i = 0; i < n.args.size(); ++i) {
          if (i != 0) out_ << ", ";
          expr(*n.args[i], 10);
        }
        out_ << ")";
        return;
      }
      case ExprKind::Index: {
        const auto& n = static_cast<const IndexExpr&>(e);
        expr(*n.base, 90);
        out_ << "[";
        expr(*n.index, 0);
        out_ << "]";
        return;
      }
      case ExprKind::Member: {
        const auto& n = static_cast<const MemberExpr&>(e);
        expr(*n.base, 90);
        out_ << (n.is_arrow ? "->" : ".") << n.member;
        return;
      }
      case ExprKind::Cast: {
        const auto& n = static_cast<const CastExpr&>(e);
        out_ << "(" << cast_type(n.target_type) << ")";
        expr(*n.operand, 80);
        return;
      }
      case ExprKind::Sizeof: {
        const auto& n = static_cast<const SizeofExpr&>(e);
        if (n.of_type) {
          out_ << "sizeof(" << cast_type(n.of_type) << ")";
        } else {
          out_ << "sizeof ";
          expr(*n.operand, 80);
        }
        return;
      }
    }
  }

  [[nodiscard]] std::string cast_type(const TypePtr& type) const {
    TypePtr t = type;
    std::string prefix;
    if (t->any_level_pure()) {
      if (options_.pure_handling == PureHandling::Keep) {
        prefix = "pure ";
        t = strip_pure(t);
      } else {
        t = lower_pure_to_const(t);
      }
    }
    return prefix + declaration(t, "");
  }

  // -- statements --------------------------------------------------------

  void indent() {
    for (int i = 0; i < depth_ * options_.indent_width; ++i) out_ << ' ';
  }

  void stmt(const Stmt& s) {
    switch (s.kind()) {
      case StmtKind::Compound: {
        indent();
        out_ << "{\n";
        ++depth_;
        for (const StmtPtr& child :
             static_cast<const CompoundStmt&>(s).stmts) {
          stmt(*child);
        }
        --depth_;
        indent();
        out_ << "}\n";
        return;
      }
      case StmtKind::Decl: {
        const auto& n = static_cast<const DeclStmt&>(s);
        indent();
        for (std::size_t i = 0; i < n.decls.size(); ++i) {
          const VarDecl& d = n.decls[i];
          if (i != 0) out_ << " ";
          if (d.is_static) out_ << "static ";
          out_ << pure_aware_declaration(d.type, d.name);
          if (d.init) {
            out_ << " = ";
            expr(*d.init, 10);
          }
          out_ << ";";
        }
        out_ << "\n";
        return;
      }
      case StmtKind::Expr: {
        indent();
        expr(*static_cast<const ExprStmt&>(s).expr, 0);
        out_ << ";\n";
        return;
      }
      case StmtKind::If: {
        const auto& n = static_cast<const IfStmt&>(s);
        indent();
        out_ << "if (";
        expr(*n.cond, 0);
        out_ << ")\n";
        child_stmt(*n.then_stmt);
        if (n.else_stmt) {
          indent();
          out_ << "else\n";
          child_stmt(*n.else_stmt);
        }
        return;
      }
      case StmtKind::For: {
        const auto& n = static_cast<const ForStmt&>(s);
        indent();
        out_ << "for (";
        print_for_init(n);
        out_ << " ";
        if (n.cond) expr(*n.cond, 0);
        out_ << "; ";
        if (n.inc) expr(*n.inc, 0);
        out_ << ")\n";
        child_stmt(*n.body);
        return;
      }
      case StmtKind::While: {
        const auto& n = static_cast<const WhileStmt&>(s);
        indent();
        out_ << "while (";
        expr(*n.cond, 0);
        out_ << ")\n";
        child_stmt(*n.body);
        return;
      }
      case StmtKind::DoWhile: {
        const auto& n = static_cast<const DoWhileStmt&>(s);
        indent();
        out_ << "do\n";
        child_stmt(*n.body);
        indent();
        out_ << "while (";
        expr(*n.cond, 0);
        out_ << ");\n";
        return;
      }
      case StmtKind::Return: {
        const auto& n = static_cast<const ReturnStmt&>(s);
        indent();
        out_ << "return";
        if (n.value) {
          out_ << " ";
          expr(*n.value, 0);
        }
        out_ << ";\n";
        return;
      }
      case StmtKind::Break:
        indent();
        out_ << "break;\n";
        return;
      case StmtKind::Continue:
        indent();
        out_ << "continue;\n";
        return;
      case StmtKind::Null:
        indent();
        out_ << ";\n";
        return;
      case StmtKind::Pragma:
        // Pragmas always flush left: they are preprocessor lines.
        out_ << static_cast<const PragmaStmt&>(s).text << "\n";
        return;
    }
  }

  void print_for_init(const ForStmt& n) {
    if (!n.init || n.init->kind() == StmtKind::Null) {
      out_ << ";";
      return;
    }
    if (const auto* d = stmt_cast<DeclStmt>(n.init.get())) {
      for (std::size_t i = 0; i < d->decls.size(); ++i) {
        const VarDecl& v = d->decls[i];
        if (i == 0) {
          out_ << pure_aware_declaration(v.type, v.name);
        } else {
          // Shared specifier in `for (int i = 0, j = 1; ...)`.
          out_ << ", " << v.name;
        }
        if (v.init) {
          out_ << " = ";
          expr(*v.init, 10);
        }
      }
      out_ << ";";
      return;
    }
    if (const auto* es = stmt_cast<ExprStmt>(n.init.get())) {
      expr(*es->expr, 0);
      out_ << ";";
      return;
    }
    out_ << ";";
  }

  void child_stmt(const Stmt& s) {
    if (s.kind() == StmtKind::Compound) {
      stmt(s);
      return;
    }
    ++depth_;
    stmt(s);
    --depth_;
  }

  // -- top level -----------------------------------------------------------

  void function(const FunctionDecl& fn) {
    if (fn.is_pure && options_.pure_handling == PureHandling::Keep) {
      out_ << "pure ";
    }
    if (fn.annotate_gcc_pure &&
        options_.pure_handling == PureHandling::Lower) {
      // The verified guarantee survives lowering as the (unchecked) GCC
      // hint the paper contrasts with in §2.1.
      out_ << "__attribute__((pure)) ";
    }
    std::string params;
    if (fn.params.empty()) {
      params = fn.is_variadic ? "..." : "";
    } else {
      for (std::size_t i = 0; i < fn.params.size(); ++i) {
        if (i != 0) params += ", ";
        params += pure_aware_declaration(fn.params[i].type,
                                         fn.params[i].name);
      }
      if (fn.is_variadic) params += ", ...";
    }
    if (fn.is_static) out_ << "static ";
    out_ << declaration(Printer::strip_pure(fn.return_type),
                        fn.name + "(" + params + ")");
    if (fn.body) {
      out_ << "\n";
      stmt(*fn.body);
    } else {
      out_ << ";\n";
    }
  }

  void translation_unit(const TranslationUnit& tu) {
    for (const TopLevelItem& item : tu.items) {
      std::visit(
          [&](const auto& node) {
            using T = std::decay_t<decltype(node)>;
            if constexpr (std::is_same_v<T, std::string>) {
              out_ << node << "\n";
            } else if constexpr (std::is_same_v<
                                     T, std::unique_ptr<FunctionDecl>>) {
              function(*node);
            } else if constexpr (std::is_same_v<
                                     T, std::unique_ptr<GlobalVarDecl>>) {
              if (node->is_extern) out_ << "extern ";
              if (node->is_static) out_ << "static ";
              out_ << pure_aware_declaration(node->var.type, node->var.name);
              if (node->var.init) {
                out_ << " = ";
                expr(*node->var.init, 10);
              }
              out_ << ";\n";
            } else if constexpr (std::is_same_v<
                                     T, std::unique_ptr<StructDecl>>) {
              out_ << "struct " << node->tag << " {\n";
              for (const StructField& f : node->fields) {
                out_ << "  " << pure_aware_declaration(f.type, f.name)
                     << ";\n";
              }
              out_ << "};\n";
            } else if constexpr (std::is_same_v<
                                     T, std::unique_ptr<TypedefDecl>>) {
              out_ << "typedef "
                   << declaration(Printer::strip_pure(node->underlying),
                                  node->name)
                   << ";\n";
            }
          },
          item.node);
    }
  }

 private:
  const PrintOptions& options_;
  std::ostringstream out_;
  int depth_ = 0;
};

}  // namespace

std::string print_c(const TranslationUnit& tu, const PrintOptions& options) {
  Printer p(options);
  p.translation_unit(tu);
  return p.take();
}

std::string print_c(const Stmt& stmt, const PrintOptions& options) {
  Printer p(options);
  p.stmt(stmt);
  return p.take();
}

std::string print_c(const Expr& e, const PrintOptions& options) {
  Printer p(options);
  p.expr(e, 0);
  return p.take();
}

std::string format_declaration(const TypePtr& type, const std::string& name,
                               PureHandling pure_handling) {
  PrintOptions options;
  options.pure_handling = pure_handling;
  Printer p(options);
  return p.pure_aware_declaration(type, name);
}

}  // namespace purec

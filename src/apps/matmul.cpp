#include "apps/matmul.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace purec::apps {

namespace {

// ---------------------------------------------------------------------------
// The pure functions of the paper's Listing 7, kept as real calls
// (PUREC_NOINLINE models the call boundary the chain preserves).
// ---------------------------------------------------------------------------

PUREC_NOINLINE float mult_scalar(float a, float b) { return a * b; }

/// dot() as GCC -O2 compiles it: scalar loop, real calls to mult().
PUREC_NOINLINE float dot_scalar(const float* a, const float* b, int size) {
  float res = 0.0f;
  for (int i = 0; i < size; ++i) res += mult_scalar(a[i], b[i]);
  return res;
}

/// dot() as ICC compiles it: mult inlined and the loop vectorized
/// ("ICC can vectorize the extracted function", §4.3.1).
PUREC_NOINLINE PUREC_VECTORIZED float dot_vectorized(
    const float* __restrict a, const float* __restrict b, int size) {
  float res = 0.0f;
  for (int i = 0; i < size; ++i) res += a[i] * b[i];
  return res;
}

using DotFn = float (*)(const float*, const float*, int);

[[nodiscard]] DotFn dot_for(Compiler compiler) {
  return compiler == Compiler::Icc ? dot_vectorized : dot_scalar;
}

// ---------------------------------------------------------------------------
// Storage. Row-major n x n, one flat buffer per matrix; Bt holds B
// transposed exactly like the paper's code so dot() walks rows.
// ---------------------------------------------------------------------------

struct Matrices {
  int n = 0;
  std::vector<float> a;
  std::vector<float> bt;
  std::vector<float> c;
};

void fill_row(Matrices& m, int i) {
  const int n = m.n;
  for (int j = 0; j < n; ++j) {
    m.a[static_cast<std::size_t>(i) * n + j] =
        static_cast<float>((i * 7 + j * 3) % 11) * 0.25f;
    m.bt[static_cast<std::size_t>(i) * n + j] =
        static_cast<float>((i * 5 + j * 2) % 13) * 0.5f;
    m.c[static_cast<std::size_t>(i) * n + j] = 0.0f;
  }
}

/// Initialization (the paper's malloc+fill loop). The pure chain
/// parallelized this by accident (§4.3.1); `parallel` reproduces both
/// behaviors.
double init_matrices(Matrices& m, int n, bool parallel,
                     rt::ThreadPool& pool) {
  Timer timer;
  m.n = n;
  const auto total = static_cast<std::size_t>(n) * n;
  m.a.resize(total);
  m.bt.resize(total);
  m.c.resize(total);
  if (parallel) {
    rt::parallel_for_blocked(
        pool, 0, n,
        [&](std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i) {
            fill_row(m, static_cast<int>(i));
          }
        });
  } else {
    for (int i = 0; i < n; ++i) fill_row(m, i);
  }
  return timer.seconds();
}

[[nodiscard]] double checksum(const Matrices& m) {
  double sum = 0.0;
  const int n = m.n;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      sum += static_cast<double>(m.c[static_cast<std::size_t>(i) * n + j]) *
             ((i + 2 * j) % 5);
    }
  }
  return sum;
}

// ---------------------------------------------------------------------------
// Compute variants
// ---------------------------------------------------------------------------

/// Sequential / Pure: C[i][j] = dot(A[i], Bt[j]) with a real call.
void compute_calls(Matrices& m, DotFn dot, rt::ThreadPool* pool) {
  const int n = m.n;
  const float* a = m.a.data();
  const float* bt = m.bt.data();
  float* c = m.c.data();
  const auto row = [&](std::int64_t i) {
    for (int j = 0; j < n; ++j) {
      c[static_cast<std::size_t>(i) * n + j] =
          dot(&a[static_cast<std::size_t>(i) * n],
              &bt[static_cast<std::size_t>(j) * n], n);
    }
  };
  if (pool == nullptr) {
    for (int i = 0; i < n; ++i) row(i);
  } else {
    rt::parallel_for_blocked(*pool, 0, n,
                             [&](std::int64_t begin, std::int64_t end) {
                               for (std::int64_t i = begin; i < end; ++i) {
                                 row(i);
                               }
                             });
  }
}

/// PluTo: dot inlined into the nest, rectangular tiling, parallel over the
/// outermost tile loop. Scalar code (GCC -O2 does not vectorize this
/// reduction).
void compute_pluto_tile(const Matrices& m, float* __restrict c, int i0,
                        int i1, int j0, int j1) {
  const int n = m.n;
  const float* __restrict a = m.a.data();
  const float* __restrict bt = m.bt.data();
  for (int i = i0; i < i1; ++i) {
    for (int j = j0; j < j1; ++j) {
      float res = 0.0f;
      const float* ra = &a[static_cast<std::size_t>(i) * n];
      const float* rb = &bt[static_cast<std::size_t>(j) * n];
      for (int k = 0; k < n; ++k) res += ra[k] * rb[k];
      c[static_cast<std::size_t>(i) * n + j] = res;
    }
  }
}

/// PluTo-SICA: same tiling, vectorized inner kernel.
PUREC_VECTORIZED void compute_sica_tile(const Matrices& m,
                                        float* __restrict c, int i0, int i1,
                                        int j0, int j1) {
  const int n = m.n;
  const float* __restrict a = m.a.data();
  const float* __restrict bt = m.bt.data();
  for (int i = i0; i < i1; ++i) {
    for (int j = j0; j < j1; ++j) {
      float res = 0.0f;
      const float* __restrict ra = &a[static_cast<std::size_t>(i) * n];
      const float* __restrict rb = &bt[static_cast<std::size_t>(j) * n];
      for (int k = 0; k < n; ++k) res += ra[k] * rb[k];
      c[static_cast<std::size_t>(i) * n + j] = res;
    }
  }
}

void compute_tiled(Matrices& m, int tile, rt::ThreadPool& pool,
                   bool vectorized) {
  const int n = m.n;
  const int tiles_i = (n + tile - 1) / tile;
  const int tiles_j = (n + tile - 1) / tile;
  float* c = m.c.data();
  rt::parallel_for(
      pool, 0, tiles_i,
      [&](std::int64_t ti) {
        const int i0 = static_cast<int>(ti) * tile;
        const int i1 = std::min(i0 + tile, n);
        for (int tj = 0; tj < tiles_j; ++tj) {
          const int j0 = tj * tile;
          const int j1 = std::min(j0 + tile, n);
          if (vectorized) {
            compute_sica_tile(m, c, i0, i1, j0, j1);
          } else {
            compute_pluto_tile(m, c, i0, i1, j0, j1);
          }
        }
      });
}

/// MKL proxy: 2x4-row register blocking over the contiguous k-stream with
/// a fixed-trip fast path the compiler fully unrolls and vectorizes. Not
/// MKL, but a credible hand-tuned kernel that plays its role as the "how
/// far can tuning go" upper bound.
PUREC_VECTORIZED void mkl_microkernel_2x4(const float* __restrict a,
                                          const float* __restrict bt,
                                          float* __restrict c, int n, int i,
                                          int j) {
  // 2 rows of A x 4 rows of Bt, each pair reduced over the contiguous
  // k-stream in 8 independent vector accumulators (the compiler maps
  // these onto SIMD registers; fast-math allows the reduction split).
  const float* __restrict a0 = &a[static_cast<std::size_t>(i) * n];
  const float* __restrict a1 = &a[static_cast<std::size_t>(i + 1) * n];
  const float* __restrict b0 = &bt[static_cast<std::size_t>(j) * n];
  const float* __restrict b1 = &bt[static_cast<std::size_t>(j + 1) * n];
  const float* __restrict b2 = &bt[static_cast<std::size_t>(j + 2) * n];
  const float* __restrict b3 = &bt[static_cast<std::size_t>(j + 3) * n];
  float s00 = 0.0f, s01 = 0.0f, s02 = 0.0f, s03 = 0.0f;
  float s10 = 0.0f, s11 = 0.0f, s12 = 0.0f, s13 = 0.0f;
  for (int k = 0; k < n; ++k) {
    const float x0 = a0[k];
    const float x1 = a1[k];
    s00 += x0 * b0[k];
    s01 += x0 * b1[k];
    s02 += x0 * b2[k];
    s03 += x0 * b3[k];
    s10 += x1 * b0[k];
    s11 += x1 * b1[k];
    s12 += x1 * b2[k];
    s13 += x1 * b3[k];
  }
  float* __restrict c0 = &c[static_cast<std::size_t>(i) * n + j];
  float* __restrict c1 = &c[static_cast<std::size_t>(i + 1) * n + j];
  c0[0] = s00; c0[1] = s01; c0[2] = s02; c0[3] = s03;
  c1[0] = s10; c1[1] = s11; c1[2] = s12; c1[3] = s13;
}

/// Remainder path (edges not covered by full 2x4 blocks).
PUREC_VECTORIZED void mkl_edge(const float* __restrict a,
                               const float* __restrict bt,
                               float* __restrict c, int n, int i0, int i1,
                               int j0, int j1) {
  for (int i = i0; i < i1; ++i) {
    for (int j = j0; j < j1; ++j) {
      const float* __restrict ra = &a[static_cast<std::size_t>(i) * n];
      const float* __restrict rb = &bt[static_cast<std::size_t>(j) * n];
      float sum = 0.0f;
      for (int k = 0; k < n; ++k) sum += ra[k] * rb[k];
      c[static_cast<std::size_t>(i) * n + j] = sum;
    }
  }
}

void mkl_block(const float* __restrict a, const float* __restrict bt,
               float* __restrict c, int n, int i0, int i1, int j0, int j1) {
  const int i_full = i0 + (i1 - i0) / 2 * 2;
  const int j_full = j0 + (j1 - j0) / 4 * 4;
  for (int i = i0; i < i_full; i += 2) {
    for (int j = j0; j < j_full; j += 4) {
      mkl_microkernel_2x4(a, bt, c, n, i, j);
    }
  }
  if (j_full < j1) mkl_edge(a, bt, c, n, i0, i_full, j_full, j1);
  if (i_full < i1) mkl_edge(a, bt, c, n, i_full, i1, j0, j1);
}

void compute_mkl_proxy(Matrices& m, rt::ThreadPool& pool) {
  const int n = m.n;
  constexpr int kPanel = 64;
  const int panels = (n + kPanel - 1) / kPanel;
  float* c = m.c.data();
  rt::parallel_for(pool, 0, panels, [&](std::int64_t p) {
    const int i0 = static_cast<int>(p) * kPanel;
    const int i1 = std::min(i0 + kPanel, n);
    for (int j0 = 0; j0 < n; j0 += kPanel) {
      const int j1 = std::min(j0 + kPanel, n);
      mkl_block(m.a.data(), m.bt.data(), c, n, i0, i1, j0, j1);
    }
  });
}

}  // namespace

const char* to_string(MatmulVariant variant) noexcept {
  switch (variant) {
    case MatmulVariant::Sequential: return "seq";
    case MatmulVariant::Pure: return "pure";
    case MatmulVariant::PureNoInit: return "pure_noinit";
    case MatmulVariant::Pluto: return "pluto";
    case MatmulVariant::PlutoSica: return "pluto_sica";
    case MatmulVariant::MklProxy: return "mkl_proxy";
  }
  return "?";
}

RunResult run_matmul(MatmulVariant variant, const MatmulConfig& config,
                     rt::ThreadPool& pool) {
  RunResult result;
  Matrices m;
  // §4.3.1: only the Pure variant inherits the parallel allocation loop.
  const bool parallel_init = variant == MatmulVariant::Pure;
  result.init_seconds = init_matrices(m, config.n, parallel_init, pool);

  Timer timer;
  switch (variant) {
    case MatmulVariant::Sequential:
      compute_calls(m, dot_for(config.compiler), nullptr);
      break;
    case MatmulVariant::Pure:
    case MatmulVariant::PureNoInit:
      compute_calls(m, dot_for(config.compiler), &pool);
      break;
    case MatmulVariant::Pluto:
      // Plain PluTo never vectorizes; ICC does not help the inlined loop
      // either (§4.3.1: "this automatic vectorization is not carried out
      // when the function is inlined").
      compute_tiled(m, config.tile, pool, /*vectorized=*/false);
      break;
    case MatmulVariant::PlutoSica:
      compute_tiled(m, config.tile, pool, /*vectorized=*/true);
      break;
    case MatmulVariant::MklProxy:
      compute_mkl_proxy(m, pool);
      break;
  }
  result.compute_seconds = timer.seconds();
  result.checksum = checksum(m);
  return result;
}

}  // namespace purec::apps

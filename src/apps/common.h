// Shared helpers for the evaluation applications: deterministic RNG,
// aligned buffers, wall-clock timing, and the "compiler proxy" attribute.
//
// The paper compares GCC 7.2 -O2 against ICC 16 (whose win comes from
// auto-vectorizing the extracted pure functions). We have one compiler, so
// the ICC role is played by compiling the variant's kernels with
// aggressive vectorization flags via function attributes — same code
// path, vectorized vs. not, which is exactly the distinction the paper
// measures (§4.2, DESIGN.md substitution table).
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

namespace purec::apps {

/// Marks a kernel for the "ICC proxy" build: aggressive vectorization.
/// fast-math is required for GCC to vectorize float reductions — the same
/// liberty ICC's default (-fp-model fast) takes, which is where its
/// matmul edge in the paper comes from.
#define PUREC_VECTORIZED \
  __attribute__((optimize("O3", "tree-vectorize", "unroll-loops", \
                          "fast-math")))

/// Prevents inlining — models the function-call boundary that the pure
/// chain keeps (PluTo inlines, the pure chain calls; §4.3.1/§4.3.2).
#define PUREC_NOINLINE __attribute__((noinline))

/// Which compiler the variant models.
enum class Compiler { Gcc, Icc };

/// SplitMix64: deterministic, fast, good-enough distribution for inputs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float next_float(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    return next_u64() % bound;
  }

 private:
  std::uint64_t state_;
};

/// Monotonic seconds.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Per-phase result every app run reports.
struct RunResult {
  double init_seconds = 0.0;
  double compute_seconds = 0.0;
  double checksum = 0.0;

  [[nodiscard]] double total_seconds() const {
    return init_seconds + compute_seconds;
  }
};

}  // namespace purec::apps

#include "apps/heat.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace purec::apps {

namespace {

/// The pure stencil function, kept as a real call for the Pure variant.
PUREC_NOINLINE float stencil_point(const float* grid, int n, int i, int j) {
  const std::size_t row = static_cast<std::size_t>(i) * n;
  return 0.25f * (grid[row - n + j] + grid[row + n + j] + grid[row + j - 1] +
                  grid[row + j + 1]);
}

/// ICC-proxy: per-row stencil with the call inlined and vectorized.
PUREC_NOINLINE PUREC_VECTORIZED void stencil_row_vectorized(
    const float* __restrict src, float* __restrict dst, int n, int i) {
  const std::size_t row = static_cast<std::size_t>(i) * n;
  for (int j = 1; j < n - 1; ++j) {
    dst[row + j] = 0.25f * (src[row - n + j] + src[row + n + j] +
                            src[row + j - 1] + src[row + j + 1]);
  }
}

struct Grids {
  int n = 0;
  std::vector<float> cur;
  std::vector<float> nxt;

  void heat_source() {
    // The paper's plate is "permanently heated at one point on one side".
    cur[static_cast<std::size_t>(n / 2) * n] = 100.0f;
  }
};

double init_grids(Grids& g, int n) {
  Timer timer;
  g.n = n;
  g.cur.assign(static_cast<std::size_t>(n) * n, 0.0f);
  g.nxt.assign(static_cast<std::size_t>(n) * n, 0.0f);
  g.heat_source();
  return timer.seconds();
}

[[nodiscard]] double checksum(const Grids& g) {
  double sum = 0.0;
  for (std::size_t i = 0; i < g.cur.size(); ++i) {
    sum += static_cast<double>(g.cur[i]) * (1 + (i % 7));
  }
  return sum;
}

/// One Jacobi step over rows [r0, r1), function-call style.
void step_rows_calls(const Grids& g, float* dst, int r0, int r1) {
  const int n = g.n;
  const float* src = g.cur.data();
  for (int i = r0; i < r1; ++i) {
    for (int j = 1; j < n - 1; ++j) {
      dst[static_cast<std::size_t>(i) * n + j] =
          stencil_point(src, n, i, j);
    }
  }
}

/// One Jacobi step over rows [r0, r1), inlined scalar (PluTo, GCC).
void step_rows_inlined(const Grids& g, float* __restrict dst, int r0,
                       int r1) {
  const int n = g.n;
  const float* __restrict src = g.cur.data();
  for (int i = r0; i < r1; ++i) {
    const std::size_t row = static_cast<std::size_t>(i) * n;
    for (int j = 1; j < n - 1; ++j) {
      dst[row + j] = 0.25f * (src[row - n + j] + src[row + n + j] +
                              src[row + j - 1] + src[row + j + 1]);
    }
  }
}

void one_step(Grids& g, HeatVariant variant, Compiler compiler,
              rt::ThreadPool* pool) {
  const int n = g.n;
  float* dst = g.nxt.data();
  const auto rows = [&](std::int64_t r0, std::int64_t r1) {
    const int a = static_cast<int>(r0);
    const int b = static_cast<int>(r1);
    switch (variant) {
      case HeatVariant::Sequential:
      case HeatVariant::Pure:
        if (compiler == Compiler::Icc) {
          for (int i = a; i < b; ++i) {
            stencil_row_vectorized(g.cur.data(), dst, n, i);
          }
        } else {
          step_rows_calls(g, dst, a, b);
        }
        return;
      case HeatVariant::Pluto:
        // PluTo inlines; ICC's vectorization "does not have a positive
        // impact on this application" (§4.3.2), so both compilers run the
        // scalar inlined kernel.
        step_rows_inlined(g, dst, a, b);
        return;
    }
  };
  if (pool == nullptr) {
    rows(1, n - 1);
  } else {
    rt::parallel_for_blocked(*pool, 1, n - 1, rows);
  }
  std::swap(g.cur, g.nxt);
  g.heat_source();
}

}  // namespace

const char* to_string(HeatVariant variant) noexcept {
  switch (variant) {
    case HeatVariant::Sequential: return "seq";
    case HeatVariant::Pure: return "pure";
    case HeatVariant::Pluto: return "pluto";
  }
  return "?";
}

RunResult run_heat(HeatVariant variant, const HeatConfig& config,
                   rt::ThreadPool& pool) {
  RunResult result;
  Grids g;
  result.init_seconds = init_grids(g, config.n);
  rt::ThreadPool* exec =
      variant == HeatVariant::Sequential ? nullptr : &pool;
  Timer timer;
  for (int s = 0; s < config.steps; ++s) {
    one_step(g, variant, config.compiler, exec);
  }
  result.compute_seconds = timer.seconds();
  result.checksum = checksum(g);
  return result;
}

}  // namespace purec::apps

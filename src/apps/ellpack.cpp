#include "apps/ellpack.h"

#include <algorithm>
#include <vector>

namespace purec::apps {

namespace {

/// ELL storage, column-major like LAMA: entry k of row i lives at
/// values[k * rows + i]. Rows shorter than `width` are padded with
/// column 0 / value 0 (the standard ELL convention).
struct EllMatrix {
  int rows = 0;
  int width = 0;
  std::vector<float> values;
  std::vector<int> cols;
  std::vector<int> row_nnz;
  std::vector<float> x;
  std::vector<float> y;
};

double init_matrix(EllMatrix& m, const EllConfig& config) {
  Timer timer;
  const int rows = config.rows;
  m.rows = rows;
  Rng rng(0xe11ULL);

  // Banded FEM-like pattern: each row couples to a contiguous neighbor
  // window. Early/middle rows are dense (structured hexahedral region),
  // the last ~15% taper off (boundary region) — the end-of-matrix
  // imbalance of §4.3.4.
  m.row_nnz.resize(rows);
  int width = 0;
  const int tail_start = rows - rows / 7;
  for (int i = 0; i < rows; ++i) {
    int nnz = config.avg_row_nnz +
              static_cast<int>(rng.next_below(17)) - 8;  // +-8 jitter
    if (i >= tail_start) {
      // Taper towards ~1/4 of the average at the very end.
      const double fade = static_cast<double>(rows - i) /
                          static_cast<double>(rows - tail_start);
      nnz = static_cast<int>(nnz * (0.25 + 0.75 * fade));
    }
    nnz = std::max(nnz, 3);
    m.row_nnz[i] = nnz;
    width = std::max(width, nnz);
  }
  m.width = width;

  const std::size_t cells = static_cast<std::size_t>(width) * rows;
  m.values.assign(cells, 0.0f);
  m.cols.assign(cells, 0);
  for (int i = 0; i < rows; ++i) {
    const int nnz = m.row_nnz[i];
    // Symmetric-ish band around the diagonal.
    const int band_begin = std::max(0, i - nnz / 2);
    for (int k = 0; k < nnz; ++k) {
      const int col = std::min(band_begin + k, rows - 1);
      m.cols[static_cast<std::size_t>(k) * rows + i] = col;
      m.values[static_cast<std::size_t>(k) * rows + i] =
          rng.next_float(-1.0f, 1.0f);
    }
  }

  m.x.resize(rows);
  for (int i = 0; i < rows; ++i) m.x[i] = rng.next_float(0.0f, 1.0f);
  m.y.assign(rows, 0.0f);
  return timer.seconds();
}

/// The pure row dot product (kept as a call for Sequential/PureAuto —
/// indirect addressing lives inside, which is why plain PluTo cannot
/// touch this code and the pure chain can).
PUREC_NOINLINE float ell_row_dot(const float* values, const int* cols,
                                 const float* x, int row, int rows,
                                 int width) {
  float sum = 0.0f;
  for (int k = 0; k < width; ++k) {
    sum += values[static_cast<std::size_t>(k) * rows + row] *
           x[cols[static_cast<std::size_t>(k) * rows + row]];
  }
  return sum;
}

/// ICC-proxy of the same function (vectorized gather loop).
PUREC_NOINLINE PUREC_VECTORIZED float ell_row_dot_vec(
    const float* __restrict values, const int* __restrict cols,
    const float* __restrict x, int row, int rows, int width) {
  float sum = 0.0f;
  for (int k = 0; k < width; ++k) {
    sum += values[static_cast<std::size_t>(k) * rows + row] *
           x[cols[static_cast<std::size_t>(k) * rows + row]];
  }
  return sum;
}

void spmv_rows_calls(const EllMatrix& m, float* y, std::int64_t r0,
                     std::int64_t r1, Compiler compiler) {
  const auto dot = compiler == Compiler::Icc ? ell_row_dot_vec : ell_row_dot;
  for (std::int64_t i = r0; i < r1; ++i) {
    y[i] = dot(m.values.data(), m.cols.data(), m.x.data(),
               static_cast<int>(i), m.rows, m.width);
  }
}

/// Hand-written LAMA loop: dot inlined, same static schedule.
void spmv_rows_inlined(const EllMatrix& m, float* __restrict y,
                       std::int64_t r0, std::int64_t r1) {
  const float* __restrict values = m.values.data();
  const int* __restrict cols = m.cols.data();
  const float* __restrict x = m.x.data();
  const int rows = m.rows;
  const int width = m.width;
  for (std::int64_t i = r0; i < r1; ++i) {
    float sum = 0.0f;
    for (int k = 0; k < width; ++k) {
      sum += values[static_cast<std::size_t>(k) * rows + i] *
             x[cols[static_cast<std::size_t>(k) * rows + i]];
    }
    y[i] = sum;
  }
}

[[nodiscard]] double checksum(const EllMatrix& m) {
  double sum = 0.0;
  for (std::size_t i = 0; i < m.y.size(); ++i) {
    sum += static_cast<double>(m.y[i]) * (1 + (i % 3));
  }
  return sum;
}

}  // namespace

const char* to_string(EllVariant variant) noexcept {
  switch (variant) {
    case EllVariant::Sequential: return "seq";
    case EllVariant::PureAuto: return "pure_auto";
    case EllVariant::HandStatic: return "hand_static";
  }
  return "?";
}

RunResult run_ell(EllVariant variant, const EllConfig& config,
                  rt::ThreadPool& pool) {
  RunResult result;
  EllMatrix m;
  result.init_seconds = init_matrix(m, config);
  float* y = m.y.data();

  Timer timer;
  for (int rep = 0; rep < config.repetitions; ++rep) {
    switch (variant) {
      case EllVariant::Sequential:
        spmv_rows_calls(m, y, 0, m.rows, config.compiler);
        break;
      case EllVariant::PureAuto:
        rt::parallel_for_blocked(
            pool, 0, m.rows,
            [&](std::int64_t b, std::int64_t e) {
              spmv_rows_calls(m, y, b, e, config.compiler);
            },
            {rt::Schedule::Static, 1});
        break;
      case EllVariant::HandStatic:
        rt::parallel_for_blocked(
            pool, 0, m.rows,
            [&](std::int64_t b, std::int64_t e) {
              spmv_rows_inlined(m, y, b, e);
            },
            {rt::Schedule::Static, 1});
        break;
    }
  }
  result.compute_seconds = timer.seconds();
  result.checksum = checksum(m);
  return result;
}

}  // namespace purec::apps

#include "apps/satellite.h"

#include <cmath>
#include <vector>

namespace purec::apps {

namespace {

/// Synthetic hyperspectral cube, band-major: bands[b][y*w + x].
struct Cube {
  int width = 0;
  int height = 0;
  int bands = 0;
  std::vector<float> data;  // bands * height * width
  std::vector<float> aod;   // height * width output

  [[nodiscard]] const float* band(int b) const {
    return data.data() +
           static_cast<std::size_t>(b) * height * width;
  }
};

double init_cube(Cube& cube, const SatelliteConfig& config) {
  Timer timer;
  cube.width = config.width;
  cube.height = config.height;
  cube.bands = config.bands;
  cube.data.resize(static_cast<std::size_t>(config.bands) * config.height *
                   config.width);
  cube.aod.assign(
      static_cast<std::size_t>(config.height) * config.width, 0.0f);
  Rng rng(0x5eedULL);
  for (int b = 0; b < config.bands; ++b) {
    float* plane = cube.data.data() +
                   static_cast<std::size_t>(b) * config.height * config.width;
    for (int y = 0; y < config.height; ++y) {
      for (int x = 0; x < config.width; ++x) {
        // Reflectance-like values; a smooth "haze" gradient grows towards
        // the bottom of the scene so late rows carry more aerosol signal
        // (the paper's late-phase imbalance).
        const float base = rng.next_float(0.05f, 0.6f);
        const float haze =
            0.35f * static_cast<float>(y) / static_cast<float>(config.height);
        plane[static_cast<std::size_t>(y) * config.width + x] = base + haze;
      }
    }
  }
  return timer.seconds();
}

/// The per-pixel retrieval: an iterative lookup-table refinement in the
/// style of Wang et al. (the paper's AOD method). The loop count depends
/// on the pixel's spectral content — several hundred flops for clear
/// pixels, a few thousand for hazy ones. PUREC_NOINLINE: this is the
/// complex pure function the chain leaves as a call.
PUREC_NOINLINE float retrieve_aod(const float* cube, int bands, int stride,
                                  int pixel) {
  // Spectral aggregate drives the refinement depth.
  float signal = 0.0f;
  for (int b = 0; b < bands; ++b) {
    signal += cube[static_cast<std::size_t>(b) * stride + pixel];
  }
  signal /= static_cast<float>(bands);

  // Dynamic conditional iteration count (this is what breaks static
  // dependence analysis of the function body).
  int refinements = 24 + static_cast<int>(signal * 220.0f);
  if (signal > 0.55f) refinements *= 3;

  float tau = 0.1f;
  for (int r = 0; r < refinements; ++r) {
    float residual = 0.0f;
    for (int b = 0; b < bands; ++b) {
      const float obs = cube[static_cast<std::size_t>(b) * stride + pixel];
      // Toy radiative-transfer model: exponential attenuation per band.
      const float modeled = obs * (1.0f - std::exp(-tau * (1.0f + 0.1f * b)));
      residual += obs - modeled;
    }
    tau += 0.001f * residual;
    if (residual < 1e-4f && residual > -1e-4f) break;
  }
  return tau;
}

void process_range(const Cube& cube, float* out, std::int64_t begin,
                   std::int64_t end) {
  const int stride = cube.width * cube.height;
  for (std::int64_t p = begin; p < end; ++p) {
    out[p] = retrieve_aod(cube.data.data(), cube.bands, stride,
                          static_cast<int>(p));
  }
}

[[nodiscard]] double checksum(const Cube& cube) {
  double sum = 0.0;
  for (std::size_t i = 0; i < cube.aod.size(); ++i) {
    sum += static_cast<double>(cube.aod[i]) * (1 + (i % 5));
  }
  return sum;
}

}  // namespace

const char* to_string(SatelliteVariant variant) noexcept {
  switch (variant) {
    case SatelliteVariant::Sequential: return "seq";
    case SatelliteVariant::AutoStatic: return "auto_static";
    case SatelliteVariant::AutoDynamic: return "auto_dynamic";
    case SatelliteVariant::HandDynamic: return "hand_dynamic";
  }
  return "?";
}

namespace {

RunResult run_with_options(const SatelliteConfig& config,
                           rt::ThreadPool* pool,
                           const rt::ForOptions& options) {
  RunResult result;
  Cube cube;
  result.init_seconds = init_cube(cube, config);
  const std::int64_t pixels =
      static_cast<std::int64_t>(config.width) * config.height;
  float* out = cube.aod.data();

  Timer timer;
  if (pool == nullptr) {
    process_range(cube, out, 0, pixels);
  } else {
    rt::parallel_for_blocked(
        *pool, 0, pixels,
        [&](std::int64_t b, std::int64_t e) {
          process_range(cube, out, b, e);
        },
        options);
  }
  result.compute_seconds = timer.seconds();
  result.checksum = checksum(cube);
  return result;
}

}  // namespace

RunResult run_satellite_schedule(const SatelliteConfig& config,
                                 rt::ThreadPool& pool,
                                 const rt::ForOptions& options) {
  return run_with_options(config, &pool, options);
}

RunResult run_satellite(SatelliteVariant variant,
                        const SatelliteConfig& config, rt::ThreadPool& pool) {
  switch (variant) {
    case SatelliteVariant::Sequential:
      return run_with_options(config, nullptr, {});
    case SatelliteVariant::AutoStatic:
      // The chain's raw output: static partition of the pixel loop.
      return run_with_options(config, &pool, {rt::Schedule::Static, 1});
    case SatelliteVariant::AutoDynamic:
      // schedule(dynamic,1) over rows — the paper's manual fix of the
      // generated pragma.
      return run_with_options(config, &pool,
                              {rt::Schedule::Dynamic, config.width});
    case SatelliteVariant::HandDynamic:
      // Hand-tuned: dynamic with a 4-row chunk (less queue contention).
      return run_with_options(config, &pool,
                              {rt::Schedule::Dynamic, 4 * config.width});
  }
  return run_with_options(config, nullptr, {});
}

}  // namespace purec::apps

// Application 1 (§4.3.1): matrix-matrix multiplication with a pure dot
// product. Every variant the paper measures is implemented as the exact
// loop/call structure its compiler chain would produce:
//
//   Sequential     — the untransformed program (dot called per element)
//   Pure           — the pure chain's output: parallel outer loop, dot()
//                    stays a function call; the allocation loop is ALSO
//                    parallelized (malloc is in the hashset, §4.3.1)
//   PureNoInit     — same, with the init loop manually kept sequential
//                    (the black bars of Fig. 3)
//   Pluto          — standalone PluTo: dot inlined, loop nest tiled,
//                    parallel outer tile loop
//   PlutoSica      — PluTo-SICA: inlined + tiled + vectorized inner loop
//   MklProxy       — hand-tuned blocked kernel playing Intel MKL's role
//
// Compiler::Icc selects the vectorized ("ICC auto-vectorizes the extracted
// dot function") build of the same structure.
#pragma once

#include "apps/common.h"
#include "runtime/parallel_for.h"

namespace purec::apps {

enum class MatmulVariant {
  Sequential,
  Pure,
  PureNoInit,
  Pluto,
  PlutoSica,
  MklProxy,
};

struct MatmulConfig {
  int n = 896;          // paper: 4096 (env PUREC_FULL=1 in the benches)
  int tile = 64;        // PluTo tile size
  Compiler compiler = Compiler::Gcc;
};

/// Runs one variant on `threads` workers. Deterministic inputs; the
/// checksum is identical across variants (tests assert this).
[[nodiscard]] RunResult run_matmul(MatmulVariant variant,
                                   const MatmulConfig& config,
                                   rt::ThreadPool& pool);

[[nodiscard]] const char* to_string(MatmulVariant variant) noexcept;

}  // namespace purec::apps

// Application 4 (§4.3.4): ELL sparse matrix-vector multiplication — the
// standalone LAMA ELLMatrix kernel.
//
// Substitution (see DESIGN.md): the Boeing/pwtk wind-tunnel stiffness
// matrix (217,918 rows, 11.5M nonzeros) is replaced by a synthetic
// symmetric banded FEM-style matrix with the same shape characteristics:
// ~53 nonzeros/row on average, stored column-major in ELL format
// (values[k * rows + i]), with a sparser tail region so "the thread load
// differs greatly at the end of the program" exactly as the paper
// describes.
//
// Variants:
//   Sequential — one thread, row dot product as a pure-function call
//   PureAuto   — the chain's output: parallel row loop, schedule(static),
//                row dot stays a call
//   HandStatic — the manually parallelized LAMA code:
//                `#pragma omp parallel for schedule(static)` with the dot
//                inlined (what LAMA ships)
#pragma once

#include "apps/common.h"
#include "runtime/parallel_for.h"

namespace purec::apps {

enum class EllVariant {
  Sequential,
  PureAuto,
  HandStatic,
};

struct EllConfig {
  int rows = 120000;      // pwtk: 217918 (PUREC_FULL=1)
  int avg_row_nnz = 53;   // pwtk: ~52.9
  Compiler compiler = Compiler::Gcc;
  int repetitions = 50;   // SpMV is too fast to time once
};

[[nodiscard]] RunResult run_ell(EllVariant variant, const EllConfig& config,
                                rt::ThreadPool& pool);

[[nodiscard]] const char* to_string(EllVariant variant) noexcept;

}  // namespace purec::apps

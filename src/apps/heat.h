// Application 2 (§4.3.2): iterative heat distribution on a point-heated
// plate. Two-grid Jacobi; the temperature of each cell becomes the average
// of its four neighbours, one corner cell is held hot.
//
// Variants mirror the paper:
//   Sequential — stencil as a function call, one thread
//   Pure       — the chain's output: parallel row loop, the stencil STAYS
//                a function call (the call overhead is why PluTo beats
//                Pure here: 87.8G vs 47.5G instructions, §4.3.2)
//   Pluto      — stencil inlined, tiled, parallel (PluTo == PluTo-SICA for
//                this code; vectorization does not pay, §4.3.2)
//
// Compiler::Icc vectorizes the per-row kernels (the modest ICC edge of
// Fig. 6/7).
#pragma once

#include "apps/common.h"
#include "runtime/parallel_for.h"

namespace purec::apps {

enum class HeatVariant {
  Sequential,
  Pure,
  Pluto,
};

struct HeatConfig {
  int n = 1024;      // paper: 4096
  int steps = 50;    // paper: 200
  int tile = 64;
  Compiler compiler = Compiler::Gcc;
};

[[nodiscard]] RunResult run_heat(HeatVariant variant,
                                 const HeatConfig& config,
                                 rt::ThreadPool& pool);

[[nodiscard]] const char* to_string(HeatVariant variant) noexcept;

}  // namespace purec::apps

// Application 3 (§4.3.3): satellite image processing — aerosol optical
// depth (AOD) retrieval from hyperspectral observations.
//
// Substitution (see DESIGN.md): the MODIS/Aqua scene is replaced by a
// synthetic hyperspectral cube whose per-pixel retrieval cost is
// data-dependent (an iterative refinement whose trip count depends on the
// pixel's "aerosol" content) and spatially skewed: late image regions are
// systematically more expensive. That reproduces the paper's observed
// "unbalanced behavior in the later program phases" which static OpenMP
// scheduling handles poorly and `schedule(dynamic,1)` fixes.
//
// Variants:
//   Sequential  — one thread
//   AutoStatic  — the chain's raw output: parallel pixel loop, static
//   AutoDynamic — chain output manually extended with schedule(dynamic,1)
//                 (the paper's adaptation)
//   HandDynamic — hand-written OpenMP port (dynamic + slightly larger
//                 chunk, the "internal knowledge" version)
#pragma once

#include "apps/common.h"
#include "runtime/parallel_for.h"

namespace purec::apps {

enum class SatelliteVariant {
  Sequential,
  AutoStatic,
  AutoDynamic,
  HandDynamic,
};

struct SatelliteConfig {
  int width = 512;    // paper scene: MODIS granule (~1354x2030)
  int height = 512;
  int bands = 8;
  Compiler compiler = Compiler::Gcc;
};

[[nodiscard]] RunResult run_satellite(SatelliteVariant variant,
                                      const SatelliteConfig& config,
                                      rt::ThreadPool& pool);

/// Runs the retrieval with an arbitrary runtime schedule (the
/// --schedule sweep's entry point; the named variants above are fixed
/// points of this). `options.chunk` counts pixels.
[[nodiscard]] RunResult run_satellite_schedule(const SatelliteConfig& config,
                                               rt::ThreadPool& pool,
                                               const rt::ForOptions& options);

[[nodiscard]] const char* to_string(SatelliteVariant variant) noexcept;

}  // namespace purec::apps

// PC-PrePro / PC-PosPro (paper Fig. 1): system includes are removed before
// the chain runs (the AntLR-based pass cannot digest system headers) and
// re-inserted verbatim afterwards.
#pragma once

#include <string>
#include <vector>

namespace purec {

struct StrippedSource {
  std::string text;                          // source without system includes
  std::vector<std::string> system_includes;  // removed lines, original order
};

/// Removes every `#include <...>` line. `#include "..."` lines are left in
/// place for the (mini) preprocessor to resolve, exactly like the paper's
/// chain leaves user includes to GCC-E.
[[nodiscard]] StrippedSource strip_system_includes(const std::string& source);

/// PC-PosPro: puts the removed includes back at the top of the file (the
/// paper re-adds them before the final GCC compile). `extra_includes` lets
/// the chain append e.g. `#include <omp.h>` and the floord/ceild helpers.
[[nodiscard]] std::string restore_system_includes(
    const std::string& source,
    const std::vector<std::string>& system_includes,
    const std::vector<std::string>& extra_includes = {});

}  // namespace purec

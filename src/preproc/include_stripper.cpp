#include "preproc/include_stripper.h"

#include <sstream>

#include "support/string_utils.h"

namespace purec {

namespace {

[[nodiscard]] bool is_system_include(std::string_view line) {
  std::string_view t = trim(line);
  if (t.empty() || t.front() != '#') return false;
  t.remove_prefix(1);
  t = trim(t);
  if (!starts_with(t, "include")) return false;
  t.remove_prefix(7);
  t = trim(t);
  return !t.empty() && t.front() == '<';
}

}  // namespace

StrippedSource strip_system_includes(const std::string& source) {
  StrippedSource out;
  std::ostringstream kept;
  for (std::string_view line : split_lines(source)) {
    if (is_system_include(line)) {
      out.system_includes.emplace_back(line);
      // Keep the line count stable for diagnostics: leave an empty line.
      kept << "\n";
    } else {
      kept << line << "\n";
    }
  }
  out.text = std::move(kept).str();
  return out;
}

std::string restore_system_includes(
    const std::string& source,
    const std::vector<std::string>& system_includes,
    const std::vector<std::string>& extra_includes) {
  std::ostringstream out;
  for (const std::string& inc : system_includes) out << inc << "\n";
  for (const std::string& inc : extra_includes) out << inc << "\n";
  out << source;
  return std::move(out).str();
}

}  // namespace purec

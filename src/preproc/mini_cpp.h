// Miniature C preprocessor standing in for GCC-E in the chain. Supports the
// directives the evaluation codes need: object- and function-like #define,
// #undef, #include "..." (through a virtual file map), and
// #ifdef/#ifndef/#else/#endif. `#pragma` lines pass through untouched —
// they are the chain's transport for scop markers and OpenMP annotations.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace purec {

class MiniPreprocessor {
 public:
  explicit MiniPreprocessor(DiagnosticEngine& diags) : diags_(diags) {}

  /// Registers a virtual file for `#include "name"`.
  void add_include_file(std::string name, std::string content);

  /// Pre-defines an object-like macro (like `-D`).
  void define(std::string name, std::string replacement);

  /// Runs the preprocessor over `source` and returns the expanded text.
  [[nodiscard]] std::string preprocess(const std::string& source);

  [[nodiscard]] bool is_defined(const std::string& name) const {
    return macros_.count(name) != 0;
  }

 private:
  struct Macro {
    bool function_like = false;
    std::vector<std::string> params;
    std::string body;
  };

  void process_line(std::string_view line, std::vector<std::string>& out,
                    int depth);
  void handle_directive(std::string_view line, std::vector<std::string>& out,
                        int depth);
  [[nodiscard]] std::string expand(std::string_view line, int depth) const;

  [[nodiscard]] bool active() const;

  DiagnosticEngine& diags_;
  std::map<std::string, Macro, std::less<>> macros_;
  std::map<std::string, std::string, std::less<>> include_files_;
  // Conditional stack: each entry is {branch_taken, currently_active}.
  struct Conditional {
    bool taken;
    bool active_branch;
  };
  std::vector<Conditional> conditionals_;
};

}  // namespace purec

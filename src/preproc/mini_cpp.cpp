#include "preproc/mini_cpp.h"

#include <cctype>
#include <sstream>

#include "support/string_utils.h"

namespace purec {

namespace {

constexpr int kMaxExpansionDepth = 32;
constexpr int kMaxIncludeDepth = 16;

/// Extracts the identifier starting at `i` (which must satisfy
/// is_ident_char and not be a digit).
[[nodiscard]] std::string_view ident_at(std::string_view s, std::size_t i) {
  std::size_t end = i;
  while (end < s.size() && is_ident_char(s[end])) ++end;
  return s.substr(i, end - i);
}

}  // namespace

void MiniPreprocessor::add_include_file(std::string name,
                                        std::string content) {
  include_files_[std::move(name)] = std::move(content);
}

void MiniPreprocessor::define(std::string name, std::string replacement) {
  Macro m;
  m.body = std::move(replacement);
  macros_[std::move(name)] = std::move(m);
}

bool MiniPreprocessor::active() const {
  for (const Conditional& c : conditionals_) {
    if (!c.active_branch) return false;
  }
  return true;
}

std::string MiniPreprocessor::preprocess(const std::string& source) {
  std::vector<std::string> out;
  // Merge continuation lines first.
  std::string merged;
  merged.reserve(source.size());
  for (std::size_t i = 0; i < source.size(); ++i) {
    if (source[i] == '\\' && i + 1 < source.size() && source[i + 1] == '\n') {
      ++i;
      continue;
    }
    merged.push_back(source[i]);
  }
  for (std::string_view line : split_lines(merged)) {
    process_line(line, out, 0);
  }
  if (!conditionals_.empty()) {
    diags_.error({}, "preproc", "unterminated #if block at end of file");
  }
  std::ostringstream joined;
  for (const std::string& l : out) joined << l << "\n";
  return std::move(joined).str();
}

void MiniPreprocessor::process_line(std::string_view line,
                                    std::vector<std::string>& out,
                                    int depth) {
  std::string_view trimmed = trim(line);
  if (!trimmed.empty() && trimmed.front() == '#') {
    handle_directive(trimmed, out, depth);
    return;
  }
  if (!active()) return;
  out.push_back(expand(line, 0));
}

void MiniPreprocessor::handle_directive(std::string_view line,
                                        std::vector<std::string>& out,
                                        int depth) {
  std::string_view rest = trim(line.substr(1));
  const std::string_view directive = ident_at(rest, 0);
  std::string_view args = trim(rest.substr(directive.size()));

  if (directive == "ifdef" || directive == "ifndef") {
    const std::string name(ident_at(args, 0));
    bool cond = is_defined(name);
    if (directive == "ifndef") cond = !cond;
    const bool parent_active = active();
    conditionals_.push_back(Conditional{cond, parent_active && cond});
    return;
  }
  if (directive == "else") {
    if (conditionals_.empty()) {
      diags_.error({}, "preproc", "#else without matching #ifdef");
      return;
    }
    Conditional& c = conditionals_.back();
    const bool parent_active = [&] {
      for (std::size_t i = 0; i + 1 < conditionals_.size(); ++i) {
        if (!conditionals_[i].active_branch) return false;
      }
      return true;
    }();
    c.active_branch = parent_active && !c.taken;
    c.taken = true;
    return;
  }
  if (directive == "endif") {
    if (conditionals_.empty()) {
      diags_.error({}, "preproc", "#endif without matching #ifdef");
      return;
    }
    conditionals_.pop_back();
    return;
  }

  if (!active()) return;

  if (directive == "define") {
    const std::string_view name = ident_at(args, 0);
    if (name.empty()) {
      diags_.error({}, "preproc", "#define without a macro name");
      return;
    }
    std::string_view after = args.substr(name.size());
    Macro m;
    if (!after.empty() && after.front() == '(') {
      m.function_like = true;
      const std::size_t close = after.find(')');
      if (close == std::string_view::npos) {
        diags_.error({}, "preproc",
                     "unterminated parameter list in #define " +
                         std::string(name));
        return;
      }
      for (std::string_view p : split(after.substr(1, close - 1), ',')) {
        p = trim(p);
        if (!p.empty()) m.params.emplace_back(p);
      }
      m.body = std::string(trim(after.substr(close + 1)));
    } else {
      m.body = std::string(trim(after));
    }
    macros_[std::string(name)] = std::move(m);
    return;
  }
  if (directive == "undef") {
    macros_.erase(std::string(ident_at(args, 0)));
    return;
  }
  if (directive == "include") {
    if (!args.empty() && args.front() == '"') {
      const std::size_t close = args.find('"', 1);
      if (close == std::string_view::npos) {
        diags_.error({}, "preproc", "unterminated #include filename");
        return;
      }
      const std::string name(args.substr(1, close - 1));
      const auto it = include_files_.find(name);
      if (it == include_files_.end()) {
        diags_.error({}, "preproc", "cannot resolve #include \"" + name +
                                        "\" (no such virtual file)");
        return;
      }
      if (depth >= kMaxIncludeDepth) {
        diags_.error({}, "preproc", "#include nesting too deep at " + name);
        return;
      }
      for (std::string_view inc_line : split_lines(it->second)) {
        process_line(inc_line, out, depth + 1);
      }
      return;
    }
    // A `<...>` include surviving to this point was NOT stripped by
    // PC-PrePro; keep it verbatim (the real GCC sees it later).
    out.push_back(std::string(line));
    return;
  }
  // #pragma and anything unknown passes through for later passes.
  out.push_back(std::string(line));
}

std::string MiniPreprocessor::expand(std::string_view line, int depth) const {
  if (depth > kMaxExpansionDepth) {
    diags_.error({}, "preproc",
                 "macro expansion too deep (recursive macro?)");
    return std::string(line);
  }
  std::string out;
  out.reserve(line.size());
  bool changed = false;

  std::size_t i = 0;
  bool in_string = false;
  bool in_char = false;
  while (i < line.size()) {
    const char c = line[i];
    if (in_string) {
      out.push_back(c);
      if (c == '\\' && i + 1 < line.size()) {
        out.push_back(line[i + 1]);
        i += 2;
        continue;
      }
      if (c == '"') in_string = false;
      ++i;
      continue;
    }
    if (in_char) {
      out.push_back(c);
      if (c == '\\' && i + 1 < line.size()) {
        out.push_back(line[i + 1]);
        i += 2;
        continue;
      }
      if (c == '\'') in_char = false;
      ++i;
      continue;
    }
    if (c == '"') {
      in_string = true;
      out.push_back(c);
      ++i;
      continue;
    }
    if (c == '\'') {
      in_char = true;
      out.push_back(c);
      ++i;
      continue;
    }
    if (is_ident_char(c) && !std::isdigit(static_cast<unsigned char>(c))) {
      const std::string_view name = ident_at(line, i);
      const auto it = macros_.find(name);
      if (it == macros_.end()) {
        out.append(name);
        i += name.size();
        continue;
      }
      const Macro& m = it->second;
      if (!m.function_like) {
        out.append(m.body);
        changed = true;
        i += name.size();
        continue;
      }
      // Function-like: need an argument list right after (whitespace ok).
      std::size_t j = i + name.size();
      while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
      if (j >= line.size() || line[j] != '(') {
        out.append(name);
        i += name.size();
        continue;
      }
      // Collect balanced arguments.
      int balance = 1;
      std::size_t k = j + 1;
      std::vector<std::string> call_args;
      std::string current;
      bool ok = false;
      while (k < line.size()) {
        const char a = line[k];
        if (a == '(') ++balance;
        if (a == ')') {
          --balance;
          if (balance == 0) {
            ok = true;
            break;
          }
        }
        if (a == ',' && balance == 1) {
          call_args.push_back(std::string(trim(current)));
          current.clear();
        } else {
          current.push_back(a);
        }
        ++k;
      }
      if (!ok) {
        diags_.error({}, "preproc",
                     "unterminated macro invocation of " + std::string(name));
        out.append(std::string_view(line.substr(i)));
        return out;
      }
      if (!trim(current).empty() || !call_args.empty()) {
        call_args.push_back(std::string(trim(current)));
      }
      if (call_args.size() != m.params.size()) {
        diags_.error({}, "preproc",
                     "macro " + std::string(name) + " expects " +
                         std::to_string(m.params.size()) +
                         " arguments, got " +
                         std::to_string(call_args.size()));
      }
      // Substitute parameters by identifier match.
      std::string body;
      std::size_t b = 0;
      while (b < m.body.size()) {
        const char bc = m.body[b];
        if (is_ident_char(bc) &&
            !std::isdigit(static_cast<unsigned char>(bc))) {
          const std::string_view pn = ident_at(m.body, b);
          bool substituted = false;
          for (std::size_t pi = 0;
               pi < m.params.size() && pi < call_args.size(); ++pi) {
            if (pn == m.params[pi]) {
              body += "(" + call_args[pi] + ")";
              substituted = true;
              break;
            }
          }
          if (!substituted) body.append(pn);
          b += pn.size();
        } else {
          body.push_back(bc);
          ++b;
        }
      }
      out.append(body);
      changed = true;
      i = k + 1;
      continue;
    }
    out.push_back(c);
    ++i;
  }
  if (changed) return expand(out, depth + 1);
  return out;
}

}  // namespace purec

#include "ast/decl.h"
#include "ast/expr.h"
#include "ast/stmt.h"

namespace purec {

// ---------------------------------------------------------------------------
// Operator spellings
// ---------------------------------------------------------------------------

std::string_view to_string(UnaryOp op) noexcept {
  switch (op) {
    case UnaryOp::Plus: return "+";
    case UnaryOp::Minus: return "-";
    case UnaryOp::Not: return "!";
    case UnaryOp::BitNot: return "~";
    case UnaryOp::Deref: return "*";
    case UnaryOp::AddrOf: return "&";
    case UnaryOp::PreInc: return "++";
    case UnaryOp::PreDec: return "--";
    case UnaryOp::PostInc: return "++";
    case UnaryOp::PostDec: return "--";
  }
  return "?";
}

std::string_view to_string(BinaryOp op) noexcept {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Rem: return "%";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    case BinaryOp::BitAnd: return "&";
    case BinaryOp::BitOr: return "|";
    case BinaryOp::BitXor: return "^";
    case BinaryOp::LogicalAnd: return "&&";
    case BinaryOp::LogicalOr: return "||";
    case BinaryOp::Less: return "<";
    case BinaryOp::Greater: return ">";
    case BinaryOp::LessEqual: return "<=";
    case BinaryOp::GreaterEqual: return ">=";
    case BinaryOp::Equal: return "==";
    case BinaryOp::NotEqual: return "!=";
    case BinaryOp::Comma: return ",";
  }
  return "?";
}

std::string_view to_string(AssignOp op) noexcept {
  switch (op) {
    case AssignOp::Assign: return "=";
    case AssignOp::AddAssign: return "+=";
    case AssignOp::SubAssign: return "-=";
    case AssignOp::MulAssign: return "*=";
    case AssignOp::DivAssign: return "/=";
    case AssignOp::RemAssign: return "%=";
    case AssignOp::ShlAssign: return "<<=";
    case AssignOp::ShrAssign: return ">>=";
    case AssignOp::AndAssign: return "&=";
    case AssignOp::OrAssign: return "|=";
    case AssignOp::XorAssign: return "^=";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Expr clones
// ---------------------------------------------------------------------------

namespace {
[[nodiscard]] ExprPtr clone_or_null(const ExprPtr& e) {
  return e ? e->clone() : nullptr;
}
[[nodiscard]] StmtPtr clone_or_null(const StmtPtr& s) {
  return s ? s->clone() : nullptr;
}
template <typename T>
T* with_loc(T* node, SourceLocation loc) {
  node->loc = loc;
  return node;
}
}  // namespace

ExprPtr IntLiteralExpr::clone() const {
  auto e = std::make_unique<IntLiteralExpr>(value, spelling);
  e->loc = loc;
  return e;
}

ExprPtr FloatLiteralExpr::clone() const {
  auto e = std::make_unique<FloatLiteralExpr>(value, spelling);
  e->loc = loc;
  return e;
}

ExprPtr CharLiteralExpr::clone() const {
  auto e = std::make_unique<CharLiteralExpr>(spelling);
  e->loc = loc;
  return e;
}

ExprPtr StringLiteralExpr::clone() const {
  auto e = std::make_unique<StringLiteralExpr>(spelling);
  e->loc = loc;
  return e;
}

ExprPtr IdentExpr::clone() const {
  auto e = std::make_unique<IdentExpr>(name);
  e->loc = loc;
  return e;
}

ExprPtr UnaryExpr::clone() const {
  auto e = std::make_unique<UnaryExpr>(op, operand->clone());
  e->loc = loc;
  return e;
}

ExprPtr BinaryExpr::clone() const {
  auto e = std::make_unique<BinaryExpr>(op, lhs->clone(), rhs->clone());
  e->loc = loc;
  return e;
}

ExprPtr AssignExpr::clone() const {
  auto e = std::make_unique<AssignExpr>(op, lhs->clone(), rhs->clone());
  e->loc = loc;
  return e;
}

ExprPtr ConditionalExpr::clone() const {
  auto e = std::make_unique<ConditionalExpr>(
      cond->clone(), then_expr->clone(), else_expr->clone());
  e->loc = loc;
  return e;
}

ExprPtr CallExpr::clone() const {
  std::vector<ExprPtr> cloned_args;
  cloned_args.reserve(args.size());
  for (const ExprPtr& a : args) cloned_args.push_back(a->clone());
  auto e =
      std::make_unique<CallExpr>(callee->clone(), std::move(cloned_args));
  e->loc = loc;
  return e;
}

std::string CallExpr::callee_name() const {
  if (const auto* ident = expr_cast<IdentExpr>(callee.get())) {
    return ident->name;
  }
  return {};
}

ExprPtr IndexExpr::clone() const {
  auto e = std::make_unique<IndexExpr>(base->clone(), index->clone());
  e->loc = loc;
  return e;
}

ExprPtr MemberExpr::clone() const {
  auto e = std::make_unique<MemberExpr>(base->clone(), member, is_arrow);
  e->loc = loc;
  return e;
}

ExprPtr CastExpr::clone() const {
  auto e = std::make_unique<CastExpr>(target_type, operand->clone());
  e->loc = loc;
  return e;
}

ExprPtr SizeofExpr::clone() const {
  auto e = std::make_unique<SizeofExpr>(of_type, clone_or_null(operand));
  e->loc = loc;
  return e;
}

// ---------------------------------------------------------------------------
// Stmt clones
// ---------------------------------------------------------------------------

StmtPtr CompoundStmt::clone() const {
  auto s = std::make_unique<CompoundStmt>();
  s->loc = loc;
  s->stmts.reserve(stmts.size());
  for (const StmtPtr& child : stmts) s->stmts.push_back(child->clone());
  return s;
}

StmtPtr DeclStmt::clone() const {
  auto s = std::make_unique<DeclStmt>();
  s->loc = loc;
  s->decls.reserve(decls.size());
  for (const VarDecl& d : decls) s->decls.push_back(d.clone());
  return s;
}

StmtPtr ExprStmt::clone() const {
  auto s = std::make_unique<ExprStmt>(expr->clone());
  s->loc = loc;
  return s;
}

StmtPtr IfStmt::clone() const {
  auto s = std::make_unique<IfStmt>(cond->clone(), then_stmt->clone(),
                                    clone_or_null(else_stmt));
  s->loc = loc;
  return s;
}

StmtPtr ForStmt::clone() const {
  auto s = std::make_unique<ForStmt>();
  s->loc = loc;
  s->init = clone_or_null(init);
  s->cond = clone_or_null(cond);
  s->inc = clone_or_null(inc);
  s->body = clone_or_null(body);
  return s;
}

StmtPtr WhileStmt::clone() const {
  auto s = std::make_unique<WhileStmt>(cond->clone(), body->clone());
  s->loc = loc;
  return s;
}

StmtPtr DoWhileStmt::clone() const {
  auto s = std::make_unique<DoWhileStmt>(body->clone(), cond->clone());
  s->loc = loc;
  return s;
}

StmtPtr ReturnStmt::clone() const {
  auto s = std::make_unique<ReturnStmt>(clone_or_null(value));
  s->loc = loc;
  return s;
}

StmtPtr BreakStmt::clone() const {
  return StmtPtr(with_loc(new BreakStmt(), loc));
}

StmtPtr ContinueStmt::clone() const {
  return StmtPtr(with_loc(new ContinueStmt(), loc));
}

StmtPtr NullStmt::clone() const {
  return StmtPtr(with_loc(new NullStmt(), loc));
}

StmtPtr PragmaStmt::clone() const {
  auto s = std::make_unique<PragmaStmt>(text);
  s->loc = loc;
  return s;
}

// ---------------------------------------------------------------------------
// TranslationUnit helpers
// ---------------------------------------------------------------------------

std::vector<FunctionDecl*> TranslationUnit::functions() {
  std::vector<FunctionDecl*> out;
  for (TopLevelItem& item : items) {
    if (auto* fn = std::get_if<std::unique_ptr<FunctionDecl>>(&item.node)) {
      out.push_back(fn->get());
    }
  }
  return out;
}

std::vector<const FunctionDecl*> TranslationUnit::functions() const {
  std::vector<const FunctionDecl*> out;
  for (const TopLevelItem& item : items) {
    if (const auto* fn =
            std::get_if<std::unique_ptr<FunctionDecl>>(&item.node)) {
      out.push_back(fn->get());
    }
  }
  return out;
}

const FunctionDecl* TranslationUnit::find_function(
    std::string_view name) const {
  const FunctionDecl* prototype = nullptr;
  for (const FunctionDecl* fn : functions()) {
    if (fn->name != name) continue;
    if (fn->is_definition()) return fn;
    if (prototype == nullptr) prototype = fn;
  }
  return prototype;
}

FunctionDecl* TranslationUnit::find_function(std::string_view name) {
  FunctionDecl* prototype = nullptr;
  for (FunctionDecl* fn : functions()) {
    if (fn->name != name) continue;
    if (fn->is_definition()) return fn;
    if (prototype == nullptr) prototype = fn;
  }
  return prototype;
}

std::vector<const GlobalVarDecl*> TranslationUnit::globals() const {
  std::vector<const GlobalVarDecl*> out;
  for (const TopLevelItem& item : items) {
    if (const auto* g =
            std::get_if<std::unique_ptr<GlobalVarDecl>>(&item.node)) {
      out.push_back(g->get());
    }
  }
  return out;
}

}  // namespace purec

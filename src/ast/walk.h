// Generic pre-order traversal helpers used by every analysis pass. The
// mutating "slot" variants hand out the owning ExprPtr so a pass can replace
// a subtree in place (the chain's pure-call substitution needs exactly that).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "ast/decl.h"
#include "ast/expr.h"
#include "ast/stmt.h"

namespace purec {

/// A recognized affine induction step: `i++`, `++i`, `i += K`, or
/// `i = i + K` with K a positive integer constant. Shared by the while
/// canonicalizer and the polyhedral loop matcher so the accepted step
/// grammar cannot drift between them.
struct InductionStep {
  std::string iterator;
  std::int64_t stride = 1;
};

[[nodiscard]] std::optional<InductionStep> match_induction_step(
    const Expr& inc);

/// True when any expression reachable from the subtree mentions the
/// identifier `name` (shared by the canonicalizer's and the chain's
/// liveness scans so their notion of "references" cannot drift).
[[nodiscard]] bool references_identifier(const Stmt& s,
                                         const std::string& name);
[[nodiscard]] bool references_identifier(const Expr& e,
                                         const std::string& name);

/// Visits `e` and all sub-expressions, pre-order.
void for_each_expr(const Expr& e, const std::function<void(const Expr&)>& fn);
void for_each_expr(Expr& e, const std::function<void(Expr&)>& fn);

/// Visits all expressions reachable from `s` (conditions, initializers,
/// increments, ...), pre-order within each expression tree.
void for_each_expr(const Stmt& s, const std::function<void(const Expr&)>& fn);
void for_each_expr(Stmt& s, const std::function<void(Expr&)>& fn);

/// Visits `s` and all sub-statements, pre-order.
void for_each_stmt(const Stmt& s, const std::function<void(const Stmt&)>& fn);
void for_each_stmt(Stmt& s, const std::function<void(Stmt&)>& fn);

/// Visits every call expression reachable from `s`, pre-order. Convenience
/// over for_each_expr for the call-graph/effect passes.
void for_each_call(const Stmt& s,
                   const std::function<void(const CallExpr&)>& fn);

/// Strips casts off an expression (parens are not materialized by the AST).
[[nodiscard]] const Expr* strip_casts(const Expr* e);

/// Mutating traversal over every owning expression slot under `s`.
/// The callback may replace the pointed-to expression; returning `true`
/// means "do not descend into this slot's (possibly new) children".
using ExprSlotFn = std::function<bool(ExprPtr&)>;
void for_each_expr_slot(Stmt& s, const ExprSlotFn& fn);
void for_each_expr_slot(ExprPtr& e, const ExprSlotFn& fn);

/// Mutating traversal over every owning statement slot under `root`
/// (including slots inside compound statements). The callback may replace
/// the statement; returning `true` stops descent into that slot.
using StmtSlotFn = std::function<bool(StmtPtr&)>;
void for_each_stmt_slot(StmtPtr& root, const StmtSlotFn& fn);

}  // namespace purec

// Expression nodes. Ownership is strict parent-owns-child via unique_ptr;
// passes navigate with kind switches (LLVM style) or the walk helpers in
// ast/walk.h.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ast/type.h"
#include "support/source_location.h"

namespace purec {

enum class ExprKind : std::uint8_t {
  IntLiteral,
  FloatLiteral,
  CharLiteral,
  StringLiteral,
  Ident,
  Unary,
  Binary,
  Assign,
  Conditional,
  Call,
  Index,
  Member,
  Cast,
  Sizeof,
};

enum class UnaryOp : std::uint8_t {
  Plus, Minus, Not, BitNot, Deref, AddrOf, PreInc, PreDec, PostInc, PostDec,
};

enum class BinaryOp : std::uint8_t {
  Add, Sub, Mul, Div, Rem,
  Shl, Shr, BitAnd, BitOr, BitXor,
  LogicalAnd, LogicalOr,
  Less, Greater, LessEqual, GreaterEqual, Equal, NotEqual,
  Comma,
};

enum class AssignOp : std::uint8_t {
  Assign, AddAssign, SubAssign, MulAssign, DivAssign, RemAssign,
  ShlAssign, ShrAssign, AndAssign, OrAssign, XorAssign,
};

[[nodiscard]] std::string_view to_string(UnaryOp op) noexcept;
[[nodiscard]] std::string_view to_string(BinaryOp op) noexcept;
[[nodiscard]] std::string_view to_string(AssignOp op) noexcept;

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

class Expr {
 public:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  [[nodiscard]] ExprKind kind() const noexcept { return kind_; }
  [[nodiscard]] virtual ExprPtr clone() const = 0;

  SourceLocation loc;

 private:
  ExprKind kind_;
};

class IntLiteralExpr final : public Expr {
 public:
  [[nodiscard]] static constexpr ExprKind static_kind() noexcept {
    return ExprKind::IntLiteral;
  }
  explicit IntLiteralExpr(std::int64_t value, std::string spelling = {})
      : Expr(static_kind()), value(value), spelling(std::move(spelling)) {}
  [[nodiscard]] ExprPtr clone() const override;

  std::int64_t value;
  std::string spelling;  // original text ("0x10", "3u") if it matters
};

class FloatLiteralExpr final : public Expr {
 public:
  [[nodiscard]] static constexpr ExprKind static_kind() noexcept {
    return ExprKind::FloatLiteral;
  }
  explicit FloatLiteralExpr(double value, std::string spelling = {})
      : Expr(static_kind()), value(value), spelling(std::move(spelling)) {}
  [[nodiscard]] ExprPtr clone() const override;

  double value;
  std::string spelling;
};

class CharLiteralExpr final : public Expr {
 public:
  [[nodiscard]] static constexpr ExprKind static_kind() noexcept {
    return ExprKind::CharLiteral;
  }
  explicit CharLiteralExpr(std::string spelling)
      : Expr(static_kind()), spelling(std::move(spelling)) {}
  [[nodiscard]] ExprPtr clone() const override;

  std::string spelling;  // includes the quotes
};

class StringLiteralExpr final : public Expr {
 public:
  [[nodiscard]] static constexpr ExprKind static_kind() noexcept {
    return ExprKind::StringLiteral;
  }
  explicit StringLiteralExpr(std::string spelling)
      : Expr(static_kind()), spelling(std::move(spelling)) {}
  [[nodiscard]] ExprPtr clone() const override;

  std::string spelling;  // includes the quotes
};

class IdentExpr final : public Expr {
 public:
  [[nodiscard]] static constexpr ExprKind static_kind() noexcept {
    return ExprKind::Ident;
  }
  explicit IdentExpr(std::string name)
      : Expr(static_kind()), name(std::move(name)) {}
  [[nodiscard]] ExprPtr clone() const override;

  std::string name;
};

class UnaryExpr final : public Expr {
 public:
  [[nodiscard]] static constexpr ExprKind static_kind() noexcept {
    return ExprKind::Unary;
  }
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expr(static_kind()), op(op), operand(std::move(operand)) {}
  [[nodiscard]] ExprPtr clone() const override;

  UnaryOp op;
  ExprPtr operand;
};

class BinaryExpr final : public Expr {
 public:
  [[nodiscard]] static constexpr ExprKind static_kind() noexcept {
    return ExprKind::Binary;
  }
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(static_kind()),
        op(op),
        lhs(std::move(lhs)),
        rhs(std::move(rhs)) {}
  [[nodiscard]] ExprPtr clone() const override;

  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

class AssignExpr final : public Expr {
 public:
  [[nodiscard]] static constexpr ExprKind static_kind() noexcept {
    return ExprKind::Assign;
  }
  AssignExpr(AssignOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(static_kind()),
        op(op),
        lhs(std::move(lhs)),
        rhs(std::move(rhs)) {}
  [[nodiscard]] ExprPtr clone() const override;

  AssignOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

class ConditionalExpr final : public Expr {
 public:
  [[nodiscard]] static constexpr ExprKind static_kind() noexcept {
    return ExprKind::Conditional;
  }
  ConditionalExpr(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr)
      : Expr(static_kind()),
        cond(std::move(cond)),
        then_expr(std::move(then_expr)),
        else_expr(std::move(else_expr)) {}
  [[nodiscard]] ExprPtr clone() const override;

  ExprPtr cond;
  ExprPtr then_expr;
  ExprPtr else_expr;
};

class CallExpr final : public Expr {
 public:
  [[nodiscard]] static constexpr ExprKind static_kind() noexcept {
    return ExprKind::Call;
  }
  CallExpr(ExprPtr callee, std::vector<ExprPtr> args)
      : Expr(static_kind()),
        callee(std::move(callee)),
        args(std::move(args)) {}
  [[nodiscard]] ExprPtr clone() const override;

  /// Callee name when the callee is a plain identifier (the usual case in
  /// this dialect); empty otherwise.
  [[nodiscard]] std::string callee_name() const;

  ExprPtr callee;
  std::vector<ExprPtr> args;
};

class IndexExpr final : public Expr {
 public:
  [[nodiscard]] static constexpr ExprKind static_kind() noexcept {
    return ExprKind::Index;
  }
  IndexExpr(ExprPtr base, ExprPtr index)
      : Expr(static_kind()), base(std::move(base)), index(std::move(index)) {}
  [[nodiscard]] ExprPtr clone() const override;

  ExprPtr base;
  ExprPtr index;
};

class MemberExpr final : public Expr {
 public:
  [[nodiscard]] static constexpr ExprKind static_kind() noexcept {
    return ExprKind::Member;
  }
  MemberExpr(ExprPtr base, std::string member, bool is_arrow)
      : Expr(static_kind()),
        base(std::move(base)),
        member(std::move(member)),
        is_arrow(is_arrow) {}
  [[nodiscard]] ExprPtr clone() const override;

  ExprPtr base;
  std::string member;
  bool is_arrow;
};

class CastExpr final : public Expr {
 public:
  [[nodiscard]] static constexpr ExprKind static_kind() noexcept {
    return ExprKind::Cast;
  }
  CastExpr(TypePtr target_type, ExprPtr operand)
      : Expr(static_kind()),
        target_type(std::move(target_type)),
        operand(std::move(operand)) {}
  [[nodiscard]] ExprPtr clone() const override;

  TypePtr target_type;
  ExprPtr operand;
};

class SizeofExpr final : public Expr {
 public:
  [[nodiscard]] static constexpr ExprKind static_kind() noexcept {
    return ExprKind::Sizeof;
  }
  /// sizeof(type) form has a type and null operand; `sizeof expr` is the
  /// reverse.
  SizeofExpr(TypePtr of_type, ExprPtr operand)
      : Expr(static_kind()),
        of_type(std::move(of_type)),
        operand(std::move(operand)) {}
  [[nodiscard]] ExprPtr clone() const override;

  TypePtr of_type;
  ExprPtr operand;
};

/// Downcast helper: `auto* call = expr_cast<CallExpr>(e);` — nullptr when
/// the kind does not match.
template <typename T>
[[nodiscard]] T* expr_cast(Expr* e) noexcept {
  return (e != nullptr && e->kind() == T::static_kind()) ? static_cast<T*>(e)
                                                         : nullptr;
}
template <typename T>
[[nodiscard]] const T* expr_cast(const Expr* e) noexcept {
  return (e != nullptr && e->kind() == T::static_kind())
             ? static_cast<const T*>(e)
             : nullptr;
}

}  // namespace purec

// Statement and declaration nodes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ast/expr.h"
#include "ast/type.h"
#include "support/source_location.h"

namespace purec {

enum class StmtKind : std::uint8_t {
  Compound,
  Decl,
  Expr,
  If,
  For,
  While,
  DoWhile,
  Return,
  Break,
  Continue,
  Null,
  Pragma,
};

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

class Stmt {
 public:
  explicit Stmt(StmtKind kind) : kind_(kind) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  [[nodiscard]] StmtKind kind() const noexcept { return kind_; }
  [[nodiscard]] virtual StmtPtr clone() const = 0;

  SourceLocation loc;

 private:
  StmtKind kind_;
};

/// One declared variable. Multi-declarator statements
/// (`int a = 1, *b;`) expand into one VarDecl per declarator.
struct VarDecl {
  std::string name;
  TypePtr type;
  ExprPtr init;  // may be null
  SourceLocation loc;
  /// Block-scope `static`: the variable persists across calls, so it is
  /// shared state, not function-local storage.
  bool is_static = false;

  [[nodiscard]] VarDecl clone() const {
    return VarDecl{name, type, init ? init->clone() : nullptr, loc,
                   is_static};
  }
};

class CompoundStmt final : public Stmt {
 public:
  [[nodiscard]] static constexpr StmtKind static_kind() noexcept {
    return StmtKind::Compound;
  }
  CompoundStmt() : Stmt(static_kind()) {}
  explicit CompoundStmt(std::vector<StmtPtr> stmts)
      : Stmt(static_kind()), stmts(std::move(stmts)) {}
  [[nodiscard]] StmtPtr clone() const override;

  std::vector<StmtPtr> stmts;
};

class DeclStmt final : public Stmt {
 public:
  [[nodiscard]] static constexpr StmtKind static_kind() noexcept {
    return StmtKind::Decl;
  }
  DeclStmt() : Stmt(static_kind()) {}
  [[nodiscard]] StmtPtr clone() const override;

  std::vector<VarDecl> decls;
};

class ExprStmt final : public Stmt {
 public:
  [[nodiscard]] static constexpr StmtKind static_kind() noexcept {
    return StmtKind::Expr;
  }
  explicit ExprStmt(ExprPtr expr)
      : Stmt(static_kind()), expr(std::move(expr)) {}
  [[nodiscard]] StmtPtr clone() const override;

  ExprPtr expr;
};

class IfStmt final : public Stmt {
 public:
  [[nodiscard]] static constexpr StmtKind static_kind() noexcept {
    return StmtKind::If;
  }
  IfStmt(ExprPtr cond, StmtPtr then_stmt, StmtPtr else_stmt)
      : Stmt(static_kind()),
        cond(std::move(cond)),
        then_stmt(std::move(then_stmt)),
        else_stmt(std::move(else_stmt)) {}
  [[nodiscard]] StmtPtr clone() const override;

  ExprPtr cond;
  StmtPtr then_stmt;
  StmtPtr else_stmt;  // may be null
};

class ForStmt final : public Stmt {
 public:
  [[nodiscard]] static constexpr StmtKind static_kind() noexcept {
    return StmtKind::For;
  }
  ForStmt() : Stmt(static_kind()) {}
  [[nodiscard]] StmtPtr clone() const override;

  StmtPtr init;   // DeclStmt, ExprStmt or NullStmt
  ExprPtr cond;   // may be null
  ExprPtr inc;    // may be null
  StmtPtr body;
};

class WhileStmt final : public Stmt {
 public:
  [[nodiscard]] static constexpr StmtKind static_kind() noexcept {
    return StmtKind::While;
  }
  WhileStmt(ExprPtr cond, StmtPtr body)
      : Stmt(static_kind()), cond(std::move(cond)), body(std::move(body)) {}
  [[nodiscard]] StmtPtr clone() const override;

  ExprPtr cond;
  StmtPtr body;
};

class DoWhileStmt final : public Stmt {
 public:
  [[nodiscard]] static constexpr StmtKind static_kind() noexcept {
    return StmtKind::DoWhile;
  }
  DoWhileStmt(StmtPtr body, ExprPtr cond)
      : Stmt(static_kind()), body(std::move(body)), cond(std::move(cond)) {}
  [[nodiscard]] StmtPtr clone() const override;

  StmtPtr body;
  ExprPtr cond;
};

class ReturnStmt final : public Stmt {
 public:
  [[nodiscard]] static constexpr StmtKind static_kind() noexcept {
    return StmtKind::Return;
  }
  explicit ReturnStmt(ExprPtr value)
      : Stmt(static_kind()), value(std::move(value)) {}
  [[nodiscard]] StmtPtr clone() const override;

  ExprPtr value;  // may be null
};

class BreakStmt final : public Stmt {
 public:
  [[nodiscard]] static constexpr StmtKind static_kind() noexcept {
    return StmtKind::Break;
  }
  BreakStmt() : Stmt(static_kind()) {}
  [[nodiscard]] StmtPtr clone() const override;
};

class ContinueStmt final : public Stmt {
 public:
  [[nodiscard]] static constexpr StmtKind static_kind() noexcept {
    return StmtKind::Continue;
  }
  ContinueStmt() : Stmt(static_kind()) {}
  [[nodiscard]] StmtPtr clone() const override;
};

class NullStmt final : public Stmt {
 public:
  [[nodiscard]] static constexpr StmtKind static_kind() noexcept {
    return StmtKind::Null;
  }
  NullStmt() : Stmt(static_kind()) {}
  [[nodiscard]] StmtPtr clone() const override;
};

/// A preprocessor/pragma line carried through the chain verbatim
/// (`#pragma scop`, `#pragma omp parallel for ...`, ...).
class PragmaStmt final : public Stmt {
 public:
  [[nodiscard]] static constexpr StmtKind static_kind() noexcept {
    return StmtKind::Pragma;
  }
  explicit PragmaStmt(std::string text)
      : Stmt(static_kind()), text(std::move(text)) {}
  [[nodiscard]] StmtPtr clone() const override;

  std::string text;  // full line including the leading '#'
};

template <typename T>
[[nodiscard]] T* stmt_cast(Stmt* s) noexcept {
  return (s != nullptr && s->kind() == T::static_kind()) ? static_cast<T*>(s)
                                                         : nullptr;
}
template <typename T>
[[nodiscard]] const T* stmt_cast(const Stmt* s) noexcept {
  return (s != nullptr && s->kind() == T::static_kind())
             ? static_cast<const T*>(s)
             : nullptr;
}

}  // namespace purec

#include "ast/walk.h"

namespace purec {

namespace {

template <typename ExprT, typename Fn>
void walk_expr(ExprT& e, const Fn& fn) {
  fn(e);
  switch (e.kind()) {
    case ExprKind::IntLiteral:
    case ExprKind::FloatLiteral:
    case ExprKind::CharLiteral:
    case ExprKind::StringLiteral:
    case ExprKind::Ident:
      return;
    case ExprKind::Unary: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<ExprT>, const UnaryExpr,
                             UnaryExpr>&>(e);
      walk_expr(*n.operand, fn);
      return;
    }
    case ExprKind::Binary: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<ExprT>, const BinaryExpr,
                             BinaryExpr>&>(e);
      walk_expr(*n.lhs, fn);
      walk_expr(*n.rhs, fn);
      return;
    }
    case ExprKind::Assign: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<ExprT>, const AssignExpr,
                             AssignExpr>&>(e);
      walk_expr(*n.lhs, fn);
      walk_expr(*n.rhs, fn);
      return;
    }
    case ExprKind::Conditional: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<ExprT>, const ConditionalExpr,
                             ConditionalExpr>&>(e);
      walk_expr(*n.cond, fn);
      walk_expr(*n.then_expr, fn);
      walk_expr(*n.else_expr, fn);
      return;
    }
    case ExprKind::Call: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<ExprT>, const CallExpr,
                             CallExpr>&>(e);
      walk_expr(*n.callee, fn);
      for (auto& a : n.args) walk_expr(*a, fn);
      return;
    }
    case ExprKind::Index: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<ExprT>, const IndexExpr,
                             IndexExpr>&>(e);
      walk_expr(*n.base, fn);
      walk_expr(*n.index, fn);
      return;
    }
    case ExprKind::Member: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<ExprT>, const MemberExpr,
                             MemberExpr>&>(e);
      walk_expr(*n.base, fn);
      return;
    }
    case ExprKind::Cast: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<ExprT>, const CastExpr,
                             CastExpr>&>(e);
      walk_expr(*n.operand, fn);
      return;
    }
    case ExprKind::Sizeof: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<ExprT>, const SizeofExpr,
                             SizeofExpr>&>(e);
      if (n.operand) walk_expr(*n.operand, fn);
      return;
    }
  }
}

template <typename StmtT, typename ExprT, typename Fn>
void walk_stmt_exprs(StmtT& s, const Fn& fn) {
  switch (s.kind()) {
    case StmtKind::Compound: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<StmtT>, const CompoundStmt,
                             CompoundStmt>&>(s);
      for (auto& child : n.stmts) walk_stmt_exprs<StmtT, ExprT>(*child, fn);
      return;
    }
    case StmtKind::Decl: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<StmtT>, const DeclStmt,
                             DeclStmt>&>(s);
      for (auto& d : n.decls) {
        if (d.init) walk_expr<ExprT>(*d.init, fn);
      }
      return;
    }
    case StmtKind::Expr: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<StmtT>, const ExprStmt,
                             ExprStmt>&>(s);
      walk_expr<ExprT>(*n.expr, fn);
      return;
    }
    case StmtKind::If: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<StmtT>, const IfStmt, IfStmt>&>(
          s);
      walk_expr<ExprT>(*n.cond, fn);
      walk_stmt_exprs<StmtT, ExprT>(*n.then_stmt, fn);
      if (n.else_stmt) walk_stmt_exprs<StmtT, ExprT>(*n.else_stmt, fn);
      return;
    }
    case StmtKind::For: {
      auto& n = static_cast<std::conditional_t<std::is_const_v<StmtT>,
                                               const ForStmt, ForStmt>&>(s);
      if (n.init) walk_stmt_exprs<StmtT, ExprT>(*n.init, fn);
      if (n.cond) walk_expr<ExprT>(*n.cond, fn);
      if (n.inc) walk_expr<ExprT>(*n.inc, fn);
      if (n.body) walk_stmt_exprs<StmtT, ExprT>(*n.body, fn);
      return;
    }
    case StmtKind::While: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<StmtT>, const WhileStmt,
                             WhileStmt>&>(s);
      walk_expr<ExprT>(*n.cond, fn);
      walk_stmt_exprs<StmtT, ExprT>(*n.body, fn);
      return;
    }
    case StmtKind::DoWhile: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<StmtT>, const DoWhileStmt,
                             DoWhileStmt>&>(s);
      walk_stmt_exprs<StmtT, ExprT>(*n.body, fn);
      walk_expr<ExprT>(*n.cond, fn);
      return;
    }
    case StmtKind::Return: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<StmtT>, const ReturnStmt,
                             ReturnStmt>&>(s);
      if (n.value) walk_expr<ExprT>(*n.value, fn);
      return;
    }
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Null:
    case StmtKind::Pragma:
      return;
  }
}

template <typename StmtT, typename Fn>
void walk_stmts(StmtT& s, const Fn& fn) {
  fn(s);
  switch (s.kind()) {
    case StmtKind::Compound: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<StmtT>, const CompoundStmt,
                             CompoundStmt>&>(s);
      for (auto& child : n.stmts) walk_stmts(*child, fn);
      return;
    }
    case StmtKind::If: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<StmtT>, const IfStmt, IfStmt>&>(
          s);
      walk_stmts(*n.then_stmt, fn);
      if (n.else_stmt) walk_stmts(*n.else_stmt, fn);
      return;
    }
    case StmtKind::For: {
      auto& n = static_cast<std::conditional_t<std::is_const_v<StmtT>,
                                               const ForStmt, ForStmt>&>(s);
      if (n.init) walk_stmts(*n.init, fn);
      if (n.body) walk_stmts(*n.body, fn);
      return;
    }
    case StmtKind::While: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<StmtT>, const WhileStmt,
                             WhileStmt>&>(s);
      walk_stmts(*n.body, fn);
      return;
    }
    case StmtKind::DoWhile: {
      auto& n = static_cast<
          std::conditional_t<std::is_const_v<StmtT>, const DoWhileStmt,
                             DoWhileStmt>&>(s);
      walk_stmts(*n.body, fn);
      return;
    }
    default:
      return;
  }
}

void walk_expr_slot(ExprPtr& slot, const ExprSlotFn& fn) {
  if (!slot) return;
  if (fn(slot)) return;  // callback handled/replaced; do not descend
  Expr& e = *slot;
  switch (e.kind()) {
    case ExprKind::IntLiteral:
    case ExprKind::FloatLiteral:
    case ExprKind::CharLiteral:
    case ExprKind::StringLiteral:
    case ExprKind::Ident:
      return;
    case ExprKind::Unary:
      walk_expr_slot(static_cast<UnaryExpr&>(e).operand, fn);
      return;
    case ExprKind::Binary: {
      auto& n = static_cast<BinaryExpr&>(e);
      walk_expr_slot(n.lhs, fn);
      walk_expr_slot(n.rhs, fn);
      return;
    }
    case ExprKind::Assign: {
      auto& n = static_cast<AssignExpr&>(e);
      walk_expr_slot(n.lhs, fn);
      walk_expr_slot(n.rhs, fn);
      return;
    }
    case ExprKind::Conditional: {
      auto& n = static_cast<ConditionalExpr&>(e);
      walk_expr_slot(n.cond, fn);
      walk_expr_slot(n.then_expr, fn);
      walk_expr_slot(n.else_expr, fn);
      return;
    }
    case ExprKind::Call: {
      auto& n = static_cast<CallExpr&>(e);
      walk_expr_slot(n.callee, fn);
      for (auto& a : n.args) walk_expr_slot(a, fn);
      return;
    }
    case ExprKind::Index: {
      auto& n = static_cast<IndexExpr&>(e);
      walk_expr_slot(n.base, fn);
      walk_expr_slot(n.index, fn);
      return;
    }
    case ExprKind::Member:
      walk_expr_slot(static_cast<MemberExpr&>(e).base, fn);
      return;
    case ExprKind::Cast:
      walk_expr_slot(static_cast<CastExpr&>(e).operand, fn);
      return;
    case ExprKind::Sizeof:
      walk_expr_slot(static_cast<SizeofExpr&>(e).operand, fn);
      return;
  }
}

void walk_stmt_expr_slots(Stmt& s, const ExprSlotFn& fn) {
  switch (s.kind()) {
    case StmtKind::Compound:
      for (auto& child : static_cast<CompoundStmt&>(s).stmts) {
        walk_stmt_expr_slots(*child, fn);
      }
      return;
    case StmtKind::Decl:
      for (auto& d : static_cast<DeclStmt&>(s).decls) {
        walk_expr_slot(d.init, fn);
      }
      return;
    case StmtKind::Expr:
      walk_expr_slot(static_cast<ExprStmt&>(s).expr, fn);
      return;
    case StmtKind::If: {
      auto& n = static_cast<IfStmt&>(s);
      walk_expr_slot(n.cond, fn);
      walk_stmt_expr_slots(*n.then_stmt, fn);
      if (n.else_stmt) walk_stmt_expr_slots(*n.else_stmt, fn);
      return;
    }
    case StmtKind::For: {
      auto& n = static_cast<ForStmt&>(s);
      if (n.init) walk_stmt_expr_slots(*n.init, fn);
      walk_expr_slot(n.cond, fn);
      walk_expr_slot(n.inc, fn);
      if (n.body) walk_stmt_expr_slots(*n.body, fn);
      return;
    }
    case StmtKind::While: {
      auto& n = static_cast<WhileStmt&>(s);
      walk_expr_slot(n.cond, fn);
      walk_stmt_expr_slots(*n.body, fn);
      return;
    }
    case StmtKind::DoWhile: {
      auto& n = static_cast<DoWhileStmt&>(s);
      walk_stmt_expr_slots(*n.body, fn);
      walk_expr_slot(n.cond, fn);
      return;
    }
    case StmtKind::Return:
      walk_expr_slot(static_cast<ReturnStmt&>(s).value, fn);
      return;
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Null:
    case StmtKind::Pragma:
      return;
  }
}

void walk_stmt_slot(StmtPtr& slot, const StmtSlotFn& fn) {
  if (!slot) return;
  if (fn(slot)) return;
  Stmt& s = *slot;
  switch (s.kind()) {
    case StmtKind::Compound:
      for (auto& child : static_cast<CompoundStmt&>(s).stmts) {
        walk_stmt_slot(child, fn);
      }
      return;
    case StmtKind::If: {
      auto& n = static_cast<IfStmt&>(s);
      walk_stmt_slot(n.then_stmt, fn);
      walk_stmt_slot(n.else_stmt, fn);
      return;
    }
    case StmtKind::For: {
      auto& n = static_cast<ForStmt&>(s);
      walk_stmt_slot(n.init, fn);
      walk_stmt_slot(n.body, fn);
      return;
    }
    case StmtKind::While:
      walk_stmt_slot(static_cast<WhileStmt&>(s).body, fn);
      return;
    case StmtKind::DoWhile:
      walk_stmt_slot(static_cast<DoWhileStmt&>(s).body, fn);
      return;
    default:
      return;
  }
}

}  // namespace

void for_each_expr(const Expr& e,
                   const std::function<void(const Expr&)>& fn) {
  walk_expr<const Expr>(e, fn);
}
void for_each_expr(Expr& e, const std::function<void(Expr&)>& fn) {
  walk_expr<Expr>(e, fn);
}
void for_each_expr(const Stmt& s,
                   const std::function<void(const Expr&)>& fn) {
  walk_stmt_exprs<const Stmt, const Expr>(s, fn);
}
void for_each_expr(Stmt& s, const std::function<void(Expr&)>& fn) {
  walk_stmt_exprs<Stmt, Expr>(s, fn);
}
void for_each_stmt(const Stmt& s,
                   const std::function<void(const Stmt&)>& fn) {
  walk_stmts<const Stmt>(s, fn);
}
void for_each_stmt(Stmt& s, const std::function<void(Stmt&)>& fn) {
  walk_stmts<Stmt>(s, fn);
}
void for_each_expr_slot(Stmt& s, const ExprSlotFn& fn) {
  walk_stmt_expr_slots(s, fn);
}
void for_each_expr_slot(ExprPtr& e, const ExprSlotFn& fn) {
  walk_expr_slot(e, fn);
}
void for_each_stmt_slot(StmtPtr& root, const StmtSlotFn& fn) {
  walk_stmt_slot(root, fn);
}

void for_each_call(const Stmt& s,
                   const std::function<void(const CallExpr&)>& fn) {
  for_each_expr(s, [&fn](const Expr& e) {
    if (const auto* call = expr_cast<CallExpr>(&e)) fn(*call);
  });
}

const Expr* strip_casts(const Expr* e) {
  while (const auto* cast = expr_cast<CastExpr>(e)) {
    e = cast->operand.get();
  }
  return e;
}

bool references_identifier(const Stmt& s, const std::string& name) {
  bool found = false;
  for_each_expr(s, [&](const Expr& e) {
    const auto* ident = expr_cast<IdentExpr>(&e);
    if (ident != nullptr && ident->name == name) found = true;
  });
  return found;
}

bool references_identifier(const Expr& e, const std::string& name) {
  bool found = false;
  for_each_expr(e, [&](const Expr& sub) {
    const auto* ident = expr_cast<IdentExpr>(&sub);
    if (ident != nullptr && ident->name == name) found = true;
  });
  return found;
}

std::optional<InductionStep> match_induction_step(const Expr& inc) {
  if (const auto* u = expr_cast<UnaryExpr>(&inc)) {
    if (u->op == UnaryOp::PostInc || u->op == UnaryOp::PreInc) {
      if (const auto* ident = expr_cast<IdentExpr>(u->operand.get())) {
        return InductionStep{ident->name, 1};
      }
    }
    return std::nullopt;
  }
  const auto* a = expr_cast<AssignExpr>(&inc);
  if (a == nullptr) return std::nullopt;
  const auto* ident = expr_cast<IdentExpr>(a->lhs.get());
  if (ident == nullptr) return std::nullopt;
  if (a->op == AssignOp::AddAssign) {
    const auto* step = expr_cast<IntLiteralExpr>(a->rhs.get());
    if (step != nullptr && step->value >= 1) {
      return InductionStep{ident->name, step->value};
    }
    return std::nullopt;
  }
  if (a->op == AssignOp::Assign) {
    const auto* add = expr_cast<BinaryExpr>(a->rhs.get());
    if (add != nullptr && add->op == BinaryOp::Add) {
      const auto* base = expr_cast<IdentExpr>(add->lhs.get());
      const auto* step = expr_cast<IntLiteralExpr>(add->rhs.get());
      if (base != nullptr && base->name == ident->name && step != nullptr &&
          step->value >= 1) {
        return InductionStep{ident->name, step->value};
      }
    }
  }
  return std::nullopt;
}

}  // namespace purec

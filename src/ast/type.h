// Type representation for the purec C dialect. Types are immutable and
// shared (value semantics via shared_ptr<const Type>), which keeps the AST
// cheap to copy-analyze and makes qualifier handling explicit: `pure` and
// `const` live on each pointer/array level, exactly how the paper's
// keyword attaches to pointer declarations.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace purec {

enum class TypeKind : std::uint8_t {
  Builtin,
  Pointer,
  Array,
  Struct,
  Named,  // typedef reference, resolved by sema
};

enum class BuiltinKind : std::uint8_t {
  Void,
  Bool,
  Char,
  SChar,
  UChar,
  Short,
  UShort,
  Int,
  UInt,
  Long,
  ULong,
  LongLong,
  ULongLong,
  Float,
  Double,
  LongDouble,
};

class Type;
using TypePtr = std::shared_ptr<const Type>;

/// One level of the C type tree plus its qualifiers.
class Type {
 public:
  TypeKind kind = TypeKind::Builtin;
  BuiltinKind builtin = BuiltinKind::Int;

  bool is_const = false;
  /// The paper's qualifier: single-assignment, never written through.
  bool is_pure = false;

  TypePtr pointee;                        // Pointer
  TypePtr element;                        // Array
  std::optional<std::int64_t> array_size; // Array ([] -> nullopt)
  std::string name;                       // Struct tag / typedef name

  // -- factories ----------------------------------------------------------
  [[nodiscard]] static TypePtr make_builtin(BuiltinKind kind,
                                            bool is_const = false,
                                            bool is_pure = false);
  [[nodiscard]] static TypePtr make_pointer(TypePtr pointee,
                                            bool is_const = false,
                                            bool is_pure = false);
  [[nodiscard]] static TypePtr make_array(TypePtr element,
                                          std::optional<std::int64_t> size);
  [[nodiscard]] static TypePtr make_struct(std::string tag);
  [[nodiscard]] static TypePtr make_named(std::string typedef_name);

  /// Same type with `is_pure` / `is_const` replaced on the top level.
  [[nodiscard]] TypePtr with_pure(bool pure) const;
  [[nodiscard]] TypePtr with_const(bool constant) const;

  // -- queries -------------------------------------------------------------
  [[nodiscard]] bool is_pointer() const noexcept {
    return kind == TypeKind::Pointer;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return kind == TypeKind::Array;
  }
  [[nodiscard]] bool is_void() const noexcept {
    return kind == TypeKind::Builtin && builtin == BuiltinKind::Void;
  }
  [[nodiscard]] bool is_integer() const noexcept;
  [[nodiscard]] bool is_floating() const noexcept;
  [[nodiscard]] bool is_arithmetic() const noexcept {
    return is_integer() || is_floating();
  }
  /// True if this type or any pointee/element level carries `pure`.
  [[nodiscard]] bool any_level_pure() const noexcept;

  /// Structural equality including qualifiers.
  [[nodiscard]] bool equals(const Type& other) const noexcept;

  /// C-ish rendering, e.g. "pure float*" or "int[100]".
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] std::string to_string(BuiltinKind kind);

}  // namespace purec

#include "ast/type.h"

namespace purec {

std::string to_string(BuiltinKind kind) {
  switch (kind) {
    case BuiltinKind::Void: return "void";
    case BuiltinKind::Bool: return "_Bool";
    case BuiltinKind::Char: return "char";
    case BuiltinKind::SChar: return "signed char";
    case BuiltinKind::UChar: return "unsigned char";
    case BuiltinKind::Short: return "short";
    case BuiltinKind::UShort: return "unsigned short";
    case BuiltinKind::Int: return "int";
    case BuiltinKind::UInt: return "unsigned int";
    case BuiltinKind::Long: return "long";
    case BuiltinKind::ULong: return "unsigned long";
    case BuiltinKind::LongLong: return "long long";
    case BuiltinKind::ULongLong: return "unsigned long long";
    case BuiltinKind::Float: return "float";
    case BuiltinKind::Double: return "double";
    case BuiltinKind::LongDouble: return "long double";
  }
  return "<?>";
}

TypePtr Type::make_builtin(BuiltinKind kind, bool is_const, bool is_pure) {
  auto t = std::make_shared<Type>();
  t->kind = TypeKind::Builtin;
  t->builtin = kind;
  t->is_const = is_const;
  t->is_pure = is_pure;
  return t;
}

TypePtr Type::make_pointer(TypePtr pointee, bool is_const, bool is_pure) {
  auto t = std::make_shared<Type>();
  t->kind = TypeKind::Pointer;
  t->pointee = std::move(pointee);
  t->is_const = is_const;
  t->is_pure = is_pure;
  return t;
}

TypePtr Type::make_array(TypePtr element, std::optional<std::int64_t> size) {
  auto t = std::make_shared<Type>();
  t->kind = TypeKind::Array;
  t->element = std::move(element);
  t->array_size = size;
  return t;
}

TypePtr Type::make_struct(std::string tag) {
  auto t = std::make_shared<Type>();
  t->kind = TypeKind::Struct;
  t->name = std::move(tag);
  return t;
}

TypePtr Type::make_named(std::string typedef_name) {
  auto t = std::make_shared<Type>();
  t->kind = TypeKind::Named;
  t->name = std::move(typedef_name);
  return t;
}

TypePtr Type::with_pure(bool pure) const {
  auto t = std::make_shared<Type>(*this);
  t->is_pure = pure;
  return t;
}

TypePtr Type::with_const(bool constant) const {
  auto t = std::make_shared<Type>(*this);
  t->is_const = constant;
  return t;
}

bool Type::is_integer() const noexcept {
  if (kind != TypeKind::Builtin) return false;
  switch (builtin) {
    case BuiltinKind::Bool:
    case BuiltinKind::Char:
    case BuiltinKind::SChar:
    case BuiltinKind::UChar:
    case BuiltinKind::Short:
    case BuiltinKind::UShort:
    case BuiltinKind::Int:
    case BuiltinKind::UInt:
    case BuiltinKind::Long:
    case BuiltinKind::ULong:
    case BuiltinKind::LongLong:
    case BuiltinKind::ULongLong:
      return true;
    default:
      return false;
  }
}

bool Type::is_floating() const noexcept {
  if (kind != TypeKind::Builtin) return false;
  return builtin == BuiltinKind::Float || builtin == BuiltinKind::Double ||
         builtin == BuiltinKind::LongDouble;
}

bool Type::any_level_pure() const noexcept {
  if (is_pure) return true;
  if (pointee != nullptr) return pointee->any_level_pure();
  if (element != nullptr) return element->any_level_pure();
  return false;
}

bool Type::equals(const Type& other) const noexcept {
  if (kind != other.kind || is_const != other.is_const ||
      is_pure != other.is_pure) {
    return false;
  }
  switch (kind) {
    case TypeKind::Builtin:
      return builtin == other.builtin;
    case TypeKind::Pointer:
      return pointee->equals(*other.pointee);
    case TypeKind::Array:
      return array_size == other.array_size &&
             element->equals(*other.element);
    case TypeKind::Struct:
    case TypeKind::Named:
      return name == other.name;
  }
  return false;
}

std::string Type::to_string() const {
  std::string quals;
  if (is_pure) quals += "pure ";
  if (is_const) quals += "const ";
  switch (kind) {
    case TypeKind::Builtin:
      return quals + purec::to_string(builtin);
    case TypeKind::Pointer: {
      std::string s = pointee->to_string() + "*";
      if (is_pure) s += " pure";
      if (is_const) s += " const";
      return s;
    }
    case TypeKind::Array: {
      std::string size = array_size ? std::to_string(*array_size) : "";
      return element->to_string() + "[" + size + "]";
    }
    case TypeKind::Struct:
      return quals + "struct " + name;
    case TypeKind::Named:
      return quals + name;
  }
  return "<?>";
}

}  // namespace purec

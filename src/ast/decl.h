// Top-level declarations and the translation unit.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "ast/stmt.h"
#include "ast/type.h"

namespace purec {

struct ParamDecl {
  std::string name;  // may be empty in prototypes
  TypePtr type;
  SourceLocation loc;
};

/// Function declaration or definition. `is_pure` is the paper's keyword on
/// the function itself; parameter-level `pure` lives in each param's type.
class FunctionDecl {
 public:
  std::string name;
  TypePtr return_type;
  bool returns_pure_pointer = false;  // `pure int* f(...)`
  bool is_pure = false;
  bool is_static = false;
  bool is_variadic = false;
  /// Set by the chain when the lowered output should carry GCC's
  /// `__attribute__((pure))` (verified pure AND allocation-free, so the
  /// attribute's contract holds). See ChainOptions::emit_gcc_attributes.
  bool annotate_gcc_pure = false;
  std::vector<ParamDecl> params;
  std::unique_ptr<CompoundStmt> body;  // null for prototypes
  SourceLocation loc;

  [[nodiscard]] bool is_definition() const noexcept {
    return body != nullptr;
  }
};

struct StructField {
  std::string name;
  TypePtr type;
};

class StructDecl {
 public:
  std::string tag;
  std::vector<StructField> fields;
  bool is_definition = false;
  SourceLocation loc;
};

class TypedefDecl {
 public:
  std::string name;
  TypePtr underlying;
  SourceLocation loc;
};

/// A file-scope variable (possibly several from one declaration statement).
class GlobalVarDecl {
 public:
  VarDecl var;
  bool is_static = false;
  bool is_extern = false;
};

/// One item at file scope, in source order. HashLine carries pragmas and
/// preprocessor remnants verbatim (the chain re-emits them in place).
struct TopLevelItem {
  std::variant<std::unique_ptr<FunctionDecl>, std::unique_ptr<GlobalVarDecl>,
               std::unique_ptr<StructDecl>, std::unique_ptr<TypedefDecl>,
               std::string /* HashLine text */>
      node;
};

class TranslationUnit {
 public:
  std::vector<TopLevelItem> items;
  std::string source_name;

  /// All function declarations/definitions in source order.
  [[nodiscard]] std::vector<FunctionDecl*> functions();
  [[nodiscard]] std::vector<const FunctionDecl*> functions() const;
  /// Definition of `name` if present, else the first prototype, else null.
  [[nodiscard]] const FunctionDecl* find_function(
      std::string_view name) const;
  [[nodiscard]] FunctionDecl* find_function(std::string_view name);
  /// All file-scope variables.
  [[nodiscard]] std::vector<const GlobalVarDecl*> globals() const;
};

}  // namespace purec

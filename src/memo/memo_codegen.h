// Emission half of the `--memoize` subsystem: the self-contained C
// implementation of the concurrent memo table (prepended to the output
// like poly::codegen_prelude), and per-function thunk text.
//
// A memoizable call site `f(a, b)` is rewritten to `purec_memo_f(a, b)`;
// the thunk folds the argument bit patterns and the scalar global-read
// snapshot into one 64-bit fingerprint, probes the table, and only falls
// through to the real `f` on a miss. Values travel as bit patterns, so a
// hit returns exactly the bits a miss stored — memoized and unmemoized
// binaries print identical checksums.
//
// Layout in the final C file (see run_pure_chain):
//   [system includes]  [codegen prelude]  [memo runtime]
//   [thunk prototypes] [lowered program]  [thunk definitions]
// Prototypes precede the program (call sites inside it), definitions
// follow it (they reference the wrapped functions and the globals).
#pragma once

#include <cstdint>
#include <string>

#include "memo/memoizable.h"

namespace purec {

/// The sharded seqlock table in plain C (GCC __atomic builtins, no
/// headers beyond <stdlib.h>). Mirrors runtime/memo_cache.cpp; honors the
/// same PUREC_MEMO_SHARDS / PUREC_MEMO_CAP knobs.
[[nodiscard]] const std::string& memo_runtime_prelude();

/// "purec_memo_" + fn. The prefix is reserved: user identifiers never
/// collide (the mini dialect has no way to spell it accidentally without
/// deliberately opting into the namespace).
[[nodiscard]] std::string memo_thunk_name(const std::string& function);

/// Stable 64-bit id mixed into every key so two functions with equal
/// argument tuples cannot alias (FNV-1a over the name).
[[nodiscard]] std::uint64_t memo_function_id(const std::string& function);

[[nodiscard]] std::string memo_thunk_prototype(const MemoFunctionInfo& info);
[[nodiscard]] std::string memo_thunk_definition(const MemoFunctionInfo& info);

}  // namespace purec

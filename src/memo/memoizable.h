// Memoizability analysis — the `--memoize` subsystem's front half.
//
// Purity (declared + verified, or inferred) certifies that a call's result
// depends only on its inputs; memoization additionally needs those inputs
// to be *enumerable as a bounded key*. A pure function is classified
// memoizable when:
//   * it has a definition in the unit (the thunk must call it and the
//     analysis must see its whole transitive read set);
//   * every parameter is a by-value arithmetic scalar — a pointer
//     parameter has no statically known read extent, so its pointee
//     cannot join the key;
//   * it returns an arithmetic scalar that fits a 64-bit cache word
//     (long double is rejected);
//   * its transitive global-read set is a *bounded snapshot*: every read
//     global is an arithmetic scalar (arrays/pointers would make the
//     snapshot unbounded) and the set is small enough to key cheaply;
//   * it is free of other nondeterminism: no allocation (addresses vary
//     run to run and could leak into the scalar result via casts), no
//     callee outside the analyzed closure or the standard seed set, and
//     no call to a floating-point-environment-sensitive routine
//     (rint & friends observe the dynamic rounding mode).
//
// Every rejected function keeps a human-readable reason, mirroring the
// inference subsystem's provenance reporting.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ast/decl.h"
#include "purity/purity_checker.h"
#include "sema/symbols.h"

namespace purec {

/// Observed per-thunk traffic, parsed back out of a PUREC_MEMO_STATS dump
/// (`purec-memo[NAME] hits=H misses=M evictions=E` lines) and keyed by
/// function name. Feeding it to the classifier via `--memoize-profile`
/// replaces the shape-based cost gate with the profile-informed model.
struct MemoProfileEntry {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};
using MemoProfile = std::map<std::string, MemoProfileEntry>;

/// Extracts profile entries from stats-dump text; lines that are not
/// `purec-memo[...]` counter lines are ignored, so a whole stderr capture
/// (stats summaries, program output) can be fed back verbatim.
[[nodiscard]] MemoProfile parse_memo_profile(const std::string& text);

struct MemoFunctionInfo {
  std::string name;
  bool memoizable = false;
  /// Why the function cannot be memoized; empty when memoizable.
  std::string reason;
  SourceLocation loc;
  /// Parameter types in declaration order (arithmetic scalars).
  std::vector<TypePtr> param_types;
  TypePtr return_type;
  /// Scalar globals whose values join the key (transitive reads, sorted
  /// by name so the key layout is deterministic).
  std::vector<std::pair<std::string, TypePtr>> global_snapshot;
  /// Whole-body expression-node count — the static callee-cost proxy the
  /// profile-informed gate multiplies against observed reuse.
  std::size_t cost_nodes = 0;
  /// Profile-informed gate trail (set when a profile was supplied and the
  /// function passed the base classification): observed traffic and the
  /// reuse-per-miss x cost score it produced.
  bool profiled = false;
  std::uint64_t profile_hits = 0;
  std::uint64_t profile_misses = 0;
  double profile_score = 0.0;
};

struct MemoizableResult {
  /// Every pure function with a definition in the unit.
  std::map<std::string, MemoFunctionInfo> functions;
  /// Names classified memoizable, ready for the call-site rewrite.
  std::set<std::string> memoizable;

  /// One-line provenance, e.g.
  /// "memoizable: mult; rejected: dot (parameter 'a' is a pointer ...)".
  [[nodiscard]] std::string summary() const;
};

/// Upper bound on the global snapshot per function; beyond this the key
/// build would rival small callee bodies in cost.
inline constexpr std::size_t kMemoMaxGlobalSnapshot = 8;

/// Cost-gate threshold: a single-expression body below this many
/// expression nodes is cheaper to recompute than the table trip (the
/// honest 0.1x matmul-twin negative in BENCH_memoize.json — `mult` is 3
/// nodes), so gated classification rejects it.
inline constexpr std::size_t kMemoTrivialExprNodes = 8;

/// Profile-gate threshold on reuse-per-miss x body-cost-nodes: a thunk
/// pays off when the work it saves per distinct key (observed reuse times
/// callee cost) clears the same table-trip bar the shape gate uses. A
/// 3-node `mult` needs ~3 reuses per key to survive; a 50-node pipeline
/// stage survives on any demonstrated reuse.
inline constexpr double kMemoProfileScoreMin =
    static_cast<double>(kMemoTrivialExprNodes);

/// Classifies every defined function in `pure_functions`. Must run on the
/// *pre-transformation* AST (it re-derives effect summaries through
/// `symbols`, whose resolutions are keyed on the original nodes).
/// `cost_gate` enables the trivially-small-callee rejection (the chain
/// passes true unless the user asked for `--memoize=all`). A non-null
/// `profile` replaces that shape-based gate with the profile-informed
/// model: only thunks whose observed reuse x callee cost clears
/// kMemoProfileScoreMin survive (functions absent from the profile saw no
/// traffic and are rejected).
[[nodiscard]] MemoizableResult classify_memoizable(
    const TranslationUnit& tu, const SymbolTable& symbols,
    const std::set<std::string>& pure_functions,
    const PurityOptions& options = {}, bool cost_gate = false,
    const MemoProfile* profile = nullptr);

}  // namespace purec

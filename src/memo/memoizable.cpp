#include "memo/memoizable.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string_view>

#include "ast/walk.h"
#include "purity/effects.h"

namespace purec {

namespace {

/// Routines whose result observes the dynamic floating-point environment
/// (rounding mode): caching across fesetround calls would be unsound.
[[nodiscard]] bool fp_env_sensitive(const std::string& name) {
  static const std::set<std::string> kSensitive = {
      "rint",  "rintf",  "lrint",  "lrintf",  "llrint",  "llrintf",
      "nearbyint", "nearbyintf", "fegetround", "fesetround",
  };
  return kSensitive.count(name) != 0;
}

/// An arithmetic scalar that fits the cache's 64-bit value word.
[[nodiscard]] bool is_cacheable_scalar(const TypePtr& type) {
  return type != nullptr && type->kind == TypeKind::Builtin &&
         type->is_arithmetic() &&
         type->builtin != BuiltinKind::LongDouble;
}

/// Expression-node count of a single-`return` body; nullopt when the body
/// has any other shape (declarations, loops, multiple statements).
[[nodiscard]] std::optional<std::size_t> single_expression_size(
    const FunctionDecl& fn) {
  const auto* block = stmt_cast<CompoundStmt>(fn.body.get());
  if (block == nullptr) return std::nullopt;
  const ReturnStmt* ret = nullptr;
  for (const StmtPtr& s : block->stmts) {
    if (s->kind() == StmtKind::Null || s->kind() == StmtKind::Pragma) {
      continue;
    }
    if (ret != nullptr) return std::nullopt;
    ret = stmt_cast<ReturnStmt>(s.get());
    if (ret == nullptr) return std::nullopt;
  }
  if (ret == nullptr || !ret->value) return std::nullopt;
  std::size_t nodes = 0;
  for_each_expr(static_cast<const Expr&>(*ret->value),
                [&](const Expr&) { ++nodes; });
  return nodes;
}

/// Expression-node count over the whole body: the static callee-cost
/// proxy. Unlike single_expression_size it accepts any body shape, so the
/// profile gate can price multi-statement pipelines too.
[[nodiscard]] std::size_t body_cost_nodes(const FunctionDecl& fn) {
  if (fn.body == nullptr) return 0;
  std::size_t nodes = 0;
  for_each_expr(static_cast<const Stmt&>(*fn.body),
                [&](const Expr&) { ++nodes; });
  return nodes;
}

class Classifier {
 public:
  Classifier(const TranslationUnit& tu, const SymbolTable& symbols,
             const std::set<std::string>& pure_functions,
             const PurityOptions& options, bool cost_gate,
             const MemoProfile* profile)
      : symbols_(symbols),
        pure_functions_(pure_functions),
        cost_gate_(cost_gate),
        profile_(profile) {
    for (const FunctionDecl* fn : tu.functions()) {
      if (!fn->is_definition() || pure_functions.count(fn->name) == 0) {
        continue;
      }
      if (summaries_.count(fn->name) != 0) continue;
      const FunctionScopeInfo* scope = symbols.scope_for(*fn);
      if (scope == nullptr) continue;
      summaries_.emplace(fn->name,
                         compute_effects(*fn, *scope,
                                         options.allow_malloc_free));
      definitions_.emplace(fn->name, fn);
    }
  }

  [[nodiscard]] MemoizableResult run() {
    MemoizableResult result;
    for (const auto& [name, fn] : definitions_) {
      MemoFunctionInfo info = classify(name, *fn);
      if (info.memoizable) result.memoizable.insert(name);
      result.functions.emplace(name, std::move(info));
    }
    return result;
  }

 private:
  [[nodiscard]] MemoFunctionInfo classify(const std::string& name,
                                          const FunctionDecl& fn) {
    MemoFunctionInfo info;
    info.name = name;
    info.loc = fn.loc;
    info.return_type = fn.return_type;
    info.cost_nodes = body_cost_nodes(fn);

    const auto reject = [&](std::string reason) {
      info.memoizable = false;
      info.reason = std::move(reason);
      return info;
    };

    const EffectSummary& effects = summaries_.at(name);
    if (!effects.pure_locally) {
      // Declared-pure bodies pass the §3.2 verifier on promise semantics
      // (pure casts); the effect scanner is stricter. Memoization trusts
      // only what it can analyze.
      return reject(effects.impurity_reason);
    }

    if (fn.return_type == nullptr || fn.return_type->is_void()) {
      return reject("returns void (no result to cache)");
    }
    if (fn.returns_pure_pointer || !is_cacheable_scalar(fn.return_type)) {
      return reject("returns " + fn.return_type->to_string() +
                    " (only arithmetic scalars fit a cache word)");
    }
    for (const ParamDecl& p : fn.params) {
      if (!is_cacheable_scalar(p.type)) {
        return reject("parameter '" + p.name + "' is " +
                      p.type->to_string() +
                      " (read extent not statically known)");
      }
      info.param_types.push_back(p.type);
    }

    // Shape cost gate: for a mult-sized leaf the hash/probe round trip
    // costs more than just recomputing the expression. A supplied profile
    // supersedes this guess with measured reuse (gate at the end).
    if (cost_gate_ && profile_ == nullptr) {
      const std::optional<std::size_t> nodes = single_expression_size(fn);
      if (nodes && *nodes < kMemoTrivialExprNodes) {
        return reject("single-expression body of " +
                      std::to_string(*nodes) +
                      " node(s) below the cost gate (recompute beats the "
                      "table trip; --memoize=all overrides)");
      }
    }

    // Transitive closure over callees: every edge must stay inside the
    // analyzed definitions or the deterministic part of the seed set.
    std::set<std::string> visited{name};
    std::set<std::string> global_reads(effects.global_reads.begin(),
                                       effects.global_reads.end());
    std::vector<std::string> frontier{name};
    while (!frontier.empty()) {
      const std::string current = frontier.back();
      frontier.pop_back();
      const EffectSummary& summary = summaries_.at(current);
      if (summary.allocates || summary.frees) {
        return reject(closure_site(name, current) +
                      "allocates (addresses vary across runs)");
      }
      // Database-modeled externs are pure enough for parallelization but
      // not all are cacheable: snprintf formats through the dynamic
      // locale, so identical arguments can produce different bytes
      // across setlocale calls.
      if (summary.extern_calls.count("snprintf") != 0) {
        return reject(closure_site(name, current) +
                      "calls 'snprintf' (locale-sensitive formatting)");
      }
      // Same locale hazard in reverse: C11 7.22.1.3/7.22.1.4 let other
      // locales accept additional subject-sequence forms, so identical
      // argument bytes can parse differently across setlocale calls.
      for (const char* parser : {"strtol", "strtoul", "strtod", "strtof"}) {
        if (summary.extern_calls.count(parser) != 0) {
          return reject(closure_site(name, current) + "calls '" +
                        std::string(parser) +
                        "' (locale-sensitive parsing)");
        }
      }
      for (const std::string& callee : summary.callees) {
        if (visited.count(callee) != 0) continue;
        if (fp_env_sensitive(callee)) {
          return reject(closure_site(name, current) + "calls '" + callee +
                        "' (floating-point-environment sensitive)");
        }
        const auto it = summaries_.find(callee);
        if (it != summaries_.end()) {
          visited.insert(callee);
          const EffectSummary& sub = it->second;
          global_reads.insert(sub.global_reads.begin(),
                              sub.global_reads.end());
          frontier.push_back(callee);
          continue;
        }
        if (standard_pure_functions().count(callee) != 0) continue;
        if (callee == "malloc" || callee == "calloc" || callee == "free") {
          return reject(closure_site(name, current) +
                        "allocates (addresses vary across runs)");
        }
        if (pure_functions_.count(callee) != 0) {
          return reject(closure_site(name, current) +
                        "calls extern pure function '" + callee +
                        "' (definition unavailable to the analysis)");
        }
        return reject(closure_site(name, current) + "calls '" + callee +
                      "' outside the analyzed closure");
      }
    }

    // The global-read snapshot: bounded, scalar-only, sorted for a
    // deterministic key layout.
    if (global_reads.size() > kMemoMaxGlobalSnapshot) {
      return reject("reads " + std::to_string(global_reads.size()) +
                    " globals (snapshot bound is " +
                    std::to_string(kMemoMaxGlobalSnapshot) + ")");
    }
    for (const std::string& global : global_reads) {
      const GlobalVarDecl* decl = symbols_.find_global(global);
      if (decl == nullptr) {
        return reject("reads undeclared external '" + global + "'");
      }
      if (!is_cacheable_scalar(decl->var.type)) {
        return reject("reads global '" + global + "' of type " +
                      decl->var.type->to_string() +
                      " (snapshot would be unbounded)");
      }
      info.global_snapshot.emplace_back(global, decl->var.type);
    }

    // Profile-informed gate: only thunks with demonstrated reuse x callee
    // cost above the table-trip bar survive. Runs last so a rejected
    // function still reports its full key shape, and only under the cost
    // gate (--memoize=all thunks everything but keeps the annotations).
    if (profile_ != nullptr) {
      const auto it = profile_->find(name);
      if (it == profile_->end()) {
        if (cost_gate_) {
          return reject(
              "no observed traffic in the profile (thunk never exercised)");
        }
      } else {
        info.profiled = true;
        info.profile_hits = it->second.hits;
        info.profile_misses = it->second.misses;
        const double reuse =
            static_cast<double>(it->second.hits) /
            static_cast<double>(std::max<std::uint64_t>(
                std::uint64_t{1}, it->second.misses));
        info.profile_score = reuse * static_cast<double>(info.cost_nodes);
        if (cost_gate_ && it->second.hits == 0) {
          return reject("profile shows no reuse (0 hits over " +
                        std::to_string(it->second.misses) + " misses)");
        }
        if (cost_gate_ && info.profile_score < kMemoProfileScoreMin) {
          return reject(
              "profile score " + std::to_string(info.profile_score) +
              " (reuse x " + std::to_string(info.cost_nodes) +
              " cost nodes) below the gate; --memoize=all overrides");
        }
      }
    }

    info.memoizable = true;
    return info;
  }

  /// "via 'dot', " prefix when the offending edge is in a callee, so the
  /// reason names where the problem actually sits.
  [[nodiscard]] static std::string closure_site(const std::string& root,
                                                const std::string& site) {
    return site == root ? std::string{} : "via '" + site + "', ";
  }

  const SymbolTable& symbols_;
  const std::set<std::string>& pure_functions_;
  bool cost_gate_ = false;
  const MemoProfile* profile_ = nullptr;
  std::map<std::string, EffectSummary> summaries_;
  std::map<std::string, const FunctionDecl*> definitions_;
};

}  // namespace

MemoProfile parse_memo_profile(const std::string& text) {
  MemoProfile profile;
  constexpr std::string_view kPrefix = "purec-memo[";
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line = text.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? text.size() : eol + 1;
    if (line.compare(0, kPrefix.size(), kPrefix) != 0) continue;
    const std::size_t close = line.find(']', kPrefix.size());
    if (close == std::string::npos) continue;
    const std::string name =
        line.substr(kPrefix.size(), close - kPrefix.size());
    if (name.empty()) continue;
    unsigned long long hits = 0;
    unsigned long long misses = 0;
    unsigned long long evictions = 0;
    if (std::sscanf(line.c_str() + close + 1,
                    " hits=%llu misses=%llu evictions=%llu", &hits, &misses,
                    &evictions) != 3) {
      continue;
    }
    // Sum rather than overwrite: a fleet run dumps one line per process
    // per thunk, and the observed reuse is their combined traffic.
    MemoProfileEntry& entry = profile[name];
    entry.hits += hits;
    entry.misses += misses;
    entry.evictions += evictions;
  }
  return profile;
}

std::string MemoizableResult::summary() const {
  std::string yes;
  std::string no;
  for (const auto& [name, info] : functions) {
    if (info.memoizable) {
      if (!yes.empty()) yes += ", ";
      yes += name;
    } else {
      if (!no.empty()) no += ", ";
      no += name + " (" + info.reason + ")";
    }
  }
  std::string out = "memoizable: " + (yes.empty() ? "-" : yes);
  if (!no.empty()) out += "; rejected: " + no;
  return out;
}

MemoizableResult classify_memoizable(const TranslationUnit& tu,
                                     const SymbolTable& symbols,
                                     const std::set<std::string>& pure_functions,
                                     const PurityOptions& options,
                                     bool cost_gate,
                                     const MemoProfile* profile) {
  return Classifier(tu, symbols, pure_functions, options, cost_gate, profile)
      .run();
}

}  // namespace purec

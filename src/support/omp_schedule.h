// Parsed-and-validated OpenMP schedule selection, shared by the CLI, the
// chain options, and polyhedral codegen. The seed passed free-text clause
// strings through to the emitted pragma — any typo became uncompilable C.
// A ScheduleSpec is kind × chunk, parsed once at the boundary and
// normalized into clause text exactly once, in codegen.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace purec {

enum class OmpScheduleKind {
  Default,  // no schedule clause: the implementation's choice
  Static,
  Dynamic,
  Guided,
};

struct ScheduleSpec {
  OmpScheduleKind kind = OmpScheduleKind::Default;
  std::int64_t chunk = 0;  // 0 = unspecified (no ",N" in the clause)

  [[nodiscard]] bool empty() const noexcept {
    return kind == OmpScheduleKind::Default;
  }

  /// The normalized pragma fragment: "" for Default, otherwise e.g.
  /// "schedule(guided,8)" or "schedule(dynamic)".
  [[nodiscard]] std::string clause() const;

  /// Parses `static | dynamic[,N] | guided[,N]` (N a positive integer;
  /// static also accepts ,N). A surrounding "schedule(...)" wrapper is
  /// tolerated, so pasting a full OpenMP clause keeps working. Returns
  /// nullopt on malformed input and, when `error` is non-null, stores a
  /// one-line reason suitable for a CLI diagnostic.
  [[nodiscard]] static std::optional<ScheduleSpec> parse(
      std::string_view text, std::string* error = nullptr);

  friend bool operator==(const ScheduleSpec&,
                         const ScheduleSpec&) = default;
};

[[nodiscard]] const char* to_string(OmpScheduleKind kind) noexcept;

}  // namespace purec

#include "support/diagnostics.h"

#include <sstream>
#include <utility>

#include "support/source_buffer.h"

namespace purec {

std::string_view to_string(Severity severity) noexcept {
  switch (severity) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "unknown";
}

void DiagnosticEngine::report(Severity severity, SourceLocation loc,
                              std::string pass, std::string message) {
  if (severity == Severity::Error) ++errors_;
  if (severity == Severity::Warning) ++warnings_;
  diags_.push_back(
      Diagnostic{severity, loc, std::move(pass), std::move(message)});
}

bool DiagnosticEngine::has_error_containing(std::string_view needle) const {
  for (const Diagnostic& d : diags_) {
    if (d.severity == Severity::Error &&
        d.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::string DiagnosticEngine::format(const SourceBuffer* buffer) const {
  std::ostringstream out;
  for (const Diagnostic& d : diags_) {
    if (buffer != nullptr) out << buffer->name() << ":";
    out << to_string(d.location) << ": " << to_string(d.severity) << " ["
        << d.pass << "] " << d.message << "\n";
    if (buffer != nullptr && d.location.valid()) {
      if (auto line = buffer->line(d.location.line)) {
        out << "    " << *line << "\n    ";
        for (std::uint32_t i = 1; i < d.location.column; ++i) out << ' ';
        out << "^\n";
      }
    }
  }
  return std::move(out).str();
}

void DiagnosticEngine::clear() noexcept {
  diags_.clear();
  errors_ = 0;
  warnings_ = 0;
}

}  // namespace purec

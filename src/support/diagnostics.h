// Diagnostic engine shared by all compiler-chain passes. User-source errors
// are reported here (not via exceptions); internal invariant violations use
// exceptions/assertions per the Core Guidelines split between "caller bug"
// and "bad input".
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "support/source_location.h"

namespace purec {

class SourceBuffer;

enum class Severity { Note, Warning, Error };

[[nodiscard]] std::string_view to_string(Severity severity) noexcept;

/// One reported problem. `pass` names the stage that produced it
/// ("lexer", "parser", "purity", ...) so chained-tool output stays readable.
struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLocation location;
  std::string pass;
  std::string message;
};

/// Collects diagnostics for one run of the chain. Cheap to pass by
/// reference through all stages; never throws on report.
class DiagnosticEngine {
 public:
  void report(Severity severity, SourceLocation loc, std::string pass,
              std::string message);

  void error(SourceLocation loc, std::string pass, std::string message) {
    report(Severity::Error, loc, std::move(pass), std::move(message));
  }
  void warning(SourceLocation loc, std::string pass, std::string message) {
    report(Severity::Warning, loc, std::move(pass), std::move(message));
  }
  void note(SourceLocation loc, std::string pass, std::string message) {
    report(Severity::Note, loc, std::move(pass), std::move(message));
  }

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diags_;
  }
  [[nodiscard]] std::size_t error_count() const noexcept { return errors_; }
  [[nodiscard]] std::size_t warning_count() const noexcept {
    return warnings_;
  }
  [[nodiscard]] bool has_errors() const noexcept { return errors_ != 0; }

  /// True if any error message contains `needle` (used heavily by tests).
  [[nodiscard]] bool has_error_containing(std::string_view needle) const;

  /// Renders all diagnostics; with a buffer, includes the offending source
  /// line and a caret.
  [[nodiscard]] std::string format(
      const SourceBuffer* buffer = nullptr) const;

  void clear() noexcept;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
};

}  // namespace purec

#include "support/omp_schedule.h"

#include "support/string_utils.h"

namespace purec {

const char* to_string(OmpScheduleKind kind) noexcept {
  switch (kind) {
    case OmpScheduleKind::Default: return "default";
    case OmpScheduleKind::Static: return "static";
    case OmpScheduleKind::Dynamic: return "dynamic";
    case OmpScheduleKind::Guided: return "guided";
  }
  return "?";
}

std::string ScheduleSpec::clause() const {
  if (kind == OmpScheduleKind::Default) return {};
  std::string text = "schedule(";
  text += to_string(kind);
  if (chunk > 0) {
    text += ',';
    text += std::to_string(chunk);
  }
  text += ')';
  return text;
}

namespace {

std::optional<ScheduleSpec> fail(std::string* error, std::string reason) {
  if (error != nullptr) *error = std::move(reason);
  return std::nullopt;
}

}  // namespace

std::optional<ScheduleSpec> ScheduleSpec::parse(std::string_view text,
                                                std::string* error) {
  std::string_view body = trim(text);
  // Tolerate the full-clause spelling the seed accepted verbatim.
  if (starts_with(body, "schedule(") && ends_with(body, ")")) {
    body = trim(body.substr(9, body.size() - 10));
  }
  if (body.empty()) {
    return fail(error, "expected static | dynamic[,N] | guided[,N]");
  }

  std::string_view kind_text = body;
  std::string_view chunk_text;
  const std::size_t comma = body.find(',');
  if (comma != std::string_view::npos) {
    kind_text = trim(body.substr(0, comma));
    chunk_text = trim(body.substr(comma + 1));
  }

  ScheduleSpec spec;
  if (kind_text == "static") {
    spec.kind = OmpScheduleKind::Static;
  } else if (kind_text == "dynamic") {
    spec.kind = OmpScheduleKind::Dynamic;
  } else if (kind_text == "guided") {
    spec.kind = OmpScheduleKind::Guided;
  } else {
    return fail(error, "unknown schedule kind '" + std::string(kind_text) +
                           "' (expected static, dynamic, or guided)");
  }

  if (comma != std::string_view::npos) {
    if (chunk_text.empty() ||
        chunk_text.find_first_not_of("0123456789") !=
            std::string_view::npos) {
      return fail(error, "chunk size '" + std::string(chunk_text) +
                             "' is not a positive integer");
    }
    std::int64_t value = 0;
    for (const char c : chunk_text) {
      value = value * 10 + (c - '0');
      if (value > 1'000'000'000) {
        return fail(error, "chunk size out of range");
      }
    }
    if (value == 0) return fail(error, "chunk size must be >= 1");
    spec.chunk = value;
  }
  return spec;
}

}  // namespace purec

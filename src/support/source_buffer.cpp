#include "support/source_buffer.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace purec {

std::string to_string(const SourceLocation& loc) {
  if (!loc.valid()) return "<unknown>";
  return std::to_string(loc.line) + ":" + std::to_string(loc.column);
}

SourceBuffer::SourceBuffer(std::string name, std::string text)
    : name_(std::move(name)), text_(std::move(text)) {
  line_offsets_.push_back(0);
  for (std::uint32_t i = 0; i < text_.size(); ++i) {
    if (text_[i] == '\n' && i + 1 < text_.size()) {
      line_offsets_.push_back(i + 1);
    }
  }
}

SourceBuffer SourceBuffer::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open source file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return SourceBuffer(path, std::move(ss).str());
}

SourceBuffer SourceBuffer::from_string(std::string text, std::string name) {
  return SourceBuffer(std::move(name), std::move(text));
}

std::uint32_t SourceBuffer::line_count() const noexcept {
  if (text_.empty()) return 0;
  return static_cast<std::uint32_t>(line_offsets_.size());
}

std::optional<std::string_view> SourceBuffer::line(std::uint32_t line) const {
  if (line == 0 || line > line_count()) return std::nullopt;
  const std::uint32_t begin = line_offsets_[line - 1];
  std::uint32_t end = (line < line_offsets_.size())
                          ? line_offsets_[line]
                          : static_cast<std::uint32_t>(text_.size());
  std::string_view sv(text_.data() + begin, end - begin);
  while (!sv.empty() && (sv.back() == '\n' || sv.back() == '\r')) {
    sv.remove_suffix(1);
  }
  return sv;
}

SourceLocation SourceBuffer::location_for_offset(std::uint32_t offset) const {
  offset = std::min<std::uint32_t>(offset,
                                   static_cast<std::uint32_t>(text_.size()));
  auto it = std::upper_bound(line_offsets_.begin(), line_offsets_.end(),
                             offset);
  const auto line_index =
      static_cast<std::uint32_t>(std::distance(line_offsets_.begin(), it));
  const std::uint32_t line_begin = line_offsets_[line_index - 1];
  return SourceLocation{line_index, offset - line_begin + 1, offset};
}

}  // namespace purec

#include "support/rational.h"

namespace purec {

std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) throw ArithmeticOverflow();
  return r;
}

std::int64_t checked_sub(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_sub_overflow(a, b, &r)) throw ArithmeticOverflow();
  return r;
}

std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r)) throw ArithmeticOverflow();
  return r;
}

std::int64_t checked_neg(std::int64_t a) { return checked_sub(0, a); }

std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  if (b == 0) throw std::invalid_argument("floor_div by zero");
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  if (b == 0) throw std::invalid_argument("ceil_div by zero");
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) == (b < 0))) ++q;
  return q;
}

Rational::Rational(std::int64_t num) : num_(num), den_(1) {}

Rational::Rational(std::int64_t num, std::int64_t den)
    : num_(num), den_(den) {
  if (den == 0) throw std::invalid_argument("Rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = checked_neg(num_);
    den_ = checked_neg(den_);
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  num_ /= g;
  den_ /= g;
}

Rational Rational::operator-() const {
  return Rational(checked_neg(num_), den_);
}

Rational Rational::operator+(const Rational& o) const {
  return Rational(
      checked_add(checked_mul(num_, o.den_), checked_mul(o.num_, den_)),
      checked_mul(den_, o.den_));
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  return Rational(checked_mul(num_, o.num_), checked_mul(den_, o.den_));
}

Rational Rational::operator/(const Rational& o) const {
  if (o.num_ == 0) throw std::invalid_argument("Rational division by zero");
  return Rational(checked_mul(num_, o.den_), checked_mul(den_, o.num_));
}

bool operator<(const Rational& a, const Rational& b) {
  // a.num/a.den < b.num/b.den  <=>  a.num*b.den < b.num*a.den (dens > 0).
  return checked_mul(a.num_, b.den_) < checked_mul(b.num_, a.den_);
}

bool operator<=(const Rational& a, const Rational& b) {
  return checked_mul(a.num_, b.den_) <= checked_mul(b.num_, a.den_);
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

}  // namespace purec

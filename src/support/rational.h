// Exact rational arithmetic over int64 with overflow checking. The
// polyhedral engine's Fourier-Motzkin elimination needs exact arithmetic;
// silent overflow would turn "dependence exists" into "no dependence" and
// miscompile user loops, so every operation checks.
#pragma once

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>

namespace purec {

/// Thrown when exact arithmetic would overflow int64. Callers in the
/// polyhedral engine treat this as "analysis failed, assume dependence".
class ArithmeticOverflow : public std::runtime_error {
 public:
  ArithmeticOverflow()
      : std::runtime_error("purec: int64 overflow in exact arithmetic") {}
};

[[nodiscard]] std::int64_t checked_add(std::int64_t a, std::int64_t b);
[[nodiscard]] std::int64_t checked_sub(std::int64_t a, std::int64_t b);
[[nodiscard]] std::int64_t checked_mul(std::int64_t a, std::int64_t b);
[[nodiscard]] std::int64_t checked_neg(std::int64_t a);

/// floor(a/b) with sign-correct semantics (b != 0). This matches the
/// `floord` helper PluTo emits into generated code.
[[nodiscard]] std::int64_t floor_div(std::int64_t a, std::int64_t b);
/// ceil(a/b) with sign-correct semantics (b != 0); PluTo's `ceild`.
[[nodiscard]] std::int64_t ceil_div(std::int64_t a, std::int64_t b);

/// Always-normalized rational: gcd(num, den) == 1, den > 0, 0 == 0/1.
class Rational {
 public:
  constexpr Rational() noexcept = default;
  Rational(std::int64_t num);  // NOLINT(google-explicit-constructor) --
                               // implicit int->Rational is the whole point.
  Rational(std::int64_t num, std::int64_t den);

  [[nodiscard]] std::int64_t num() const noexcept { return num_; }
  [[nodiscard]] std::int64_t den() const noexcept { return den_; }

  [[nodiscard]] bool is_zero() const noexcept { return num_ == 0; }
  [[nodiscard]] bool is_integer() const noexcept { return den_ == 1; }
  [[nodiscard]] int sign() const noexcept {
    return num_ == 0 ? 0 : (num_ > 0 ? 1 : -1);
  }

  /// floor of the rational as an integer.
  [[nodiscard]] std::int64_t floor() const { return floor_div(num_, den_); }
  [[nodiscard]] std::int64_t ceil() const { return ceil_div(num_, den_); }

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;  // throws on /0

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  friend bool operator==(const Rational& a, const Rational& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) noexcept {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b);
  friend bool operator<=(const Rational& a, const Rational& b);
  friend bool operator>(const Rational& a, const Rational& b) {
    return b < a;
  }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return b <= a;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  void normalize();

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

}  // namespace purec

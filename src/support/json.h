// A small ordered JSON document model + writer — the substrate of the
// observability layer (structured --report=json, bench-artifact schemas,
// trace tooling). Build a Value tree, then `dump()` it.
//
// Design points:
//  * objects preserve insertion order, so reports serialize in the order
//    the assembler states them and goldens stay stable;
//  * numbers are int64 or double; non-finite doubles (NaN, ±inf) have no
//    JSON spelling and serialize as `null` (the JSON.stringify rule), so
//    a wild value can never produce an unparsable report;
//  * strings are escaped per RFC 8259 (quote, backslash, control bytes);
//    non-ASCII bytes pass through untouched (the writer does not try to
//    validate UTF-8 — source text goes in, source text comes out).
//
// A recursive-descent parser (`parse`) rides along for the tools that
// *consume* these documents — `purecc trace` ingests reports and Chrome
// trace arrays the writers above produced. It accepts strict RFC 8259
// input (no comments, no trailing commas) and reports the byte offset of
// the first error.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace purec::json {

class Value {
 public:
  enum class Kind : std::uint8_t {
    Null,
    Bool,
    Int,
    Double,
    String,
    Array,
    Object,
  };

  using Member = std::pair<std::string, Value>;

  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(int v) : data_(static_cast<std::int64_t>(v)) {}
  Value(unsigned v) : data_(static_cast<std::int64_t>(v)) {}
  Value(long v) : data_(static_cast<std::int64_t>(v)) {}
  Value(long long v) : data_(static_cast<std::int64_t>(v)) {}
  Value(unsigned long v) : data_(static_cast<std::int64_t>(v)) {}
  Value(unsigned long long v) : data_(static_cast<std::int64_t>(v)) {}
  Value(double v) : data_(v) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}

  [[nodiscard]] static Value array() {
    Value v;
    v.data_ = ArrayStorage{};
    return v;
  }
  [[nodiscard]] static Value object() {
    Value v;
    v.data_ = ObjectStorage{};
    return v;
  }

  [[nodiscard]] Kind kind() const noexcept {
    return static_cast<Kind>(data_.index());
  }
  [[nodiscard]] bool is_null() const noexcept {
    return kind() == Kind::Null;
  }

  /// Appends to an array (the Value must be one).
  void push(Value v);
  /// Appends/overwrites a member of an object (the Value must be one).
  /// Overwrite keeps the key's original position.
  void set(std::string key, Value v);

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;
  /// Array/object element count; 0 for scalars.
  [[nodiscard]] std::size_t size() const noexcept;

  // Scalar accessors with fallbacks (reporting renderers want totals, not
  // exceptions).
  [[nodiscard]] bool as_bool(bool fallback = false) const;
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const;
  [[nodiscard]] double as_double(double fallback = 0.0) const;
  [[nodiscard]] const std::string& as_string() const;  // "" fallback
  [[nodiscard]] const std::vector<Value>* as_array() const;
  [[nodiscard]] const std::vector<Member>* as_object() const;

  /// Serializes the tree. `indent` > 0 pretty-prints with that many
  /// spaces per level; 0 emits the compact one-line form.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  struct ArrayStorage {
    std::vector<Value> items;
  };
  struct ObjectStorage {
    std::vector<Member> members;
  };

  void write(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               ArrayStorage, ObjectStorage>
      data_;
};

/// RFC 8259 string escaping, without the surrounding quotes.
[[nodiscard]] std::string escape(const std::string& s);

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Returns std::nullopt on malformed input; when `error` is non-null it
/// receives a one-line description with the byte offset of the failure.
/// Numbers parse as Int when they are integral and fit std::int64_t,
/// Double otherwise; \uXXXX escapes decode to UTF-8.
[[nodiscard]] std::optional<Value> parse(std::string_view text,
                                         std::string* error = nullptr);

}  // namespace purec::json

// Owning container for one translation unit's text.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/source_location.h"

namespace purec {

/// Immutable source text plus a line-offset index. All string_views handed
/// out by the lexer point into this buffer, so a SourceBuffer must outlive
/// every token and AST node derived from it.
class SourceBuffer {
 public:
  SourceBuffer(std::string name, std::string text);

  /// Reads `path` from disk. Throws std::runtime_error on I/O failure.
  static SourceBuffer from_file(const std::string& path);
  static SourceBuffer from_string(std::string text,
                                  std::string name = "<string>");

  [[nodiscard]] std::string_view text() const noexcept { return text_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t size() const noexcept { return text_.size(); }

  /// Number of lines (a trailing newline does not start a new line).
  [[nodiscard]] std::uint32_t line_count() const noexcept;

  /// The text of 1-based line `line` without its newline, or nullopt if out
  /// of range.
  [[nodiscard]] std::optional<std::string_view> line(
      std::uint32_t line) const;

  /// Full location (line/column) for a byte offset; offsets past the end
  /// clamp to the end of the buffer.
  [[nodiscard]] SourceLocation location_for_offset(
      std::uint32_t offset) const;

 private:
  std::string name_;
  std::string text_;
  std::vector<std::uint32_t> line_offsets_;  // offset of each line start
};

}  // namespace purec

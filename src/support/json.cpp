#include "support/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace purec::json {

namespace {

const std::string kEmptyString;

/// Shortest round-trip double formatting: try increasing precision until
/// the value parses back exactly (printf's %.17g always does).
void append_double(std::string& out, double v) {
  char buf[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  // Integral values print bare ("2"); append a fraction so the value
  // reads back as a double — readers distinguish 2 from 2.0 by spelling.
  std::string text = buf;
  if (text.find_first_of(".eE") == std::string::npos) text += ".0";
  out += text;
}

}  // namespace

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Value::push(Value v) {
  if (auto* arr = std::get_if<ArrayStorage>(&data_)) {
    arr->items.push_back(std::move(v));
  }
}

void Value::set(std::string key, Value v) {
  auto* obj = std::get_if<ObjectStorage>(&data_);
  if (obj == nullptr) return;
  for (Member& member : obj->members) {
    if (member.first == key) {
      member.second = std::move(v);
      return;
    }
  }
  obj->members.emplace_back(std::move(key), std::move(v));
}

const Value* Value::find(const std::string& key) const {
  const auto* obj = std::get_if<ObjectStorage>(&data_);
  if (obj == nullptr) return nullptr;
  for (const Member& member : obj->members) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::size_t Value::size() const noexcept {
  if (const auto* arr = std::get_if<ArrayStorage>(&data_)) {
    return arr->items.size();
  }
  if (const auto* obj = std::get_if<ObjectStorage>(&data_)) {
    return obj->members.size();
  }
  return 0;
}

bool Value::as_bool(bool fallback) const {
  const auto* b = std::get_if<bool>(&data_);
  return b != nullptr ? *b : fallback;
}

std::int64_t Value::as_int(std::int64_t fallback) const {
  if (const auto* i = std::get_if<std::int64_t>(&data_)) return *i;
  if (const auto* d = std::get_if<double>(&data_)) {
    return static_cast<std::int64_t>(*d);
  }
  return fallback;
}

double Value::as_double(double fallback) const {
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&data_)) {
    return static_cast<double>(*i);
  }
  return fallback;
}

const std::string& Value::as_string() const {
  const auto* s = std::get_if<std::string>(&data_);
  return s != nullptr ? *s : kEmptyString;
}

const std::vector<Value>* Value::as_array() const {
  const auto* arr = std::get_if<ArrayStorage>(&data_);
  return arr != nullptr ? &arr->items : nullptr;
}

const std::vector<Value::Member>* Value::as_object() const {
  const auto* obj = std::get_if<ObjectStorage>(&data_);
  return obj != nullptr ? &obj->members : nullptr;
}

std::string Value::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

void Value::write(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int levels) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(levels),
               ' ');
  };
  switch (kind()) {
    case Kind::Null:
      out += "null";
      return;
    case Kind::Bool:
      out += std::get<bool>(data_) ? "true" : "false";
      return;
    case Kind::Int:
      out += std::to_string(std::get<std::int64_t>(data_));
      return;
    case Kind::Double: {
      const double v = std::get<double>(data_);
      if (!std::isfinite(v)) {
        out += "null";  // NaN/inf have no JSON spelling
        return;
      }
      append_double(out, v);
      return;
    }
    case Kind::String:
      out += '"';
      out += escape(std::get<std::string>(data_));
      out += '"';
      return;
    case Kind::Array: {
      const auto& items = std::get<ArrayStorage>(data_).items;
      if (items.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out += ',';
        newline_pad(depth + 1);
        items[i].write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      return;
    }
    case Kind::Object: {
      const auto& members = std::get<ObjectStorage>(data_).members;
      if (members.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i != 0) out += ',';
        newline_pad(depth + 1);
        out += '"';
        out += escape(members[i].first);
        out += "\":";
        if (indent > 0) out += ' ';
        members[i].second.write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      return;
    }
  }
}

}  // namespace purec::json

#include "support/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace purec::json {

namespace {

const std::string kEmptyString;

/// Shortest round-trip double formatting: try increasing precision until
/// the value parses back exactly (printf's %.17g always does).
void append_double(std::string& out, double v) {
  char buf[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  // Integral values print bare ("2"); append a fraction so the value
  // reads back as a double — readers distinguish 2 from 2.0 by spelling.
  std::string text = buf;
  if (text.find_first_of(".eE") == std::string::npos) text += ".0";
  out += text;
}

}  // namespace

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Value::push(Value v) {
  if (auto* arr = std::get_if<ArrayStorage>(&data_)) {
    arr->items.push_back(std::move(v));
  }
}

void Value::set(std::string key, Value v) {
  auto* obj = std::get_if<ObjectStorage>(&data_);
  if (obj == nullptr) return;
  for (Member& member : obj->members) {
    if (member.first == key) {
      member.second = std::move(v);
      return;
    }
  }
  obj->members.emplace_back(std::move(key), std::move(v));
}

const Value* Value::find(const std::string& key) const {
  const auto* obj = std::get_if<ObjectStorage>(&data_);
  if (obj == nullptr) return nullptr;
  for (const Member& member : obj->members) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::size_t Value::size() const noexcept {
  if (const auto* arr = std::get_if<ArrayStorage>(&data_)) {
    return arr->items.size();
  }
  if (const auto* obj = std::get_if<ObjectStorage>(&data_)) {
    return obj->members.size();
  }
  return 0;
}

bool Value::as_bool(bool fallback) const {
  const auto* b = std::get_if<bool>(&data_);
  return b != nullptr ? *b : fallback;
}

std::int64_t Value::as_int(std::int64_t fallback) const {
  if (const auto* i = std::get_if<std::int64_t>(&data_)) return *i;
  if (const auto* d = std::get_if<double>(&data_)) {
    return static_cast<std::int64_t>(*d);
  }
  return fallback;
}

double Value::as_double(double fallback) const {
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&data_)) {
    return static_cast<double>(*i);
  }
  return fallback;
}

const std::string& Value::as_string() const {
  const auto* s = std::get_if<std::string>(&data_);
  return s != nullptr ? *s : kEmptyString;
}

const std::vector<Value>* Value::as_array() const {
  const auto* arr = std::get_if<ArrayStorage>(&data_);
  return arr != nullptr ? &arr->items : nullptr;
}

const std::vector<Value::Member>* Value::as_object() const {
  const auto* obj = std::get_if<ObjectStorage>(&data_);
  return obj != nullptr ? &obj->members : nullptr;
}

std::string Value::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

namespace {

/// Strict RFC 8259 recursive descent over a string_view. Depth-capped so
/// adversarial nesting cannot blow the stack (the documents the tools
/// read are a handful of levels deep).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  [[nodiscard]] std::optional<Value> run(std::string* error) {
    std::optional<Value> v = parse_value(0);
    if (v.has_value()) {
      skip_ws();
      if (pos_ != text_.size()) {
        fail("trailing characters after document");
        v.reset();
      }
    }
    if (!v.has_value() && error != nullptr) *error = error_;
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  void fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at byte " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<Value> parse_value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return std::nullopt;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case 'n':
        if (consume_word("null")) return Value(nullptr);
        break;
      case 't':
        if (consume_word("true")) return Value(true);
        break;
      case 'f':
        if (consume_word("false")) return Value(false);
        break;
      case '"':
        return parse_string();
      case '[':
        return parse_array(depth);
      case '{':
        return parse_object(depth);
      default:
        return parse_number();
    }
    fail("invalid literal");
    return std::nullopt;
  }

  std::optional<Value> parse_array(int depth) {
    ++pos_;  // '['
    Value out = Value::array();
    skip_ws();
    if (consume(']')) return out;
    for (;;) {
      std::optional<Value> item = parse_value(depth + 1);
      if (!item.has_value()) return std::nullopt;
      out.push(std::move(*item));
      skip_ws();
      if (consume(']')) return out;
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
  }

  std::optional<Value> parse_object(int depth) {
    ++pos_;  // '{'
    Value out = Value::object();
    skip_ws();
    if (consume('}')) return out;
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected string key in object");
        return std::nullopt;
      }
      std::optional<Value> key = parse_string();
      if (!key.has_value()) return std::nullopt;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      std::optional<Value> member = parse_value(depth + 1);
      if (!member.has_value()) return std::nullopt;
      out.set(key->as_string(), std::move(*member));
      skip_ws();
      if (consume('}')) return out;
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
  }

  [[nodiscard]] bool parse_hex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return false;
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  static void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::optional<Value> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Value(std::move(out));
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(&cp)) {
            fail("invalid \\u escape");
            return std::nullopt;
          }
          if (cp >= 0xD800 && cp <= 0xDBFF &&
              text_.substr(pos_, 2) == "\\u") {
            // Surrogate pair: combine when the low half follows.
            const std::size_t saved = pos_;
            pos_ += 2;
            unsigned low = 0;
            if (parse_hex4(&low) && low >= 0xDC00 && low <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else {
              pos_ = saved;
            }
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("invalid escape character");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
      // sign consumed
    }
    bool integral = true;
    bool any_digit = false;
    while (pos_ < text_.size() && text_[pos_] >= '0' &&
           text_[pos_] <= '9') {
      ++pos_;
      any_digit = true;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() &&
        (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (!any_digit) {
      fail("invalid number");
      return std::nullopt;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Value(v);
      }
      // Out of int64 range: fall through to double.
    }
    return Value(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

void Value::write(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int levels) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(levels),
               ' ');
  };
  switch (kind()) {
    case Kind::Null:
      out += "null";
      return;
    case Kind::Bool:
      out += std::get<bool>(data_) ? "true" : "false";
      return;
    case Kind::Int:
      out += std::to_string(std::get<std::int64_t>(data_));
      return;
    case Kind::Double: {
      const double v = std::get<double>(data_);
      if (!std::isfinite(v)) {
        out += "null";  // NaN/inf have no JSON spelling
        return;
      }
      append_double(out, v);
      return;
    }
    case Kind::String:
      out += '"';
      out += escape(std::get<std::string>(data_));
      out += '"';
      return;
    case Kind::Array: {
      const auto& items = std::get<ArrayStorage>(data_).items;
      if (items.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out += ',';
        newline_pad(depth + 1);
        items[i].write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      return;
    }
    case Kind::Object: {
      const auto& members = std::get<ObjectStorage>(data_).members;
      if (members.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i != 0) out += ',';
        newline_pad(depth + 1);
        out += '"';
        out += escape(members[i].first);
        out += "\":";
        if (indent > 0) out += ' ';
        members[i].second.write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      return;
    }
  }
}

}  // namespace purec::json

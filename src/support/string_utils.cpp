#include "support/string_utils.h"

namespace purec {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
           c == '\v';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_lines(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') {
      std::size_t end = i;
      if (end > begin && s[end - 1] == '\r') --end;
      out.push_back(s.substr(begin, end - begin));
      begin = i + 1;
    }
  }
  if (begin < s.size()) {
    std::size_t end = s.size();
    if (end > begin && s[end - 1] == '\r') --end;
    out.push_back(s.substr(begin, end - begin));
  } else if (begin == s.size() && !s.empty() && s.back() == '\n') {
    // A trailing newline does not produce a final empty line.
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  std::string out;
  if (from.empty()) return std::string(s);
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

}  // namespace purec

// Source locations and ranges used by every stage of the purec chain.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace purec {

/// A position inside a source buffer. Lines and columns are 1-based;
/// `offset` is the 0-based byte offset, which is what the lexer actually
/// tracks — line/column exist for human-readable diagnostics.
struct SourceLocation {
  std::uint32_t line = 0;
  std::uint32_t column = 0;
  std::uint32_t offset = 0;

  [[nodiscard]] constexpr bool valid() const noexcept { return line != 0; }

  friend constexpr auto operator<=>(const SourceLocation& a,
                                    const SourceLocation& b) noexcept {
    return a.offset <=> b.offset;
  }
  friend constexpr bool operator==(const SourceLocation&,
                                   const SourceLocation&) noexcept = default;
};

/// Half-open byte range [begin, end) inside one buffer.
struct SourceRange {
  SourceLocation begin;
  SourceLocation end;

  [[nodiscard]] constexpr bool valid() const noexcept {
    return begin.valid();
  }
};

/// "file.c:12:3" formatting for diagnostics.
[[nodiscard]] std::string to_string(const SourceLocation& loc);

}  // namespace purec

// Small string helpers shared across passes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace purec {

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Split on a single character; keeps empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char sep);

/// Split into lines, tolerating both "\n" and "\r\n"; the terminators are
/// not included in the pieces.
[[nodiscard]] std::vector<std::string_view> split_lines(std::string_view s);

[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Replace every occurrence of `from` in `s` with `to`.
[[nodiscard]] std::string replace_all(std::string_view s,
                                      std::string_view from,
                                      std::string_view to);

/// True for [A-Za-z0-9_].
[[nodiscard]] constexpr bool is_ident_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

}  // namespace purec

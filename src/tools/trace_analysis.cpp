#include "tools/trace_analysis.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace purec::tools {

namespace {

[[nodiscard]] std::string find_string(const json::Value& obj,
                                      const char* key) {
  const json::Value* v = obj.find(key);
  return v != nullptr ? v->as_string() : std::string();
}

[[nodiscard]] std::int64_t find_int(const json::Value& obj, const char* key,
                                    std::int64_t fallback = 0) {
  const json::Value* v = obj.find(key);
  return v != nullptr && !v->is_null() ? v->as_int(fallback) : fallback;
}

[[nodiscard]] double find_double(const json::Value& obj, const char* key,
                                 double fallback = 0.0) {
  const json::Value* v = obj.find(key);
  return v != nullptr ? v->as_double(fallback) : fallback;
}

[[nodiscard]] bool find_bool(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  return v != nullptr && v->as_bool();
}

/// The emitted-C per-worker counter event is named "<region> chunks".
[[nodiscard]] bool strip_suffix(std::string* name, const char* suffix) {
  const std::string s = suffix;
  if (name->size() <= s.size() ||
      name->compare(name->size() - s.size(), s.size(), s) != 0) {
    return false;
  }
  name->resize(name->size() - s.size());
  return true;
}

/// Joins report scops[] onto the aggregated regions: region_id match
/// first, "function:line" name match second.
void join_report(const json::Value& report, TraceSummary* summary) {
  summary->report_version = find_int(report, "report_version");
  const json::Value* scops = report.find("scops");
  const std::vector<json::Value>* entries =
      scops != nullptr ? scops->as_array() : nullptr;
  if (entries == nullptr) return;
  for (const json::Value& scop : *entries) {
    const std::int64_t region_id = find_int(scop, "region_id", -1);
    std::string scop_name = find_string(scop, "function");
    if (const json::Value* loc = scop.find("location")) {
      scop_name += ":" + std::to_string(find_int(*loc, "line"));
    }
    for (auto& [name, region] : summary->regions) {
      const bool id_match =
          region_id >= 0 && region.region_id == region_id;
      if (!id_match && name != scop_name) continue;
      region.in_report = true;
      region.parallelized = find_bool(scop, "parallelized");
      region.schedule_clause = find_string(scop, "schedule_clause");
      std::string decisions;
      if (find_bool(scop, "tiled")) decisions += " tiled";
      if (find_bool(scop, "fissioned")) {
        decisions += " fission=" +
                     std::to_string(find_int(scop, "fission_groups")) +
                     "g/" +
                     std::to_string(
                         find_int(scop, "fission_parallel_groups")) +
                     "p";
      }
      if (find_int(scop, "fused_loops") > 0) {
        decisions +=
            " fused=" + std::to_string(find_int(scop, "fused_loops"));
      }
      if (const json::Value* reds = scop.find("reductions")) {
        if (reds->size() > 0) {
          decisions += " reductions=" + std::to_string(reds->size());
        }
      }
      region.decisions = decisions;
    }
  }
  // v4 reports carry the memo cost model: static cost_nodes plus, when the
  // compile consumed a --memoize-profile, the measured reuse and score.
  const json::Value* memoization = report.find("memoization");
  const json::Value* functions =
      memoization != nullptr ? memoization->find("functions") : nullptr;
  const std::vector<json::Value>* rows =
      functions != nullptr ? functions->as_array() : nullptr;
  if (rows == nullptr) return;
  for (const json::Value& fn : *rows) {
    MemoModelRow row;
    row.function = find_string(fn, "function");
    row.memoizable = find_bool(fn, "memoizable");
    row.cost_nodes = find_int(fn, "cost_nodes");
    row.reason = find_string(fn, "reason");
    const json::Value* profile = fn.find("profile");
    if (profile != nullptr && !profile->is_null()) {
      row.profiled = true;
      row.hits = static_cast<std::uint64_t>(find_int(*profile, "hits"));
      row.misses = static_cast<std::uint64_t>(find_int(*profile, "misses"));
      row.score = find_double(*profile, "score");
    }
    summary->memo_model.push_back(std::move(row));
  }
}

[[nodiscard]] std::string format_fixed(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

[[nodiscard]] std::string format_pct(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace

std::optional<TraceSummary> analyze_trace(const json::Value& trace,
                                          const json::Value* report,
                                          std::string* error) {
  const std::vector<json::Value>* events = trace.as_array();
  if (events == nullptr) {
    if (error != nullptr) {
      *error = "trace is not a JSON array of events";
    }
    return std::nullopt;
  }
  TraceSummary summary;
  const auto region_for = [&summary](std::string name,
                                     std::int64_t region_id)
      -> RegionTrace& {
    RegionTrace& region = summary.regions[name];
    if (region.name.empty()) region.name = std::move(name);
    if (region.region_id < 0) region.region_id = region_id;
    return region;
  };
  for (const json::Value& event : *events) {
    if (event.as_object() == nullptr) {
      if (error != nullptr) *error = "trace contains a non-object event";
      return std::nullopt;
    }
    const std::string ph = find_string(event, "ph");
    std::string name = find_string(event, "name");
    const std::string cat = find_string(event, "cat");
    const json::Value* args = event.find("args");
    const std::int64_t region_id =
        args != nullptr ? find_int(*args, "region_id", -1) : -1;
    const double dur_us = find_double(event, "dur");
    if (ph == "M") continue;  // metadata names, nothing to aggregate
    if (ph == "i") {
      if (args != nullptr && args->find("dropped") != nullptr) {
        summary.dropped +=
            static_cast<std::uint64_t>(find_int(*args, "dropped"));
      } else if (cat == "steal") {
        // Steals are instants attributed to their region.
        RegionTrace& region =
            region_for("region " + std::to_string(region_id), region_id);
        region.steals += 1;
      }
      continue;
    }
    if (ph == "C") {
      // Emitted-C per-worker chunk totals: "<region> chunks" with one
      // "wN" arg per worker that claimed outer iterations.
      if (!strip_suffix(&name, " chunks") || args == nullptr) continue;
      RegionTrace& region = region_for(name, region_id);
      if (const auto* members = args->as_object()) {
        for (const auto& [key, value] : *members) {
          if (key.size() < 2 || key[0] != 'w') continue;
          const std::int64_t worker = std::atoll(key.c_str() + 1);
          region.workers[worker].chunks +=
              static_cast<std::uint64_t>(value.as_int());
          region.chunk_events +=
              static_cast<std::uint64_t>(value.as_int());
        }
      }
      continue;
    }
    if (ph != "X") continue;
    if (cat == "region") {
      RegionTrace& region = region_for(name, region_id);
      region.executions += 1;
      region.wall_us += dur_us;
    } else if (cat == "chunk") {
      RegionTrace& region =
          region_for("region " + std::to_string(region_id), region_id);
      const std::int64_t tid = find_int(event, "tid");
      region.workers[tid].chunks += 1;
      region.workers[tid].busy_us += dur_us;
      region.chunk_events += 1;
    } else if (cat == "barrier") {
      if (name == "barrier_park") {
        summary.barrier_parks += 1;
        summary.barrier_park_us += dur_us;
      } else {
        summary.barrier_spins += 1;
        summary.barrier_spin_us += dur_us;
      }
    } else if (cat == "memo") {
      if (name == "memo_hit") {
        summary.memo_hits += 1;
      } else {
        summary.memo_misses += 1;
      }
    }
  }
  // Fold placeholder rows ("region N", the runtime's unregistered-name
  // spelling) into a named region carrying the same id — a mixed trace
  // then shows one row per region with both runtimes' data joined.
  for (auto it = summary.regions.begin(); it != summary.regions.end();) {
    RegionTrace& placeholder = it->second;
    if (placeholder.region_id < 0 ||
        it->first != "region " + std::to_string(placeholder.region_id)) {
      ++it;
      continue;
    }
    RegionTrace* named = nullptr;
    for (auto& [name, region] : summary.regions) {
      if (&region != &placeholder &&
          region.region_id == placeholder.region_id) {
        named = &region;
        break;
      }
    }
    if (named == nullptr) {
      ++it;
      continue;
    }
    named->executions += placeholder.executions;
    named->wall_us += placeholder.wall_us;
    named->chunk_events += placeholder.chunk_events;
    named->steals += placeholder.steals;
    for (const auto& [tid, load] : placeholder.workers) {
      named->workers[tid].chunks += load.chunks;
      named->workers[tid].busy_us += load.busy_us;
    }
    it = summary.regions.erase(it);
  }
  if (report != nullptr) join_report(*report, &summary);
  return summary;
}

double region_imbalance(const RegionTrace& region) {
  double max_busy = 0.0;
  double total_busy = 0.0;
  std::size_t lanes = 0;
  bool have_time = false;
  for (const auto& [tid, load] : region.workers) {
    if (load.busy_us > 0.0) have_time = true;
  }
  for (const auto& [tid, load] : region.workers) {
    // Prefer busy time; a chunk-count-only trace (emitted-C counter
    // event) falls back to counts, which still exposes a skewed split.
    const double busy =
        have_time ? load.busy_us : static_cast<double>(load.chunks);
    if (busy <= 0.0) continue;
    max_busy = std::max(max_busy, busy);
    total_busy += busy;
    ++lanes;
  }
  if (lanes == 0 || total_busy <= 0.0) return 0.0;
  return max_busy / (total_busy / static_cast<double>(lanes));
}

double region_steal_ratio(const RegionTrace& region) {
  if (region.chunk_events == 0) return 0.0;
  return static_cast<double>(region.steals) /
         static_cast<double>(region.chunk_events);
}

std::string render_trace_summary(const TraceSummary& s) {
  std::string out;
  for (const auto& [name, region] : s.regions) {
    out += "purecc-trace: region " + name;
    if (region.region_id >= 0) {
      out += " id=" + std::to_string(region.region_id);
    }
    out += " executions=" + std::to_string(region.executions);
    out += " wall_ms=" + format_fixed(region.wall_us / 1000.0);
    const double imbalance = region_imbalance(region);
    if (imbalance > 0.0) out += " imbalance=" + format_fixed(imbalance);
    if (region.chunk_events > 0) {
      out += " chunks=" + std::to_string(region.chunk_events);
      out += " steal_ratio=" + format_fixed(region_steal_ratio(region));
    }
    out += "\n";
    if (region.in_report) {
      out += "purecc-trace:   schedule: ";
      out += region.schedule_clause.empty() ? "default"
                                            : region.schedule_clause;
      out += region.parallelized ? " (parallelized" : " (serial";
      out += region.decisions;
      out += ")\n";
    }
  }
  if (s.barrier_spins + s.barrier_parks > 0) {
    out += "purecc-trace: barrier spins=" + std::to_string(s.barrier_spins) +
           " spin_ms=" + format_fixed(s.barrier_spin_us / 1000.0) +
           " parks=" + std::to_string(s.barrier_parks) +
           " park_ms=" + format_fixed(s.barrier_park_us / 1000.0) + "\n";
  }
  if (s.memo_hits + s.memo_misses > 0) {
    out += "purecc-trace: memo hits=" + std::to_string(s.memo_hits) +
           " misses=" + std::to_string(s.memo_misses) + "\n";
  }
  for (const MemoModelRow& row : s.memo_model) {
    out += "purecc-trace: memo-model " + row.function +
           " cost_nodes=" + std::to_string(row.cost_nodes);
    if (row.profiled) {
      out += " hits=" + std::to_string(row.hits) +
             " misses=" + std::to_string(row.misses) +
             " score=" + format_fixed(row.score);
    }
    out += row.memoizable ? " -> memoized" : " -> rejected";
    if (!row.memoizable && !row.reason.empty()) {
      out += " (" + row.reason + ")";
    }
    out += "\n";
  }
  if (s.dropped > 0) {
    out += "purecc-trace: dropped events=" + std::to_string(s.dropped) +
           " (raise the ring capacity or trace a shorter run)\n";
  }
  if (out.empty()) out = "purecc-trace: no events\n";
  return out;
}

TraceDiff diff_traces(const TraceSummary& a, const TraceSummary& b,
                      double threshold) {
  TraceDiff diff;
  double total_a = 0.0;
  double total_b = 0.0;
  for (const auto& [name, region_a] : a.regions) {
    total_a += region_a.wall_us;
    const auto it = b.regions.find(name);
    if (it == b.regions.end()) {
      diff.text += "trace-diff: region " + name +
                   " only in baseline (wall_ms=" +
                   format_fixed(region_a.wall_us / 1000.0) + ")\n";
      continue;
    }
    const RegionTrace& region_b = it->second;
    if (region_a.wall_us <= 0.0) continue;
    const double delta =
        (region_b.wall_us - region_a.wall_us) / region_a.wall_us;
    diff.worst_delta = std::max(diff.worst_delta, delta);
    const bool flagged = delta > threshold;
    if (flagged) diff.regression = true;
    diff.text += "trace-diff: region " + name +
                 " wall_ms " + format_fixed(region_a.wall_us / 1000.0) +
                 " -> " + format_fixed(region_b.wall_us / 1000.0) + " (" +
                 format_pct(delta) + ")" +
                 (flagged ? " REGRESSION" : "") + "\n";
  }
  for (const auto& [name, region_b] : b.regions) {
    total_b += region_b.wall_us;
    if (a.regions.find(name) == a.regions.end()) {
      diff.text += "trace-diff: region " + name +
                   " only in candidate (wall_ms=" +
                   format_fixed(region_b.wall_us / 1000.0) + ")\n";
    }
  }
  if (total_a > 0.0) {
    diff.text += "trace-diff: total wall_ms " +
                 format_fixed(total_a / 1000.0) + " -> " +
                 format_fixed(total_b / 1000.0) + " (" +
                 format_pct((total_b - total_a) / total_a) + ")\n";
  }
  char verdict[128];
  std::snprintf(verdict, sizeof(verdict),
                "trace-diff: threshold %+.1f%% -> %s (worst %+.1f%%)\n",
                threshold * 100.0, diff.regression ? "FAIL" : "OK",
                diff.worst_delta * 100.0);
  diff.text += verdict;
  return diff;
}

std::optional<json::Value> load_json_file(const std::string& path,
                                          std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::string text;
  char buf[16384];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  std::string parse_error;
  std::optional<json::Value> v = json::parse(text, &parse_error);
  if (!v.has_value() && error != nullptr) {
    *error = path + ": " + parse_error;
  }
  return v;
}

}  // namespace purec::tools

// Trace analysis for `purecc trace` — ingests a Chrome trace-event array
// (the cooperative file both runtimes append to: emitted-C --instrument
// regions on pid 1, the C++ runtime's PUREC_RT_TRACE events on pid 2) and
// optionally the compile-time JSON report (report_version >= 3), joining
// the two through the stable `region_id` the compiler stamps on scops and
// the runtimes stamp on events. The result answers the questions a
// schedule experiment asks: where did the wall time go, how imbalanced
// was the work split, how much stealing absorbed it, and which compiler
// decision (schedule clause, fission, reduction) produced that behavior.
//
// `diff_traces` compares two analyses region-by-region and flags wall-time
// regressions past a threshold — the CI perf gate behind
// `purecc trace --diff A B`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/json.h"

namespace purec::tools {

/// One worker lane's share of a region (from pid-2 chunk events, or the
/// emitted-C per-worker chunk counter event when that is all the trace
/// has).
struct WorkerLoad {
  std::uint64_t chunks = 0;
  double busy_us = 0.0;
};

/// Everything the trace says about one region, joined (when a report is
/// given) with what the compiler decided about it.
struct RegionTrace {
  std::string name;              ///< "function:line" or "region N"
  std::int64_t region_id = -1;   ///< args.region_id; -1 when absent
  std::uint64_t executions = 0;  ///< X events with cat "region"
  double wall_us = 0.0;          ///< summed duration of those events
  std::uint64_t chunk_events = 0;
  std::uint64_t steals = 0;
  std::map<std::int64_t, WorkerLoad> workers;  ///< tid -> load
  // Joined from the report's scops[] entry (valid when in_report).
  bool in_report = false;
  bool parallelized = false;
  std::string schedule_clause;  ///< "" = implementation default
  std::string decisions;        ///< compact "fission=2g/1p fused=1 ..." tail
};

/// One function's memoization cost-model trail, lifted from a v4 report's
/// memoization.functions[]: the static cost proxy plus (when the report
/// came from a --memoize-profile run) the measured reuse and its score.
struct MemoModelRow {
  std::string function;
  bool memoizable = false;
  std::int64_t cost_nodes = 0;
  bool profiled = false;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double score = 0.0;
  std::string reason;  ///< rejection reason; empty when memoized
};

struct TraceSummary {
  std::map<std::string, RegionTrace> regions;  ///< keyed by region name
  double barrier_spin_us = 0.0;
  double barrier_park_us = 0.0;
  std::uint64_t barrier_spins = 0;
  std::uint64_t barrier_parks = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t dropped = 0;  ///< summed args.dropped of overflow markers
  std::int64_t report_version = 0;  ///< 0 when no report was joined
  /// Memo cost-model scores joined from the report (v4+); empty when the
  /// report predates them or memoization was off.
  std::vector<MemoModelRow> memo_model;
};

/// Aggregates a parsed trace array; `report` (nullable) joins compiler
/// decisions onto regions by region_id first, "function:line" name
/// second. Returns std::nullopt (with *error set) when `trace` is not an
/// array of event objects.
[[nodiscard]] std::optional<TraceSummary> analyze_trace(
    const json::Value& trace, const json::Value* report,
    std::string* error = nullptr);

/// max(worker busy) / mean(worker busy) over lanes with chunk time; falls
/// back to chunk *counts* when the trace only has the emitted-C counter
/// event. 1.0 = perfectly balanced; 0 when no per-worker data exists.
[[nodiscard]] double region_imbalance(const RegionTrace& region);

/// steals / chunk claims (0 when no chunks were recorded).
[[nodiscard]] double region_steal_ratio(const RegionTrace& region);

/// The human rendering of one analysis (the `purecc trace` output).
[[nodiscard]] std::string render_trace_summary(const TraceSummary& s);

struct TraceDiff {
  bool regression = false;  ///< some region's wall time grew past threshold
  double worst_delta = 0.0; ///< max (B-A)/A over matched regions
  std::string text;         ///< per-region comparison + verdict line
};

/// Region-by-region wall-time comparison (A = baseline, B = candidate).
/// `threshold` is fractional: 0.2 flags any region whose wall time grew
/// more than 20%. Regions missing from either side are reported but never
/// flagged (a disappeared region is a schedule change, not a regression).
[[nodiscard]] TraceDiff diff_traces(const TraceSummary& a,
                                    const TraceSummary& b,
                                    double threshold);

/// Reads and parses one JSON document from `path`.
[[nodiscard]] std::optional<json::Value> load_json_file(
    const std::string& path, std::string* error = nullptr);

}  // namespace purec::tools

// Linear constraint systems over integer variables and Fourier-Motzkin
// elimination: the decision core of the dependence analyzer and the bound
// generator of the loop code generator (mini-ISL + mini-CLooG bound math).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "polyhedral/linalg.h"

namespace purec::poly {

enum class ConstraintKind : std::uint8_t {
  Equality,    // coeffs . x + constant == 0
  Inequality,  // coeffs . x + constant >= 0
};

/// One affine constraint over a fixed-dimension variable space.
struct Constraint {
  ConstraintKind kind = ConstraintKind::Inequality;
  IntVec coeffs;            // one per variable
  std::int64_t constant = 0;

  [[nodiscard]] static Constraint eq(IntVec coeffs, std::int64_t constant) {
    return Constraint{ConstraintKind::Equality, std::move(coeffs), constant};
  }
  [[nodiscard]] static Constraint ge(IntVec coeffs, std::int64_t constant) {
    return Constraint{ConstraintKind::Inequality, std::move(coeffs),
                      constant};
  }

  [[nodiscard]] std::string to_string(
      const std::vector<std::string>& var_names) const;
};

/// A loop bound extracted from a constraint system for code generation:
///   lower:  var >= ceild(expr, divisor)
///   upper:  var <= floord(expr, divisor)
/// where expr is affine over earlier variables (+ constant).
struct VarBound {
  IntVec coeffs;  // over all variables; entries at or after `var` are 0
  std::int64_t constant = 0;
  std::int64_t divisor = 1;  // > 0
};

struct VarBounds {
  std::vector<VarBound> lower;
  std::vector<VarBound> upper;
};

/// Conjunction of affine constraints over `dimensions()` variables.
/// Variables are identified positionally; callers keep their own name map.
class ConstraintSystem {
 public:
  explicit ConstraintSystem(std::size_t dimensions)
      : dimensions_(dimensions) {}

  [[nodiscard]] std::size_t dimensions() const noexcept {
    return dimensions_;
  }
  [[nodiscard]] const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }

  void add(Constraint c);
  void add_equality(IntVec coeffs, std::int64_t constant);
  void add_inequality(IntVec coeffs, std::int64_t constant);

  /// Appends `extra` fresh dimensions (coefficients default to 0 in
  /// existing constraints).
  void extend_dimensions(std::size_t extra);

  /// Rational emptiness test via Gaussian elimination of equalities
  /// followed by Fourier-Motzkin elimination of all variables. Also applies
  /// the GCD integrality test to equalities, so "empty" is exact for the
  /// systems the dependence tester builds; "non-empty" is conservative
  /// (rational solution may or may not be integral), which is the safe
  /// direction for dependence analysis.
  [[nodiscard]] bool is_empty() const;

  /// Eliminates variable `var` by Fourier-Motzkin, returning the projected
  /// system (same dimension count; `var`'s coefficients become 0).
  [[nodiscard]] ConstraintSystem eliminate(std::size_t var) const;

  /// If the system forces `coeffs . x + constant` to a single value,
  /// returns it. Used to extract constant dependence distances.
  [[nodiscard]] std::optional<std::int64_t> forced_value(
      const IntVec& coeffs, std::int64_t constant) const;

  /// True if the system plus the extra inequality is satisfiable.
  [[nodiscard]] bool satisfiable_with(const Constraint& extra) const;

  /// Derives loop bounds for variables [0, n) assuming generation order
  /// var 0 outermost .. var n-1 innermost: bounds of var k reference only
  /// vars < k (plus parameters living at indices >= n, which are never
  /// eliminated). Returns one VarBounds per generated variable.
  [[nodiscard]] std::vector<VarBounds> derive_bounds(
      std::size_t loop_vars) const;

  [[nodiscard]] std::string to_string(
      const std::vector<std::string>& var_names) const;

 private:
  std::size_t dimensions_;
  std::vector<Constraint> constraints_;
};

}  // namespace purec::poly

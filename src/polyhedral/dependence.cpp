#include "polyhedral/dependence.h"

#include <algorithm>
#include <sstream>

#include "support/rational.h"

namespace purec::poly {

std::string_view to_string(DependenceKind kind) noexcept {
  switch (kind) {
    case DependenceKind::Flow: return "flow";
    case DependenceKind::Anti: return "anti";
    case DependenceKind::Output: return "output";
  }
  return "?";
}

std::string Dependence::to_string(const Scop& scop) const {
  std::ostringstream out;
  out << purec::poly::to_string(kind) << " dep on " << array << " S"
      << src_stmt << " -> S" << dst_stmt << " at level " << level;
  out << " distance (";
  for (std::size_t i = 0; i < distance.size(); ++i) {
    if (i != 0) out << ", ";
    if (distance[i]) {
      out << *distance[i];
    } else {
      out << "*";
    }
  }
  out << ")";
  (void)scop;
  return std::move(out).str();
}

namespace {

/// Builds the base dependence system over [src iters (D), dst iters (D),
/// params (p)]: each statement's own domain + subscript equalities. D is
/// the scop's full iterator count; loops not enclosing a statement are
/// simply unconstrained on its side (its domain never mentions them).
[[nodiscard]] ConstraintSystem base_system(const Scop& scop,
                                           const ScopStatement& S,
                                           const Access& src,
                                           const ScopStatement& T,
                                           const Access& dst) {
  const std::size_t d = scop.depth();
  const std::size_t p = scop.parameters.size();
  const std::size_t dims = 2 * d + p;
  ConstraintSystem sys(dims);

  // Source domain: coefficients over [iters, params] -> [src, ..., params].
  for (const Constraint& c : statement_domain(scop, S).constraints()) {
    IntVec coeffs(dims, 0);
    for (std::size_t i = 0; i < d; ++i) coeffs[i] = c.coeffs[i];
    for (std::size_t i = 0; i < p; ++i) coeffs[2 * d + i] = c.coeffs[d + i];
    sys.add(Constraint{c.kind, std::move(coeffs), c.constant});
  }
  // Destination domain -> [_, dst, params].
  for (const Constraint& c : statement_domain(scop, T).constraints()) {
    IntVec coeffs(dims, 0);
    for (std::size_t i = 0; i < d; ++i) coeffs[d + i] = c.coeffs[i];
    for (std::size_t i = 0; i < p; ++i) coeffs[2 * d + i] = c.coeffs[d + i];
    sys.add(Constraint{c.kind, std::move(coeffs), c.constant});
  }
  // Subscript equality per dimension: sub_src(i) == sub_dst(i').
  for (std::size_t s = 0; s < src.subscripts.size(); ++s) {
    const AffineForm& a = src.subscripts[s];
    const AffineForm& b = dst.subscripts[s];
    IntVec coeffs(dims, 0);
    for (std::size_t i = 0; i < d; ++i) coeffs[i] = a.coeffs[i];
    for (std::size_t i = 0; i < d; ++i) {
      coeffs[d + i] = checked_sub(coeffs[d + i], b.coeffs[i]);
    }
    for (std::size_t i = 0; i < p; ++i) {
      coeffs[2 * d + i] =
          checked_sub(a.coeffs[d + i], b.coeffs[d + i]);
    }
    sys.add_equality(std::move(coeffs),
                     checked_sub(a.constant, b.constant));
  }
  return sys;
}

/// Adds precedence "carried at common-chain position l" (1-based): the
/// first l-1 common loops agree, the l-th strictly increases.
void add_carried_constraints(ConstraintSystem& sys, std::size_t d,
                             const std::vector<std::size_t>& common,
                             std::size_t level) {
  for (std::size_t k = 0; k + 1 < level; ++k) {
    IntVec eq(sys.dimensions(), 0);
    eq[common[k]] = 1;
    eq[d + common[k]] = -1;
    sys.add_equality(std::move(eq), 0);
  }
  IntVec lt(sys.dimensions(), 0);
  lt[common[level - 1]] = -1;
  lt[d + common[level - 1]] = 1;
  sys.add_inequality(std::move(lt), -1);  // dst - src - 1 >= 0
}

void add_equal_constraints(ConstraintSystem& sys, std::size_t d,
                           const std::vector<std::size_t>& common) {
  for (std::size_t k : common) {
    IntVec eq(sys.dimensions(), 0);
    eq[k] = 1;
    eq[d + k] = -1;
    sys.add_equality(std::move(eq), 0);
  }
}

[[nodiscard]] DependenceKind classify(AccessKind src, AccessKind dst) {
  if (src == AccessKind::Write && dst == AccessKind::Read) {
    return DependenceKind::Flow;
  }
  if (src == AccessKind::Read && dst == AccessKind::Write) {
    return DependenceKind::Anti;
  }
  return DependenceKind::Output;
}

}  // namespace

std::vector<Dependence> analyze_dependences(const Scop& scop) {
  std::vector<Dependence> deps;
  const std::size_t d = scop.depth();

  for (std::size_t si = 0; si < scop.statements.size(); ++si) {
    for (std::size_t ti = 0; ti < scop.statements.size(); ++ti) {
      const ScopStatement& S = scop.statements[si];
      const ScopStatement& T = scop.statements[ti];
      const std::vector<std::size_t> src_chain = statement_loops(scop, S);
      const std::vector<std::size_t> dst_chain = statement_loops(scop, T);
      std::vector<std::size_t> common;
      for (std::size_t k = 0;
           k < src_chain.size() && k < dst_chain.size() &&
           src_chain[k] == dst_chain[k];
           ++k) {
        common.push_back(src_chain[k]);
      }
      // The accumulator's self-dependences (flow, anti, and output, at
      // every carried level) are exactly what an OpenMP reduction clause
      // is licensed to reorder — tag them so the parallelism verdicts and
      // the scheduler's legality filter can exempt them. Disjunct copies
      // of one source statement are the same update, so pairs between
      // copies (same ast) are self-dependences too.
      const bool reduction_pair =
          (si == ti || (S.ast != nullptr && S.ast == T.ast)) &&
          reduction_exemptible(S.reduction_op);
      for (const Access& a : S.accesses) {
        for (const Access& b : T.accesses) {
          if (a.array != b.array) continue;
          if (a.kind == AccessKind::Read && b.kind == AccessKind::Read) {
            continue;
          }
          if (a.subscripts.size() != b.subscripts.size()) continue;
          const bool is_reduction =
              reduction_pair && a.array == S.reduction_accumulator;

          const ConstraintSystem base = base_system(scop, S, a, T, b);

          // Carried levels over the pair's common chain.
          for (std::size_t level = 1; level <= common.size(); ++level) {
            ConstraintSystem sys = base;
            add_carried_constraints(sys, d, common, level);
            if (sys.is_empty()) continue;
            Dependence dep;
            dep.src_stmt = si;
            dep.dst_stmt = ti;
            dep.array = a.array;
            dep.kind = classify(a.kind, b.kind);
            dep.level = level;
            dep.carrier_loop = common[level - 1];
            dep.polyhedron = sys;
            dep.is_reduction = is_reduction;
            for (std::size_t k : common) {
              IntVec diff(sys.dimensions(), 0);
              diff[k] = -1;
              diff[d + k] = 1;
              dep.distance.push_back(sys.forced_value(diff, 0));
            }
            deps.push_back(std::move(dep));
          }

          // Loop-independent (same common iteration, textual order).
          if (S.position < T.position ||
              (S.position == T.position && si < ti)) {
            ConstraintSystem sys = base;
            add_equal_constraints(sys, d, common);
            if (!sys.is_empty()) {
              Dependence dep;
              dep.src_stmt = si;
              dep.dst_stmt = ti;
              dep.array = a.array;
              dep.kind = classify(a.kind, b.kind);
              dep.level = d + 1;
              dep.carrier_loop = Scop::npos;
              dep.polyhedron = sys;
              dep.distance.assign(common.size(),
                                  std::optional<std::int64_t>(0));
              deps.push_back(std::move(dep));
            }
          }
        }
      }
    }
  }
  return deps;
}

bool level_is_parallel(const std::vector<Dependence>& deps, std::size_t level,
                       std::size_t depth) {
  for (const Dependence& dep : deps) {
    if (dep.is_reduction || dep.is_private) continue;
    if (dep.loop_carried(depth) && dep.level == level) return false;
  }
  return true;
}

bool loop_is_parallel(const std::vector<Dependence>& deps,
                      std::size_t loop_index) {
  for (const Dependence& dep : deps) {
    if (dep.is_reduction || dep.is_private) continue;
    if (dep.carrier_loop == loop_index) return false;
  }
  return true;
}

namespace {

[[nodiscard]] bool name_in(const std::vector<std::string>& names,
                           const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

[[nodiscard]] bool exempt_dependence(const Dependence& dep,
                                     const std::vector<std::string>& priv) {
  return dep.is_reduction || dep.is_private || name_in(priv, dep.array);
}

}  // namespace

std::vector<std::string> privatizable_scalars(const Scop& scop,
                                              std::size_t loop_index) {
  // Candidate scalars: written somewhere with no subscripts. Reduction
  // accumulators are excluded — their carried self-dependence is already
  // licensed by the reduction clause, and privatizing one would drop the
  // combine step.
  std::vector<std::string> candidates;
  std::vector<std::string> excluded;
  for (const ScopStatement& stmt : scop.statements) {
    if (stmt.reduction_op != ReductionOp::None) {
      excluded.push_back(stmt.reduction_accumulator);
    }
    for (const Access& a : stmt.accesses) {
      if (a.kind == AccessKind::Write && a.subscripts.empty() &&
          !name_in(candidates, a.array)) {
        candidates.push_back(a.array);
      }
    }
  }

  std::vector<std::string> result;
  for (const std::string& t : candidates) {
    if (name_in(excluded, t)) continue;
    // Accessor statements in textual order (statements are emitted in
    // position order; disjunct copies are adjacent).
    std::vector<const ScopStatement*> accessors;
    bool scalar_everywhere = true;
    for (const ScopStatement& stmt : scop.statements) {
      bool touches = false;
      for (const Access& a : stmt.accesses) {
        if (a.array != t) continue;
        touches = true;
        if (!a.subscripts.empty()) scalar_everywhere = false;
      }
      if (touches) accessors.push_back(&stmt);
    }
    if (!scalar_everywhere || accessors.empty()) continue;

    // Every accessor under loop_index, and the common chain prefix.
    std::vector<std::size_t> common =
        statement_loops(scop, *accessors.front());
    bool all_under = true;
    for (const ScopStatement* stmt : accessors) {
      const std::vector<std::size_t> chain = statement_loops(scop, *stmt);
      if (std::find(chain.begin(), chain.end(), loop_index) ==
          chain.end()) {
        all_under = false;
        break;
      }
      std::size_t k = 0;
      while (k < common.size() && k < chain.size() &&
             common[k] == chain[k]) {
        ++k;
      }
      common.resize(k);
    }
    if (!all_under) continue;

    // The first accessor must dominate the rest within one iteration of
    // the common chain: an unguarded write (no read) sitting directly at
    // the common depth, so every deeper or later read in the same
    // iteration sees a value written in that iteration.
    const ScopStatement& first = *accessors.front();
    bool first_writes = false;
    bool first_reads = false;
    for (const Access& a : first.accesses) {
      if (a.array != t) continue;
      if (a.kind == AccessKind::Write) first_writes = true;
      if (a.kind == AccessKind::Read) first_reads = true;
    }
    if (!first_writes || first_reads || first.guarded) continue;
    if (statement_loops(scop, first) != common) continue;
    result.push_back(t);
  }
  return result;
}

void mark_private_dependences(std::vector<Dependence>& deps,
                              const std::vector<std::string>& names) {
  for (Dependence& dep : deps) {
    if (!dep.is_reduction && name_in(names, dep.array)) {
      dep.is_private = true;
    }
  }
}

bool loop_is_parallel_for_group(const std::vector<Dependence>& deps,
                                std::size_t loop_index,
                                const std::vector<bool>& in_group,
                                const std::vector<std::string>& private_ok) {
  for (const Dependence& dep : deps) {
    if (dep.carrier_loop != loop_index) continue;
    if (exempt_dependence(dep, private_ok)) continue;
    if (!in_group[dep.src_stmt] || !in_group[dep.dst_stmt]) continue;
    return false;
  }
  return true;
}

std::vector<FissionGroup> fission_groups(
    const Scop& scop, const std::vector<Dependence>& deps,
    const std::vector<std::string>& private_ok) {
  // Nodes: one per source statement (disjunct copies collapse — they are
  // alternative domains of the same text, not separable statements).
  const std::size_t n_stmts = scop.statements.size();
  std::vector<std::size_t> node_of(n_stmts);
  std::vector<std::vector<std::size_t>> stmts_of;
  for (std::size_t s = 0; s < n_stmts; ++s) {
    if (s > 0 && scop.statements[s].ast != nullptr &&
        scop.statements[s].ast == scop.statements[s - 1].ast) {
      node_of[s] = node_of[s - 1];
      stmts_of[node_of[s]].push_back(s);
      continue;
    }
    node_of[s] = stmts_of.size();
    stmts_of.push_back({s});
  }
  const std::size_t n = stmts_of.size();

  // Edges from every dependence (exempt ones too: a privatized scalar's
  // writer and readers must still land in the same loop — the private
  // copy only lives within one iteration).
  std::vector<std::vector<std::size_t>> succ(n);
  for (const Dependence& dep : deps) {
    const std::size_t u = node_of[dep.src_stmt];
    const std::size_t v = node_of[dep.dst_stmt];
    if (u == v) continue;
    if (std::find(succ[u].begin(), succ[u].end(), v) == succ[u].end()) {
      succ[u].push_back(v);
    }
  }

  // Tarjan SCC (iterative; nests are tiny but recursion depth is cheap to
  // avoid).
  std::vector<std::size_t> scc_of(n, Scop::npos);
  {
    std::vector<std::size_t> index(n, Scop::npos);
    std::vector<std::size_t> low(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<std::size_t> stack;
    std::size_t next_index = 0;
    std::size_t scc_count = 0;
    struct Frame {
      std::size_t node;
      std::size_t child;
    };
    for (std::size_t start = 0; start < n; ++start) {
      if (index[start] != Scop::npos) continue;
      std::vector<Frame> frames{{start, 0}};
      index[start] = low[start] = next_index++;
      stack.push_back(start);
      on_stack[start] = true;
      while (!frames.empty()) {
        Frame& f = frames.back();
        if (f.child < succ[f.node].size()) {
          const std::size_t w = succ[f.node][f.child++];
          if (index[w] == Scop::npos) {
            index[w] = low[w] = next_index++;
            stack.push_back(w);
            on_stack[w] = true;
            frames.push_back({w, 0});
          } else if (on_stack[w]) {
            low[f.node] = std::min(low[f.node], index[w]);
          }
          continue;
        }
        if (low[f.node] == index[f.node]) {
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc_of[w] = scc_count;
            if (w == f.node) break;
          }
          ++scc_count;
        }
        const std::size_t done = f.node;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().node] =
              std::min(low[frames.back().node], low[done]);
        }
      }
    }
    // Renumber components and topo-order them below.
    (void)scc_count;
  }
  std::size_t n_sccs = 0;
  for (std::size_t c : scc_of) n_sccs = std::max(n_sccs, c + 1);

  // Condensation + Kahn topological order, preferring the component with
  // the textually earliest statement so serial pieces reassemble in
  // source order.
  std::vector<std::vector<std::size_t>> members(n_sccs);
  for (std::size_t v = 0; v < n; ++v) members[scc_of[v]].push_back(v);
  std::vector<std::size_t> indegree(n_sccs, 0);
  std::vector<std::vector<std::size_t>> csucc(n_sccs);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v : succ[u]) {
      const std::size_t cu = scc_of[u];
      const std::size_t cv = scc_of[v];
      if (cu == cv) continue;
      if (std::find(csucc[cu].begin(), csucc[cu].end(), cv) ==
          csucc[cu].end()) {
        csucc[cu].push_back(cv);
        ++indegree[cv];
      }
    }
  }
  std::vector<std::size_t> order;
  std::vector<bool> emitted(n_sccs, false);
  while (order.size() < n_sccs) {
    std::size_t best = Scop::npos;
    for (std::size_t c = 0; c < n_sccs; ++c) {
      if (emitted[c] || indegree[c] != 0) continue;
      if (best == Scop::npos ||
          members[c].front() < members[best].front()) {
        best = c;
      }
    }
    emitted[best] = true;
    order.push_back(best);
    for (std::size_t v : csucc[best]) --indegree[v];
  }

  // Component parallelism, then greedy merge of consecutive components.
  const auto component_parallel = [&](const std::vector<std::size_t>& ns) {
    for (const Dependence& dep : deps) {
      if (dep.carrier_loop != 0) continue;
      if (exempt_dependence(dep, private_ok)) continue;
      const bool src_in =
          std::find(ns.begin(), ns.end(), node_of[dep.src_stmt]) !=
          ns.end();
      const bool dst_in =
          std::find(ns.begin(), ns.end(), node_of[dep.dst_stmt]) !=
          ns.end();
      if (src_in && dst_in) return false;
    }
    return true;
  };
  const auto linked_at_root = [&](const std::vector<std::size_t>& a,
                                  const std::vector<std::size_t>& b) {
    for (const Dependence& dep : deps) {
      if (dep.carrier_loop != 0) continue;
      if (exempt_dependence(dep, private_ok)) continue;
      const std::size_t u = node_of[dep.src_stmt];
      const std::size_t v = node_of[dep.dst_stmt];
      const bool u_in_a = std::find(a.begin(), a.end(), u) != a.end();
      const bool v_in_b = std::find(b.begin(), b.end(), v) != b.end();
      const bool u_in_b = std::find(b.begin(), b.end(), u) != b.end();
      const bool v_in_a = std::find(a.begin(), a.end(), v) != a.end();
      if ((u_in_a && v_in_b) || (u_in_b && v_in_a)) return true;
    }
    return false;
  };

  std::vector<std::vector<std::size_t>> merged_nodes;
  std::vector<bool> merged_parallel;
  for (std::size_t c : order) {
    const bool par = component_parallel(members[c]);
    if (!merged_nodes.empty()) {
      const bool last_par = merged_parallel.back();
      const bool can_merge =
          (!last_par && !par) ||
          (last_par && par && !linked_at_root(merged_nodes.back(),
                                              members[c]));
      if (can_merge) {
        merged_nodes.back().insert(merged_nodes.back().end(),
                                   members[c].begin(), members[c].end());
        continue;
      }
    }
    merged_nodes.push_back(members[c]);
    merged_parallel.push_back(par);
  }

  std::vector<FissionGroup> groups;
  for (std::size_t g = 0; g < merged_nodes.size(); ++g) {
    FissionGroup group;
    group.parallel = merged_parallel[g];
    for (std::size_t v : merged_nodes[g]) {
      group.statements.insert(group.statements.end(),
                              stmts_of[v].begin(), stmts_of[v].end());
    }
    std::sort(group.statements.begin(), group.statements.end());
    groups.push_back(std::move(group));
  }
  return groups;
}

const Dependence* fusion_blocker(const Scop& fused,
                                 const std::vector<Dependence>& deps,
                                 std::size_t position_boundary,
                                 bool* crossing) {
  const Dependence* local = nullptr;
  for (const Dependence& dep : deps) {
    if (dep.carrier_loop != 0) continue;
    if (dep.is_reduction || dep.is_private) continue;
    const bool src_first =
        fused.statements[dep.src_stmt].position < position_boundary;
    const bool dst_first =
        fused.statements[dep.dst_stmt].position < position_boundary;
    if (src_first != dst_first) {
      if (crossing != nullptr) *crossing = true;
      return &dep;
    }
    if (local == nullptr) local = &dep;
  }
  if (crossing != nullptr) *crossing = false;
  return local;
}

}  // namespace purec::poly

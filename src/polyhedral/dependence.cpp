#include "polyhedral/dependence.h"

#include <sstream>

#include "support/rational.h"

namespace purec::poly {

std::string_view to_string(DependenceKind kind) noexcept {
  switch (kind) {
    case DependenceKind::Flow: return "flow";
    case DependenceKind::Anti: return "anti";
    case DependenceKind::Output: return "output";
  }
  return "?";
}

std::string Dependence::to_string(const Scop& scop) const {
  std::ostringstream out;
  out << purec::poly::to_string(kind) << " dep on " << array << " S"
      << src_stmt << " -> S" << dst_stmt << " at level " << level;
  out << " distance (";
  for (std::size_t i = 0; i < distance.size(); ++i) {
    if (i != 0) out << ", ";
    if (distance[i]) {
      out << *distance[i];
    } else {
      out << "*";
    }
  }
  out << ")";
  (void)scop;
  return std::move(out).str();
}

namespace {

/// Builds the base dependence system over [src iters (D), dst iters (D),
/// params (p)]: each statement's own domain + subscript equalities. D is
/// the scop's full iterator count; loops not enclosing a statement are
/// simply unconstrained on its side (its domain never mentions them).
[[nodiscard]] ConstraintSystem base_system(const Scop& scop,
                                           const ScopStatement& S,
                                           const Access& src,
                                           const ScopStatement& T,
                                           const Access& dst) {
  const std::size_t d = scop.depth();
  const std::size_t p = scop.parameters.size();
  const std::size_t dims = 2 * d + p;
  ConstraintSystem sys(dims);

  // Source domain: coefficients over [iters, params] -> [src, ..., params].
  for (const Constraint& c : statement_domain(scop, S).constraints()) {
    IntVec coeffs(dims, 0);
    for (std::size_t i = 0; i < d; ++i) coeffs[i] = c.coeffs[i];
    for (std::size_t i = 0; i < p; ++i) coeffs[2 * d + i] = c.coeffs[d + i];
    sys.add(Constraint{c.kind, std::move(coeffs), c.constant});
  }
  // Destination domain -> [_, dst, params].
  for (const Constraint& c : statement_domain(scop, T).constraints()) {
    IntVec coeffs(dims, 0);
    for (std::size_t i = 0; i < d; ++i) coeffs[d + i] = c.coeffs[i];
    for (std::size_t i = 0; i < p; ++i) coeffs[2 * d + i] = c.coeffs[d + i];
    sys.add(Constraint{c.kind, std::move(coeffs), c.constant});
  }
  // Subscript equality per dimension: sub_src(i) == sub_dst(i').
  for (std::size_t s = 0; s < src.subscripts.size(); ++s) {
    const AffineForm& a = src.subscripts[s];
    const AffineForm& b = dst.subscripts[s];
    IntVec coeffs(dims, 0);
    for (std::size_t i = 0; i < d; ++i) coeffs[i] = a.coeffs[i];
    for (std::size_t i = 0; i < d; ++i) {
      coeffs[d + i] = checked_sub(coeffs[d + i], b.coeffs[i]);
    }
    for (std::size_t i = 0; i < p; ++i) {
      coeffs[2 * d + i] =
          checked_sub(a.coeffs[d + i], b.coeffs[d + i]);
    }
    sys.add_equality(std::move(coeffs),
                     checked_sub(a.constant, b.constant));
  }
  return sys;
}

/// Adds precedence "carried at common-chain position l" (1-based): the
/// first l-1 common loops agree, the l-th strictly increases.
void add_carried_constraints(ConstraintSystem& sys, std::size_t d,
                             const std::vector<std::size_t>& common,
                             std::size_t level) {
  for (std::size_t k = 0; k + 1 < level; ++k) {
    IntVec eq(sys.dimensions(), 0);
    eq[common[k]] = 1;
    eq[d + common[k]] = -1;
    sys.add_equality(std::move(eq), 0);
  }
  IntVec lt(sys.dimensions(), 0);
  lt[common[level - 1]] = -1;
  lt[d + common[level - 1]] = 1;
  sys.add_inequality(std::move(lt), -1);  // dst - src - 1 >= 0
}

void add_equal_constraints(ConstraintSystem& sys, std::size_t d,
                           const std::vector<std::size_t>& common) {
  for (std::size_t k : common) {
    IntVec eq(sys.dimensions(), 0);
    eq[k] = 1;
    eq[d + k] = -1;
    sys.add_equality(std::move(eq), 0);
  }
}

[[nodiscard]] DependenceKind classify(AccessKind src, AccessKind dst) {
  if (src == AccessKind::Write && dst == AccessKind::Read) {
    return DependenceKind::Flow;
  }
  if (src == AccessKind::Read && dst == AccessKind::Write) {
    return DependenceKind::Anti;
  }
  return DependenceKind::Output;
}

}  // namespace

std::vector<Dependence> analyze_dependences(const Scop& scop) {
  std::vector<Dependence> deps;
  const std::size_t d = scop.depth();

  for (std::size_t si = 0; si < scop.statements.size(); ++si) {
    for (std::size_t ti = 0; ti < scop.statements.size(); ++ti) {
      const ScopStatement& S = scop.statements[si];
      const ScopStatement& T = scop.statements[ti];
      const std::vector<std::size_t> src_chain = statement_loops(scop, S);
      const std::vector<std::size_t> dst_chain = statement_loops(scop, T);
      std::vector<std::size_t> common;
      for (std::size_t k = 0;
           k < src_chain.size() && k < dst_chain.size() &&
           src_chain[k] == dst_chain[k];
           ++k) {
        common.push_back(src_chain[k]);
      }
      // The accumulator's self-dependences (flow, anti, and output, at
      // every carried level) are exactly what an OpenMP reduction clause
      // is licensed to reorder — tag them so the parallelism verdicts and
      // the scheduler's legality filter can exempt them.
      const bool reduction_pair =
          si == ti && reduction_exemptible(S.reduction_op);
      for (const Access& a : S.accesses) {
        for (const Access& b : T.accesses) {
          if (a.array != b.array) continue;
          if (a.kind == AccessKind::Read && b.kind == AccessKind::Read) {
            continue;
          }
          if (a.subscripts.size() != b.subscripts.size()) continue;
          const bool is_reduction =
              reduction_pair && a.array == S.reduction_accumulator;

          const ConstraintSystem base = base_system(scop, S, a, T, b);

          // Carried levels over the pair's common chain.
          for (std::size_t level = 1; level <= common.size(); ++level) {
            ConstraintSystem sys = base;
            add_carried_constraints(sys, d, common, level);
            if (sys.is_empty()) continue;
            Dependence dep;
            dep.src_stmt = si;
            dep.dst_stmt = ti;
            dep.array = a.array;
            dep.kind = classify(a.kind, b.kind);
            dep.level = level;
            dep.carrier_loop = common[level - 1];
            dep.polyhedron = sys;
            dep.is_reduction = is_reduction;
            for (std::size_t k : common) {
              IntVec diff(sys.dimensions(), 0);
              diff[k] = -1;
              diff[d + k] = 1;
              dep.distance.push_back(sys.forced_value(diff, 0));
            }
            deps.push_back(std::move(dep));
          }

          // Loop-independent (same common iteration, textual order).
          if (S.position < T.position ||
              (S.position == T.position && si < ti)) {
            ConstraintSystem sys = base;
            add_equal_constraints(sys, d, common);
            if (!sys.is_empty()) {
              Dependence dep;
              dep.src_stmt = si;
              dep.dst_stmt = ti;
              dep.array = a.array;
              dep.kind = classify(a.kind, b.kind);
              dep.level = d + 1;
              dep.carrier_loop = Scop::npos;
              dep.polyhedron = sys;
              dep.distance.assign(common.size(),
                                  std::optional<std::int64_t>(0));
              deps.push_back(std::move(dep));
            }
          }
        }
      }
    }
  }
  return deps;
}

bool level_is_parallel(const std::vector<Dependence>& deps, std::size_t level,
                       std::size_t depth) {
  for (const Dependence& dep : deps) {
    if (dep.is_reduction) continue;
    if (dep.loop_carried(depth) && dep.level == level) return false;
  }
  return true;
}

bool loop_is_parallel(const std::vector<Dependence>& deps,
                      std::size_t loop_index) {
  for (const Dependence& dep : deps) {
    if (dep.is_reduction) continue;
    if (dep.carrier_loop == loop_index) return false;
  }
  return true;
}

}  // namespace purec::poly

// The polyhedral program model and its extraction from AST loop nests
// (the Clan/OpenScop counterpart in the paper's chain).
//
// Extraction is a *region walk*: starting at an outermost `for`, it
// descends through nested loops, affine `if` guards, and compound blocks,
// giving every assignment statement its own iteration domain (its
// enclosing loops' bounds plus every guard on its path). Two shapes come
// out of the walk:
//
//  * a *classic band* — one perfectly nested chain, every statement at the
//    innermost level, no guards, parameter-affine strided origins. These
//    keep the shared `Scop::domain` and go through the full PluTo-style
//    reschedule/tile/regenerate pipeline, exactly as before.
//  * a *region* (`Scop::region_shaped`) — imperfect nesting (statements
//    before/between/after an inner loop), affine `if`/`else` guards,
//    sibling loops, or iterator-dependent strided lower bounds
//    (`for (j = i; j < n; j += 2)`). These are analyzed with
//    per-statement domains and lowered by annotating the original nest
//    with OpenMP pragmas on provably parallel loops (no reordering).
//
// Remaining model restrictions: `for` loops (the chain canonicalizes
// affine `while` loops into `for` before extraction) with constant
// positive step, bounds affine in enclosing iterators and symbolic
// parameters (conjunctions `i < n && i < m` fold into the domain as
// min/max bounds), chain depth <= 4, at most 8 loops per region, bodies
// made of assignment statements with affine subscripts, guards affine and
// conjunctive (negated `else` halves included; `x != y` guards only on
// the `else` side where the negation is the affine equality). Pure
// function calls have already been substituted by `tmpConst_*`
// identifiers when extraction runs, which is exactly why the paper's
// chain can feed these nests to PluTo.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ast/stmt.h"
#include "polyhedral/constraint.h"
#include "support/diagnostics.h"

namespace purec::poly {

/// Affine form over [iterators..., parameters..., 1]. Positional: the
/// owning Scop defines the variable order.
struct AffineForm {
  IntVec coeffs;             // size = iterators + parameters
  std::int64_t constant = 0;

  [[nodiscard]] std::string to_string(
      const std::vector<std::string>& names) const;
};

enum class AccessKind : std::uint8_t { Read, Write };

/// Associative reduction operators recognized on scalar accumulators.
/// `Call` marks a user-declared pure binary function (`s = f(s, e)`):
/// recognized and reported, but not exempted from the carried-dependence
/// verdict because OpenMP has no clause (and the runtime no identity) for
/// an arbitrary combiner.
enum class ReductionOp : std::uint8_t {
  None,
  Add,
  Sub,
  Mul,
  Min,
  Max,
  Call,
};

/// Operators whose accumulator self-dependence may be exempted from the
/// parallelism verdict (they map onto an OpenMP reduction clause).
[[nodiscard]] constexpr bool reduction_exemptible(ReductionOp op) noexcept {
  return op == ReductionOp::Add || op == ReductionOp::Sub ||
         op == ReductionOp::Mul || op == ReductionOp::Min ||
         op == ReductionOp::Max;
}

/// The OpenMP clause token for an exemptible operator ("+", "-", "*",
/// "min", "max"); empty for None/Call.
[[nodiscard]] const char* reduction_token(ReductionOp op) noexcept;

struct Access {
  AccessKind kind = AccessKind::Read;
  std::string array;                  // base variable name
  std::vector<AffineForm> subscripts; // empty for scalars
};

/// One statement instance set: its accesses, its textual position, and —
/// in the region model — its own iteration domain and enclosing loop
/// chain.
struct ScopStatement {
  const Stmt* ast = nullptr;   // original AST statement (not owned)
  std::vector<Access> accesses;
  /// Global textual (pre-order) position inside the region: statements
  /// with equal common-loop iterations execute in `position` order.
  std::size_t position = 0;
  /// This statement's iteration domain over the scop's full
  /// [iterators..., parameters...] space: bounds of its enclosing chain
  /// plus every affine guard on its path. Zero dimensions (hand-built
  /// scops in tests) means "use the scop's shared domain".
  ConstraintSystem domain{0};
  /// Enclosing loops as indices into Scop::iterators, outermost first.
  /// Empty means the classic full chain [0, depth).
  std::vector<std::size_t> loops;
  /// True when an `if` guard contributed constraints to `domain`.
  bool guarded = false;
  /// Non-None when the statement is a recognized associative reduction
  /// `s (op)= e` on scalar `reduction_accumulator`, with `e` not reading
  /// `s`. Demoted back to None when `s` is accessed anywhere else in the
  /// region (the accumulator escapes the update).
  ReductionOp reduction_op = ReductionOp::None;
  std::string reduction_accumulator;
  /// For ReductionOp::Min/Max/Call: the called combiner's name
  /// (e.g. "fminf"); empty for plain operator shapes.
  std::string reduction_callee;
};

/// A static control part: a loop region rooted at one outermost `for`.
struct Scop {
  std::vector<std::string> iterators;   // all region loops, pre-order
  std::vector<std::string> parameters;  // symbolic sizes
  /// Shared domain over [iterators..., parameters...]: all loop-bound
  /// constraints. For a classic band this is the statements' exact
  /// domain (guards don't exist there); region statements refine it
  /// per-statement.
  ConstraintSystem domain{0};
  std::vector<ScopStatement> statements;
  const ForStmt* root = nullptr;        // original outermost loop
  /// Non-unit-stride normalization: source iterator i_j sweeps
  /// `origins[j] + strides[j] * t_j` where t_j is the level-j domain
  /// variable (t_j >= 0). Unit-stride levels keep the identity map
  /// (stride 1, zero origin). Origins affine over parameters only keep
  /// the scop classic; an origin that references an enclosing iterator
  /// (`for (j = i; ...; j += 2)`) forces the region path. Empty vectors
  /// (scops built by hand in tests) mean all-identity.
  std::vector<std::int64_t> strides;
  std::vector<AffineForm> origins;
  /// Region tree: parent loop of iterator j (npos for the root) and the
  /// AST node of each loop, both in the pre-order used by `iterators`.
  std::vector<std::size_t> loop_parents;
  std::vector<const ForStmt*> loop_asts;
  /// True when the walk found guards, imperfect nesting, sibling loops,
  /// or an iterator-dependent strided origin — the scop is then analyzed
  /// with per-statement domains and lowered by region annotation instead
  /// of the classic reschedule+regenerate path.
  bool region_shaped = false;
  /// Human-readable notes about reduction shapes that were recognized but
  /// demoted (accumulator read elsewhere, Call combiner) or about scan
  /// patterns (`a[i] = a[i-1] + e`) detected in the nest. Surfaced in the
  /// chain's serial verdict so the reason names the pattern instead of a
  /// generic carried dependence.
  std::vector<std::string> reduction_notes;

  [[nodiscard]] std::size_t depth() const noexcept {
    return iterators.size();
  }
  [[nodiscard]] std::vector<std::string> space_names() const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Extraction outcome. `failure_reason` is set when the nest does not fit
/// the model (the chain then leaves the loop untouched, like PluTo would);
/// the chain surfaces it as the per-SCoP rejection reason.
struct ExtractionResult {
  std::optional<Scop> scop;
  std::string failure_reason;
  /// Where the rejection bites: the offending statement or loop header
  /// when a pass can point at one, else the nest's root loop. Valid
  /// whenever `failure_reason` is set, so report entries are clickable.
  SourceLocation failure_loc;

  [[nodiscard]] bool ok() const noexcept { return scop.has_value(); }
};

/// Extracts the polyhedral model from `loop` by walking its region.
[[nodiscard]] ExtractionResult extract_scop(const ForStmt& loop);

/// The statement's effective domain/loop chain with the hand-built-scop
/// fallbacks applied (shared domain, full chain).
[[nodiscard]] const ConstraintSystem& statement_domain(
    const Scop& scop, const ScopStatement& stmt);
[[nodiscard]] std::vector<std::size_t> statement_loops(
    const Scop& scop, const ScopStatement& stmt);

}  // namespace purec::poly

// The polyhedral program model and its extraction from AST loop nests
// (the Clan/OpenScop counterpart in the paper's chain).
//
// Scope of the model (documented restriction vs. full PluTo): perfectly
// nested `for` loops of depth <= 4, constant positive step (non-unit
// strides are normalized to a unit-stride domain variable; see
// Scop::strides/origins), bounds affine in outer iterators and symbolic
// parameters, body = a sequence of assignment statements whose subscripts
// are affine. Pure function calls have already
// been substituted by `tmpConst_*` identifiers when extraction runs, which
// is exactly why the paper's chain can feed these nests to PluTo.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ast/stmt.h"
#include "polyhedral/constraint.h"
#include "support/diagnostics.h"

namespace purec::poly {

/// Affine form over [iterators..., parameters..., 1]. Positional: the
/// owning Scop defines the variable order.
struct AffineForm {
  IntVec coeffs;             // size = iterators + parameters
  std::int64_t constant = 0;

  [[nodiscard]] std::string to_string(
      const std::vector<std::string>& names) const;
};

enum class AccessKind : std::uint8_t { Read, Write };

struct Access {
  AccessKind kind = AccessKind::Read;
  std::string array;                  // base variable name
  std::vector<AffineForm> subscripts; // empty for scalars
};

/// One statement instance set: the (shared, rectangular-or-affine) domain
/// is stored on the Scop; each statement has its accesses and its textual
/// position inside the innermost body.
struct ScopStatement {
  const Stmt* ast = nullptr;   // original AST statement (not owned)
  std::vector<Access> accesses;
  std::size_t position = 0;    // textual order in the body
};

/// A static control part: one perfectly nested loop band.
struct Scop {
  std::vector<std::string> iterators;   // outermost first
  std::vector<std::string> parameters;  // symbolic sizes
  /// Domain over [iterators..., parameters...]; one shared domain because
  /// the nest is perfect.
  ConstraintSystem domain{0};
  std::vector<ScopStatement> statements;
  const ForStmt* root = nullptr;        // original outermost loop
  /// Non-unit-stride normalization: source iterator i_j sweeps
  /// `origins[j] + strides[j] * t_j` where t_j is the level-j domain
  /// variable (t_j >= 0) and origins[j] is affine over parameters only.
  /// Unit-stride levels keep the identity map (stride 1, zero origin),
  /// so classic nests model exactly as before. Empty vectors (scops
  /// built by hand in tests) mean all-identity.
  std::vector<std::int64_t> strides;
  std::vector<AffineForm> origins;

  [[nodiscard]] std::size_t depth() const noexcept {
    return iterators.size();
  }
  [[nodiscard]] std::vector<std::string> space_names() const;
};

/// Extraction outcome. `failure_reason` is set when the nest does not fit
/// the model (the chain then leaves the loop untouched, like PluTo would).
struct ExtractionResult {
  std::optional<Scop> scop;
  std::string failure_reason;

  [[nodiscard]] bool ok() const noexcept { return scop.has_value(); }
};

/// Extracts the polyhedral model from `loop`. `known_scalars` lists names
/// that must be treated as scalar memory (they are read AND written in the
/// nest); every other bare identifier read is treated as a parameter or
/// substituted constant.
[[nodiscard]] ExtractionResult extract_scop(const ForStmt& loop);

}  // namespace purec::poly

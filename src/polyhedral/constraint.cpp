#include "polyhedral/constraint.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>

#include "support/rational.h"

namespace purec::poly {

std::string Constraint::to_string(
    const std::vector<std::string>& var_names) const {
  std::ostringstream out;
  bool first = true;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    if (coeffs[i] == 0) continue;
    const std::string name =
        i < var_names.size() ? var_names[i] : "x" + std::to_string(i);
    if (first) {
      if (coeffs[i] == -1) {
        out << "-";
      } else if (coeffs[i] != 1) {
        out << coeffs[i] << "*";
      }
      first = false;
    } else {
      out << (coeffs[i] > 0 ? " + " : " - ");
      const std::int64_t a = coeffs[i] > 0 ? coeffs[i] : -coeffs[i];
      if (a != 1) out << a << "*";
    }
    out << name;
  }
  if (first) {
    out << constant;
  } else if (constant != 0) {
    out << (constant > 0 ? " + " : " - ")
        << (constant > 0 ? constant : -constant);
  }
  out << (kind == ConstraintKind::Equality ? " == 0" : " >= 0");
  return std::move(out).str();
}

void ConstraintSystem::add(Constraint c) {
  if (c.coeffs.size() != dimensions_) {
    throw std::invalid_argument("constraint dimension mismatch");
  }
  constraints_.push_back(std::move(c));
}

void ConstraintSystem::add_equality(IntVec coeffs, std::int64_t constant) {
  add(Constraint::eq(std::move(coeffs), constant));
}

void ConstraintSystem::add_inequality(IntVec coeffs, std::int64_t constant) {
  add(Constraint::ge(std::move(coeffs), constant));
}

void ConstraintSystem::extend_dimensions(std::size_t extra) {
  dimensions_ += extra;
  for (Constraint& c : constraints_) c.coeffs.resize(dimensions_, 0);
}

namespace {

/// Normalizes a constraint: divide by the gcd of coefficients (and for
/// inequalities, floor the constant — sound for integer solutions).
void normalize(Constraint& c) {
  std::int64_t g = vector_gcd(c.coeffs);
  if (g == 0) return;
  if (g > 1) {
    for (std::int64_t& x : c.coeffs) x /= g;
    if (c.kind == ConstraintKind::Inequality) {
      c.constant = floor_div(c.constant, g);
    } else {
      if (c.constant % g != 0) {
        // Equality with no integer solutions: keep as-is; the emptiness
        // check's GCD test will catch it.
        return;
      }
      c.constant /= g;
    }
  }
}

/// True when the constraint mentions no variables.
[[nodiscard]] bool is_constant(const Constraint& c) {
  return std::all_of(c.coeffs.begin(), c.coeffs.end(),
                     [](std::int64_t x) { return x == 0; });
}

/// Constant constraint truth value.
[[nodiscard]] bool constant_holds(const Constraint& c) {
  if (c.kind == ConstraintKind::Equality) return c.constant == 0;
  return c.constant >= 0;
}

/// Uses equality `eq` to substitute away variable `var` in `target`.
/// Returns the combined constraint scaled to stay integral.
[[nodiscard]] Constraint substitute(const Constraint& eq,
                                    const Constraint& target,
                                    std::size_t var) {
  const std::int64_t a = eq.coeffs[var];
  const std::int64_t b = target.coeffs[var];
  // combined = a_sign * (|a| * target - b * sign(a) * eq) has zero coeff at
  // var. To preserve inequality direction multiply target by |a| (>0).
  const std::int64_t abs_a = a < 0 ? -a : a;
  const std::int64_t factor = (a < 0) ? -b : b;
  Constraint out;
  out.kind = target.kind;
  out.coeffs.resize(target.coeffs.size());
  for (std::size_t i = 0; i < target.coeffs.size(); ++i) {
    out.coeffs[i] = checked_sub(checked_mul(abs_a, target.coeffs[i]),
                                checked_mul(factor, eq.coeffs[i]));
  }
  out.constant = checked_sub(checked_mul(abs_a, target.constant),
                             checked_mul(factor, eq.constant));
  normalize(out);
  return out;
}

struct ConstraintLess {
  bool operator()(const Constraint& a, const Constraint& b) const {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.constant != b.constant) return a.constant < b.constant;
    return a.coeffs < b.coeffs;
  }
};

}  // namespace

ConstraintSystem ConstraintSystem::eliminate(std::size_t var) const {
  ConstraintSystem out(dimensions_);
  std::vector<Constraint> lowers;   // positive coeff on var
  std::vector<Constraint> uppers;   // negative coeff on var
  std::vector<Constraint> keep;

  // First: if an equality involves var, use it to substitute everywhere.
  const Constraint* pivot = nullptr;
  for (const Constraint& c : constraints_) {
    if (c.kind == ConstraintKind::Equality && c.coeffs[var] != 0) {
      pivot = &c;
      break;
    }
  }
  if (pivot != nullptr) {
    for (const Constraint& c : constraints_) {
      if (&c == pivot) continue;
      if (c.coeffs[var] == 0) {
        out.add(c);
      } else {
        out.add(substitute(*pivot, c, var));
      }
    }
    return out;
  }

  for (const Constraint& c : constraints_) {
    if (c.coeffs[var] == 0) {
      keep.push_back(c);
    } else if (c.coeffs[var] > 0) {
      lowers.push_back(c);
    } else {
      uppers.push_back(c);
    }
  }
  std::set<Constraint, ConstraintLess> dedup;
  for (Constraint& c : keep) {
    if (dedup.insert(c).second) out.add(std::move(c));
  }
  for (const Constraint& lo : lowers) {
    for (const Constraint& up : uppers) {
      const std::int64_t a = lo.coeffs[var];        // > 0
      const std::int64_t b = -up.coeffs[var];       // > 0
      Constraint combined;
      combined.kind = ConstraintKind::Inequality;
      combined.coeffs.resize(dimensions_);
      for (std::size_t i = 0; i < dimensions_; ++i) {
        combined.coeffs[i] = checked_add(checked_mul(b, lo.coeffs[i]),
                                         checked_mul(a, up.coeffs[i]));
      }
      combined.constant = checked_add(checked_mul(b, lo.constant),
                                      checked_mul(a, up.constant));
      normalize(combined);
      if (dedup.insert(combined).second) out.add(std::move(combined));
    }
  }
  return out;
}

bool ConstraintSystem::is_empty() const {
  ConstraintSystem sys = *this;
  // GCD integrality test on equalities: if gcd(coeffs) does not divide the
  // constant, there is no integer solution at all.
  for (const Constraint& c : sys.constraints_) {
    if (c.kind != ConstraintKind::Equality) continue;
    const std::int64_t g = vector_gcd(c.coeffs);
    if (g == 0) {
      if (c.constant != 0) return true;
    } else if (c.constant % g != 0) {
      return true;
    }
  }
  for (std::size_t var = 0; var < sys.dimensions_; ++var) {
    sys = sys.eliminate(var);
    for (const Constraint& c : sys.constraints_) {
      if (is_constant(c) && !constant_holds(c)) return true;
    }
  }
  for (const Constraint& c : sys.constraints_) {
    if (is_constant(c) && !constant_holds(c)) return true;
  }
  return false;
}

bool ConstraintSystem::satisfiable_with(const Constraint& extra) const {
  ConstraintSystem sys = *this;
  sys.add(extra);
  return !sys.is_empty();
}

std::optional<std::int64_t> ConstraintSystem::forced_value(
    const IntVec& coeffs, std::int64_t constant) const {
  // The expression e = coeffs.x + constant has forced value v iff
  // (e >= v+1) is unsat and (e <= v-1) is unsat and (e == v) is sat.
  // Find a candidate v by testing satisfiability of e == v over a small
  // window; dependence distances in real loop nests are tiny, and callers
  // treat nullopt as "not constant" (safe).
  IntVec neg(coeffs.size());
  for (std::size_t i = 0; i < coeffs.size(); ++i) neg[i] = -coeffs[i];

  for (std::int64_t v = -8; v <= 8; ++v) {
    ConstraintSystem with_eq = *this;
    with_eq.add_equality(coeffs, checked_sub(constant, v));
    if (with_eq.is_empty()) continue;
    // e == v is possible; forced iff e != v is impossible.
    ConstraintSystem above = *this;
    above.add_inequality(coeffs, checked_sub(constant, v + 1));  // e >= v+1
    if (!above.is_empty()) return std::nullopt;
    ConstraintSystem below = *this;
    below.add_inequality(neg, checked_add(v - 1, -constant));    // e <= v-1
    if (!below.is_empty()) return std::nullopt;
    return v;
  }
  return std::nullopt;
}

std::vector<VarBounds> ConstraintSystem::derive_bounds(
    std::size_t loop_vars) const {
  std::vector<VarBounds> out(loop_vars);
  ConstraintSystem sys = *this;
  // Innermost first: bounds of var k may reference vars < k and parameters
  // (dims >= loop_vars are never eliminated).
  for (std::size_t k = loop_vars; k-- > 0;) {
    VarBounds& b = out[k];
    for (const Constraint& c : sys.constraints_) {
      const std::int64_t a = c.coeffs[k];
      if (a == 0) continue;
      // Any coefficient on a *later* loop var would mean the elimination
      // order is wrong; parameters are fine.
      bool later = false;
      for (std::size_t j = k + 1; j < loop_vars; ++j) {
        if (c.coeffs[j] != 0) later = true;
      }
      if (later) continue;  // already eliminated forms only

      VarBound vb;
      vb.coeffs.assign(dimensions_, 0);
      if (c.kind == ConstraintKind::Equality) {
        // a*x + rest == 0  ->  both bounds.
        VarBound lower = vb;
        VarBound upper = vb;
        const std::int64_t abs_a = a < 0 ? -a : a;
        for (std::size_t j = 0; j < dimensions_; ++j) {
          if (j == k) continue;
          const std::int64_t cj = (a > 0) ? -c.coeffs[j] : c.coeffs[j];
          lower.coeffs[j] = cj;
          upper.coeffs[j] = cj;
        }
        lower.constant = (a > 0) ? -c.constant : c.constant;
        upper.constant = lower.constant;
        lower.divisor = abs_a;
        upper.divisor = abs_a;
        b.lower.push_back(lower);
        b.upper.push_back(upper);
        continue;
      }
      if (a > 0) {
        // a*x >= -(rest)  ->  x >= ceild(-(rest), a)
        for (std::size_t j = 0; j < dimensions_; ++j) {
          if (j != k) vb.coeffs[j] = -c.coeffs[j];
        }
        vb.constant = -c.constant;
        vb.divisor = a;
        b.lower.push_back(std::move(vb));
      } else {
        // -|a|*x + rest >= 0  ->  x <= floord(rest, |a|)
        for (std::size_t j = 0; j < dimensions_; ++j) {
          if (j != k) vb.coeffs[j] = c.coeffs[j];
        }
        vb.constant = c.constant;
        vb.divisor = -a;
        b.upper.push_back(std::move(vb));
      }
    }
    sys = sys.eliminate(k);
  }
  return out;
}

std::string ConstraintSystem::to_string(
    const std::vector<std::string>& var_names) const {
  std::ostringstream out;
  for (const Constraint& c : constraints_) {
    out << c.to_string(var_names) << "\n";
  }
  return std::move(out).str();
}

}  // namespace purec::poly

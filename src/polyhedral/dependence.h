// Exact affine dependence analysis over an extracted Scop (the ISL/candl
// counterpart). For every pair of accesses to the same array with at least
// one write, a dependence polyhedron is built by intersecting the *two
// statements' own iteration domains* (per-statement domains carry affine
// `if` guards and imperfect-nest chains) with subscript equalities, then
// tested per carrying level with Fourier-Motzkin; constant distance
// vectors are recovered where they exist.
//
// Precedence for statements at different depths follows the region model:
// carried levels range over the pair's *common* loop chain; same-common-
// iteration pairs are ordered by textual (pre-order) position.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "polyhedral/constraint.h"
#include "polyhedral/model.h"

namespace purec::poly {

enum class DependenceKind : std::uint8_t {
  Flow,    // RAW: write -> read
  Anti,    // WAR: read -> write
  Output,  // WAW: write -> write
};

[[nodiscard]] std::string_view to_string(DependenceKind kind) noexcept;

struct Dependence {
  std::size_t src_stmt = 0;
  std::size_t dst_stmt = 0;
  std::string array;
  DependenceKind kind = DependenceKind::Flow;
  /// 1-based position in the pair's common loop chain carrying the
  /// dependence; depth+1 means loop-independent (within one iteration,
  /// between statements). For classic bands the common chain is the whole
  /// nest, so this is exactly the loop level.
  std::size_t level = 0;
  /// Global iterator index (into Scop::iterators) of the carrying loop;
  /// Scop::npos when loop-independent. Classic bands: level - 1.
  std::size_t carrier_loop = Scop::npos;
  /// Per-common-loop distance (target - source) when constant.
  std::vector<std::optional<std::int64_t>> distance;
  /// The dependence polyhedron over [src iters, dst iters, params]; kept
  /// for schedule-legality tests.
  ConstraintSystem polyhedron{0};
  /// Self-dependence of a recognized associative reduction's accumulator
  /// (`s = s + e` and friends). Exempt from the parallelism verdicts and
  /// from schedule legality: any interleaving of the updates is admissible
  /// because codegen lowers the statement to an OpenMP reduction clause
  /// with per-thread partials.
  bool is_reduction = false;
  /// Dependence on a function-scope scalar the chain decided to privatize
  /// (written before read in every iteration, dead after the nest). Exempt
  /// like reductions: each thread gets its own copy via `private(...)`, so
  /// the cross-iteration conflicts on the shared cell vanish.
  bool is_private = false;

  [[nodiscard]] bool loop_carried(std::size_t depth) const noexcept {
    return level <= depth;
  }
  [[nodiscard]] std::string to_string(const Scop& scop) const;
};

/// All dependences of the scop, split by level.
[[nodiscard]] std::vector<Dependence> analyze_dependences(const Scop& scop);

/// Convenience queries used by the scheduler and tests.
[[nodiscard]] bool level_is_parallel(const std::vector<Dependence>& deps,
                                     std::size_t level, std::size_t depth);

/// Region query: loop `loop_index` (global iterator index) carries no
/// dependence — its iterations can run concurrently with every enclosing
/// loop's iteration fixed.
[[nodiscard]] bool loop_is_parallel(const std::vector<Dependence>& deps,
                                    std::size_t loop_index);

/// Scalars whose every access sits under loop `loop_index` and whose
/// first accessor is an unguarded write (no read) at the accessors'
/// common loop depth: each iteration of `loop_index` writes the scalar
/// before reading it, so a per-thread copy (`private(t)`) carries no
/// value across iterations. The caller still owns liveness — a scalar
/// read after the nest (or a global) must not be privatized.
[[nodiscard]] std::vector<std::string> privatizable_scalars(
    const Scop& scop, std::size_t loop_index);

/// Tags every non-reduction dependence on one of `names` as is_private so
/// the scheduler and the parallelism verdicts exempt it.
void mark_private_dependences(std::vector<Dependence>& deps,
                              const std::vector<std::string>& names);

/// One fission component: a set of statements that must stay in the same
/// loop, and whether the root loop restricted to them is parallel.
struct FissionGroup {
  std::vector<std::size_t> statements;  // indices into Scop::statements
  bool parallel = false;
};

/// Classic loop distribution at the root loop: condenses the statement
/// dependence graph (statements sharing one source ast are one node) into
/// strongly connected components, orders them topologically, and merges
/// consecutive components that may share a loop (serial with serial;
/// parallel with parallel when no root-carried dependence links them).
/// Dependences on `private_ok` scalars and reduction self-dependences
/// don't serialize a component (they are handled by private/reduction
/// clauses) but still glue their statements into one group. Groups come
/// back in a legal execution order; a single group means fission cannot
/// separate anything.
[[nodiscard]] std::vector<FissionGroup> fission_groups(
    const Scop& scop, const std::vector<Dependence>& deps,
    const std::vector<std::string>& private_ok);

/// Group-restricted region query: loop `loop_index` carries no
/// non-exempt dependence between statements of the group (`in_group` is
/// indexed by statement). Dependences on `private_ok` scalars are exempt.
[[nodiscard]] bool loop_is_parallel_for_group(
    const std::vector<Dependence>& deps, std::size_t loop_index,
    const std::vector<bool>& in_group,
    const std::vector<std::string>& private_ok);

/// Fusion legality for a trial-merged scop (statements with position
/// below `position_boundary` came from the first of two sibling loops):
/// returns the dependence that stops the fused outer loop from being
/// parallel, or nullptr when fusion is legal. Prefers a blocker that
/// links the two halves (`*crossing = true`) — the mark of a genuinely
/// fusion-preventing dependence, as opposed to a half that was already
/// serial on its own.
[[nodiscard]] const Dependence* fusion_blocker(
    const Scop& fused, const std::vector<Dependence>& deps,
    std::size_t position_boundary, bool* crossing);

}  // namespace purec::poly

// Exact affine dependence analysis over an extracted Scop (the ISL/candl
// counterpart). For every pair of accesses to the same array with at least
// one write, a dependence polyhedron is built by intersecting the *two
// statements' own iteration domains* (per-statement domains carry affine
// `if` guards and imperfect-nest chains) with subscript equalities, then
// tested per carrying level with Fourier-Motzkin; constant distance
// vectors are recovered where they exist.
//
// Precedence for statements at different depths follows the region model:
// carried levels range over the pair's *common* loop chain; same-common-
// iteration pairs are ordered by textual (pre-order) position.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "polyhedral/constraint.h"
#include "polyhedral/model.h"

namespace purec::poly {

enum class DependenceKind : std::uint8_t {
  Flow,    // RAW: write -> read
  Anti,    // WAR: read -> write
  Output,  // WAW: write -> write
};

[[nodiscard]] std::string_view to_string(DependenceKind kind) noexcept;

struct Dependence {
  std::size_t src_stmt = 0;
  std::size_t dst_stmt = 0;
  std::string array;
  DependenceKind kind = DependenceKind::Flow;
  /// 1-based position in the pair's common loop chain carrying the
  /// dependence; depth+1 means loop-independent (within one iteration,
  /// between statements). For classic bands the common chain is the whole
  /// nest, so this is exactly the loop level.
  std::size_t level = 0;
  /// Global iterator index (into Scop::iterators) of the carrying loop;
  /// Scop::npos when loop-independent. Classic bands: level - 1.
  std::size_t carrier_loop = Scop::npos;
  /// Per-common-loop distance (target - source) when constant.
  std::vector<std::optional<std::int64_t>> distance;
  /// The dependence polyhedron over [src iters, dst iters, params]; kept
  /// for schedule-legality tests.
  ConstraintSystem polyhedron{0};
  /// Self-dependence of a recognized associative reduction's accumulator
  /// (`s = s + e` and friends). Exempt from the parallelism verdicts and
  /// from schedule legality: any interleaving of the updates is admissible
  /// because codegen lowers the statement to an OpenMP reduction clause
  /// with per-thread partials.
  bool is_reduction = false;

  [[nodiscard]] bool loop_carried(std::size_t depth) const noexcept {
    return level <= depth;
  }
  [[nodiscard]] std::string to_string(const Scop& scop) const;
};

/// All dependences of the scop, split by level.
[[nodiscard]] std::vector<Dependence> analyze_dependences(const Scop& scop);

/// Convenience queries used by the scheduler and tests.
[[nodiscard]] bool level_is_parallel(const std::vector<Dependence>& deps,
                                     std::size_t level, std::size_t depth);

/// Region query: loop `loop_index` (global iterator index) carries no
/// dependence — its iterations can run concurrently with every enclosing
/// loop's iteration fixed.
[[nodiscard]] bool loop_is_parallel(const std::vector<Dependence>& deps,
                                    std::size_t loop_index);

}  // namespace purec::poly

// Exact affine dependence analysis over an extracted Scop (the ISL/candl
// counterpart). For every pair of accesses to the same array with at least
// one write, a dependence polyhedron is built per carrying level and tested
// for emptiness with Fourier-Motzkin; constant distance vectors are
// recovered where they exist.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "polyhedral/constraint.h"
#include "polyhedral/model.h"

namespace purec::poly {

enum class DependenceKind : std::uint8_t {
  Flow,    // RAW: write -> read
  Anti,    // WAR: read -> write
  Output,  // WAW: write -> write
};

[[nodiscard]] std::string_view to_string(DependenceKind kind) noexcept;

struct Dependence {
  std::size_t src_stmt = 0;
  std::size_t dst_stmt = 0;
  std::string array;
  DependenceKind kind = DependenceKind::Flow;
  /// 1-based loop level carrying the dependence; depth+1 means
  /// loop-independent (within one iteration, between body statements).
  std::size_t level = 0;
  /// Per-dimension distance (target - source) when constant.
  std::vector<std::optional<std::int64_t>> distance;
  /// The dependence polyhedron over [src iters, dst iters, params]; kept
  /// for schedule-legality tests.
  ConstraintSystem polyhedron{0};

  [[nodiscard]] bool loop_carried(std::size_t depth) const noexcept {
    return level <= depth;
  }
  [[nodiscard]] std::string to_string(const Scop& scop) const;
};

/// All dependences of the scop, split by level.
[[nodiscard]] std::vector<Dependence> analyze_dependences(const Scop& scop);

/// Convenience queries used by the scheduler and tests.
[[nodiscard]] bool level_is_parallel(const std::vector<Dependence>& deps,
                                     std::size_t level, std::size_t depth);

}  // namespace purec::poly

// Small exact integer linear algebra for the polyhedral engine: vectors,
// matrices, determinants and unimodular inverses. Everything is checked
// int64 — see support/rational.h for the overflow policy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace purec::poly {

using IntVec = std::vector<std::int64_t>;

/// Row-major dense integer matrix. Sized at construction; rows() x cols().
class IntMat {
 public:
  IntMat() = default;
  IntMat(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  [[nodiscard]] static IntMat identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] std::int64_t& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] std::int64_t at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] IntVec row(std::size_t r) const;
  void set_row(std::size_t r, const IntVec& values);

  [[nodiscard]] IntMat multiply(const IntMat& other) const;
  [[nodiscard]] IntVec apply(const IntVec& v) const;  // this * v

  /// Determinant via fraction-free Bareiss elimination (exact).
  [[nodiscard]] std::int64_t determinant() const;

  /// Inverse of a unimodular matrix (|det| == 1); throws std::domain_error
  /// otherwise. The result is integral by construction.
  [[nodiscard]] IntMat inverse_unimodular() const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const IntMat& a, const IntMat& b) noexcept {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::int64_t> data_;
};

/// gcd of all entries (0 if all zero).
[[nodiscard]] std::int64_t vector_gcd(const IntVec& v);

/// Divides every entry by the gcd (no-op for the zero vector).
void normalize_by_gcd(IntVec& v);

[[nodiscard]] std::int64_t dot(const IntVec& a, const IntVec& b);

}  // namespace purec::poly

#include "polyhedral/codegen.h"

#include <algorithm>
#include <functional>
#include <set>

#include "ast/walk.h"
#include "support/rational.h"

namespace purec::poly {

const std::string& codegen_prelude() {
  static const std::string kPrelude =
      "#ifndef PUREC_POLY_HELPERS\n"
      "#define PUREC_POLY_HELPERS\n"
      "#define floord(n, d) "
      "(((n) < 0) ? -((-(n) + (d) - 1) / (d)) : (n) / (d))\n"
      "#define ceild(n, d) floord((n) + (d) - 1, (d))\n"
      "#define purec_max(a, b) (((a) > (b)) ? (a) : (b))\n"
      "#define purec_min(a, b) (((a) < (b)) ? (a) : (b))\n"
      "#endif\n";
  return kPrelude;
}

namespace {

/// Builds an AST expression for an affine combination of named variables.
[[nodiscard]] ExprPtr affine_to_expr(const IntVec& coeffs,
                                     std::int64_t constant,
                                     const std::vector<std::string>& names) {
  ExprPtr acc;
  const auto add_term = [&](ExprPtr term, bool negative) {
    if (!acc) {
      if (negative) {
        acc = std::make_unique<UnaryExpr>(UnaryOp::Minus, std::move(term));
      } else {
        acc = std::move(term);
      }
      return;
    }
    acc = std::make_unique<BinaryExpr>(
        negative ? BinaryOp::Sub : BinaryOp::Add, std::move(acc),
        std::move(term));
  };

  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    if (coeffs[i] == 0) continue;
    const std::int64_t a = coeffs[i] < 0 ? -coeffs[i] : coeffs[i];
    ExprPtr term = std::make_unique<IdentExpr>(names[i]);
    if (a != 1) {
      term = std::make_unique<BinaryExpr>(
          BinaryOp::Mul, std::make_unique<IntLiteralExpr>(a),
          std::move(term));
    }
    add_term(std::move(term), coeffs[i] < 0);
  }
  if (constant != 0 || !acc) {
    if (!acc) {
      acc = std::make_unique<IntLiteralExpr>(constant);
    } else if (constant > 0) {
      acc = std::make_unique<BinaryExpr>(
          BinaryOp::Add, std::move(acc),
          std::make_unique<IntLiteralExpr>(constant));
    } else {
      acc = std::make_unique<BinaryExpr>(
          BinaryOp::Sub, std::move(acc),
          std::make_unique<IntLiteralExpr>(-constant));
    }
  }
  return acc;
}

[[nodiscard]] ExprPtr call_helper(const std::string& name, ExprPtr a,
                                  ExprPtr b) {
  std::vector<ExprPtr> args;
  args.push_back(std::move(a));
  args.push_back(std::move(b));
  return std::make_unique<CallExpr>(std::make_unique<IdentExpr>(name),
                                    std::move(args));
}

/// Renders one bound as an expression; divisor > 1 becomes ceild/floord.
[[nodiscard]] ExprPtr bound_to_expr(const VarBound& bound, bool lower,
                                    const std::vector<std::string>& names) {
  ExprPtr base = affine_to_expr(bound.coeffs, bound.constant, names);
  if (bound.divisor == 1) return base;
  return call_helper(lower ? "ceild" : "floord", std::move(base),
                     std::make_unique<IntLiteralExpr>(bound.divisor));
}

/// Combines several bounds with purec_max (lower) / purec_min (upper).
[[nodiscard]] ExprPtr combine_bounds(const std::vector<VarBound>& bounds,
                                     bool lower,
                                     const std::vector<std::string>& names) {
  ExprPtr acc;
  for (const VarBound& b : bounds) {
    ExprPtr e = bound_to_expr(b, lower, names);
    if (!acc) {
      acc = std::move(e);
    } else {
      acc = call_helper(lower ? "purec_max" : "purec_min", std::move(acc),
                        std::move(e));
    }
  }
  return acc;
}

/// for (int name = lower; name <= upper; name++) { body }
[[nodiscard]] StmtPtr make_loop(const std::string& name, ExprPtr lower,
                                ExprPtr upper, StmtPtr body) {
  auto loop = std::make_unique<ForStmt>();
  auto init = std::make_unique<DeclStmt>();
  VarDecl v;
  v.name = name;
  v.type = Type::make_builtin(BuiltinKind::Int);
  v.init = std::move(lower);
  init->decls.push_back(std::move(v));
  loop->init = std::move(init);
  loop->cond = std::make_unique<BinaryExpr>(
      BinaryOp::LessEqual, std::make_unique<IdentExpr>(name),
      std::move(upper));
  loop->inc = std::make_unique<UnaryExpr>(
      UnaryOp::PostInc, std::make_unique<IdentExpr>(name));
  loop->body = std::move(body);
  return loop;
}

}  // namespace

namespace {

[[nodiscard]] std::int64_t substitution_constant(
    const IteratorSubstitution& substitution, std::size_t j) {
  return j < substitution.iterator_constant.size()
             ? substitution.iterator_constant[j]
             : 0;
}

}  // namespace

void apply_iterator_substitution(ExprPtr& expr,
                                 const std::vector<std::string>& old_names,
                                 const IteratorSubstitution& substitution) {
  for_each_expr_slot(expr, [&](ExprPtr& slot) -> bool {
    const auto* ident = expr_cast<IdentExpr>(slot.get());
    if (ident == nullptr) return false;
    for (std::size_t j = 0; j < old_names.size(); ++j) {
      if (ident->name == old_names[j]) {
        slot = affine_to_expr(substitution.iterator_replacement[j],
                              substitution_constant(substitution, j),
                              substitution.names);
        return true;  // do not descend into the replacement
      }
    }
    return false;
  });
}

void apply_iterator_substitution(StmtPtr& stmt,
                                 const std::vector<std::string>& old_names,
                                 const IteratorSubstitution& substitution) {
  for_each_expr_slot(*stmt, [&](ExprPtr& slot) -> bool {
    const auto* ident = expr_cast<IdentExpr>(slot.get());
    if (ident == nullptr) return false;
    for (std::size_t j = 0; j < old_names.size(); ++j) {
      if (ident->name == old_names[j]) {
        slot = affine_to_expr(substitution.iterator_replacement[j],
                              substitution_constant(substitution, j),
                              substitution.names);
        return true;
      }
    }
    return false;
  });
}

namespace {

/// Composes "reduction(op:acc,...)" clauses for every exemptible
/// reduction statement accepted by `in_scope`, grouped by operator token
/// in first-appearance order. Empty when no reduction is in scope.
[[nodiscard]] std::string reduction_clauses(
    const Scop& scop,
    const std::function<bool(const ScopStatement&)>& in_scope) {
  std::vector<std::pair<std::string, std::vector<std::string>>> groups;
  for (const ScopStatement& stmt : scop.statements) {
    if (!reduction_exemptible(stmt.reduction_op) || !in_scope(stmt)) {
      continue;
    }
    const std::string token = reduction_token(stmt.reduction_op);
    auto it = std::find_if(
        groups.begin(), groups.end(),
        [&](const auto& g) { return g.first == token; });
    if (it == groups.end()) {
      groups.emplace_back(token, std::vector<std::string>{});
      it = std::prev(groups.end());
    }
    if (std::find(it->second.begin(), it->second.end(),
                  stmt.reduction_accumulator) == it->second.end()) {
      it->second.push_back(stmt.reduction_accumulator);
    }
  }
  std::string out;
  for (const auto& [token, names] : groups) {
    if (!out.empty()) out += " ";
    out += "reduction(" + token + ":";
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i != 0) out += ",";
      out += names[i];
    }
    out += ")";
  }
  return out;
}

[[nodiscard]] bool couples_iterators(const ConstraintSystem& domain,
                                     std::size_t d) {
  for (const Constraint& c : domain.constraints()) {
    std::size_t coupled = 0;
    for (std::size_t i = 0; i < d && i < c.coeffs.size(); ++i) {
      if (c.coeffs[i] != 0) ++coupled;
    }
    if (coupled >= 2) return true;
  }
  return false;
}

}  // namespace

bool domain_is_imbalanced(const Scop& scop) {
  const std::size_t d = scop.depth();
  if (d < 2) return false;
  if (couples_iterators(scop.domain, d)) return true;
  for (const ScopStatement& stmt : scop.statements) {
    if (stmt.domain.dimensions() > 0 && couples_iterators(stmt.domain, d)) {
      return true;
    }
  }
  return false;
}

StmtPtr generate_code(const Scop& scop, const Transform& transform,
                      const CodegenOptions& options,
                      IteratorSubstitution* substitution_out) {
  const std::size_t d = scop.depth();
  const std::size_t p = scop.parameters.size();
  const IntMat& T = transform.matrix;
  const IntMat Tinv = T.inverse_unimodular();

  // New iterator names t1..td (PluTo's convention), avoiding collisions
  // with parameters and arrays.
  std::vector<std::string> point_names;
  for (std::size_t i = 0; i < d; ++i) {
    std::string name = "t" + std::to_string(i + 1);
    while (std::find(scop.parameters.begin(), scop.parameters.end(), name) !=
               scop.parameters.end() ||
           std::find(scop.iterators.begin(), scop.iterators.end(), name) !=
               scop.iterators.end()) {
      name = "_" + name;
    }
    point_names.push_back(name);
  }

  const bool do_tile =
      options.tile && transform.band_size >= 2 && options.tile_size > 1;
  const std::size_t tiled_dims = do_tile ? transform.band_size : 0;

  std::vector<std::string> tile_names;
  for (std::size_t i = 0; i < tiled_dims; ++i) {
    tile_names.push_back(point_names[i] + "t");
  }

  // Variable order for generation: [tiles..., points..., params...].
  const std::size_t loop_vars = tiled_dims + d;
  const std::size_t dims = loop_vars + p;
  std::vector<std::string> names;
  names.insert(names.end(), tile_names.begin(), tile_names.end());
  names.insert(names.end(), point_names.begin(), point_names.end());
  names.insert(names.end(), scop.parameters.begin(), scop.parameters.end());

  ConstraintSystem sys(dims);
  // Transformed domain: original constraint a.i + b.p + k ~ 0 with
  // i = Tinv.c becomes (a.Tinv).c + b.p + k ~ 0.
  for (const Constraint& c : scop.domain.constraints()) {
    IntVec coeffs(dims, 0);
    for (std::size_t col = 0; col < d; ++col) {
      std::int64_t acc = 0;
      for (std::size_t i = 0; i < d; ++i) {
        acc = checked_add(acc, checked_mul(c.coeffs[i], Tinv.at(i, col)));
      }
      coeffs[tiled_dims + col] = acc;
    }
    for (std::size_t i = 0; i < p; ++i) {
      coeffs[loop_vars + i] = c.coeffs[d + i];
    }
    sys.add(Constraint{c.kind, std::move(coeffs), c.constant});
  }
  // Tile containment: 0 <= c_k - B*ct_k <= B-1.
  for (std::size_t k = 0; k < tiled_dims; ++k) {
    IntVec lo(dims, 0);
    lo[tiled_dims + k] = 1;
    lo[k] = -options.tile_size;
    sys.add_inequality(std::move(lo), 0);
    IntVec hi(dims, 0);
    hi[tiled_dims + k] = -1;
    hi[k] = options.tile_size;
    sys.add_inequality(std::move(hi), options.tile_size - 1);
  }

  const std::vector<VarBounds> bounds = sys.derive_bounds(loop_vars);

  // Statement body: original statements with iterators substituted by
  // rows of Tinv over the new point iterators. Strided levels fold their
  // normalization back in: i_j = origin_j + stride_j * (Tinv row j).c,
  // so the source expression the reader sees iterates the original
  // values while the domain variable counts trips.
  std::vector<IntVec> replacement(d);
  std::vector<std::int64_t> constants(d, 0);
  {
    for (std::size_t j = 0; j < d; ++j) {
      const std::int64_t stride =
          j < scop.strides.size() ? scop.strides[j] : 1;
      IntVec coeffs(names.size(), 0);
      for (std::size_t col = 0; col < d; ++col) {
        coeffs[tiled_dims + col] = checked_mul(stride, Tinv.at(j, col));
      }
      if (stride != 1 && j < scop.origins.size()) {
        const AffineForm& origin = scop.origins[j];
        for (std::size_t i = 0; i < p; ++i) {
          if (d + i < origin.coeffs.size()) {
            coeffs[loop_vars + i] = origin.coeffs[d + i];
          }
        }
        constants[j] = origin.constant;
      }
      replacement[j] = std::move(coeffs);
    }
  }

  IteratorSubstitution substitution;
  substitution.names = names;
  substitution.iterator_replacement = replacement;
  substitution.iterator_constant = constants;
  if (substitution_out != nullptr) *substitution_out = substitution;

  auto body = std::make_unique<CompoundStmt>();
  for (const ScopStatement& stmt : scop.statements) {
    StmtPtr cloned = stmt.ast->clone();
    apply_iterator_substitution(cloned, scop.iterators, substitution);
    body->stmts.push_back(std::move(cloned));
  }

  // Effective schedule: the user's spec wins; with no spec, an
  // imbalanced-looking domain (triangular inner trip counts) defaults to
  // guided so early big chunks amortize claims and the fine tail absorbs
  // the imbalance. Rectangular domains keep the implementation default.
  ScheduleSpec schedule = options.schedule;
  if (schedule.empty() && options.parallelize &&
      domain_is_imbalanced(scop)) {
    schedule.kind = OmpScheduleKind::Guided;
    schedule.chunk = 4;
  }
  const std::string schedule_clause = schedule.clause();

  // Accumulator clause for the whole band (every statement runs under the
  // pragma'd loop in a classic scop). The simd pragma needs it too: simd
  // asserts no lane-carried dependence, which for the accumulator is only
  // true under the clause's per-lane partials.
  const std::string reduction_clause = reduction_clauses(
      scop, [](const ScopStatement&) { return true; });

  // Privatized scalars (the chain's decision): shared cells whose value
  // never crosses an iteration, so each thread/lane gets its own copy.
  std::string private_clause;
  for (std::size_t i = 0; i < options.privatized.size(); ++i) {
    private_clause += (i == 0 ? "private(" : ", ") + options.privatized[i];
  }
  if (!private_clause.empty()) private_clause += ")";

  // Decide pragma placement.
  const std::size_t outer_parallel = transform.outermost_parallel();
  const bool parallel_outermost =
      options.parallelize && outer_parallel == 0;
  // When the outermost dimension is sequential but an inner one is
  // parallel, the OpenMP pragma goes on that inner *point* loop (valid:
  // all outer point dimensions are fixed there).
  const std::size_t inner_parallel_point =
      (options.parallelize && !parallel_outermost &&
       outer_parallel != Transform::npos)
          ? outer_parallel
          : Transform::npos;

  // Innermost parallel point dimension for the SICA simd pragma.
  std::size_t simd_dim = Transform::npos;
  if (options.simd && d > 0 && transform.parallel[d - 1]) {
    simd_dim = d - 1;
  }

  // Build loops inside-out: points innermost-first, then tiles.
  StmtPtr current = std::move(body);
  for (std::size_t k = d; k-- > 0;) {
    const VarBounds& vb = bounds[tiled_dims + k];
    ExprPtr lower = combine_bounds(vb.lower, true, names);
    ExprPtr upper = combine_bounds(vb.upper, false, names);
    if (!lower || !upper) {
      // Unbounded loop variable: cannot generate; signal by returning the
      // original nest untouched. (Callers treat this as "no transform".)
      return nullptr;
    }
    StmtPtr loop = make_loop(point_names[k], std::move(lower),
                             std::move(upper), std::move(current));
    auto wrapper = std::make_unique<CompoundStmt>();
    if (k == simd_dim && k != 0) {
      std::string text = "#pragma omp simd";
      if (!reduction_clause.empty()) text += " " + reduction_clause;
      if (!private_clause.empty()) text += " " + private_clause;
      wrapper->stmts.push_back(std::make_unique<PragmaStmt>(text));
    }
    if (k == inner_parallel_point && k != 0) {
      std::string text = "#pragma omp parallel for";
      if (!schedule_clause.empty()) text += " " + schedule_clause;
      if (!reduction_clause.empty()) text += " " + reduction_clause;
      if (!private_clause.empty()) text += " " + private_clause;
      wrapper->stmts.push_back(std::make_unique<PragmaStmt>(text));
    }
    if (wrapper->stmts.empty()) {
      current = std::move(loop);
    } else {
      wrapper->stmts.push_back(std::move(loop));
      current = std::move(wrapper);
    }
  }
  for (std::size_t k = tiled_dims; k-- > 0;) {
    const VarBounds& vb = bounds[k];
    ExprPtr lower = combine_bounds(vb.lower, true, names);
    ExprPtr upper = combine_bounds(vb.upper, false, names);
    if (!lower || !upper) return nullptr;
    current = make_loop(tile_names[k], std::move(lower), std::move(upper),
                        std::move(current));
  }

  auto result = std::make_unique<CompoundStmt>();
  if (options.parallelize &&
      (parallel_outermost ||
       (inner_parallel_point == 0 && tiled_dims == 0))) {
    std::string text = "#pragma omp parallel for";
    if (!schedule_clause.empty()) text += " " + schedule_clause;
    if (!reduction_clause.empty()) text += " " + reduction_clause;
    if (!private_clause.empty()) text += " " + private_clause;
    result->stmts.push_back(std::make_unique<PragmaStmt>(text));
  }
  result->stmts.push_back(std::move(current));
  return result;
}

StmtPtr schedule_region(const Scop& scop,
                        const std::vector<Dependence>& deps,
                        const CodegenOptions& options,
                        const std::vector<std::string>& privatizable,
                        RegionSchedule* result) {
  RegionSchedule local;
  RegionSchedule& rs = result != nullptr ? *result : local;
  rs = RegionSchedule{};
  if (!options.parallelize || scop.root == nullptr) return nullptr;
  const std::size_t d = scop.depth();
  const std::size_t n = scop.statements.size();
  if (d == 0 || n == 0) return nullptr;

  // Per-loop privatizable scalars: the structural write-before-read rule,
  // restricted to what the chain's liveness analysis allows.
  std::vector<std::vector<std::string>> priv(d);
  if (!privatizable.empty()) {
    for (std::size_t j = 0; j < d; ++j) {
      for (const std::string& t : privatizable_scalars(scop, j)) {
        if (std::find(privatizable.begin(), privatizable.end(), t) !=
            privatizable.end()) {
          priv[j].push_back(t);
        }
      }
    }
  }

  // First try the nest whole; when no loop parallelizes (even with
  // privatization) fall back to loop fission so a partially parallel
  // nest splits instead of serializing outright.
  std::vector<FissionGroup> groups;
  {
    const std::vector<bool> all_stmts(n, true);
    bool any_parallel = false;
    for (std::size_t j = 0; j < d && !any_parallel; ++j) {
      any_parallel = loop_is_parallel_for_group(deps, j, all_stmts,
                                                priv[j]);
    }
    if (any_parallel) {
      FissionGroup whole;
      for (std::size_t s = 0; s < n; ++s) whole.statements.push_back(s);
      whole.parallel =
          loop_is_parallel_for_group(deps, 0, all_stmts, priv[0]);
      groups.push_back(std::move(whole));
    } else {
      groups = fission_groups(
          scop, deps,
          priv.empty() ? std::vector<std::string>{} : priv[0]);
      if (groups.size() < 2) return nullptr;
    }
  }

  auto fission_block = std::make_unique<CompoundStmt>();
  StmtPtr single_nest;
  std::size_t total_selected = 0;

  for (const FissionGroup& group : groups) {
    std::vector<bool> in_group(n, false);
    std::set<std::size_t> keep_positions;
    for (std::size_t s : group.statements) {
      in_group[s] = true;
      keep_positions.insert(scop.statements[s].position);
    }

    // Loops present in this group's pruned nest.
    std::vector<bool> relevant(d, false);
    for (std::size_t s : group.statements) {
      for (std::size_t j : statement_loops(scop, scop.statements[s])) {
        relevant[j] = true;
      }
    }

    // Parallel loops for this group (privatization-aware), and the
    // outermost-parallel selection: a loop gets the pragma when no
    // enclosing loop already has one (no nested parallel regions).
    std::vector<bool> parallel(d, false);
    std::vector<bool> parallel_plain(d, false);
    for (std::size_t j = 0; j < d; ++j) {
      if (!relevant[j]) continue;
      parallel[j] = loop_is_parallel_for_group(deps, j, in_group, priv[j]);
      parallel_plain[j] = loop_is_parallel_for_group(deps, j, in_group, {});
    }
    std::vector<bool> selected(d, false);
    for (std::size_t j = 0; j < d; ++j) {
      if (!parallel[j]) continue;
      bool under_selected = false;
      for (std::size_t a = scop.loop_parents[j]; a != Scop::npos;
           a = scop.loop_parents[a]) {
        if (selected[a]) {
          under_selected = true;
          break;
        }
      }
      selected[j] = !under_selected;
    }

    // SICA mode: parallel leaf loops (within this group's pruned nest)
    // that did not take the parallel pragma get the vectorization hint.
    // Only plainly parallel loops qualify — a privatization-dependent
    // loop would need its own private clause on the simd pragma.
    std::vector<bool> has_child(d, false);
    for (std::size_t j = 0; j < d; ++j) {
      if (relevant[j] && scop.loop_parents[j] != Scop::npos) {
        has_child[scop.loop_parents[j]] = true;
      }
    }
    std::vector<bool> simd(d, false);
    if (options.simd) {
      for (std::size_t j = 0; j < d; ++j) {
        simd[j] = relevant[j] && !has_child[j] && parallel_plain[j] &&
                  !selected[j];
      }
    }

    // Effective schedule, per pragma'd loop: the user's spec wins; with
    // no spec, a loop whose in-group statements have iterator-coupled
    // (triangular/trapezoidal) domains defaults to guided so the fine
    // tail absorbs the imbalance. Evaluating post-fission, per loop,
    // keeps a fissioned-off rectangular loop from inheriting a
    // triangular sibling's clause.
    const auto clause_for_loop = [&](std::size_t j) -> std::string {
      ScheduleSpec schedule = options.schedule;
      if (schedule.empty()) {
        for (std::size_t s : group.statements) {
          const ScopStatement& stmt = scop.statements[s];
          const std::vector<std::size_t> chain =
              statement_loops(scop, stmt);
          if (std::find(chain.begin(), chain.end(), j) == chain.end()) {
            continue;
          }
          if (couples_iterators(statement_domain(scop, stmt), d)) {
            schedule.kind = OmpScheduleKind::Guided;
            schedule.chunk = 4;
            break;
          }
        }
      }
      return schedule.clause();
    };

    // Accumulators of the group's reduction statements: the pragma gets
    // them as reduction clauses (and the private clause below must never
    // list them — GCC rejects a name in both).
    std::vector<std::string> accumulators;
    for (std::size_t s : group.statements) {
      if (reduction_exemptible(scop.statements[s].reduction_op)) {
        accumulators.push_back(scop.statements[s].reduction_accumulator);
      }
    }
    const auto reduction_for_loop = [&](std::size_t loop_index) {
      return reduction_clauses(scop, [&](const ScopStatement& stmt) {
        const std::size_t idx =
            static_cast<std::size_t>(&stmt - scop.statements.data());
        if (!in_group[idx]) return false;
        const std::vector<std::size_t> chain = statement_loops(scop, stmt);
        return std::find(chain.begin(), chain.end(), loop_index) !=
               chain.end();
      });
    };

    // OpenMP privatizes only the pragma'd loop's own iteration variable.
    // A descendant loop whose iterator lives in an enclosing scope
    // (`int j; ... for (j = 0; ...)` — C89 style, or a canonicalized
    // while whose variable is read after its loop) would be *shared*
    // across threads, racing; list those in an explicit private clause,
    // followed by the privatized scalars the loop's parallelism depends
    // on. (Decl-init descendants are block-scoped and already
    // per-thread.)
    const auto private_for_loop = [&](std::size_t s) -> std::string {
      std::vector<std::string> names;
      for (std::size_t k = 0; k < d; ++k) {
        if (k == s || !relevant[k]) continue;
        bool under = false;
        for (std::size_t a = scop.loop_parents[k]; a != Scop::npos;
             a = scop.loop_parents[a]) {
          if (a == s) {
            under = true;
            break;
          }
        }
        if (!under) continue;
        const ForStmt* ast = scop.loop_asts[k];
        if (ast == nullptr || !ast->init ||
            stmt_cast<ExprStmt>(ast->init.get()) == nullptr) {
          continue;
        }
        if (std::find(accumulators.begin(), accumulators.end(),
                      scop.iterators[k]) != accumulators.end()) {
          continue;
        }
        if (std::find(names.begin(), names.end(), scop.iterators[k]) ==
            names.end()) {
          names.push_back(scop.iterators[k]);
        }
      }
      for (const std::string& t : priv[s]) {
        bool needed = false;
        for (const Dependence& dep : deps) {
          if (dep.is_reduction || dep.array != t ||
              dep.carrier_loop != s) {
            continue;
          }
          if (!in_group[dep.src_stmt] || !in_group[dep.dst_stmt]) {
            continue;
          }
          needed = true;
          break;
        }
        if (!needed) continue;
        if (std::find(names.begin(), names.end(), t) == names.end()) {
          names.push_back(t);
        }
        if (std::find(rs.privatized.begin(), rs.privatized.end(), t) ==
            rs.privatized.end()) {
          rs.privatized.push_back(t);
        }
      }
      if (names.empty()) return "";
      std::string clause = "private(";
      for (std::size_t i = 0; i < names.size(); ++i) {
        if (i != 0) clause += ", ";
        clause += names[i];
      }
      clause += ")";
      return clause;
    };

    // Clone the nest, prune it to the group's statements (empty guards,
    // compounds and loops dissolve), and wrap selected loops in their
    // pragmas. The DFS mirrors extraction's pre-order numbering: loops
    // count at entry, assignments count in source order, guard branches
    // descend then-before-else.
    StmtPtr cloned = scop.root->clone();
    std::size_t loop_counter = 0;
    std::size_t stmt_counter = 0;
    std::function<bool(StmtPtr&)> prune = [&](StmtPtr& slot) -> bool {
      if (!slot) return false;
      switch (slot->kind()) {
        case StmtKind::For: {
          const std::size_t index = loop_counter++;
          auto& loop = static_cast<ForStmt&>(*slot);
          const bool kept = prune(loop.body);
          if (!kept) return false;
          if (index >= d || (!selected[index] && !simd[index])) {
            return true;
          }
          auto wrapper = std::make_unique<CompoundStmt>();
          if (simd[index]) {
            std::string text = "#pragma omp simd";
            const std::string red = reduction_for_loop(index);
            if (!red.empty()) text += " " + red;
            wrapper->stmts.push_back(std::make_unique<PragmaStmt>(text));
          }
          if (selected[index]) {
            std::string text = "#pragma omp parallel for";
            const std::string sched = clause_for_loop(index);
            if (!sched.empty()) text += " " + sched;
            const std::string red = reduction_for_loop(index);
            if (!red.empty()) text += " " + red;
            const std::string pc = private_for_loop(index);
            if (!pc.empty()) text += " " + pc;
            wrapper->stmts.push_back(std::make_unique<PragmaStmt>(text));
          }
          wrapper->stmts.push_back(std::move(slot));
          slot = std::move(wrapper);
          return true;
        }
        case StmtKind::Compound: {
          auto& block = static_cast<CompoundStmt&>(*slot);
          std::vector<StmtPtr> kept;
          for (StmtPtr& child : block.stmts) {
            if (prune(child)) kept.push_back(std::move(child));
          }
          block.stmts = std::move(kept);
          return !block.stmts.empty();
        }
        case StmtKind::If: {
          auto& branch = static_cast<IfStmt&>(*slot);
          const bool kept_then = prune(branch.then_stmt);
          const bool kept_else =
              branch.else_stmt ? prune(branch.else_stmt) : false;
          if (!kept_then && !kept_else) return false;
          if (!kept_then) branch.then_stmt = std::make_unique<NullStmt>();
          if (!kept_else) branch.else_stmt = nullptr;
          return true;
        }
        case StmtKind::Expr: {
          const auto& es = static_cast<const ExprStmt&>(*slot);
          if (expr_cast<AssignExpr>(es.expr.get()) == nullptr) {
            return false;
          }
          return keep_positions.count(stmt_counter++) != 0;
        }
        default:
          // Null statements (and stray pragmas) carry no computation;
          // pruned copies drop them.
          return false;
      }
    };
    if (!prune(cloned)) continue;

    bool group_selected = false;
    for (std::size_t j = 0; j < d; ++j) {
      if (!selected[j]) continue;
      group_selected = true;
      ++total_selected;
      rs.parallel_loops.push_back(j);
      if (rs.schedule_clause.empty()) {
        rs.schedule_clause = clause_for_loop(j);
      }
    }
    if (group_selected) ++rs.parallel_groups;
    if (groups.size() == 1) {
      single_nest = std::move(cloned);
    } else {
      fission_block->stmts.push_back(std::move(cloned));
    }
  }

  if (total_selected == 0) {
    rs = RegionSchedule{};
    return nullptr;
  }
  rs.groups = groups.size();
  rs.fissioned = groups.size() > 1;
  if (!rs.fissioned) return single_nest;
  return fission_block;
}

StmtPtr annotate_region(const Scop& scop,
                        const std::vector<Dependence>& deps,
                        const CodegenOptions& options,
                        std::vector<std::size_t>* parallel_loops_out) {
  RegionSchedule rs;
  StmtPtr out = schedule_region(scop, deps, options, {}, &rs);
  if (parallel_loops_out != nullptr) {
    *parallel_loops_out = rs.parallel_loops;
  }
  return out;
}

}  // namespace purec::poly

#include "polyhedral/model.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "ast/walk.h"
#include "support/rational.h"

namespace purec::poly {

std::string AffineForm::to_string(
    const std::vector<std::string>& names) const {
  std::ostringstream out;
  bool first = true;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    if (coeffs[i] == 0) continue;
    if (!first) out << (coeffs[i] > 0 ? " + " : " - ");
    const std::int64_t a =
        (!first && coeffs[i] < 0) ? -coeffs[i] : coeffs[i];
    if (a != 1) out << a << "*";
    out << (i < names.size() ? names[i] : "x" + std::to_string(i));
    first = false;
  }
  if (first) {
    out << constant;
  } else if (constant != 0) {
    out << (constant > 0 ? " + " : " - ")
        << (constant > 0 ? constant : -constant);
  }
  return std::move(out).str();
}

std::vector<std::string> Scop::space_names() const {
  std::vector<std::string> names = iterators;
  names.insert(names.end(), parameters.begin(), parameters.end());
  return names;
}

namespace {

/// Incremental affine-expression builder over a named space. Parameters
/// are discovered on the fly (any identifier that is not an iterator).
class AffineBuilder {
 public:
  explicit AffineBuilder(const std::vector<std::string>& iterators)
      : iterators_(iterators),
        strides_(iterators.size(), 1),
        origins_(iterators.size()) {}

  /// Registers the stride normalization for level `level`: the source
  /// iterator there sweeps `origin + stride * t_level`, so every later
  /// reference to its name builds as that affine form instead of a unit
  /// coefficient. `origin` must be affine over parameters only.
  void set_iterator_map(std::size_t level, std::int64_t stride,
                        AffineForm origin) {
    strides_[level] = stride;
    origins_[level] = std::move(origin);
  }

  [[nodiscard]] const std::vector<std::string>& parameters() const {
    return parameters_;
  }

  /// Converts an AST expression to an affine form; nullopt if non-affine.
  [[nodiscard]] std::optional<AffineForm> build(const Expr& e) {
    // Forms use a growable coeff vector: [iterators..., parameters...].
    switch (e.kind()) {
      case ExprKind::IntLiteral: {
        AffineForm f;
        f.coeffs.assign(space_size(), 0);
        f.constant = static_cast<const IntLiteralExpr&>(e).value;
        return f;
      }
      case ExprKind::Ident: {
        const std::string& name = static_cast<const IdentExpr&>(e).name;
        // index_of can grow the space (new parameter), so it must run
        // before the coefficient vector is sized.
        const std::size_t idx = index_of(name);
        AffineForm f;
        f.coeffs.assign(space_size(), 0);
        if (idx < iterators_.size() && strides_[idx] != 1) {
          // Strided iterator: i = origin + stride * t. Origin positions
          // are stable (parameters only ever append to the space).
          const AffineForm& origin = origins_[idx];
          for (std::size_t i = 0; i < origin.coeffs.size(); ++i) {
            f.coeffs[i] = origin.coeffs[i];
          }
          f.constant = origin.constant;
          f.coeffs[idx] = checked_add(f.coeffs[idx], strides_[idx]);
        } else {
          f.coeffs[idx] = 1;
        }
        return f;
      }
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        if (u.op == UnaryOp::Minus) {
          auto inner = build(*u.operand);
          if (!inner) return std::nullopt;
          align(*inner);
          for (auto& c : inner->coeffs) c = -c;
          inner->constant = -inner->constant;
          return inner;
        }
        if (u.op == UnaryOp::Plus) return build(*u.operand);
        return std::nullopt;
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        if (b.op == BinaryOp::Add || b.op == BinaryOp::Sub) {
          auto lhs = build(*b.lhs);
          auto rhs = build(*b.rhs);
          if (!lhs || !rhs) return std::nullopt;
          align(*lhs);
          align(*rhs);
          for (std::size_t i = 0; i < lhs->coeffs.size(); ++i) {
            lhs->coeffs[i] = (b.op == BinaryOp::Add)
                                 ? checked_add(lhs->coeffs[i], rhs->coeffs[i])
                                 : checked_sub(lhs->coeffs[i],
                                               rhs->coeffs[i]);
          }
          lhs->constant = (b.op == BinaryOp::Add)
                              ? checked_add(lhs->constant, rhs->constant)
                              : checked_sub(lhs->constant, rhs->constant);
          return lhs;
        }
        if (b.op == BinaryOp::Mul) {
          // One side must be a constant.
          auto lhs = build(*b.lhs);
          auto rhs = build(*b.rhs);
          if (!lhs || !rhs) return std::nullopt;
          align(*lhs);
          align(*rhs);
          const bool lhs_const = std::all_of(
              lhs->coeffs.begin(), lhs->coeffs.end(),
              [](std::int64_t c) { return c == 0; });
          const bool rhs_const = std::all_of(
              rhs->coeffs.begin(), rhs->coeffs.end(),
              [](std::int64_t c) { return c == 0; });
          if (!lhs_const && !rhs_const) return std::nullopt;
          const std::int64_t k = lhs_const ? lhs->constant : rhs->constant;
          AffineForm& var = lhs_const ? *rhs : *lhs;
          for (auto& c : var.coeffs) c = checked_mul(c, k);
          var.constant = checked_mul(var.constant, k);
          return var;
        }
        return std::nullopt;
      }
      case ExprKind::Cast:
        return build(*static_cast<const CastExpr&>(e).operand);
      default:
        return std::nullopt;
    }
  }

  /// Grows a form to the current space size (parameters may have been
  /// discovered after it was built).
  void align(AffineForm& f) const { f.coeffs.resize(space_size(), 0); }

  [[nodiscard]] std::size_t space_size() const {
    return iterators_.size() + parameters_.size();
  }

 private:
  [[nodiscard]] std::size_t index_of(const std::string& name) {
    for (std::size_t i = 0; i < iterators_.size(); ++i) {
      if (iterators_[i] == name) return i;
    }
    for (std::size_t i = 0; i < parameters_.size(); ++i) {
      if (parameters_[i] == name) return iterators_.size() + i;
    }
    parameters_.push_back(name);
    return iterators_.size() + parameters_.size() - 1;
  }

  const std::vector<std::string>& iterators_;
  std::vector<std::string> parameters_;
  std::vector<std::int64_t> strides_;
  std::vector<AffineForm> origins_;
};

struct LoopHeader {
  std::string iterator;
  const Expr* lower = nullptr;   // from init
  const Expr* upper = nullptr;   // from cond
  bool upper_inclusive = false;  // <= vs <
  std::int64_t stride = 1;       // constant positive step
  const Stmt* body = nullptr;
};

/// Matches `for (int i = L; i < U; i += K)` shapes (K a positive integer
/// constant; ++/i+=1/i=i+K all accepted); returns nullopt with a reason
/// otherwise.
[[nodiscard]] std::optional<LoopHeader> match_loop(const ForStmt& loop,
                                                   std::string& reason) {
  LoopHeader h;
  // init: `int i = L` or `i = L`.
  if (const auto* decl = stmt_cast<DeclStmt>(loop.init.get())) {
    if (decl->decls.size() != 1 || !decl->decls[0].init) {
      reason = "for-init must declare exactly one iterator";
      return std::nullopt;
    }
    h.iterator = decl->decls[0].name;
    h.lower = decl->decls[0].init.get();
  } else if (const auto* es = stmt_cast<ExprStmt>(loop.init.get())) {
    const auto* assign = expr_cast<AssignExpr>(es->expr.get());
    const IdentExpr* ident =
        assign ? expr_cast<IdentExpr>(assign->lhs.get()) : nullptr;
    if (assign == nullptr || assign->op != AssignOp::Assign ||
        ident == nullptr) {
      reason = "for-init must be a simple iterator assignment";
      return std::nullopt;
    }
    h.iterator = ident->name;
    h.lower = assign->rhs.get();
  } else {
    reason = "for-init missing";
    return std::nullopt;
  }

  // cond: `i < U` / `i <= U`.
  const auto* cmp = expr_cast<BinaryExpr>(loop.cond.get());
  if (cmp == nullptr ||
      (cmp->op != BinaryOp::Less && cmp->op != BinaryOp::LessEqual)) {
    reason = "for-condition must be i < U or i <= U";
    return std::nullopt;
  }
  const auto* cond_ident = expr_cast<IdentExpr>(cmp->lhs.get());
  if (cond_ident == nullptr || cond_ident->name != h.iterator) {
    reason = "for-condition must test the loop iterator";
    return std::nullopt;
  }
  h.upper = cmp->rhs.get();
  h.upper_inclusive = (cmp->op == BinaryOp::LessEqual);

  // inc: `i++`, `++i`, `i += K`, `i = i + K` (K a positive constant).
  bool inc_ok = false;
  if (const auto* u = expr_cast<UnaryExpr>(loop.inc.get())) {
    if ((u->op == UnaryOp::PostInc || u->op == UnaryOp::PreInc)) {
      const auto* ident = expr_cast<IdentExpr>(u->operand.get());
      inc_ok = ident != nullptr && ident->name == h.iterator;
    }
  } else if (const auto* a = expr_cast<AssignExpr>(loop.inc.get())) {
    const auto* ident = expr_cast<IdentExpr>(a->lhs.get());
    if (ident != nullptr && ident->name == h.iterator) {
      if (a->op == AssignOp::AddAssign) {
        const auto* step = expr_cast<IntLiteralExpr>(a->rhs.get());
        if (step != nullptr && step->value >= 1) {
          h.stride = step->value;
          inc_ok = true;
        }
      } else if (a->op == AssignOp::Assign) {
        const auto* add = expr_cast<BinaryExpr>(a->rhs.get());
        if (add != nullptr && add->op == BinaryOp::Add) {
          const auto* base = expr_cast<IdentExpr>(add->lhs.get());
          const auto* step = expr_cast<IntLiteralExpr>(add->rhs.get());
          if (base != nullptr && base->name == h.iterator &&
              step != nullptr && step->value >= 1) {
            h.stride = step->value;
            inc_ok = true;
          }
        }
      }
    }
  }
  if (!inc_ok) {
    reason =
        "for-increment must advance the iterator by a positive constant";
    return std::nullopt;
  }
  h.body = loop.body.get();
  return h;
}

/// Unwraps a compound of exactly one statement.
[[nodiscard]] const Stmt* sole_statement(const Stmt* s) {
  const auto* block = stmt_cast<CompoundStmt>(s);
  if (block == nullptr) return s;
  const Stmt* found = nullptr;
  for (const StmtPtr& child : block->stmts) {
    if (child->kind() == StmtKind::Null ||
        child->kind() == StmtKind::Pragma) {
      continue;
    }
    if (found != nullptr) return nullptr;  // more than one
    found = child.get();
  }
  return found;
}

/// Extracts the access chain of an Index expression: base identifier and
/// subscripts outermost-first. Returns false if the shape is not
/// ident[e1][e2]...[ek].
[[nodiscard]] bool flatten_index_chain(const Expr& e, std::string& base,
                                       std::vector<const Expr*>& subscripts) {
  const Expr* cursor = &e;
  std::vector<const Expr*> rev;
  while (const auto* idx = expr_cast<IndexExpr>(cursor)) {
    rev.push_back(idx->index.get());
    cursor = idx->base.get();
  }
  const auto* ident = expr_cast<IdentExpr>(cursor);
  if (ident == nullptr) return false;
  base = ident->name;
  subscripts.assign(rev.rbegin(), rev.rend());
  return true;
}

class Extractor {
 public:
  [[nodiscard]] ExtractionResult run(const ForStmt& root) {
    ExtractionResult result;
    Scop scop;
    scop.root = &root;

    // 1. Descend the perfect nest.
    std::vector<LoopHeader> headers;
    const ForStmt* current = &root;
    for (;;) {
      std::string reason;
      auto header = match_loop(*current, reason);
      if (!header) {
        result.failure_reason = reason;
        return result;
      }
      scop.iterators.push_back(header->iterator);
      headers.push_back(*header);
      if (scop.iterators.size() > 4) {
        result.failure_reason = "loop nest deeper than 4";
        return result;
      }
      const Stmt* body = sole_statement(header->body);
      if (body != nullptr) {
        if (const auto* inner = stmt_cast<ForStmt>(body)) {
          current = inner;
          continue;
        }
      }
      break;  // innermost reached (possibly multiple statements)
    }

    // 2. Build the domain.
    AffineBuilder builder(scop.iterators);
    scop.strides.assign(headers.size(), 1);
    scop.origins.assign(headers.size(), AffineForm{});
    std::vector<Constraint> pending;
    for (std::size_t level = 0; level < headers.size(); ++level) {
      const LoopHeader& h = headers[level];
      auto lower = builder.build(*h.lower);
      auto upper = builder.build(*h.upper);
      if (!lower || !upper) {
        result.failure_reason =
            "non-affine bound for iterator " + h.iterator;
        return result;
      }
      builder.align(*lower);
      builder.align(*upper);
      if (h.stride == 1) {
        // i - L >= 0
        Constraint lo = Constraint::ge(IntVec(builder.space_size(), 0), 0);
        lo.coeffs[level] = 1;
        for (std::size_t i = 0; i < lower->coeffs.size(); ++i) {
          lo.coeffs[i] = checked_sub(lo.coeffs[i], lower->coeffs[i]);
        }
        lo.constant = -lower->constant;
        // U - i - (1 if exclusive) >= 0
        Constraint up = Constraint::ge(IntVec(builder.space_size(), 0), 0);
        up.coeffs[level] = -1;
        for (std::size_t i = 0; i < upper->coeffs.size(); ++i) {
          up.coeffs[i] = checked_add(up.coeffs[i], upper->coeffs[i]);
        }
        up.constant = upper->constant - (h.upper_inclusive ? 0 : 1);
        pending.push_back(std::move(lo));
        pending.push_back(std::move(up));
        continue;
      }
      // Non-unit stride: normalize to t >= 0 with i = L + stride*t. The
      // level's domain variable is the trip count, so every bound stays
      // affine; body accesses to i are rewritten by the builder's map.
      for (std::size_t i = 0; i < scop.iterators.size(); ++i) {
        if (i < lower->coeffs.size() && lower->coeffs[i] != 0) {
          result.failure_reason = "strided iterator " + h.iterator +
                                  " has a lower bound depending on an "
                                  "enclosing iterator";
          return result;
        }
      }
      builder.set_iterator_map(level, h.stride, *lower);
      scop.strides[level] = h.stride;
      scop.origins[level] = *lower;
      // t >= 0
      Constraint lo = Constraint::ge(IntVec(builder.space_size(), 0), 0);
      lo.coeffs[level] = 1;
      pending.push_back(std::move(lo));
      // U - L - stride*t - (1 if exclusive) >= 0
      Constraint up = Constraint::ge(IntVec(builder.space_size(), 0), 0);
      for (std::size_t i = 0; i < upper->coeffs.size(); ++i) {
        up.coeffs[i] = checked_sub(upper->coeffs[i], lower->coeffs[i]);
      }
      up.coeffs[level] = checked_sub(up.coeffs[level], h.stride);
      up.constant = checked_sub(upper->constant, lower->constant) -
                    (h.upper_inclusive ? 0 : 1);
      pending.push_back(std::move(up));
    }

    // 3. Extract statements & accesses from the innermost body.
    std::vector<const Stmt*> body_stmts;
    const Stmt* innermost_body = headers.back().body;
    if (const auto* block = stmt_cast<CompoundStmt>(innermost_body)) {
      for (const StmtPtr& child : block->stmts) {
        if (child->kind() == StmtKind::Null ||
            child->kind() == StmtKind::Pragma) {
          continue;
        }
        body_stmts.push_back(child.get());
      }
    } else {
      body_stmts.push_back(innermost_body);
    }

    // Scalars written in the nest (they carry dependences).
    std::set<std::string> written_scalars;
    for (const Stmt* s : body_stmts) {
      if (const auto* es = stmt_cast<ExprStmt>(s)) {
        if (const auto* a = expr_cast<AssignExpr>(es->expr.get())) {
          if (const auto* ident = expr_cast<IdentExpr>(a->lhs.get())) {
            written_scalars.insert(ident->name);
          }
        }
      }
    }

    std::size_t position = 0;
    for (const Stmt* s : body_stmts) {
      const auto* es = stmt_cast<ExprStmt>(s);
      const AssignExpr* assign =
          es ? expr_cast<AssignExpr>(es->expr.get()) : nullptr;
      if (assign == nullptr) {
        result.failure_reason =
            "loop body statement is not a plain assignment";
        return result;
      }
      ScopStatement stmt;
      stmt.ast = s;
      stmt.position = position++;

      if (!add_access(*assign->lhs, AccessKind::Write, builder, scop,
                      written_scalars, stmt, result.failure_reason)) {
        return result;
      }
      // Compound assignment reads its target too.
      if (assign->op != AssignOp::Assign) {
        if (!add_access(*assign->lhs, AccessKind::Read, builder, scop,
                        written_scalars, stmt, result.failure_reason)) {
          return result;
        }
      }
      if (!collect_reads(*assign->rhs, builder, scop, written_scalars, stmt,
                         result.failure_reason)) {
        return result;
      }
      scop.statements.push_back(std::move(stmt));
    }

    // 4. Finalize: parameters are now known; pad all forms & constraints.
    scop.parameters = builder.parameters();
    const std::size_t space = builder.space_size();
    scop.domain = ConstraintSystem(space);
    for (Constraint& c : pending) {
      c.coeffs.resize(space, 0);
      scop.domain.add(std::move(c));
    }
    for (ScopStatement& stmt : scop.statements) {
      for (Access& a : stmt.accesses) {
        for (AffineForm& f : a.subscripts) f.coeffs.resize(space, 0);
      }
    }
    for (AffineForm& origin : scop.origins) origin.coeffs.resize(space, 0);
    result.scop = std::move(scop);
    return result;
  }

 private:
  bool add_access(const Expr& e, AccessKind kind, AffineBuilder& builder,
                  Scop& scop, const std::set<std::string>& written_scalars,
                  ScopStatement& stmt, std::string& failure) {
    (void)scop;
    if (const auto* ident = expr_cast<IdentExpr>(&e)) {
      // Scalar access. Only track it if it is written in the nest —
      // read-only scalars are parameters/constants.
      if (kind == AccessKind::Write ||
          written_scalars.count(ident->name) != 0) {
        Access a;
        a.kind = kind;
        a.array = ident->name;
        stmt.accesses.push_back(std::move(a));
      }
      return true;
    }
    std::string base;
    std::vector<const Expr*> subscripts;
    if (!flatten_index_chain(e, base, subscripts)) {
      failure = "unsupported access shape (expected ident[aff]...[aff])";
      return false;
    }
    Access a;
    a.kind = kind;
    a.array = base;
    for (const Expr* sub : subscripts) {
      auto form = builder.build(*sub);
      if (!form) {
        failure = "non-affine subscript on array " + base;
        return false;
      }
      a.subscripts.push_back(std::move(*form));
    }
    stmt.accesses.push_back(std::move(a));
    return true;
  }

  bool collect_reads(const Expr& e, AffineBuilder& builder, Scop& scop,
                     const std::set<std::string>& written_scalars,
                     ScopStatement& stmt, std::string& failure) {
    switch (e.kind()) {
      case ExprKind::Index:
        return add_access(e, AccessKind::Read, builder, scop,
                          written_scalars, stmt, failure);
      case ExprKind::Ident:
        return add_access(e, AccessKind::Read, builder, scop,
                          written_scalars, stmt, failure);
      case ExprKind::IntLiteral:
      case ExprKind::FloatLiteral:
      case ExprKind::CharLiteral:
      case ExprKind::StringLiteral:
        return true;
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        if (u.op == UnaryOp::Deref || u.op == UnaryOp::AddrOf ||
            u.op == UnaryOp::PreInc || u.op == UnaryOp::PostInc ||
            u.op == UnaryOp::PreDec || u.op == UnaryOp::PostDec) {
          failure = "unsupported operator in loop body";
          return false;
        }
        return collect_reads(*u.operand, builder, scop, written_scalars,
                             stmt, failure);
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        return collect_reads(*b.lhs, builder, scop, written_scalars, stmt,
                             failure) &&
               collect_reads(*b.rhs, builder, scop, written_scalars, stmt,
                             failure);
      }
      case ExprKind::Conditional: {
        const auto& c = static_cast<const ConditionalExpr&>(e);
        return collect_reads(*c.cond, builder, scop, written_scalars, stmt,
                             failure) &&
               collect_reads(*c.then_expr, builder, scop, written_scalars,
                             stmt, failure) &&
               collect_reads(*c.else_expr, builder, scop, written_scalars,
                             stmt, failure);
      }
      case ExprKind::Cast:
        return collect_reads(*static_cast<const CastExpr&>(e).operand,
                             builder, scop, written_scalars, stmt, failure);
      case ExprKind::Sizeof:
        return true;
      case ExprKind::Call:
        failure = "function call left in loop body (not substituted)";
        return false;
      case ExprKind::Assign:
        failure = "nested assignment in loop body expression";
        return false;
      case ExprKind::Member:
        failure = "struct member access in loop body";
        return false;
    }
    return true;
  }
};

}  // namespace

ExtractionResult extract_scop(const ForStmt& loop) {
  Extractor extractor;
  return extractor.run(loop);
}

}  // namespace purec::poly

#include "polyhedral/model.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "ast/walk.h"
#include "support/rational.h"

namespace purec::poly {

std::string AffineForm::to_string(
    const std::vector<std::string>& names) const {
  std::ostringstream out;
  bool first = true;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    if (coeffs[i] == 0) continue;
    if (!first) out << (coeffs[i] > 0 ? " + " : " - ");
    const std::int64_t a =
        (!first && coeffs[i] < 0) ? -coeffs[i] : coeffs[i];
    if (a != 1) out << a << "*";
    out << (i < names.size() ? names[i] : "x" + std::to_string(i));
    first = false;
  }
  if (first) {
    out << constant;
  } else if (constant != 0) {
    out << (constant > 0 ? " + " : " - ")
        << (constant > 0 ? constant : -constant);
  }
  return std::move(out).str();
}

const char* reduction_token(ReductionOp op) noexcept {
  switch (op) {
    case ReductionOp::Add: return "+";
    case ReductionOp::Sub: return "-";
    case ReductionOp::Mul: return "*";
    case ReductionOp::Min: return "min";
    case ReductionOp::Max: return "max";
    case ReductionOp::None:
    case ReductionOp::Call: break;
  }
  return "";
}

std::vector<std::string> Scop::space_names() const {
  std::vector<std::string> names = iterators;
  names.insert(names.end(), parameters.begin(), parameters.end());
  return names;
}

const ConstraintSystem& statement_domain(const Scop& scop,
                                         const ScopStatement& stmt) {
  return stmt.domain.dimensions() > 0 ? stmt.domain : scop.domain;
}

std::vector<std::size_t> statement_loops(const Scop& scop,
                                         const ScopStatement& stmt) {
  if (!stmt.loops.empty() || scop.depth() == 0) return stmt.loops;
  std::vector<std::size_t> chain(scop.depth());
  for (std::size_t i = 0; i < chain.size(); ++i) chain[i] = i;
  return chain;
}

namespace {

/// Incremental affine-expression builder over the region's variable space
/// [all loop iterators (pre-order)..., parameters...]. Parameters are
/// discovered on the fly; iterator names resolve against the *active
/// chain* only (set_chain), so sibling loops may reuse a name without the
/// spaces bleeding into each other.
class AffineBuilder {
 public:
  AffineBuilder(const std::vector<std::string>& iterators,
                const std::set<std::string>& written_scalars)
      : iterators_(iterators),
        written_scalars_(written_scalars),
        strides_(iterators.size(), 1),
        origins_(iterators.size()) {}

  /// Selects the loop chain whose iterators are in scope for subsequent
  /// build() calls (indices into the iterator space, outermost first).
  void set_chain(const std::vector<std::size_t>* chain) { chain_ = chain; }

  /// Registers the stride normalization for loop `index`: the source
  /// iterator there sweeps `origin + stride * t_index`, so every later
  /// reference to its name builds as that affine form instead of a unit
  /// coefficient.
  void set_iterator_map(std::size_t index, std::int64_t stride,
                        AffineForm origin) {
    strides_[index] = stride;
    origins_[index] = std::move(origin);
  }

  [[nodiscard]] const std::vector<std::string>& parameters() const {
    return parameters_;
  }

  /// Last failure detail from a nullopt build() (scope violations carry a
  /// more specific story than plain non-affinity).
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Converts an AST expression to an affine form; nullopt if non-affine
  /// or if it references an iterator outside the active chain.
  [[nodiscard]] std::optional<AffineForm> build(const Expr& e) {
    error_.clear();
    return build_impl(e);
  }

  /// Grows a form to the current space size (parameters may have been
  /// discovered after it was built).
  void align(AffineForm& f) const { f.coeffs.resize(space_size(), 0); }

  [[nodiscard]] std::size_t space_size() const {
    return iterators_.size() + parameters_.size();
  }

 private:
  [[nodiscard]] std::optional<AffineForm> build_impl(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::IntLiteral: {
        AffineForm f;
        f.coeffs.assign(space_size(), 0);
        f.constant = static_cast<const IntLiteralExpr&>(e).value;
        return f;
      }
      case ExprKind::Ident: {
        const std::string& name = static_cast<const IdentExpr&>(e).name;
        // index_of can grow the space (new parameter), so it must run
        // before the coefficient vector is sized.
        const std::optional<std::size_t> idx = index_of(name);
        if (!idx) return std::nullopt;
        AffineForm f;
        f.coeffs.assign(space_size(), 0);
        if (*idx < iterators_.size() && strides_[*idx] != 1) {
          // Strided iterator: i = origin + stride * t. Origin positions
          // are stable (parameters only ever append to the space).
          const AffineForm& origin = origins_[*idx];
          for (std::size_t i = 0; i < origin.coeffs.size(); ++i) {
            f.coeffs[i] = origin.coeffs[i];
          }
          f.constant = origin.constant;
          f.coeffs[*idx] = checked_add(f.coeffs[*idx], strides_[*idx]);
        } else {
          f.coeffs[*idx] = 1;
        }
        return f;
      }
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        if (u.op == UnaryOp::Minus) {
          auto inner = build_impl(*u.operand);
          if (!inner) return std::nullopt;
          align(*inner);
          for (auto& c : inner->coeffs) c = -c;
          inner->constant = -inner->constant;
          return inner;
        }
        if (u.op == UnaryOp::Plus) return build_impl(*u.operand);
        return std::nullopt;
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        if (b.op == BinaryOp::Add || b.op == BinaryOp::Sub) {
          auto lhs = build_impl(*b.lhs);
          auto rhs = build_impl(*b.rhs);
          if (!lhs || !rhs) return std::nullopt;
          align(*lhs);
          align(*rhs);
          for (std::size_t i = 0; i < lhs->coeffs.size(); ++i) {
            lhs->coeffs[i] = (b.op == BinaryOp::Add)
                                 ? checked_add(lhs->coeffs[i], rhs->coeffs[i])
                                 : checked_sub(lhs->coeffs[i],
                                               rhs->coeffs[i]);
          }
          lhs->constant = (b.op == BinaryOp::Add)
                              ? checked_add(lhs->constant, rhs->constant)
                              : checked_sub(lhs->constant, rhs->constant);
          return lhs;
        }
        if (b.op == BinaryOp::Mul) {
          // One side must be a constant.
          auto lhs = build_impl(*b.lhs);
          auto rhs = build_impl(*b.rhs);
          if (!lhs || !rhs) return std::nullopt;
          align(*lhs);
          align(*rhs);
          const bool lhs_const = std::all_of(
              lhs->coeffs.begin(), lhs->coeffs.end(),
              [](std::int64_t c) { return c == 0; });
          const bool rhs_const = std::all_of(
              rhs->coeffs.begin(), rhs->coeffs.end(),
              [](std::int64_t c) { return c == 0; });
          if (!lhs_const && !rhs_const) return std::nullopt;
          const std::int64_t k = lhs_const ? lhs->constant : rhs->constant;
          AffineForm& var = lhs_const ? *rhs : *lhs;
          for (auto& c : var.coeffs) c = checked_mul(c, k);
          var.constant = checked_mul(var.constant, k);
          return var;
        }
        return std::nullopt;
      }
      case ExprKind::Cast:
        return build_impl(*static_cast<const CastExpr&>(e).operand);
      default:
        return std::nullopt;
    }
  }

  [[nodiscard]] std::optional<std::size_t> index_of(
      const std::string& name) {
    if (chain_ != nullptr) {
      for (auto it = chain_->rbegin(); it != chain_->rend(); ++it) {
        if (iterators_[*it] == name) return *it;
      }
    }
    // A name that is some loop's iterator but not in scope here would
    // silently read the loop's final/undefined value as a "parameter" —
    // reject instead.
    if (std::find(iterators_.begin(), iterators_.end(), name) !=
        iterators_.end()) {
      error_ = "iterator '" + name + "' referenced outside its loop";
      return std::nullopt;
    }
    // A scalar assigned inside the region is not loop-invariant: modeling
    // it as a parameter in a bound, guard, or subscript would hide the
    // write→read dependence (a guard can make the write's own carried
    // dependence empty, so nothing else serializes the loop).
    if (written_scalars_.count(name) != 0) {
      error_ = "scalar '" + name +
               "' is written in the region but used in an affine "
               "position (bound, guard, or subscript)";
      return std::nullopt;
    }
    for (std::size_t i = 0; i < parameters_.size(); ++i) {
      if (parameters_[i] == name) return iterators_.size() + i;
    }
    parameters_.push_back(name);
    return iterators_.size() + parameters_.size() - 1;
  }

  const std::vector<std::string>& iterators_;
  const std::set<std::string>& written_scalars_;
  std::vector<std::string> parameters_;
  std::vector<std::int64_t> strides_;
  std::vector<AffineForm> origins_;
  const std::vector<std::size_t>* chain_ = nullptr;
  std::string error_;
};

struct LoopHeader {
  std::string iterator;
  const Expr* lower = nullptr;           // from init
  std::vector<const Expr*> uppers;       // cond conjuncts (min bounds)
  std::vector<bool> uppers_inclusive;    // <= vs < per conjunct
  std::int64_t stride = 1;               // constant positive step
  const Stmt* body = nullptr;
};

/// Matches `for (int i = L; i < U1 && i <= U2 ...; i += K)` shapes (K a
/// positive integer constant; ++/i+=1/i=i+K all accepted; each cond
/// conjunct must test the iterator); returns nullopt with a reason
/// otherwise.
[[nodiscard]] std::optional<LoopHeader> match_loop(const ForStmt& loop,
                                                   std::string& reason) {
  LoopHeader h;
  // init: `int i = L` or `i = L`.
  if (const auto* decl = stmt_cast<DeclStmt>(loop.init.get())) {
    if (decl->decls.size() != 1 || !decl->decls[0].init) {
      reason = "for-init must declare exactly one iterator";
      return std::nullopt;
    }
    h.iterator = decl->decls[0].name;
    h.lower = decl->decls[0].init.get();
  } else if (const auto* es = stmt_cast<ExprStmt>(loop.init.get())) {
    const auto* assign = expr_cast<AssignExpr>(es->expr.get());
    const IdentExpr* ident =
        assign ? expr_cast<IdentExpr>(assign->lhs.get()) : nullptr;
    if (assign == nullptr || assign->op != AssignOp::Assign ||
        ident == nullptr) {
      reason = "for-init must be a simple iterator assignment";
      return std::nullopt;
    }
    h.iterator = ident->name;
    h.lower = assign->rhs.get();
  } else {
    reason = "for-init missing";
    return std::nullopt;
  }

  // cond: conjunction of `i < U` / `i <= U` (min-style compound upper
  // bounds fold into the domain as multiple constraints).
  std::vector<const Expr*> conjuncts;
  std::vector<const Expr*> pending{loop.cond.get()};
  while (!pending.empty()) {
    const Expr* e = pending.back();
    pending.pop_back();
    const auto* land = expr_cast<BinaryExpr>(e);
    if (land != nullptr && land->op == BinaryOp::LogicalAnd) {
      pending.push_back(land->rhs.get());
      pending.push_back(land->lhs.get());
      continue;
    }
    conjuncts.push_back(e);
  }
  for (const Expr* conjunct : conjuncts) {
    const auto* cmp = expr_cast<BinaryExpr>(conjunct);
    if (cmp == nullptr ||
        (cmp->op != BinaryOp::Less && cmp->op != BinaryOp::LessEqual)) {
      reason = "for-condition must be i < U or i <= U";
      return std::nullopt;
    }
    const auto* cond_ident = expr_cast<IdentExpr>(cmp->lhs.get());
    if (cond_ident == nullptr || cond_ident->name != h.iterator) {
      reason = "for-condition must test the loop iterator";
      return std::nullopt;
    }
    h.uppers.push_back(cmp->rhs.get());
    h.uppers_inclusive.push_back(cmp->op == BinaryOp::LessEqual);
  }
  if (h.uppers.empty()) {
    reason = "for-condition must be i < U or i <= U";
    return std::nullopt;
  }

  // inc: `i++`, `++i`, `i += K`, `i = i + K` (shared grammar — see
  // match_induction_step).
  bool inc_ok = false;
  if (loop.inc) {
    if (const auto step = match_induction_step(*loop.inc)) {
      if (step->iterator == h.iterator) {
        h.stride = step->stride;
        inc_ok = true;
      }
    }
  }
  if (!inc_ok) {
    reason =
        "for-increment must advance the iterator by a positive constant";
    return std::nullopt;
  }
  h.body = loop.body.get();
  return h;
}

/// Extracts the access chain of an Index expression: base identifier and
/// subscripts outermost-first. Returns false if the shape is not
/// ident[e1][e2]...[ek].
[[nodiscard]] bool flatten_index_chain(const Expr& e, std::string& base,
                                       std::vector<const Expr*>& subscripts) {
  const Expr* cursor = &e;
  std::vector<const Expr*> rev;
  while (const auto* idx = expr_cast<IndexExpr>(cursor)) {
    rev.push_back(idx->index.get());
    cursor = idx->base.get();
  }
  const auto* ident = expr_cast<IdentExpr>(cursor);
  if (ident == nullptr) return false;
  base = ident->name;
  subscripts.assign(rev.rbegin(), rev.rend());
  return true;
}

/// Outcome of matching one assignment against the associative-reduction
/// grammar `s = s op e` / `s = e op s` (op commutative) / `s op= e` /
/// `s = f(s, e)` with `e` not reading `s`.
struct ReductionMatch {
  ReductionOp op = ReductionOp::None;
  std::string accumulator;
  std::string callee;            // for Min/Max/Call shapes
  const Expr* other = nullptr;   // the non-accumulator operand
  /// True when the RHS is a surviving CallExpr (a pure combiner the
  /// substitution pass deliberately left in place): accesses must then be
  /// collected by hand because the generic walk rejects calls.
  bool call_rhs = false;
};

[[nodiscard]] bool minmax_callee(const std::string& name, ReductionOp& op) {
  if (name == "fmin" || name == "fminf" || name == "fminl") {
    op = ReductionOp::Min;
    return true;
  }
  if (name == "fmax" || name == "fmaxf" || name == "fmaxl") {
    op = ReductionOp::Max;
    return true;
  }
  return false;
}

/// Matches the canonical reduction shapes on a scalar LHS. Subtraction is
/// accepted only in the non-commuted `s = s - e` form (`s = e - s` is not
/// a reduction); min/max recognize the libm call family; any other 2-ary
/// call with the accumulator as exactly one argument is a user-combiner
/// reduction (ReductionOp::Call — reported but never exempted).
[[nodiscard]] std::optional<ReductionMatch> match_reduction(
    const AssignExpr& assign) {
  const auto* lhs = expr_cast<IdentExpr>(assign.lhs.get());
  if (lhs == nullptr) return std::nullopt;
  const std::string& s = lhs->name;
  ReductionMatch m;
  m.accumulator = s;
  if (assign.op == AssignOp::AddAssign ||
      assign.op == AssignOp::SubAssign ||
      assign.op == AssignOp::MulAssign) {
    if (references_identifier(*assign.rhs, s)) return std::nullopt;
    m.op = assign.op == AssignOp::AddAssign   ? ReductionOp::Add
           : assign.op == AssignOp::SubAssign ? ReductionOp::Sub
                                              : ReductionOp::Mul;
    m.other = assign.rhs.get();
    return m;
  }
  if (assign.op != AssignOp::Assign) return std::nullopt;
  if (const auto* b = expr_cast<BinaryExpr>(assign.rhs.get())) {
    const auto* bl = expr_cast<IdentExpr>(b->lhs.get());
    const auto* br = expr_cast<IdentExpr>(b->rhs.get());
    const bool left_is_s = bl != nullptr && bl->name == s;
    const bool right_is_s = br != nullptr && br->name == s;
    if (b->op == BinaryOp::Add || b->op == BinaryOp::Mul) {
      if (left_is_s == right_is_s) return std::nullopt;
      const Expr* other = left_is_s ? b->rhs.get() : b->lhs.get();
      if (references_identifier(*other, s)) return std::nullopt;
      m.op = b->op == BinaryOp::Add ? ReductionOp::Add : ReductionOp::Mul;
      m.other = other;
      return m;
    }
    if (b->op == BinaryOp::Sub) {
      if (!left_is_s || references_identifier(*b->rhs, s)) {
        return std::nullopt;
      }
      m.op = ReductionOp::Sub;
      m.other = b->rhs.get();
      return m;
    }
    return std::nullopt;
  }
  if (const auto* call = expr_cast<CallExpr>(assign.rhs.get())) {
    const std::string name = call->callee_name();
    if (name.empty() || call->args.size() != 2) return std::nullopt;
    const auto* a0 = expr_cast<IdentExpr>(call->args[0].get());
    const auto* a1 = expr_cast<IdentExpr>(call->args[1].get());
    const bool first_is_s = a0 != nullptr && a0->name == s;
    const bool second_is_s = a1 != nullptr && a1->name == s;
    if (first_is_s == second_is_s) return std::nullopt;
    const Expr* other =
        first_is_s ? call->args[1].get() : call->args[0].get();
    if (references_identifier(*other, s)) return std::nullopt;
    m.op = ReductionOp::Call;
    minmax_callee(name, m.op);
    m.callee = name;
    m.other = other;
    m.call_rhs = true;
    return m;
  }
  return std::nullopt;
}

/// One `if` condition on a statement's path, with the branch parity (the
/// else branch sees the negated half-space) and the loop chain in scope
/// *at the guard's position* — a loop nested below the guard must not
/// resolve in its condition (the source reads the variable's value from
/// the enclosing scope there, not the loop iterator).
struct GuardRef {
  const Expr* cond = nullptr;
  bool negated = false;
  std::vector<std::size_t> chain;
};

/// Cap on the number of convex pieces a statement's guard stack may split
/// into. Each piece becomes a full statement copy in the model, so the
/// dependence analysis cost grows quadratically with it; past the cap the
/// scop degrades to serial with a reason instead.
constexpr std::size_t kMaxGuardDisjuncts = 4;

class Extractor {
 public:
  [[nodiscard]] ExtractionResult run(const ForStmt& root) {
    ExtractionResult result = run_impl(root);
    if (!result.ok() && !result.failure_loc.valid()) {
      result.failure_loc = failure_loc_.valid() ? failure_loc_ : root.loc;
    }
    return result;
  }

 private:
  [[nodiscard]] ExtractionResult run_impl(const ForStmt& root) {
    ExtractionResult result;

    // ---- Pass 1: region structure (loop tree, statements, guards) ----
    if (!walk_loop(root, Scop::npos, {}, {}, result.failure_reason)) {
      return result;
    }

    Scop scop;
    scop.root = &root;
    for (const LoopNode& node : loops_) {
      scop.iterators.push_back(node.header.iterator);
      scop.loop_parents.push_back(node.parent);
      scop.loop_asts.push_back(node.ast);
    }

    // Scalars written in the region (they carry dependences; the builder
    // refuses them in affine positions).
    std::set<std::string> written_scalars;
    for (const PendingStmt& p : pending_stmts_) {
      if (const auto* ident = expr_cast<IdentExpr>(p.assign->lhs.get())) {
        written_scalars.insert(ident->name);
      }
    }

    // ---- Pass 2: bounds, guards and accesses over the fixed space ----
    AffineBuilder builder(scop.iterators, written_scalars);
    scop.strides.assign(loops_.size(), 1);
    scop.origins.assign(loops_.size(), AffineForm{});
    // Per-loop bound constraints, reused by every statement under it.
    std::vector<std::vector<Constraint>> loop_bounds(loops_.size());
    bool iterator_dependent_origin = false;
    for (std::size_t j = 0; j < loops_.size(); ++j) {
      const LoopHeader& h = loops_[j].header;
      builder.set_chain(&loops_[j].chain);
      auto lower = builder.build(*h.lower);
      if (!lower) {
        result.failure_reason =
            builder.error().empty()
                ? "non-affine bound for iterator " + h.iterator
                : builder.error();
        result.failure_loc = loops_[j].ast->loc;
        return result;
      }
      std::vector<AffineForm> uppers;
      for (const Expr* u : h.uppers) {
        auto upper = builder.build(*u);
        if (!upper) {
          result.failure_reason =
              builder.error().empty()
                  ? "non-affine bound for iterator " + h.iterator
                  : builder.error();
          result.failure_loc = loops_[j].ast->loc;
          return result;
        }
        uppers.push_back(std::move(*upper));
      }
      builder.align(*lower);
      for (AffineForm& u : uppers) builder.align(u);
      // `for (j = j; ...)`: the incoming value of j is not affine in
      // anything the model can see, and the strided normalization would
      // conflate the origin with the loop's own dimension.
      if (j < lower->coeffs.size() && lower->coeffs[j] != 0) {
        result.failure_reason = "lower bound of iterator " + h.iterator +
                                " references the iterator itself";
        result.failure_loc = loops_[j].ast->loc;
        return result;
      }
      if (h.stride == 1) {
        // i - L >= 0
        Constraint lo = Constraint::ge(IntVec(builder.space_size(), 0), 0);
        lo.coeffs[j] = 1;
        for (std::size_t i = 0; i < lower->coeffs.size(); ++i) {
          lo.coeffs[i] = checked_sub(lo.coeffs[i], lower->coeffs[i]);
        }
        lo.constant = -lower->constant;
        loop_bounds[j].push_back(std::move(lo));
        // U - i - (1 if exclusive) >= 0, once per conjunct.
        for (std::size_t u = 0; u < uppers.size(); ++u) {
          Constraint up =
              Constraint::ge(IntVec(builder.space_size(), 0), 0);
          up.coeffs[j] = -1;
          for (std::size_t i = 0; i < uppers[u].coeffs.size(); ++i) {
            up.coeffs[i] = checked_add(up.coeffs[i], uppers[u].coeffs[i]);
          }
          up.constant =
              uppers[u].constant - (h.uppers_inclusive[u] ? 0 : 1);
          loop_bounds[j].push_back(std::move(up));
        }
        continue;
      }
      // Non-unit stride: normalize to t >= 0 with i = L + stride*t. The
      // loop's domain variable is the trip count, so every bound stays
      // affine; references to i are rewritten by the builder's map. An
      // origin over enclosing iterators (`for (j = i; ...; j += 2)`) is
      // fine for analysis but cannot be folded back by the classic code
      // generator — it forces the region path.
      for (std::size_t i = 0; i < scop.iterators.size(); ++i) {
        if (i < lower->coeffs.size() && lower->coeffs[i] != 0) {
          iterator_dependent_origin = true;
          break;
        }
      }
      builder.set_iterator_map(j, h.stride, *lower);
      scop.strides[j] = h.stride;
      scop.origins[j] = *lower;
      // t >= 0
      Constraint lo = Constraint::ge(IntVec(builder.space_size(), 0), 0);
      lo.coeffs[j] = 1;
      loop_bounds[j].push_back(std::move(lo));
      // U - L - stride*t - (1 if exclusive) >= 0, once per conjunct.
      for (std::size_t u = 0; u < uppers.size(); ++u) {
        Constraint up = Constraint::ge(IntVec(builder.space_size(), 0), 0);
        for (std::size_t i = 0; i < uppers[u].coeffs.size(); ++i) {
          up.coeffs[i] =
              checked_sub(uppers[u].coeffs[i], lower->coeffs[i]);
        }
        up.coeffs[j] = checked_sub(up.coeffs[j], h.stride);
        up.constant = checked_sub(uppers[u].constant, lower->constant) -
                      (h.uppers_inclusive[u] ? 0 : 1);
        loop_bounds[j].push_back(std::move(up));
      }
    }

    // One constraint set per emitted statement (copies of a disjunctively
    // guarded statement each carry one convex piece of the guard).
    std::vector<std::vector<Constraint>> guard_of_stmt;
    for (std::size_t s = 0; s < pending_stmts_.size(); ++s) {
      const PendingStmt& p = pending_stmts_[s];
      builder.set_chain(&p.chain);

      // Writing a loop iterator from the body breaks the affine model
      // outright (and a guard could empty the write's own carried
      // dependence, hiding the breakage from the analysis).
      if (const auto* lhs_ident =
              expr_cast<IdentExpr>(p.assign->lhs.get())) {
        if (std::find(scop.iterators.begin(), scop.iterators.end(),
                      lhs_ident->name) != scop.iterators.end()) {
          result.failure_reason = "loop iterator '" + lhs_ident->name +
                                  "' is written inside the body";
          result.failure_loc = p.ast->loc;
          return result;
        }
      }

      // The guard stack lowers to a DNF: the conjunction of the guards'
      // disjunct sets, combined by cross product. Most statements have a
      // single (possibly empty) conjunct; a disjunctive guard yields one
      // alternative per convex piece.
      std::vector<std::vector<Constraint>> alternatives(1);
      for (const GuardRef& guard : p.guards) {
        // The guard lowers in the scope where it appears: iterators of
        // loops nested below it are not visible to its condition.
        builder.set_chain(&guard.chain);
        std::vector<std::vector<Constraint>> guard_dnf;
        if (!build_guard(*guard.cond, guard.negated, builder, guard_dnf,
                         result.failure_reason)) {
          result.failure_loc = p.ast->loc;
          return result;
        }
        std::vector<std::vector<Constraint>> combined;
        if (!cross_disjuncts(alternatives, guard_dnf, combined,
                             result.failure_reason)) {
          result.failure_loc = p.ast->loc;
          return result;
        }
        alternatives = std::move(combined);
      }
      builder.set_chain(&p.chain);

      ScopStatement stmt;
      stmt.ast = p.ast;
      stmt.position = s;
      stmt.guarded = !p.guards.empty();
      stmt.loops = p.chain;

      const std::optional<ReductionMatch> reduction =
          match_reduction(*p.assign);
      if (reduction) {
        stmt.reduction_op = reduction->op;
        stmt.reduction_accumulator = reduction->accumulator;
        stmt.reduction_callee = reduction->callee;
      }

      if (!add_access(*p.assign->lhs, AccessKind::Write, builder,
                      written_scalars, stmt, result.failure_reason)) {
        result.failure_loc = p.ast->loc;
        return result;
      }
      // Compound assignment reads its target too.
      if (p.assign->op != AssignOp::Assign) {
        if (!add_access(*p.assign->lhs, AccessKind::Read, builder,
                        written_scalars, stmt, result.failure_reason)) {
          result.failure_loc = p.ast->loc;
          return result;
        }
      }
      if (reduction && reduction->call_rhs) {
        // `s = f(s, e)` with a pure combiner the substitution pass left
        // in place: record the accumulator read and walk only the other
        // argument (the generic walk rejects surviving calls).
        Access acc_read;
        acc_read.kind = AccessKind::Read;
        acc_read.array = reduction->accumulator;
        stmt.accesses.push_back(std::move(acc_read));
        if (!collect_reads(*reduction->other, builder, written_scalars,
                           stmt, result.failure_reason)) {
          result.failure_loc = p.ast->loc;
          return result;
        }
      } else if (!collect_reads(*p.assign->rhs, builder, written_scalars,
                                stmt, result.failure_reason)) {
        result.failure_loc = p.ast->loc;
        return result;
      }
      // One model statement per guard disjunct. Copies share the source
      // statement's ast and textual position: the dependence analyzer's
      // same-position ordering covers them, and downstream passes that
      // regenerate code key on the ast, so no statement executes twice.
      for (std::size_t a = 0; a < alternatives.size(); ++a) {
        scop.statements.push_back(stmt);
        guard_of_stmt.push_back(std::move(alternatives[a]));
      }
    }

    // A recognized reduction is only exemptible while the accumulator
    // stays private to its update: any other statement touching it makes
    // the intermediate values observable, so demote (the self-dependence
    // then serializes the nest as before, with the reason recorded).
    for (std::size_t s = 0; s < scop.statements.size(); ++s) {
      ScopStatement& stmt = scop.statements[s];
      if (stmt.reduction_op == ReductionOp::None) continue;
      // Disjunct copies of one source statement are not "other"
      // statements — they execute the same update, so seeing the
      // accumulator there does not make it observable.
      bool escapes = false;
      for (std::size_t t = 0; t < scop.statements.size() && !escapes;
           ++t) {
        if (scop.statements[t].ast == stmt.ast) continue;
        for (const Access& a : scop.statements[t].accesses) {
          if (a.array == stmt.reduction_accumulator) {
            escapes = true;
            break;
          }
        }
      }
      // Copies are adjacent; note once per source statement.
      const bool first_copy =
          s == 0 || scop.statements[s - 1].ast != stmt.ast;
      if (escapes) {
        if (first_copy) {
          scop.reduction_notes.push_back(
              "reduction on '" + stmt.reduction_accumulator +
              "' demoted: accumulator is read elsewhere in the nest");
        }
        stmt.reduction_op = ReductionOp::None;
        stmt.reduction_accumulator.clear();
        stmt.reduction_callee.clear();
      } else if (stmt.reduction_op == ReductionOp::Call && first_copy) {
        scop.reduction_notes.push_back(
            "reduction on '" + stmt.reduction_accumulator +
            "' uses combiner '" + stmt.reduction_callee +
            "' (no OpenMP reduction clause for user functions)");
      }
    }

    // ---- Finalize: pad every form/constraint to the full space --------
    scop.parameters = builder.parameters();
    const std::size_t space = builder.space_size();
    const auto aligned = [space](Constraint c) {
      c.coeffs.resize(space, 0);
      return c;
    };
    scop.domain = ConstraintSystem(space);
    for (const std::vector<Constraint>& bounds : loop_bounds) {
      for (const Constraint& c : bounds) scop.domain.add(aligned(c));
    }
    for (std::size_t s = 0; s < scop.statements.size(); ++s) {
      ScopStatement& stmt = scop.statements[s];
      ConstraintSystem domain(space);
      for (std::size_t loop_index : stmt.loops) {
        for (const Constraint& c : loop_bounds[loop_index]) {
          domain.add(aligned(c));
        }
      }
      for (const Constraint& c : guard_of_stmt[s]) domain.add(aligned(c));
      stmt.domain = std::move(domain);
      for (Access& a : stmt.accesses) {
        for (AffineForm& f : a.subscripts) f.coeffs.resize(space, 0);
      }
    }
    for (AffineForm& origin : scop.origins) origin.coeffs.resize(space, 0);

    // Inclusive prefix-scan shape `a[i] = a[i - c] + e` (1-D, constant
    // positive distance c): not parallelizable as-is, but the verdict
    // should say "scan", not "carried dependence". Runs after the pad so
    // subscript forms compare over the full space.
    for (std::size_t s = 0; s < scop.statements.size(); ++s) {
      const ScopStatement& stmt = scop.statements[s];
      // Skip disjunct copies: same source statement, same scan shape.
      if (s > 0 && scop.statements[s - 1].ast == stmt.ast) continue;
      const Access* write = nullptr;
      for (const Access& a : stmt.accesses) {
        if (a.kind == AccessKind::Write && a.subscripts.size() == 1) {
          write = &a;
        }
      }
      if (write == nullptr) continue;
      for (const Access& a : stmt.accesses) {
        if (a.kind != AccessKind::Read || a.array != write->array ||
            a.subscripts.size() != 1) {
          continue;
        }
        if (a.subscripts[0].coeffs != write->subscripts[0].coeffs) {
          continue;
        }
        const std::int64_t dist =
            write->subscripts[0].constant - a.subscripts[0].constant;
        if (dist > 0) {
          scop.reduction_notes.push_back(
              "scan: '" + write->array + "[i] = " + write->array +
              "[i - " + std::to_string(dist) +
              "] + ...' is an inclusive prefix scan (not parallelized)");
        }
      }
    }

    scop.region_shaped =
        saw_guard_ || iterator_dependent_origin || !is_single_chain(scop);
    result.scop = std::move(scop);
    return result;
  }

 private:
  struct LoopNode {
    LoopHeader header;
    std::size_t parent = Scop::npos;
    const ForStmt* ast = nullptr;
    std::vector<std::size_t> chain;  // ancestors + self
  };

  struct PendingStmt {
    const Stmt* ast = nullptr;
    const AssignExpr* assign = nullptr;
    std::vector<std::size_t> chain;
    std::vector<GuardRef> guards;
  };

  /// True when the loop tree is one perfectly nested chain with every
  /// statement at the innermost level — the classic band the full
  /// reschedule/tile pipeline handles.
  [[nodiscard]] bool is_single_chain(const Scop& scop) const {
    for (std::size_t j = 0; j < scop.loop_parents.size(); ++j) {
      const std::size_t expected = (j == 0) ? Scop::npos : j - 1;
      if (scop.loop_parents[j] != expected) return false;
    }
    for (const ScopStatement& stmt : scop.statements) {
      if (stmt.loops.size() != scop.depth()) return false;
    }
    return true;
  }

  [[nodiscard]] bool walk_loop(const ForStmt& loop, std::size_t parent,
                               std::vector<std::size_t> chain,
                               const std::vector<GuardRef>& guards,
                               std::string& failure) {
    std::string reason;
    auto header = match_loop(loop, reason);
    if (!header) {
      failure = reason;
      failure_loc_ = loop.loc;
      return false;
    }
    const std::size_t index = loops_.size();
    if (chain.size() + 1 > 4) {
      failure = "loop nest deeper than 4";
      failure_loc_ = loop.loc;
      return false;
    }
    if (index + 1 > 8) {
      failure = "more than 8 loops in one region";
      failure_loc_ = loop.loc;
      return false;
    }
    chain.push_back(index);
    LoopNode node;
    node.header = *header;
    node.parent = parent;
    node.ast = &loop;
    node.chain = chain;
    loops_.push_back(std::move(node));
    return walk_body(header->body, index, chain, guards, failure);
  }

  [[nodiscard]] bool walk_body(const Stmt* body, std::size_t loop_index,
                               const std::vector<std::size_t>& chain,
                               const std::vector<GuardRef>& guards,
                               std::string& failure) {
    if (body == nullptr) {
      failure = "loop has no body";
      return false;
    }
    if (const auto* block = stmt_cast<CompoundStmt>(body)) {
      for (const StmtPtr& child : block->stmts) {
        if (!walk_element(*child, loop_index, chain, guards, failure)) {
          return false;
        }
      }
      return true;
    }
    return walk_element(*body, loop_index, chain, guards, failure);
  }

  [[nodiscard]] bool walk_element(const Stmt& s, std::size_t loop_index,
                                  const std::vector<std::size_t>& chain,
                                  const std::vector<GuardRef>& guards,
                                  std::string& failure) {
    switch (s.kind()) {
      case StmtKind::Null:
      case StmtKind::Pragma:
        return true;
      case StmtKind::Compound:
        return walk_body(&s, loop_index, chain, guards, failure);
      case StmtKind::For:
        return walk_loop(static_cast<const ForStmt&>(s), loop_index, chain,
                         guards, failure);
      case StmtKind::If: {
        saw_guard_ = true;
        const auto& branch = static_cast<const IfStmt&>(s);
        std::vector<GuardRef> then_guards = guards;
        then_guards.push_back(GuardRef{branch.cond.get(), false, chain});
        if (!walk_body(branch.then_stmt.get(), loop_index, chain,
                       then_guards, failure)) {
          return false;
        }
        if (branch.else_stmt) {
          std::vector<GuardRef> else_guards = guards;
          else_guards.push_back(GuardRef{branch.cond.get(), true, chain});
          return walk_body(branch.else_stmt.get(), loop_index, chain,
                           else_guards, failure);
        }
        return true;
      }
      case StmtKind::Expr: {
        const auto& es = static_cast<const ExprStmt&>(s);
        const auto* assign = expr_cast<AssignExpr>(es.expr.get());
        if (assign == nullptr) {
          failure = "loop body statement is not a plain assignment";
          failure_loc_ = s.loc;
          return false;
        }
        PendingStmt p;
        p.ast = &s;
        p.assign = assign;
        p.chain = chain;
        p.guards = guards;
        pending_stmts_.push_back(std::move(p));
        return true;
      }
      case StmtKind::While:
      case StmtKind::DoWhile:
        failure =
            "while loop in body has no recognizable affine induction "
            "(not canonicalized)";
        failure_loc_ = s.loc;
        return false;
      case StmtKind::Decl:
        failure = "declaration inside the loop body";
        failure_loc_ = s.loc;
        return false;
      default:
        failure = "loop body statement is not a plain assignment";
        failure_loc_ = s.loc;
        return false;
    }
  }

  /// Lowers an `if` condition (or its negation, for the else branch) to
  /// disjunctive normal form: a union of conjunctive affine constraint
  /// sets. Convex guards lower to a single disjunct exactly as before;
  /// disjunctive shapes (`||`, a negated `&&`, a then-side `!=`) split
  /// into one disjunct per convex piece so the statement can be modeled
  /// as one copy per piece instead of rejecting the whole scop. The
  /// split is capped — a combinatorial guard still degrades to serial
  /// with a reason, never to wrong code.
  [[nodiscard]] bool build_guard(const Expr& e, bool negated,
                                 AffineBuilder& builder,
                                 std::vector<std::vector<Constraint>>& dnf,
                                 std::string& failure) {
    if (const auto* u = expr_cast<UnaryExpr>(&e)) {
      if (u->op == UnaryOp::Not) {
        return build_guard(*u->operand, !negated, builder, dnf, failure);
      }
    }
    const auto* b = expr_cast<BinaryExpr>(&e);
    if (b == nullptr) {
      failure = "guard condition is not an affine comparison";
      return false;
    }
    const bool conjunctive = (b->op == BinaryOp::LogicalAnd && !negated) ||
                             (b->op == BinaryOp::LogicalOr && negated);
    const bool disjunctive = (b->op == BinaryOp::LogicalOr && !negated) ||
                             (b->op == BinaryOp::LogicalAnd && negated);
    if (conjunctive) {
      std::vector<std::vector<Constraint>> lhs;
      std::vector<std::vector<Constraint>> rhs;
      return build_guard(*b->lhs, negated, builder, lhs, failure) &&
             build_guard(*b->rhs, negated, builder, rhs, failure) &&
             cross_disjuncts(lhs, rhs, dnf, failure);
    }
    if (disjunctive) {
      std::vector<std::vector<Constraint>> lhs;
      std::vector<std::vector<Constraint>> rhs;
      if (!build_guard(*b->lhs, negated, builder, lhs, failure) ||
          !build_guard(*b->rhs, negated, builder, rhs, failure)) {
        return false;
      }
      dnf = std::move(lhs);
      dnf.insert(dnf.end(), std::make_move_iterator(rhs.begin()),
                 std::make_move_iterator(rhs.end()));
      return check_disjunct_cap(dnf.size(), failure);
    }

    const bool comparison =
        b->op == BinaryOp::Less || b->op == BinaryOp::LessEqual ||
        b->op == BinaryOp::Greater || b->op == BinaryOp::GreaterEqual ||
        b->op == BinaryOp::Equal || b->op == BinaryOp::NotEqual;
    if (!comparison) {
      failure = "guard condition is not an affine comparison";
      return false;
    }
    auto lhs = builder.build(*b->lhs);
    if (!lhs) {
      failure = builder.error().empty()
                    ? "non-affine guard condition"
                    : builder.error();
      return false;
    }
    auto rhs = builder.build(*b->rhs);
    if (!rhs) {
      failure = builder.error().empty()
                    ? "non-affine guard condition"
                    : builder.error();
      return false;
    }
    builder.align(*lhs);
    builder.align(*rhs);
    // diff = lhs - rhs.
    AffineForm diff = std::move(*lhs);
    for (std::size_t i = 0; i < diff.coeffs.size(); ++i) {
      diff.coeffs[i] = checked_sub(diff.coeffs[i], rhs->coeffs[i]);
    }
    diff.constant = checked_sub(diff.constant, rhs->constant);

    BinaryOp op = b->op;
    if (negated) {
      switch (op) {
        case BinaryOp::Less: op = BinaryOp::GreaterEqual; break;
        case BinaryOp::LessEqual: op = BinaryOp::Greater; break;
        case BinaryOp::Greater: op = BinaryOp::LessEqual; break;
        case BinaryOp::GreaterEqual: op = BinaryOp::Less; break;
        case BinaryOp::Equal: op = BinaryOp::NotEqual; break;
        case BinaryOp::NotEqual: op = BinaryOp::Equal; break;
        default: break;
      }
    }
    const auto negated_form = [&diff] {
      AffineForm f = diff;
      for (auto& c : f.coeffs) c = -c;
      f.constant = -f.constant;
      return f;
    };
    switch (op) {
      case BinaryOp::Less: {
        // lhs < rhs  <=>  rhs - lhs - 1 >= 0.
        AffineForm f = negated_form();
        dnf.push_back(
            {Constraint::ge(std::move(f.coeffs), f.constant - 1)});
        return true;
      }
      case BinaryOp::LessEqual: {
        AffineForm f = negated_form();
        dnf.push_back({Constraint::ge(std::move(f.coeffs), f.constant)});
        return true;
      }
      case BinaryOp::Greater:
        dnf.push_back(
            {Constraint::ge(std::move(diff.coeffs), diff.constant - 1)});
        return true;
      case BinaryOp::GreaterEqual:
        dnf.push_back(
            {Constraint::ge(std::move(diff.coeffs), diff.constant)});
        return true;
      case BinaryOp::Equal:
        dnf.push_back(
            {Constraint::eq(std::move(diff.coeffs), diff.constant)});
        return true;
      case BinaryOp::NotEqual: {
        // lhs != rhs  <=>  lhs < rhs  OR  lhs > rhs.
        AffineForm f = negated_form();
        dnf.push_back(
            {Constraint::ge(std::move(f.coeffs), f.constant - 1)});
        dnf.push_back(
            {Constraint::ge(std::move(diff.coeffs), diff.constant - 1)});
        return true;
      }
      default:
        return false;
    }
  }

  /// Conjunction of two DNFs: the cross product of their disjuncts,
  /// subject to the split cap.
  [[nodiscard]] static bool cross_disjuncts(
      const std::vector<std::vector<Constraint>>& lhs,
      const std::vector<std::vector<Constraint>>& rhs,
      std::vector<std::vector<Constraint>>& dnf, std::string& failure) {
    if (!check_disjunct_cap(dnf.size() + lhs.size() * rhs.size(),
                            failure)) {
      return false;
    }
    for (const std::vector<Constraint>& l : lhs) {
      for (const std::vector<Constraint>& r : rhs) {
        std::vector<Constraint> merged = l;
        merged.insert(merged.end(), r.begin(), r.end());
        dnf.push_back(std::move(merged));
      }
    }
    return true;
  }

  [[nodiscard]] static bool check_disjunct_cap(std::size_t count,
                                               std::string& failure) {
    if (count <= kMaxGuardDisjuncts) return true;
    failure = "guard splits into more than " +
              std::to_string(kMaxGuardDisjuncts) +
              " affine disjuncts";
    return false;
  }

  bool add_access(const Expr& e, AccessKind kind, AffineBuilder& builder,
                  const std::set<std::string>& written_scalars,
                  ScopStatement& stmt, std::string& failure) {
    if (const auto* ident = expr_cast<IdentExpr>(&e)) {
      // Scalar access. Only track it if it is written in the region —
      // read-only scalars are parameters/constants.
      if (kind == AccessKind::Write ||
          written_scalars.count(ident->name) != 0) {
        Access a;
        a.kind = kind;
        a.array = ident->name;
        stmt.accesses.push_back(std::move(a));
      }
      return true;
    }
    std::string base;
    std::vector<const Expr*> subscripts;
    if (!flatten_index_chain(e, base, subscripts)) {
      failure = "unsupported access shape (expected ident[aff]...[aff])";
      return false;
    }
    Access a;
    a.kind = kind;
    a.array = base;
    for (const Expr* sub : subscripts) {
      auto form = builder.build(*sub);
      if (!form) {
        failure = builder.error().empty()
                      ? "non-affine subscript on array " + base
                      : builder.error();
        return false;
      }
      a.subscripts.push_back(std::move(*form));
    }
    stmt.accesses.push_back(std::move(a));
    return true;
  }

  bool collect_reads(const Expr& e, AffineBuilder& builder,
                     const std::set<std::string>& written_scalars,
                     ScopStatement& stmt, std::string& failure) {
    switch (e.kind()) {
      case ExprKind::Index:
        return add_access(e, AccessKind::Read, builder, written_scalars,
                          stmt, failure);
      case ExprKind::Ident:
        return add_access(e, AccessKind::Read, builder, written_scalars,
                          stmt, failure);
      case ExprKind::IntLiteral:
      case ExprKind::FloatLiteral:
      case ExprKind::CharLiteral:
      case ExprKind::StringLiteral:
        return true;
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        if (u.op == UnaryOp::Deref || u.op == UnaryOp::AddrOf ||
            u.op == UnaryOp::PreInc || u.op == UnaryOp::PostInc ||
            u.op == UnaryOp::PreDec || u.op == UnaryOp::PostDec) {
          failure = "unsupported operator in loop body";
          return false;
        }
        return collect_reads(*u.operand, builder, written_scalars, stmt,
                             failure);
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        return collect_reads(*b.lhs, builder, written_scalars, stmt,
                             failure) &&
               collect_reads(*b.rhs, builder, written_scalars, stmt,
                             failure);
      }
      case ExprKind::Conditional: {
        const auto& c = static_cast<const ConditionalExpr&>(e);
        return collect_reads(*c.cond, builder, written_scalars, stmt,
                             failure) &&
               collect_reads(*c.then_expr, builder, written_scalars, stmt,
                             failure) &&
               collect_reads(*c.else_expr, builder, written_scalars, stmt,
                             failure);
      }
      case ExprKind::Cast:
        return collect_reads(*static_cast<const CastExpr&>(e).operand,
                             builder, written_scalars, stmt, failure);
      case ExprKind::Sizeof:
        return true;
      case ExprKind::Call:
        failure = "function call left in loop body (not substituted)";
        return false;
      case ExprKind::Assign:
        failure = "nested assignment in loop body expression";
        return false;
      case ExprKind::Member:
        failure = "struct member access in loop body";
        return false;
    }
    return true;
  }

  std::vector<LoopNode> loops_;
  std::vector<PendingStmt> pending_stmts_;
  bool saw_guard_ = false;
  /// Set by the walk passes when a rejection can point at the offending
  /// statement/loop; run() falls back to the root loop otherwise.
  SourceLocation failure_loc_;
};

}  // namespace

ExtractionResult extract_scop(const ForStmt& loop) {
  Extractor extractor;
  return extractor.run(loop);
}

}  // namespace purec::poly

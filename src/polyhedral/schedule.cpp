#include "polyhedral/schedule.h"

#include <algorithm>
#include <numeric>

#include "support/rational.h"

namespace purec::poly {

bool Transform::is_identity() const {
  return matrix == IntMat::identity(matrix.rows());
}

bool Transform::any_parallel() const {
  return std::any_of(parallel.begin(), parallel.end(),
                     [](bool b) { return b; });
}

std::size_t Transform::outermost_parallel() const {
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    if (parallel[i]) return i;
  }
  return npos;
}

namespace {

/// Builds the constraint "h.(dst - src) + shift <= -1", i.e. the violation
/// witness for weak (shift = 0) / strong (shift = -1 ... see callers)
/// satisfaction, over the dependence polyhedron space
/// [src (d), dst (d), params].
[[nodiscard]] Constraint violation_constraint(const IntVec& h,
                                              std::size_t depth,
                                              std::size_t dims,
                                              std::int64_t bound) {
  // h.(dst - src) <= bound   <=>   -h.dst + h.src + bound >= 0
  IntVec coeffs(dims, 0);
  for (std::size_t k = 0; k < depth; ++k) {
    coeffs[k] = h[k];
    coeffs[depth + k] = -h[k];
  }
  return Constraint::ge(std::move(coeffs), bound);
}

}  // namespace

bool weakly_satisfies(const IntVec& h, const Dependence& dep,
                      std::size_t depth) {
  // Violated iff there is a point with h.delta <= -1.
  return !dep.polyhedron.satisfiable_with(
      violation_constraint(h, depth, dep.polyhedron.dimensions(), -1));
}

bool strongly_satisfies(const IntVec& h, const Dependence& dep,
                        std::size_t depth) {
  // Strong iff no point with h.delta <= 0.
  return !dep.polyhedron.satisfiable_with(
      violation_constraint(h, depth, dep.polyhedron.dimensions(), 0));
}

namespace {

/// Enumerates candidate hyperplanes with coefficients in [-1, 2], ordered
/// by cost (sum of |coeffs|, then lexicographic), skipping the zero vector
/// and non-primitive (gcd > 1) vectors.
[[nodiscard]] std::vector<IntVec> candidate_hyperplanes(std::size_t d) {
  std::vector<IntVec> out;
  std::vector<std::int64_t> values = {0, 1, -1, 2};
  IntVec current(d, 0);
  std::vector<IntVec> all;
  // Generate the full cross product (4^d, d <= 4 -> at most 256).
  const std::size_t total = [&] {
    std::size_t t = 1;
    for (std::size_t i = 0; i < d; ++i) t *= values.size();
    return t;
  }();
  for (std::size_t code = 0; code < total; ++code) {
    std::size_t c = code;
    for (std::size_t i = 0; i < d; ++i) {
      current[i] = values[c % values.size()];
      c /= values.size();
    }
    if (std::all_of(current.begin(), current.end(),
                    [](std::int64_t x) { return x == 0; })) {
      continue;
    }
    if (vector_gcd(current) != 1) continue;
    all.push_back(current);
  }
  std::sort(all.begin(), all.end(), [](const IntVec& a, const IntVec& b) {
    const auto cost = [](const IntVec& v) {
      std::int64_t negatives = 0;
      std::int64_t sum = 0;
      for (std::int64_t x : v) {
        sum += x < 0 ? -x : x;
        if (x < 0) ++negatives;
      }
      return std::pair(sum + negatives, 0);
    };
    const auto ca = cost(a);
    const auto cb = cost(b);
    if (ca != cb) return ca < cb;
    // Prefer "earlier loop first": lexicographically larger leading
    // coefficient pattern, i.e. (1,0) before (0,1).
    return a > b;
  });
  return all;
}

/// Checks linear independence of `candidate` w.r.t. chosen rows via the
/// rank of the stacked matrix (Bareiss on a copy).
[[nodiscard]] bool independent(const std::vector<IntVec>& rows,
                               const IntVec& candidate) {
  const std::size_t d = candidate.size();
  std::vector<std::vector<double>> m;
  for (const IntVec& r : rows) {
    m.emplace_back(r.begin(), r.end());
  }
  m.emplace_back(candidate.begin(), candidate.end());
  // Gaussian elimination over doubles is fine for coefficients in [-2, 2].
  std::size_t rank = 0;
  for (std::size_t col = 0; col < d && rank < m.size(); ++col) {
    std::size_t pivot = rank;
    while (pivot < m.size() && std::abs(m[pivot][col]) < 1e-9) ++pivot;
    if (pivot == m.size()) continue;
    std::swap(m[rank], m[pivot]);
    for (std::size_t r = 0; r < m.size(); ++r) {
      if (r == rank || std::abs(m[r][col]) < 1e-9) continue;
      const double f = m[r][col] / m[rank][col];
      for (std::size_t c = col; c < d; ++c) m[r][c] -= f * m[rank][c];
    }
    ++rank;
  }
  return rank == m.size();
}

/// Completes a partial row set to a full-rank (unimodular if possible)
/// matrix using unit vectors.
void complete_with_units(std::vector<IntVec>& rows, std::size_t d) {
  for (std::size_t i = 0; i < d && rows.size() < d; ++i) {
    IntVec unit(d, 0);
    unit[i] = 1;
    if (independent(rows, unit)) rows.push_back(unit);
  }
}

/// Parallel classification of transformed dimension `l` (0-based): no
/// dependence admits h_0.delta == 0, ..., h_{l-1}.delta == 0,
/// h_l.delta >= 1.
[[nodiscard]] bool dimension_parallel(const std::vector<IntVec>& rows,
                                      std::size_t l,
                                      const std::vector<Dependence>& deps,
                                      std::size_t depth) {
  for (const Dependence& dep : deps) {
    if (dep.is_reduction || dep.is_private) continue;
    if (!dep.loop_carried(depth)) continue;
    ConstraintSystem sys = dep.polyhedron;
    const std::size_t dims = sys.dimensions();
    for (std::size_t m = 0; m < l; ++m) {
      IntVec eq(dims, 0);
      for (std::size_t k = 0; k < depth; ++k) {
        eq[k] = -rows[m][k];
        eq[depth + k] = rows[m][k];
      }
      sys.add_equality(std::move(eq), 0);
    }
    IntVec ge(dims, 0);
    for (std::size_t k = 0; k < depth; ++k) {
      ge[k] = -rows[l][k];
      ge[depth + k] = rows[l][k];
    }
    sys.add(Constraint::ge(std::move(ge), -1));  // h_l.delta >= 1
    if (!sys.is_empty()) return false;
  }
  return true;
}

}  // namespace

Transform compute_schedule(const Scop& scop,
                           const std::vector<Dependence>& deps) {
  const std::size_t d = scop.depth();
  Transform out;

  // Reduction self-dependences are exempt from legality: the accumulator
  // updates may run in any order (codegen lowers them to a reduction
  // clause), so they must not force a skew — and a reduction-only nest
  // takes the fully-parallel identity fast path below.
  std::vector<const Dependence*> carried;
  for (const Dependence& dep : deps) {
    if (dep.is_reduction || dep.is_private) continue;
    if (dep.loop_carried(d)) carried.push_back(&dep);
  }

  std::vector<IntVec> rows;
  if (carried.empty()) {
    // Fully parallel nest: identity, full band.
    out.matrix = IntMat::identity(d);
    out.band_size = d;
    out.parallel.assign(d, true);
    return out;
  }

  const std::vector<IntVec> candidates = candidate_hyperplanes(d);
  bool band_open = true;
  while (rows.size() < d && band_open) {
    bool found = false;
    for (const IntVec& h : candidates) {
      if (!independent(rows, h)) continue;
      bool ok = true;
      for (const Dependence* dep : carried) {
        if (!weakly_satisfies(h, *dep, d)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        rows.push_back(h);
        found = true;
        break;
      }
    }
    if (!found) band_open = false;
  }
  out.band_size = rows.size();
  complete_with_units(rows, d);

  out.matrix = IntMat(d, d);
  for (std::size_t r = 0; r < d; ++r) out.matrix.set_row(r, rows[r]);

  // A transform must be invertible over the integers to generate code.
  const std::int64_t det = out.matrix.determinant();
  if (det != 1 && det != -1) {
    out.matrix = IntMat::identity(d);
    out.band_size = 0;
    rows.clear();
    for (std::size_t i = 0; i < d; ++i) {
      IntVec unit(d, 0);
      unit[i] = 1;
      rows.push_back(unit);
    }
  }

  out.parallel.assign(d, false);
  for (std::size_t l = 0; l < d; ++l) {
    out.parallel[l] = dimension_parallel(rows, l, deps, d);
  }
  return out;
}

}  // namespace purec::poly

// Pluto-style schedule search (bounded): finds a unimodular transformation
// whose rows weakly satisfy all dependences (a fully permutable band that
// can be rectangularly tiled), then classifies each transformed dimension
// as parallel or sequential.
//
// The search space is the small-coefficient hyperplanes that cover the
// classical transformations on depth <= 4 nests: identity, permutation, and
// skewing (e.g. the (1,0)/(1,1) time-skew of Fig. 2). This is the subset of
// PluTo's algorithm the paper's evaluation exercises.
#pragma once

#include <vector>

#include "polyhedral/dependence.h"
#include "polyhedral/linalg.h"
#include "polyhedral/model.h"

namespace purec::poly {

struct Transform {
  /// New iterators as rows over old iterators: c = matrix * i.
  IntMat matrix;
  /// Size of the leading fully-permutable band (tilable prefix).
  std::size_t band_size = 0;
  /// parallel[l]: transformed dimension l carries no dependence once
  /// dimensions 0..l-1 are fixed.
  std::vector<bool> parallel;

  [[nodiscard]] bool is_identity() const;
  [[nodiscard]] bool any_parallel() const;
  /// Index of the outermost parallel dimension, or npos.
  [[nodiscard]] std::size_t outermost_parallel() const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Computes a legal transformation for the scop. Always succeeds: the
/// fallback is the identity schedule with a conservative (possibly empty)
/// band and parallel flags derived from the dependences.
[[nodiscard]] Transform compute_schedule(const Scop& scop,
                                         const std::vector<Dependence>& deps);

/// True iff hyperplane h (coeffs over the scop's iterators) weakly
/// satisfies dependence `dep`: h.(dst - src) >= 0 everywhere on the
/// dependence polyhedron.
[[nodiscard]] bool weakly_satisfies(const IntVec& h, const Dependence& dep,
                                    std::size_t depth);

/// True iff h strongly satisfies `dep`: h.(dst - src) >= 1 everywhere.
[[nodiscard]] bool strongly_satisfies(const IntVec& h, const Dependence& dep,
                                      std::size_t depth);

}  // namespace purec::poly

#include "polyhedral/linalg.h"

#include <numeric>
#include <sstream>
#include <stdexcept>

#include "support/rational.h"

namespace purec::poly {

IntMat IntMat::identity(std::size_t n) {
  IntMat m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

IntVec IntMat::row(std::size_t r) const {
  IntVec out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = at(r, c);
  return out;
}

void IntMat::set_row(std::size_t r, const IntVec& values) {
  if (values.size() != cols_) {
    throw std::invalid_argument("IntMat::set_row: size mismatch");
  }
  for (std::size_t c = 0; c < cols_; ++c) at(r, c) = values[c];
}

IntMat IntMat::multiply(const IntMat& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("IntMat::multiply: dimension mismatch");
  }
  IntMat out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < other.cols_; ++j) {
      std::int64_t sum = 0;
      for (std::size_t k = 0; k < cols_; ++k) {
        sum = checked_add(sum, checked_mul(at(i, k), other.at(k, j)));
      }
      out.at(i, j) = sum;
    }
  }
  return out;
}

IntVec IntMat::apply(const IntVec& v) const {
  if (v.size() != cols_) {
    throw std::invalid_argument("IntMat::apply: dimension mismatch");
  }
  IntVec out(rows_, 0);
  for (std::size_t i = 0; i < rows_; ++i) {
    std::int64_t sum = 0;
    for (std::size_t k = 0; k < cols_; ++k) {
      sum = checked_add(sum, checked_mul(at(i, k), v[k]));
    }
    out[i] = sum;
  }
  return out;
}

std::int64_t IntMat::determinant() const {
  if (rows_ != cols_) {
    throw std::invalid_argument("determinant of non-square matrix");
  }
  const std::size_t n = rows_;
  if (n == 0) return 1;
  // Bareiss fraction-free elimination.
  IntMat m = *this;
  std::int64_t sign = 1;
  std::int64_t prev = 1;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    if (m.at(k, k) == 0) {
      std::size_t pivot = k + 1;
      while (pivot < n && m.at(pivot, k) == 0) ++pivot;
      if (pivot == n) return 0;
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(m.at(k, c), m.at(pivot, c));
      }
      sign = -sign;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      for (std::size_t j = k + 1; j < n; ++j) {
        const std::int64_t num = checked_sub(
            checked_mul(m.at(i, j), m.at(k, k)),
            checked_mul(m.at(i, k), m.at(k, j)));
        m.at(i, j) = num / prev;  // divides exactly in Bareiss
      }
      m.at(i, k) = 0;
    }
    prev = m.at(k, k);
  }
  return checked_mul(sign, m.at(n - 1, n - 1));
}

IntMat IntMat::inverse_unimodular() const {
  if (rows_ != cols_) {
    throw std::invalid_argument("inverse of non-square matrix");
  }
  const std::int64_t det = determinant();
  if (det != 1 && det != -1) {
    throw std::domain_error(
        "inverse_unimodular requires |det| == 1, got det = " +
        std::to_string(det));
  }
  const std::size_t n = rows_;
  // Adjugate via cofactors (n <= 4 in practice for loop nests).
  IntMat inv(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // Minor M_ji (note the transpose for the adjugate).
      IntMat minor(n - 1, n - 1);
      std::size_t mr = 0;
      for (std::size_t r = 0; r < n; ++r) {
        if (r == j) continue;
        std::size_t mc = 0;
        for (std::size_t c = 0; c < n; ++c) {
          if (c == i) continue;
          minor.at(mr, mc) = at(r, c);
          ++mc;
        }
        ++mr;
      }
      std::int64_t cof = (n == 1) ? 1 : minor.determinant();
      if ((i + j) % 2 == 1) cof = -cof;
      inv.at(i, j) = checked_mul(cof, det);  // det is ±1
    }
  }
  return inv;
}

std::string IntMat::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < rows_; ++i) {
    out << "[";
    for (std::size_t j = 0; j < cols_; ++j) {
      if (j != 0) out << " ";
      out << at(i, j);
    }
    out << "]\n";
  }
  return std::move(out).str();
}

std::int64_t vector_gcd(const IntVec& v) {
  std::int64_t g = 0;
  for (std::int64_t x : v) g = std::gcd(g, x < 0 ? -x : x);
  return g;
}

void normalize_by_gcd(IntVec& v) {
  const std::int64_t g = vector_gcd(v);
  if (g > 1) {
    for (std::int64_t& x : v) x /= g;
  }
}

std::int64_t dot(const IntVec& a, const IntVec& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dot: dimension mismatch");
  }
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum = checked_add(sum, checked_mul(a[i], b[i]));
  }
  return sum;
}

}  // namespace purec::poly

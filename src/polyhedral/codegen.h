// Loop code generation for a transformed scop (the CLooG counterpart):
// produces a new AST loop nest scanning the transformed domain, with
// rectangular tiling of the permutable band, `floord`/`ceild`/min/max
// bounds, OpenMP pragma on the outermost parallel loop, and (SICA mode) a
// SIMD pragma on the innermost parallel loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ast/stmt.h"
#include "polyhedral/model.h"
#include "polyhedral/schedule.h"
#include "support/omp_schedule.h"

namespace purec::poly {

struct CodegenOptions {
  bool parallelize = true;
  /// Tile the permutable band when its size is >= 2.
  bool tile = true;
  std::int64_t tile_size = 32;
  /// SICA mode: emit `#pragma omp simd` on the innermost parallel point
  /// loop (the vectorization PluTo-SICA enforces).
  bool simd = false;
  /// Schedule for the parallel pragma, normalized into clause text here
  /// (e.g. schedule(dynamic,1), the satellite fix in §4.3.3). Default =
  /// no clause. Parsed and validated at the boundary (ScheduleSpec::parse)
  /// so malformed clauses can never reach the emitted pragma.
  ScheduleSpec schedule;
  /// Privatized scalars for the classic path: generate_code appends
  /// `private(...)` with these names to the parallel and simd pragmas
  /// (the chain marks their dependences is_private before scheduling;
  /// region scheduling computes its own set instead).
  std::vector<std::string> privatized;
};

/// The helper macros the generated code depends on; the chain prepends
/// this once per output file (PluTo does the same with floord/ceild).
[[nodiscard]] const std::string& codegen_prelude();

/// True when the (pre-tiling) domain couples two iterators in one bound —
/// a triangular/trapezoidal nest whose inner trip count varies with the
/// outer iterator. Such scops get `schedule(guided,N)` by default when the
/// user passes no --schedule (static chunks would load-imbalance; see
/// ROADMAP runtime follow-ups).
[[nodiscard]] bool domain_is_imbalanced(const Scop& scop);

/// How the generator rewrote the scop's iterators: original iterator j
/// equals `iterator_replacement[j]` (an affine combination over `names`)
/// plus `iterator_constant[j]` (strided loops fold their lower bound into
/// the replacement; empty means all zero). The chain reuses this to fix
/// up iterators inside reinserted pure calls (paper Listing 8:
/// `dot(... A[t1] ...)`).
struct IteratorSubstitution {
  std::vector<std::string> names;             // generated variable names
  std::vector<IntVec> iterator_replacement;   // one row per old iterator
  std::vector<std::int64_t> iterator_constant;
};

/// Generates the transformed loop nest. The returned compound statement
/// contains the pragmas and loops and is a drop-in replacement for the
/// scop's original outermost ForStmt. Returns nullptr when bounds cannot
/// be derived (callers leave the original nest untouched).
[[nodiscard]] StmtPtr generate_code(const Scop& scop,
                                    const Transform& transform,
                                    const CodegenOptions& options,
                                    IteratorSubstitution* substitution_out =
                                        nullptr);

/// What schedule_region decided, for the chain's report.
struct RegionSchedule {
  /// Indices of loops that received `#pragma omp parallel for`, in
  /// emission order (a loop index can repeat across fission groups).
  std::vector<std::size_t> parallel_loops;
  /// True when the nest was distributed into more than one loop.
  bool fissioned = false;
  /// Fission groups emitted (1 when the nest stayed whole).
  std::size_t groups = 0;
  /// Groups that received at least one parallel pragma.
  std::size_t parallel_groups = 0;
  /// Scalars listed in `private(...)` clauses (first-use order).
  std::vector<std::string> privatized;
  /// Schedule clause on the first parallel pragma ("" = none).
  std::string schedule_clause;
};

/// Region scheduling for `Scop::region_shaped` scops (guards, imperfect
/// nests, iterator-dependent strided origins) and for classic nests the
/// hyperplane path left serial. Statements keep their guards and depth —
/// no reordering, no tiling — but the nest is restructured:
///
///  * Loops whose non-exempt dependences all vanish get `#pragma omp
///    parallel for` at the outermost legal position; SICA mode marks
///    parallel leaf loops `#pragma omp simd`.
///  * A loop serialized only by a written-before-read function-scope
///    scalar in `privatizable` (the chain has already proven it dead
///    after the nest) parallelizes with the scalar in `private(...)`.
///  * When no loop is parallel, the nest is distributed by dependence
///    SCC (loop fission): each group becomes its own copy of the nest,
///    pruned to the group's statements, and parallel groups take the
///    pragma while serial ones stay as they were.
///
/// The guided-by-default gate is evaluated per pragma'd loop over the
/// statements actually under it in its group, so a fissioned-off
/// rectangular loop no longer inherits a triangular sibling's
/// `schedule(guided,4)`. Returns nullptr when nothing can be
/// parallelized (callers leave the nest untouched and report why).
[[nodiscard]] StmtPtr schedule_region(
    const Scop& scop, const std::vector<Dependence>& deps,
    const CodegenOptions& options,
    const std::vector<std::string>& privatizable,
    RegionSchedule* result = nullptr);

/// Back-compat wrapper: schedule_region with no privatizable scalars,
/// returning only the pragma'd loop indices.
[[nodiscard]] StmtPtr annotate_region(
    const Scop& scop, const std::vector<Dependence>& deps,
    const CodegenOptions& options,
    std::vector<std::size_t>* parallel_loops_out = nullptr);

/// Replaces occurrences of the old iterator identifiers in `stmt` with
/// their affine replacements (exposed for the chain's call reinsertion).
void apply_iterator_substitution(StmtPtr& stmt,
                                 const std::vector<std::string>& old_names,
                                 const IteratorSubstitution& substitution);
void apply_iterator_substitution(ExprPtr& expr,
                                 const std::vector<std::string>& old_names,
                                 const IteratorSubstitution& substitution);

}  // namespace purec::poly

// Translation-unit call graph for the purity-inference subsystem.
//
// One node per function *name* seen anywhere in the unit: definitions,
// prototypes, and names that only appear at call sites (external callees
// like printf). Edges are caller -> callee, collected from every call
// expression in every definition. Indirect calls (through a function
// pointer) have no representable edge; EffectSummary::has_indirect_call
// is the authority that pessimizes them.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ast/decl.h"

namespace purec {

struct CallGraphNode {
  std::string name;
  /// The definition in this unit, or null for prototypes-only / externals.
  const FunctionDecl* definition = nullptr;
  /// First declaration (prototype or definition); null only for names that
  /// appear purely as call sites.
  const FunctionDecl* declaration = nullptr;
  /// Named callees, deduplicated, in deterministic (lexicographic) order.
  /// Indirect calls have no edge here (see the header comment).
  std::set<std::string> callees;

  /// No definition in this unit: the body is unknowable.
  [[nodiscard]] bool is_external() const noexcept {
    return definition == nullptr;
  }
};

class CallGraph {
 public:
  /// Builds the graph for every function in `tu`.
  [[nodiscard]] static CallGraph build(const TranslationUnit& tu);

  [[nodiscard]] const CallGraphNode* node(const std::string& name) const {
    const auto it = nodes_.find(name);
    return it == nodes_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const std::map<std::string, CallGraphNode>& nodes() const {
    return nodes_;
  }

  /// Strongly connected components of the *defined* subgraph (external
  /// nodes are excluded — they have no outgoing edges worth following), in
  /// callees-before-callers order: every edge leaving an SCC points at an
  /// SCC emitted earlier. This is the processing order the optimistic
  /// purity fixpoint wants, and it makes mutual recursion explicit (a pure
  /// pair lands in one two-element SCC).
  [[nodiscard]] std::vector<std::vector<const CallGraphNode*>> sccs() const;

 private:
  std::map<std::string, CallGraphNode> nodes_;
};

}  // namespace purec

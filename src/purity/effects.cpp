#include "purity/effects.h"

#include <map>
#include <vector>

#include "ast/walk.h"

namespace purec {

namespace {

/// Provenance lattice for local pointers, strongest first. Heap: every
/// source is malloc/calloc (free is legal). LocalStorage: every source is
/// function-local memory (writes are thread-invisible). Foreign: anything
/// else — the pointer may reach caller or global memory.
enum class Provenance : std::uint8_t { Heap, LocalStorage, Foreign };

[[nodiscard]] Provenance join(Provenance a, Provenance b) {
  return a > b ? a : b;
}

/// One recorded assignment source for a local pointer.
struct Source {
  Provenance direct = Provenance::Foreign;
  std::string local_ref;  // non-empty: provenance of that local, joined in
};

/// Computes per-local-pointer provenance by joining every assignment
/// source (declaration initializers and bare reassignments), to a
/// fixpoint so pointer-to-pointer chains resolve. Name-keyed: shadowed
/// locals conflate, which only ever *lowers* the lattice value — safe.
class ProvenanceMap {
 public:
  ProvenanceMap(const FunctionDecl& fn, const FunctionScopeInfo& scope) {
    // Pass 1: classification sets. Must be complete before any classify()
    // call so `&s` / array decay see statics declared later in the body.
    for_each_stmt(*fn.body, [&](const Stmt& s) {
      const auto* decl = stmt_cast<DeclStmt>(&s);
      if (decl == nullptr) return;
      for (const VarDecl& d : decl->decls) {
        if (d.is_static) {
          // Persistent across calls: shared state, never local storage.
          statics_.insert(d.name);
        } else if (d.type->is_array()) {
          arrays_.insert(d.name);
        }
      }
    });
    // Pass 2: assignment sources.
    for_each_stmt(*fn.body, [&](const Stmt& s) {
      const auto* decl = stmt_cast<DeclStmt>(&s);
      if (decl == nullptr) return;
      for (const VarDecl& d : decl->decls) {
        if (d.is_static) continue;
        if (d.type->is_pointer() && d.init) {
          sources_[d.name].push_back(classify(d.init.get(), scope));
        }
      }
    });
    const auto local_pointer_name =
        [&scope](const Expr& lhs) -> const std::string* {
      const auto* ident = expr_cast<IdentExpr>(strip_casts(&lhs));
      const Symbol* sym = ident ? scope.resolve(*ident) : nullptr;
      if (sym == nullptr || sym->kind != SymbolKind::Local) return nullptr;
      if (sym->type == nullptr || !sym->type->is_pointer()) return nullptr;
      return &ident->name;
    };
    for_each_expr(static_cast<const Stmt&>(*fn.body), [&](const Expr& e) {
      if (const auto* call = expr_cast<CallExpr>(&e)) {
        // A WritesArg1 extern (strtol/strtod) stores a pointer *into its
        // input string* through *endptr. When endptr is &local, that
        // local now refers to foreign memory even though the call itself
        // is harmless — record the callee-side store as a Foreign source
        // so later writes through the local are rejected.
        const ExternEffect* known = extern_effect(call->callee_name());
        if (known == nullptr ||
            known->kind != ExternEffectKind::WritesArg1 ||
            call->args.size() < 2) {
          return;
        }
        const auto* unary =
            expr_cast<UnaryExpr>(strip_casts(call->args[1].get()));
        if (unary == nullptr || unary->op != UnaryOp::AddrOf) return;
        if (const std::string* name =
                local_pointer_name(*unary->operand)) {
          sources_[*name].push_back(Source{Provenance::Foreign, {}});
        }
        return;
      }
      if (const auto* assign = expr_cast<AssignExpr>(&e)) {
        const std::string* name = local_pointer_name(*assign->lhs);
        if (name == nullptr) return;
        if (assign->op == AssignOp::Assign) {
          sources_[*name].push_back(classify(assign->rhs.get(), scope));
        } else {
          // Compound mutation (p += k, ...): an interior pointer — still
          // the same object (write-safe) but never free()-safe again.
          sources_[*name].push_back(
              Source{Provenance::LocalStorage, *name});
        }
        return;
      }
      if (const auto* unary = expr_cast<UnaryExpr>(&e)) {
        if (unary->op != UnaryOp::PreInc && unary->op != UnaryOp::PreDec &&
            unary->op != UnaryOp::PostInc &&
            unary->op != UnaryOp::PostDec) {
          return;
        }
        // p++ / p--: same interior-pointer demotion as p = p + 1.
        if (const std::string* name = local_pointer_name(*unary->operand)) {
          sources_[*name].push_back(
              Source{Provenance::LocalStorage, *name});
        }
      }
    });
    solve();
  }

  /// Provenance of local variable `name` (arrays are LocalStorage; a
  /// pointer with no recorded source is Foreign; statics are always
  /// Foreign — their storage outlives the call).
  [[nodiscard]] Provenance of(const std::string& name) const {
    if (statics_.count(name) != 0) return Provenance::Foreign;
    if (arrays_.count(name) != 0) return Provenance::LocalStorage;
    const auto it = result_.find(name);
    return it == result_.end() ? Provenance::Foreign : it->second;
  }

  /// Any same-named block-scope declaration carries `static`.
  [[nodiscard]] bool is_static(const std::string& name) const {
    return statics_.count(name) != 0;
  }

 private:
  [[nodiscard]] Source classify(const Expr* rhs,
                                const FunctionScopeInfo& scope) const {
    const Expr* core = strip_casts(rhs);
    if (const auto* call = expr_cast<CallExpr>(core)) {
      const std::string callee = call->callee_name();
      if (callee == "malloc" || callee == "calloc") {
        return Source{Provenance::Heap, {}};
      }
      return Source{Provenance::Foreign, {}};
    }
    if (const auto* unary = expr_cast<UnaryExpr>(core)) {
      if (unary->op == UnaryOp::AddrOf) {
        const auto* target =
            expr_cast<IdentExpr>(strip_casts(unary->operand.get()));
        const Symbol* sym = target ? scope.resolve(*target) : nullptr;
        if (sym != nullptr && sym->kind == SymbolKind::Local &&
            statics_.count(sym->name) == 0) {
          return Source{Provenance::LocalStorage, {}};
        }
      }
      return Source{Provenance::Foreign, {}};
    }
    if (const auto* ident = expr_cast<IdentExpr>(core)) {
      const Symbol* sym = scope.resolve(*ident);
      if (sym != nullptr && sym->kind == SymbolKind::Local && sym->type &&
          statics_.count(sym->name) == 0) {
        if (sym->type->is_array()) {
          return Source{Provenance::LocalStorage, {}};
        }
        if (sym->type->is_pointer()) {
          // Inherits the referenced local's provenance (Heap stays Heap,
          // so free(alias) keeps verifying, mirroring the §3.2 checker).
          return Source{Provenance::Heap, ident->name};
        }
      }
      return Source{Provenance::Foreign, {}};
    }
    if (const auto* bin = expr_cast<BinaryExpr>(core)) {
      // Pointer arithmetic stays within the base object (defined C), so
      // `buf + i` carries the pointer operand's provenance — capped at
      // LocalStorage: an interior pointer is write-safe but never
      // free()-safe, even off a malloc'ed base.
      if (bin->op == BinaryOp::Add || bin->op == BinaryOp::Sub) {
        Source side = classify(bin->lhs.get(), scope);
        if (side.direct == Provenance::Foreign && side.local_ref.empty()) {
          side = classify(bin->rhs.get(), scope);
        }
        side.direct = join(side.direct, Provenance::LocalStorage);
        return side;
      }
      return Source{Provenance::Foreign, {}};
    }
    return Source{Provenance::Foreign, {}};
  }

  void solve() {
    // Optimistic start (Heap), monotone demotion to fixpoint.
    for (const auto& [name, srcs] : sources_) {
      result_[name] = Provenance::Heap;
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [name, srcs] : sources_) {
        Provenance p = Provenance::Heap;
        for (const Source& src : srcs) {
          Provenance s = src.direct;
          if (!src.local_ref.empty()) {
            // A pointer copied from another local: at best as strong as
            // that local's provenance.
            s = join(s, of(src.local_ref));
          }
          p = join(p, s);
        }
        if (p != result_[name]) {
          result_[name] = p;
          changed = true;
        }
      }
    }
  }

  std::map<std::string, std::vector<Source>> sources_;
  std::map<std::string, Provenance> result_;
  std::set<std::string> arrays_;
  std::set<std::string> statics_;
};

/// The pointer-escape reasoning both the effect scanner and the public
/// WritesArg0Oracle share: per-local provenance plus the "could this
/// expression yield a pointer into caller or global memory?" query.
class PointerOracle {
 public:
  PointerOracle(const FunctionDecl& fn, const FunctionScopeInfo& scope)
      : scope_(scope), provenance_(fn, scope) {}

  [[nodiscard]] Provenance of(const std::string& name) const {
    return provenance_.of(name);
  }

  [[nodiscard]] bool is_static(const std::string& name) const {
    return provenance_.is_static(name);
  }

  /// Static type of the slot an lvalue designates: the root's declared
  /// type peeled once per index/deref level. Null when unresolvable
  /// (members, casts) — callers must be conservative.
  [[nodiscard]] TypePtr lvalue_slot_type(const Expr& lhs) const {
    if (const auto* ident = expr_cast<IdentExpr>(&lhs)) {
      const Symbol* sym = scope_.resolve(*ident);
      return sym != nullptr ? sym->type : nullptr;
    }
    const TypePtr* base = nullptr;
    TypePtr base_type;
    if (const auto* index = expr_cast<IndexExpr>(&lhs)) {
      base_type = lvalue_slot_type(*index->base);
      base = &base_type;
    } else if (const auto* unary = expr_cast<UnaryExpr>(&lhs)) {
      if (unary->op != UnaryOp::Deref) return nullptr;
      base_type = lvalue_slot_type(*unary->operand);
      base = &base_type;
    } else {
      return nullptr;
    }
    if (*base == nullptr) return nullptr;
    if ((*base)->is_array()) return (*base)->element;
    if ((*base)->is_pointer()) return (*base)->pointee;
    return nullptr;
  }

  /// Could evaluating `rhs` yield a pointer into caller or global memory?
  [[nodiscard]] bool is_foreign_pointer_value(const Expr* rhs) const {
    const Expr* core = strip_casts(rhs);
    if (const auto* call = expr_cast<CallExpr>(core)) {
      const std::string callee = call->callee_name();
      // Fresh heap memory is fine; any other call could return a foreign
      // pointer (we have no return types for externals).
      return callee != "malloc" && callee != "calloc";
    }
    if (const auto* unary = expr_cast<UnaryExpr>(core)) {
      if (unary->op == UnaryOp::AddrOf) {
        const auto* target =
            expr_cast<IdentExpr>(strip_casts(unary->operand.get()));
        const Symbol* sym = target ? scope_.resolve(*target) : nullptr;
        return sym == nullptr || sym->kind != SymbolKind::Local ||
               provenance_.is_static(sym->name);
      }
      // Deref is a load: handled by the Through-shape branch below.
      // Every other unary operator yields a scalar value.
      if (unary->op != UnaryOp::Deref) return false;
    }
    if (const auto* bin = expr_cast<BinaryExpr>(core)) {
      // Pointer arithmetic carries the pointer operand's object; the
      // comma operator's value is its right side. Comparisons, logic,
      // and bit operations yield integers.
      if (bin->op == BinaryOp::Add || bin->op == BinaryOp::Sub) {
        return is_foreign_pointer_value(bin->lhs.get()) ||
               is_foreign_pointer_value(bin->rhs.get());
      }
      if (bin->op == BinaryOp::Comma) {
        return is_foreign_pointer_value(bin->rhs.get());
      }
      return false;
    }
    if (const auto* cond = expr_cast<ConditionalExpr>(core)) {
      return is_foreign_pointer_value(cond->then_expr.get()) ||
             is_foreign_pointer_value(cond->else_expr.get());
    }
    if (const auto* assign = expr_cast<AssignExpr>(core)) {
      // The value of `p = q` is q.
      return is_foreign_pointer_value(assign->rhs.get());
    }
    if (const auto* ident = expr_cast<IdentExpr>(core)) {
      const Symbol* sym = scope_.resolve(*ident);
      if (sym == nullptr) return true;
      if (sym->type == nullptr ||
          !(sym->type->is_pointer() || sym->type->is_array())) {
        return false;  // scalar value
      }
      switch (sym->kind) {
        case SymbolKind::Param:
        case SymbolKind::Global:
        case SymbolKind::Unknown:
        case SymbolKind::Function:
          return true;
        case SymbolKind::Local:
          return provenance_.is_static(sym->name) ||
                 (sym->type->is_pointer() &&
                  provenance_.of(sym->name) == Provenance::Foreign);
      }
    }
    if (lvalue_shape(*core) == LvalueShape::Through) {
      // A load out of some storage (p[i], *p, s.f): foreign if the loaded
      // slot can hold a pointer and the storage itself is not local.
      const Symbol* root = scope_.lvalue_root(*core);
      if (root == nullptr) return true;
      const TypePtr slot = lvalue_slot_type(*core);
      if (slot != nullptr && !slot->is_pointer() && !slot->is_array()) {
        return false;  // scalar load
      }
      if (root->kind == SymbolKind::Local) {
        return provenance_.of(root->name) == Provenance::Foreign;
      }
      return true;
    }
    return false;  // literals, arithmetic: scalar values
  }

 private:
  const FunctionScopeInfo& scope_;
  ProvenanceMap provenance_;
};

/// The WritesArg0 verdict shared by the scanner and the declared-pure
/// verifier: empty reason when the destination provably targets
/// function-local storage.
struct WritesArg0Verdict {
  std::string reason;
  /// The rejection involves an untrackable pointer write (classification
  /// bit for EffectSummary, unused by the verifier).
  bool unknown_pointer = false;
};

[[nodiscard]] WritesArg0Verdict check_writes_arg0(const PointerOracle& oracle,
                                                  const CallExpr& call,
                                                  const std::string& name) {
  if (call.args.empty()) {
    return {"calls '" + name + "' without a destination", false};
  }
  if (name == "snprintf") {
    // The arg0 write is bounded by arg1, but %n writes through a
    // *later* pointer argument; the WritesArg0 model only holds for a
    // literal format provably free of %n.
    const auto* format =
        call.args.size() >= 3
            ? expr_cast<StringLiteralExpr>(strip_casts(call.args[2].get()))
            : nullptr;
    if (format == nullptr) {
      return {"calls 'snprintf' with a non-literal format string "
              "(effects unknown)",
              false};
    }
    if (format->spelling.find("%n") != std::string::npos) {
      return {"calls 'snprintf' with %n (writes through a format argument)",
              true};
    }
  }
  if (oracle.is_foreign_pointer_value(call.args[0].get())) {
    return {"calls '" + name +
                "' writing through a pointer that may reference caller or "
                "global memory",
            true};
  }
  return {};
}

/// WritesArg1 (strtol/strtod family): the only store is *endptr. A null
/// constant endptr performs no write at all and an `&local` endptr lands
/// in function-local storage — both fall out of the same foreign-pointer
/// query (literals are scalar values, AddrOf of a non-static local is
/// local provenance). errno on range errors is outside the modeled
/// dialect; a body that read errno would already be rejected as an
/// unknown-global read.
[[nodiscard]] WritesArg0Verdict check_writes_arg1(const PointerOracle& oracle,
                                                  const CallExpr& call,
                                                  const std::string& name) {
  if (call.args.size() < 2) {
    return {"calls '" + name + "' without an end-pointer argument", false};
  }
  if (oracle.is_foreign_pointer_value(call.args[1].get())) {
    return {"calls '" + name +
                "' storing its end pointer where the caller or another "
                "thread may observe it",
            true};
  }
  return {};
}

class EffectScanner {
 public:
  EffectScanner(const FunctionDecl& fn, const FunctionScopeInfo& scope,
                bool allow_malloc_free)
      : fn_(fn),
        scope_(scope),
        allow_malloc_free_(allow_malloc_free),
        oracle_(fn, scope) {}

  [[nodiscard]] EffectSummary run() {
    summary_.function = fn_.name;
    if (fn_.is_variadic) {
      impure(fn_.loc, "is variadic (effects of va_arg uses are opaque)");
    }
    collect_callee_idents();
    for_each_expr(static_cast<const Stmt&>(*fn_.body),
                  [this](const Expr& e) { scan_expr(e); });
    return std::move(summary_);
  }

 private:
  void impure(SourceLocation loc, std::string reason) {
    if (!summary_.pure_locally) return;  // keep the first reason
    summary_.pure_locally = false;
    summary_.impurity_reason = std::move(reason);
    summary_.impurity_loc = loc;
  }

  /// Callee identifiers must not be mistaken for global variable reads.
  void collect_callee_idents() {
    for_each_call(*fn_.body, [this](const CallExpr& call) {
      if (const auto* ident = expr_cast<IdentExpr>(call.callee.get())) {
        callee_idents_.insert(ident);
      }
    });
  }

  void scan_expr(const Expr& e) {
    if (const auto* call = expr_cast<CallExpr>(&e)) {
      scan_call(*call);
      return;
    }
    if (const auto* assign = expr_cast<AssignExpr>(&e)) {
      scan_write(*assign->lhs, assign->loc);
      if (assign->op == AssignOp::Assign) scan_pointer_store(*assign);
      return;
    }
    if (const auto* unary = expr_cast<UnaryExpr>(&e)) {
      if (unary->op == UnaryOp::PreInc || unary->op == UnaryOp::PreDec ||
          unary->op == UnaryOp::PostInc || unary->op == UnaryOp::PostDec) {
        scan_write(*unary->operand, unary->loc);
      }
      return;
    }
    if (const auto* ident = expr_cast<IdentExpr>(&e)) {
      if (callee_idents_.count(ident) != 0) return;
      const Symbol* sym = scope_.resolve(*ident);
      if (sym != nullptr && (sym->kind == SymbolKind::Global ||
                             sym->kind == SymbolKind::Unknown)) {
        summary_.global_reads.insert(ident->name);
      }
      return;
    }
  }

  void scan_call(const CallExpr& call) {
    const std::string name = call.callee_name();
    if (name.empty()) {
      summary_.has_indirect_call = true;
      impure(call.loc, "calls through a function pointer");
      return;
    }
    if (const ExternEffect* known = extern_effect(name)) {
      scan_known_extern(call, name, *known);
      return;
    }
    if (name == "malloc" || name == "calloc") {
      summary_.allocates = true;
      if (!allow_malloc_free_) summary_.callees.insert(name);
      return;
    }
    if (name == "free") {
      summary_.frees = true;
      if (!allow_malloc_free_) summary_.callees.insert(name);
      scan_free(call);
      return;
    }
    summary_.callees.insert(name);
  }

  /// A call modeled by the extern effect database is resolved here and
  /// never becomes a pessimized callee edge. ReadOnly externs are free;
  /// writing externs (WritesArg0/WritesArg1) are harmless exactly when
  /// their destination provably targets function-local storage (same
  /// provenance reasoning as direct stores).
  void scan_known_extern(const CallExpr& call, const std::string& name,
                         const ExternEffect& effect) {
    summary_.extern_calls.insert(name);
    if (effect.kind == ExternEffectKind::ReadOnly) return;
    const WritesArg0Verdict verdict =
        effect.kind == ExternEffectKind::WritesArg1
            ? check_writes_arg1(oracle_, call, name)
            : check_writes_arg0(oracle_, call, name);
    if (verdict.reason.empty()) return;
    if (verdict.unknown_pointer) summary_.writes_unknown_pointer = true;
    impure(call.loc, verdict.reason);
  }

  void scan_free(const CallExpr& call) {
    if (call.args.size() != 1) {
      impure(call.loc, "calls free() with the wrong arity");
      return;
    }
    const auto* ident = expr_cast<IdentExpr>(strip_casts(call.args[0].get()));
    const Symbol* sym = ident ? scope_.resolve(*ident) : nullptr;
    if (sym == nullptr || sym->kind != SymbolKind::Local ||
        oracle_.of(sym->name) != Provenance::Heap) {
      impure(call.loc, "frees memory it did not allocate");
    }
  }

  /// The deep-write hole: local storage is writable, but once a *foreign
  /// pointer* is stored into a pointer-typed slot of it, later writes
  /// through that slot would reach caller/global memory while still
  /// rooting at the local. Conservatively reject the store itself.
  void scan_pointer_store(const AssignExpr& assign) {
    const Symbol* root = scope_.lvalue_root(*assign.lhs);
    if (root == nullptr || root->kind != SymbolKind::Local) return;
    if (lvalue_shape(*assign.lhs) != LvalueShape::Through) return;
    if (oracle_.of(root->name) == Provenance::Foreign) return;  // flagged
    const TypePtr slot = oracle_.lvalue_slot_type(*assign.lhs);
    const bool slot_holds_pointer =
        slot == nullptr || slot->is_pointer() || slot->is_array();
    if (slot_holds_pointer &&
        oracle_.is_foreign_pointer_value(assign.rhs.get())) {
      impure(assign.loc, "stores a caller/global pointer into local "
                         "storage (writes through it would be untrackable)");
    }
  }

  void scan_write(const Expr& lhs, SourceLocation loc) {
    const Symbol* root = scope_.lvalue_root(lhs);
    if (root == nullptr) {
      impure(loc, "has an assignment target the analysis cannot resolve");
      return;
    }
    const LvalueShape shape = lvalue_shape(lhs);
    switch (root->kind) {
      case SymbolKind::Global:
        summary_.writes_global = true;
        impure(loc, "writes to global '" + root->name + "'");
        return;
      case SymbolKind::Unknown:
        summary_.writes_global = true;
        impure(loc, "writes to undeclared/external '" + root->name + "'");
        return;
      case SymbolKind::Function:
        impure(loc, "assigns to function '" + root->name + "'");
        return;
      case SymbolKind::Param:
        if (shape == LvalueShape::Through) {
          summary_.writes_through_param = true;
          impure(loc, "writes through parameter '" + root->name + "'");
        }
        // Bare: reassigning the by-value copy is invisible to the caller.
        return;
      case SymbolKind::Local:
        if (oracle_.is_static(root->name)) {
          impure(loc, "writes to static local '" + root->name +
                          "' (state persists across calls)");
          return;
        }
        if (shape == LvalueShape::Through &&
            oracle_.of(root->name) == Provenance::Foreign) {
          summary_.writes_unknown_pointer = true;
          impure(loc, "writes through pointer '" + root->name +
                          "' that may reference caller or global memory");
        }
        return;
    }
  }

  const FunctionDecl& fn_;
  const FunctionScopeInfo& scope_;
  const bool allow_malloc_free_;
  PointerOracle oracle_;
  EffectSummary summary_;
  std::set<const IdentExpr*> callee_idents_;
};

}  // namespace

const ExternEffect* extern_effect(const std::string& name) {
  static const std::map<std::string, ExternEffect> kDatabase = {
      {"memcpy", {ExternEffectKind::WritesArg0}},
      {"memmove", {ExternEffectKind::WritesArg0}},
      {"memset", {ExternEffectKind::WritesArg0}},
      {"snprintf", {ExternEffectKind::WritesArg0}},
      {"strcpy", {ExternEffectKind::WritesArg0}},
      {"strncpy", {ExternEffectKind::WritesArg0}},
      {"strcat", {ExternEffectKind::WritesArg0}},
      {"strncat", {ExternEffectKind::WritesArg0}},
      {"strlen", {ExternEffectKind::ReadOnly}},
      {"memcmp", {ExternEffectKind::ReadOnly}},
      {"memchr", {ExternEffectKind::ReadOnly}},
      {"strchr", {ExternEffectKind::ReadOnly}},
      {"strrchr", {ExternEffectKind::ReadOnly}},
      {"strncmp", {ExternEffectKind::ReadOnly}},
      {"strcspn", {ExternEffectKind::ReadOnly}},
      {"strspn", {ExternEffectKind::ReadOnly}},
      {"strstr", {ExternEffectKind::ReadOnly}},
      {"abs", {ExternEffectKind::ReadOnly}},
      {"labs", {ExternEffectKind::ReadOnly}},
      // math.h value functions: no pointer arguments at all, so modeling
      // them ReadOnly is trivially sound. They were already in the pure
      // seed hashset; listing them here makes the effect model explicit
      // and records them in EffectSummary::extern_calls for downstream
      // analyses (memoization, reporting).
      {"fmin", {ExternEffectKind::ReadOnly}},
      {"fmax", {ExternEffectKind::ReadOnly}},
      {"fabs", {ExternEffectKind::ReadOnly}},
      {"sqrt", {ExternEffectKind::ReadOnly}},
      {"fminf", {ExternEffectKind::ReadOnly}},
      {"fmaxf", {ExternEffectKind::ReadOnly}},
      {"fabsf", {ExternEffectKind::ReadOnly}},
      {"sqrtf", {ExternEffectKind::ReadOnly}},
      // ctype.h classifiers/converters: value in, value out. Sound under
      // the "C" locale assumption the chain already makes everywhere
      // (glibc implements them as table lookups; the chain never calls
      // setlocale, and emitted programs do not either).
      {"isalpha", {ExternEffectKind::ReadOnly}},
      {"isdigit", {ExternEffectKind::ReadOnly}},
      {"isspace", {ExternEffectKind::ReadOnly}},
      {"tolower", {ExternEffectKind::ReadOnly}},
      {"toupper", {ExternEffectKind::ReadOnly}},
      // Numeric parsers that only *read* their argument string. atoi/atol
      // on invalid input are UB per the standard, so errno is not a
      // concern.
      {"atoi", {ExternEffectKind::ReadOnly}},
      {"atol", {ExternEffectKind::ReadOnly}},
      // The strtol family writes through its endptr out-parameter and
      // nothing else, so it gets the WritesArg1 model: fine with a null
      // endptr or an &local, rejected when the end pointer could land in
      // caller or global memory. (Purity tolerates these; memoization
      // still rejects them as locale-sensitive — see memoizable.cpp.)
      {"strtol", {ExternEffectKind::WritesArg1}},
      {"strtoul", {ExternEffectKind::WritesArg1}},
      {"strtod", {ExternEffectKind::WritesArg1}},
      {"strtof", {ExternEffectKind::WritesArg1}},
  };
  const auto it = kDatabase.find(name);
  return it == kDatabase.end() ? nullptr : &it->second;
}

struct WritesArg0Oracle::Impl {
  Impl(const FunctionDecl& fn, const FunctionScopeInfo& scope)
      : oracle(fn, scope) {}
  PointerOracle oracle;
};

WritesArg0Oracle::WritesArg0Oracle(const FunctionDecl& fn,
                                   const FunctionScopeInfo& scope)
    : impl_(std::make_unique<Impl>(fn, scope)) {}

WritesArg0Oracle::~WritesArg0Oracle() = default;

std::string WritesArg0Oracle::violation(const CallExpr& call,
                                        const std::string& name) const {
  const ExternEffect* known = extern_effect(name);
  if (known != nullptr && known->kind == ExternEffectKind::WritesArg1) {
    return check_writes_arg1(impl_->oracle, call, name).reason;
  }
  return check_writes_arg0(impl_->oracle, call, name).reason;
}

EffectSummary compute_effects(const FunctionDecl& fn,
                              const FunctionScopeInfo& scope,
                              bool allow_malloc_free) {
  EffectSummary summary;
  summary.function = fn.name;
  if (!fn.is_definition()) {
    summary.pure_locally = false;
    summary.impurity_reason = "has no definition in this translation unit";
    summary.impurity_loc = fn.loc;
    return summary;
  }
  return EffectScanner(fn, scope, allow_malloc_free).run();
}

}  // namespace purec

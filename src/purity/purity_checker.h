// PC-CC: the paper's verification pass (§3.2). Checks that every function
// marked `pure` is side-effect free, and finds the for-loop nests that can
// be handed to the polyhedral transformer (SCoP candidates).
//
// Rules implemented (paper section in parentheses):
//  * a pure function may only call functions from the pure hashset, seeded
//    with side-effect-free C standard functions plus malloc/free (§3.2);
//  * pointer parameters of a pure function must be declared `pure`;
//  * writes to parameters (through pointers), globals, or any data declared
//    outside the function are errors (§3.2, Listing 4);
//  * pure pointers are single-assignment (§3.1);
//  * external pointers may only be captured through a `pure` cast into a
//    `pure` local pointer (§3.2, Listing 3);
//  * `free` may only release memory malloc'ed in the same function (§3.2);
//  * loop nests are SCoP candidates when all calls inside are pure; a pure
//    call argument that is also written in the nest is an error (§3.4,
//    Listing 5). Alias-based evasion (Listing 6) is deliberately NOT
//    detected — the paper documents this limitation and so do we.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ast/decl.h"
#include "sema/symbols.h"
#include "support/diagnostics.h"

namespace purec {

struct PurityOptions {
  /// Paper default: malloc/free are admitted to the hashset ("their
  /// side-effects do not affect other threads").
  bool allow_malloc_free = true;
  /// Paper default: a Listing-5 violation is a hard error. When false the
  /// loop is silently skipped instead (useful for exploratory tooling).
  bool listing5_violation_is_error = true;
  /// Unannotated functions assumed pure without verification, from the
  /// inference subsystem (--infer-pure). Seeded into the hashset so their
  /// call sites mark SCoPs and annotated callers may call them; the §3.2
  /// verifier still runs on every *declared* pure function.
  std::set<std::string> assume_pure;
  /// For assumed-pure functions: globals they transitively read (inference
  /// provenance). The Listing-5 rule treats these as implicit call
  /// arguments — a nest that writes one of them while calling the function
  /// is rejected, closing a hole annotation-only code leaves open via the
  /// pure-cast promise.
  std::map<std::string, std::set<std::string>> assumed_global_reads;
};

struct ScopCandidate {
  const FunctionDecl* function = nullptr;
  const ForStmt* loop = nullptr;  // outermost loop of the nest
  bool contains_calls = false;    // false = plain affine nest, no calls
};

struct PurityResult {
  /// All function names considered pure: seeded standard functions,
  /// declared-pure prototypes (trusted library functions), and verified
  /// definitions.
  std::set<std::string> pure_functions;
  /// Outermost for-loops eligible for #pragma scop / #pragma endscop.
  std::vector<ScopCandidate> scop_loops;

  [[nodiscard]] bool is_pure(const std::string& name) const {
    return pure_functions.count(name) != 0;
  }
};

/// The seed hashset: C standard functions without (thread-visible)
/// side-effects — sin, cos, log, sqrt, ... (§3.2).
[[nodiscard]] const std::set<std::string>& standard_pure_functions();

class PurityChecker {
 public:
  PurityChecker(const TranslationUnit& tu, const SymbolTable& symbols,
                DiagnosticEngine& diags, PurityOptions options = {});

  /// Runs verification + SCoP detection. Diagnostics carry the details;
  /// callers should treat `diags.has_errors()` as "chain must stop".
  [[nodiscard]] PurityResult check();

 private:
  void seed_pure_set();
  void verify_function(const FunctionDecl& fn);
  void detect_scops(const FunctionDecl& fn);

  const TranslationUnit& tu_;
  const SymbolTable& symbols_;
  DiagnosticEngine& diags_;
  PurityOptions options_;
  PurityResult result_;
};

/// Convenience: build symbols + run the checker.
[[nodiscard]] PurityResult check_purity(const TranslationUnit& tu,
                                        DiagnosticEngine& diags,
                                        PurityOptions options = {});

}  // namespace purec

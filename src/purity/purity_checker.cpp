#include "purity/purity_checker.h"

#include <functional>
#include <optional>

#include "ast/walk.h"
#include "purity/effects.h"

namespace purec {

const std::set<std::string>& standard_pure_functions() {
  static const std::set<std::string> kPure = {
      // math.h (double / float variants)
      "sin", "cos", "tan", "asin", "acos", "atan", "atan2", "sinh", "cosh",
      "tanh", "exp", "exp2", "expm1", "log", "log2", "log10", "log1p",
      "sqrt", "cbrt", "pow", "hypot", "fabs", "floor", "ceil", "round",
      "trunc", "fmod", "fmin", "fmax", "fma", "copysign",
      "sinf", "cosf", "tanf", "asinf", "acosf", "atanf", "atan2f", "expf",
      "logf", "log2f", "log10f", "sqrtf", "powf", "fabsf", "floorf",
      "ceilf", "roundf", "fmodf", "fminf", "fmaxf", "fmaf",
      // stdlib.h value functions
      "abs", "labs", "llabs", "div", "ldiv", "atoi", "atol", "atof",
      // ctype.h
      "isalpha", "isdigit", "isalnum", "isspace", "isupper", "islower",
      "toupper", "tolower",
      // string.h readers
      "strlen", "strcmp", "strncmp", "memcmp",
  };
  return kPure;
}

PurityChecker::PurityChecker(const TranslationUnit& tu,
                             const SymbolTable& symbols,
                             DiagnosticEngine& diags, PurityOptions options)
    : tu_(tu), symbols_(symbols), diags_(diags), options_(options) {}

void PurityChecker::seed_pure_set() {
  result_.pure_functions = standard_pure_functions();
  if (options_.allow_malloc_free) {
    // Not strictly side-effect free, but their effects are invisible to
    // other threads (§3.2). This seeding is also what makes the paper's
    // matmul init loop accidentally parallelizable (§4.3.1).
    result_.pure_functions.insert("malloc");
    result_.pure_functions.insert("free");
    result_.pure_functions.insert("calloc");
  }
  // Every declared-pure function joins the set up front so that mutual
  // recursion between pure functions verifies ("including itself").
  for (const FunctionDecl* fn : tu_.functions()) {
    if (fn->is_pure) result_.pure_functions.insert(fn->name);
  }
  // Inference-provided names (--infer-pure): trusted without the keyword.
  result_.pure_functions.insert(options_.assume_pure.begin(),
                                options_.assume_pure.end());
}

PurityResult PurityChecker::check() {
  result_ = PurityResult{};
  seed_pure_set();
  for (const FunctionDecl* fn : tu_.functions()) {
    if (fn->is_pure && fn->is_definition()) verify_function(*fn);
  }
  for (const FunctionDecl* fn : tu_.functions()) {
    if (fn->is_definition()) detect_scops(*fn);
  }
  return result_;
}

namespace {

/// True if the expression is (possibly under casts) a call to `name`.
[[nodiscard]] bool is_call_to(const Expr* e, std::string_view name) {
  const auto* call = expr_cast<CallExpr>(strip_casts(e));
  return call != nullptr && call->callee_name() == name;
}

/// True if the expression carries a `pure` cast at any level.
[[nodiscard]] bool has_pure_cast(const Expr* e) {
  while (const auto* cast = expr_cast<CastExpr>(e)) {
    if (cast->target_type->any_level_pure()) return true;
    e = cast->operand.get();
  }
  return false;
}

/// Verifier for one pure function definition.
class FunctionVerifier {
 public:
  FunctionVerifier(const FunctionDecl& fn, const FunctionScopeInfo& scope,
                   const std::set<std::string>& pure_set,
                   DiagnosticEngine& diags)
      : fn_(fn), scope_(scope), pure_set_(pure_set), diags_(diags) {}

  void run() {
    check_parameters();
    collect_locals();
    for_each_stmt(*fn_.body, [this](const Stmt& s) { check_stmt(s); });
    for_each_expr(*fn_.body, [this](const Expr& e) { check_expr(e); });
  }

 private:
  void error(SourceLocation loc, std::string message) {
    diags_.error(loc, "purity", "in pure function '" + fn_.name +
                                    "': " + std::move(message));
  }

  void check_parameters() {
    for (const ParamDecl& p : fn_.params) {
      if (p.type->is_pointer() && !p.type->any_level_pure()) {
        error(p.loc, "pointer parameter '" + p.name +
                         "' must be declared pure (a pure function may not "
                         "receive writable external memory)");
      }
    }
  }

  /// First pass over declarations: remember pure-pointer locals (for the
  /// single-assignment rule) and malloc'ed locals (for the free rule).
  void collect_locals() {
    for_each_stmt(*fn_.body, [this](const Stmt& s) {
      const auto* decl = stmt_cast<DeclStmt>(&s);
      if (decl == nullptr) return;
      for (const VarDecl& d : decl->decls) {
        if (d.type->is_pointer() && d.type->any_level_pure() && d.init) {
          pure_ptr_assignments_[d.name] += 1;
        }
        if (d.init && is_call_to(d.init.get(), "malloc")) {
          malloced_locals_.insert(d.name);
        }
        if (d.init && is_call_to(d.init.get(), "calloc")) {
          malloced_locals_.insert(d.name);
        }
      }
    });
  }

  void check_stmt(const Stmt& s) {
    const auto* decl = stmt_cast<DeclStmt>(&s);
    if (decl == nullptr) return;
    for (const VarDecl& d : decl->decls) {
      if (d.is_static) {
        error(d.loc, "static local '" + d.name +
                         "' keeps state across calls (a pure function "
                         "may not have persistent state)");
      }
      if (d.init) check_capture(d.name, d.type, d.init.get(), d.loc);
    }
  }

  void check_expr(const Expr& e) {
    if (const auto* call = expr_cast<CallExpr>(&e)) {
      check_call(*call);
      return;
    }
    if (const auto* assign = expr_cast<AssignExpr>(&e)) {
      check_write(*assign->lhs, assign->loc);
      if (assign->op == AssignOp::Assign) {
        check_pointer_assignment(*assign);
      }
      return;
    }
    if (const auto* unary = expr_cast<UnaryExpr>(&e)) {
      if (unary->op == UnaryOp::PreInc || unary->op == UnaryOp::PreDec ||
          unary->op == UnaryOp::PostInc || unary->op == UnaryOp::PostDec) {
        check_write(*unary->operand, unary->loc);
      }
      return;
    }
  }

  void check_call(const CallExpr& call) {
    const std::string name = call.callee_name();
    if (name.empty()) {
      error(call.loc, "indirect calls are not allowed in pure functions");
      return;
    }
    if (pure_set_.count(name) == 0) {
      // The extern effect database (shared with inference) models some
      // libc routines beyond the seed hashset: a ReadOnly extern
      // (strchr, strncmp, ...) writes nothing, so a verified-pure body
      // may call it. A writing extern (memcpy/memset via WritesArg0,
      // strtol/strtod via WritesArg1) is held to the same provenance
      // standard inference applies — harmless exactly when its
      // destination provably targets function-local storage — so
      // annotated and keyword-free twins agree.
      const ExternEffect* known = extern_effect(name);
      if (known != nullptr && known->kind == ExternEffectKind::ReadOnly) {
        return;
      }
      if (known != nullptr && (known->kind == ExternEffectKind::WritesArg0 ||
                               known->kind == ExternEffectKind::WritesArg1)) {
        if (!writes_arg0_oracle_) {
          writes_arg0_oracle_.emplace(fn_, scope_);
        }
        std::string violation = writes_arg0_oracle_->violation(call, name);
        if (!violation.empty()) error(call.loc, std::move(violation));
        return;
      }
      error(call.loc, "call to impure function '" + name + "'");
      return;
    }
    if (name == "free") check_free(call);
  }

  void check_free(const CallExpr& call) {
    if (call.args.size() != 1) {
      error(call.loc, "free() takes exactly one argument");
      return;
    }
    const Expr* arg = strip_casts(call.args[0].get());
    const auto* ident = expr_cast<IdentExpr>(arg);
    if (ident == nullptr || malloced_locals_.count(ident->name) == 0) {
      error(call.loc,
            "free() may only release memory allocated by malloc in the "
            "same pure function");
    }
  }

  /// Write-target legality (assignments and ++/--).
  void check_write(const Expr& lhs, SourceLocation loc) {
    const Symbol* root = scope_.lvalue_root(lhs);
    if (root == nullptr) {
      error(loc, "cannot verify assignment target (unsupported lvalue)");
      return;
    }
    const LvalueShape shape = lvalue_shape(lhs);
    switch (root->kind) {
      case SymbolKind::Param: {
        if (shape == LvalueShape::Through) {
          error(loc, "write through parameter '" + root->name +
                         "' modifies caller-owned memory");
          return;
        }
        // Reassigning the (by-value) parameter variable itself: harmless
        // for scalars, but a pure pointer is single-assignment.
        if (root->type && root->type->is_pointer() &&
            root->type->any_level_pure()) {
          error(loc, "pure pointer parameter '" + root->name +
                         "' cannot be reassigned (single assignment)");
        }
        return;
      }
      case SymbolKind::Global:
        error(loc, "assignment to global '" + root->name +
                       "' is a side-effect");
        return;
      case SymbolKind::Unknown:
        error(loc, "assignment to undeclared/external '" + root->name + "'");
        return;
      case SymbolKind::Function:
        error(loc, "cannot assign to function '" + root->name + "'");
        return;
      case SymbolKind::Local: {
        if (root->type && root->type->is_pointer() &&
            root->type->any_level_pure()) {
          if (shape == LvalueShape::Through) {
            error(loc, "write through pure pointer '" + root->name + "'");
            return;
          }
          // Single-assignment bookkeeping (declaration init counted in
          // collect_locals()).
          if (++pure_ptr_assignments_[root->name] > 1) {
            error(loc, "pure pointer '" + root->name +
                           "' assigned more than once");
          }
        }
        return;
      }
    }
  }

  /// Listing 3/4 rule for `lhs = rhs` where both sides are pointers:
  /// capturing external data requires a pure cast into a pure local.
  void check_pointer_assignment(const AssignExpr& assign) {
    const auto* lhs_ident =
        expr_cast<IdentExpr>(strip_casts(assign.lhs.get()));
    if (lhs_ident == nullptr) return;
    const Symbol* lhs_sym = scope_.resolve(*lhs_ident);
    if (lhs_sym == nullptr || lhs_sym->kind != SymbolKind::Local) return;
    if (!lhs_sym->type || !lhs_sym->type->is_pointer()) return;
    check_capture(lhs_sym->name, lhs_sym->type, assign.rhs.get(),
                  assign.loc);
  }

  /// Shared by declarations-with-init and plain assignments: is it legal
  /// for local pointer `name` (of `type`) to capture `rhs`?
  void check_capture(const std::string& name, const TypePtr& type,
                     const Expr* rhs, SourceLocation loc) {
    if (!type->is_pointer()) return;
    const bool lhs_pure = type->any_level_pure();
    const Expr* core = strip_casts(rhs);

    // Fresh memory from malloc/calloc: assignable to any local pointer.
    if (const auto* call = expr_cast<CallExpr>(core)) {
      const std::string callee = call->callee_name();
      if (callee == "malloc" || callee == "calloc") {
        malloced_locals_.insert(name);
        return;
      }
      // Result of another pure function: must be captured pure-cast into a
      // pure pointer (Listing 2, extPtr3).
      if (!lhs_pure || !has_pure_cast(rhs)) {
        error(loc, "result of pure function '" + callee +
                       "' must be captured via (pure T*) cast into a pure "
                       "pointer");
      }
      return;
    }

    const Symbol* root = scope_.lvalue_root(*core);
    if (root == nullptr) return;
    switch (root->kind) {
      case SymbolKind::Local:
        // Local-to-local pointer flow carries no external capability.
        // Propagate malloc provenance so free(alias) verifies.
        if (malloced_locals_.count(root->name) != 0 &&
            lvalue_shape(*core) == LvalueShape::Bare) {
          malloced_locals_.insert(name);
        }
        return;
      case SymbolKind::Param: {
        // Pure param -> pure local: fine without a cast (Listing 2, ptr).
        if (!lhs_pure) {
          error(loc, "parameter '" + root->name +
                         "' may only be captured by a pure pointer");
        }
        return;
      }
      case SymbolKind::Global:
      case SymbolKind::Unknown: {
        if (!lhs_pure || !has_pure_cast(rhs)) {
          error(loc, "external pointer '" + root->name +
                         "' requires a (pure T*) cast into a pure pointer "
                         "(Listing 3 rule)");
        }
        return;
      }
      case SymbolKind::Function:
        error(loc, "cannot capture function '" + root->name +
                       "' as a data pointer");
        return;
    }
  }

  const FunctionDecl& fn_;
  const FunctionScopeInfo& scope_;
  const std::set<std::string>& pure_set_;
  DiagnosticEngine& diags_;
  std::map<std::string, int> pure_ptr_assignments_;
  std::set<std::string> malloced_locals_;
  /// Built on the first writing extern call (most bodies have none;
  /// construction walks the whole body for pointer provenance).
  std::optional<WritesArg0Oracle> writes_arg0_oracle_;
};

}  // namespace

void PurityChecker::verify_function(const FunctionDecl& fn) {
  const FunctionScopeInfo* scope = symbols_.scope_for(fn);
  if (scope == nullptr) return;
  FunctionVerifier verifier(fn, *scope, result_.pure_functions, diags_);
  verifier.run();
}

namespace {

/// Collects argument root names of pure-function calls, and write-target
/// root names, over one loop nest. Name-based on purpose: §3.4 documents
/// that aliases evade this check (Listing 6).
class ScopScanner {
 public:
  ScopScanner(const FunctionScopeInfo& scope,
              const std::set<std::string>& pure_set,
              const std::map<std::string, std::set<std::string>>&
                  assumed_global_reads)
      : scope_(scope),
        pure_set_(pure_set),
        assumed_global_reads_(assumed_global_reads) {}

  struct Listing5Violation {
    std::string name;
    SourceLocation loc;
    /// The conflict came through an inferred function's global read, not a
    /// literal call argument.
    bool implicit_global = false;
  };

  struct NestReport {
    bool all_calls_pure = true;
    bool contains_calls = false;
    std::vector<Listing5Violation> listing5_violations;
  };

  [[nodiscard]] NestReport scan(const ForStmt& loop) {
    NestReport report;
    std::set<std::string> call_arg_roots;
    std::set<std::string> implicit_global_roots;
    std::set<std::string> write_roots;
    std::set<std::string> global_writes;

    const auto record_write = [&](const Expr& lhs) {
      const Symbol* root = scope_.lvalue_root(lhs);
      if (root == nullptr) return;
      const bool is_global = root->kind == SymbolKind::Global ||
                             root->kind == SymbolKind::Unknown;
      const LvalueShape shape = lvalue_shape(lhs);
      if (shape == LvalueShape::Through) {
        write_roots.insert(root->name);
        // The inference-provenance rule matches globals only, so a local
        // that shadows a global's name cannot trigger it.
        if (is_global) global_writes.insert(root->name);
      } else if (shape == LvalueShape::Bare && is_global) {
        // Only the inference-provenance rule below sees these; the
        // paper's argument rule stays name+Through based (its alias
        // holes — Listing 6, pointer swaps — are pinned behavior).
        global_writes.insert(root->name);
      }
    };

    for_each_expr(static_cast<const Stmt&>(loop), [&](const Expr& e) {
      if (const auto* call = expr_cast<CallExpr>(&e)) {
        report.contains_calls = true;
        const std::string name = call->callee_name();
        if (name.empty() || pure_set_.count(name) == 0) {
          report.all_calls_pure = false;
          return;
        }
        for (const ExprPtr& arg : call->args) {
          collect_pointer_roots(*arg, call_arg_roots);
        }
        // Inference provenance: globals the callee reads behave like
        // arguments of the call.
        const auto reads = assumed_global_reads_.find(name);
        if (reads != assumed_global_reads_.end()) {
          implicit_global_roots.insert(reads->second.begin(),
                                       reads->second.end());
        }
        return;
      }
      if (const auto* assign = expr_cast<AssignExpr>(&e)) {
        record_write(*assign->lhs);
        return;
      }
      if (const auto* unary = expr_cast<UnaryExpr>(&e)) {
        // a[i]++ is a write like a[i] = a[i] + 1: §3.4's "written in the
        // same loop nest" includes increments. (Deliberate tightening
        // over the seed, which only saw AssignExpr; pinned by test.)
        if (unary->op == UnaryOp::PreInc || unary->op == UnaryOp::PreDec ||
            unary->op == UnaryOp::PostInc ||
            unary->op == UnaryOp::PostDec) {
          record_write(*unary->operand);
        }
        return;
      }
    });

    for (const std::string& w : write_roots) {
      if (call_arg_roots.count(w) != 0) {
        report.listing5_violations.push_back({w, loop.loc, false});
      }
    }
    for (const std::string& w : global_writes) {
      if (call_arg_roots.count(w) == 0 &&
          implicit_global_roots.count(w) != 0) {
        report.listing5_violations.push_back({w, loop.loc, true});
      }
    }
    return report;
  }

 private:
  /// Adds the names of pointer/array variables appearing in a call argument.
  void collect_pointer_roots(const Expr& arg, std::set<std::string>& out) {
    for_each_expr(arg, [&](const Expr& e) {
      const auto* ident = expr_cast<IdentExpr>(&e);
      if (ident == nullptr) return;
      const Symbol* sym = scope_.resolve(*ident);
      if (sym == nullptr) return;
      if (sym->type && (sym->type->is_pointer() || sym->type->is_array())) {
        out.insert(sym->name);
      }
    });
  }

  const FunctionScopeInfo& scope_;
  const std::set<std::string>& pure_set_;
  const std::map<std::string, std::set<std::string>>& assumed_global_reads_;
};

}  // namespace

void PurityChecker::detect_scops(const FunctionDecl& fn) {
  const FunctionScopeInfo* scope = symbols_.scope_for(fn);
  if (scope == nullptr) return;
  ScopScanner scanner(*scope, result_.pure_functions,
                      options_.assumed_global_reads);

  // Walk statements; at each outermost for-loop decide: mark, recurse, or
  // error. (An inner loop of a rejected nest may still be markable.)
  std::function<void(const Stmt&, bool)> walk = [&](const Stmt& s,
                                                    bool inside_marked) {
    if (const auto* loop = stmt_cast<ForStmt>(&s)) {
      if (!inside_marked) {
        const ScopScanner::NestReport report = scanner.scan(*loop);
        if (report.all_calls_pure && report.listing5_violations.empty()) {
          result_.scop_loops.push_back(
              ScopCandidate{&fn, loop, report.contains_calls});
          inside_marked = true;
        } else if (!report.listing5_violations.empty()) {
          for (const auto& v : report.listing5_violations) {
            // Implicit-global roots may be scalars, not arrays.
            const std::string what =
                v.implicit_global
                    ? "global '" + v.name +
                          "' is read by an inferred-pure function called "
                          "in the nest and written in the same loop nest "
                          "(Listing 5 rule, inference provenance)"
                    : "array '" + v.name +
                          "' is passed to a pure function and written "
                          "in the same loop nest (Listing 5 rule)";
            if (options_.listing5_violation_is_error) {
              diags_.error(v.loc, "purity", what);
            } else {
              diags_.warning(v.loc, "purity",
                             "skipping loop: '" + v.name +
                                 "' is both pure-call " +
                                 (v.implicit_global ? "global read"
                                                    : "argument") +
                                 " and write target");
            }
          }
          inside_marked = true;  // do not mark inner pieces of a bad nest
        }
        // else: impure calls present -> fall through and try inner loops.
      }
      if (loop->body) walk(*loop->body, inside_marked);
      return;
    }
    switch (s.kind()) {
      case StmtKind::Compound:
        for (const StmtPtr& child : static_cast<const CompoundStmt&>(s).stmts)
          walk(*child, inside_marked);
        return;
      case StmtKind::If: {
        const auto& n = static_cast<const IfStmt&>(s);
        walk(*n.then_stmt, inside_marked);
        if (n.else_stmt) walk(*n.else_stmt, inside_marked);
        return;
      }
      case StmtKind::While:
        walk(*static_cast<const WhileStmt&>(s).body, inside_marked);
        return;
      case StmtKind::DoWhile:
        walk(*static_cast<const DoWhileStmt&>(s).body, inside_marked);
        return;
      default:
        return;
    }
  };
  walk(*fn.body, false);
}

PurityResult check_purity(const TranslationUnit& tu, DiagnosticEngine& diags,
                          PurityOptions options) {
  const SymbolTable symbols = SymbolTable::build(tu, diags);
  PurityChecker checker(tu, symbols, diags, options);
  return checker.check();
}

}  // namespace purec

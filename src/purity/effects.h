// Per-function effect summaries for purity inference.
//
// Where the paper's verifier (§3.2) checks *declared* pure functions
// against the keyword's rules, this pass looks at an arbitrary unannotated
// definition and answers: what could this body do that another thread
// might observe? The summary is intraprocedural — callees are recorded by
// name and resolved by the fixpoint in inference.cpp.
//
// The write rules are deliberately conservative. A store is locally
// harmless only when its target provably lives in function-local storage:
// a local scalar/array, or a pointer whose every assignment source is
// fresh (malloc/calloc) or another local storage root. Anything that might
// reach caller-owned or global memory is an effect.
#pragma once

#include <memory>
#include <set>
#include <string>

#include "ast/decl.h"
#include "sema/symbols.h"
#include "support/source_location.h"

namespace purec {

/// Effect model of a known external (libc) function — the growth path
/// beyond the all-pure seed hashset: inference no longer has to pessimize
/// every extern it recognizes.
enum class ExternEffectKind : std::uint8_t {
  /// Reads its pointer arguments, writes nothing (strlen, memcmp).
  ReadOnly,
  /// Writes through argument 0 only — a bounded, caller-visible-iff-the-
  /// destination-is-foreign write (memcpy, memset, memmove, snprintf).
  /// Locally harmless when arg0 provably targets function-local storage.
  WritesArg0,
  /// Writes through argument 1 only — the strtol/strtod end-pointer
  /// out-parameter. Harmless when endptr is a null constant (no write
  /// happens) or provably targets function-local storage (&local, a
  /// local char**). errno on range errors is outside the modeled
  /// dialect: purec-emitted programs never read errno, and a body that
  /// did would be rejected as an unknown-global read.
  WritesArg1,
};

struct ExternEffect {
  ExternEffectKind kind;
};

/// Database lookup; nullptr when the function is not modeled (callers
/// fall back to the pessimistic unknown-external rule).
[[nodiscard]] const ExternEffect* extern_effect(const std::string& name);

/// Destination-provenance oracle for writing externs (WritesArg0 and
/// WritesArg1), shared with the declared-pure verifier (§3.2): answers
/// whether a memcpy/memset/strtol/... call inside `fn` provably writes
/// only into function-local storage. Backed by the same provenance
/// reasoning compute_effects uses, so a body inference would accept
/// verifies identically when it carries the `pure` keyword.
class WritesArg0Oracle {
 public:
  WritesArg0Oracle(const FunctionDecl& fn, const FunctionScopeInfo& scope);
  ~WritesArg0Oracle();
  WritesArg0Oracle(const WritesArg0Oracle&) = delete;
  WritesArg0Oracle& operator=(const WritesArg0Oracle&) = delete;

  /// Empty when the call's destination provably targets local storage;
  /// otherwise the rejection reason (same wording inference reports).
  [[nodiscard]] std::string violation(const CallExpr& call,
                                      const std::string& name) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

struct EffectSummary {
  std::string function;

  /// No intraprocedural side-effects; call edges still pending.
  bool pure_locally = true;
  /// First local impurity, human-readable ("writes to global 'counter'").
  /// Empty when pure_locally.
  std::string impurity_reason;
  SourceLocation impurity_loc;

  /// Named callees (resolved against the call graph by inference).
  std::set<std::string> callees;
  /// Calls through a function pointer: unresolvable, pessimized.
  bool has_indirect_call = false;

  /// Globals the body reads directly. For an inferred-pure function these
  /// become implicit call arguments in the Listing-5 scop rule: a loop
  /// that writes one of them while calling the function is rejected.
  std::set<std::string> global_reads;

  /// Database-modeled externs the body calls (resolved here, never
  /// pessimized callee edges). Downstream analyses with stricter needs
  /// than purity consult this — memoization rejects locale-sensitive
  /// formatting (snprintf) that purity tolerates.
  std::set<std::string> extern_calls;

  /// Informational classification bits (diagnostics, tests).
  bool writes_global = false;
  bool writes_through_param = false;
  bool writes_unknown_pointer = false;
  bool allocates = false;
  bool frees = false;
};

/// Computes the summary for one function definition. `scope` must be the
/// symbol info for `fn`. Honors PurityOptions::allow_malloc_free via
/// `allow_malloc_free` (when false, malloc/calloc/free count as external
/// callees instead of local allocation).
[[nodiscard]] EffectSummary compute_effects(const FunctionDecl& fn,
                                            const FunctionScopeInfo& scope,
                                            bool allow_malloc_free = true);

}  // namespace purec

// Interprocedural purity inference: turns the paper's `pure` keyword from
// a prerequisite into a checked hint.
//
// The verifier (§3.2) only ever looks at functions the programmer marked
// `pure`; everything unannotated is opaque and kills the SCoP. This pass
// instead *infers* purity for unannotated definitions: per-function effect
// summaries (effects.h) are propagated over the call graph (callgraph.h)
// with an optimistic, SCC-aware fixpoint — a cycle of functions is pure
// unless some member has a local effect or escapes the cycle into an
// impure/unknown callee. External callees are pessimized unless they are
// in the standard seed hashset or carry a trusted `pure` prototype.
//
// Every rejected function keeps a human-readable reason ("writes to
// global 'counter'", "calls unknown external function 'printf'") so the
// CLI and tests can show inference provenance.
//
// Annotated functions are axiomatically pure here — the §3.2 verifier
// remains the authority on them (annotation + verifier win; inference
// never downgrades a declared-pure function).
#pragma once

#include <map>
#include <set>
#include <string>

#include "purity/purity_checker.h"
#include "sema/symbols.h"

namespace purec {

struct FunctionPurity {
  std::string name;
  bool pure = false;
  /// Declared `pure` (definition or trusted prototype): the verifier's
  /// territory, not counted as inferred.
  bool annotated = false;
  /// Pure by inference alone: unannotated definition that survived the
  /// fixpoint. These names seed the checker's hashset under --infer-pure.
  bool inferred = false;
  /// Why the function is impure; empty when pure.
  std::string reason;
  SourceLocation loc;
  /// Globals the function reads, transitively through inferred callees.
  /// Used as implicit call arguments by the Listing-5 scop rule.
  std::set<std::string> global_reads;
};

struct InferenceResult {
  /// Every function that has a definition in the unit.
  std::map<std::string, FunctionPurity> functions;
  /// Names inferred pure (pure && !annotated), ready to seed
  /// PurityOptions::assume_pure.
  std::set<std::string> inferred_pure;

  /// Transitive global-read sets of the inferred functions, ready for
  /// PurityOptions::assumed_global_reads.
  [[nodiscard]] std::map<std::string, std::set<std::string>>
  inferred_global_reads() const;

  /// One-line provenance, e.g.
  /// "inferred pure: dot, mult; rejected: main (calls unknown external
  ///  function 'printf')".
  [[nodiscard]] std::string summary() const;
};

/// Runs inference over every definition in `tu`. `options` supplies
/// allow_malloc_free (the §3.2 seeding rule).
[[nodiscard]] InferenceResult infer_purity(const TranslationUnit& tu,
                                           const SymbolTable& symbols,
                                           const PurityOptions& options = {});

}  // namespace purec

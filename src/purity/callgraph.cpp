#include "purity/callgraph.h"

#include <algorithm>

#include "ast/walk.h"

namespace purec {

CallGraph CallGraph::build(const TranslationUnit& tu) {
  CallGraph graph;
  for (const FunctionDecl* fn : tu.functions()) {
    CallGraphNode& node = graph.nodes_[fn->name];
    node.name = fn->name;
    if (node.declaration == nullptr) node.declaration = fn;
    if (fn->is_definition()) node.definition = fn;
  }
  for (const FunctionDecl* fn : tu.functions()) {
    if (!fn->is_definition()) continue;
    CallGraphNode& node = graph.nodes_[fn->name];
    for_each_call(*fn->body, [&](const CallExpr& call) {
      const std::string callee = call.callee_name();
      if (callee.empty()) return;  // indirect: effects.cpp pessimizes
      node.callees.insert(callee);
      // Materialize the callee node even when the unit never declares it
      // (extern-by-use, like printf without a prototype).
      CallGraphNode& target = graph.nodes_[callee];
      if (target.name.empty()) target.name = callee;
    });
  }
  return graph;
}

namespace {

/// Iterative Tarjan over the defined subgraph. Emits SCCs in
/// callees-before-callers order (an SCC is completed only after every SCC
/// it reaches has been completed).
class TarjanScc {
 public:
  explicit TarjanScc(const std::map<std::string, CallGraphNode>& nodes)
      : nodes_(nodes) {}

  [[nodiscard]] std::vector<std::vector<const CallGraphNode*>> run() {
    for (const auto& [name, node] : nodes_) {
      if (node.is_external()) continue;
      if (index_.count(name) == 0) strongconnect(&node);
    }
    return std::move(components_);
  }

 private:
  struct Frame {
    const CallGraphNode* node;
    std::set<std::string>::const_iterator next;
  };

  void strongconnect(const CallGraphNode* root) {
    std::vector<Frame> frames;
    push_node(root, frames);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const CallGraphNode* v = frame.node;
      bool descended = false;
      while (frame.next != v->callees.end()) {
        const std::string& callee_name = *frame.next++;
        const auto it = nodes_.find(callee_name);
        if (it == nodes_.end() || it->second.is_external()) continue;
        const CallGraphNode* w = &it->second;
        if (index_.count(w->name) == 0) {
          push_node(w, frames);
          descended = true;
          break;
        }
        if (on_stack_.count(w->name) != 0) {
          lowlink_[v->name] = std::min(lowlink_[v->name], index_[w->name]);
        }
      }
      if (descended) continue;
      if (lowlink_[v->name] == index_[v->name]) pop_component(v);
      frames.pop_back();
      if (!frames.empty()) {
        const std::string& parent = frames.back().node->name;
        lowlink_[parent] = std::min(lowlink_[parent], lowlink_[v->name]);
      }
    }
  }

  void push_node(const CallGraphNode* node, std::vector<Frame>& frames) {
    index_[node->name] = counter_;
    lowlink_[node->name] = counter_;
    ++counter_;
    stack_.push_back(node);
    on_stack_.insert(node->name);
    frames.push_back(Frame{node, node->callees.begin()});
  }

  void pop_component(const CallGraphNode* root) {
    std::vector<const CallGraphNode*> component;
    for (;;) {
      const CallGraphNode* w = stack_.back();
      stack_.pop_back();
      on_stack_.erase(w->name);
      component.push_back(w);
      if (w == root) break;
    }
    // Deterministic member order regardless of DFS entry point.
    std::sort(component.begin(), component.end(),
              [](const CallGraphNode* a, const CallGraphNode* b) {
                return a->name < b->name;
              });
    components_.push_back(std::move(component));
  }

  const std::map<std::string, CallGraphNode>& nodes_;
  std::map<std::string, int> index_;
  std::map<std::string, int> lowlink_;
  std::set<std::string> on_stack_;
  std::vector<const CallGraphNode*> stack_;
  std::vector<std::vector<const CallGraphNode*>> components_;
  int counter_ = 0;
};

}  // namespace

std::vector<std::vector<const CallGraphNode*>> CallGraph::sccs() const {
  return TarjanScc(nodes_).run();
}

}  // namespace purec

#include "purity/inference.h"

#include <vector>

#include "purity/callgraph.h"
#include "purity/effects.h"

namespace purec {

namespace {

/// Purity of a callee as seen from outside its SCC.
struct CalleeView {
  bool pure = false;
  /// Citable cause when impure: "'g' writes to global 'c'".
  std::string cause;
  const std::set<std::string>* global_reads = nullptr;  // null = empty
};

class InferenceEngine {
 public:
  InferenceEngine(const TranslationUnit& tu, const SymbolTable& symbols,
                  const PurityOptions& options)
      : symbols_(symbols), options_(options), graph_(CallGraph::build(tu)) {}

  [[nodiscard]] InferenceResult run() {
    for (const std::vector<const CallGraphNode*>& scc : graph_.sccs()) {
      process_scc(scc);
    }
    for (auto& [name, purity] : result_.functions) {
      if (purity.inferred) result_.inferred_pure.insert(name);
    }
    return std::move(result_);
  }

 private:
  [[nodiscard]] bool is_seeded(const std::string& name) const {
    if (standard_pure_functions().count(name) != 0) return true;
    return options_.allow_malloc_free &&
           (name == "malloc" || name == "calloc" || name == "free");
  }

  [[nodiscard]] static bool is_annotated(const CallGraphNode& node) {
    return (node.declaration != nullptr && node.declaration->is_pure) ||
           (node.definition != nullptr && node.definition->is_pure);
  }

  [[nodiscard]] CalleeView view_of(const std::string& callee) const {
    const CallGraphNode* node = graph_.node(callee);
    // A defined function we already processed (callees-first order).
    if (node != nullptr && !node->is_external()) {
      const auto it = result_.functions.find(callee);
      if (it != result_.functions.end()) {
        const FunctionPurity& p = it->second;
        CalleeView view;
        view.pure = p.pure;
        view.global_reads = &p.global_reads;
        if (!p.pure) {
          // Cite the root cause, not the propagation chain.
          view.cause = p.reason.rfind("calls impure", 0) == 0 ||
                               p.reason.rfind("calls unknown", 0) == 0
                           ? "transitively " + p.reason
                           : "'" + callee + "' " + p.reason;
        }
        return view;
      }
      // In-flight: same SCC, handled by the caller. Not reached here.
    }
    if (node != nullptr && is_annotated(*node)) {
      return CalleeView{true, {}, nullptr};  // trusted `pure` prototype
    }
    if (is_seeded(callee)) return CalleeView{true, {}, nullptr};
    return CalleeView{
        false, "calls unknown external function '" + callee + "'", nullptr};
  }

  void process_scc(const std::vector<const CallGraphNode*>& scc) {
    std::set<std::string> members;
    for (const CallGraphNode* node : scc) members.insert(node->name);

    // Annotated members are the verifier's business: axiomatically pure,
    // never "inferred", and their bodies are not effect-scanned.
    std::vector<const CallGraphNode*> candidates;
    for (const CallGraphNode* node : scc) {
      if (is_annotated(*node)) {
        FunctionPurity& p = result_.functions[node->name];
        p.name = node->name;
        p.pure = true;
        p.annotated = true;
        p.loc = node->definition->loc;
      } else {
        candidates.push_back(node);
      }
    }

    // An SCC is pure as a unit: every member transitively calls every
    // other, so one impure member (or one impure escape edge) sinks all
    // unannotated members.
    std::string verdict;  // empty = pure
    SourceLocation verdict_loc;
    std::string verdict_member;
    std::set<std::string> scc_global_reads;

    for (const CallGraphNode* node : candidates) {
      const FunctionScopeInfo* scope = symbols_.scope_for(*node->definition);
      if (scope == nullptr) {
        verdict = "has no resolvable symbol scope";
        verdict_loc = node->definition->loc;
        verdict_member = node->name;
        break;
      }
      EffectSummary effects = compute_effects(*node->definition, *scope,
                                              options_.allow_malloc_free);
      if (!effects.pure_locally) {
        verdict = effects.impurity_reason;
        verdict_loc = effects.impurity_loc;
        verdict_member = node->name;
        break;
      }
      scc_global_reads.insert(effects.global_reads.begin(),
                              effects.global_reads.end());
      for (const std::string& callee : effects.callees) {
        if (members.count(callee) != 0) continue;  // optimistic intra-SCC
        const CalleeView view = view_of(callee);
        if (!view.pure) {
          verdict = view.cause.rfind("calls unknown", 0) == 0 ||
                            view.cause.rfind("transitively", 0) == 0
                        ? view.cause
                        : "calls impure function '" + callee + "' (" +
                              view.cause + ")";
          verdict_loc = node->definition->loc;
          verdict_member = node->name;
          break;
        }
        if (view.global_reads != nullptr) {
          scc_global_reads.insert(view.global_reads->begin(),
                                  view.global_reads->end());
        }
      }
      if (!verdict.empty()) break;
    }

    for (const CallGraphNode* node : candidates) {
      FunctionPurity& p = result_.functions[node->name];
      p.name = node->name;
      p.loc = node->definition->loc;
      if (verdict.empty()) {
        p.pure = true;
        p.inferred = true;
        p.global_reads = scc_global_reads;
      } else if (node->name == verdict_member) {
        p.reason = verdict;
        // Point at the offending construct, not just the definition.
        if (verdict_loc.valid()) p.loc = verdict_loc;
      } else {
        p.reason = "calls impure function '" + verdict_member + "' ('" +
                   verdict_member + "' " + verdict + ")";
      }
    }

    // Annotated members keep the paper's promise semantics for their OWN
    // body (pure casts are the programmer's word), but inference-derived
    // global reads must not be laundered through them: an annotated
    // wrapper around an inferred global-reading callee carries that
    // callee's read set, so the Listing-5 provenance rule still fires on
    // nests that call the wrapper.
    for (const CallGraphNode* node : scc) {
      if (!is_annotated(*node) || node->definition == nullptr) continue;
      FunctionPurity& p = result_.functions[node->name];
      if (verdict.empty()) {
        p.global_reads.insert(scc_global_reads.begin(),
                              scc_global_reads.end());
      }
      for (const std::string& callee : node->callees) {
        if (members.count(callee) != 0) continue;
        const CalleeView view = view_of(callee);
        if (view.pure && view.global_reads != nullptr) {
          p.global_reads.insert(view.global_reads->begin(),
                                view.global_reads->end());
        }
      }
    }
  }

  const SymbolTable& symbols_;
  const PurityOptions& options_;
  CallGraph graph_;
  InferenceResult result_;
};

}  // namespace

std::map<std::string, std::set<std::string>>
InferenceResult::inferred_global_reads() const {
  std::map<std::string, std::set<std::string>> reads;
  for (const auto& [name, purity] : functions) {
    // Annotated functions appear too when inference-derived reads flow
    // through them (wrapper around an inferred global-reading callee).
    if (purity.pure && !purity.global_reads.empty()) {
      reads[name] = purity.global_reads;
    }
  }
  return reads;
}

std::string InferenceResult::summary() const {
  std::string inferred;
  std::string rejected;
  for (const auto& [name, purity] : functions) {
    if (purity.inferred) {
      if (!inferred.empty()) inferred += ", ";
      inferred += name;
    } else if (!purity.pure) {
      if (!rejected.empty()) rejected += ", ";
      rejected += name + " (" + purity.reason + ")";
    }
  }
  std::string out = "inferred pure: " + (inferred.empty() ? "-" : inferred);
  if (!rejected.empty()) out += "; rejected: " + rejected;
  return out;
}

InferenceResult infer_purity(const TranslationUnit& tu,
                             const SymbolTable& symbols,
                             const PurityOptions& options) {
  return InferenceEngine(tu, symbols, options).run();
}

}  // namespace purec

// Tests of the full Fig. 1 compiler chain: stage artifacts, call
// substitution/reinsertion, pragma insertion, and the lowered final source.
#include <gtest/gtest.h>

#include "emit/c_printer.h"
#include "parser/parser.h"
#include "purity/purity_checker.h"
#include "transform/call_substitution.h"
#include "transform/pure_chain.h"
#include "test_sources.h"

namespace purec {
namespace {

TEST(Chain, MatmulRunsCleanly) {
  ChainArtifacts a = run_pure_chain(testsrc::kMatmul);
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
}

TEST(Chain, MatmulMarkedArtifactHasScopPragmas) {
  ChainArtifacts a = run_pure_chain(testsrc::kMatmul);
  ASSERT_TRUE(a.ok);
  EXPECT_NE(a.marked.find("#pragma scop"), std::string::npos);
  EXPECT_NE(a.marked.find("#pragma endscop"), std::string::npos);
  // Markers are an intermediate artifact only.
  EXPECT_EQ(a.final_source.find("#pragma scop"), std::string::npos);
}

TEST(Chain, MatmulSubstitutedArtifactHasPlaceholder) {
  ChainArtifacts a = run_pure_chain(testsrc::kMatmul);
  ASSERT_TRUE(a.ok);
  EXPECT_NE(a.substituted.find("tmpConst_dot_"), std::string::npos);
  // And the final source must NOT leak placeholders.
  EXPECT_EQ(a.final_source.find("tmpConst_"), std::string::npos)
      << a.final_source;
}

TEST(Chain, MatmulFinalSourceIsParallelizedAndLowered) {
  ChainArtifacts a = run_pure_chain(testsrc::kMatmul);
  ASSERT_TRUE(a.ok);
  EXPECT_NE(a.final_source.find("#pragma omp parallel for"),
            std::string::npos);
  // Lowered: no `pure` keyword anywhere, params became const (Listing 8).
  EXPECT_EQ(a.final_source.find("pure "), std::string::npos);
  EXPECT_NE(a.final_source.find("const float* a"), std::string::npos);
  // The reinserted call uses the renamed iterators.
  EXPECT_NE(a.final_source.find("dot("), std::string::npos);
  EXPECT_NE(a.final_source.find("A[t1]"), std::string::npos)
      << a.final_source;
}

TEST(Chain, MatmulScopReport) {
  ChainArtifacts a = run_pure_chain(testsrc::kMatmul);
  ASSERT_TRUE(a.ok);
  bool main_scop = false;
  for (const ScopReport& r : a.scops) {
    if (r.function == "main") {
      main_scop = true;
      EXPECT_TRUE(r.extracted) << r.failure_reason;
      EXPECT_TRUE(r.transformed);
      EXPECT_TRUE(r.parallelized);
      EXPECT_EQ(r.depth, 2u);
      EXPECT_EQ(r.substituted_calls, 1u);
    }
  }
  EXPECT_TRUE(main_scop);
}

TEST(Chain, PurityErrorStopsChain) {
  ChainArtifacts a = run_pure_chain(
      "int g;\n"
      "pure int f(int a) { g = a; return a; }\n");
  EXPECT_FALSE(a.ok);
  EXPECT_TRUE(a.diagnostics.has_error_containing("global"));
  EXPECT_TRUE(a.final_source.empty());
}

TEST(Chain, Listing5IsRejectedByChain) {
  ChainArtifacts a = run_pure_chain(testsrc::kListing5);
  EXPECT_FALSE(a.ok);
  EXPECT_TRUE(a.diagnostics.has_error_containing("Listing 5"));
}

TEST(Chain, Listing6AliasSlipsThrough) {
  // §3.4: the alias evasion is NOT caught — pinned behavior.
  ChainArtifacts a = run_pure_chain(testsrc::kListing6);
  EXPECT_TRUE(a.ok) << a.diagnostics.format();
  EXPECT_NE(a.final_source.find("#pragma omp parallel for"),
            std::string::npos);
}

TEST(Chain, SystemIncludesAreRestored) {
  const std::string src = std::string("#include <stdio.h>\n") +
                          "#include <stdlib.h>\n" + testsrc::kMatmul;
  ChainArtifacts a = run_pure_chain(src);
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  EXPECT_EQ(a.stripped.find("<stdio.h>"), std::string::npos);
  EXPECT_NE(a.final_source.find("#include <stdio.h>"), std::string::npos);
  EXPECT_NE(a.final_source.find("#include <stdlib.h>"), std::string::npos);
  // OpenMP header added because a loop was parallelized.
  EXPECT_NE(a.final_source.find("#include <omp.h>"), std::string::npos);
}

TEST(Chain, PreludeMacrosPresent) {
  ChainArtifacts a = run_pure_chain(testsrc::kMatmul);
  ASSERT_TRUE(a.ok);
  EXPECT_NE(a.final_source.find("#define floord"), std::string::npos);
  EXPECT_NE(a.final_source.find("#define ceild"), std::string::npos);
}

TEST(Chain, MallocInitLoopGetsParallelized) {
  // §4.3.1: the allocation loop is parallelized because malloc is seeded
  // pure — the accidental speedup the paper reports.
  ChainArtifacts a = run_pure_chain(testsrc::kMatmulWithInit);
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  EXPECT_NE(a.final_source.find("#pragma omp parallel for"),
            std::string::npos);
  EXPECT_NE(a.final_source.find("malloc"), std::string::npos);
}

TEST(Chain, SatelliteUsesScheduleClause) {
  ChainOptions options;
  options.schedule = {OmpScheduleKind::Dynamic, 1};
  ChainArtifacts a = run_pure_chain(testsrc::kSatellite, options);
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  EXPECT_NE(a.final_source.find(
                "#pragma omp parallel for schedule(dynamic,1)"),
            std::string::npos);
}

TEST(Chain, GuidedScheduleRoundTripsThroughChain) {
  ChainOptions options;
  options.schedule = *ScheduleSpec::parse("guided,8");
  ChainArtifacts a = run_pure_chain(testsrc::kSatellite, options);
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  EXPECT_NE(a.final_source.find(
                "#pragma omp parallel for schedule(guided,8)"),
            std::string::npos);
}

TEST(Chain, SicaModeEmitsSimd) {
  ChainOptions options;
  options.mode = TransformMode::PlutoSica;
  ChainArtifacts a = run_pure_chain(testsrc::kMatmul, options);
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  EXPECT_NE(a.final_source.find("#pragma omp simd"), std::string::npos);
}

TEST(Chain, EllAndHeatTransform) {
  for (const char* src : {testsrc::kEll, testsrc::kHeat}) {
    ChainArtifacts a = run_pure_chain(src);
    ASSERT_TRUE(a.ok) << a.diagnostics.format();
    EXPECT_NE(a.final_source.find("#pragma omp parallel for"),
              std::string::npos)
        << a.final_source;
  }
}

TEST(Chain, ParallelizationCanBeDisabled) {
  ChainOptions options;
  options.parallelize = false;
  ChainArtifacts a = run_pure_chain(testsrc::kMatmul, options);
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a.final_source.find("#pragma omp parallel"), std::string::npos);
}

TEST(Chain, VirtualIncludeAndDefines) {
  ChainOptions options;
  options.virtual_includes["size.h"] = "#define N 16\n";
  ChainArtifacts a = run_pure_chain(
      "#include \"size.h\"\n"
      "float* v;\n"
      "void f() { for (int i = 0; i < N; i++) v[i] = 1.0f; }\n",
      options);
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  EXPECT_NE(a.preprocessed.find("i < 16"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Call substitution unit behavior
// ---------------------------------------------------------------------------

struct LoopFixture {
  SourceBuffer buf;
  DiagnosticEngine diags;
  TranslationUnit tu;
  ForStmt* loop = nullptr;

  explicit LoopFixture(const std::string& src)
      : buf(SourceBuffer::from_string(src)), tu(parse(buf, diags)) {
    for (FunctionDecl* fn : tu.functions()) {
      if (!fn->body) continue;
      for (StmtPtr& s : fn->body->stmts) {
        if (auto* f = stmt_cast<ForStmt>(s.get())) loop = f;
      }
    }
  }
};

TEST(CallSubstitution, ReplaceAndRestoreRoundTrip) {
  LoopFixture fx(
      "pure float g(int i);\n"
      "float* v;\n"
      "void k(int n)\n"
      "{ for (int i = 0; i < n; i++) v[i] = g(i) + g(i + 1); }\n");
  ASSERT_NE(fx.loop, nullptr);
  const std::string before = print_c(*fx.loop);

  std::size_t counter = 0;
  std::set<std::string> pure = {"g"};
  auto calls = substitute_pure_calls(*fx.loop, pure, counter);
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0].placeholder, "tmpConst_g_0");
  EXPECT_EQ(calls[1].placeholder, "tmpConst_g_1");
  const std::string substituted = print_c(*fx.loop);
  EXPECT_NE(substituted.find("tmpConst_g_0"), std::string::npos);
  EXPECT_EQ(substituted.find("g("), std::string::npos);

  const std::size_t restored = reinsert_pure_calls(*fx.loop, calls);
  EXPECT_EQ(restored, 2u);
  EXPECT_EQ(print_c(*fx.loop), before);
}

TEST(CallSubstitution, OnlyPureCallsSubstituted) {
  LoopFixture fx(
      "pure float g(int i);\n"
      "float h(int i);\n"
      "float* v;\n"
      "void k(int n) { for (int i = 0; i < n; i++) v[i] = g(i) + h(i); }\n");
  std::size_t counter = 0;
  std::set<std::string> pure = {"g"};
  auto calls = substitute_pure_calls(*fx.loop, pure, counter);
  EXPECT_EQ(calls.size(), 1u);
  const std::string text = print_c(*fx.loop);
  EXPECT_NE(text.find("h(i)"), std::string::npos);
  EXPECT_EQ(text.find("g(i)"), std::string::npos);
}

TEST(CallSubstitution, NestedCallSubstitutedAsWhole) {
  LoopFixture fx(
      "pure float g(float x);\n"
      "pure float f(float x);\n"
      "float* v;\n"
      "void k(int n) { for (int i = 0; i < n; i++) v[i] = g(f(1.0f)); }\n");
  std::size_t counter = 0;
  std::set<std::string> pure = {"g", "f"};
  auto calls = substitute_pure_calls(*fx.loop, pure, counter);
  // The outer call is replaced wholesale; the inner call travels with it.
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].placeholder, "tmpConst_g_0");
}

// ---------------------------------------------------------------------------
// Region SCoPs through the whole chain
// ---------------------------------------------------------------------------

TEST(Chain, WhileLoopCanonicalizesAndParallelizes) {
  ChainArtifacts a = run_pure_chain(
      "pure float twice(float x) { return 2.0f * x; }\n"
      "float* v;\n"
      "void k(int n) {\n"
      "  int i = 0;\n"
      "  while (i < n) {\n"
      "    v[i] = twice((float)i);\n"
      "    i = i + 1;\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  EXPECT_EQ(a.canonicalized_whiles, 1u);
  // The canonicalized loop SCoP-marks like a for twin...
  EXPECT_NE(a.marked.find("#pragma scop"), std::string::npos);
  // ...and parallelizes through the classic path.
  EXPECT_NE(a.final_source.find("#pragma omp parallel for"),
            std::string::npos)
      << a.final_source;
  EXPECT_EQ(a.final_source.find("while"), std::string::npos);
}

TEST(Chain, GuardedRegionReinsertsCallsUnderTheirGuards) {
  ChainArtifacts a = run_pure_chain(
      "pure float scale(float x) { return 3.0f * x; }\n"
      "pure float shift(float x) { return x - 1.0f; }\n"
      "void k(float* a, float* b, float* c, float* x, int n, int m) {\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    if (i < m)\n"
      "      a[i] = scale(x[i]);\n"
      "    else\n"
      "      b[i] = shift(x[i]);\n"
      "    c[i] = a[i + m] + b[i];\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  ASSERT_EQ(a.scops.size(), 1u);
  const ScopReport& r = a.scops[0];
  EXPECT_TRUE(r.region);
  EXPECT_TRUE(r.transformed) << r.failure_reason;
  EXPECT_TRUE(r.parallelized);
  EXPECT_EQ(r.parallel_loops, 1u);
  EXPECT_EQ(r.substituted_calls, 2u);
  // Substitution hid both calls behind placeholders...
  EXPECT_NE(a.substituted.find("tmpConst_scale_"), std::string::npos);
  // ...and reinsertion put them back under their guards, with no
  // placeholder leaking.
  EXPECT_EQ(a.final_source.find("tmpConst_"), std::string::npos)
      << a.final_source;
  EXPECT_NE(a.final_source.find("scale(x[i])"), std::string::npos);
  EXPECT_NE(a.final_source.find("shift(x[i])"), std::string::npos);
  EXPECT_NE(a.final_source.find("#pragma omp parallel for"),
            std::string::npos);
  EXPECT_NE(a.final_source.find("else"), std::string::npos);
}

TEST(Chain, RegionWithRealConflictDegradesToSerialWithReason) {
  // The two statements form a dependence cycle (a[i] reads c[i-1],
  // c[i] reads a[i]), so fission cannot separate them: the nest must
  // stay untouched and the report must say why.
  ChainArtifacts a = run_pure_chain(
      "pure float scale(float x) { return 3.0f * x; }\n"
      "void k(float* a, float* c, float* x, int n, int m) {\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    if (i < m)\n"
      "      a[i] = scale(x[i]) * c[i - 1];\n"
      "    c[i] = a[i] * 0.5f;\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  ASSERT_EQ(a.scops.size(), 1u);
  EXPECT_TRUE(a.scops[0].region);
  EXPECT_FALSE(a.scops[0].transformed);
  EXPECT_FALSE(a.scops[0].fissioned);
  EXPECT_NE(a.scops[0].failure_reason.find("stays serial"),
            std::string::npos)
      << a.scops[0].failure_reason;
  EXPECT_EQ(a.final_source.find("#pragma omp"), std::string::npos);
  // The undone nest keeps its original calls.
  EXPECT_NE(a.final_source.find("scale(x[i])"), std::string::npos);
}

TEST(Chain, RegionPartialConflictFissionsIntoParallelLoops) {
  // Only a loop-independent (crossing) dependence links the two
  // statements: a[i] is produced in one statement and a[i - 1]
  // consumed in the other. Distribution puts each in its own loop and
  // both become parallel.
  ChainArtifacts a = run_pure_chain(
      "pure float scale(float x) { return 3.0f * x; }\n"
      "void k(float* a, float* c, float* x, int n, int m) {\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    if (i < m)\n"
      "      a[i] = scale(x[i]);\n"
      "    c[i] = a[i - 1];\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  ASSERT_EQ(a.scops.size(), 1u);
  const ScopReport& r = a.scops[0];
  EXPECT_TRUE(r.region);
  EXPECT_TRUE(r.transformed) << r.failure_reason;
  EXPECT_TRUE(r.parallelized);
  EXPECT_TRUE(r.fissioned);
  EXPECT_EQ(r.fission_groups, 2u);
  EXPECT_EQ(r.fission_parallel_groups, 2u);
  // Two distributed loops, each with its own pragma, and the pure
  // call reinserted under its guard.
  std::size_t first =
      a.final_source.find("#pragma omp parallel for");
  ASSERT_NE(first, std::string::npos) << a.final_source;
  EXPECT_NE(a.final_source.find("#pragma omp parallel for", first + 1),
            std::string::npos)
      << a.final_source;
  EXPECT_NE(a.final_source.find("scale(x[i])"), std::string::npos)
      << a.final_source;
  EXPECT_EQ(a.final_source.find("tmpConst_"), std::string::npos);
}

TEST(Chain, AdjacentSiblingNestsFuseIntoOneParallelLoop) {
  // Two adjacent loops with identical headers and no crossing
  // dependence: the chain fuses them before extraction, so one pragma
  // covers both statements.
  ChainArtifacts a = run_pure_chain(
      "pure float scale(float x) { return 2.0f * x; }\n"
      "pure float shift(float x) { return x + 3.0f; }\n"
      "void k(float* a, float* b, float* x, int n) {\n"
      "  for (int i = 0; i < n; i++)\n"
      "    a[i] = scale(x[i]);\n"
      "  for (int j = 0; j < n; j++)\n"
      "    b[j] = shift(x[j]);\n"
      "}\n");
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  ASSERT_EQ(a.scops.size(), 1u);
  const ScopReport& r = a.scops[0];
  EXPECT_TRUE(r.parallelized) << r.failure_reason;
  EXPECT_EQ(r.fused_loops, 1u);
  ASSERT_EQ(a.fusion_decisions.size(), 1u);
  EXPECT_TRUE(a.fusion_decisions[0].fused);
  // One pragma, one loop, both calls reinserted inside it.
  std::size_t first =
      a.final_source.find("#pragma omp parallel for");
  ASSERT_NE(first, std::string::npos) << a.final_source;
  EXPECT_EQ(a.final_source.find("#pragma omp parallel for", first + 1),
            std::string::npos)
      << a.final_source;
  EXPECT_NE(a.final_source.find("scale("), std::string::npos);
  EXPECT_NE(a.final_source.find("shift("), std::string::npos);
}

TEST(Chain, CrossingDependenceBlocksFusionWithReason) {
  // The second loop reads what the first one writes at a shifted
  // index, so fusing would break the producer/consumer order. The
  // decision log must carry the rejection and both loops still
  // parallelize on their own.
  ChainArtifacts a = run_pure_chain(
      "pure float scale(float x) { return 2.0f * x; }\n"
      "void k(float* a, float* b, float* x, int n) {\n"
      "  for (int i = 0; i < n; i++)\n"
      "    a[i] = scale(x[i]);\n"
      "  for (int j = 0; j < n; j++)\n"
      "    b[j] = a[j + 1];\n"
      "}\n");
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  ASSERT_EQ(a.fusion_decisions.size(), 1u);
  EXPECT_FALSE(a.fusion_decisions[0].fused);
  EXPECT_NE(a.fusion_decisions[0].reason.find("fusion-preventing"),
            std::string::npos)
      << a.fusion_decisions[0].reason;
  ASSERT_EQ(a.scops.size(), 2u);
  EXPECT_TRUE(a.scops[0].parallelized);
  EXPECT_TRUE(a.scops[1].parallelized);
  EXPECT_EQ(a.scops[0].fused_loops, 0u);
}

TEST(Chain, WrittenBeforeReadScalarIsPrivatized) {
  // `t` is written before read on every iteration and dead after the
  // nest, so the pragma privatizes it instead of serializing.
  ChainArtifacts a = run_pure_chain(
      "pure float half(float x) { return 0.5f * x; }\n"
      "void k(float** out, float* in, float* w, int n, int m) {\n"
      "  float t;\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    t = half(in[i]);\n"
      "    for (int j = 0; j < m; j++)\n"
      "      out[i][j] = t * w[j];\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  ASSERT_EQ(a.scops.size(), 1u);
  const ScopReport& r = a.scops[0];
  EXPECT_TRUE(r.parallelized) << r.failure_reason;
  ASSERT_EQ(r.privatized.size(), 1u);
  EXPECT_EQ(r.privatized[0], "t");
  EXPECT_NE(a.final_source.find("private(t)"), std::string::npos)
      << a.final_source;
}

TEST(Chain, LiveOutScalarIsNotPrivatized) {
  // Same temp-carrying shape, but `t` is read after the nest: its
  // final value must survive, so privatization is off the table. The
  // outer loop stays serial; only the inner loop (where `t` is
  // read-only) may pick up a pragma.
  ChainArtifacts a = run_pure_chain(
      "pure float half(float x) { return 0.5f * x; }\n"
      "float k(float** out, float* in, float* w, int n, int m) {\n"
      "  float t = 0.0f;\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    t = half(in[i]);\n"
      "    for (int j = 0; j < m; j++)\n"
      "      out[i][j] = t * w[j];\n"
      "  }\n"
      "  return t;\n"
      "}\n");
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  ASSERT_EQ(a.scops.size(), 1u);
  EXPECT_TRUE(a.scops[0].privatized.empty());
  EXPECT_EQ(a.final_source.find("private(t)"), std::string::npos)
      << a.final_source;
  // Any pragma must sit on the inner loop, after the serial outer one.
  std::size_t outer = a.final_source.find("for (int i");
  std::size_t pragma = a.final_source.find("#pragma omp");
  ASSERT_NE(outer, std::string::npos);
  if (pragma != std::string::npos) EXPECT_GT(pragma, outer);
}

TEST(Chain, IteratorReadAfterNestDegradesToSerial) {
  // `i` lives outside the nest (`i = 0` for-init — the exact shape
  // while-canonicalization produces) and is read after the loop. The
  // classic path would regenerate the nest over t1 without assigning i,
  // and an annotated loop would privatize it — both lose the final
  // value — so the chain must keep the nest serial and say why.
  ChainArtifacts a = run_pure_chain(
      "pure float f(float x) { return x + 1.0f; }\n"
      "float* v; float* w;\n"
      "int k(int n) {\n"
      "  int i;\n"
      "  for (i = 0; i < n; i++)\n"
      "    w[i] = f(v[i]);\n"
      "  return i;\n"
      "}\n");
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  ASSERT_EQ(a.scops.size(), 1u);
  EXPECT_FALSE(a.scops[0].transformed);
  EXPECT_NE(a.scops[0].failure_reason.find("read after"),
            std::string::npos)
      << a.scops[0].failure_reason;
  EXPECT_EQ(a.final_source.find("#pragma omp"), std::string::npos);
  // The while twin hits the same guard after canonicalization.
  ChainArtifacts b = run_pure_chain(
      "pure float f(float x) { return x + 1.0f; }\n"
      "float* v; float* w;\n"
      "int k(int n) {\n"
      "  int i = 0;\n"
      "  while (i < n) {\n"
      "    w[i] = f(v[i]);\n"
      "    i++;\n"
      "  }\n"
      "  return i;\n"
      "}\n");
  ASSERT_TRUE(b.ok) << b.diagnostics.format();
  EXPECT_EQ(b.canonicalized_whiles, 1u);
  ASSERT_EQ(b.scops.size(), 1u);
  EXPECT_FALSE(b.scops[0].transformed);
  EXPECT_EQ(b.final_source.find("#pragma omp"), std::string::npos);
}

TEST(Chain, RegionPragmaPrivatizesFunctionScopeInnerIterators) {
  // C89-style iterators: `j` lives at function scope, so the region
  // pragma must carry private(j) — otherwise threads would share one j.
  ChainArtifacts a = run_pure_chain(
      "pure float cell(float v, int j) { return v + (float)j; }\n"
      "float* s; float** g;\n"
      "void k(int n, int m) {\n"
      "  int i; int j;\n"
      "  for (i = 0; i < n; i++) {\n"
      "    s[i] = 0.0f;\n"
      "    for (j = 0; j < m; j++)\n"
      "      s[i] = s[i] + cell(g[i][j], j);\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  ASSERT_EQ(a.scops.size(), 1u);
  EXPECT_TRUE(a.scops[0].region);
  EXPECT_TRUE(a.scops[0].parallelized);
  EXPECT_NE(
      a.final_source.find("#pragma omp parallel for private(j)"),
      std::string::npos)
      << a.final_source;
}

TEST(Chain, SiblingC89LoopsSharingAnIteratorBothParallelize) {
  // The classic C89 pattern: one `int i;` feeding two sibling loops.
  // The second loop's `i = 0` re-initialization kills the first nest's
  // final value before any read, so neither nest escapes — both must
  // keep their parallelization.
  ChainArtifacts a = run_pure_chain(
      "pure float id(float x) { return x; }\n"
      "float* a; float* b; float* x;\n"
      "void f(int n) {\n"
      "  int i;\n"
      "  for (i = 0; i < n; i++)\n"
      "    a[i] = id(x[i]) + 1.0f;\n"
      "  for (i = 0; i < n; i++)\n"
      "    b[i] = id(x[i]) + 2.0f;\n"
      "}\n");
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  ASSERT_EQ(a.scops.size(), 2u);
  EXPECT_TRUE(a.scops[0].parallelized) << a.scops[0].failure_reason;
  EXPECT_TRUE(a.scops[1].parallelized) << a.scops[1].failure_reason;
}

TEST(Chain, GlobalInductionVariableKeepsNestSerial) {
  // `gi` is file-scope: another function can observe its post-loop
  // value, which the regenerated nest would never write. Must stay
  // serial even though nothing *in this function* reads gi afterwards.
  ChainArtifacts a = run_pure_chain(
      "pure float id(float x) { return x; }\n"
      "float* A; float* B; int gi;\n"
      "float f(int n) {\n"
      "  gi = 0;\n"
      "  while (gi < n) {\n"
      "    A[gi] = id(B[gi]);\n"
      "    gi += 1;\n"
      "  }\n"
      "  return 0.0f;\n"
      "}\n"
      "int reader(void) { return gi; }\n");
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  ASSERT_EQ(a.scops.size(), 1u);
  EXPECT_FALSE(a.scops[0].transformed);
  EXPECT_NE(a.scops[0].failure_reason.find("lives outside the nest"),
            std::string::npos)
      << a.scops[0].failure_reason;
  EXPECT_EQ(a.final_source.find("#pragma omp"), std::string::npos);
}

TEST(Chain, ImperfectNestParallelizesOuterLoopOnly) {
  ChainArtifacts a = run_pure_chain(
      "pure float cell(float v) { return v + 1.0f; }\n"
      "void k(float* s, float** g, int n, int m) {\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    s[i] = 0.0f;\n"
      "    for (int j = 0; j < m; j++)\n"
      "      s[i] = s[i] + cell(g[i][j]);\n"
      "    s[i] = s[i] * 0.5f;\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  ASSERT_EQ(a.scops.size(), 1u);
  EXPECT_TRUE(a.scops[0].region);
  EXPECT_TRUE(a.scops[0].parallelized);
  EXPECT_EQ(a.scops[0].parallel_loops, 1u);
  // Exactly one pragma, on the outer loop (the inner accumulation is
  // carried).
  const std::string needle = "#pragma omp parallel for";
  std::size_t count = 0;
  for (std::size_t pos = a.final_source.find(needle);
       pos != std::string::npos;
       pos = a.final_source.find(needle, pos + needle.size())) {
    ++count;
  }
  EXPECT_EQ(count, 1u) << a.final_source;
}

// ---------------------------------------------------------------------------
// Reductions through the whole chain.
// ---------------------------------------------------------------------------

TEST(Chain, IntegerSumReductionParallelizesWithoutFlag) {
  ChainArtifacts a = run_pure_chain(
      "void k(int* a, int* out, int n) {\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < n; i++) s = s + a[i];\n"
      "  out[0] = s;\n"
      "}\n");
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  ASSERT_EQ(a.scops.size(), 1u);
  EXPECT_TRUE(a.scops[0].parallelized) << a.scops[0].failure_reason;
  ASSERT_EQ(a.scops[0].reductions.size(), 1u);
  EXPECT_EQ(a.scops[0].reductions[0], "+:s");
  EXPECT_NE(a.final_source.find("reduction(+:s)"), std::string::npos)
      << a.final_source;
}

TEST(Chain, FloatSumReductionIsGatedBehindFpReductions) {
  const std::string src =
      "void k(float* a, float* out, int n) {\n"
      "  float s = 0.0f;\n"
      "  for (int i = 0; i < n; i++) s = s + a[i];\n"
      "  out[0] = s;\n"
      "}\n";
  // Default: OpenMP partials would reassociate the FP sum — demote, note.
  ChainArtifacts strict = run_pure_chain(src);
  ASSERT_TRUE(strict.ok) << strict.diagnostics.format();
  ASSERT_EQ(strict.scops.size(), 1u);
  EXPECT_FALSE(strict.scops[0].parallelized);
  EXPECT_TRUE(strict.scops[0].reductions.empty());
  ASSERT_FALSE(strict.scops[0].reduction_notes.empty());
  EXPECT_NE(strict.scops[0].reduction_notes[0].find("--fp-reductions"),
            std::string::npos);
  EXPECT_EQ(strict.final_source.find("reduction("), std::string::npos);
  // Opt-in: the same loop parallelizes.
  ChainOptions options;
  options.fp_reductions = true;
  ChainArtifacts relaxed = run_pure_chain(src, options);
  ASSERT_TRUE(relaxed.ok) << relaxed.diagnostics.format();
  EXPECT_TRUE(relaxed.scops[0].parallelized)
      << relaxed.scops[0].failure_reason;
  EXPECT_NE(relaxed.final_source.find("reduction(+:s)"),
            std::string::npos);
}

TEST(Chain, MinReductionNeedsNoFlag) {
  // min/max combine bit-exactly in any order: no reassociation concern.
  ChainArtifacts a = run_pure_chain(
      "void k(float* a, float* out, int n) {\n"
      "  float lo = a[0];\n"
      "  for (int i = 0; i < n; i++) lo = fminf(lo, a[i]);\n"
      "  out[0] = lo;\n"
      "}\n");
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  ASSERT_EQ(a.scops.size(), 1u);
  EXPECT_TRUE(a.scops[0].parallelized) << a.scops[0].failure_reason;
  ASSERT_EQ(a.scops[0].reductions.size(), 1u);
  EXPECT_EQ(a.scops[0].reductions[0], "min:lo");
  // The combiner call itself must survive substitution (replacing it
  // with a tmpConst placeholder would erase the accumulator read).
  EXPECT_NE(a.final_source.find("fminf(lo"), std::string::npos)
      << a.final_source;
}

TEST(Chain, GuardedRegionReductionComposesScheduleAndPrivate) {
  // Imperfect nest + affine guard: the region path must compose the
  // triangular guided default with the reduction clause, and the
  // accumulator must never also appear in private(...) — GCC rejects
  // a variable listed in both.
  ChainArtifacts a = run_pure_chain(
      "pure int weight(int v) { return v * v + 1; }\n"
      "void k(int n, int cut, int g[64][64], int h[64], int* out) {\n"
      "  int total = 0;\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    h[i] = g[i][0];\n"
      "    for (int j = 0; j < n; j++) {\n"
      "      if (j < i + cut) total = total + weight(g[i][j]);\n"
      "    }\n"
      "  }\n"
      "  out[0] = total;\n"
      "}\n");
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  ASSERT_EQ(a.scops.size(), 1u);
  const ScopReport& r = a.scops[0];
  EXPECT_TRUE(r.region);
  EXPECT_TRUE(r.parallelized) << r.failure_reason;
  ASSERT_EQ(r.reductions.size(), 1u);
  EXPECT_EQ(r.reductions[0], "+:total");
  EXPECT_NE(a.final_source.find(
                "schedule(guided,4) reduction(+:total)"),
            std::string::npos)
      << a.final_source;
  // No private clause may name the accumulator.
  for (std::size_t pos = a.final_source.find("private(");
       pos != std::string::npos;
       pos = a.final_source.find("private(", pos + 1)) {
    const std::size_t close = a.final_source.find(')', pos);
    const std::string clause = a.final_source.substr(pos, close - pos);
    EXPECT_EQ(clause.find("total"), std::string::npos) << clause;
  }
}

TEST(Chain, MixedReadAccumulationStaysSerialWithReason) {
  // Acceptance gate: `s = s + a[i]; b[i] = s;` exposes every prefix of
  // the sum — no exemption, no pragma, and the report says why.
  ChainArtifacts a = run_pure_chain(
      "void k(int* a, int* b, int n) {\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    s = s + a[i];\n"
      "    b[i] = s;\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  ASSERT_EQ(a.scops.size(), 1u);
  EXPECT_FALSE(a.scops[0].parallelized);
  EXPECT_TRUE(a.scops[0].reductions.empty());
  ASSERT_FALSE(a.scops[0].reduction_notes.empty());
  EXPECT_NE(a.scops[0].reduction_notes[0].find("read elsewhere"),
            std::string::npos);
  EXPECT_EQ(a.final_source.find("#pragma omp"), std::string::npos);
}

}  // namespace
}  // namespace purec

// Failure injection: the chain must degrade gracefully — bad input stops
// with diagnostics, pathological-but-legal input is left untransformed,
// and nothing crashes or miscompiles.
#include <gtest/gtest.h>

#include "transform/pure_chain.h"

namespace purec {
namespace {

TEST(Robustness, EmptyInput) {
  ChainArtifacts a = run_pure_chain("");
  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(a.scops.empty());
}

TEST(Robustness, GarbageInputReportsParserErrors) {
  ChainArtifacts a = run_pure_chain("this is not C at all !!!");
  EXPECT_FALSE(a.ok);
  EXPECT_GT(a.diagnostics.error_count(), 0u);
}

TEST(Robustness, UnterminatedCommentReported) {
  ChainArtifacts a = run_pure_chain("int x; /* never closed");
  EXPECT_FALSE(a.ok);
  EXPECT_TRUE(a.diagnostics.has_error_containing("unterminated"));
}

TEST(Robustness, HugeBoundsDoNotCrash) {
  // Bound magnitudes that overflow the exact analysis: the chain must
  // leave the loop alone (reported as overflow), not crash or emit wrong
  // code.
  ChainArtifacts a = run_pure_chain(
      "float* v;\n"
      "void k() {\n"
      "  for (int i = 0; i < 4611686018427387904; i++)\n"
      "    v[4611686018427387903 * i] = 0.0f;\n"
      "}\n");
  EXPECT_TRUE(a.ok) << a.diagnostics.format();
  for (const ScopReport& r : a.scops) {
    EXPECT_FALSE(r.transformed);
  }
}

TEST(Robustness, DeepNestIsRejectedNotCrashed) {
  ChainArtifacts a = run_pure_chain(
      "float* v;\n"
      "void k(int n) {\n"
      "  for (int a = 0; a < n; a++)\n"
      "   for (int b = 0; b < n; b++)\n"
      "    for (int c = 0; c < n; c++)\n"
      "     for (int d = 0; d < n; d++)\n"
      "      for (int e = 0; e < n; e++)\n"
      "       v[a + b + c + d + e] = 0.0f;\n"
      "}\n");
  EXPECT_TRUE(a.ok) << a.diagnostics.format();
  for (const ScopReport& r : a.scops) {
    EXPECT_FALSE(r.transformed);
    EXPECT_NE(r.failure_reason.find("deeper"), std::string::npos);
  }
}

TEST(Robustness, UntransformableLoopSurvivesVerbatim) {
  // Indirect addressing directly in the loop (not hidden in a pure
  // function): extraction fails, the loop must appear unchanged in the
  // final output, with the call reinserted.
  ChainArtifacts a = run_pure_chain(
      "pure float get(pure float* x, int i) { return x[i]; }\n"
      "float* v; int* idx; float* x;\n"
      "void k(int n) {\n"
      "  for (int i = 0; i < n; i++)\n"
      "    v[idx[i]] = get((pure float*)x, i);\n"
      "}\n");
  EXPECT_TRUE(a.ok) << a.diagnostics.format();
  EXPECT_NE(a.final_source.find("v[idx[i]] = get("), std::string::npos)
      << a.final_source;
  EXPECT_EQ(a.final_source.find("tmpConst_"), std::string::npos);
}

TEST(Robustness, NonAffineConditionLoopLeftAlone) {
  ChainArtifacts a = run_pure_chain(
      "float* v;\n"
      "void k(int n) {\n"
      "  for (int i = 0; i < n * n; i++)\n"
      "    v[i] = 1.0f;\n"
      "}\n");
  EXPECT_TRUE(a.ok) << a.diagnostics.format();
  EXPECT_NE(a.final_source.find("i < n * n"), std::string::npos);
}

TEST(Robustness, ZeroTileSizeDisablesTiling) {
  ChainOptions options;
  options.tile_size = 0;
  ChainArtifacts a = run_pure_chain(
      "float** C;\n"
      "void k(int n) {\n"
      "  for (int i = 0; i < n; i++)\n"
      "    for (int j = 0; j < n; j++)\n"
      "      C[i][j] = 0.0f;\n"
      "}\n",
      options);
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  // No floord/tile loops in the code after the helper-macro prelude.
  const std::size_t after_prelude = a.final_source.find("#endif");
  ASSERT_NE(after_prelude, std::string::npos);
  EXPECT_EQ(a.final_source.find("floord", after_prelude), std::string::npos);
  for (const ScopReport& r : a.scops) EXPECT_FALSE(r.tiled);
}

TEST(Robustness, MultipleScopsInOneFile) {
  ChainArtifacts a = run_pure_chain(
      "float* v; float* w; float** M;\n"
      "void k1(int n) { for (int i = 0; i < n; i++) v[i] = 1.0f; }\n"
      "void k2(int n) {\n"
      "  for (int i = 0; i < n; i++)\n"
      "    for (int j = 0; j < n; j++)\n"
      "      M[i][j] = 2.0f;\n"
      "}\n"
      "void k3(int n) { for (int i = 0; i < n; i++) w[i] = v[i]; }\n");
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  std::size_t transformed = 0;
  for (const ScopReport& r : a.scops) {
    if (r.transformed) ++transformed;
  }
  EXPECT_EQ(transformed, 3u);
}

TEST(Robustness, PlaceholderCountersUniqueAcrossScops) {
  ChainArtifacts a = run_pure_chain(
      "pure float f(float x) { return x; }\n"
      "float* v; float* w;\n"
      "void k1(int n) { for (int i = 0; i < n; i++) v[i] = f(1.0f); }\n"
      "void k2(int n) { for (int i = 0; i < n; i++) w[i] = f(2.0f); }\n");
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  // Two distinct placeholders in the substituted artifact.
  EXPECT_NE(a.substituted.find("tmpConst_f_0"), std::string::npos);
  EXPECT_NE(a.substituted.find("tmpConst_f_1"), std::string::npos);
  // All placeholders resolved in the final source.
  EXPECT_EQ(a.final_source.find("tmpConst_"), std::string::npos);
}

TEST(Robustness, ChainIsDeterministic) {
  const char* src =
      "pure float f(float x) { return x * 2.0f; }\n"
      "float* v;\n"
      "void k(int n) { for (int i = 0; i < n; i++) v[i] = f(1.0f); }\n";
  ChainArtifacts a = run_pure_chain(src);
  ChainArtifacts b = run_pure_chain(src);
  EXPECT_EQ(a.final_source, b.final_source);
  EXPECT_EQ(a.marked, b.marked);
  EXPECT_EQ(a.substituted, b.substituted);
}

TEST(Robustness, ReusedSourceNamesNoCollision) {
  // A user variable named like a generated iterator must not collide.
  ChainArtifacts a = run_pure_chain(
      "float* v; int t1;\n"
      "void k(int n) { for (int i = 0; i < n; i++) v[i] = 0.0f; }\n");
  EXPECT_TRUE(a.ok) << a.diagnostics.format();
}


TEST(GccAttributes, AnnotatesAllocationFreePureFunctions) {
  ChainOptions options;
  options.emit_gcc_attributes = true;
  ChainArtifacts a = run_pure_chain(
      "pure float mult(float a, float b) { return a * b; }\n"
      "pure int* mk(int n) { int* p = (int*)malloc(n); return p; }\n"
      "float* v;\n"
      "void k(int n)\n"
      "{ for (int i = 0; i < n; i++) v[i] = mult(1.0f, 2.0f); }\n",
      options);
  ASSERT_TRUE(a.ok) << a.diagnostics.format();
  // mult: allocation-free -> annotated. mk: calls malloc -> NOT annotated
  // (GCC's pure contract forbids observable state changes).
  EXPECT_NE(a.final_source.find("__attribute__((pure)) float mult"),
            std::string::npos)
      << a.final_source;
  EXPECT_EQ(a.final_source.find("__attribute__((pure)) int* mk"),
            std::string::npos)
      << a.final_source;
}

TEST(GccAttributes, OffByDefault) {
  ChainArtifacts a = run_pure_chain(
      "pure float f(float x) { return x; }\n");
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a.final_source.find("__attribute__"), std::string::npos);
}

}  // namespace
}  // namespace purec

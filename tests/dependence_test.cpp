#include <gtest/gtest.h>

#include "parser/parser.h"
#include "polyhedral/dependence.h"
#include "support/diagnostics.h"

namespace purec::poly {
namespace {

struct Extracted {
  std::unique_ptr<TranslationUnit> tu;  // keeps the AST alive
  Scop scop;
  std::vector<Dependence> deps;
};

Extracted analyze(const std::string& src, const std::string& fn_name = "k") {
  Extracted out;
  SourceBuffer buf = SourceBuffer::from_string(src);
  DiagnosticEngine diags;
  out.tu = std::make_unique<TranslationUnit>(parse(buf, diags));
  EXPECT_FALSE(diags.has_errors()) << diags.format(&buf);
  const FunctionDecl* fn = out.tu->find_function(fn_name);
  const ForStmt* loop = nullptr;
  for (const StmtPtr& s : fn->body->stmts) {
    if (const auto* f = stmt_cast<ForStmt>(s.get())) {
      loop = f;
      break;
    }
  }
  ExtractionResult r = extract_scop(*loop);
  EXPECT_TRUE(r.ok()) << r.failure_reason;
  out.scop = std::move(*r.scop);
  out.deps = analyze_dependences(out.scop);
  return out;
}

bool has_carried(const std::vector<Dependence>& deps, std::size_t depth) {
  for (const Dependence& d : deps) {
    if (d.loop_carried(depth)) return true;
  }
  return false;
}

TEST(Dependence, IndependentWritesHaveNoDependences) {
  auto r = analyze(
      "float** C;\n"
      "void k(int n) {\n"
      "  for (int i = 0; i < n; i++)\n"
      "    for (int j = 0; j < n; j++)\n"
      "      C[i][j] = 0.0f;\n"
      "}\n");
  EXPECT_TRUE(r.deps.empty());
}

TEST(Dependence, StreamCopyIsIndependent) {
  auto r = analyze(
      "float* a; float* b;\n"
      "void k(int n) { for (int i = 0; i < n; i++) a[i] = b[i]; }\n");
  EXPECT_FALSE(has_carried(r.deps, r.scop.depth()));
}

TEST(Dependence, FlowDependenceDistanceOne) {
  // a[i] = a[i-1]: flow dependence carried at level 1, distance (1).
  auto r = analyze(
      "float* a;\n"
      "void k(int n) { for (int i = 1; i < n; i++) a[i] = a[i - 1]; }\n");
  ASSERT_TRUE(has_carried(r.deps, 1));
  bool found = false;
  for (const Dependence& d : r.deps) {
    if (d.kind == DependenceKind::Flow && d.level == 1) {
      ASSERT_EQ(d.distance.size(), 1u);
      ASSERT_TRUE(d.distance[0].has_value());
      EXPECT_EQ(*d.distance[0], 1);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Dependence, AntiDependence) {
  // a[i] = a[i+1]: anti dependence (read before overwrite), distance 1.
  auto r = analyze(
      "float* a;\n"
      "void k(int n) { for (int i = 0; i < n - 1; i++) a[i] = a[i + 1]; }\n");
  bool anti = false;
  for (const Dependence& d : r.deps) {
    if (d.kind == DependenceKind::Anti && d.level == 1) anti = true;
  }
  EXPECT_TRUE(anti);
}

TEST(Dependence, OutputDependence) {
  // a[0] written every iteration -> output dependence carried at level 1.
  auto r = analyze(
      "float* a;\n"
      "void k(int n) { for (int i = 0; i < n; i++) a[0] = 1.0f; }\n");
  bool output = false;
  for (const Dependence& d : r.deps) {
    if (d.kind == DependenceKind::Output) output = true;
  }
  EXPECT_TRUE(output);
}

TEST(Dependence, TimeStencilCarriedAtBothLevels) {
  // The Fig. 2 case: a[i] = f(a[i-1], a[i], a[i+1]) under a time loop.
  // Memory-based analysis (as in PluTo/candl): deps carried at the time
  // level (t' > t, distance in t not constant because any later timestep
  // rereads the cell) AND at the space level within one timestep (the
  // in-place update makes i sequential: distance (0, 1)).
  auto r = analyze(
      "void k(float* a, int steps, int n) {\n"
      "  for (int t = 0; t < steps; t++)\n"
      "    for (int i = 1; i < n - 1; i++)\n"
      "      a[i] = 0.33f * (a[i - 1] + a[i] + a[i + 1]);\n"
      "}\n");
  bool level1 = false;
  bool level2_dist_01 = false;
  for (const Dependence& d : r.deps) {
    if (!d.loop_carried(2)) continue;
    if (d.level == 1) level1 = true;
    if (d.level == 2 && d.distance.size() == 2 && d.distance[0] &&
        d.distance[1] && *d.distance[0] == 0 && *d.distance[1] == 1) {
      level2_dist_01 = true;
    }
  }
  EXPECT_TRUE(level1) << "missing time-carried dependence";
  EXPECT_TRUE(level2_dist_01) << "missing in-place (0,1) dependence";
}

TEST(Dependence, MatmulAccumulationCarriedAtK) {
  // C[i][j] += A[i][k] * B[k][j]: the accumulation carries at level 3
  // (k), levels 1 and 2 are parallel.
  auto r = analyze(
      "float** A; float** B; float** C;\n"
      "void k(int n) {\n"
      "  for (int i = 0; i < n; i++)\n"
      "    for (int j = 0; j < n; j++)\n"
      "      for (int kk = 0; kk < n; kk++)\n"
      "        C[i][j] += A[i][kk] * B[kk][j];\n"
      "}\n");
  EXPECT_TRUE(level_is_parallel(r.deps, 1, 3));
  EXPECT_TRUE(level_is_parallel(r.deps, 2, 3));
  EXPECT_FALSE(level_is_parallel(r.deps, 3, 3));
}

TEST(Dependence, LoopIndependentDependenceBetweenStatements) {
  // S0: a[i] = ...; S1: b[i] = a[i]; -> loop-independent flow dep.
  auto r = analyze(
      "float* a; float* b;\n"
      "void k(int n) {\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    a[i] = 1.0f;\n"
      "    b[i] = a[i];\n"
      "  }\n"
      "}\n");
  bool independent_flow = false;
  for (const Dependence& d : r.deps) {
    if (d.kind == DependenceKind::Flow && d.level == r.scop.depth() + 1 &&
        d.src_stmt == 0 && d.dst_stmt == 1) {
      independent_flow = true;
    }
  }
  EXPECT_TRUE(independent_flow);
}

TEST(Dependence, NoFalseDependenceBetweenDisjointRegions) {
  // a[i] and a[i + n] never overlap when 0 <= i < n.
  auto r = analyze(
      "float* a;\n"
      "void k(int n) { for (int i = 0; i < n; i++) a[i] = a[i + n]; }\n");
  EXPECT_FALSE(has_carried(r.deps, 1));
}

TEST(Dependence, GcdFilterKillsParityMismatch) {
  // write a[2i], read a[2i+1]: even vs odd indices never meet.
  auto r = analyze(
      "float* a;\n"
      "void k(int n) {\n"
      "  for (int i = 0; i < n; i++) a[2 * i] = a[2 * i + 1];\n"
      "}\n");
  EXPECT_FALSE(has_carried(r.deps, 1));
}

TEST(Dependence, ScalarAccumulatorCarries) {
  // s += a[i] carries a dependence on s at level 1 (both read and write).
  auto r = analyze(
      "float* a;\n"
      "void k(int n) {\n"
      "  float s = 0.0f;\n"
      "  for (int i = 0; i < n; i++) s += a[i];\n"
      "}\n");
  EXPECT_TRUE(has_carried(r.deps, 1));
}

// ---------------------------------------------------------------------------
// Per-statement domains: affine guards enter the dependence polyhedra.
// ---------------------------------------------------------------------------

TEST(Dependence, GuardRemovesOnlyConflictingPair) {
  // The write a[i] is guarded by i < m; the read a[i + m] covers
  // [m, n + m). Subscript equality forces i_w = i_r + m >= m, which
  // contradicts the guard — the would-be carried dependence is empty and
  // the loop is parallel. Without the guard in the domain this loop is
  // serial (see GuardDoesNotRemoveConflict below for the counterpart).
  auto r = analyze(
      "float* a; float* c; float* x;\n"
      "void k(int n, int m) {\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    if (i < m)\n"
      "      a[i] = x[i];\n"
      "    c[i] = a[i + m];\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(r.scop.region_shaped);
  EXPECT_TRUE(r.scop.statements[0].guarded);
  EXPECT_FALSE(has_carried(r.deps, r.scop.depth()));
  EXPECT_TRUE(loop_is_parallel(r.deps, 0));
}

TEST(Dependence, GuardDoesNotRemoveConflict) {
  // Same shape, but the read a[i - 1] intersects the guarded write range
  // ([0, m) vs [-1, n-1)): the flow dependence survives and the loop
  // stays serial.
  auto r = analyze(
      "float* a; float* c; float* x;\n"
      "void k(int n, int m) {\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    if (i < m)\n"
      "      a[i] = x[i];\n"
      "    c[i] = a[i - 1];\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(r.scop.region_shaped);
  EXPECT_TRUE(has_carried(r.deps, r.scop.depth()));
  EXPECT_FALSE(loop_is_parallel(r.deps, 0));
}

TEST(Dependence, ElseBranchNegationDisjointFromThen) {
  // then writes a[i] for i < m, else reads a[i] for i >= m: the negated
  // half-space makes every pairing empty — no dependences at all.
  auto r = analyze(
      "float* a; float* c; float* x;\n"
      "void k(int n, int m) {\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    if (i < m)\n"
      "      a[i] = x[i];\n"
      "    else\n"
      "      c[i] = a[i];\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(r.deps.empty());
  EXPECT_TRUE(loop_is_parallel(r.deps, 0));
}

TEST(Dependence, ImperfectNestInnerCarriesOuterParallel) {
  // s[i] accumulates across j (inner loop serial) but every statement is
  // indexed by i — the outer loop carries nothing.
  auto r = analyze(
      "float* s; float** g;\n"
      "void k(int n, int m) {\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    s[i] = 0.0f;\n"
      "    for (int j = 0; j < m; j++)\n"
      "      s[i] = s[i] + g[i][j];\n"
      "    s[i] = s[i] * 0.25f;\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(r.scop.region_shaped);
  ASSERT_EQ(r.scop.statements.size(), 3u);
  EXPECT_EQ(r.scop.statements[0].loops, (std::vector<std::size_t>{0}));
  EXPECT_EQ(r.scop.statements[1].loops, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(r.scop.statements[2].loops, (std::vector<std::size_t>{0}));
  EXPECT_TRUE(loop_is_parallel(r.deps, 0));
  EXPECT_FALSE(loop_is_parallel(r.deps, 1));
}

TEST(Dependence, StatementAfterInnerLoopOrdersByPosition) {
  // S2 (after the inner loop) reads what S1 wrote in the same i
  // iteration: the dependence is loop-independent, not carried by i.
  auto r = analyze(
      "float* s; float* t; float** g;\n"
      "void k(int n, int m) {\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    for (int j = 0; j < m; j++)\n"
      "      s[i] = s[i] + g[i][j];\n"
      "    t[i] = s[i];\n"
      "  }\n"
      "}\n");
  bool independent_flow = false;
  for (const Dependence& d : r.deps) {
    if (d.kind == DependenceKind::Flow &&
        d.carrier_loop == Scop::npos && d.src_stmt == 0 &&
        d.dst_stmt == 1) {
      independent_flow = true;
    }
  }
  EXPECT_TRUE(independent_flow);
  EXPECT_TRUE(loop_is_parallel(r.deps, 0));
}

TEST(Dependence, StridedLowerBoundAnalyzesExactly) {
  // for (j = i; j < n; j += 2): w[i][i + 2t] never collides across i,
  // so both loops are dependence-free.
  auto r = analyze(
      "float** w; float** r;\n"
      "void k(int n) {\n"
      "  for (int i = 0; i < n; i++)\n"
      "    for (int j = i; j < n; j += 2)\n"
      "      w[i][j] = r[i][j];\n"
      "}\n");
  EXPECT_TRUE(r.deps.empty());
  EXPECT_TRUE(loop_is_parallel(r.deps, 0));
  EXPECT_TRUE(loop_is_parallel(r.deps, 1));
}

TEST(Dependence, ReductionSelfDependenceIsExempt) {
  // `s = s + a[i]` carries a flow dependence on s at level 0, but it is
  // the accumulator's own update: the deps are tagged is_reduction and
  // the loop still counts as parallel (OpenMP's reduction clause
  // privatizes the carry).
  auto r = analyze(
      "float* a;\n"
      "void k(int n) {\n"
      "  float s = 0.0f;\n"
      "  for (int i = 0; i < n; i++) s = s + a[i];\n"
      "}\n");
  ASSERT_FALSE(r.deps.empty());
  for (const Dependence& d : r.deps) {
    EXPECT_TRUE(d.is_reduction) << d.to_string(r.scop);
  }
  EXPECT_TRUE(loop_is_parallel(r.deps, 0));
}

TEST(Dependence, MinReductionIsExempt) {
  auto r = analyze(
      "float* a;\n"
      "void k(int n) {\n"
      "  float lo = 0.0f;\n"
      "  for (int i = 0; i < n; i++) lo = fminf(lo, a[i]);\n"
      "}\n");
  EXPECT_TRUE(loop_is_parallel(r.deps, 0));
}

TEST(Dependence, AccumulatorReadElsewhereIsNotExempt) {
  // The exemption must NOT fire when the running value escapes: b[i]
  // observes every prefix of the sum, so the loop stays serial.
  auto r = analyze(
      "float* a; float* b;\n"
      "void k(int n) {\n"
      "  float s = 0.0f;\n"
      "  for (int i = 0; i < n; i++) { s = s + a[i]; b[i] = s; }\n"
      "}\n");
  ASSERT_FALSE(r.deps.empty());
  for (const Dependence& d : r.deps) {
    EXPECT_FALSE(d.is_reduction) << d.to_string(r.scop);
  }
  EXPECT_FALSE(loop_is_parallel(r.deps, 0));
}

TEST(Dependence, UserCombinerIsNotExempt) {
  // `s = blend(s, a[i])` is recognized (reported upstream) but there is
  // no OpenMP reduction clause for user functions — no exemption.
  auto r = analyze(
      "float* a;\n"
      "void k(int n) {\n"
      "  float s = 0.0f;\n"
      "  for (int i = 0; i < n; i++) s = blend(s, a[i]);\n"
      "}\n");
  ASSERT_FALSE(r.deps.empty());
  for (const Dependence& d : r.deps) {
    EXPECT_FALSE(d.is_reduction) << d.to_string(r.scop);
  }
  EXPECT_FALSE(loop_is_parallel(r.deps, 0));
}

TEST(Dependence, ToStringIsInformative) {
  auto r = analyze(
      "float* a;\n"
      "void k(int n) { for (int i = 1; i < n; i++) a[i] = a[i - 1]; }\n");
  ASSERT_FALSE(r.deps.empty());
  const std::string s = r.deps[0].to_string(r.scop);
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("level"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Loop fission (distribution by dependence SCC)
// ---------------------------------------------------------------------------

TEST(Fission, SerialScanSplitsFromParallelStatement) {
  // S0 is a prefix scan (carried self-dependence), S1 is independent:
  // two groups, the scan's serial and the map's parallel.
  auto r = analyze(
      "float* acc; float* in; float* out;\n"
      "void k(int n) {\n"
      "  for (int i = 1; i < n; i++) {\n"
      "    acc[i] = acc[i - 1] + in[i];\n"
      "    out[i] = in[i] * 2.0f;\n"
      "  }\n"
      "}\n");
  const std::vector<FissionGroup> groups =
      fission_groups(r.scop, r.deps, {});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].statements, (std::vector<std::size_t>{0}));
  EXPECT_FALSE(groups[0].parallel);
  EXPECT_EQ(groups[1].statements, (std::vector<std::size_t>{1}));
  EXPECT_TRUE(groups[1].parallel);
}

TEST(Fission, CyclicStatementsStayInOneGroup) {
  // S0 reads c[i-1] (written by S1), S1 reads a[i] (written by S0): one
  // SCC, fission cannot separate anything.
  auto r = analyze(
      "float* a; float* c; float* x;\n"
      "void k(int n) {\n"
      "  for (int i = 1; i < n; i++) {\n"
      "    a[i] = x[i] * c[i - 1];\n"
      "    c[i] = a[i] * 0.5f;\n"
      "  }\n"
      "}\n");
  const std::vector<FissionGroup> groups =
      fission_groups(r.scop, r.deps, {});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].statements.size(), 2u);
  EXPECT_FALSE(groups[0].parallel);
}

TEST(Fission, IndependentParallelStatementsMergeIntoOneGroup) {
  // No dependence links the two statements and both are parallel: the
  // greedy merge keeps them in one loop (no pointless distribution).
  auto r = analyze(
      "float* a; float* b; float* x;\n"
      "void k(int n) {\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    a[i] = x[i] * 2.0f;\n"
      "    b[i] = x[i] + 3.0f;\n"
      "  }\n"
      "}\n");
  const std::vector<FissionGroup> groups =
      fission_groups(r.scop, r.deps, {});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].statements.size(), 2u);
  EXPECT_TRUE(groups[0].parallel);
}

TEST(Fission, LoopIndependentProducerConsumerSplitsIntoTwoParallelLoops) {
  // S1 reads what S0 wrote one iteration earlier. The crossing flow
  // dependence is root-carried, so the loops cannot merge — but each
  // half on its own is parallel (distribution runs all writes first).
  auto r = analyze(
      "float* a; float* c; float* x;\n"
      "void k(int n, int m) {\n"
      "  for (int i = 1; i < n; i++) {\n"
      "    a[i] = x[i] * 2.0f;\n"
      "    c[i] = a[i - 1];\n"
      "  }\n"
      "}\n");
  const std::vector<FissionGroup> groups =
      fission_groups(r.scop, r.deps, {});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_TRUE(groups[0].parallel);
  EXPECT_TRUE(groups[1].parallel);
}

TEST(Fission, GroupRestrictedParallelismIgnoresOtherGroups) {
  auto r = analyze(
      "float* acc; float* in; float* out;\n"
      "void k(int n) {\n"
      "  for (int i = 1; i < n; i++) {\n"
      "    acc[i] = acc[i - 1] + in[i];\n"
      "    out[i] = in[i] * 2.0f;\n"
      "  }\n"
      "}\n");
  ASSERT_EQ(r.scop.statements.size(), 2u);
  // Whole nest: the scan serializes loop 0.
  EXPECT_FALSE(loop_is_parallel_for_group(
      r.deps, 0, std::vector<bool>{true, true}, {}));
  // Restricted to the map statement alone: parallel.
  EXPECT_TRUE(loop_is_parallel_for_group(
      r.deps, 0, std::vector<bool>{false, true}, {}));
}

// ---------------------------------------------------------------------------
// Scalar privatization
// ---------------------------------------------------------------------------

TEST(Privatization, WrittenBeforeReadScalarIsPrivatizable) {
  // `t` is assigned (no read) at the top of every iteration of i, then
  // read by the inner loop: a per-thread copy carries no value across
  // iterations of i.
  auto r = analyze(
      "float** out; float* in; float* w;\n"
      "void k(int n, int m) {\n"
      "  float t;\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    t = in[i] * 0.5f;\n"
      "    for (int j = 0; j < m; j++)\n"
      "      out[i][j] = t * w[j];\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(privatizable_scalars(r.scop, 0),
            (std::vector<std::string>{"t"}));
  // The scalar's carried dependences are what serialize the loop; once
  // marked private, the loop is parallel.
  EXPECT_FALSE(loop_is_parallel(r.deps, 0));
  EXPECT_TRUE(loop_is_parallel_for_group(
      r.deps, 0, std::vector<bool>(r.scop.statements.size(), true),
      {"t"}));
  mark_private_dependences(r.deps, {"t"});
  EXPECT_TRUE(loop_is_parallel(r.deps, 0));
}

TEST(Privatization, ReadBeforeWriteScalarIsNot) {
  // `t` carries a real recurrence (read of the previous iteration's
  // value before the write): not privatizable.
  auto r = analyze(
      "float* out; float* in;\n"
      "void k(int n) {\n"
      "  float t;\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    out[i] = t + in[i];\n"
      "    t = in[i] * 0.5f;\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(privatizable_scalars(r.scop, 0).empty());
}

TEST(Privatization, GuardedFirstWriteIsNot) {
  // The write only happens under a guard, so some iterations read a
  // stale value: not privatizable.
  auto r = analyze(
      "float* out; float* in;\n"
      "void k(int n, int m) {\n"
      "  float t;\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    if (i < m)\n"
      "      t = in[i];\n"
      "    out[i] = t;\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(privatizable_scalars(r.scop, 0).empty());
}

TEST(Privatization, ReductionAccumulatorIsExcluded) {
  // `s += ...` is a recognized reduction: the accumulator belongs to the
  // reduction clause, never to private(...).
  auto r = analyze(
      "float* in;\n"
      "float k(int n) {\n"
      "  float s = 0.0f;\n"
      "  for (int i = 0; i < n; i++)\n"
      "    s = s + in[i];\n"
      "  return s;\n"
      "}\n");
  EXPECT_TRUE(privatizable_scalars(r.scop, 0).empty());
}

// ---------------------------------------------------------------------------
// Fusion legality (over a trial-merged scop)
// ---------------------------------------------------------------------------

TEST(Fusion, BlockerDistinguishesCrossingFromLocalDependences) {
  // Fused body shape: S0 writes a[i], S1 reads a[i+1] — a root-carried
  // anti dependence crossing the (position) boundary between the
  // original loops. fusion_blocker must flag it as crossing.
  auto crossing_case = analyze(
      "float* a; float* b;\n"
      "void k(int n) {\n"
      "  for (int i = 0; i < n - 1; i++) {\n"
      "    a[i] = b[i];\n"
      "    b[i] = a[i + 1];\n"
      "  }\n"
      "}\n");
  ASSERT_FALSE(loop_is_parallel(crossing_case.deps, 0));
  bool crossing = false;
  const Dependence* blocker = fusion_blocker(
      crossing_case.scop, crossing_case.deps, 1, &crossing);
  ASSERT_NE(blocker, nullptr);
  EXPECT_TRUE(crossing);

  // One half already serial on its own (scan in the first loop): the
  // blocker sits within positions < boundary, not across it.
  auto local_case = analyze(
      "float* a; float* b; float* x;\n"
      "void k(int n) {\n"
      "  for (int i = 1; i < n; i++) {\n"
      "    a[i] = a[i - 1] + x[i];\n"
      "    b[i] = x[i];\n"
      "  }\n"
      "}\n");
  ASSERT_FALSE(loop_is_parallel(local_case.deps, 0));
  crossing = true;
  blocker = fusion_blocker(local_case.scop, local_case.deps, 1, &crossing);
  ASSERT_NE(blocker, nullptr);
  EXPECT_FALSE(crossing);
  EXPECT_EQ(blocker->array, "a");
}

}  // namespace
}  // namespace purec::poly

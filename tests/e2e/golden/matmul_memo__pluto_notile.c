#include <omp.h>
#ifndef PUREC_POLY_HELPERS
#define PUREC_POLY_HELPERS
#define floord(n, d) (((n) < 0) ? -((-(n) + (d) - 1) / (d)) : (n) / (d))
#define ceild(n, d) floord((n) + (d) - 1, (d))
#define purec_max(a, b) (((a) > (b)) ? (a) : (b))
#define purec_min(a, b) (((a) < (b)) ? (a) : (b))
#endif
float** A;
float** Bt;
float** C;
float mult(float a, float b)
{
  return a * b;
}
float dot(const float* a, const float* b, int size)
{
  float res = 0.0f;
  {
    for (int t1 = 0; t1 <= size - 1; t1++)
    {
      res += mult(a[t1], b[t1]);
    }
  }
  return res;
}
int main(int argc, char** argv)
{
  {
#pragma omp parallel for
    for (int t1 = 0; t1 <= 63; t1++)
      for (int t2 = 0; t2 <= 63; t2++)
      {
        C[t1][t2] = dot((const float*)A[t1], (const float*)Bt[t2], 64);
      }
  }
  return 0;
}

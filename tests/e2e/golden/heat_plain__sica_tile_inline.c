#include <omp.h>
#ifndef PUREC_POLY_HELPERS
#define PUREC_POLY_HELPERS
#define floord(n, d) (((n) < 0) ? -((-(n) + (d) - 1) / (d)) : (n) / (d))
#define ceild(n, d) floord((n) + (d) - 1, (d))
#define purec_max(a, b) (((a) > (b)) ? (a) : (b))
#define purec_min(a, b) (((a) < (b)) ? (a) : (b))
#endif
float** cur;
float** nxt;
float stencil(float** g, int i, int j)
{
  return 0.25f * (g[i - 1][j] + g[i + 1][j] + g[i][j - 1] + g[i][j + 1]);
}
void step(int n)
{
  {
#pragma omp parallel for
    for (int t1t = 0; t1t <= floord(n - 2, 32); t1t++)
      for (int t2t = 0; t2t <= floord(n - 2, 32); t2t++)
        for (int t1 = purec_max(1, 32 * t1t); t1 <= purec_min(n - 2, 32 * t1t + 31); t1++)
        {
#pragma omp simd
          for (int t2 = purec_max(1, 32 * t2t); t2 <= purec_min(n - 2, 32 * t2t + 31); t2++)
          {
            nxt[t1][t2] = 0.25f * (cur[t1 - 1][t2] + cur[t1 + 1][t2] + cur[t1][t2 - 1] + cur[t1][t2 + 1]);
          }
        }
  }
}

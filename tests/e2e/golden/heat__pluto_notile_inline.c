#ifndef PUREC_POLY_HELPERS
#define PUREC_POLY_HELPERS
#define floord(n, d) (((n) < 0) ? -((-(n) + (d) - 1) / (d)) : (n) / (d))
#define ceild(n, d) floord((n) + (d) - 1, (d))
#define purec_max(a, b) (((a) > (b)) ? (a) : (b))
#define purec_min(a, b) (((a) < (b)) ? (a) : (b))
#endif
float** cur;
float** nxt;
float stencil(float* const *g, int i, int j)
{
  return 0.25f * (g[i - 1][j] + g[i + 1][j] + g[i][j - 1] + g[i][j + 1]);
}
void step(int n)
{
  for (int i = 1; i < n - 1; i++)
    for (int j = 1; j < n - 1; j++)
      nxt[i][j] = 0.25f * (((float* const *)cur)[i - 1][j] + ((float* const *)cur)[i + 1][j] + ((float* const *)cur)[i][j - 1] + ((float* const *)cur)[i][j + 1]);
}

#ifndef PUREC_POLY_HELPERS
#define PUREC_POLY_HELPERS
#define floord(n, d) (((n) < 0) ? -((-(n) + (d) - 1) / (d)) : (n) / (d))
#define ceild(n, d) floord((n) + (d) - 1, (d))
#define purec_max(a, b) (((a) > (b)) ? (a) : (b))
#define purec_min(a, b) (((a) < (b)) ? (a) : (b))
#endif
void smooth(float* a, int steps, int n)
{
  {
    for (int t1 = 0; t1 <= steps - 1; t1++)
      for (int t2 = t1 + 1; t2 <= t1 + n - 2; t2++)
      {
        a[-t1 + t2] = 0.33f * (a[-t1 + t2 - 1] + a[-t1 + t2] + a[-t1 + t2 + 1]);
      }
  }
}

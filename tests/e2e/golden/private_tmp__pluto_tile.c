#include <stdio.h>
#include <stdlib.h>
#include <omp.h>
#ifndef PUREC_POLY_HELPERS
#define PUREC_POLY_HELPERS
#define floord(n, d) (((n) < 0) ? -((-(n) + (d) - 1) / (d)) : (n) / (d))
#define ceild(n, d) floord((n) + (d) - 1, (d))
#define purec_max(a, b) (((a) > (b)) ? (a) : (b))
#define purec_min(a, b) (((a) < (b)) ? (a) : (b))
#endif
float half(float x)
{
  return 0.5f * x;
}
void sweep(float** out, float* in, float* w, int n, int m)
{
  float t;
  {
#pragma omp parallel for private(t)
    for (int i = 0; i < n; i++)
    {
      t = half(in[i]);
      for (int j = 0; j < m; j++)
        out[i][j] = t * w[j];
    }
  }
}
int main()
{
  int n = 256;
  int m = 64;
  float** out = (float**)malloc(n * sizeof(float*));
  float* in = (float*)malloc(n * sizeof(float));
  float* w = (float*)malloc(m * sizeof(float));
  {
#pragma omp parallel for
    for (int t1 = 0; t1 <= n - 1; t1++)
    {
      out[t1] = (float*)malloc(m * sizeof(float));
      in[t1] = (float)((t1 * 3 + 1) % 19);
    }
  }
  {
#pragma omp parallel for
    for (int t1 = 0; t1 <= m - 1; t1++)
    {
      w[t1] = (float)((t1 * 5 + 2) % 13);
    }
  }
  sweep(out, in, w, n, m);
  double checksum = 0.0;
  {
    for (int t1 = 0; t1 <= n - 1; t1++)
      for (int t2 = 0; t2 <= m - 1; t2++)
      {
        checksum += (double)out[t1][t2] * ((t1 + t2) % 3);
      }
  }
  printf("checksum %.6f\n", checksum);
  return 0;
}

#include <stdio.h>
#include <stdlib.h>
#include <omp.h>
#ifndef PUREC_POLY_HELPERS
#define PUREC_POLY_HELPERS
#define floord(n, d) (((n) < 0) ? -((-(n) + (d) - 1) / (d)) : (n) / (d))
#define ceild(n, d) floord((n) + (d) - 1, (d))
#define purec_max(a, b) (((a) > (b)) ? (a) : (b))
#define purec_min(a, b) (((a) < (b)) ? (a) : (b))
#endif
float avg2(const float* a, int j)
{
  return 0.5f * (a[j] + a[j + 1]);
}
void downsample(float* out, float* in, int n)
{
  for (int i = 1; i < n; i += 2)
    out[i] = 0.5f * (((const float*)in)[i] + ((const float*)in)[i + 1]);
}
int main()
{
  int n = 1024;
  float* in = (float*)malloc((n + 1) * sizeof(float));
  float* out = (float*)malloc(n * sizeof(float));
  {
#pragma omp parallel for
    for (int t1 = 0; t1 <= n; t1++)
    {
      in[t1] = (float)((t1 * 7 + 3) % 23) * 0.25f;
    }
  }
  {
#pragma omp parallel for
    for (int t1 = 0; t1 <= n - 1; t1++)
    {
      out[t1] = 0.0f;
    }
  }
  downsample(out, in, n);
  double checksum = 0.0;
  {
    for (int t1 = 0; t1 <= n - 1; t1++)
    {
      checksum += (double)out[t1] * (t1 % 13);
    }
  }
  printf("checksum %.6f\n", checksum);
  return 0;
}

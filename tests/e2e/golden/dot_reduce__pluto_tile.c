#include <stdio.h>
#include <stdlib.h>
#include <omp.h>
#ifndef PUREC_POLY_HELPERS
#define PUREC_POLY_HELPERS
#define floord(n, d) (((n) < 0) ? -((-(n) + (d) - 1) / (d)) : (n) / (d))
#define ceild(n, d) floord((n) + (d) - 1, (d))
#define purec_max(a, b) (((a) > (b)) ? (a) : (b))
#define purec_min(a, b) (((a) < (b)) ? (a) : (b))
#endif
float mult(float a, float b)
{
  return a * b;
}
void dot(float* a, float* b, float* out, int n)
{
  float sum = 0.0f;
  {
#pragma omp parallel for reduction(+:sum)
    for (int t1 = 0; t1 <= n - 1; t1++)
    {
      sum = sum + mult(a[t1], b[t1]);
    }
  }
  out[0] = sum;
}
int main()
{
  int n = 4096;
  float* a = (float*)malloc(n * sizeof(float));
  float* b = (float*)malloc(n * sizeof(float));
  float* out = (float*)malloc(1 * sizeof(float));
  {
#pragma omp parallel for
    for (int t1 = 0; t1 <= n - 1; t1++)
    {
      a[t1] = (float)((t1 * 7 + 3) % 11);
      b[t1] = (float)((t1 * 5 + 2) % 13);
    }
  }
  dot(a, b, out, n);
  printf("checksum %.6f\n", (double)out[0]);
  return 0;
}

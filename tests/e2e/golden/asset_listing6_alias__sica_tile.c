#include <omp.h>
#ifndef PUREC_POLY_HELPERS
#define PUREC_POLY_HELPERS
#define floord(n, d) (((n) < 0) ? -((-(n) + (d) - 1) / (d)) : (n) / (d))
#define ceild(n, d) floord((n) + (d) - 1, (d))
#define purec_max(a, b) (((a) > (b)) ? (a) : (b))
#define purec_min(a, b) (((a) < (b)) ? (a) : (b))
#endif
int func(const int* a, int idx)
{
  return a[idx - 1] + a[idx];
}
int main()
{
  int array[100];
  int* alias = array;
  {
#pragma omp parallel for
    for (int t1 = 1; t1 <= 99; t1++)
    {
      alias[t1] = func(array, t1);
    }
  }
  return 0;
}

#ifndef PUREC_POLY_HELPERS
#define PUREC_POLY_HELPERS
#define floord(n, d) (((n) < 0) ? -((-(n) + (d) - 1) / (d)) : (n) / (d))
#define ceild(n, d) floord((n) + (d) - 1, (d))
#define purec_max(a, b) (((a) > (b)) ? (a) : (b))
#define purec_min(a, b) (((a) < (b)) ? (a) : (b))
#endif
void smooth(float* a, int steps, int n)
{
  {
    for (int t1t = purec_max(0, ceild(-n - 29, 32)); t1t <= purec_min(floord(steps - 1, 32), floord(steps + n - 3, 32)); t1t++)
      for (int t2t = purec_max(0, t1t); t2t <= purec_min(floord(steps + n - 3, 32), floord(32 * t1t + n + 29, 32)); t2t++)
        for (int t1 = purec_max(purec_max(0, 32 * t1t), 32 * t2t - n + 2); t1 <= purec_min(purec_min(steps - 1, 32 * t1t + 31), 32 * t2t + 30); t1++)
          for (int t2 = purec_max(t1 + 1, 32 * t2t); t2 <= purec_min(t1 + n - 2, 32 * t2t + 31); t2++)
          {
            a[-t1 + t2] = 0.33f * (a[-t1 + t2 - 1] + a[-t1 + t2] + a[-t1 + t2 + 1]);
          }
  }
}

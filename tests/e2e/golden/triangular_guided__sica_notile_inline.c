#include <stdio.h>
#include <stdlib.h>
#include <omp.h>
#ifndef PUREC_POLY_HELPERS
#define PUREC_POLY_HELPERS
#define floord(n, d) (((n) < 0) ? -((-(n) + (d) - 1) / (d)) : (n) / (d))
#define ceild(n, d) floord((n) + (d) - 1, (d))
#define purec_max(a, b) (((a) > (b)) ? (a) : (b))
#define purec_min(a, b) (((a) < (b)) ? (a) : (b))
#endif
float** L;
float** U2;
float combine(float* const *u, int i, int j)
{
  return u[i][j] + u[j][i];
}
void fold(int n)
{
  for (int i = 0; i < n; i++)
    for (int j = 0; j <= i; j++)
      L[i][j] = ((float* const *)U2)[i][j] + ((float* const *)U2)[j][i];
}
int main()
{
  int n = 64;
  L = (float**)malloc(n * sizeof(float*));
  U2 = (float**)malloc(n * sizeof(float*));
  {
#pragma omp parallel for
    for (int i = 0; i < n; i++)
    {
      L[i] = (float*)malloc(n * sizeof(float));
      U2[i] = (float*)malloc(n * sizeof(float));
      {
#pragma omp simd
        for (int j = 0; j < n; j++)
        {
          L[i][j] = 0.0f;
          U2[i][j] = (float)((i * 11 + j * 5) % 17) * 0.125f;
        }
      }
    }
  }
  fold(n);
  double checksum = 0.0;
  {
    for (int t1 = 0; t1 <= n - 1; t1++)
      for (int t2 = 0; t2 <= n - 1; t2++)
      {
        checksum += (double)L[t1][t2] * ((t1 + 2 * t2) % 7);
      }
  }
  printf("checksum %.6f\n", checksum);
  return 0;
}

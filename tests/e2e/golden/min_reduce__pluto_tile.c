#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#include <omp.h>
#ifndef PUREC_POLY_HELPERS
#define PUREC_POLY_HELPERS
#define floord(n, d) (((n) < 0) ? -((-(n) + (d) - 1) / (d)) : (n) / (d))
#define ceild(n, d) floord((n) + (d) - 1, (d))
#define purec_max(a, b) (((a) > (b)) ? (a) : (b))
#define purec_min(a, b) (((a) < (b)) ? (a) : (b))
#endif
void minreduce(float* in, float* out, int n)
{
  float lo = in[0];
  {
#pragma omp parallel for reduction(min:lo)
    for (int t1 = 0; t1 <= n - 1; t1++)
    {
      lo = fminf(lo, in[t1]);
    }
  }
  out[0] = lo;
}
int main()
{
  int n = 4096;
  float* in = (float*)malloc(n * sizeof(float));
  float* out = (float*)malloc(1 * sizeof(float));
  {
#pragma omp parallel for
    for (int t1 = 0; t1 <= n - 1; t1++)
    {
      in[t1] = (float)((t1 * 13 + 5) % 97) * 0.25f + 1.0f;
    }
  }
  minreduce(in, out, n);
  printf("checksum %.6f\n", (double)out[0]);
  return 0;
}

#include <omp.h>
#ifndef PUREC_POLY_HELPERS
#define PUREC_POLY_HELPERS
#define floord(n, d) (((n) < 0) ? -((-(n) + (d) - 1) / (d)) : (n) / (d))
#define ceild(n, d) floord((n) + (d) - 1, (d))
#define purec_max(a, b) (((a) > (b)) ? (a) : (b))
#define purec_min(a, b) (((a) < (b)) ? (a) : (b))
#endif
float** cur;
float** nxt;
float stencil(float** g, int i, int j)
{
  return 0.25f * (g[i - 1][j] + g[i + 1][j] + g[i][j - 1] + g[i][j + 1]);
}
void step(int n)
{
  {
#pragma omp parallel for
    for (int t1 = 1; t1 <= n - 2; t1++)
    {
#pragma omp simd
      for (int t2 = 1; t2 <= n - 2; t2++)
      {
        nxt[t1][t2] = stencil(cur, t1, t2);
      }
    }
  }
}

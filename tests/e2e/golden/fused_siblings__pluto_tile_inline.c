#include <stdio.h>
#include <stdlib.h>
#include <omp.h>
#ifndef PUREC_POLY_HELPERS
#define PUREC_POLY_HELPERS
#define floord(n, d) (((n) < 0) ? -((-(n) + (d) - 1) / (d)) : (n) / (d))
#define ceild(n, d) floord((n) + (d) - 1, (d))
#define purec_max(a, b) (((a) > (b)) ? (a) : (b))
#define purec_min(a, b) (((a) < (b)) ? (a) : (b))
#endif
float scale(float x)
{
  return 2.0f * x;
}
float shift(float x)
{
  return x + 3.0f;
}
void both(float* a, float* b, float* x, int n)
{
  {
#pragma omp parallel for
    for (int t1 = 0; t1 <= n - 1; t1++)
    {
      a[t1] = 2.0f * x[t1];
      b[t1] = x[t1] + 3.0f;
    }
  }
}
int main()
{
  int n = 4096;
  float* a = (float*)malloc(n * sizeof(float));
  float* b = (float*)malloc(n * sizeof(float));
  float* x = (float*)malloc(n * sizeof(float));
  {
#pragma omp parallel for
    for (int t1 = 0; t1 <= n - 1; t1++)
    {
      x[t1] = (float)((t1 * 11 + 2) % 31);
    }
  }
  both(a, b, x, n);
  double checksum = 0.0;
  {
    for (int t1 = 0; t1 <= n - 1; t1++)
    {
      checksum += (double)a[t1] + (double)b[t1] * 0.5;
    }
  }
  printf("checksum %.6f\n", checksum);
  return 0;
}
